(** Quorum-based distributed mutual exclusion (Maekawa's algorithm with
    inquire/yield), running on the simulated network.

    Both tree-quorum papers the ICDCS paper builds on are mutual-exclusion
    protocols (Agrawal–El Abbadi's [2] and Maekawa's √n [9]); this module
    shows the same quorum machinery powering that original application.

    A client enters the critical section after collecting grants from
    {e every} member of a mutex quorum.  Quorums must pairwise intersect;
    the intersection replica serializes conflicting entries.  For a
    {e bicoterie} protocol like the arbitrary tree — whose write quorums
    do not pairwise intersect — the mutex quorum is the union of one read
    and one write quorum: (R ∪ W) ∩ (R' ∪ W') ⊇ R ∩ W' ≠ ∅.

    Deadlocks between partially-acquired quorums are resolved the
    classical way: requests carry (Lamport clock, client id) priorities; an
    arbiter holding a grant for a younger request {e inquires} it when an
    older one arrives, and a client that has not yet entered the critical
    section {e yields} inquired grants.  The algorithm assumes FIFO links
    — create the network with [~fifo:true]. *)

type message
(** Wire messages (request / grant / inquire / yield / release). *)

val pp_message : Format.formatter -> message -> unit

(** {2 Arbiters (replica side)} *)

type arbiter

val create_arbiter : site:int -> net:message Dsim.Network.t -> arbiter
(** One per replica site; installs the site's handler. *)

(** {2 Clients} *)

type client

val create_client :
  site:int ->
  net:message Dsim.Network.t ->
  proto:Quorum.Protocol.t ->
  unit ->
  client

val acquire : client -> (unit -> unit) -> unit
(** Requests the critical section; the callback runs once every quorum
    member has granted.  Raises [Invalid_argument] if this client already
    holds or awaits the lock, or when no quorum can be assembled. *)

val release : client -> unit
(** Leaves the critical section.  Raises [Invalid_argument] when not
    held. *)

val holding : client -> bool

val acquisitions : client -> int
(** Completed critical-section entries. *)

val yields : client -> int
(** Times this client gave a grant back to an older request. *)
