module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Engine = Dsim.Engine
module Network = Dsim.Network
module Protocol = Quorum.Protocol

(* Request priority: smaller = older = higher priority; ties broken by
   site id, so priorities are totally ordered and the oldest outstanding
   request can never be asked to yield — that is the liveness argument. *)
type priority = { clock : int; site : int }

let compare_priority a b =
  match compare a.clock b.clock with 0 -> compare a.site b.site | c -> c

type message =
  | Request of priority
  | Grant
  | Inquire
  | Yield
  | Release

let pp_message ppf = function
  | Request p -> Format.fprintf ppf "request(%d@%d)" p.clock p.site
  | Grant -> Format.pp_print_string ppf "grant"
  | Inquire -> Format.pp_print_string ppf "inquire"
  | Yield -> Format.pp_print_string ppf "yield"
  | Release -> Format.pp_print_string ppf "release"

(* --- arbiter (replica side) ---------------------------------------------- *)

type arbiter = {
  a_site : int;
  a_net : message Network.t;
  mutable granted : priority option;
  mutable waiting : priority list;  (* sorted, best (oldest) first *)
  mutable inquired : bool;  (* an Inquire to the current grantee is pending *)
}

let insert_sorted prio l =
  let rec go = function
    | [] -> [ prio ]
    | x :: rest as all ->
      if compare_priority prio x < 0 then prio :: all else x :: go rest
  in
  go l

let send_a t ~dst msg = Network.send t.a_net ~src:t.a_site ~dst msg

let grant_next t =
  match t.waiting with
  | [] ->
    t.granted <- None;
    t.inquired <- false
  | best :: rest ->
    t.waiting <- rest;
    t.granted <- Some best;
    t.inquired <- false;
    send_a t ~dst:best.site Grant

let handle_arbiter t ~src msg =
  match msg with
  | Request prio -> begin
    match t.granted with
    | None ->
      t.granted <- Some prio;
      t.inquired <- false;
      send_a t ~dst:prio.site Grant
    | Some current ->
      t.waiting <- insert_sorted prio t.waiting;
      (* An older request outranks the grantee: ask it to yield (once). *)
      if compare_priority prio current < 0 && not t.inquired then begin
        t.inquired <- true;
        send_a t ~dst:current.site Inquire
      end
  end
  | Yield -> begin
    match t.granted with
    | Some current when current.site = src ->
      t.waiting <- insert_sorted current t.waiting;
      grant_next t
    | _ -> ()  (* stale yield: the grant moved on already *)
  end
  | Release -> begin
    match t.granted with
    | Some current when current.site = src -> grant_next t
    | _ -> ()  (* stale release *)
  end
  | Grant | Inquire ->
    (* Client-bound; an arbiter ignores strays. *)
    ()

let create_arbiter ~site ~net =
  let t =
    { a_site = site; a_net = net; granted = None; waiting = []; inquired = false }
  in
  Network.set_handler net ~site (fun ~src msg -> handle_arbiter t ~src msg);
  t

(* --- client ---------------------------------------------------------------- *)

type status = Idle | Acquiring | Held

type client = {
  c_site : int;
  c_net : message Network.t;
  proto : Protocol.t;
  rng : Rng.t;
  mutable clock : int;
  mutable status : status;
  mutable members : int list;
  mutable granted_from : Bitset.t;
  owed_ignores : (int, int) Hashtbl.t;
      (* arbiter -> grants we yielded before they arrived (FIFO links make
         at most one outstanding per arbiter, but we count anyway) *)
  mutable on_acquired : unit -> unit;
  mutable acquisitions : int;
  mutable yields : int;
}

let send_c t ~dst msg = Network.send t.c_net ~src:t.c_site ~dst msg

let owed t site = Option.value ~default:0 (Hashtbl.find_opt t.owed_ignores site)

let all_granted t =
  List.for_all (fun m -> Bitset.mem t.granted_from m) t.members

let handle_client t ~src msg =
  match (msg, t.status) with
  | Grant, Acquiring ->
    if owed t src > 0 then Hashtbl.replace t.owed_ignores src (owed t src - 1)
    else begin
      Bitset.add t.granted_from src;
      if all_granted t then begin
        t.status <- Held;
        t.acquisitions <- t.acquisitions + 1;
        let k = t.on_acquired in
        t.on_acquired <- (fun () -> ());
        k ()
      end
    end
  | Inquire, Acquiring ->
    (* Not yet in the critical section: give the grant back.  If the grant
       is still in flight, remember to ignore it when it lands. *)
    t.yields <- t.yields + 1;
    if Bitset.mem t.granted_from src then Bitset.remove t.granted_from src
    else Hashtbl.replace t.owed_ignores src (owed t src + 1);
    send_c t ~dst:src Yield
  | Inquire, (Held | Idle) ->
    (* Held: we answer with the Release; Idle: stale, already released. *)
    ()
  | Grant, (Held | Idle) -> ()  (* stale duplicate *)
  | (Request _ | Yield | Release), _ -> ()  (* arbiter-bound strays *)

let create_client ~site ~net ~proto () =
  let t =
    {
      c_site = site;
      c_net = net;
      proto;
      rng = Rng.split (Engine.rng (Network.engine net));
      clock = 0;
      status = Idle;
      members = [];
      granted_from = Bitset.create (Network.size net);
      owed_ignores = Hashtbl.create 8;
      on_acquired = (fun () -> ());
      acquisitions = 0;
      yields = 0;
    }
  in
  Network.set_handler net ~site (fun ~src msg -> handle_client t ~src msg);
  t

(* Mutex quorum: the union of one read and one write quorum.  Two such
   unions always intersect because any read quorum meets any write quorum
   (bicoterie); for symmetric protocols the union is just one quorum. *)
let mutex_quorum t =
  let n = Protocol.universe_size t.proto in
  let alive = Bitset.create n in
  for i = 0 to n - 1 do
    if Network.is_up t.c_net i then Bitset.add alive i
  done;
  match
    ( Protocol.read_quorum t.proto ~alive ~rng:t.rng,
      Protocol.write_quorum t.proto ~alive ~rng:t.rng )
  with
  | Some r, Some w -> Some (Bitset.elements (Bitset.union r w))
  | _ -> None

let acquire t k =
  if t.status <> Idle then invalid_arg "Qmutex.acquire: already held or pending";
  match mutex_quorum t with
  | None -> invalid_arg "Qmutex.acquire: no quorum available"
  | Some members ->
    t.clock <- t.clock + 1;
    t.status <- Acquiring;
    t.members <- members;
    Bitset.clear t.granted_from;
    Hashtbl.reset t.owed_ignores;
    t.on_acquired <- k;
    let prio = { clock = t.clock; site = t.c_site } in
    List.iter (fun m -> send_c t ~dst:m (Request prio)) members

let release t =
  if t.status <> Held then invalid_arg "Qmutex.release: not held";
  t.status <- Idle;
  Bitset.clear t.granted_from;
  List.iter (fun m -> send_c t ~dst:m Release) t.members;
  t.members <- []

let holding t = t.status = Held
let acquisitions t = t.acquisitions
let yields t = t.yields
