type t = {
  base : float;
  counts : int array;
  mutable total : int;
}

let create ?(base = 2.0) ?(buckets = 64) () =
  if base <= 1.0 then invalid_arg "Histogram.create: base must exceed 1";
  if buckets < 1 then invalid_arg "Histogram.create: need at least one bucket";
  { base; counts = Array.make buckets 0; total = 0 }

let bucket_of t x =
  if x < 1.0 then 0
  else begin
    let i = int_of_float (log x /. log t.base) in
    (* Float log rounding can misplace values sitting exactly on a bucket
       boundary (log 1000 / log 10 = 2.999…); nudge into the bucket whose
       [base^i <= x < base^(i+1)] actually holds, so boundary assignment
       is deterministic: x = base^k always lands in bucket k. *)
    let i =
      if t.base ** float_of_int (i + 1) <= x then i + 1
      else if t.base ** float_of_int i > x then i - 1
      else i
    in
    let i = max 0 i in
    min i (Array.length t.counts - 1)
  end

let add t x =
  let i = bucket_of t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t = t.total

let bucket_counts t =
  let out = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      (* Bucket 0 is the catch-all for every input below 1.0 (including
         negatives) as well as [1, base); its true lower bound is -inf. *)
      let lo = if i = 0 then neg_infinity else t.base ** float_of_int i in
      let hi = t.base ** float_of_int (i + 1) in
      out := (lo, hi, t.counts.(i)) :: !out
    end
  done;
  !out

let render t ~width =
  let rows = bucket_counts t in
  let max_count = List.fold_left (fun acc (_, _, c) -> max acc c) 1 rows in
  let buf = Buffer.create 256 in
  List.iter
    (fun (lo, hi, c) ->
      let bar = c * width / max_count in
      let label =
        if lo = neg_infinity then Printf.sprintf "(      -inf, %10.1f)" hi
        else Printf.sprintf "[%10.1f, %10.1f)" lo hi
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %6d %s\n" label c (String.make bar '#')))
    rows;
  Buffer.contents buf
