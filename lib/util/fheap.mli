(** Float-keyed binary min-heap with FIFO tie-breaking and flat (unboxed
    key) storage — the simulator's event queue.  A push allocates nothing
    beyond amortized array growth; pop order is identical to
    [Heap.create ~compare:Float.compare] (ties resolve in insertion
    order), so swapping one for the other never changes a seeded
    schedule.

    Each entry carries a handler ['h], an int [meta] and a payload ['p]:
    callers that schedule millions of events keep one preallocated
    handler and thread per-event arguments through [meta]/[payload]
    instead of allocating a closure per event. *)

type ('h, 'p) t

val create : dummy_h:'h -> dummy_p:'p -> ('h, 'p) t
(** The dummies fill vacated slots so popped handlers/payloads are not
    retained by the backing arrays. *)

val length : ('h, 'p) t -> int
val is_empty : ('h, 'p) t -> bool

val push : ('h, 'p) t -> float -> 'h -> int -> 'p -> unit

val min_key : ('h, 'p) t -> float
(** Smallest key without popping.  Raises [Invalid_argument] when empty. *)

val pop_apply : ('h, 'p) t -> (float -> 'h -> int -> 'p -> unit) -> bool
(** Pop the minimum entry and apply [f time handler meta payload];
    [false] on an empty heap.  Allocates neither an option nor a pair. *)

val clear : ('h, 'p) t -> unit
