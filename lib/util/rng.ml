(* SplitMix64 (Steele, Lea, Flood: "Fast splittable PRNGs"), computed on
   32-bit limbs held in native ints.  Without flambda every [Int64]
   operation allocates a box, and the simulator draws from this generator
   on every message, every think pause and every quorum choice — so the
   hot path (int/float/bool/exponential) must not touch [Int64] at all.
   Each 64-bit quantity is (hi, lo), both in [0, 2^32); OCaml's native
   ints wrap modulo 2^63 and 2^32 divides 2^63, so products and sums may
   wrap freely wherever only the low 32 bits are kept.  The sequences are
   bit-identical to the Int64 formulation (test/test_rng.ml checks this
   against an Int64 reference). *)

type t = {
  mutable s_hi : int;
  mutable s_lo : int;
  mutable g_hi : int;
  mutable g_lo : int;
  (* result of the last finalizer application — a return slot, so helpers
     never allocate a pair *)
  mutable r_hi : int;
  mutable r_lo : int;
}

let mask32 = 0xFFFFFFFF

(* golden_gamma = 0x9E3779B97F4A7C15 *)
let golden_hi = 0x9E3779B9
let golden_lo = 0x7F4A7C15

(* r <- mix64 z, the SplitMix64 finalizer:
   z ^= z >>> 30; z *= 0xBF58476D1CE4E5B9;
   z ^= z >>> 27; z *= 0x94D049BB133111EB;
   z ^= z >>> 31. *)
let mix64_into t zh zl =
  let zh' = zh lsr 30 and zl' = ((zl lsr 30) lor (zh lsl 2)) land mask32 in
  let zh = zh lxor zh' and zl = zl lxor zl' in
  (* multiply by 0xBF58476D1CE4E5B9: split zl into 16-bit halves so the
     low-limb product's carry into the high limb is exact *)
  let bh = 0xBF58476D and bl = 0x1CE4E5B9 in
  let t0 = (zl land 0xFFFF) * bl and t1 = (zl lsr 16) * bl in
  let lo_full = t0 + ((t1 land 0xFFFF) lsl 16) in
  let carry = (lo_full lsr 32) + (t1 lsr 16) in
  let nl = lo_full land mask32 in
  let nh = ((zl * bh) + (zh * bl) + carry) land mask32 in
  let zh' = nh lsr 27 and zl' = ((nl lsr 27) lor (nh lsl 5)) land mask32 in
  let zh = nh lxor zh' and zl = nl lxor zl' in
  let bh = 0x94D049BB and bl = 0x133111EB in
  let t0 = (zl land 0xFFFF) * bl and t1 = (zl lsr 16) * bl in
  let lo_full = t0 + ((t1 land 0xFFFF) lsl 16) in
  let carry = (lo_full lsr 32) + (t1 lsr 16) in
  let nl = lo_full land mask32 in
  let nh = ((zl * bh) + (zh * bl) + carry) land mask32 in
  let zh' = nh lsr 31 and zl' = ((nl lsr 31) lor (nh lsl 1)) land mask32 in
  t.r_hi <- nh lxor zh';
  t.r_lo <- nl lxor zl'

(* r <- mix_gamma z, the distinct finalizer used to derive (odd) gammas:
   z ^= z >>> 33; z *= 0xFF51AFD7ED558CCD;
   z ^= z >>> 33; z *= 0xC4CEB9FE1A85EC53;
   z ^= z >>> 33; z |= 1. *)
let mix_gamma_into t zh zl =
  let zh = zh and zl = zl lxor (zh lsr 1) in
  let bh = 0xFF51AFD7 and bl = 0xED558CCD in
  let t0 = (zl land 0xFFFF) * bl and t1 = (zl lsr 16) * bl in
  let lo_full = t0 + ((t1 land 0xFFFF) lsl 16) in
  let carry = (lo_full lsr 32) + (t1 lsr 16) in
  let nl = lo_full land mask32 in
  let nh = ((zl * bh) + (zh * bl) + carry) land mask32 in
  let zh = nh and zl = nl lxor (nh lsr 1) in
  let bh = 0xC4CEB9FE and bl = 0x1A85EC53 in
  let t0 = (zl land 0xFFFF) * bl and t1 = (zl lsr 16) * bl in
  let lo_full = t0 + ((t1 land 0xFFFF) lsl 16) in
  let carry = (lo_full lsr 32) + (t1 lsr 16) in
  let nl = lo_full land mask32 in
  let nh = ((zl * bh) + (zh * bl) + carry) land mask32 in
  let zh = nh and zl = nl lxor (nh lsr 1) in
  t.r_hi <- zh;
  t.r_lo <- zl lor 1

(* Advance the state by gamma and leave mix64(state) in the return slot. *)
let next_mixed t =
  let lo = t.s_lo + t.g_lo in
  let hi = (t.s_hi + t.g_hi + (lo lsr 32)) land mask32 in
  let lo = lo land mask32 in
  t.s_hi <- hi;
  t.s_lo <- lo;
  mix64_into t hi lo

let create seed =
  let t = { s_hi = 0; s_lo = 0; g_hi = golden_hi; g_lo = golden_lo;
            r_hi = 0; r_lo = 0 }
  in
  (* the seed's 64-bit two's-complement image, as limbs *)
  let z = Int64.of_int seed in
  let zh = Int64.to_int (Int64.shift_right_logical z 32) in
  let zl = Int64.to_int (Int64.logand z 0xFFFFFFFFL) in
  mix64_into t zh zl;
  t.s_hi <- t.r_hi;
  t.s_lo <- t.r_lo;
  t

let split t =
  (* state' = mix64 (next_seed t); gamma' = mix_gamma (next_seed t) *)
  let lo = t.s_lo + t.g_lo in
  let hi = (t.s_hi + t.g_hi + (lo lsr 32)) land mask32 in
  let lo = lo land mask32 in
  t.s_hi <- hi;
  t.s_lo <- lo;
  mix64_into t hi lo;
  let s_hi = t.r_hi and s_lo = t.r_lo in
  let lo = t.s_lo + t.g_lo in
  let hi = (t.s_hi + t.g_hi + (lo lsr 32)) land mask32 in
  let lo = lo land mask32 in
  t.s_hi <- hi;
  t.s_lo <- lo;
  mix_gamma_into t hi lo;
  { s_hi; s_lo; g_hi = t.r_hi; g_lo = t.r_lo; r_hi = 0; r_lo = 0 }

let copy t =
  { s_hi = t.s_hi; s_lo = t.s_lo; g_hi = t.g_hi; g_lo = t.g_lo;
    r_hi = 0; r_lo = 0 }

let int64 t =
  next_mixed t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.r_hi) 32)
    (Int64.of_int t.r_lo)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's native int without touching the
     sign bit; modulo bias is negligible for our bounds. *)
  next_mixed t;
  let v = (t.r_hi lsl 30) lor (t.r_lo lsr 2) in
  v mod bound

let float t bound =
  next_mixed t;
  (* 53 significant bits, uniform in [0,1). *)
  let v = (t.r_hi lsl 21) lor (t.r_lo lsr 11) in
  float_of_int v /. 9007199254740992.0 *. bound

let bool t =
  next_mixed t;
  t.r_lo land 1 = 1

let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let uniform_in t lo hi = lo +. float t (hi -. lo)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
