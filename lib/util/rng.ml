type t = { mutable state : int64; mutable gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer (Steele, Lea, Flood: "Fast splittable PRNGs"). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

(* A distinct finalizer used to derive gammas; gamma must be odd. *)
let mix_gamma z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L) in
  let z = Int64.(logxor z (shift_right_logical z 33)) in
  Int64.logor z 1L

let create seed =
  { state = mix64 (Int64.of_int seed); gamma = golden_gamma }

let next_seed t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let int64 t = mix64 (next_seed t)

let split t =
  let state = mix64 (next_seed t) in
  let gamma = mix_gamma (next_seed t) in
  { state; gamma }

let copy t = { state = t.state; gamma = t.gamma }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's native int without touching the
     sign bit; modulo bias is negligible for our bounds. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 significant bits, uniform in [0,1). *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let uniform_in t lo hi = lo +. float t (hi -. lo)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
