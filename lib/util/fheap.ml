(* 4-ary min-heap specialized to float keys with FIFO tie-breaking — the
   simulator's event queue.  The generic {!Heap} stores one boxed record
   and one boxed float per entry; at millions of events per run that is
   the single largest allocation source in the simulator.  Here keys live
   in a flat float array and payloads in plain arrays, so a push
   allocates nothing (amortized: the arrays double).

   Each entry carries a handler ['h], an int [meta] and a payload ['p]:
   the split lets callers schedule preallocated handlers with per-event
   scalar/pointer arguments instead of allocating a closure per event
   (the dominant cost of a message send).

   Entries are totally ordered by (time, insertion sequence) — a strict
   total order, so the pop order is a function of the ordering alone:
   identical to [Heap.create ~compare:Float.compare] and independent of
   heap arity or layout.  Three compiled-code effects shape the layout:

   - The heap proper is (time, seq, slot) in three scalar arrays; the
     handler/meta/payload live in side arrays indexed by [slot] and never
     move while queued.  Sifting therefore shuffles only unboxed floats
     and ints — no pointer stores, so no [caml_modify] write barrier per
     sift level (the barrier was ~10% of simulator CPU when sifts moved
     the pointer arrays directly).
   - Without flambda a float crossing a function boundary is boxed, so
     each sift loads its key into locals and runs to completion in one
     function body — the floats stay in registers.
   - Array reads are bounds-checked, so the inner loops use unsafe
     accessors; every index is bounded by [size] (or comes off the free
     list), both bounded by the shared capacity. *)

type ('h, 'p) t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable slots : int array;  (* heap order -> satellite slot *)
  mutable hs : 'h array;  (* indexed by slot, fixed while queued *)
  mutable metas : int array;
  mutable ps : 'p array;
  mutable free : int array;  (* free satellite slots, a stack *)
  mutable free_n : int;
  mutable size : int;
  mutable next_seq : int;
  dummy_h : 'h;  (* fill released slots so popped payloads are not retained *)
  dummy_p : 'p;
}

let create ~dummy_h ~dummy_p =
  {
    times = [||];
    seqs = [||];
    slots = [||];
    hs = [||];
    metas = [||];
    ps = [||];
    free = [||];
    free_n = 0;
    size = 0;
    next_seq = 0;
    dummy_h;
    dummy_p;
  }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.times in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nt = Array.make ncap 0.0
  and ns = Array.make ncap 0
  and nsl = Array.make ncap 0
  and nh = Array.make ncap t.dummy_h
  and nm = Array.make ncap 0
  and np = Array.make ncap t.dummy_p
  and nf = Array.make ncap 0 in
  Array.blit t.times 0 nt 0 t.size;
  Array.blit t.seqs 0 ns 0 t.size;
  Array.blit t.slots 0 nsl 0 t.size;
  Array.blit t.hs 0 nh 0 cap;
  Array.blit t.metas 0 nm 0 cap;
  Array.blit t.ps 0 np 0 cap;
  Array.blit t.free 0 nf 0 t.free_n;
  (* the new slots [cap, ncap) are all free *)
  for i = cap to ncap - 1 do
    nf.(t.free_n + (i - cap)) <- i
  done;
  t.free_n <- t.free_n + (ncap - cap);
  t.times <- nt;
  t.seqs <- ns;
  t.slots <- nsl;
  t.hs <- nh;
  t.metas <- nm;
  t.ps <- np;
  t.free <- nf

(* Hole sift-up of the entry at heap index [i]: key and slot ride in
   locals while the hole bubbles toward the root, each displaced ancestor
   written once — floats and ints only. *)
let sift_up t i =
  let times = t.times and seqs = t.seqs and slots = t.slots in
  let time = Array.unsafe_get times i
  and seq = Array.unsafe_get seqs i
  and slot = Array.unsafe_get slots i in
  let hole = ref i in
  let continue = ref true in
  while !continue && !hole > 0 do
    let parent = (!hole - 1) / 4 in
    let pt = Array.unsafe_get times parent in
    if time < pt || (time = pt && seq < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set times !hole pt;
      Array.unsafe_set seqs !hole (Array.unsafe_get seqs parent);
      Array.unsafe_set slots !hole (Array.unsafe_get slots parent);
      hole := parent
    end
    else continue := false
  done;
  if !hole <> i then begin
    let j = !hole in
    Array.unsafe_set times j time;
    Array.unsafe_set seqs j seq;
    Array.unsafe_set slots j slot
  end

let push t time h meta p =
  if t.size = Array.length t.times then grow t;
  (* take a satellite slot and park the entry's cargo there *)
  t.free_n <- t.free_n - 1;
  let slot = Array.unsafe_get t.free t.free_n in
  t.hs.(slot) <- h;
  t.metas.(slot) <- meta;
  t.ps.(slot) <- p;
  let i = t.size in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.slots.(i) <- slot;
  t.next_seq <- t.next_seq + 1;
  t.size <- i + 1;
  sift_up t i

let min_key t =
  if t.size = 0 then invalid_arg "Fheap.min_key: empty heap"
  else t.times.(0)

(* Hole sift-down from the root of the entry currently stored at the
   root heap index. *)
let sift_down_root t =
  let size = t.size in
  let times = t.times and seqs = t.seqs and slots = t.slots in
  let time = Array.unsafe_get times 0
  and seq = Array.unsafe_get seqs 0
  and slot = Array.unsafe_get slots 0 in
  let hole = ref 0 in
  let continue = ref true in
  while !continue do
    let base = (4 * !hole) + 1 in
    if base >= size then continue := false
    else begin
      (* smallest of up to four children *)
      let last = min (base + 3) (size - 1) in
      let best = ref base in
      let bt = ref (Array.unsafe_get times base) in
      let bs = ref (Array.unsafe_get seqs base) in
      for c = base + 1 to last do
        let ct = Array.unsafe_get times c in
        if ct < !bt || (ct = !bt && Array.unsafe_get seqs c < !bs) then begin
          best := c;
          bt := ct;
          bs := Array.unsafe_get seqs c
        end
      done;
      if !bt < time || (!bt = time && !bs < seq) then begin
        let b = !best and hl = !hole in
        Array.unsafe_set times hl !bt;
        Array.unsafe_set seqs hl !bs;
        Array.unsafe_set slots hl (Array.unsafe_get slots b);
        hole := b
      end
      else continue := false
    end
  done;
  if !hole <> 0 then begin
    let j = !hole in
    Array.unsafe_set times j time;
    Array.unsafe_set seqs j seq;
    Array.unsafe_set slots j slot
  end

(* Pop the minimum and hand (time, handler, meta, payload) to [f] — no
   option, no pair. *)
let pop_apply t f =
  if t.size = 0 then false
  else begin
    let time = t.times.(0) in
    let slot = t.slots.(0) in
    let h = t.hs.(slot)
    and meta = t.metas.(slot)
    and p = t.ps.(slot) in
    (* release the satellite slot (dummies so cargo is not retained) *)
    t.hs.(slot) <- t.dummy_h;
    t.ps.(slot) <- t.dummy_p;
    t.free.(t.free_n) <- slot;
    t.free_n <- t.free_n + 1;
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      t.times.(0) <- t.times.(n);
      t.seqs.(0) <- t.seqs.(n);
      t.slots.(0) <- t.slots.(n);
      sift_down_root t
    end;
    f time h meta p;
    true
  end

let clear t =
  for i = 0 to t.size - 1 do
    let slot = t.slots.(i) in
    t.hs.(slot) <- t.dummy_h;
    t.ps.(slot) <- t.dummy_p;
    t.free.(t.free_n) <- slot;
    t.free_n <- t.free_n + 1
  done;
  t.size <- 0
