type t = { capacity : int; words : int array }

let bits_per_word = 63

let words_for cap = (cap + bits_per_word - 1) / bits_per_word

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make (max 1 (words_for capacity)) 0 }

let capacity t = t.capacity
let copy t = { capacity = t.capacity; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.capacity)

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let same_cap a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let intersects a b =
  same_cap a b;
  let n = Array.length a.words in
  let rec go i = i < n && (a.words.(i) land b.words.(i) <> 0 || go (i + 1)) in
  go 0

let subset a b =
  same_cap a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)) in
  go 0

let equal a b = a.capacity = b.capacity && a.words = b.words

let map2 f a b =
  same_cap a b;
  { capacity = a.capacity; words = Array.map2 f a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let fill_elements t buf =
  let c = ref 0 in
  let nw = Array.length t.words in
  for w = 0 to nw - 1 do
    let bits = ref t.words.(w) in
    let base = w * bits_per_word in
    while !bits <> 0 do
      let low = !bits land - !bits in
      (* index of the lowest set bit *)
      let b = popcount (low - 1) in
      buf.(!c) <- base + b;
      incr c;
      bits := !bits land lnot low
    done
  done;
  !c

let of_list capacity l =
  let t = create capacity in
  List.iter (add t) l;
  t

let compare a b = Stdlib.compare (a.capacity, a.words) (b.capacity, b.words)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements t)
