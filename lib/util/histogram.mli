(** Logarithmically-bucketed histogram for latency-like measurements. *)

type t

val create : ?base:float -> ?buckets:int -> unit -> t
(** [create ~base ~buckets ()] — bucket [i] covers values in
    [\[base^i, base^(i+1))]; bucket 0 is the catch-all for everything
    below [base], including inputs below 1.0 and negatives.  Boundary
    assignment is deterministic: a value exactly at [base^k] always lands
    in bucket [k], independent of float log rounding.
    Defaults: base = 2.0, buckets = 64. *)

val add : t -> float -> unit
val count : t -> int
val bucket_counts : t -> (float * float * int) list
(** [(lo, hi, count)] for every non-empty bucket, ascending.  Bucket 0
    reports [lo = neg_infinity] — it holds every input below 1.0 as well
    as [\[1, base)]. *)

val render : t -> width:int -> string
(** ASCII bar rendering, for quick terminal inspection. *)
