(** Logarithmically-bucketed histogram for latency-like measurements. *)

type t

val create : ?base:float -> ?buckets:int -> unit -> t
(** [create ~base ~buckets ()] — bucket [i] covers values in
    [\[base^i, base^(i+1))]; values below 1.0 land in bucket 0.
    Defaults: base = 2.0, buckets = 64. *)

val add : t -> float -> unit
val count : t -> int
val bucket_counts : t -> (float * float * int) list
(** [(lo, hi, count)] for every non-empty bucket, ascending. *)

val render : t -> width:int -> string
(** ASCII bar rendering, for quick terminal inspection. *)
