(** Fixed-capacity mutable bitset over [0 .. capacity-1].

    Quorum systems manipulate many small site sets; a flat int-array bitset
    keeps membership, intersection and cardinality cheap and allocation-free
    on the hot paths. *)

type t

val create : int -> t
(** All-zeros set of the given capacity. *)

val capacity : t -> int
val copy : t -> t
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool
val clear : t -> unit

val intersects : t -> t -> bool
(** True iff the sets share at least one element.  Capacities must match. *)

val subset : t -> t -> bool
(** [subset a b] — every element of [a] is in [b]. *)

val equal : t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list

val fill_elements : t -> int array -> int
(** [fill_elements t buf] writes the members in ascending order into
    [buf] and returns how many there are — {!elements} without the list.
    [buf] must hold at least [cardinal t] entries (capacity-sized buffers
    always fit); @raise Invalid_argument otherwise. *)

val of_list : int -> int list -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
