(** Deterministic splittable pseudo-random number generator.

    Based on the SplitMix64 mixing function.  Every simulation component
    receives its own split stream so that adding a component never perturbs
    the random draws of another — a requirement for reproducible
    discrete-event simulations. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent stream; [t] itself advances. *)

val copy : t -> t
(** [copy t] duplicates the current state (both streams then evolve
    identically). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val uniform_in : t -> float -> float -> float
(** [uniform_in t lo hi] is uniform in [\[lo, hi)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
