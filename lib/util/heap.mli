(** Binary min-heap priority queue.

    The simulator's event queue needs stable ordering between events with
    equal keys, so every insertion is tagged with a monotonically increasing
    sequence number and ties are broken FIFO. *)

type ('k, 'v) t

val create : compare:('k -> 'k -> int) -> ('k, 'v) t

val length : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

val pop : ('k, 'v) t -> ('k * 'v) option
(** Removes and returns the minimum-key entry (FIFO among equal keys). *)

val pop_apply : ('k, 'v) t -> ('k -> 'v -> unit) -> bool
(** [pop_apply t f] removes the minimum entry and calls [f key value] on
    it; [false] (and no call) when the heap is empty.  Equivalent to
    {!pop} but allocates neither the option nor the pair — the simulation
    engine pops millions of events per run through this. *)

val peek : ('k, 'v) t -> ('k * 'v) option

val min_key : ('k, 'v) t -> 'k
(** Key of the minimum entry, without allocating an option or a pair —
    meant for hot loops that only need to compare the head key (the
    simulator's bounded run loop).  @raise Invalid_argument on an empty
    heap. *)

val clear : ('k, 'v) t -> unit
(** Empties the heap.  Released slots are cleared, so popped or cleared
    entries are not retained by the backing array ({!pop} likewise). *)

val to_sorted_list : ('k, 'v) t -> ('k * 'v) list
(** Non-destructive: returns all entries in pop order. *)
