(** Binary min-heap priority queue.

    The simulator's event queue needs stable ordering between events with
    equal keys, so every insertion is tagged with a monotonically increasing
    sequence number and ties are broken FIFO. *)

type ('k, 'v) t

val create : compare:('k -> 'k -> int) -> ('k, 'v) t

val length : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

val pop : ('k, 'v) t -> ('k * 'v) option
(** Removes and returns the minimum-key entry (FIFO among equal keys). *)

val peek : ('k, 'v) t -> ('k * 'v) option

val clear : ('k, 'v) t -> unit

val to_sorted_list : ('k, 'v) t -> ('k * 'v) list
(** Non-destructive: returns all entries in pop order. *)
