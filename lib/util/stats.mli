(** Summary statistics for simulation measurements. *)

type t
(** A running accumulator (Welford's algorithm: numerically stable mean and
    variance in one pass, plus retained samples for percentiles). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance; 0 for fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** Smallest sample seen.  Raises [Invalid_argument] on an empty
    accumulator (it would otherwise report [infinity]). *)

val max_value : t -> float
(** Largest sample seen.  Raises [Invalid_argument] on an empty
    accumulator (it would otherwise report [neg_infinity]). *)

val percentile : t -> float -> float
(** [percentile t q] with [q] in [\[0,1\]]; nearest-rank on the retained
    samples ([q = 0.0] is the minimum, [q = 1.0] the maximum).  Raises
    [Invalid_argument] on an empty accumulator. *)

val ci95 : t -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean. *)

val merge : t -> t -> t

val mean_of : float list -> float
val stddev_of : float list -> float
