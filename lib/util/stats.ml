(* Float state lives in a float-only sub-record ([acc]) and retained
   samples in a [floatarray]: both store flat, so [add] — which runs on
   the per-operation and per-reply hot paths (latency accumulators, RTT
   estimators) — allocates nothing beyond amortized sample-array growth.
   Inlining the float fields in the mixed record below would box two
   floats per update, and a sample list would cons five words per
   sample. *)
type acc = {
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

type t = {
  mutable n : int;
  acc : acc;
  mutable samples : floatarray;  (* first [n] entries, insertion order *)
  mutable sorted : float array option; (* cache invalidated by [add] *)
}

let create () =
  {
    n = 0;
    acc = { mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity };
    samples = Float.Array.create 0;
    sorted = None;
  }

let add t x =
  (if t.n = Float.Array.length t.samples then begin
     let grown = Float.Array.create (max 8 (2 * t.n)) in
     Float.Array.blit t.samples 0 grown 0 t.n;
     t.samples <- grown
   end);
  Float.Array.set t.samples t.n x;
  t.n <- t.n + 1;
  let a = t.acc in
  let delta = x -. a.mean in
  a.mean <- a.mean +. (delta /. float_of_int t.n);
  a.m2 <- a.m2 +. (delta *. (x -. a.mean));
  if x < a.min_v then a.min_v <- x;
  if x > a.max_v then a.max_v <- x;
  t.sorted <- None

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.acc.mean
let total t = t.acc.mean *. float_of_int t.n
let variance t = if t.n < 2 then 0.0 else t.acc.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t =
  if t.n = 0 then invalid_arg "Stats.min_value: empty";
  t.acc.min_v

let max_value t =
  if t.n = 0 then invalid_arg "Stats.max_value: empty";
  t.acc.max_v

let sorted_samples t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.init t.n (fun i -> Float.Array.get t.samples i) in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

let percentile t q =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  let a = sorted_samples t in
  (* Nearest-rank; q = 0.0 maps straight to the minimum instead of
     computing the out-of-range rank -1 first. *)
  let idx =
    if q = 0.0 then 0 else int_of_float (ceil (q *. float_of_int t.n)) - 1
  in
  a.(min (t.n - 1) idx)

let ci95 t =
  if t.n < 2 then 0.0 else 1.96 *. stddev t /. sqrt (float_of_int t.n)

(* Replays [a]'s samples in insertion order, then [b]'s newest-first —
   exactly the order the former list representation produced
   ([rev_append a.samples b.samples] over newest-first lists), so merged
   Welford state is unchanged. *)
let merge a b =
  let t = create () in
  for i = 0 to a.n - 1 do
    add t (Float.Array.get a.samples i)
  done;
  for i = b.n - 1 downto 0 do
    add t (Float.Array.get b.samples i)
  done;
  t

let mean_of xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev_of xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean_of xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (List.length xs - 1))
