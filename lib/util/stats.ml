type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable samples : float list;
  mutable sorted : float array option; (* cache invalidated by [add] *)
}

let create () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    samples = [];
    sorted = None;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.samples <- x :: t.samples;
  t.sorted <- None

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let total t = t.mean *. float_of_int t.n
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t =
  if t.n = 0 then invalid_arg "Stats.min_value: empty";
  t.min_v

let max_value t =
  if t.n = 0 then invalid_arg "Stats.max_value: empty";
  t.max_v

let sorted_samples t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

let percentile t q =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  let a = sorted_samples t in
  (* Nearest-rank; q = 0.0 maps straight to the minimum instead of
     computing the out-of-range rank -1 first. *)
  let idx =
    if q = 0.0 then 0 else int_of_float (ceil (q *. float_of_int t.n)) - 1
  in
  a.(min (t.n - 1) idx)

let ci95 t =
  if t.n < 2 then 0.0 else 1.96 *. stddev t /. sqrt (float_of_int t.n)

let merge a b =
  let t = create () in
  List.iter (add t) (List.rev_append a.samples b.samples);
  t

let mean_of xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev_of xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean_of xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (List.length xs - 1))
