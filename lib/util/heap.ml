type ('k, 'v) entry = { key : 'k; seq : int; value : 'v }

type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  mutable data : ('k, 'v) entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~compare = { compare; data = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let entry_lt t a b =
  let c = t.compare a.key b.key in
  c < 0 || (c = 0 && a.seq < b.seq)

(* Slots at or beyond [size] are semantically empty, but a stale pointer
   left there keeps the popped entry — key, value, any closure the value
   captures — reachable until the slot happens to be overwritten, which
   for a queue that has drained may be never.  Released and spare slots
   therefore hold an immediate-int sentinel instead of a live entry.
   Every read is guarded by [size], so the sentinel is never
   dereferenced; being an immediate it is also invisible to the GC.
   Entries are boxed records, so the array is never a flat float array
   and the mixed immediate/pointer contents are representable. *)
let sentinel : unit -> ('k, 'v) entry = fun () -> Obj.magic 0

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let ndata = Array.make ncap (sentinel ()) in
  Array.blit t.data 0 ndata 0 t.size;
  t.data <- ndata

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt t t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && entry_lt t t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key value =
  let e = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_apply t f =
  if t.size = 0 then false
  else begin
    let e = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- sentinel ();
    if t.size > 0 then sift_down t 0;
    f e.key e.value;
    true
  end

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- sentinel ();
    if t.size > 0 then sift_down t 0;
    Some (e.key, e.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).key, t.data.(0).value)

let min_key t =
  if t.size = 0 then invalid_arg "Heap.min_key: empty heap"
  else t.data.(0).key

let clear t =
  Array.fill t.data 0 t.size (sentinel ());
  t.size <- 0

let to_sorted_list t =
  if t.size = 0 then []
  else begin
    let copy =
      {
        compare = t.compare;
        data = Array.sub t.data 0 t.size;
        size = t.size;
        next_seq = t.next_seq;
      }
    in
    let rec drain acc =
      match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
    in
    drain []
  end
