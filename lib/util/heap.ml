type ('k, 'v) entry = { key : 'k; seq : int; value : 'v }

type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  mutable data : ('k, 'v) entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~compare = { compare; data = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let entry_lt t a b =
  let c = t.compare a.key b.key in
  c < 0 || (c = 0 && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  (* Dummy slot reuse: every live slot will be overwritten before read. *)
  let dummy = t.data.(0) in
  let ndata = Array.make ncap dummy in
  Array.blit t.data 0 ndata 0 t.size;
  t.data <- ndata

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt t t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && entry_lt t t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key value =
  let e = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.data = 0 then t.data <- Array.make 16 e
  else if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (e.key, e.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).key, t.data.(0).value)

let clear t = t.size <- 0

let to_sorted_list t =
  if t.size = 0 then []
  else begin
    let copy =
      {
        compare = t.compare;
        data = Array.sub t.data 0 t.size;
        size = t.size;
        next_seq = t.next_seq;
      }
    in
    let rec drain acc =
      match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
    in
    drain []
  end
