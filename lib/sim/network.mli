(** Simulated message-passing network over a set of sites.

    Sites are numbered 0 .. n−1.  A crashed site silently drops incoming
    messages and does not emit any.  What happens to a site's {e state}
    across a crash is governed by the network's {!crash_mode}: [Fail_stop]
    (§2.2 of the paper — memory survives intact) or [Amnesia] (volatile
    state is lost; only what the site persisted survives).  The network
    itself only reports the mode through per-site {!set_crash_hooks};
    attached processes implement the semantics.
    Links may lose messages and the network can be split into partitions;
    only sites in the same partition communicate. *)

type 'msg t

type crash_mode =
  | Fail_stop  (** a crashed site keeps its full in-memory state (default) *)
  | Amnesia  (** a crash wipes volatile state; only stable storage survives *)

val create :
  engine:Engine.t ->
  n:int ->
  ?latency:Latency.t ->
  ?loss_rate:float ->
  ?fifo:bool ->
  unit ->
  'msg t
(** Defaults: [latency = Exponential 1.0], [loss_rate = 0.0],
    [fifo = false].  With [fifo], messages between the same (src, dst)
    pair are delivered in send order (required by protocols that assume
    FIFO channels, e.g. Maekawa's mutual exclusion). *)

val engine : 'msg t -> Engine.t
val size : 'msg t -> int

val attach_trace :
  'msg t -> ?describe:('msg -> string) -> Trace.t -> unit
(** Start recording sends, deliveries, drops, crash/recover and partition
    changes into the trace; [describe] renders message payloads (defaults
    to the empty string). *)

val attach_obs : 'msg t -> Obs.t -> unit
(** Mirror the counters into [obs]'s metrics registry: [net.sent],
    [net.delivered], [net.dropped.loss] / [.crash] / [.partition] /
    [.no_handler] / [.overload], the [net.queue.depth] histogram, plus
    per-site [net.site.<i>.sent] and [net.site.<i>.delivered].  Metric
    handles are resolved once here, so the send path does no name lookups;
    without this call the send path is untouched.  The obs counters are
    seeded from the struct counters at attach time, so both sources agree
    even when obs is attached mid-run — in particular [net.dropped.loss]
    matches {!counters}[.dropped_loss] across mid-run {!set_loss_rate}
    changes. *)

val set_handler : 'msg t -> site:int -> (src:int -> 'msg -> unit) -> unit
(** Installs the message handler for a site.  A site without a handler
    drops messages. *)

val send : 'msg t -> ?units:int -> src:int -> dst:int -> 'msg -> unit
(** Queues delivery after a sampled latency.  The message is dropped when
    the source is down at send time, the destination is down at delivery
    time, the pair is separated by a partition at delivery time, or the
    link loses it.

    [?units] (default 1) declares how many logical operations the message
    carries.  A coalesced envelope with [units = k] is still ONE message —
    one send, one loss/latency draw, one service-queue slot at the
    destination — which is exactly the amortization batching buys; the
    [units - 1] per-op messages it saved are tallied in
    [counters.coalesced] (metric [net.coalesced]).  Passing [units = 1]
    is byte-identical to omitting it. *)

val broadcast : 'msg t -> src:int -> dst:int list -> 'msg -> unit

(** {2 Overload model}

    By default a site processes arrivals instantly and admits any load —
    the pre-overload behaviour, bit-for-bit.  [set_service] opts a site
    into a single-server bounded FIFO ingress queue: each arrival waits
    for the messages ahead of it, each costs [service_time] simulated
    time to process, and arrivals beyond [capacity] are dropped at the
    door (counted in [dropped_overload], traced as reason ["overload"]).
    This is what makes overload {e possible} in the simulation: without a
    service cost, no burst can outrun a replica.

    [set_priority] exempts a class of messages from the capacity bound —
    the lane for recovery and commit-phase traffic that must never be
    shed.  [set_overflow] observes each overload drop so the attached
    process can answer with an explicit busy-nack instead of a silent
    drop-and-timeout.  A crash wipes the site's queue (the wiped messages
    count as crash drops, not overload drops). *)

val set_service :
  'msg t -> site:int -> ?capacity:int -> ?service_time:float -> unit -> unit
(** Configures the site's ingress queue.  [capacity = 0] (default) means
    unbounded; [service_time = 0.0] (default) processes instantly but
    still serializes through the queue.
    @raise Invalid_argument on a negative capacity or service time. *)

val set_priority : 'msg t -> site:int -> (src:int -> 'msg -> bool) -> unit
(** Messages matching the predicate bypass the capacity bound (they are
    still served in FIFO order).  Installing a priority lane implies a
    service model for the site. *)

val set_overflow : 'msg t -> site:int -> (src:int -> 'msg -> unit) -> unit
(** Called for every message turned away by a full queue, after the drop
    is counted.  Runs at delivery time on behalf of the destination, so
    replying through {!send} originates from an up site. *)

val queue_depth : 'msg t -> int -> int
(** Messages currently queued at the site (head included); 0 for sites
    without a service model. *)

val queue_peak : 'msg t -> int -> int
(** High-water mark of the site's queue depth over the whole run. *)

(** {2 Failure injection} *)

val set_crash_mode : 'msg t -> crash_mode -> unit
(** Selects what {!crash} means for every site's state.  Default
    [Fail_stop].  The mode is passed to each site's [on_crash] hook so the
    attached process can discard (or keep) its volatile state. *)

val crash_mode : 'msg t -> crash_mode

val set_crash_hooks :
  'msg t ->
  site:int ->
  ?on_crash:(crash_mode -> unit) ->
  ?on_recover:(unit -> unit) ->
  unit ->
  unit
(** Installs failure-lifecycle callbacks for a site, invoked synchronously
    by {!crash} / {!recover} — only on an actual up→down / down→up
    transition, never on redundant calls.  [on_crash] runs after the site
    is marked down (it can no longer send); [on_recover] runs after the
    site is marked up again. *)

val crash : 'msg t -> int -> unit
(** Marks the site down and fires its [on_crash] hook.  Idempotent: calling
    it on an already-down site changes nothing — no trace event, no hook,
    and the alive set is untouched. *)

val recover : 'msg t -> int -> unit
(** Marks the site up and fires its [on_recover] hook.  Idempotent on an
    already-up site (no trace event, no hook). *)

val is_up : 'msg t -> int -> bool
val alive_view : 'msg t -> Dsutil.Bitset.t
(** Ground-truth up/down snapshot (the oracle view used to seed failure
    detectors).  The set is maintained incrementally by {!crash} /
    {!recover}; each call returns a fresh copy the caller may keep or
    mutate freely. *)

val partition : 'msg t -> int list list -> unit
(** Splits the sites into the given groups; unlisted sites form one extra
    implicit group.  Messages across groups are dropped. *)

val heal : 'msg t -> unit
(** Removes any partition. *)

val set_loss_rate : 'msg t -> float -> unit
(** Replaces the message-loss probability for all subsequent sends (e.g.
    to stop dropping messages before an end-of-run state audit). *)

val reachable : 'msg t -> int -> int -> bool
(** Same partition group (irrespective of up/down state). *)

(** {2 Metrics} *)

type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_loss : int;
  mutable dropped_crash : int;
  mutable dropped_partition : int;
  mutable dropped_no_handler : int;
      (** delivered to an up, reachable site that never installed a
          handler — a wiring bug, counted apart from crash drops *)
  mutable dropped_overload : int;
      (** turned away by a full ingress queue ({!set_service}) — load
          shedding, not loss, so it gets its own bucket *)
  mutable coalesced : int;
      (** per-op messages saved by multi-op envelopes: the sum over all
          sends of [units - 1] (see {!send}) *)
}

val counters : 'msg t -> counters
val per_site_delivered : 'msg t -> int array
(** Messages delivered {e to} each site — the measured per-replica load. *)
