(** Deterministic discrete-event simulation engine.

    Virtual time is a float (think milliseconds).  Events are closures
    executed in timestamp order, FIFO among equal timestamps.  All
    randomness flows from the engine's seeded {!Dsutil.Rng}, so a run is a
    pure function of its seed. *)

type t

val create : ?seed:int -> unit -> t
(** Default seed 42. *)

val now : t -> float
(** Current virtual time. *)

val rng : t -> Dsutil.Rng.t
(** The engine's root random stream; [split] it per component. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the closure [delay] time units from now.  Negative delays raise
    [Invalid_argument]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; times in the past raise [Invalid_argument]. *)

type handler
(** A preallocated event handler: [run meta payload] receives the int and
    payload passed to {!schedule_packed}.  Hot callers (message delivery,
    per-operation timeouts) build ONE handler up front and thread
    per-event arguments through the two slots, so scheduling allocates
    nothing — unlike {!schedule}, whose closure costs several words per
    event. *)

val handler : (int -> Obj.t -> unit) -> handler

val schedule_packed : t -> delay:float -> handler -> meta:int -> payload:Obj.t -> unit
(** Run [handler] with [meta] and [payload] after [delay].  Ordering is
    identical to {!schedule} (timestamp order, FIFO among equals — both
    share one queue).  Negative delays raise [Invalid_argument]. *)

val run : ?until:float -> t -> unit
(** Process events until the queue drains or virtual time would pass
    [until].  Events at exactly [until] are processed. *)

val step : t -> bool
(** Process one event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)
