(** Deterministic discrete-event simulation engine.

    Virtual time is a float (think milliseconds).  Events are closures
    executed in timestamp order, FIFO among equal timestamps.  All
    randomness flows from the engine's seeded {!Dsutil.Rng}, so a run is a
    pure function of its seed. *)

type t

val create : ?seed:int -> unit -> t
(** Default seed 42. *)

val now : t -> float
(** Current virtual time. *)

val rng : t -> Dsutil.Rng.t
(** The engine's root random stream; [split] it per component. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the closure [delay] time units from now.  Negative delays raise
    [Invalid_argument]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; times in the past raise [Invalid_argument]. *)

val run : ?until:float -> t -> unit
(** Process events until the queue drains or virtual time would pass
    [until].  Events at exactly [until] are processed. *)

val step : t -> bool
(** Process one event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)
