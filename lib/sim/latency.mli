(** Message latency models. *)

type t =
  | Constant of float
  | Uniform of float * float  (** [Uniform (lo, hi)] *)
  | Exponential of float  (** mean; a minimum propagation delay of a tenth
                              of the mean is always added so causality
                              never collapses to zero *)

val sample : t -> Dsutil.Rng.t -> float
val mean : t -> float
val pp : Format.formatter -> t -> unit
