(** Structured event traces of a simulation run.

    A trace is an append-only, optionally bounded buffer of typed events
    with virtual timestamps.  The {!Network} emits into a trace when one
    is attached; protocol layers can append their own {!Custom} events.
    Traces make failure scenarios auditable: tests assert on them and the
    CLI can dump them. *)

type event =
  | Send of { src : int; dst : int; info : string }
  | Deliver of { src : int; dst : int; info : string }
  | Drop of { src : int; dst : int; reason : string }
  | Crash of int
  | Recover of int
  | Partition_change of string
  | Custom of { tag : string; info : string }

type entry = { time : float; event : event }

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the buffer (oldest entries are discarded);
    unbounded by default. *)

val record : t -> time:float -> event -> unit
val length : t -> int
val dropped : t -> int
(** Entries discarded due to the capacity bound. *)

val entries : t -> entry list
(** Chronological. *)

val filter : t -> (event -> bool) -> entry list

val count_matching : t -> (event -> bool) -> int

val find_first : t -> (event -> bool) -> entry option

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
val pp_entry : Format.formatter -> entry -> unit

val dump : t -> max:int -> string
(** The last [max] entries, one per line. *)
