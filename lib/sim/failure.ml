module Rng = Dsutil.Rng

type event =
  | Crash of int
  | Recover of int
  | Partition of int list list
  | Heal

type entry = { time : float; event : event }

let apply net entries =
  let engine = Network.engine net in
  (* Validate the whole schedule before touching the engine: a stale entry
     must not leave a half-applied schedule behind (the engine would raise
     mid-iteration otherwise, after earlier entries were already queued). *)
  let now = Engine.now engine in
  List.iter
    (fun { time; _ } ->
      if time < now then
        invalid_arg
          (Printf.sprintf
             "Failure.apply: entry at t=%g is in the engine's past (now %g)"
             time now))
    entries;
  (* Schedule in time order so equal-timestamp events fire in schedule
     order regardless of how the caller assembled the list (the engine is
     FIFO among equal timestamps). *)
  let entries =
    List.stable_sort (fun a b -> Float.compare a.time b.time) entries
  in
  List.iter
    (fun { time; event } ->
      Engine.schedule_at engine ~time (fun () ->
          match event with
          | Crash i -> Network.crash net i
          | Recover i -> Network.recover net i
          | Partition groups -> Network.partition net groups
          | Heal -> Network.heal net))
    entries

let random_crash_recovery ~rng ~n ~horizon ~mtbf ~mttr =
  if mtbf <= 0.0 || mttr <= 0.0 then
    invalid_arg "Failure.random_crash_recovery: non-positive means";
  let entries = ref [] in
  for site = 0 to n - 1 do
    let t = ref (Rng.exponential rng mtbf) in
    let up = ref true in
    while !t < horizon do
      entries :=
        { time = !t; event = (if !up then Crash site else Recover site) }
        :: !entries;
      let dwell = Rng.exponential rng (if !up then mttr else mtbf) in
      up := not !up;
      t := !t +. dwell
    done
  done;
  List.sort (fun a b -> Float.compare a.time b.time) !entries

let steady_state_availability ~mtbf ~mttr = mtbf /. (mtbf +. mttr)

let crash_fraction ~rng ~n ~at ~fraction =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Failure.crash_fraction: fraction out of [0,1]";
  let ids = Array.init n Fun.id in
  Rng.shuffle rng ids;
  let k = int_of_float (fraction *. float_of_int n) in
  List.init k (fun i -> { time = at; event = Crash ids.(i) })

let pp_entry ppf { time; event } =
  match event with
  | Crash i -> Format.fprintf ppf "%.2f: crash %d" time i
  | Recover i -> Format.fprintf ppf "%.2f: recover %d" time i
  | Partition groups ->
    Format.fprintf ppf "%.2f: partition %a" time
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
            Format.pp_print_int))
      groups
  | Heal -> Format.fprintf ppf "%.2f: heal" time
