type event =
  | Send of { src : int; dst : int; info : string }
  | Deliver of { src : int; dst : int; info : string }
  | Drop of { src : int; dst : int; reason : string }
  | Crash of int
  | Recover of int
  | Partition_change of string
  | Custom of { tag : string; info : string }

type entry = { time : float; event : event }

type t = {
  capacity : int option;
  buffer : entry Queue.t;
  mutable dropped : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Trace.create: capacity must be positive"
  | _ -> ());
  { capacity; buffer = Queue.create (); dropped = 0 }

let record t ~time event =
  Queue.add { time; event } t.buffer;
  match t.capacity with
  | Some cap when Queue.length t.buffer > cap ->
    ignore (Queue.pop t.buffer);
    t.dropped <- t.dropped + 1
  | _ -> ()

let length t = Queue.length t.buffer
let dropped t = t.dropped
let entries t = List.of_seq (Queue.to_seq t.buffer)

let filter t pred =
  List.filter (fun e -> pred e.event) (entries t)

let count_matching t pred = List.length (filter t pred)

let find_first t pred =
  Seq.find (fun e -> pred e.event) (Queue.to_seq t.buffer)

let clear t =
  Queue.clear t.buffer;
  t.dropped <- 0

let pp_event ppf = function
  | Send { src; dst; info } -> Format.fprintf ppf "send %d->%d %s" src dst info
  | Deliver { src; dst; info } ->
    Format.fprintf ppf "deliver %d->%d %s" src dst info
  | Drop { src; dst; reason } ->
    Format.fprintf ppf "drop %d->%d (%s)" src dst reason
  | Crash site -> Format.fprintf ppf "crash %d" site
  | Recover site -> Format.fprintf ppf "recover %d" site
  | Partition_change desc -> Format.fprintf ppf "partition %s" desc
  | Custom { tag; info } -> Format.fprintf ppf "%s %s" tag info

let pp_entry ppf { time; event } =
  Format.fprintf ppf "%10.3f  %a" time pp_event event

let dump t ~max =
  let all = entries t in
  let len = List.length all in
  let tail = if len <= max then all else List.filteri (fun i _ -> i >= len - max) all in
  String.concat "\n" (List.map (Format.asprintf "%a" pp_entry) tail)
