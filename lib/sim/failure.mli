(** Timed failure schedules: crash/recovery and partition events applied to
    a network at predetermined virtual times. *)

type event =
  | Crash of int
  | Recover of int
  | Partition of int list list
  | Heal

type entry = { time : float; event : event }

val apply : 'msg Network.t -> entry list -> unit
(** Schedules every entry on the network's engine, in sorted time order
    (stable for equal timestamps, so schedule order breaks ties).  Raises
    [Invalid_argument] — before anything is scheduled — if any entry's time
    is in the engine's past. *)

val random_crash_recovery :
  rng:Dsutil.Rng.t ->
  n:int ->
  horizon:float ->
  mtbf:float ->
  mttr:float ->
  entry list
(** Independent per-site alternating up/down renewal processes:
    exponential time-between-failures with mean [mtbf], exponential repair
    with mean [mttr], truncated at [horizon].  The stationary availability
    of each site is mtbf/(mtbf+mttr). *)

val steady_state_availability : mtbf:float -> mttr:float -> float

val crash_fraction :
  rng:Dsutil.Rng.t -> n:int -> at:float -> fraction:float -> entry list
(** One-shot: crashes ⌊fraction·n⌋ distinct random sites at time [at]. *)

val pp_entry : Format.formatter -> entry -> unit
