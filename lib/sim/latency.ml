module Rng = Dsutil.Rng

type t = Constant of float | Uniform of float * float | Exponential of float

(* The exponential draw is written out inline: layering through
   [Rng.exponential] and [Rng.uniform_in] costs a boxed float return per
   call level on the per-message hot path.  The arithmetic is identical
   ([Rng.float] then the same transform), so the draws are unchanged. *)
let sample t rng =
  match t with
  | Constant d -> d
  | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
  | Exponential mean ->
    let u = Rng.float rng 1.0 in
    let u = if u <= 0.0 then 1e-300 else u in
    (0.1 *. mean) +. (-.mean *. log u)

let mean = function
  | Constant d -> d
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Exponential mean -> 1.1 *. mean

let pp ppf = function
  | Constant d -> Format.fprintf ppf "constant(%.2f)" d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%.2f, %.2f)" lo hi
  | Exponential mean -> Format.fprintf ppf "exponential(%.2f)" mean
