module Rng = Dsutil.Rng

type t = Constant of float | Uniform of float * float | Exponential of float

let sample t rng =
  match t with
  | Constant d -> d
  | Uniform (lo, hi) -> Rng.uniform_in rng lo hi
  | Exponential mean -> (0.1 *. mean) +. Rng.exponential rng mean

let mean = function
  | Constant d -> d
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Exponential mean -> 1.1 *. mean

let pp ppf = function
  | Constant d -> Format.fprintf ppf "constant(%.2f)" d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%.2f, %.2f)" lo hi
  | Exponential mean -> Format.fprintf ppf "exponential(%.2f)" mean
