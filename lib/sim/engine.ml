module Heap = Dsutil.Heap
module Rng = Dsutil.Rng

type t = {
  mutable clock : float;
  queue : (float, unit -> unit) Heap.t;
  rng : Rng.t;
}

let create ?(seed = 42) () =
  { clock = 0.0; queue = Heap.create ~compare:Float.compare; rng = Rng.create seed }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Heap.push t.queue time f

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Heap.push t.queue (t.clock +. delay) f

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    f ();
    true

let run ?until t =
  (match until with
  | None -> while step t do () done
  | Some limit ->
    (* Bounded loop compares the head key in place ([Heap.min_key]): the
       option/pair a peek would allocate per event adds up over the
       millions of events a campaign cell processes. *)
    while (not (Heap.is_empty t.queue)) && Heap.min_key t.queue <= limit do
      ignore (step t)
    done);
  match until with
  | Some limit when t.clock < limit && Heap.is_empty t.queue ->
    (* Advance the clock to the horizon so repeated bounded runs compose. *)
    t.clock <- limit
  | _ -> ()

let pending t = Heap.length t.queue
