module Fheap = Dsutil.Fheap
module Rng = Dsutil.Rng

(* The clock lives in its own float-only record: float fields of such a
   record are stored flat, so advancing the clock on every event is a
   plain store.  Inlined in the mixed record below, each [<-] would box a
   fresh float — three words per event, millions of events per run. *)
type clock = { mutable now : float }

(* An event is (handler, meta, payload): closure events use the shared
   [run_closure] handler with the closure as payload, while hot callers
   (message delivery, per-op timeouts) keep ONE preallocated handler and
   thread per-event arguments through the int [meta] and the [payload]
   slot — no per-event closure, no per-event allocation at all. *)
type handler = { run : int -> Obj.t -> unit }

type t = {
  clock : clock;
  queue : (handler, Obj.t) Fheap.t;
  rng : Rng.t;
  advance : float -> handler -> int -> Obj.t -> unit;
      (* preallocated [pop_apply] continuation: set the clock, run the
         event — so the run loop allocates nothing per event *)
}

let run_closure = { run = (fun _ p -> (Obj.obj p : unit -> unit) ()) }
let dummy_handler = { run = (fun _ _ -> ()) }

let create ?(seed = 42) () =
  let clock = { now = 0.0 } in
  {
    clock;
    queue = Fheap.create ~dummy_h:dummy_handler ~dummy_p:(Obj.repr 0);
    rng = Rng.create seed;
    advance =
      (fun time h meta p ->
        clock.now <- time;
        h.run meta p);
  }

let now t = t.clock.now
let rng t = t.rng

let schedule_at t ~time f =
  if time < t.clock.now then invalid_arg "Engine.schedule_at: time in the past";
  Fheap.push t.queue time run_closure 0 (Obj.repr f)

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Fheap.push t.queue (t.clock.now +. delay) run_closure 0 (Obj.repr f)

let handler run = { run }

let schedule_packed t ~delay h ~meta ~payload =
  if delay < 0.0 then invalid_arg "Engine.schedule_packed: negative delay";
  Fheap.push t.queue (t.clock.now +. delay) h meta payload

let step t = Fheap.pop_apply t.queue t.advance

let run ?until t =
  (match until with
  | None -> while step t do () done
  | Some limit ->
    (* Bounded loop compares the head key in place ([Fheap.min_key]): the
       option/pair a peek would allocate per event adds up over the
       millions of events a campaign cell processes. *)
    while (not (Fheap.is_empty t.queue)) && Fheap.min_key t.queue <= limit do
      ignore (step t)
    done);
  match until with
  | Some limit when t.clock.now < limit && Fheap.is_empty t.queue ->
    (* Advance the clock to the horizon so repeated bounded runs compose. *)
    t.clock.now <- limit
  | _ -> ()

let pending t = Fheap.length t.queue
