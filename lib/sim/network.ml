module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type crash_mode = Fail_stop | Amnesia

type crash_hooks = {
  on_crash : crash_mode -> unit;
  on_recover : unit -> unit;
}

type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_loss : int;
  mutable dropped_crash : int;
  mutable dropped_partition : int;
  mutable dropped_no_handler : int;
  mutable dropped_overload : int;
  mutable coalesced : int;
}

(* Pre-resolved metric handles: looked up once in [attach_obs] so the send
   path never hashes a metric name. *)
type obs_counters = {
  o_sent : Obs.Metrics.counter;
  o_delivered : Obs.Metrics.counter;
  o_drop_loss : Obs.Metrics.counter;
  o_drop_crash : Obs.Metrics.counter;
  o_drop_partition : Obs.Metrics.counter;
  o_drop_no_handler : Obs.Metrics.counter;
  o_drop_overload : Obs.Metrics.counter;
  o_coalesced : Obs.Metrics.counter;
  o_queue_depth : Obs.Metrics.histogram;
  o_site_sent : Obs.Metrics.counter array;
  o_site_delivered : Obs.Metrics.counter array;
}

(* Per-site ingress queue and service model, allocated only for sites that
   opted in through [set_service]/[set_priority]/[set_overflow]; every
   other site keeps the instant-delivery path untouched. *)
type 'msg service = {
  mutable capacity : int;  (* 0 = unbounded *)
  mutable service_time : float;
  squeue : (int * 'msg) Queue.t;  (* (src, msg); head is in service *)
  mutable busy : bool;  (* a service-completion event is scheduled *)
  mutable epoch : int;  (* bumped by crash so stale completions die *)
  mutable peak : int;
  mutable priority : (src:int -> 'msg -> bool) option;
  mutable overflow : (src:int -> 'msg -> unit) option;
}

type 'msg t = {
  engine : Engine.t;
  n : int;
  latency : Latency.t;
  mutable loss_rate : float;
  fifo_floor : float array;  (* per src*n+dst: last delivery time; empty
                                unless FIFO ordering was requested *)
  rng : Rng.t;
  handlers : (src:int -> 'msg -> unit) option array;
  up : bool array;
  alive : Bitset.t;  (* mirrors [up], maintained by crash/recover, so
                        alive_view is a word blit, not an n-site loop *)
  group : int array;  (* partition group per site; all 0 when healed *)
  mutable mode : crash_mode;
  hooks : crash_hooks option array;
  services : 'msg service option array;
  counters : counters;
  delivered_to : int array;
  mutable trace : 'msg tracer option;
  mutable obs : obs_counters option;
  mutable deferred : Engine.handler;
      (* preallocated arrival handler: (src, dst) packed in the event's
         int slot, the message in its payload slot, so a send schedules
         no closure *)
}

and 'msg tracer = { sink : Trace.t; describe : 'msg -> string }

(* Sentinel handler installed by [create]; the first send swaps in the
   real arrival handler (defined below, next to the delivery logic). *)
let uninit_deferred = Engine.handler (fun _ _ -> ())

let create ~engine ~n ?(latency = Latency.Exponential 1.0) ?(loss_rate = 0.0)
    ?(fifo = false) () =
  if n < 1 then invalid_arg "Network.create: need at least one site";
  if loss_rate < 0.0 || loss_rate >= 1.0 then
    invalid_arg "Network.create: loss_rate out of [0,1)";
  {
    engine;
    n;
    latency;
    loss_rate;
    fifo_floor = (if fifo then Array.make (n * n) 0.0 else [||]);
    rng = Rng.split (Engine.rng engine);
    handlers = Array.make n None;
    up = Array.make n true;
    alive =
      (let s = Bitset.create n in
       for i = 0 to n - 1 do
         Bitset.add s i
       done;
       s);
    group = Array.make n 0;
    mode = Fail_stop;
    hooks = Array.make n None;
    services = Array.make n None;
    counters =
      {
        sent = 0;
        delivered = 0;
        dropped_loss = 0;
        dropped_crash = 0;
        dropped_partition = 0;
        dropped_no_handler = 0;
        dropped_overload = 0;
        coalesced = 0;
      };
    delivered_to = Array.make n 0;
    trace = None;
    obs = None;
    deferred = uninit_deferred;
  }

let engine t = t.engine
let size t = t.n

let attach_trace t ?(describe = fun _ -> "") sink =
  t.trace <- Some { sink; describe }

let attach_obs t obs =
  let m = Obs.metrics obs in
  (* Seed each counter with the struct counter's current value: obs may be
     attached after traffic already flowed (or after a mid-run
     [set_loss_rate] produced drops), and the two sources must agree — the
     struct counters are the source of truth, the obs counters a view. *)
  let c name seed =
    let counter = Obs.Metrics.counter m name in
    let behind = seed - Obs.Metrics.counter_value counter in
    if behind > 0 then Obs.Metrics.add counter behind;
    counter
  in
  t.obs <-
    Some
      {
        o_sent = c "net.sent" t.counters.sent;
        o_delivered = c "net.delivered" t.counters.delivered;
        o_drop_loss = c "net.dropped.loss" t.counters.dropped_loss;
        o_drop_crash = c "net.dropped.crash" t.counters.dropped_crash;
        o_drop_partition =
          c "net.dropped.partition" t.counters.dropped_partition;
        o_drop_no_handler =
          c "net.dropped.no_handler" t.counters.dropped_no_handler;
        o_drop_overload = c "net.dropped.overload" t.counters.dropped_overload;
        o_coalesced = c "net.coalesced" t.counters.coalesced;
        o_queue_depth = Obs.Metrics.histogram m "net.queue.depth";
        o_site_sent =
          (* no per-site struct counter for sends; seed 0 *)
          Array.init t.n (fun i -> c (Printf.sprintf "net.site.%d.sent" i) 0);
        o_site_delivered =
          Array.init t.n (fun i ->
              c (Printf.sprintf "net.site.%d.delivered" i) t.delivered_to.(i));
      }

let obs_incr t f =
  match t.obs with None -> () | Some o -> Obs.Metrics.incr (f o)

let emit t event =
  match t.trace with
  | None -> ()
  | Some { sink; _ } -> Trace.record sink ~time:(Engine.now t.engine) event

(* Send/deliver trace events take src/dst directly rather than a [mk]
   closure: the closure literal would be allocated per message even with
   tracing off. *)
let emit_send t ~src ~dst msg =
  match t.trace with
  | None -> ()
  | Some { sink; describe } ->
    Trace.record sink ~time:(Engine.now t.engine)
      (Trace.Send { src; dst; info = describe msg })

let emit_deliver t ~src ~dst msg =
  match t.trace with
  | None -> ()
  | Some { sink; describe } ->
    Trace.record sink ~time:(Engine.now t.engine)
      (Trace.Deliver { src; dst; info = describe msg })

let check_site t i =
  if i < 0 || i >= t.n then invalid_arg "Network: bad site id"

let set_handler t ~site f =
  check_site t site;
  t.handlers.(site) <- Some f

let reachable t a b =
  check_site t a;
  check_site t b;
  t.group.(a) = t.group.(b)

(* Hand the message to the destination's handler: the tail of both the
   instant-delivery path and the service-queue path. *)
let deliver t ~src ~dst msg =
  match t.handlers.(dst) with
  | None ->
    (* A missing handler is a wiring problem, not a crash: count it
       separately so crash statistics stay truthful. *)
    t.counters.dropped_no_handler <- t.counters.dropped_no_handler + 1;
    obs_incr t (fun o -> o.o_drop_no_handler);
    emit t (Trace.Drop { src; dst; reason = "no handler" })
  | Some h ->
    t.counters.delivered <- t.counters.delivered + 1;
    t.delivered_to.(dst) <- t.delivered_to.(dst) + 1;
    (match t.obs with
    | None -> ()
    | Some o ->
      Obs.Metrics.incr o.o_delivered;
      Obs.Metrics.incr o.o_site_delivered.(dst));
    emit_deliver t ~src ~dst msg;
    h ~src msg

(* One server per site: the queue head is in service; its completion event
   pops it, hands it to the handler, and re-arms for the next message.
   [epoch] guards against completions scheduled before a crash wiped the
   queue. *)
let rec serve t ~dst s =
  s.busy <- true;
  let epoch = s.epoch in
  Engine.schedule t.engine ~delay:s.service_time (fun () ->
      if s.epoch = epoch then begin
        (match Queue.take_opt s.squeue with
        | None -> ()
        | Some (src, msg) -> deliver t ~src ~dst msg);
        if Queue.is_empty s.squeue then s.busy <- false else serve t ~dst s
      end)

(* Arrival at a site with a service model: bounded admission (priority
   traffic always admitted), then FIFO service. *)
let enqueue t ~src ~dst s msg =
  let priority =
    match s.priority with None -> false | Some p -> p ~src msg
  in
  if (not priority) && s.capacity > 0 && Queue.length s.squeue >= s.capacity
  then begin
    t.counters.dropped_overload <- t.counters.dropped_overload + 1;
    obs_incr t (fun o -> o.o_drop_overload);
    emit t (Trace.Drop { src; dst; reason = "overload" });
    match s.overflow with None -> () | Some f -> f ~src msg
  end
  else begin
    Queue.add (src, msg) s.squeue;
    let depth = Queue.length s.squeue in
    if depth > s.peak then s.peak <- depth;
    (match t.obs with
    | None -> ()
    | Some o -> Obs.Metrics.observe o.o_queue_depth (float_of_int depth));
    if not s.busy then serve t ~dst s
  end

(* The one place a loss drop is accounted: struct counter, obs counter and
   trace move together, so the sources cannot diverge no matter when
   [set_loss_rate] changes the rate (the decision samples [t.loss_rate] at
   send time; the accounting is rate-independent). *)
let count_loss_drop t ~src ~dst =
  t.counters.dropped_loss <- t.counters.dropped_loss + 1;
  obs_incr t (fun o -> o.o_drop_loss);
  emit t (Trace.Drop { src; dst; reason = "loss" })

(* Message arrival (the deferred half of [send]): crash/partition checks
   happen at delivery time, so in-flight messages die with their
   destination. *)
let arrive t ~src ~dst msg =
  if not t.up.(dst) then begin
    t.counters.dropped_crash <- t.counters.dropped_crash + 1;
    obs_incr t (fun o -> o.o_drop_crash);
    emit t (Trace.Drop { src; dst; reason = "destination down" })
  end
  else if t.group.(src) <> t.group.(dst) then begin
    t.counters.dropped_partition <- t.counters.dropped_partition + 1;
    obs_incr t (fun o -> o.o_drop_partition);
    emit t (Trace.Drop { src; dst; reason = "partition" })
  end
  else begin
    match t.services.(dst) with
    | None -> deliver t ~src ~dst msg
    | Some s -> enqueue t ~src ~dst s msg
  end

(* Install the preallocated arrival handler: one handler per network, the
   per-message (src, dst) packed into the event's int slot (20 bits each —
   universes are at most a few hundred sites) and the message in its
   payload slot.  Closure-based scheduling would cost several words per
   message. *)
let init_deferred t =
  t.deferred <-
    Engine.handler (fun meta p ->
        arrive t ~src:(meta lsr 20) ~dst:(meta land 0xFFFFF) (Obj.obj p))

let send t ?(units = 1) ~src ~dst msg =
  check_site t src;
  check_site t dst;
  t.counters.sent <- t.counters.sent + 1;
  (* A coalesced envelope carries [units] logical operations in one
     message: one send, one service-queue slot, one delivery — that is
     the amortization.  The counter records how many per-op messages the
     coalescing saved. *)
  if units > 1 then begin
    t.counters.coalesced <- t.counters.coalesced + (units - 1);
    match t.obs with
    | None -> ()
    | Some o -> Obs.Metrics.add o.o_coalesced (units - 1)
  end;
  (match t.obs with
  | None -> ()
  | Some o ->
    Obs.Metrics.incr o.o_sent;
    Obs.Metrics.incr o.o_site_sent.(src));
  emit_send t ~src ~dst msg;
  if not t.up.(src) then begin
    t.counters.dropped_crash <- t.counters.dropped_crash + 1;
    obs_incr t (fun o -> o.o_drop_crash);
    emit t (Trace.Drop { src; dst; reason = "sender down" })
  end
  else if t.loss_rate > 0.0 && Rng.bernoulli t.rng t.loss_rate then
    count_loss_drop t ~src ~dst
  else begin
    let delay = Latency.sample t.latency t.rng in
    let delay =
      (* FIFO links: never deliver before an earlier message of the same
         (src, dst) pair. *)
      if Array.length t.fifo_floor = 0 then delay
      else begin
        let idx = (src * t.n) + dst in
        let at =
          Float.max (Engine.now t.engine +. delay) (t.fifo_floor.(idx) +. 1e-9)
        in
        t.fifo_floor.(idx) <- at;
        at -. Engine.now t.engine
      end
    in
    if t.deferred == uninit_deferred then init_deferred t;
    Engine.schedule_packed t.engine ~delay t.deferred
      ~meta:((src lsl 20) lor dst) ~payload:(Obj.repr msg)
  end

let broadcast t ~src ~dst msg = List.iter (fun d -> send t ~src ~dst:d msg) dst

(* --- per-site overload model -------------------------------------------- *)

let service t site =
  check_site t site;
  match t.services.(site) with
  | Some s -> s
  | None ->
    let s =
      {
        capacity = 0;
        service_time = 0.0;
        squeue = Queue.create ();
        busy = false;
        epoch = 0;
        peak = 0;
        priority = None;
        overflow = None;
      }
    in
    t.services.(site) <- Some s;
    s

let set_service t ~site ?(capacity = 0) ?(service_time = 0.0) () =
  if capacity < 0 then invalid_arg "Network.set_service: negative capacity";
  if service_time < 0.0 then
    invalid_arg "Network.set_service: negative service time";
  let s = service t site in
  s.capacity <- capacity;
  s.service_time <- service_time

let set_priority t ~site p = (service t site).priority <- Some p
let set_overflow t ~site f = (service t site).overflow <- Some f

let queue_depth t site =
  check_site t site;
  match t.services.(site) with None -> 0 | Some s -> Queue.length s.squeue

let queue_peak t site =
  check_site t site;
  match t.services.(site) with None -> 0 | Some s -> s.peak

let set_crash_mode t mode = t.mode <- mode
let crash_mode t = t.mode

let set_crash_hooks t ~site ?(on_crash = fun _ -> ()) ?(on_recover = fun () -> ())
    () =
  check_site t site;
  t.hooks.(site) <- Some { on_crash; on_recover }

(* Crash/recover are transition-guarded: a redundant call is a no-op — no
   duplicate trace event, no hook invocation, and the alive bitset stays in
   lockstep with [up].  Hooks fire after the state change, so an [on_crash]
   callback already sees its site as down. *)
let crash t i =
  check_site t i;
  if t.up.(i) then begin
    emit t (Trace.Crash i);
    t.up.(i) <- false;
    Bitset.remove t.alive i;
    (* Queued-but-unserved messages die with the site; the epoch bump
       invalidates any in-flight service-completion event. *)
    (match t.services.(i) with
    | None -> ()
    | Some s ->
      let pending = Queue.length s.squeue in
      if pending > 0 then begin
        t.counters.dropped_crash <- t.counters.dropped_crash + pending;
        (match t.obs with
        | None -> ()
        | Some o -> Obs.Metrics.add o.o_drop_crash pending);
        Queue.clear s.squeue
      end;
      s.epoch <- s.epoch + 1;
      s.busy <- false);
    match t.hooks.(i) with Some h -> h.on_crash t.mode | None -> ()
  end

let recover t i =
  check_site t i;
  if not t.up.(i) then begin
    emit t (Trace.Recover i);
    t.up.(i) <- true;
    Bitset.add t.alive i;
    match t.hooks.(i) with Some h -> h.on_recover () | None -> ()
  end

let is_up t i =
  check_site t i;
  t.up.(i)

(* Copy rather than expose [t.alive]: callers (oracle detectors) may hold
   the snapshot across failure events or mutate it while planning. *)
let alive_view t = Bitset.copy t.alive

let partition t groups =
  emit t
    (Trace.Partition_change
       (String.concat " | "
          (List.map
             (fun g -> String.concat "," (List.map string_of_int g))
             groups)));
  Array.fill t.group 0 t.n 0;
  List.iteri
    (fun g sites ->
      List.iter
        (fun i ->
          check_site t i;
          t.group.(i) <- g + 1)
        sites)
    groups

let heal t =
  emit t (Trace.Partition_change "healed");
  Array.fill t.group 0 t.n 0

let set_loss_rate t rate =
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Network.set_loss_rate: loss_rate out of [0,1)";
  t.loss_rate <- rate

let counters t = t.counters
let per_site_delivered t = Array.copy t.delivered_to
