type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_buckets : Dsutil.Histogram.t;
  h_summary : Dsutil.Stats.t;
}

type t = {
  m_counters : (string, counter) Hashtbl.t;
  m_gauges : (string, gauge) Hashtbl.t;
  m_histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    m_counters = Hashtbl.create 32;
    m_gauges = Hashtbl.create 8;
    m_histograms = Hashtbl.create 16;
  }

let get_or_create table name make =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.replace table name v;
    v

let counter t name =
  get_or_create t.m_counters name (fun () -> { c_name = name; c_value = 0 })

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let counter_name c = c.c_name
let counter_value c = c.c_value

let counter_of t name =
  match Hashtbl.find_opt t.m_counters name with
  | Some c -> c.c_value
  | None -> 0

let gauge t name =
  get_or_create t.m_gauges name (fun () -> { g_name = name; g_value = 0.0 })

let set g v = g.g_value <- v
let gauge_name g = g.g_name
let gauge_value g = g.g_value

let histogram t ?(base = 2.0) ?(buckets = 64) name =
  get_or_create t.m_histograms name (fun () ->
      {
        h_name = name;
        h_buckets = Dsutil.Histogram.create ~base ~buckets ();
        h_summary = Dsutil.Stats.create ();
      })

let observe h x =
  Dsutil.Histogram.add h.h_buckets x;
  Dsutil.Stats.add h.h_summary x

let histogram_name h = h.h_name
let summary h = h.h_summary
let buckets h = h.h_buckets

let sorted_bindings table value =
  Hashtbl.fold (fun name v acc -> (name, value v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.m_counters (fun c -> c.c_value)
let gauges t = sorted_bindings t.m_gauges (fun g -> g.g_value)
let histograms t = sorted_bindings t.m_histograms Fun.id
