(** Named-metric registry: counters, gauges and latency histograms.

    Metrics are created on first use ([counter], [gauge] and [histogram]
    are get-or-create) and then held by reference, so an instrumentation
    point pays one hashtable lookup when it attaches and a plain field
    update per event afterwards.  Histograms pair a log-bucketed
    {!Dsutil.Histogram} (cheap shape) with an exact {!Dsutil.Stats}
    summary (percentiles). *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Counters} *)

val counter : t -> string -> counter
(** Get-or-create the named counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_name : counter -> string
val counter_value : counter -> int

val counter_of : t -> string -> int
(** Current value of the named counter; 0 when it was never created. *)

(** {2 Gauges} *)

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_name : gauge -> string
val gauge_value : gauge -> float

(** {2 Histograms} *)

val histogram : t -> ?base:float -> ?buckets:int -> string -> histogram
(** Get-or-create; [base]/[buckets] (defaults 2.0/64) only apply to the
    first creation of a name. *)

val observe : histogram -> float -> unit
val histogram_name : histogram -> string

val summary : histogram -> Dsutil.Stats.t
(** Exact running summary of every observation (mean, percentiles). *)

val buckets : histogram -> Dsutil.Histogram.t
(** The log-bucketed shape, e.g. for {!Dsutil.Histogram.render}. *)

(** {2 Enumeration (sorted by name)} *)

val counters : t -> (string * int) list
val gauges : t -> (string * float) list
val histograms : t -> (string * histogram) list
