type phase_kind = Query | Prepare | Commit | Lock

let phase_kind_name = function
  | Query -> "query"
  | Prepare -> "prepare"
  | Commit -> "commit"
  | Lock -> "lock"

type phase = {
  kind : phase_kind;
  p_started : float;
  mutable p_ended : float option;
  mutable quorum : int list;
  mutable timed_out : bool;
}

type outcome = Ok | Failed of string

type t = {
  id : int;
  op : string;
  site : int;
  key : int option;
  started : float;
  mutable attempts : int;
  mutable backoff_total : float;
  mutable rev_phases : phase list;
  mutable ended : float option;
  mutable outcome : outcome option;
  mutable result_ts : (int * int) option;
}

let phases t = List.rev t.rev_phases
let closed t = t.ended <> None
let retries t = max 0 (t.attempts - 1)

let duration t =
  match t.ended with None -> None | Some e -> Some (e -. t.started)

let phase_duration p =
  match p.p_ended with None -> None | Some e -> Some (e -. p.p_started)

(* --- JSON rendering ------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let phase_json p =
  Printf.sprintf
    "{\"phase\":\"%s\",\"started\":%s,\"ended\":%s,\"timed_out\":%b,\"quorum\":[%s]}"
    (phase_kind_name p.kind) (num p.p_started)
    (match p.p_ended with None -> "null" | Some e -> num e)
    p.timed_out
    (String.concat "," (List.map string_of_int p.quorum))

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "{\"id\":%d,\"op\":\"%s\"" t.id (escape t.op));
  Buffer.add_string b (Printf.sprintf ",\"site\":%d" t.site);
  (match t.key with
  | Some k -> Buffer.add_string b (Printf.sprintf ",\"key\":%d" k)
  | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"started\":%s" (num t.started));
  Buffer.add_string b
    (Printf.sprintf ",\"ended\":%s"
       (match t.ended with None -> "null" | Some e -> num e));
  (match t.outcome with
  | Some Ok -> Buffer.add_string b ",\"outcome\":\"ok\""
  | Some (Failed reason) ->
    Buffer.add_string b
      (Printf.sprintf ",\"outcome\":\"failed\",\"reason\":\"%s\"" (escape reason))
  | None -> Buffer.add_string b ",\"outcome\":null");
  (match t.result_ts with
  | Some (version, sid) ->
    Buffer.add_string b
      (Printf.sprintf ",\"result_ts\":{\"version\":%d,\"sid\":%d}" version sid)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf ",\"attempts\":%d,\"retries\":%d,\"backoff_total\":%s"
       t.attempts (retries t) (num t.backoff_total));
  Buffer.add_string b ",\"phases\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (phase_json p))
    (phases t);
  Buffer.add_string b "]}";
  Buffer.contents b
