(** Operation-level metrics and span tracing.

    [Obs] is the runtime handle instrumented components hold.  It owns a
    {!Metrics} registry, a span id allocator, and a list of {!Sink}s that
    receive each span as it closes.  Components take an [Obs.t option];
    [None] makes every instrumentation site a single pattern match with no
    allocation, so the hot path is a no-op when observability is off.

    Times are stamped from a pluggable clock.  In simulations the harness
    calls {!set_clock} with the engine's [now] after building the engine;
    until then the clock reads 0.

    The span lifecycle maintains automatic metrics under a fixed naming
    convention:

    - [ops.<op>.started], [ops.<op>.ok], [ops.<op>.failed] (counters)
    - [ops.<op>.latency] (histogram, whole-span durations)
    - [ops.<op>.retries] (counter, one per retry)
    - [phase.<kind>.latency] (histogram), [phase.<kind>.timeout] (counter)
    - [backoff.wait] (histogram of individual backoff pauses)

    Call sites add their own counters on top (e.g. [net.sent],
    [coord.deadline_exceeded]); see docs/PROTOCOL.md for the full
    catalogue. *)

module Metrics : module type of struct
  include Metrics
end

module Span : module type of struct
  include Span
end

module Sink : module type of struct
  include Sink
end

type t

val create : ?clock:(unit -> float) -> unit -> t
val set_clock : t -> (unit -> float) -> unit
val now : t -> float
val metrics : t -> Metrics.t
val add_sink : t -> Sink.t -> unit

val flush : t -> unit
(** Flush every attached sink. *)

(** {2 Span lifecycle} *)

val span : t -> op:string -> site:int -> ?key:int -> unit -> Span.t
(** Open a span.  Increments [ops.<op>.started]; the span starts with
    [attempts = 1] and no phases. *)

val phase : t -> Span.t -> kind:Span.phase_kind -> ?quorum:int list -> unit -> unit
(** Begin a phase.  A still-open previous phase is closed first (not
    timed out) so a span never has two open phases. *)

val set_result_ts : t -> Span.t -> version:int -> sid:int -> unit
(** Record the timestamp the operation returned (read: newest observed;
    write: committed).  The consistency checker matches reads against
    writes through this field. *)

val set_quorum : t -> Span.t -> int list -> unit
(** Record the quorum membership on the current open phase (no-op when no
    phase is open).  Useful when membership is only known after the phase
    started. *)

val end_phase : t -> Span.t -> ?timed_out:bool -> unit -> unit
(** Close the current phase.  No-op when no phase is open.  Observes
    [phase.<kind>.latency] and increments [phase.<kind>.timeout] when
    [timed_out]. *)

val retry : t -> Span.t -> ?backoff:float -> unit -> unit
(** Record a retry: closes any open phase as timed out, bumps [attempts],
    accumulates [backoff] into the span's [backoff_total], increments
    [ops.<op>.retries], and observes [backoff.wait]. *)

val finish : t -> Span.t -> outcome:Span.outcome -> unit
(** Close the span.  Idempotent — a second [finish] is a no-op.  Closes
    any open phase, stamps [ended], increments [ops.<op>.ok] or
    [ops.<op>.failed], observes [ops.<op>.latency], and emits the span to
    every sink. *)

(** {2 Accounting} *)

val spans_started : t -> int
val spans_open : t -> int
val spans_closed : t -> int
