(** Pluggable span sinks.

    A sink receives every span the moment it closes.  The library ships an
    in-memory sink (tests, ad-hoc inspection) and a line-oriented JSONL
    sink parameterized over a writer; {!Eval.Export} builds file-backed
    variants on top. *)

type t

val make : ?flush:(unit -> unit) -> (Span.t -> unit) -> t
val emit : t -> Span.t -> unit
val flush : t -> unit

(** {2 In-memory sink} *)

type memory

val memory : unit -> memory
val memory_sink : memory -> t
val memory_spans : memory -> Span.t list
(** Spans in close order. *)

val memory_count : memory -> int

(** {2 JSONL} *)

val jsonl : (string -> unit) -> t
(** [jsonl write] renders each closed span with {!Span.to_json} and hands
    [write] the line including its trailing newline. *)
