type t = { on_span : Span.t -> unit; on_flush : unit -> unit }

let make ?(flush = Fun.id) on_span = { on_span; on_flush = flush }
let emit t span = t.on_span span
let flush t = t.on_flush ()

type memory = { mutable rev_spans : Span.t list; mutable count : int }

let memory () = { rev_spans = []; count = 0 }

let memory_sink m =
  make (fun span ->
      m.rev_spans <- span :: m.rev_spans;
      m.count <- m.count + 1)

let memory_spans m = List.rev m.rev_spans
let memory_count m = m.count

let jsonl write = make (fun span -> write (Span.to_json span ^ "\n"))
