module Metrics = Metrics
module Span = Span
module Sink = Sink

type t = {
  mutable clock : unit -> float;
  m : Metrics.t;
  mutable sinks : Sink.t list;
  mutable next_span_id : int;
  mutable n_started : int;
  mutable n_closed : int;
}

let create ?(clock = fun () -> 0.0) () =
  {
    clock;
    m = Metrics.create ();
    sinks = [];
    next_span_id = 0;
    n_started = 0;
    n_closed = 0;
  }

let set_clock t clock = t.clock <- clock
let now t = t.clock ()
let metrics t = t.m
let add_sink t sink = t.sinks <- t.sinks @ [ sink ]
let flush t = List.iter Sink.flush t.sinks

let incr_named t name = Metrics.incr (Metrics.counter t.m name)

let span t ~op ~site ?key () =
  let id = t.next_span_id in
  t.next_span_id <- id + 1;
  t.n_started <- t.n_started + 1;
  incr_named t ("ops." ^ op ^ ".started");
  {
    Span.id;
    op;
    site;
    key;
    started = now t;
    attempts = 1;
    backoff_total = 0.0;
    rev_phases = [];
    ended = None;
    outcome = None;
    result_ts = None;
  }

let set_result_ts _t (sp : Span.t) ~version ~sid =
  sp.Span.result_ts <- Some (version, sid)

let open_phase (sp : Span.t) =
  match sp.rev_phases with
  | ({ p_ended = None; _ } as p) :: _ -> Some p
  | _ -> None

let close_phase t (sp : Span.t) ~timed_out =
  match open_phase sp with
  | None -> ()
  | Some p ->
    let ended = now t in
    p.p_ended <- Some ended;
    if timed_out then p.timed_out <- true;
    let kind = Span.phase_kind_name p.kind in
    Metrics.observe
      (Metrics.histogram t.m ("phase." ^ kind ^ ".latency"))
      (ended -. p.p_started);
    if timed_out then incr_named t ("phase." ^ kind ^ ".timeout")

let phase t (sp : Span.t) ~kind ?(quorum = []) () =
  close_phase t sp ~timed_out:false;
  let p =
    { Span.kind; p_started = now t; p_ended = None; quorum; timed_out = false }
  in
  sp.rev_phases <- p :: sp.rev_phases

let set_quorum _t (sp : Span.t) quorum =
  match open_phase sp with None -> () | Some p -> p.quorum <- quorum

let end_phase t sp ?(timed_out = false) () = close_phase t sp ~timed_out

let retry t (sp : Span.t) ?(backoff = 0.0) () =
  close_phase t sp ~timed_out:true;
  sp.attempts <- sp.attempts + 1;
  sp.backoff_total <- sp.backoff_total +. backoff;
  incr_named t ("ops." ^ sp.op ^ ".retries");
  Metrics.observe (Metrics.histogram t.m "backoff.wait") backoff

let finish t (sp : Span.t) ~outcome =
  if not (Span.closed sp) then begin
    close_phase t sp ~timed_out:false;
    let ended = now t in
    sp.ended <- Some ended;
    sp.outcome <- Some outcome;
    t.n_closed <- t.n_closed + 1;
    (match outcome with
    | Span.Ok -> incr_named t ("ops." ^ sp.op ^ ".ok")
    | Span.Failed _ -> incr_named t ("ops." ^ sp.op ^ ".failed"));
    Metrics.observe
      (Metrics.histogram t.m ("ops." ^ sp.op ^ ".latency"))
      (ended -. sp.started);
    List.iter (fun s -> Sink.emit s sp) t.sinks
  end

let spans_started t = t.n_started
let spans_open t = t.n_started - t.n_closed
let spans_closed t = t.n_closed
