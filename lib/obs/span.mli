(** Per-operation spans.

    A span covers one logical operation (a coordinator read/write, an RPC
    phase primitive, a transaction) from issue to completion, across every
    retry.  It records the phases the operation went through — which
    quorum each phase contacted, whether it timed out, and its latency —
    plus the retry count and the total time spent in backoff pauses.

    The record types are transparent so sinks and tests can inspect spans
    freely; mutation goes through {!Obs} (the lifecycle owner), which
    stamps times from its clock. *)

type phase_kind = Query | Prepare | Commit | Lock

val phase_kind_name : phase_kind -> string
(** ["query"], ["prepare"], ["commit"], ["lock"]. *)

type phase = {
  kind : phase_kind;
  p_started : float;
  mutable p_ended : float option;
  mutable quorum : int list;
      (** the members this phase contacted (site ids; write keys for a
          transaction's lock phase) *)
  mutable timed_out : bool;
}

type outcome = Ok | Failed of string

type t = {
  id : int;  (** unique within the owning {!Obs.t} *)
  op : string;  (** e.g. ["read"], ["write"], ["txn"], ["rpc.query"] *)
  site : int;  (** issuing site *)
  key : int option;
  started : float;
  mutable attempts : int;  (** 1 + retries *)
  mutable backoff_total : float;  (** total virtual time spent in backoff *)
  mutable rev_phases : phase list;  (** newest first; use {!phases} *)
  mutable ended : float option;
  mutable outcome : outcome option;
  mutable result_ts : (int * int) option;
      (** (version, sid) of the timestamp the operation returned (a read's
          observed version, a write's committed version) — set via
          {!Obs.set_result_ts}; consumed by the trace-driven consistency
          checker *)
}

val phases : t -> phase list
(** Chronological. *)

val closed : t -> bool
val retries : t -> int
val duration : t -> float option
(** [ended - started] once closed. *)

val phase_duration : phase -> float option

val to_json : t -> string
(** One-line JSON object (the JSONL export format):
    [{"id":..,"op":"read","site":..,"key":..,"started":..,"ended":..,
      "outcome":"ok"|"failed","reason":..?,
      "result_ts":{"version":..,"sid":..}?,"attempts":..,"retries":..,
      "backoff_total":..,
      "phases":[{"phase":"query","started":..,"ended":..,"timed_out":..,
                 "quorum":[..]},..]}].
    [key] and [result_ts] are omitted when absent; [ended] is [null] on an
    open span. *)
