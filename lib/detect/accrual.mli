(** φ-accrual failure estimation (Hayashibara et al., SRDS 2004).

    Instead of a binary alive/dead verdict, the detector outputs a
    continuous suspicion level per monitored site:

    {v φ(site, now) = −log₁₀ P(a heartbeat still arrives after now) v}

    computed from the site's observed heartbeat inter-arrival distribution
    (normal approximation over {!Dsutil.Stats}).  φ grows without bound
    while a site stays silent, so any threshold yields a complete detector;
    higher thresholds trade detection latency for fewer false suspicions.
    A single heartbeat resets φ to ~0 — rehabilitation is automatic and
    instant.

    All times are the simulation's virtual clock; the estimator itself
    never reads a clock, callers pass [now]. *)

type config = {
  threshold : float;
      (** suspect when φ exceeds this.  φ = 1 tolerates a silence that
          happens 10% of the time, φ = 3 one in 10³, … *)
  min_samples : int;
      (** below this many inter-arrival samples the site is never
          suspected (bootstrap grace) *)
  min_stddev : float;
      (** floor on the inter-arrival stddev, so a perfectly regular
          heartbeat stream does not make the detector hair-triggered *)
  max_interval_factor : float;
      (** clamp recorded inter-arrivals at this multiple of the current
          mean (once past bootstrap): the first heartbeat after an outage
          would otherwise record the whole outage as one sample and blind
          the detector *)
}

val default_config : config
(** [{ threshold = 8.0; min_samples = 3; min_stddev = 0.5;
      max_interval_factor = 4.0 }] *)

type t

val create : n:int -> ?config:config -> unit -> t
(** Monitor sites [0..n-1]. *)

val heartbeat : t -> site:int -> now:float -> unit
(** Record proof of life from [site] at time [now]. *)

val phi : t -> site:int -> now:float -> float
(** Current suspicion level; 0.0 while the site is in bootstrap grace. *)

val suspected : t -> site:int -> now:float -> bool
(** [phi > threshold]. *)

val samples : t -> site:int -> int
(** Inter-arrival samples recorded for [site]. *)

val mean_interval : t -> site:int -> float
(** Mean observed inter-arrival; 0.0 with no samples. *)
