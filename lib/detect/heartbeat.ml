module Bitset = Dsutil.Bitset
module Engine = Dsim.Engine

type config = { period : float; accrual : Accrual.config }

let default_config = { period = 5.0; accrual = Accrual.default_config }

type t = {
  engine : Engine.t;
  n : int;
  config : config;
  accrual : Accrual.t;
  explicit_suspects : bool array;  (* protocol-level suspicion, sticky
                                      until the site speaks again *)
  send_ping : int -> unit;
  mutable pings_sent : int;
  mutable stopped : bool;
}

let rec tick t () =
  if not t.stopped then begin
    for site = 0 to t.n - 1 do
      t.send_ping site;
      t.pings_sent <- t.pings_sent + 1
    done;
    Engine.schedule t.engine ~delay:t.config.period (tick t)
  end

let create ~engine ~n ?(config = default_config) ~send_ping () =
  if config.period <= 0.0 then
    invalid_arg "Heartbeat.create: period must be positive";
  let t =
    {
      engine;
      n;
      config;
      accrual = Accrual.create ~n ~config:config.accrual ();
      explicit_suspects = Array.make n false;
      send_ping;
      pings_sent = 0;
      stopped = false;
    }
  in
  tick t ();
  t

let check t site = if site < 0 || site >= t.n then invalid_arg "Heartbeat: bad site"

let observe t ~site =
  check t site;
  t.explicit_suspects.(site) <- false;
  Accrual.heartbeat t.accrual ~site ~now:(Engine.now t.engine)

let suspect t ~site =
  check t site;
  t.explicit_suspects.(site) <- true

let phi t ~site =
  check t site;
  Accrual.phi t.accrual ~site ~now:(Engine.now t.engine)

let suspected t ~site =
  check t site;
  t.explicit_suspects.(site)
  || Accrual.suspected t.accrual ~site ~now:(Engine.now t.engine)

let alive t () =
  let view = Bitset.create t.n in
  for site = 0 to t.n - 1 do
    if not (suspected t ~site) then Bitset.add view site
  done;
  view

let view t =
  View.make ~alive:(alive t)
    ~observe:(fun site -> observe t ~site)
    ~suspect:(fun site -> suspect t ~site)
    ()

let pings_sent t = t.pings_sent
let stop t = t.stopped <- true
