(** Exponential retry backoff with deterministic jitter.

    Retrying a failed quorum immediately (or on a fixed half-timeout
    cadence, as the seed code did) hammers a dead or partitioned quorum
    and burns the whole retry budget inside one failure window.  Delays
    here grow geometrically per attempt and are jittered from the caller's
    seeded {!Dsutil.Rng} stream, so runs stay reproducible while retries
    from concurrent clients decorrelate. *)

type policy = {
  base : float;  (** delay before the first retry (attempt 0) *)
  factor : float;  (** geometric growth per attempt *)
  max_delay : float;  (** cap on the un-jittered delay *)
  jitter : float;
      (** relative jitter amplitude in [0,1): the delay is scaled by a
          uniform factor in [1−jitter, 1+jitter) *)
}

val default : policy
(** [{ base = 12.5; factor = 2.0; max_delay = 200.0; jitter = 0.2 }] —
    base matches the seed's fixed timeout/2 pause, so attempt 0 behaves
    like before and later attempts spread out. *)

val delay : policy -> rng:Dsutil.Rng.t -> attempt:int -> float
(** Delay before retry number [attempt] (0-based). *)
