(** Exponential retry backoff with deterministic jitter.

    Retrying a failed quorum immediately (or on a fixed half-timeout
    cadence, as the seed code did) hammers a dead or partitioned quorum
    and burns the whole retry budget inside one failure window.  Delays
    here grow geometrically per attempt and are jittered from the caller's
    seeded {!Dsutil.Rng} stream, so runs stay reproducible while retries
    from concurrent clients decorrelate.

    {b Backoff state resets on success.}  The policy is stateless: the
    caller owns the [attempt] counter, and the contract is that it counts
    {e consecutive} failures of the current piece of work only — every
    success (a completed phase, an installed catch-up key) must restart
    the count at 0.  A site that has recovered is charged fresh-failure
    prices, never the penalty accumulated before it recovered.  All
    in-tree callers follow this: coordinator and RPC attempts are
    per-operation, and the replica rejoin state machine passes
    [~attempt:0] after each successfully installed key. *)

type policy = {
  base : float;  (** delay before the first retry (attempt 0) *)
  factor : float;  (** geometric growth per attempt *)
  max_delay : float;  (** cap on the un-jittered delay *)
  jitter : float;
      (** relative jitter amplitude in [0,1): the delay is scaled by a
          uniform factor in [1−jitter, 1+jitter) *)
}

val default : policy
(** [{ base = 12.5; factor = 2.0; max_delay = 200.0; jitter = 0.2 }] —
    base matches the seed's fixed timeout/2 pause, so attempt 0 behaves
    like before and later attempts spread out. *)

val delay : policy -> rng:Dsutil.Rng.t -> attempt:int -> float
(** Delay before retry number [attempt] (0-based). *)
