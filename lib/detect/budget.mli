(** Global retry budget: a token bucket capping the ratio of retries to
    first attempts.

    Per-operation retry limits bound how often {e one} client hammers a
    struggling quorum; they do nothing about the {e aggregate}.  When every
    client of a saturated system retries, the offered load multiplies by
    the retry factor exactly when capacity is scarcest — the positive
    feedback loop behind metastable failure: the overload sustains itself
    long after the triggering burst has passed.

    The budget breaks the loop globally.  Every first attempt deposits
    [ratio] tokens (capped at [burst]); every retry must withdraw a whole
    token or be suppressed.  In steady state retries can add at most
    [ratio] × first-attempt load; during a storm the bucket drains and
    further retries fail fast instead of feeding the queue.  The bucket
    starts full, so isolated failures retry exactly as before — only
    sustained storms are quashed.

    Share one instance across every coordinator of a process: the budget
    is only meaningful for the aggregate.  Purely arithmetic — no clock,
    no randomness — so seeded simulations stay deterministic. *)

type config = {
  ratio : float;  (** tokens deposited per first attempt — the steady-state
                      retry/attempt ceiling (e.g. 0.2 = 20% retries) *)
  burst : float;  (** bucket capacity: retries a quiet period banks for the
                      next incident *)
}

val default_config : config
(** [{ ratio = 0.2; burst = 10.0 }]. *)

type t

val create : ?config:config -> unit -> t
(** A fresh, full bucket.
    @raise Invalid_argument on a negative ratio or a burst below 1. *)

val on_attempt : t -> unit
(** Record a first attempt: deposits [ratio] tokens.  The deposit happens
    on {e every} call, so callers must never route retries through it —
    a retry that deposits refills the very bucket meant to throttle it.
    [Quorum_rpc] and [Coordinator] expose [?retry:true] on their entry
    points for caller-level re-issues, which skip this call; their
    internal retry loops only ever go through {!try_retry}. *)

val try_retry : t -> bool
(** Ask to retry: [true] withdraws one token; [false] means the budget is
    exhausted and the retry must be suppressed (fail the operation fast). *)

val tokens : t -> float

val attempts : t -> int
(** First attempts recorded. *)

val granted : t -> int
(** Retries the budget paid for. *)

val suppressed : t -> int
(** Retries refused — each one is a quorum fan-out that never hit the
    network. *)
