module Stats = Dsutil.Stats

type config = {
  threshold : float;
  min_samples : int;
  min_stddev : float;
  max_interval_factor : float;
}

let default_config =
  {
    threshold = 8.0;
    min_samples = 3;
    min_stddev = 0.5;
    max_interval_factor = 4.0;
  }

type site_state = {
  mutable last : float option;  (* arrival time of the newest heartbeat *)
  intervals : Stats.t;
}

type t = { config : config; sites : site_state array }

let create ~n ?(config = default_config) () =
  if n < 1 then invalid_arg "Accrual.create: need at least one site";
  {
    config;
    sites = Array.init n (fun _ -> { last = None; intervals = Stats.create () });
  }

let check t site =
  if site < 0 || site >= Array.length t.sites then
    invalid_arg "Accrual: bad site id"

let heartbeat t ~site ~now =
  check t site;
  let s = t.sites.(site) in
  (match s.last with
  | Some prev when now > prev ->
    let interval = now -. prev in
    (* Clamp outage gaps: the first heartbeat after a long silence carries
       an interval the size of the whole outage, and recording it raw
       would blow up the mean/stddev and blind the detector for the rest
       of the run.  Cap at a multiple of the current mean once a baseline
       exists. *)
    let interval =
      if Stats.count s.intervals >= t.config.min_samples then
        Float.min interval
          (t.config.max_interval_factor *. Stats.mean s.intervals)
      else interval
    in
    Stats.add s.intervals interval
  | _ -> ());
  match s.last with
  | Some prev when now < prev -> ()  (* out-of-order evidence: keep newest *)
  | _ -> s.last <- Some now

(* Abramowitz & Stegun 7.1.26: erfc to ~1.5e-7, enough for any usable φ
   threshold (the tail is re-derived in closed form beyond z = 8 anyway). *)
let erfc x =
  let z = Float.abs x in
  let u = 1.0 /. (1.0 +. (0.3275911 *. z)) in
  let poly =
    u
    *. (0.254829592
       +. (u
          *. (-0.284496736
             +. (u *. (1.421413741 +. (u *. (-1.453152027 +. (u *. 1.061405429))))))))
  in
  let e = poly *. Float.exp (-.(z *. z)) in
  if x >= 0.0 then e else 2.0 -. e

(* Upper tail of the standard normal. *)
let q_tail z = 0.5 *. erfc (z /. Float.sqrt 2.0)

let phi t ~site ~now =
  check t site;
  let s = t.sites.(site) in
  match s.last with
  | None -> 0.0
  | Some last ->
    if Stats.count s.intervals < t.config.min_samples then 0.0
    else begin
      let mean = Stats.mean s.intervals in
      let sd = Float.max (Stats.stddev s.intervals) t.config.min_stddev in
      let z = (now -. last -. mean) /. sd in
      if z <= 0.0 then 0.0
      else begin
        let p = q_tail z in
        if p > 1e-300 then -.Float.log10 p
        else
          (* Tail underflow: use the asymptotic expansion
             Q(z) ~ exp(−z²/2) / (z·√2π) in log space. *)
          ((z *. z /. 2.0) +. Float.log (z *. Float.sqrt (2.0 *. Float.pi)))
          /. Float.log 10.0
      end
    end

let suspected t ~site ~now = phi t ~site ~now > t.config.threshold
let samples t ~site =
  check t site;
  Stats.count t.sites.(site).intervals

let mean_interval t ~site =
  check t site;
  let s = t.sites.(site) in
  if Stats.count s.intervals = 0 then 0.0 else Stats.mean s.intervals
