(** Per-site circuit breaker: trip on consecutive overload evidence, steer
    quorum assembly away, probe back in.

    A {!Detect.View} answers "is this site {e up}?"; the breaker answers a
    different question — "is sending this site more work currently {e
    useful}?".  A site drowning in queued messages is alive (heartbeats
    keep flowing, so accrual detection never suspects it) yet every
    request sent to it times out or bounces with [Busy], and each retry
    against it feeds the overload further.  The breaker accumulates that
    evidence per site and, once [threshold] consecutive failures are seen,
    {e trips}: the site is excluded from quorum assembly (callers
    {!filter} their detector view through the breaker) for a cooldown
    window.  After the cooldown it {e half-opens}: the site re-enters the
    view so ordinary traffic acts as probe load; the first success closes
    the breaker, the first failure re-opens it with a geometrically longer
    cooldown (capped), so a persistently sick site is poked ever more
    rarely.

    All transitions are driven by the caller-supplied clock and explicit
    {!record_ok} / {!record_failure} evidence; the breaker draws no
    randomness, so seeded simulations stay deterministic. *)

type config = {
  threshold : int;  (** consecutive failures that trip a Closed breaker *)
  cooldown : float;  (** Open duration before the first half-open probe *)
  cooldown_factor : float;
      (** cooldown growth per failed probe (geometric, like retry
          backoff) *)
  max_cooldown : float;  (** cap on the grown cooldown *)
}

val default_config : config
(** [{ threshold = 5; cooldown = 150.0; cooldown_factor = 2.0;
    max_cooldown = 1200.0 }] — threshold above a single quorum fan-out so
    one unlucky phase never trips a healthy site; cooldown spans several
    phase timeouts so a trip actually sheds load. *)

type state = Closed | Open | Half_open

type t

val create : ?config:config -> n:int -> now:(unit -> float) -> unit -> t
(** One breaker per site in [0..n-1], all Closed.  [now] is typically the
    simulation engine's clock.

    @raise Invalid_argument on a non-positive threshold or cooldown. *)

val size : t -> int

val state : t -> int -> state
(** Current {e effective} state, evaluating the cooldown clock: an Open
    site whose cooldown has elapsed is reported as Half_open.  Pure —
    inspection never commits the transition or touches {!probes}, so a
    metrics scrape or [replica-ctl] dump cannot perturb breaker behavior.
    The transition is committed (and the probe counted) by the traffic
    path: {!allowed}, {!record_failure}, {!record_ok}, {!filter}. *)

val allowed : t -> int -> bool
(** The site may receive traffic (Half_open counts — that traffic is the
    probe).  This is the traffic path: an Open site past its cooldown is
    committed to Half_open here and one probe is counted. *)

val record_failure : t -> int -> bool
(** Negative evidence: a [Busy] nack or a phase timeout charged to this
    site.  Returns [true] exactly when this call tripped the breaker
    (threshold reached, or a half-open probe failed), so callers can count
    trips without polling. *)

val record_ok : t -> int -> unit
(** Positive evidence: an expected reply.  Closes a Half_open breaker and
    resets the failure streak and cooldown; ignored while Open (a late
    reply from before the trip must not un-trip it). *)

val filter : t -> Dsutil.Bitset.t -> Dsutil.Bitset.t
(** Remove every Open site from [view], in place, and return it.  Apply to
    the believed-alive set just before quorum assembly. *)

val trips : t -> int
(** Total Closed/Half_open → Open transitions. *)

val probes : t -> int
(** Total Open → Half_open transitions. *)

val open_sites : t -> int list
(** Sites whose effective state is Open (diagnostics).  Pure, like
    {!state}: repeated calls never advance breaker state or the probe
    counter. *)
