(** Heartbeat-driven failure detector over a simulated network.

    One monitor runs at each observing site (a coordinator).  It pings
    every replica on a fixed period through a caller-supplied send
    closure; {e any} message received from a replica — pong or protocol
    traffic — counts as a heartbeat and feeds the per-site φ-accrual
    estimator ({!Accrual}).  The exported {!View.t} believes a replica
    dead when either

    - its φ exceeds the accrual threshold (it has been silent for
      abnormally long given its observed inter-arrival history), or
    - the protocol layer reported it via [suspect] (it missed a phase
      deadline) and it has not spoken since — explicit suspicion is sticky
      until the next message from that site rehabilitates it.

    Unlike the oracle view this never consults the network's ground
    truth: partitions, crashes and pure message loss all look the same —
    silence — which is exactly the realistic failure knowledge the chaos
    campaign exercises. *)

type config = {
  period : float;  (** ping cadence per monitored site *)
  accrual : Accrual.config;
}

val default_config : config
(** period 5.0 with {!Accrual.default_config}. *)

type t

val create :
  engine:Dsim.Engine.t ->
  n:int ->
  ?config:config ->
  send_ping:(int -> unit) ->
  unit ->
  t
(** Starts the periodic ping loop on [engine] immediately, monitoring
    sites [0..n-1].  [send_ping dst] must emit a message that [dst]
    answers (the replication layer maps it to [Message.Ping]). *)

val observe : t -> site:int -> unit
(** Feed proof of life: call on every message received from [site]. *)

val suspect : t -> site:int -> unit
(** Negative evidence from the protocol layer: [site] missed a response
    deadline.  Sticky until the next [observe] of that site. *)

val view : t -> View.t
(** The believed-alive view backed by this monitor, with [observe] and
    [suspect] wired to the functions above. *)

val phi : t -> site:int -> float
(** Current suspicion level of [site]. *)

val suspected : t -> site:int -> bool

val pings_sent : t -> int

val stop : t -> unit
(** Stop the ping loop (idempotent).  Already-scheduled ticks become
    no-ops, so a finished simulation drains instead of ticking to the
    horizon. *)
