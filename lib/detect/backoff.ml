module Rng = Dsutil.Rng

type policy = {
  base : float;
  factor : float;
  max_delay : float;
  jitter : float;
}

let default = { base = 12.5; factor = 2.0; max_delay = 200.0; jitter = 0.2 }

let delay p ~rng ~attempt =
  if attempt < 0 then invalid_arg "Backoff.delay: negative attempt";
  (* [factor ** attempt] overflows to [infinity] for absurd attempt
     counts; [Float.min] still caps it, so the cap holds for any attempt. *)
  let raw = p.base *. (p.factor ** float_of_int attempt) in
  let capped = Float.min p.max_delay raw in
  let scale =
    if p.jitter <= 0.0 then 1.0
    else Rng.uniform_in rng (1.0 -. p.jitter) (1.0 +. p.jitter)
  in
  capped *. scale
