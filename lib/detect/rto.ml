module Stats = Dsutil.Stats

type config = {
  initial : float;
  min_timeout : float;
  max_timeout : float;
  quantile : float;
  multiplier : float;
  min_samples : int;
}

let default_config =
  {
    initial = 25.0;
    min_timeout = 5.0;
    max_timeout = 200.0;
    quantile = 0.95;
    multiplier = 3.0;
    min_samples = 8;
  }

type t = { config : config; rtts : Stats.t }

let create ?(config = default_config) () =
  if config.quantile < 0.0 || config.quantile > 1.0 then
    invalid_arg "Rto.create: quantile out of [0,1]";
  { config; rtts = Stats.create () }

let observe t rtt = if rtt > 0.0 then Stats.add t.rtts rtt

let timeout t =
  let c = t.config in
  if Stats.count t.rtts < c.min_samples then c.initial
  else
    Float.min c.max_timeout
      (Float.max c.min_timeout
         (c.multiplier *. Stats.percentile t.rtts c.quantile))

let samples t = Stats.count t.rtts
