module Bitset = Dsutil.Bitset

type config = {
  threshold : int;
  cooldown : float;
  cooldown_factor : float;
  max_cooldown : float;
}

let default_config =
  { threshold = 5; cooldown = 150.0; cooldown_factor = 2.0; max_cooldown = 1200.0 }

type state = Closed | Open | Half_open

type site = {
  mutable state : state;
  mutable failures : int;  (* consecutive, while Closed *)
  mutable opened_at : float;
  mutable current_cooldown : float;  (* grows while the site keeps failing
                                        its half-open probes *)
}

type t = {
  config : config;
  now : unit -> float;
  sites : site array;
  mutable trips : int;
  mutable probes : int;
}

let create ?(config = default_config) ~n ~now () =
  if config.threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
  if config.cooldown <= 0.0 then invalid_arg "Breaker.create: cooldown <= 0";
  {
    config;
    now;
    sites =
      Array.init n (fun _ ->
          {
            state = Closed;
            failures = 0;
            opened_at = 0.0;
            current_cooldown = config.cooldown;
          });
    trips = 0;
    probes = 0;
  }

let size t = Array.length t.sites

let check_site t i =
  if i < 0 || i >= Array.length t.sites then invalid_arg "Breaker: bad site id"

(* The effective state folds the cooldown clock in without committing the
   transition: an Open site whose cooldown has elapsed *reads as*
   Half_open.  Pure — inspection (metrics scrapes, [replica-ctl] dumps,
   [open_sites]) must not perturb breaker behavior or the probe count. *)
let effective t s =
  match s.state with
  | Open when t.now () >= s.opened_at +. s.current_cooldown -> Half_open
  | st -> st

let state t i =
  check_site t i;
  effective t t.sites.(i)

(* Lazy time transition, on the traffic path only: an Open site whose
   cooldown has elapsed becomes Half_open the first time a *request* looks
   at it, letting exactly the normal request flow act as its probe
   traffic.  One probe is counted per Open -> Half_open commit, however
   many inspections preceded it. *)
let observe t i =
  check_site t i;
  let s = t.sites.(i) in
  (match s.state with
  | Open when t.now () >= s.opened_at +. s.current_cooldown ->
    s.state <- Half_open;
    t.probes <- t.probes + 1
  | _ -> ());
  s.state

let allowed t i = observe t i <> Open

let trip t s =
  s.state <- Open;
  s.failures <- 0;
  s.opened_at <- t.now ();
  t.trips <- t.trips + 1

(* Returns [true] exactly when this piece of evidence tripped the breaker
   (Closed with the threshold reached, or a failed half-open probe). *)
let record_failure t i =
  match observe t i with
  | Open -> false
  | Half_open ->
    (* The probe failed: back to Open, with a longer sentence. *)
    let s = t.sites.(i) in
    s.current_cooldown <-
      Float.min t.config.max_cooldown
        (s.current_cooldown *. t.config.cooldown_factor);
    trip t s;
    true
  | Closed ->
    let s = t.sites.(i) in
    s.failures <- s.failures + 1;
    if s.failures >= t.config.threshold then begin
      s.current_cooldown <- t.config.cooldown;
      trip t s;
      true
    end
    else false

let record_ok t i =
  match observe t i with
  | Open ->
    (* A late reply from a tripped site: stale evidence from before the
       trip.  Ignored — the site earns its way back through a probe. *)
    ()
  | Half_open | Closed ->
    let s = t.sites.(i) in
    s.state <- Closed;
    s.failures <- 0;
    s.current_cooldown <- t.config.cooldown

let filter t view =
  for i = 0 to Array.length t.sites - 1 do
    if Bitset.mem view i && not (allowed t i) then Bitset.remove view i
  done;
  view

let trips t = t.trips
let probes t = t.probes

let open_sites t =
  let acc = ref [] in
  for i = Array.length t.sites - 1 downto 0 do
    if state t i = Open then acc := i :: !acc
  done;
  !acc
