(** Pluggable failure-detector view.

    The replication layer assembles quorums from a {e believed-alive} set of
    replicas.  Where that belief comes from is a policy decision — the
    simulator's ground-truth oracle (the paper's §2.2 "failures are
    detectable" assumption), a heartbeat-driven accrual detector
    ({!Heartbeat}), or anything a test wants to script — so it is passed
    around as a first-class record of closures rather than baked into the
    protocol code.

    Contract expected by consumers:
    - [alive ()] returns the current believed-up replica set; it may be
      stale or wrong — the protocol only loses liveness, never safety, on a
      bad view.
    - [observe src] is called on {e every} message received from [src];
      implementations must treat it as proof of life and rehabilitate any
      suspicion of [src].
    - [suspect site] is called when [site] failed to answer before a phase
      deadline; implementations may use it as negative evidence. *)

type t = {
  alive : unit -> Dsutil.Bitset.t;  (** current believed-up replica set *)
  observe : int -> unit;  (** a message from this site was received *)
  suspect : int -> unit;  (** this site missed a response deadline *)
}

val make :
  alive:(unit -> Dsutil.Bitset.t) ->
  ?observe:(int -> unit) ->
  ?suspect:(int -> unit) ->
  unit ->
  t
(** [observe] and [suspect] default to no-ops. *)

val oracle : net:'msg Dsim.Network.t -> self:int -> n:int -> t
(** Ground truth from the simulator over the replica universe [0..n-1]
    (sites ≥ n are clients): up sites reachable from [self] (§2.2's
    detectable-failures assumption).  Ignores evidence. *)

val always_up : n:int -> t
(** Believes every site is alive, always — the degenerate detector that
    makes every failure a timeout.  Useful as an ablation baseline. *)
