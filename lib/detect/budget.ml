type config = { ratio : float; burst : float }

let default_config = { ratio = 0.2; burst = 10.0 }

type t = {
  config : config;
  mutable tokens : float;
  mutable attempts : int;
  mutable granted : int;
  mutable suppressed : int;
}

let create ?(config = default_config) () =
  if config.ratio < 0.0 then invalid_arg "Budget.create: negative ratio";
  if config.burst < 1.0 then invalid_arg "Budget.create: burst < 1";
  (* Start full: early retries (before any load signal) behave exactly like
     an un-budgeted client; only a sustained storm drains the bucket. *)
  { config; tokens = config.burst; attempts = 0; granted = 0; suppressed = 0 }

let on_attempt t =
  t.attempts <- t.attempts + 1;
  t.tokens <- Float.min t.config.burst (t.tokens +. t.config.ratio)

let try_retry t =
  if t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    t.granted <- t.granted + 1;
    true
  end
  else begin
    t.suppressed <- t.suppressed + 1;
    false
  end

let tokens t = t.tokens
let attempts t = t.attempts
let granted t = t.granted
let suppressed t = t.suppressed
