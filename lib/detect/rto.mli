(** Adaptive per-phase timeout from observed round-trip times.

    A fixed timeout is either too tight on slow links (spurious retries)
    or too loose on fast ones (dead replicas stall every operation for the
    full window).  This estimator tracks the RTT distribution of answered
    requests and derives the timeout from a high quantile times a safety
    multiplier, clamped to a configured band — the classic RTO idea
    (Jacobson), quantile-based like production quorum stores tune it. *)

type config = {
  initial : float;  (** timeout before enough samples exist *)
  min_timeout : float;
  max_timeout : float;
  quantile : float;  (** RTT quantile the timeout is derived from *)
  multiplier : float;  (** safety factor over the quantile *)
  min_samples : int;  (** keep [initial] until this many RTTs observed *)
}

val default_config : config
(** [{ initial = 25.0; min_timeout = 5.0; max_timeout = 200.0;
      quantile = 0.95; multiplier = 3.0; min_samples = 8 }] *)

type t

val create : ?config:config -> unit -> t
val observe : t -> float -> unit
(** Record the RTT of an answered request.  Non-positive samples are
    ignored. *)

val timeout : t -> float
(** Current per-phase timeout. *)

val samples : t -> int
