module Bitset = Dsutil.Bitset
module Network = Dsim.Network

type t = {
  alive : unit -> Bitset.t;
  observe : int -> unit;
  suspect : int -> unit;
}

let make ~alive ?(observe = ignore) ?(suspect = ignore) () =
  { alive; observe; suspect }

let oracle ~net ~self ~n =
  let alive () =
    let view = Bitset.create n in
    for i = 0 to n - 1 do
      if Network.is_up net i && Network.reachable net self i then
        Bitset.add view i
    done;
    view
  in
  { alive; observe = ignore; suspect = ignore }

let always_up ~n =
  let full = Bitset.create n in
  for i = 0 to n - 1 do
    Bitset.add full i
  done;
  { alive = (fun () -> Bitset.copy full); observe = ignore; suspect = ignore }
