type relation = Le | Ge | Eq

type problem = {
  objective : float array;
  constraints : (float array * relation * float) list;
}

type solution = { value : float; x : float array }

type error = Infeasible | Unbounded | Malformed of string

let pp_error ppf = function
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Malformed msg -> Format.fprintf ppf "malformed problem: %s" msg

let eps = 1e-9

(* Tableau layout: [m] constraint rows over columns
   0 .. n_total-1 (structural variables, then slacks/surpluses, then
   artificials) plus a right-hand-side column.  [basis.(r)] is the variable
   currently basic in row [r].  A separate cost row is maintained per
   phase. *)
type tableau = {
  rows : float array array;  (* m × (n_total + 1) *)
  basis : int array;
  n_total : int;
}

let pivot t ~row ~col =
  let m = Array.length t.rows in
  let width = t.n_total + 1 in
  let prow = t.rows.(row) in
  let d = prow.(col) in
  for j = 0 to width - 1 do
    prow.(j) <- prow.(j) /. d
  done;
  for r = 0 to m - 1 do
    if r <> row then begin
      let factor = t.rows.(r).(col) in
      if abs_float factor > 0.0 then
        for j = 0 to width - 1 do
          t.rows.(r).(j) <- t.rows.(r).(j) -. (factor *. prow.(j))
        done
    end
  done;
  t.basis.(row) <- col

(* Reduced-cost row for objective [c] (length n_total) given the current
   basis: z_j - c_j computed by eliminating basic columns. *)
let cost_row t c =
  let width = t.n_total + 1 in
  let row = Array.make width 0.0 in
  Array.blit c 0 row 0 (Array.length c);
  Array.iteri
    (fun r b ->
      let cb = if b < Array.length c then c.(b) else 0.0 in
      if abs_float cb > 0.0 then
        for j = 0 to width - 1 do
          row.(j) <- row.(j) -. (cb *. t.rows.(r).(j))
        done)
    t.basis;
  row

(* One simplex phase: minimize c·x from the current basic feasible point.
   Bland's rule: entering variable = lowest-index column with negative
   reduced cost; leaving row = lowest-index argmin of the ratio test. *)
let optimize t c =
  let m = Array.length t.rows in
  let rec loop () =
    let reduced = cost_row t c in
    let entering = ref (-1) in
    (try
       for j = 0 to t.n_total - 1 do
         if reduced.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then Ok (-.reduced.(t.n_total))
    else begin
      let col = !entering in
      let best = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to m - 1 do
        let a = t.rows.(r).(col) in
        if a > eps then begin
          let ratio = t.rows.(r).(t.n_total) /. a in
          if
            ratio < !best_ratio -. eps
            || (abs_float (ratio -. !best_ratio) <= eps
                && (!best < 0 || t.basis.(r) < t.basis.(!best)))
          then begin
            best := r;
            best_ratio := ratio
          end
        end
      done;
      if !best < 0 then Error Unbounded
      else begin
        pivot t ~row:!best ~col;
        loop ()
      end
    end
  in
  loop ()

let solve problem =
  let n = Array.length problem.objective in
  if n = 0 then Error (Malformed "no variables")
  else if
    List.exists
      (fun (a, _, _) -> Array.length a <> n)
      problem.constraints
  then Error (Malformed "constraint arity differs from objective")
  else begin
    (* Normalize to non-negative right-hand sides. *)
    let cons =
      List.map
        (fun (a, rel, b) ->
          if b < 0.0 then begin
            let a = Array.map (fun v -> -.v) a in
            let rel = match rel with Le -> Ge | Ge -> Le | Eq -> Eq in
            (a, rel, -.b)
          end
          else (Array.copy a, rel, b))
        problem.constraints
    in
    let m = List.length cons in
    let n_slack =
      List.length (List.filter (fun (_, rel, _) -> rel <> Eq) cons)
    in
    let n_art =
      List.length (List.filter (fun (_, rel, _) -> rel <> Le) cons)
    in
    let n_total = n + n_slack + n_art in
    let rows = Array.init m (fun _ -> Array.make (n_total + 1) 0.0) in
    let basis = Array.make m (-1) in
    let next_slack = ref n in
    let next_art = ref (n + n_slack) in
    List.iteri
      (fun r (a, rel, b) ->
        Array.blit a 0 rows.(r) 0 n;
        rows.(r).(n_total) <- b;
        (match rel with
        | Le ->
          rows.(r).(!next_slack) <- 1.0;
          basis.(r) <- !next_slack;
          incr next_slack
        | Ge ->
          rows.(r).(!next_slack) <- -1.0;
          incr next_slack;
          rows.(r).(!next_art) <- 1.0;
          basis.(r) <- !next_art;
          incr next_art
        | Eq ->
          rows.(r).(!next_art) <- 1.0;
          basis.(r) <- !next_art;
          incr next_art))
      cons;
    let t = { rows; basis; n_total } in
    (* Phase 1: minimize the sum of artificial variables. *)
    let phase1_needed = n_art > 0 in
    let result =
      if not phase1_needed then Ok 0.0
      else begin
        let c1 = Array.make n_total 0.0 in
        for j = n + n_slack to n_total - 1 do
          c1.(j) <- 1.0
        done;
        optimize t c1
      end
    in
    match result with
    | Error e -> Error e
    | Ok v1 when phase1_needed && v1 > 1e-7 -> Error Infeasible
    | Ok _ -> begin
      (* Drive any artificial still in the basis out (degenerate rows). *)
      Array.iteri
        (fun r b ->
          if b >= n + n_slack then begin
            let found = ref false in
            for j = 0 to n + n_slack - 1 do
              if (not !found) && abs_float t.rows.(r).(j) > eps then begin
                pivot t ~row:r ~col:j;
                found := true
              end
            done
            (* A row with no eligible pivot is redundant (all-zero over the
               structural columns); it can stay with its artificial at
               value 0. *)
          end)
        t.basis;
      (* Forbid artificials from re-entering: zero their columns. *)
      Array.iter
        (fun row ->
          for j = n + n_slack to n_total - 1 do
            row.(j) <- 0.0
          done)
        t.rows;
      let c2 = Array.make n_total 0.0 in
      Array.blit problem.objective 0 c2 0 n;
      match optimize t c2 with
      | Error e -> Error e
      | Ok value ->
        let x = Array.make n 0.0 in
        Array.iteri
          (fun r b -> if b < n then x.(b) <- t.rows.(r).(t.n_total))
          t.basis;
        Ok { value; x }
    end
  end

let maximize problem =
  let neg = { problem with objective = Array.map (fun v -> -.v) problem.objective } in
  match solve neg with
  | Ok { value; x } -> Ok { value = -.value; x }
  | Error e -> Error e
