(** A dense two-phase simplex solver for small linear programs.

    Minimizes [c·x] subject to linear constraints and [x ≥ 0].  Built for
    the optimal-load computations (tens of variables); it uses Bland's rule,
    so it never cycles, at the price of speed on big programs. *)

type relation = Le | Ge | Eq

type problem = {
  objective : float array;  (** [c]; minimized *)
  constraints : (float array * relation * float) list;
      (** [(a, rel, b)] encodes [a·x rel b]; each [a] must have the
          objective's arity *)
}

type solution = { value : float; x : float array }

type error =
  | Infeasible
  | Unbounded
  | Malformed of string

val solve : problem -> (solution, error) result

val pp_error : Format.formatter -> error -> unit

val maximize : problem -> (solution, error) result
(** Convenience: negates the objective, solves, and negates the value
    back. *)
