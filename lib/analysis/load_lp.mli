(** Optimal system load of an explicit quorum system, computed from first
    principles by linear programming (Naor–Wool).

    The program: minimize L over strategies w ≥ 0 with Σw_j = 1 and, for
    every site i, Σ_{j : i ∈ S_j} w_j ≤ L.  Its optimum is the system load
    L(S) of Definition 2.5, which the paper's appendix derives analytically
    for the arbitrary protocol; the property tests check the two agree. *)

val optimal_load : Quorum.Quorum_set.t -> float
(** Raises [Failure] if the LP solver fails (cannot happen for a well-formed
    quorum system: the uniform strategy is always feasible). *)

val optimal_strategy : Quorum.Quorum_set.t -> float * float array
(** [(load, weights)] — an optimal strategy witnessing the load. *)

val check_witness :
  Quorum.Quorum_set.t -> y:float array -> load:float -> bool
(** Proposition 2.1 (lower-bound certificate): [y ≥ 0], [y(U) = 1] and
    [y(S) ≥ load] for every quorum [S].  The paper's appendix exhibits such
    witnesses; the tests re-verify them mechanically. *)
