module Bitset = Dsutil.Bitset
module Quorum_set = Quorum.Quorum_set

let build_problem (qs : Quorum_set.t) =
  let m = Quorum_set.size qs in
  let n = qs.universe in
  (* Variables: w_0 .. w_{m-1}, then L. *)
  let nv = m + 1 in
  let objective = Array.make nv 0.0 in
  objective.(m) <- 1.0;
  let sum_to_one =
    let a = Array.make nv 0.0 in
    for j = 0 to m - 1 do
      a.(j) <- 1.0
    done;
    (a, Simplex.Eq, 1.0)
  in
  let site_rows =
    List.init n (fun i ->
        let a = Array.make nv 0.0 in
        Array.iteri
          (fun j q -> if Bitset.mem q i then a.(j) <- 1.0)
          qs.quorums;
        a.(m) <- -1.0;
        (a, Simplex.Le, 0.0))
  in
  { Simplex.objective; constraints = sum_to_one :: site_rows }

let optimal_strategy qs =
  match Simplex.solve (build_problem qs) with
  | Ok { value; x } -> (value, Array.sub x 0 (Quorum_set.size qs))
  | Error e ->
    Format.kasprintf failwith "Load_lp.optimal_strategy: %a" Simplex.pp_error e

let optimal_load qs = fst (optimal_strategy qs)

let check_witness (qs : Quorum_set.t) ~y ~load =
  Array.length y = qs.universe
  && Array.for_all (fun v -> v >= -.1e-9) y
  && abs_float (Array.fold_left ( +. ) 0.0 y -. 1.0) < 1e-6
  && Array.for_all
       (fun q -> Bitset.fold (fun i acc -> acc +. y.(i)) q 0.0 >= load -. 1e-6)
       qs.quorums
