(** Precomputed quorum plans for the arbitrary protocol (hot path).

    The per-operation quorum shapes of §3.2 are structural properties of the
    tree: the candidate replicas of every physical level and the write
    quorum of every level never change between operations.  The reference
    implementation in {!Quorums} nevertheless rebuilds them on every call
    (array → list → filter → array round trips); this module computes them
    once at tree-build time and assembles quorums against the cached plan.

    {b RNG compatibility.}  Quorum selection consumes the random stream in
    exactly the same way as the reference implementation: one bounded
    [Rng.int] draw per physical level for reads (bound = number of alive
    candidates) and one draw for writes (bound = number of fully-alive
    levels), with the same early-exit order.  A seeded run therefore
    produces {e byte-identical} simulation results whether quorums come
    from the cache or from {!Quorums.read_quorum} — property-tested in
    [test/test_plan_cache.ml] over random trees and alive masks.

    {b Fast path.}  When the alive view equals the full universe (the
    failure-free common case), candidate filtering is skipped entirely and
    selection indexes the precomputed per-level replica arrays.  When sites
    are down, candidates are gathered into reusable scratch buffers — no
    list or array allocation either way; only the returned quorum bitset
    is fresh.

    {b Invalidation.}  A plan is immutable and tied to the tree it was
    built from.  Reconfiguration installs a new protocol value (see
    {!Quorums.protocol} / [Reconfig.migrate]), which carries a freshly
    built plan — there is no in-place mutation to invalidate.

    {b Concurrency.}  The scratch buffers make a plan unsafe to share
    across domains; use {!fork} to obtain a private instance (cheap: the
    plan is rebuilt from the tree). *)

type t

type policy = Uniform | First_alive
(** Mirrors {!Quorums.policy} (defined here to avoid a dependency cycle;
    [Quorums.policy] is a re-export). *)

val create : Tree.t -> t
(** Precomputes per-level replica arrays, per-level write-quorum bitsets
    and the full-universe alive view.  O(n) time and space. *)

val tree : t -> Tree.t

val fork : t -> t
(** A fresh plan over the same tree with private scratch buffers, safe to
    use from another domain. *)

val read_quorum :
  ?policy:policy ->
  t ->
  alive:Dsutil.Bitset.t ->
  rng:Dsutil.Rng.t ->
  Dsutil.Bitset.t option
(** Same contract (and same RNG draws) as {!Quorums.read_quorum}. *)

val n_levels : t -> int
(** Number of physical levels (the per-level quorum groups of §3.2). *)

val read_site :
  ?policy:policy ->
  t ->
  alive:Dsutil.Bitset.t ->
  rng:Dsutil.Rng.t ->
  level:int ->
  int
(** The read-quorum member for one physical level (index in
    [0, n_levels)), or -1 when the level has no alive candidate.  Walking
    the levels in ascending order and stopping at the first -1 draws the
    RNG exactly like one {!read_quorum} call — this is the per-level hook
    behind tree-level pipelined reads. *)

val write_quorum :
  ?policy:policy ->
  t ->
  alive:Dsutil.Bitset.t ->
  rng:Dsutil.Rng.t ->
  Dsutil.Bitset.t option
(** Same contract (and same RNG draws) as {!Quorums.write_quorum}. *)
