(** The arbitrary tree structure of the paper (§3.1).

    A tree of height [h] whose nodes are either {e logical} (placeholders)
    or {e physical} (replicas).  Level [k] holds [m_k] nodes, of which
    [m_phy k] are physical and [m_log k] logical.  A level is {e physical}
    when it holds at least one physical node, {e logical} otherwise.

    Only the per-level counts matter to the protocol (read = one physical
    node of every physical level; write = all physical nodes of one physical
    level), but the full S(i,k) node addressing is exposed for fidelity with
    the paper's formalism: node [(i,k)] is the i-th node of level [k]
    (0-based here; the paper is 1-based), its parent is node
    [(i mod m_{k-1}, k-1)], and within a level the physical nodes come
    first.

    Replicas (physical nodes) are numbered 0 .. n−1 top-to-bottom,
    left-to-right; these ids are the site ids used by every other module. *)

type level = private {
  total : int;  (** m_k *)
  physical : int;  (** m_phy k *)
  logical : int;  (** m_log k *)
  first_replica : int;  (** site id of this level's first physical node *)
}

type t = private {
  levels : level array;  (** indexed by level number 0..h *)
  n : int;  (** total number of replicas *)
}

type kind = Logical | Physical

val create : (int * int) list -> t
(** [create [(phy0, log0); (phy1, log1); ...]] builds a tree from per-level
    (physical, logical) node counts, top level first.  Raises
    [Invalid_argument] if a level is empty, the tree has no replica, or a
    logical level sits below a physical one (which Assumption 3.1
    forbids). *)

val of_physical_counts : int list -> t
(** [of_physical_counts [0; 3; 5]] — levels with the given physical counts
    and no extra logical nodes except that a count of 0 denotes a fully
    logical level of one node (e.g. a logical root). *)

val of_spec : string -> t
(** Parses the paper's compact notation: ["1-3-5"] is a logical root above
    physical levels of 3 and 5 replicas.  A leading ["1"] always denotes
    the logical root; any other first number is a physical level.
    Raises [Invalid_argument] on malformed input. *)

val to_spec : t -> string
(** Inverse of {!of_spec} for trees without interior logical nodes. *)

val figure1 : unit -> t
(** The exact tree of the paper's Figure 1 / Table 1: a logical root, a
    physical level of 3, and a mixed level of 5 physical + 4 logical
    nodes. *)

val height : t -> int
(** [h]; the tree has [h+1] levels. *)

val n : t -> int
(** Number of replicas. *)

val level : t -> int -> level

val physical_levels : t -> int list
(** K_phy: level numbers holding at least one physical node, ascending. *)

val logical_levels : t -> int list
(** K_log. *)

val num_physical_levels : t -> int
(** |K_phy|. *)

val min_level_size : t -> int
(** d = min over physical levels of m_phy k. *)

val max_level_size : t -> int
(** e = max over physical levels of m_phy k. *)

val replicas_at : t -> int -> int array
(** Site ids of the physical nodes at the given level (empty for logical
    levels). *)

val level_of_replica : t -> int -> int
(** Level number of a site id. *)

val node_kind : t -> level:int -> index:int -> kind
(** Kind of node (i,k); physical nodes occupy the low indices. *)

val parent : t -> level:int -> index:int -> (int * int) option
(** [(index, level)] of the parent node, [None] for the root. *)

val descendants_count : t -> level:int -> index:int -> int
(** m(i,k): number of children of node (i,k) under the round-robin parent
    assignment. *)

val satisfies_assumption : t -> bool
(** Assumption 3.1: m_phy0 < m_phy1 ≤ m_phy2 ≤ … ≤ m_phyh (with logical
    levels counting 0 physical nodes, which confines them to the top). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
