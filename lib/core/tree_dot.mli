(** Graphviz rendering of arbitrary trees: logical nodes are drawn as
    hollow circles, physical nodes as filled boxes labelled with their
    site ids; edges follow the round-robin parent assignment of
    {!Tree.parent}. *)

val to_dot : Tree.t -> string
(** A complete [digraph] document; render with [dot -Tpng]. *)
