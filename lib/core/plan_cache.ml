module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type policy = Uniform | First_alive

type t = {
  tree : Tree.t;
  n : int;
  replicas : int array array;  (* per physical level, ascending level order *)
  write_masks : Bitset.t array;  (* full level as a bitset, same order *)
  full : Bitset.t;  (* the whole universe *)
  scratch : int array;  (* candidate buffer, max level size *)
  level_scratch : int array;  (* fully-alive level indexes, |K_phy| *)
}

let create tree =
  let levels = Array.of_list (Tree.physical_levels tree) in
  let replicas = Array.map (Tree.replicas_at tree) levels in
  let n = Tree.n tree in
  let write_masks =
    Array.map
      (fun reps ->
        let m = Bitset.create n in
        Array.iter (Bitset.add m) reps;
        m)
      replicas
  in
  let full = Bitset.create n in
  for i = 0 to n - 1 do
    Bitset.add full i
  done;
  let widest = Array.fold_left (fun acc r -> max acc (Array.length r)) 1 replicas in
  {
    tree;
    n;
    replicas;
    write_masks;
    full;
    scratch = Array.make widest 0;
    level_scratch = Array.make (max 1 (Array.length replicas)) 0;
  }

let tree t = t.tree
let fork t = create t.tree

(* Both selectors draw exactly like the reference implementation: the
   reference runs [Rng.pick rng candidates], a single bounded [Rng.int]
   with bound = |candidates|, and skips the draw entirely for levels after
   the first empty one (reads) or when no level is fully alive (writes). *)

let read_quorum ?(policy = Uniform) t ~alive ~rng =
  let q = Bitset.create t.n in
  let fast = Bitset.equal alive t.full in
  let n_levels = Array.length t.replicas in
  let rec go i =
    if i = n_levels then Some q
    else begin
      let reps = t.replicas.(i) in
      let site =
        if fast then begin
          match policy with
          | First_alive -> reps.(0)
          | Uniform -> reps.(Rng.int rng (Array.length reps))
        end
        else begin
          let c = ref 0 in
          for j = 0 to Array.length reps - 1 do
            let s = Array.unsafe_get reps j in
            if Bitset.mem alive s then begin
              Array.unsafe_set t.scratch !c s;
              incr c
            end
          done;
          if !c = 0 then -1
          else
            match policy with
            | First_alive -> t.scratch.(0)
            | Uniform -> t.scratch.(Rng.int rng !c)
        end
      in
      if site < 0 then None
      else begin
        Bitset.add q site;
        go (i + 1)
      end
    end
  in
  go 0

let n_levels t = Array.length t.replicas

(* One level of [read_quorum], for tree-level pipelined reads: same
   candidate filtering, same single bounded draw (bound = alive candidate
   count), so a caller walking levels 0..n_levels-1 in order consumes the
   RNG exactly as one [read_quorum] call would — stopping, like it, at
   the first level with no alive candidate (returned as -1). *)
let read_site ?(policy = Uniform) t ~alive ~rng ~level =
  let reps = t.replicas.(level) in
  if Bitset.equal alive t.full then begin
    match policy with
    | First_alive -> reps.(0)
    | Uniform -> reps.(Rng.int rng (Array.length reps))
  end
  else begin
    let c = ref 0 in
    for j = 0 to Array.length reps - 1 do
      let s = Array.unsafe_get reps j in
      if Bitset.mem alive s then begin
        Array.unsafe_set t.scratch !c s;
        incr c
      end
    done;
    if !c = 0 then -1
    else
      match policy with
      | First_alive -> t.scratch.(0)
      | Uniform -> t.scratch.(Rng.int rng !c)
  end

let write_quorum ?(policy = Uniform) t ~alive ~rng =
  let n_levels = Array.length t.replicas in
  if Bitset.equal alive t.full then begin
    let i =
      match policy with First_alive -> 0 | Uniform -> Rng.int rng n_levels
    in
    Some (Bitset.copy t.write_masks.(i))
  end
  else begin
    let c = ref 0 in
    for i = 0 to n_levels - 1 do
      if Bitset.subset t.write_masks.(i) alive then begin
        t.level_scratch.(!c) <- i;
        incr c
      end
    done;
    if !c = 0 then None
    else begin
      let i =
        match policy with
        | First_alive -> t.level_scratch.(0)
        | Uniform -> t.level_scratch.(Rng.int rng !c)
      in
      Some (Bitset.copy t.write_masks.(i))
    end
  end
