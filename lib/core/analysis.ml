let physical_sizes t =
  List.map (fun k -> (Tree.level t k).Tree.physical) (Tree.physical_levels t)

let read_cost t = Tree.num_physical_levels t
let write_cost_min t = Tree.min_level_size t
let write_cost_max t = Tree.max_level_size t

let write_cost_avg t =
  float_of_int (Tree.n t) /. float_of_int (Tree.num_physical_levels t)

let num_read_quorums t =
  List.fold_left (fun acc m -> acc *. float_of_int m) 1.0 (physical_sizes t)

let num_write_quorums t = Tree.num_physical_levels t

let read_availability t ~p =
  List.fold_left
    (fun acc m -> acc *. (1.0 -. ((1.0 -. p) ** float_of_int m)))
    1.0 (physical_sizes t)

let write_fail t ~p =
  List.fold_left
    (fun acc m -> acc *. (1.0 -. (p ** float_of_int m)))
    1.0 (physical_sizes t)

let write_availability t ~p = 1.0 -. write_fail t ~p

let write_operation_availability t ~p =
  (* A full write operation needs a read quorum (version phase) {e and} a
     write quorum from the same up/down pattern.  Levels fail
     independently, so P(every level has a survivor ∧ some level is fully
     up) = ∏aₖ − ∏(aₖ − bₖ) with aₖ = 1−(1−p)^mₖ and bₖ = p^mₖ. *)
  let a_prod, ab_prod =
    List.fold_left
      (fun (a_acc, ab_acc) m ->
        let mf = float_of_int m in
        let a = 1.0 -. ((1.0 -. p) ** mf) in
        let b = p ** mf in
        (a_acc *. a, ab_acc *. (a -. b)))
      (1.0, 1.0) (physical_sizes t)
  in
  a_prod -. ab_prod

let read_load t = 1.0 /. float_of_int (Tree.min_level_size t)
let write_load t = 1.0 /. float_of_int (Tree.num_physical_levels t)

let expected_read_load t ~p =
  (read_availability t ~p *. (read_load t -. 1.0)) +. 1.0

let expected_write_load t ~p =
  (write_availability t ~p *. write_load t) +. write_fail t ~p

(* Per-level fold over individual replica availabilities. *)
let fold_levels_hetero t ~level_term =
  List.fold_left
    (fun acc k -> acc *. level_term (Tree.replicas_at t k))
    1.0 (Tree.physical_levels t)

let read_availability_per_site t ~p =
  fold_levels_hetero t ~level_term:(fun replicas ->
      1.0 -. Array.fold_left (fun acc i -> acc *. (1.0 -. p i)) 1.0 replicas)

let write_fail_per_site t ~p =
  fold_levels_hetero t ~level_term:(fun replicas ->
      1.0 -. Array.fold_left (fun acc i -> acc *. p i) 1.0 replicas)

let write_availability_per_site t ~p = 1.0 -. write_fail_per_site t ~p

let read_resilience t = Tree.min_level_size t
let write_resilience t = Tree.num_physical_levels t

let limit_read_availability ~p = (1.0 -. ((1.0 -. p) ** 4.0)) ** 7.0
let limit_write_availability ~p = 1.0 -. ((1.0 -. (p ** 4.0)) ** 7.0)

type summary = {
  n : int;
  spec : string;
  rd_cost : int;
  wr_cost_min : int;
  wr_cost_max : int;
  wr_cost_avg : float;
  rd_availability : float;
  wr_availability : float;
  rd_load : float;
  wr_load : float;
  expected_rd_load : float;
  expected_wr_load : float;
}

let summarize t ~p =
  {
    n = Tree.n t;
    spec = Tree.to_spec t;
    rd_cost = read_cost t;
    wr_cost_min = write_cost_min t;
    wr_cost_max = write_cost_max t;
    wr_cost_avg = write_cost_avg t;
    rd_availability = read_availability t ~p;
    wr_availability = write_availability t ~p;
    rd_load = read_load t;
    wr_load = write_load t;
    expected_rd_load = expected_read_load t ~p;
    expected_wr_load = expected_write_load t ~p;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>tree %s (n=%d)@,\
     read : cost=%d  avail=%.4f  load=%.4f  expected-load=%.4f@,\
     write: cost=%d..%d (avg %.2f)  avail=%.4f  load=%.4f  expected-load=%.4f@]"
    s.spec s.n s.rd_cost s.rd_availability s.rd_load s.expected_rd_load
    s.wr_cost_min s.wr_cost_max s.wr_cost_avg s.wr_availability s.wr_load
    s.expected_wr_load
