let node_id ~level ~index = Printf.sprintf "n_%d_%d" level index

let to_dot tree =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph arbitrary_tree {\n";
  Buffer.add_string buf "  rankdir=TB;\n  node [fontsize=10];\n";
  for k = 0 to Tree.height tree do
    let l = Tree.level tree k in
    (* Keep each level on its own rank. *)
    Buffer.add_string buf "  { rank=same; ";
    for i = 0 to l.Tree.total - 1 do
      Buffer.add_string buf (node_id ~level:k ~index:i);
      Buffer.add_string buf "; "
    done;
    Buffer.add_string buf "}\n";
    for i = 0 to l.Tree.total - 1 do
      (match Tree.node_kind tree ~level:k ~index:i with
      | Tree.Physical ->
        let site = l.Tree.first_replica + i in
        Buffer.add_string buf
          (Printf.sprintf
             "  %s [shape=box style=filled fillcolor=lightblue label=\"s%d\"];\n"
             (node_id ~level:k ~index:i) site)
      | Tree.Logical ->
        Buffer.add_string buf
          (Printf.sprintf "  %s [shape=circle label=\"\"];\n"
             (node_id ~level:k ~index:i)));
      match Tree.parent tree ~level:k ~index:i with
      | None -> ()
      | Some (pi, pk) ->
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s;\n"
             (node_id ~level:pk ~index:pi)
             (node_id ~level:k ~index:i))
    done
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
