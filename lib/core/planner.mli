(** Frequency-aware tree configuration (§3.3).

    The arbitrary protocol is a "spectrum" algorithm: more physical levels
    favour writes, fewer favour reads.  The planner scores candidate level
    counts against the observed read/write mix and replica availability and
    returns the best tree — switching configuration is just re-building the
    tree; the protocol itself never changes. *)

type objective =
  | Expected_load
      (** read_fraction·E L_RD + (1−read_fraction)·E L_WR — the paper's
          primary metric (Equation 3.2). *)
  | Communication_cost
      (** read_fraction·RD_cost + (1−read_fraction)·WR_cost_avg. *)
  | Weighted of float
      (** [Weighted w]: w·normalized-load + (1−w)·normalized-cost. *)

val score :
  Tree.t -> p:float -> read_fraction:float -> objective:objective -> float
(** Lower is better. *)

val candidates : n:int -> Tree.t list
(** The spectrum of even-level trees for 1 ≤ |K_phy| ≤ n/2 levels (capped
    at 64 candidates), plus Algorithm 1 / the §3.3 small-n recipe when
    applicable. *)

val plan :
  n:int -> p:float -> read_fraction:float -> ?objective:objective -> unit ->
  Tree.t
(** The best-scoring candidate (default objective: {!Expected_load}). *)

val spectrum :
  n:int -> p:float -> read_fraction:float -> ?objective:objective -> unit ->
  (Tree.t * float) list
(** All candidates with their scores, best first. *)

val plan_generalized :
  n:int -> p:float -> read_fraction:float -> unit -> Generalized.t
(** Extension-aware planning: for each candidate tree also considers the
    per-level threshold assignments of {!Generalized} (the paper's
    1-of/all-of rule and the level-majority rule) and returns the best
    (tree, thresholds) pair by expected load — Equation 3.2 applied with
    the generalized closed forms. *)
