(** The six tree configurations studied in §4 of the paper, plus the
    general builders of §3.3. *)

type name =
  | Binary  (** Tree Quorum of Agrawal–El Abbadi — {e not} an arbitrary
                tree; handled by {!Quorum.Tree_quorum} and listed here for
                the evaluation harness. *)
  | Unmodified
      (** the arbitrary protocol run on a complete binary tree whose nodes
          are all physical *)
  | Arbitrary  (** the tree built by Algorithm 1 *)
  | Hqc  (** Kumar's hierarchy — handled by {!Quorum.Hqc} *)
  | Mostly_read  (** one physical level holding all n replicas *)
  | Mostly_write  (** (n−1)/2 physical levels of two replicas *)

val name_to_string : name -> string
val all_names : name list

val mostly_read : n:int -> Tree.t
(** Logical root over a single physical level of [n] replicas; behaves like
    ROWA. *)

val mostly_write : n:int -> Tree.t
(** For odd [n]: logical root over (n−1)/2 physical levels of 2 replicas.
    Raises [Invalid_argument] for even or too-small [n]. *)

val unmodified_binary : height:int -> Tree.t
(** Complete binary tree, every node physical: level k holds 2^k
    replicas (n = 2^(h+1) − 1). *)

val algorithm1 : n:int -> Tree.t
(** Algorithm 1 of the paper, for n > 64 (we accept n ≥ 44: seven levels of
    four plus at least one further level no smaller than four).  The tree
    has a logical root, ⌊√n⌋ physical levels, four replicas at each of the
    first seven, and the remaining n − 28 replicas spread over the other
    √n − 7 levels in non-decreasing sizes ≥ 4 (remainders go to the deepest
    levels so Assumption 3.1 holds even when √n − 7 does not divide
    n − 28). *)

val proportional_small : n:int -> Tree.t
(** The §3.3 recipe for 32 < n ≤ 64: seven physical levels of four, with
    the n − 28 leftover replicas appended as additional levels obeying
    Assumption 3.1. *)

val even_levels : n:int -> levels:int -> Tree.t
(** Generic spectrum point: [n] replicas over [levels] physical levels
    under a logical root, sizes as equal as possible and non-decreasing.
    Raises [Invalid_argument] when the shape cannot satisfy
    Assumption 3.1 (i.e. [levels] > n/2 for [levels] ≥ 2). *)

val build : name -> n:int -> Tree.t
(** Builds the arbitrary-protocol tree for a configuration.  Raises
    [Invalid_argument] for [Binary] and [Hqc], which are not arbitrary
    trees. *)
