module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type t = {
  tree : Tree.t;
  read_t : int array;  (* per physical level, ascending level order *)
  write_t : int array;
}

let create tree ~read_thresholds ~write_thresholds =
  let levels = Tree.physical_levels tree in
  if List.length read_thresholds <> List.length levels
     || List.length write_thresholds <> List.length levels
  then invalid_arg "Generalized.create: one threshold pair per physical level";
  List.iteri
    (fun idx k ->
      let m = (Tree.level tree k).Tree.physical in
      let r = List.nth read_thresholds idx in
      let w = List.nth write_thresholds idx in
      if r < 1 || r > m || w < 1 || w > m then
        invalid_arg "Generalized.create: thresholds out of [1, m_k]";
      if r + w <= m then
        invalid_arg "Generalized.create: need r_k + w_k > m_k")
    levels;
  {
    tree;
    read_t = Array.of_list read_thresholds;
    write_t = Array.of_list write_thresholds;
  }

let per_level tree f =
  List.map (fun k -> f (Tree.level tree k).Tree.physical) (Tree.physical_levels tree)

let classic tree =
  create tree
    ~read_thresholds:(per_level tree (fun _ -> 1))
    ~write_thresholds:(per_level tree (fun m -> m))

let level_majority tree =
  let majority = per_level tree (fun m -> (m / 2) + 1) in
  create tree ~read_thresholds:majority ~write_thresholds:majority

let tree t = t.tree
let read_thresholds t = Array.to_list t.read_t
let write_thresholds t = Array.to_list t.write_t

let level_sizes t = per_level t.tree (fun m -> m)
let num_levels t = Array.length t.read_t

(* Pick [threshold] alive replicas of physical level [k], uniformly. *)
let pick_from_level t ~alive ~rng ~threshold k =
  let candidates =
    Array.to_list (Tree.replicas_at t.tree k) |> List.filter (Bitset.mem alive)
  in
  if List.length candidates < threshold then None
  else begin
    let arr = Array.of_list candidates in
    Rng.shuffle rng arr;
    Some (Array.sub arr 0 threshold)
  end

let read_quorum t ~alive ~rng =
  let q = Bitset.create (Tree.n t.tree) in
  let ok =
    List.for_all
      (fun (idx, k) ->
        match pick_from_level t ~alive ~rng ~threshold:t.read_t.(idx) k with
        | None -> false
        | Some picks ->
          Array.iter (Bitset.add q) picks;
          true)
      (List.mapi (fun idx k -> (idx, k)) (Tree.physical_levels t.tree))
  in
  if ok then Some q else None

let write_quorum t ~alive ~rng =
  let indexed = List.mapi (fun idx k -> (idx, k)) (Tree.physical_levels t.tree) in
  let candidates =
    List.filter
      (fun (idx, k) ->
        let alive_count =
          Array.fold_left
            (fun acc i -> if Bitset.mem alive i then acc + 1 else acc)
            0 (Tree.replicas_at t.tree k)
        in
        alive_count >= t.write_t.(idx))
      indexed
  in
  match candidates with
  | [] -> None
  | _ -> (
    (* Load-optimal level choice: weight level k proportionally to
       m_k / w_k, which equalizes the per-replica loads x_k·w_k/m_k and
       achieves the optimum 1/Σ(m_k/w_k). *)
    let weight (idx, k) =
      float_of_int (Tree.level t.tree k).Tree.physical
      /. float_of_int t.write_t.(idx)
    in
    let total = List.fold_left (fun acc c -> acc +. weight c) 0.0 candidates in
    let roll = Rng.float rng total in
    let rec select acc = function
      | [ last ] -> last
      | c :: rest -> if roll < acc +. weight c then c else select (acc +. weight c) rest
      | [] -> assert false
    in
    let idx, k = select 0.0 candidates in
    match pick_from_level t ~alive ~rng ~threshold:t.write_t.(idx) k with
    | None -> None
    | Some picks ->
      let q = Bitset.create (Tree.n t.tree) in
      Array.iter (Bitset.add q) picks;
      Some q)

(* Enumeration: all size-[threshold] subsets of a level. *)
let rec subsets k = function
  | _ when k = 0 -> Seq.return []
  | [] -> Seq.empty
  | x :: rest ->
    Seq.append
      (Seq.map (fun tail -> x :: tail) (subsets (k - 1) rest))
      (subsets k rest)

let level_subsets t ~threshold k =
  subsets threshold (Array.to_list (Tree.replicas_at t.tree k))

let enumerate_read_quorums t =
  let n = Tree.n t.tree in
  List.fold_left
    (fun acc (idx, k) ->
      Seq.concat_map
        (fun partial ->
          Seq.map
            (fun picks ->
              let q = Bitset.copy partial in
              List.iter (Bitset.add q) picks;
              q)
            (level_subsets t ~threshold:t.read_t.(idx) k))
        acc)
    (Seq.return (Bitset.create n))
    (List.mapi (fun idx k -> (idx, k)) (Tree.physical_levels t.tree))

let enumerate_write_quorums t =
  let n = Tree.n t.tree in
  Seq.concat_map
    (fun (idx, k) ->
      Seq.map
        (fun picks -> Bitset.of_list n picks)
        (level_subsets t ~threshold:t.write_t.(idx) k))
    (List.to_seq (List.mapi (fun idx k -> (idx, k)) (Tree.physical_levels t.tree)))

let read_cost t = Array.fold_left ( + ) 0 t.read_t

let write_cost_avg t =
  float_of_int (Array.fold_left ( + ) 0 t.write_t) /. float_of_int (num_levels t)

let binomial_tail ~m ~threshold q =
  let rec choose n k =
    if k = 0 || k = n then 1.0
    else choose (n - 1) (k - 1) *. float_of_int n /. float_of_int k
  in
  let acc = ref 0.0 in
  for j = threshold to m do
    acc :=
      !acc
      +. choose m j *. (q ** float_of_int j)
         *. ((1.0 -. q) ** float_of_int (m - j))
  done;
  !acc

let read_availability t ~p =
  List.fold_left ( *. ) 1.0
    (List.mapi
       (fun idx m -> binomial_tail ~m ~threshold:t.read_t.(idx) p)
       (level_sizes t))

let write_availability t ~p =
  1.0
  -. List.fold_left ( *. ) 1.0
       (List.mapi
          (fun idx m -> 1.0 -. binomial_tail ~m ~threshold:t.write_t.(idx) p)
          (level_sizes t))

let read_load t =
  List.fold_left Float.max 0.0
    (List.mapi
       (fun idx m -> float_of_int t.read_t.(idx) /. float_of_int m)
       (level_sizes t))

let write_load t =
  (* Optimal strategy weights level k by m_k/w_k (equalizing per-replica
     loads), giving 1/Σₖ(m_k/w_k); this reduces to 1/|K_phy| at w = m. *)
  1.0
  /. List.fold_left ( +. ) 0.0
       (List.mapi
          (fun idx m -> float_of_int m /. float_of_int t.write_t.(idx))
          (level_sizes t))

let protocol t =
  Quorum.Protocol.pack
    (module struct
      type nonrec t = t

      let name t = Printf.sprintf "GeneralizedArbitrary(%s)" (Tree.to_spec t.tree)
      let universe_size t = Tree.n t.tree
      let read_quorum = read_quorum
      let write_quorum = write_quorum
      let enumerate_read_quorums = enumerate_read_quorums
      let enumerate_write_quorums = enumerate_write_quorums
      let read_levels _ = None
      let fork t = t
    end)
    t
