type objective = Read_availability | Write_availability | Weighted of float

type assignment = int array

let check tree p =
  if Array.length p <> Tree.n tree then
    invalid_arg "Placement: availability array size differs from n"

let availability_of tree ~p assignment objective =
  check tree p;
  let p_of position = p.(assignment.(position)) in
  match objective with
  | Read_availability -> Analysis.read_availability_per_site tree ~p:p_of
  | Write_availability -> Analysis.write_availability_per_site tree ~p:p_of
  | Weighted w ->
    if w < 0.0 || w > 1.0 then invalid_arg "Placement: weight out of [0,1]";
    (w *. Analysis.read_availability_per_site tree ~p:p_of)
    +. ((1.0 -. w) *. Analysis.write_availability_per_site tree ~p:p_of)

let identity tree = Array.init (Tree.n tree) Fun.id

(* Physical levels ordered smallest first, as (level, positions). *)
let levels_by_size tree =
  Tree.physical_levels tree
  |> List.map (fun k -> Tree.replicas_at tree k)
  |> List.sort (fun a b -> compare (Array.length a) (Array.length b))

let greedy tree ~p objective =
  check tree p;
  let sites = Array.init (Tree.n tree) Fun.id in
  Array.sort (fun a b -> Float.compare p.(b) p.(a)) sites;
  let assignment = Array.make (Tree.n tree) 0 in
  let next = ref 0 in
  let spread_for_reads =
    (* Reads need one survivor per level: spread the reliable sites, one
       per level in rotation.  Writes need one fully-up level: concentrate
       them on the smallest level. *)
    match objective with
    | Read_availability -> true
    | Write_availability -> false
    | Weighted w -> w >= 0.5
  in
  if spread_for_reads then begin
    let groups = Array.of_list (levels_by_size tree) in
    let cursors = Array.make (Array.length groups) 0 in
    let remaining = ref (Tree.n tree) in
    while !remaining > 0 do
      Array.iteri
        (fun gi positions ->
          if cursors.(gi) < Array.length positions then begin
            assignment.(positions.(cursors.(gi))) <- sites.(!next);
            cursors.(gi) <- cursors.(gi) + 1;
            incr next;
            decr remaining
          end)
        groups
    done
  end
  else
    List.iter
      (fun positions ->
        Array.iter
          (fun position ->
            assignment.(position) <- sites.(!next);
            incr next)
          positions)
      (levels_by_size tree);
  assignment

let exhaustive tree ~p objective =
  check tree p;
  let n = Tree.n tree in
  if n > 12 then invalid_arg "Placement.exhaustive: n too large";
  let best = ref (identity tree) in
  let best_score = ref (availability_of tree ~p !best objective) in
  (* Permute assignments level-set by level-set: order within a level is
     irrelevant, so enumerate which sites go to which level by recursing
     over positions grouped by level and pruning same-level permutations
     via a canonical (ascending within level) order. *)
  let positions = List.concat_map Array.to_list (levels_by_size tree) in
  let level_of = Array.make n (-1) in
  List.iteri
    (fun li group -> Array.iter (fun pos -> level_of.(pos) <- li) group)
    (levels_by_size tree);
  let used = Array.make n false in
  let assignment = Array.make n 0 in
  let rec go prev_in_level = function
    | [] ->
      let score = availability_of tree ~p assignment objective in
      if score > !best_score then begin
        best_score := score;
        best := Array.copy assignment
      end
    | pos :: rest ->
      let floor =
        (* Canonical order: within a level, site ids ascend. *)
        match prev_in_level with
        | Some (lvl, site) when lvl = level_of.(pos) -> site + 1
        | _ -> 0
      in
      for site = floor to n - 1 do
        if not used.(site) then begin
          used.(site) <- true;
          assignment.(pos) <- site;
          go (Some (level_of.(pos), site)) rest;
          used.(site) <- false
        end
      done
  in
  go None positions;
  !best

let improvement tree ~p objective ~worst ~best =
  availability_of tree ~p best objective
  -. availability_of tree ~p worst objective
