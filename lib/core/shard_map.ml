type strategy = Hash | Range

let strategy_to_string = function Hash -> "hash" | Range -> "range"

let strategy_of_string = function
  | "hash" -> Some Hash
  | "range" -> Some Range
  | _ -> None

type t = {
  strategy : strategy;
  key_space : int;
  seed : int;
  owner : int array;  (* key -> shard id *)
  mutable n_shards : int;  (* ids allocated so far *)
  mutable active : bool array;  (* id -> participates in routing *)
}

(* SplitMix64 finalizer over (seed, key): a pure, platform-independent
   mixer, so hash assignment is identical on every run and machine. *)
let mix ~seed key =
  let z =
    let open Int64 in
    let z = add (of_int key) (mul (of_int (seed + 1)) 0x9E3779B97F4A7C15L) in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  (* to_int keeps the low 63 bits; mask the sign away so [mod] stays
     non-negative. *)
  Int64.to_int z land max_int

let create ~strategy ~shards ~key_space ~seed () =
  if shards < 1 then invalid_arg "Shard_map.create: shards must be >= 1";
  if key_space < 1 then invalid_arg "Shard_map.create: key_space must be >= 1";
  let owner =
    match strategy with
    | Hash -> Array.init key_space (fun k -> mix ~seed k mod shards)
    | Range ->
      (* [shards] contiguous blocks; the first (key_space mod shards)
         blocks take one extra key. *)
      let base = key_space / shards and extra = key_space mod shards in
      let owner = Array.make key_space 0 in
      let k = ref 0 in
      for s = 0 to shards - 1 do
        let len = base + (if s < extra then 1 else 0) in
        for _ = 1 to len do
          owner.(!k) <- s;
          incr k
        done
      done;
      owner
  in
  { strategy; key_space; seed; owner; n_shards = shards;
    active = Array.make shards true }

let shards t = t.n_shards
let key_space t = t.key_space
let strategy t = t.strategy
let seed t = t.seed

let route t key =
  if key < 0 || key >= t.key_space then invalid_arg "Shard_map.route: key out of range";
  t.owner.(key)

let is_active t s = s >= 0 && s < Array.length t.active && t.active.(s)

let active t =
  List.filter (is_active t) (List.init t.n_shards Fun.id)

let keys_of t s =
  let acc = ref [] in
  for k = t.key_space - 1 downto 0 do
    if t.owner.(k) = s then acc := k :: !acc
  done;
  !acc

let counts t =
  let c = Array.make t.n_shards 0 in
  Array.iter (fun s -> c.(s) <- c.(s) + 1) t.owner;
  c

let snapshot t = Array.copy t.owner

type change = {
  action : [ `Split | `Merge ];
  source : int;
  target : int;
  moved : int list;
}

let alloc_id t =
  let id = t.n_shards in
  t.n_shards <- t.n_shards + 1;
  if t.n_shards > Array.length t.active then begin
    let grown = Array.make (2 * t.n_shards) false in
    Array.blit t.active 0 grown 0 (Array.length t.active);
    t.active <- grown
  end;
  id

let plan_split t ~shard =
  if not (is_active t shard) then
    invalid_arg "Shard_map.plan_split: source shard not active";
  let keys = keys_of t shard in
  let moved =
    match t.strategy with
    | Hash ->
      (* Every other key (by ascending position): keeps both halves
         hash-scattered, so skewed key popularity still splits roughly in
         half. *)
      List.filteri (fun i _ -> i land 1 = 1) keys
    | Range ->
      (* Upper half of the contiguous range. *)
      let n = List.length keys in
      List.filteri (fun i _ -> i >= n - (n / 2)) keys
  in
  let target = alloc_id t in
  { action = `Split; source = shard; target; moved }

let plan_merge t ~into ~from_ =
  if into = from_ then invalid_arg "Shard_map.plan_merge: into = from_";
  if not (is_active t into && is_active t from_) then
    invalid_arg "Shard_map.plan_merge: both shards must be active";
  (match t.strategy with
  | Hash -> ()
  | Range ->
    (* The merged key set must stay contiguous. *)
    let keys = List.sort Int.compare (keys_of t into @ keys_of t from_) in
    let contiguous =
      match keys with
      | [] -> true
      | first :: _ ->
        List.for_all2 ( = ) keys (List.init (List.length keys) (fun i -> first + i))
    in
    if not contiguous then
      invalid_arg "Shard_map.plan_merge: ranges not adjacent");
  { action = `Merge; source = from_; target = into; moved = keys_of t from_ }

let commit t change =
  List.iter
    (fun k ->
      if t.owner.(k) <> change.source then
        invalid_arg "Shard_map.commit: stale plan (key no longer at source)";
      t.owner.(k) <- change.target)
    change.moved;
  (match change.action with
  | `Split -> t.active.(change.target) <- true
  | `Merge -> t.active.(change.source) <- false)

let well_formed t =
  let owners_ok = Array.for_all (fun s -> is_active t s) t.owner in
  owners_ok
  &&
  match t.strategy with
  | Hash -> true
  | Range ->
    List.for_all
      (fun s ->
        match keys_of t s with
        | [] -> true
        | first :: _ as keys ->
          List.for_all2 ( = ) keys
            (List.init (List.length keys) (fun i -> first + i)))
      (active t)
