type objective = Expected_load | Communication_cost | Weighted of float

let check_fraction f =
  if f < 0.0 || f > 1.0 then invalid_arg "Planner: read_fraction out of [0,1]"

let score tree ~p ~read_fraction ~objective =
  check_fraction read_fraction;
  let rf = read_fraction and wf = 1.0 -. read_fraction in
  let load =
    (rf *. Analysis.expected_read_load tree ~p)
    +. (wf *. Analysis.expected_write_load tree ~p)
  in
  let cost =
    (rf *. float_of_int (Analysis.read_cost tree))
    +. (wf *. Analysis.write_cost_avg tree)
  in
  match objective with
  | Expected_load -> load
  | Communication_cost -> cost
  | Weighted w ->
    if w < 0.0 || w > 1.0 then invalid_arg "Planner: weight out of [0,1]";
    (* Normalize cost to [0,1] by the worst case n so the two terms are
       commensurable. *)
    (w *. load) +. ((1.0 -. w) *. (cost /. float_of_int (Tree.n tree)))

let candidates ~n =
  if n < 1 then invalid_arg "Planner.candidates: need at least one replica";
  let max_levels = max 1 (n / 2) in
  (* Cap the sweep: the objective is monotone between neighbouring level
     counts, so a 64-point sweep loses nothing of interest. *)
  let steps =
    if max_levels <= 64 then List.init max_levels (fun i -> i + 1)
    else begin
      let stride = max_levels / 64 in
      List.sort_uniq Int.compare
        (List.init 64 (fun i -> max 1 ((i + 1) * stride)) @ [ max_levels ])
    end
  in
  let even = List.map (fun levels -> Config.even_levels ~n ~levels) steps in
  let special =
    (if n >= 64 then [ Config.algorithm1 ~n ] else [])
    @ (if n > 32 && n < 64 then [ Config.proportional_small ~n ] else [])
    @ if n >= 3 && n mod 2 = 1 then [ Config.mostly_write ~n ] else []
  in
  even @ special

let spectrum ~n ~p ~read_fraction ?(objective = Expected_load) () =
  candidates ~n
  |> List.map (fun tree ->
         (tree, score tree ~p ~read_fraction ~objective))
  |> List.sort (fun (_, a) (_, b) -> Float.compare a b)

let generalized_score g ~p ~read_fraction =
  let rf = read_fraction and wf = 1.0 -. read_fraction in
  let rd_avail = Generalized.read_availability g ~p in
  let wr_avail = Generalized.write_availability g ~p in
  let e_rd = (rd_avail *. (Generalized.read_load g -. 1.0)) +. 1.0 in
  let e_wr = (wr_avail *. Generalized.write_load g) +. (1.0 -. wr_avail) in
  (rf *. e_rd) +. (wf *. e_wr)

let plan_generalized ~n ~p ~read_fraction () =
  check_fraction read_fraction;
  let candidates =
    List.concat_map
      (fun tree -> [ Generalized.classic tree; Generalized.level_majority tree ])
      (candidates ~n)
  in
  match
    List.sort
      (fun a b ->
        Float.compare
          (generalized_score a ~p ~read_fraction)
          (generalized_score b ~p ~read_fraction))
      candidates
  with
  | best :: _ -> best
  | [] -> assert false

let plan ~n ~p ~read_fraction ?(objective = Expected_load) () =
  match spectrum ~n ~p ~read_fraction ~objective () with
  | (best, _) :: _ -> best
  | [] -> assert false
