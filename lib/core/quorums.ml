module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type policy = Plan_cache.policy = Uniform | First_alive

let alive_at_level tree ~alive k =
  Array.to_list (Tree.replicas_at tree k)
  |> List.filter (Bitset.mem alive)

let read_quorum ?(policy = Uniform) tree ~alive ~rng =
  let n = Tree.n tree in
  let q = Bitset.create n in
  let ok =
    List.for_all
      (fun k ->
        match alive_at_level tree ~alive k with
        | [] -> false
        | first :: _ as candidates ->
          let site =
            match policy with
            | First_alive -> first
            | Uniform -> Rng.pick rng (Array.of_list candidates)
          in
          Bitset.add q site;
          true)
      (Tree.physical_levels tree)
  in
  if ok then Some q else None

let write_quorum_of_level tree ~level =
  let replicas = Tree.replicas_at tree level in
  if Array.length replicas = 0 then
    invalid_arg "Quorums.write_quorum_of_level: logical level";
  Bitset.of_list (Tree.n tree) (Array.to_list replicas)

let level_fully_alive tree ~alive k =
  Array.for_all (Bitset.mem alive) (Tree.replicas_at tree k)

let write_quorum ?(policy = Uniform) tree ~alive ~rng =
  let candidates =
    List.filter (level_fully_alive tree ~alive) (Tree.physical_levels tree)
  in
  match candidates with
  | [] -> None
  | first :: _ ->
    let k =
      match policy with
      | First_alive -> first
      | Uniform -> Rng.pick rng (Array.of_list candidates)
    in
    Some (write_quorum_of_level tree ~level:k)

let enumerate_read_quorums tree =
  let levels =
    List.map
      (fun k -> Array.to_list (Tree.replicas_at tree k))
      (Tree.physical_levels tree)
  in
  let rec product = function
    | [] -> Seq.return []
    | sites :: rest ->
      Seq.concat_map
        (fun site -> Seq.map (fun tail -> site :: tail) (product rest))
        (List.to_seq sites)
  in
  Seq.map (Bitset.of_list (Tree.n tree)) (product levels)

let enumerate_write_quorums tree =
  List.to_seq (Tree.physical_levels tree)
  |> Seq.map (fun k -> write_quorum_of_level tree ~level:k)

(* The packaged protocol routes through the precomputed quorum plan; the
   functions above remain the executable reference (same results, same RNG
   draws — see test/test_plan_cache.ml). *)
let protocol tree =
  Quorum.Protocol.pack
    (module struct
      type t = Plan_cache.t

      let name p = Printf.sprintf "Arbitrary(%s)" (Tree.to_spec (Plan_cache.tree p))
      let universe_size p = Tree.n (Plan_cache.tree p)
      let read_quorum p ~alive ~rng = Plan_cache.read_quorum p ~alive ~rng
      let write_quorum p ~alive ~rng = Plan_cache.write_quorum p ~alive ~rng

      (* Per-level assembly for pipelined reads rides the same plan (and
         the same draws) as whole-quorum assembly. *)
      let read_levels p =
        Some
          {
            Quorum.Protocol.n_levels = Plan_cache.n_levels p;
            level_site =
              (fun ~alive ~rng ~level ->
                Plan_cache.read_site p ~alive ~rng ~level);
          }
      let enumerate_read_quorums p = enumerate_read_quorums (Plan_cache.tree p)
      let enumerate_write_quorums p = enumerate_write_quorums (Plan_cache.tree p)
      let fork = Plan_cache.fork
    end)
    (Plan_cache.create tree)

(* The uncached per-operation assembly, packaged for ablation benchmarks
   (bench/main.exe --hotpath measures the cached path against this). *)
let reference_protocol tree =
  Quorum.Protocol.pack
    (module struct
      type t = Tree.t

      let name t = Printf.sprintf "Arbitrary(%s)" (Tree.to_spec t)
      let universe_size = Tree.n
      let read_quorum t ~alive ~rng = read_quorum t ~alive ~rng
      let write_quorum t ~alive ~rng = write_quorum t ~alive ~rng
      let read_levels _ = None
      let enumerate_read_quorums = enumerate_read_quorums
      let enumerate_write_quorums = enumerate_write_quorums
      let fork t = t
    end)
    tree
