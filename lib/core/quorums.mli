(** Quorum construction for the arbitrary protocol (§3.2).

    Read quorum: one physical node of {e every} physical level.
    Write quorum: {e all} physical nodes of one physical level.

    The pair forms a bicoterie (proved by induction in §3.2.3 and verified
    by property tests here). *)

type policy = Plan_cache.policy =
  | Uniform  (** the paper's strategy: quorums drawn uniformly *)
  | First_alive
      (** deterministic: lowest-numbered alive replica per level / shallowest
          fully-alive level.  Used by the ablation benchmarks. *)

val read_quorum :
  ?policy:policy ->
  Tree.t ->
  alive:Dsutil.Bitset.t ->
  rng:Dsutil.Rng.t ->
  Dsutil.Bitset.t option
(** One alive replica from every physical level, or [None] when some level
    has no alive replica. *)

val write_quorum :
  ?policy:policy ->
  Tree.t ->
  alive:Dsutil.Bitset.t ->
  rng:Dsutil.Rng.t ->
  Dsutil.Bitset.t option
(** All replicas of a fully-alive physical level, or [None] when every
    level has at least one dead replica. *)

val write_quorum_of_level : Tree.t -> level:int -> Dsutil.Bitset.t
(** The write quorum consisting of the given physical level.  Raises
    [Invalid_argument] for a logical level. *)

val enumerate_read_quorums : Tree.t -> Dsutil.Bitset.t Seq.t
(** All m(R) = ∏ m_phy k read quorums; only for small trees. *)

val enumerate_write_quorums : Tree.t -> Dsutil.Bitset.t Seq.t
(** The m(W) = |K_phy| write quorums. *)

val protocol : Tree.t -> Quorum.Protocol.t
(** Packages a tree as a generic protocol instance (uniform policy).
    Quorum assembly goes through a precomputed {!Plan_cache} — same quorums
    and same RNG draw sequence as the reference functions above, without
    the per-operation list round trips.  Reconfiguration swaps in a new
    protocol value, which carries a freshly built plan. *)

val reference_protocol : Tree.t -> Quorum.Protocol.t
(** The uncached reference assembly ({!read_quorum}/{!write_quorum} as-is),
    packaged for equivalence tests and the hot-path ablation benchmark. *)
