(** Replica placement under heterogeneous availability.

    The paper assumes every site is up with the same probability p (§2.2).
    When sites differ, {e where} each site sits in the tree matters: a
    physical level blocks reads when all its members are down and blocks
    writes when any member is down, so small levels want reliable sites
    for reads while every level's weakest member caps its write term.
    This module assigns sites to the physical positions of a given tree
    shape to maximize availability
    (cf. Garcia-Molina & Barbara's vote-assignment question [6]). *)

type objective =
  | Read_availability
  | Write_availability
  | Weighted of float
      (** [Weighted w]: w·read + (1−w)·write availability. *)

type assignment = private int array
(** [assignment.(position) = site]: position [i] is the tree's replica
    slot with site id [i] under {!Tree}'s numbering; the value is the
    index into the caller's availability array. *)

val availability_of :
  Tree.t -> p:float array -> assignment -> objective -> float

val greedy : Tree.t -> p:float array -> objective -> assignment
(** Objective-aware heuristic, O(n log n).  For reads it {e spreads} the
    reliable sites one per level (each level only needs one survivor);
    for writes it {e concentrates} them on the smallest level (one fully-up
    level suffices).  That these are opposites is the interesting part —
    see the tests. *)

val exhaustive : Tree.t -> p:float array -> objective -> assignment
(** Best assignment by enumerating all level partitions (the order within
    a level does not matter).  Only for small n — raises
    [Invalid_argument] when n > 12. *)

val identity : Tree.t -> assignment

val improvement :
  Tree.t -> p:float array -> objective -> worst:assignment -> best:assignment
  -> float
(** Availability gained by [best] over [worst]. *)
