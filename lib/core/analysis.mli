(** The closed-form model of §3.2: communication costs, availability,
    optimal system loads and expected loads of the arbitrary protocol on a
    given tree. *)

val read_cost : Tree.t -> int
(** RD_cost = 1 + h − |K_log| = |K_phy| — one replica per physical
    level. *)

val write_cost_min : Tree.t -> int
(** d: size of the smallest physical level. *)

val write_cost_max : Tree.t -> int
(** e: size of the largest physical level. *)

val write_cost_avg : Tree.t -> float
(** n / |K_phy| under the uniform write strategy. *)

val num_read_quorums : Tree.t -> float
(** m(R) = ∏ m_phy k (Fact 3.2.1); float because the product explodes. *)

val num_write_quorums : Tree.t -> int
(** m(W) = |K_phy| (Fact 3.2.2). *)

val read_availability : Tree.t -> p:float -> float
(** ∏ₖ (1 − (1 − p)^{m_phy k}): every physical level must keep at least one
    replica up. *)

val write_fail : Tree.t -> p:float -> float
(** ∏ₖ (1 − p^{m_phy k}): no physical level is fully up. *)

val write_availability : Tree.t -> p:float -> float

val write_operation_availability : Tree.t -> p:float -> float
(** Availability of a {e complete} write operation, which per §3.2.2 first
    obtains the highest version number (a read quorum) and then updates a
    write quorum: the probability that both quorums exist under the same
    up/down pattern.  The paper's WR_availability counts only the write
    quorum; this combined form is what an execution actually observes. *)

val read_load : Tree.t -> float
(** Optimal system load of reads, 1/d (proved in the paper's appendix). *)

val write_load : Tree.t -> float
(** Optimal system load of writes, 1/|K_phy|. *)

val expected_read_load : Tree.t -> p:float -> float
(** Equation 3.2: E L_RD = RD_avail·(L_RD − 1) + 1. *)

val expected_write_load : Tree.t -> p:float -> float
(** Equation 3.2: E L_WR = WR_avail·L_WR + WR_fail·1. *)

val read_availability_per_site : Tree.t -> p:(int -> float) -> float
(** Heterogeneous generalization of {!read_availability}: [p i] is the
    availability of replica (site id) [i].  The paper assumes a uniform
    [p] (§2.2); the per-site form supports placing reliable replicas on
    the small levels, which dominate both availabilities. *)

val write_fail_per_site : Tree.t -> p:(int -> float) -> float
val write_availability_per_site : Tree.t -> p:(int -> float) -> float

val read_resilience : Tree.t -> int
(** Smallest number of replica crashes that can block every read quorum:
    all of the smallest physical level must die, so this is d
    (write availability of that level is what protects reads). *)

val write_resilience : Tree.t -> int
(** Smallest number of crashes that can block every write quorum: one
    replica per physical level, i.e. |K_phy|. *)

val limit_read_availability : p:float -> float
(** n→∞ read availability of Algorithm-1 trees: (1 − (1−p)⁴)⁷. *)

val limit_write_availability : p:float -> float
(** n→∞ write availability of Algorithm-1 trees: 1 − (1 − p⁴)⁷. *)

type summary = {
  n : int;
  spec : string;
  rd_cost : int;
  wr_cost_min : int;
  wr_cost_max : int;
  wr_cost_avg : float;
  rd_availability : float;
  wr_availability : float;
  rd_load : float;
  wr_load : float;
  expected_rd_load : float;
  expected_wr_load : float;
}

val summarize : Tree.t -> p:float -> summary
val pp_summary : Format.formatter -> summary -> unit
