type name =
  | Binary
  | Unmodified
  | Arbitrary
  | Hqc
  | Mostly_read
  | Mostly_write

let name_to_string = function
  | Binary -> "BINARY"
  | Unmodified -> "UNMODIFIED"
  | Arbitrary -> "ARBITRARY"
  | Hqc -> "HQC"
  | Mostly_read -> "MOSTLY-READ"
  | Mostly_write -> "MOSTLY-WRITE"

let all_names = [ Binary; Unmodified; Arbitrary; Hqc; Mostly_read; Mostly_write ]

let with_logical_root physical_levels =
  Tree.create ((0, 1) :: List.map (fun phy -> (phy, 0)) physical_levels)

let mostly_read ~n =
  if n < 1 then invalid_arg "Config.mostly_read: need at least one replica";
  with_logical_root [ n ]

let mostly_write ~n =
  if n < 3 || n mod 2 = 0 then
    invalid_arg "Config.mostly_write: n must be odd and at least 3";
  (* (n-1)/2 physical levels: all of size two except the deepest, which
     takes three so that the level count matches the paper's (n-1)/2 while
     still placing all n replicas and keeping sizes non-decreasing. *)
  if n = 3 then with_logical_root [ 3 ]
  else with_logical_root (List.init ((n - 3) / 2) (fun _ -> 2) @ [ 3 ])

let unmodified_binary ~height =
  if height < 0 then invalid_arg "Config.unmodified_binary: negative height";
  Tree.of_physical_counts (List.init (height + 1) (fun k -> 1 lsl k))

(* Split [total] into [parts] non-decreasing chunks (larger chunks last). *)
let spread total parts =
  if parts < 1 || total < parts then
    invalid_arg "Config.spread: cannot split";
  let base = total / parts and rem = total mod parts in
  List.init parts (fun i -> if i < parts - rem then base else base + 1)

let algorithm1 ~n =
  if n < 64 then invalid_arg "Config.algorithm1: requires n >= 64";
  let k_phy = int_of_float (sqrt (float_of_int n)) in
  let rest = spread (n - 28) (k_phy - 7) in
  (* Assumption 3.1 needs the eighth level to be at least four; [spread]
     yields at least ⌊(n−28)/(√n−7)⌋ ≥ 4 for every n ≥ 64. *)
  with_logical_root (List.init 7 (fun _ -> 4) @ rest)

let proportional_small ~n =
  if n <= 32 then invalid_arg "Config.proportional_small: requires n > 32";
  let leftover = n - 28 in
  if leftover < 4 then begin
    (* Too small for an eighth level: widen the deepest of the seven. *)
    with_logical_root (List.init 6 (fun _ -> 4) @ [ 4 + leftover ])
  end
  else with_logical_root (List.init 7 (fun _ -> 4) @ [ leftover ])

let even_levels ~n ~levels =
  if levels < 1 || levels > n then
    invalid_arg "Config.even_levels: levels must be within [1, n]";
  with_logical_root (spread n levels)

let build name ~n =
  match name with
  | Mostly_read -> mostly_read ~n
  | Mostly_write -> mostly_write ~n
  | Unmodified ->
    let rec fit h = if (1 lsl (h + 2)) - 1 > n then h else fit (h + 1) in
    unmodified_binary ~height:(fit 0)
  | Arbitrary ->
    if n >= 64 then algorithm1 ~n
    else if n > 32 then proportional_small ~n
    else begin
      let levels = max 1 (int_of_float (sqrt (float_of_int n))) in
      even_levels ~n ~levels
    end
  | Binary | Hqc ->
    invalid_arg
      (Printf.sprintf
         "Config.build: %s is not an arbitrary tree (use Quorum.%s)"
         (name_to_string name)
         (if name = Binary then "Tree_quorum" else "Hqc"))
