(** Deterministic shard map: routes every key in [0, key_space) to one of
    a set of shard ids, each shard backed by an independent quorum-tree
    instance.

    The map is a pure function of [(strategy, shards, key_space, seed)] —
    the same inputs produce the same assignment on every run, every
    machine and every domain count, which is what makes sharded campaigns
    reproducible and lets S=1 runs be byte-identical to the unsharded
    system.

    Resharding is a two-phase protocol mirroring online reconfiguration:
    {!plan_split} / {!plan_merge} allocate a {!change} describing exactly
    which keys move while routing stays untouched (so data migration can
    fence and copy them first), and {!commit} flips the routing table
    atomically in virtual time. *)

type strategy =
  | Hash  (** seeded hash partitioning (default): keys scatter uniformly *)
  | Range  (** contiguous key ranges per shard; splits halve a range *)

val strategy_to_string : strategy -> string

val strategy_of_string : string -> strategy option
(** ["hash"] / ["range"]. *)

type t

val create : strategy:strategy -> shards:int -> key_space:int -> seed:int -> unit -> t
(** [shards >= 1], [key_space >= 1].  Hash mode assigns each key by a
    seeded SplitMix finalizer; range mode carves [0, key_space) into
    [shards] contiguous blocks (earlier blocks get the remainder). *)

val shards : t -> int
(** Number of shard ids ever allocated (including planned-but-uncommitted
    splits and merged-away sources); ids are [0 .. shards - 1]. *)

val key_space : t -> int

val strategy : t -> strategy

val seed : t -> int

val route : t -> int -> int
(** [route t key] is the owning shard id.  O(1).  Raises [Invalid_argument]
    if [key] is outside [0, key_space). *)

val is_active : t -> int -> bool
(** An active shard participates in routing: it was created active or by a
    committed split, and has not been merged away.  (An active shard may
    still own zero keys when there are more shards than keys.) *)

val active : t -> int list
(** Active shard ids, ascending. *)

val keys_of : t -> int -> int list
(** Keys owned by a shard, ascending. *)

val counts : t -> int array
(** [counts t].(s) = number of keys owned by shard [s]; length {!shards}. *)

val snapshot : t -> int array
(** Copy of the owner table: index = key, value = shard id. *)

type change = {
  action : [ `Split | `Merge ];
  source : int;  (** shard losing the moved keys *)
  target : int;  (** shard gaining them: the fresh id (split) or [into] *)
  moved : int list;  (** keys that change owner at {!commit}, ascending *)
}

val plan_split : t -> shard:int -> change
(** Allocate a fresh shard id and plan to move half of [shard]'s keys to
    it (hash mode: every other key; range mode: the upper half of the
    range).  Routing is unchanged until {!commit}.  Raises on an inactive
    source. *)

val plan_merge : t -> into:int -> from_:int -> change
(** Plan to move every key of [from_] into [into]; at {!commit} [from_]
    becomes inactive.  Range mode requires the two ranges to be adjacent
    so the merged range stays contiguous.  Raises on inactive shards or
    [into = from_]. *)

val commit : t -> change -> unit
(** Atomically apply a planned change to the routing table.  Raises if the
    moved keys are no longer owned by [change.source] (two interleaved
    plans touching the same keys). *)

val well_formed : t -> bool
(** Every key is owned by exactly one active shard, and in range mode
    every active shard's key set is contiguous (no gaps). *)
