type level = {
  total : int;
  physical : int;
  logical : int;
  first_replica : int;
}

type t = { levels : level array; n : int }

type kind = Logical | Physical

let create specs =
  if specs = [] then invalid_arg "Tree.create: no levels";
  let next_replica = ref 0 in
  let seen_physical = ref false in
  let levels =
    List.map
      (fun (phy, log) ->
        if phy < 0 || log < 0 then invalid_arg "Tree.create: negative count";
        if phy + log = 0 then invalid_arg "Tree.create: empty level";
        if phy = 0 && !seen_physical then
          invalid_arg "Tree.create: logical level below a physical level";
        if phy > 0 then seen_physical := true;
        let first_replica = !next_replica in
        next_replica := !next_replica + phy;
        { total = phy + log; physical = phy; logical = log; first_replica })
      specs
  in
  if !next_replica = 0 then invalid_arg "Tree.create: tree has no replica";
  { levels = Array.of_list levels; n = !next_replica }

let of_physical_counts counts =
  create (List.map (fun phy -> if phy = 0 then (0, 1) else (phy, 0)) counts)

let of_spec s =
  let parts = String.split_on_char '-' (String.trim s) in
  let nums =
    List.map
      (fun part ->
        match int_of_string_opt (String.trim part) with
        | Some v when v >= 1 -> v
        | _ -> invalid_arg (Printf.sprintf "Tree.of_spec: bad component %S" part))
      parts
  in
  match nums with
  | [] -> invalid_arg "Tree.of_spec: empty spec"
  | 1 :: (_ :: _ as rest) ->
    (* A leading 1 is the paper's logical-root marker. *)
    create ((0, 1) :: List.map (fun phy -> (phy, 0)) rest)
  | all -> create (List.map (fun phy -> (phy, 0)) all)

let to_spec t =
  Array.to_list t.levels
  |> List.map (fun l -> if l.physical = 0 then "1" else string_of_int l.physical)
  |> String.concat "-"

let figure1 () = create [ (0, 1); (3, 0); (5, 4) ]

let height t = Array.length t.levels - 1
let n t = t.n
let level t k = t.levels.(k)

let physical_levels t =
  Array.to_list t.levels
  |> List.mapi (fun k l -> (k, l))
  |> List.filter_map (fun (k, l) -> if l.physical > 0 then Some k else None)

let logical_levels t =
  Array.to_list t.levels
  |> List.mapi (fun k l -> (k, l))
  |> List.filter_map (fun (k, l) -> if l.physical = 0 then Some k else None)

let num_physical_levels t = List.length (physical_levels t)

let fold_physical f init t =
  Array.fold_left
    (fun acc l -> if l.physical > 0 then f acc l.physical else acc)
    init t.levels

let min_level_size t = fold_physical min max_int t
let max_level_size t = fold_physical max 0 t

let replicas_at t k =
  let l = t.levels.(k) in
  Array.init l.physical (fun i -> l.first_replica + i)

let level_of_replica t r =
  if r < 0 || r >= t.n then invalid_arg "Tree.level_of_replica: bad site id";
  let rec find k =
    let l = t.levels.(k) in
    if r >= l.first_replica && r < l.first_replica + l.physical then k
    else find (k + 1)
  in
  find 0

let node_kind t ~level:k ~index =
  let l = t.levels.(k) in
  if index < 0 || index >= l.total then invalid_arg "Tree.node_kind: bad index";
  if index < l.physical then Physical else Logical

let parent t ~level:k ~index =
  if k = 0 then None
  else begin
    let l = t.levels.(k) in
    if index < 0 || index >= l.total then invalid_arg "Tree.parent: bad index";
    Some (index mod t.levels.(k - 1).total, k - 1)
  end

let descendants_count t ~level:k ~index =
  let l = t.levels.(k) in
  if index < 0 || index >= l.total then
    invalid_arg "Tree.descendants_count: bad index";
  if k = height t then 0
  else begin
    (* Children at level k+1 are assigned round-robin: node (i,k) receives
       child (j,k+1) whenever j ≡ i (mod m_k). *)
    let m_child = t.levels.(k + 1).total in
    let base = m_child / l.total in
    if index < m_child mod l.total then base + 1 else base
  end

let satisfies_assumption t =
  let h = height t in
  if h = 0 then true
  else begin
    let phy k = t.levels.(k).physical in
    let rec check k = k > h || (phy (k - 1) <= phy k && check (k + 1)) in
    phy 0 < phy 1 && check 2
  end

let equal a b = a.levels = b.levels && a.n = b.n

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun k l ->
      Format.fprintf ppf "level %d: %d physical, %d logical%s@," k l.physical
        l.logical
        (if l.physical > 0 then
           Printf.sprintf " (sites %d..%d)" l.first_replica
             (l.first_replica + l.physical - 1)
         else ""))
    t.levels;
  Format.fprintf ppf "n=%d height=%d@]" t.n (height t)
