(** A threshold generalization of the arbitrary protocol (extension).

    The paper's read rule takes {e one} physical node per physical level
    and its write rule takes {e all} nodes of one level.  Generalizing to
    per-level thresholds (r_k, w_k) with r_k + w_k > m_k keeps the
    bicoterie property — a read's r_k members and a write's w_k members
    of the same level must overlap — while letting each level trade read
    cost against write cost:

    - r_k = 1, w_k = m_k is the paper's protocol;
    - r_k = w_k = ⌈(m_k+1)/2⌉ makes every level a majority vote
      (cheaper writes, dearer reads);
    - mixed assignments tune levels independently, something neither the
      paper's protocol nor HQC expresses.

    Closed forms generalize cleanly and all reduce to the paper's at
    r = 1, w = m: read cost Σr_k; average write cost (Σw_k)/|K_phy|;
    read availability ∏ₖ P[Binomial(m_k, p) ≥ r_k]; write availability
    1 − ∏ₖ (1 − P[Binomial(m_k, p) ≥ w_k]); read load max_k r_k/m_k and
    write load 1/Σ_k(m_k/w_k) — the latter achieved by weighting the
    level choice proportionally to m_k/w_k, which equalizes per-replica
    loads (LP-verified optimal on every tested instance; both reduce to
    the paper's 1/d and 1/|K_phy| at r = 1, w = m). *)

type t

val create :
  Tree.t -> read_thresholds:int list -> write_thresholds:int list -> t
(** Thresholds are listed per physical level, ascending by level number.
    Raises [Invalid_argument] unless each pair satisfies
    1 ≤ r_k, w_k ≤ m_k and r_k + w_k > m_k. *)

val classic : Tree.t -> t
(** The paper's instance: r_k = 1 and w_k = m_k at every level. *)

val level_majority : Tree.t -> t
(** r_k = w_k = ⌊m_k/2⌋ + 1 at every level. *)

val tree : t -> Tree.t
val read_thresholds : t -> int list
val write_thresholds : t -> int list

val read_cost : t -> int
val write_cost_avg : t -> float
val read_availability : t -> p:float -> float
val write_availability : t -> p:float -> float
val read_load : t -> float
val write_load : t -> float

val protocol : t -> Quorum.Protocol.t

val read_quorum :
  t -> alive:Dsutil.Bitset.t -> rng:Dsutil.Rng.t -> Dsutil.Bitset.t option

val write_quorum :
  t -> alive:Dsutil.Bitset.t -> rng:Dsutil.Rng.t -> Dsutil.Bitset.t option

val enumerate_read_quorums : t -> Dsutil.Bitset.t Seq.t
val enumerate_write_quorums : t -> Dsutil.Bitset.t Seq.t
