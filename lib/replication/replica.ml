module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Engine = Dsim.Engine
module Network = Dsim.Network
module Protocol = Quorum.Protocol

(* Snapshot-provisioning configuration: how a cold or amnesiac replica
   rebuilds from a donor's chunked snapshot plus a WAL tail instead of
   per-key quorum catch-up.  Chunk [i] always covers keys
   [i*chunk_size, (i+1)*chunk_size) of [key_space], so chunk numbers keep
   their meaning across donor failover and recipient restarts.  [fence]
   (default true) keeps the recipient out of service until the tail is
   applied; turning it off is the deliberate safety violation the
   negative-control campaign checks for. *)
type provision = {
  pv_key_space : int;
  pv_chunk_size : int;
  pv_fence : bool;
  pv_timeout : float;
  pv_donors : (unit -> int list) option;
}

let provision ?(chunk_size = 256) ?(fence = true) ?(timeout = 30.0) ?donors
    ~key_space () =
  if key_space < 1 then invalid_arg "Replica.provision: key_space < 1";
  if chunk_size < 1 then invalid_arg "Replica.provision: chunk_size < 1";
  if timeout <= 0.0 then invalid_arg "Replica.provision: timeout <= 0";
  { pv_key_space = key_space; pv_chunk_size = chunk_size; pv_fence = fence;
    pv_timeout = timeout; pv_donors = donors }

type recovery = {
  wal_policy : Wal.policy;
  catch_up : bool;
  keys : (unit -> int list) option;
  proto : Protocol.t option;
  catchup_timeout : float;
  catchup_max_attempts : int;
  backoff : Detect.Backoff.policy;
  prov_config : provision option;
}

let recovery ?(wal_policy = Wal.Sync_on_commit) ?(catch_up = true) ?keys ?proto
    ?(catchup_timeout = 25.0) ?(catchup_max_attempts = 20)
    ?(backoff = Detect.Backoff.default) ?provision () =
  if catch_up && proto = None then
    invalid_arg "Replica.recovery: catch_up requires a protocol";
  { wal_policy; catch_up; keys; proto; catchup_timeout; catchup_max_attempts;
    backoff; prov_config = provision }

(* Overload admission policy.  [shed_watermark] is in queue-depth units of
   the site's network service queue: above it, client work is answered
   with [Busy] instead of being served.  0 disables watermark shedding
   (the hard capacity bound of the network queue still applies). *)
type admission = { shed_watermark : int; a_universe : int option }

let admission ?(shed_watermark = 0) ?universe () =
  if shed_watermark < 0 then
    invalid_arg "Replica.admission: negative shed watermark";
  { shed_watermark; a_universe = universe }

type status =
  | Serving
  | Recovering
  | Failed_rejoin
      (* terminal: the rejoin machinery exhausted its budget; the site is
         safe (it never serves clients) but out of service until the next
         crash/recover cycle starts a fresh attempt *)
  | Decommissioned
      (* terminal and permanent: fenced out of every quorum role *)

(* One outstanding catch-up read-quorum gather: the replica reads the
   newest (timestamp, value) of one key through a read quorum of the
   current tree, installs it, then moves to the next key. *)
type gather = {
  g_op : int;
  g_key : int;
  g_rest : int list;  (** keys still to catch up after this one *)
  g_attempt : int;
  g_t0 : float;  (** when this catch-up (all keys) began *)
  mutable g_waiting : int list;
  mutable g_max_ts : Timestamp.t;
  mutable g_max_value : string;
}

(* One in-flight provisioning transfer, recipient side.  The donor keeps
   no per-transfer state at all — the recipient's requests carry the full
   geometry and cursor — so a donor crash can interrupt a transfer but
   never corrupt it. *)
type prov = {
  mutable p_op : int;
  mutable p_donor : int;
  p_pinned : bool;
      (** promotion: the donor is the outgoing occupant of the tree
          position, whose acked writes are exactly what quorum
          intersection makes the incoming occupant answerable for — no
          other site is a safe substitute, so a pinned donor is retried
          in place instead of failed over *)
  mutable p_tried : int list;  (** donors already failed over from *)
  mutable p_next_chunk : int;
  mutable p_wal_index : int;
      (** minimum cut stamp over every chunk applied ([max_int] before
          the first): the tail must cover commits since the {e earliest}
          cut any of the chunks was read under *)
  mutable p_dinc : int;
      (** donor incarnation the transfer is fenced to; -1 until the
          first accepted chunk establishes it *)
  mutable p_tailing : bool;
  mutable p_progress : int;
      (** bumped on every accepted reply; the timeout watchdog only acts
          when it has not moved for a whole timeout *)
  p_t0 : float;
  p_done : (unit -> unit) option;
}

(* One outstanding delta-tail fetch — the promotion flow's final fenced
   delta, requested under the key locks.  Not a transfer: a single
   [Tail_request] retried until answered. *)
type tail_wait = { tw_op : int; tw_donor : int; tw_k : unit -> unit }

type t = {
  site : int;
  net : Message.t Network.t;
  mutable store : Store.t;
  recovery : recovery option;
  wal : Wal.t option;
  universe : int option;  (* replica count, to tell peers from clients *)
  admission : admission option;
  group_commit : bool;  (* one WAL durability point per batch *)
  proto : Protocol.t option;  (* private fork, for catch-up quorums *)
  rng : Rng.t option;  (* split from the engine only when catch-up is on *)
  obs : Obs.t option;
  mutable status : status;
  mutable incarnation : int;
  mutable lost_state : bool;  (* amnesia crash happened; recovery pending *)
  mutable gather : gather option;
  mutable next_seq : int;
  mutable reads_served : int;
  mutable sheds : int;
  mutable writes_applied : int;
  mutable prepares_seen : int;
  mutable repairs_applied : int;
  mutable catchup_runs : int;
  mutable catchup_keys_installed : int;
  mutable catchup_abandoned : int;
  mutable stale_commits_nacked : int;
  mutable wal_records_replayed : int;
  mutable prov : prov option;
  mutable prov_resume : (int option * bool * (unit -> unit) option) option;
      (* (donor, pinned, continuation) of a transfer interrupted by an
         amnesia crash — re-attached when the site comes back so a
         promotion's completion callback eventually fires *)
  mutable tail_wait : tail_wait option;
  mutable last_tail_index : int;  (* newest donor cut this replica holds *)
  mutable catchup_rounds : int;
  mutable failed_rejoins : int;
  mutable provision_runs : int;
  mutable provision_chunks : int;
  mutable provision_resumes : int;
  mutable provision_failovers : int;
  mutable provision_stale : int;
  mutable provision_rounds : int;
}

let engine t = Network.engine t.net
let now t = Engine.now (engine t)

let ocount t name =
  match t.obs with
  | None -> ()
  | Some obs -> Obs.Metrics.incr (Obs.Metrics.counter (Obs.metrics obs) name)

let ohist t name v =
  match t.obs with
  | None -> ()
  | Some obs -> Obs.Metrics.observe (Obs.Metrics.histogram (Obs.metrics obs) name) v

let wal_append t record =
  match t.wal with None -> () | Some wal -> Wal.append wal record

(* A batch's log records share one durability point under group commit;
   without it they are appended (and synced) one by one, exactly as if
   the operations had arrived unbatched. *)
let wal_append_many t records =
  match t.wal with
  | None -> ()
  | Some wal ->
    if t.group_commit then Wal.append_batch wal records
    else List.iter (Wal.append wal) records

let send t ?units ~dst msg = Network.send t.net ?units ~src:t.site ~dst msg

let fresh_op t =
  let id = (t.next_seq * Network.size t.net) + t.site in
  t.next_seq <- t.next_seq + 1;
  id

(* Believed-alive peers for catch-up quorum assembly: the ground-truth
   oracle minus ourselves (our own copy is exactly what we distrust). *)
let catchup_view t proto =
  let n = Protocol.universe_size proto in
  let view = Bitset.create n in
  for i = 0 to n - 1 do
    if i <> t.site && Network.is_up t.net i && Network.reachable t.net t.site i
    then Bitset.add view i
  done;
  view

(* --- rejoin state machine ----------------------------------------------- *)

let finish_catchup t ~t0 =
  t.status <- Serving;
  t.catchup_runs <- t.catchup_runs + 1;
  ocount t "replica.catchup.runs";
  ohist t "replica.catchup.duration" (now t -. t0)

let rec catchup_key t ~inc ~keys ~attempt ~t0 =
  if t.incarnation = inc && t.status = Recovering then begin
    match keys with
    | [] -> finish_catchup t ~t0
    | key :: rest -> (
      let proto = Option.get t.proto and rng = Option.get t.rng in
      match Protocol.read_quorum proto ~alive:(catchup_view t proto) ~rng with
      | None ->
        (* No quorum among the peers right now; this consumes an attempt
           too, so a long outage drains the budget instead of looping. *)
        catchup_retry t ~inc ~keys ~attempt:(attempt + 1) ~t0
      | Some quorum ->
        t.catchup_rounds <- t.catchup_rounds + 1;
        let members = Bitset.elements quorum in
        let g =
          {
            g_op = fresh_op t;
            g_key = key;
            g_rest = rest;
            g_attempt = attempt;
            g_t0 = t0;
            g_waiting = members;
            g_max_ts = Timestamp.zero;
            g_max_value = "";
          }
        in
        t.gather <- Some g;
        let r = Option.get t.recovery in
        Engine.schedule (engine t) ~delay:r.catchup_timeout (fun () ->
            match t.gather with
            | Some g' when g' == g ->
              t.gather <- None;
              catchup_retry t ~inc ~keys ~attempt:(attempt + 1) ~t0
            | _ -> ());
        List.iter
          (fun m -> send t ~dst:m (Message.Read_request { op = g.g_op; key }))
          members)
  end

and catchup_retry t ~inc ~keys ~attempt ~t0 =
  let r = Option.get t.recovery in
  if attempt >= r.catchup_max_attempts then begin
    (* Peers never assembled into a willing quorum (e.g. everyone else is
       recovering too).  Serving would risk stale reads, so the rejoin
       lands in the terminal [Failed_rejoin] state: still safe (peer
       catch-up reads keep being answered from durable state, clients are
       refused), visibly stuck rather than "recovering" forever, until
       the next crash/recover cycle starts a fresh attempt. *)
    t.catchup_abandoned <- t.catchup_abandoned + 1;
    ocount t "replica.catchup.abandoned";
    t.status <- Failed_rejoin;
    t.failed_rejoins <- t.failed_rejoins + 1;
    ocount t "replica.rejoin.failed"
  end
  else begin
    let delay =
      match t.rng with
      | Some rng -> Detect.Backoff.delay r.backoff ~rng ~attempt
      | None -> 1.0
    in
    Engine.schedule (engine t) ~delay (fun () ->
        if t.gather = None then catchup_key t ~inc ~keys ~attempt ~t0)
  end

let catchup_gather_reply t g ~src ~ts ~value =
  if List.mem src g.g_waiting then begin
    if Timestamp.newer_than ts g.g_max_ts then begin
      g.g_max_ts <- ts;
      g.g_max_value <- value
    end;
    g.g_waiting <- List.filter (fun m -> m <> src) g.g_waiting;
    if g.g_waiting = [] then begin
      t.gather <- None;
      if
        not (Timestamp.equal g.g_max_ts Timestamp.zero)
        && Store.install t.store ~key:g.g_key ~ts:g.g_max_ts ~value:g.g_max_value
      then begin
        wal_append t (Wal.Install { key = g.g_key; ts = g.g_max_ts; value = g.g_max_value });
        t.catchup_keys_installed <- t.catchup_keys_installed + 1;
        ocount t "replica.catchup.keys_installed"
      end;
      catchup_key t ~inc:t.incarnation ~keys:g.g_rest ~attempt:0 ~t0:g.g_t0
    end
  end

(* A peer refused our catch-up read (it is recovering itself, most
   likely): drop the whole gather and retry with a freshly assembled
   quorum after a backoff pause. *)
let catchup_gather_failed t g =
  t.gather <- None;
  catchup_retry t ~inc:t.incarnation ~keys:(g.g_key :: g.g_rest)
    ~attempt:(g.g_attempt + 1) ~t0:g.g_t0

(* --- provisioning: donor side -------------------------------------------- *)

let prov_config t =
  match t.recovery with Some { prov_config = Some pv; _ } -> Some pv | _ -> None

(* Serving a chunk is a pure read of local committed state: the simulator
   mutates stores only between events, so the export inside one event is
   a consistent cut, stamped with the WAL index the matching tail must
   start from. *)
let serve_chunk t ~dst ~op ~chunk ~chunk_size ~key_space =
  let n_chunks = max 1 ((key_space + chunk_size - 1) / chunk_size) in
  if chunk >= 0 && chunk < n_chunks && chunk_size > 0 then begin
    let lo = chunk * chunk_size in
    let hi = min key_space (lo + chunk_size) in
    let entries = Store.snapshot_chunk t.store ~lo ~hi in
    let wal_index = match t.wal with None -> 0 | Some w -> Wal.next_index w in
    send t ~units:(max 1 (Batch.length entries)) ~dst
      (Message.Snapshot_chunk
         { op; chunk; n_chunks; wal_index; dinc = t.incarnation; entries })
  end

let serve_tail t ~dst ~op ~from_index =
  let next_index, entries =
    match t.wal with
    | None -> (0, Batch.init 0 (fun _ -> (0, 0, 0, "")))
    | Some w -> (Wal.next_index w, Wal.committed_since w ~index:from_index)
  in
  send t ~units:(max 1 (Batch.length entries)) ~dst
    (Message.Wal_tail { op; dinc = t.incarnation; next_index; entries })

(* --- provisioning: recipient side ----------------------------------------- *)

(* Install a committed tail monotonically, mirroring every entry into the
   WAL (one durability point for the lot) so it survives a later amnesia
   crash. *)
let apply_tail_entries t entries =
  ignore (Store.import_chunk t.store entries);
  match t.wal with
  | Some wal when Batch.length entries > 0 ->
    let records = ref [] in
    for i = Batch.length entries - 1 downto 0 do
      records :=
        Wal.Install
          {
            key = Batch.key entries i;
            ts =
              Timestamp.make ~version:(Batch.version entries i)
                ~sid:(Batch.sid entries i);
            value = Batch.value entries i;
          }
        :: !records
    done;
    Wal.append_batch wal !records
  | _ -> ()

let prov_stale t =
  t.provision_stale <- t.provision_stale + 1;
  ocount t "provision.stale"

let rec prov_request t p =
  (* (Re)issue the transfer from the current cursor under a fresh op id —
     anything still in flight under the old id is thereby fenced. *)
  let pv = match prov_config t with Some pv -> pv | None -> assert false in
  p.p_op <- fresh_op t;
  t.provision_rounds <- t.provision_rounds + 1;
  send t ~dst:p.p_donor
    (Message.Provision_request
       {
         op = p.p_op;
         from_chunk = p.p_next_chunk;
         chunk_size = pv.pv_chunk_size;
         key_space = pv.pv_key_space;
       });
  prov_watch t p

and prov_tail_request t p =
  let from_index = if p.p_wal_index = max_int then 0 else p.p_wal_index in
  p.p_op <- fresh_op t;
  t.provision_rounds <- t.provision_rounds + 1;
  send t ~dst:p.p_donor (Message.Tail_request { op = p.p_op; from_index });
  prov_watch t p

and prov_watch t p =
  let pv = match prov_config t with Some pv -> pv | None -> assert false in
  let snap = p.p_progress in
  Engine.schedule (engine t) ~delay:pv.pv_timeout (fun () ->
      match t.prov with
      | Some p' when p' == p && p.p_progress = snap -> prov_stalled t p
      | _ -> ())

and prov_stalled t p =
  (* A whole timeout with no progress (or an explicit donor refusal): the
     donor is crashed, recovering, decommissioned or unreachable.  A
     pinned donor is retried in place; otherwise fail over to the next
     candidate, resuming from the current chunk cursor — monotone
     installs make the overlap harmless. *)
  p.p_progress <- p.p_progress + 1;
  if not p.p_pinned then begin
    p.p_tried <- p.p_donor :: p.p_tried;
    match prov_pick_donor t p with
    | Some d when d <> p.p_donor ->
      t.provision_failovers <- t.provision_failovers + 1;
      ocount t "provision.donor_failovers";
      if p.p_next_chunk > 0 && not p.p_tailing then begin
        t.provision_resumes <- t.provision_resumes + 1;
        ocount t "provision.resumes"
      end;
      p.p_donor <- d;
      p.p_dinc <- -1
    | _ -> ()
  end;
  if p.p_tailing then prov_tail_request t p else prov_request t p

and prov_pick_donor t p =
  let candidates =
    match prov_config t with
    | Some { pv_donors = Some f; _ } -> f ()
    | _ -> ( match t.universe with Some n -> List.init n Fun.id | None -> [])
  in
  let usable d =
    d <> t.site && Network.is_up t.net d && Network.reachable t.net t.site d
  in
  match
    List.find_opt (fun d -> usable d && not (List.mem d p.p_tried)) candidates
  with
  | Some d -> Some d
  | None ->
    (* every candidate tried or down: forget the history and knock on any
       live door again — re-asking a donor that refused before is
       harmless, and the transfer must eventually complete *)
    p.p_tried <- [];
    List.find_opt usable candidates

let prov_chunk t p ~src ~chunk ~n_chunks ~wal_index ~dinc ~entries =
  if src <> p.p_donor then prov_stale t
  else if p.p_dinc >= 0 && dinc <> p.p_dinc then begin
    (* the donor restarted mid-transfer: this chunk belongs to a broken
       transfer — fence it and re-request from the cursor under a fresh
       op, re-establishing the incarnation from the next reply *)
    prov_stale t;
    p.p_dinc <- -1;
    prov_request t p
  end
  else if chunk <> p.p_next_chunk || p.p_tailing then prov_stale t
  else begin
    let pv = match prov_config t with Some pv -> pv | None -> assert false in
    p.p_dinc <- dinc;
    p.p_wal_index <- min p.p_wal_index wal_index;
    p.p_progress <- p.p_progress + 1;
    ignore (Store.import_chunk t.store entries);
    (match t.wal with
    | Some wal ->
      (* the chunk's installs and the progress mark share one durability
         point: a crash either keeps the whole chunk (and resumes after
         it) or none of it *)
      let records = ref [ Wal.Mark { chunk; wal_index = p.p_wal_index } ] in
      for i = Batch.length entries - 1 downto 0 do
        records :=
          Wal.Install
            {
              key = Batch.key entries i;
              ts =
                Timestamp.make ~version:(Batch.version entries i)
                  ~sid:(Batch.sid entries i);
              value = Batch.value entries i;
            }
          :: !records
      done;
      Wal.append_batch wal !records
    | None -> ());
    t.provision_chunks <- t.provision_chunks + 1;
    ocount t "provision.chunks";
    p.p_next_chunk <- chunk + 1;
    if p.p_next_chunk >= n_chunks then begin
      p.p_tailing <- true;
      prov_tail_request t p
    end
    else begin
      t.provision_rounds <- t.provision_rounds + 1;
      send t ~dst:p.p_donor
        (Message.Chunk_ack
           {
             op = p.p_op;
             chunk;
             chunk_size = pv.pv_chunk_size;
             key_space = pv.pv_key_space;
           });
      prov_watch t p
    end
  end

let prov_tail t p ~src ~dinc ~next_index ~entries =
  if src <> p.p_donor then prov_stale t
  else if p.p_dinc >= 0 && dinc <> p.p_dinc then begin
    (* donor restarted between the last chunk and the tail; the uniform
       fencing rule applies — refuse and re-request under the new life *)
    prov_stale t;
    p.p_dinc <- -1;
    prov_tail_request t p
  end
  else begin
    p.p_progress <- p.p_progress + 1;
    apply_tail_entries t entries;
    t.last_tail_index <- next_index;
    (* completion mark: retires the transfer's resume state so a later
       rejoin starts fresh *)
    (match t.wal with
    | Some wal -> Wal.append wal (Wal.Mark { chunk = -1; wal_index = next_index })
    | None -> ());
    t.prov <- None;
    t.provision_runs <- t.provision_runs + 1;
    ocount t "provision.runs";
    ohist t "provision.duration" (now t -. p.p_t0);
    if t.status = Recovering then t.status <- Serving;
    match p.p_done with Some k -> k () | None -> ()
  end

let start_provision t ?(pinned = false) ?donor ?on_done () =
  let pv =
    match prov_config t with
    | Some pv -> pv
    | None -> invalid_arg "Replica.provision_now: no provisioning config"
  in
  let n_chunks =
    max 1 ((pv.pv_key_space + pv.pv_chunk_size - 1) / pv.pv_chunk_size)
  in
  let resume_chunk, resume_index =
    match t.wal with
    | Some w -> (
      match Wal.resume_state w with
      | Some (c, wi) -> (min c n_chunks, wi)
      | None -> (0, max_int))
    | None -> (0, max_int)
  in
  t.status <- (if pv.pv_fence then Recovering else Serving);
  t.gather <- None;
  let p =
    {
      p_op = 0;
      p_donor = -1;
      p_pinned = pinned;
      p_tried = [];
      p_next_chunk = resume_chunk;
      p_wal_index = resume_index;
      p_dinc = -1;
      p_tailing = false;
      p_progress = 0;
      p_t0 = now t;
      p_done = on_done;
    }
  in
  (match donor with
  | Some d -> p.p_donor <- d
  | None -> (
    match prov_pick_donor t p with
    | Some d -> p.p_donor <- d
    | None ->
      (* nobody reachable right now: aim at any other site; the watchdog
         keeps re-picking until someone answers *)
      p.p_donor <- (if t.site = 0 then 1 else 0)));
  t.prov <- Some p;
  ocount t "provision.starts";
  if resume_chunk > 0 then begin
    (* restarting from the last durable chunk of an interrupted transfer *)
    t.provision_resumes <- t.provision_resumes + 1;
    ocount t "provision.resumes"
  end;
  if resume_chunk >= n_chunks && resume_index <> max_int then begin
    (* every chunk was already durable: only the tail is missing *)
    p.p_tailing <- true;
    prov_tail_request t p
  end
  else prov_request t p

let on_crash t mode =
  match (mode : Network.crash_mode) with
  | Network.Fail_stop -> ()
  | Network.Amnesia ->
    (* Volatile memory is gone the instant the site dies; the WAL drops
       whatever the policy had not yet made durable. *)
    t.lost_state <- true;
    t.store <- Store.create ();
    t.gather <- None;
    (match t.prov with
    | Some p when p.p_pinned || p.p_done <> None ->
      (* a transfer someone is waiting on (a promotion): stash the donor
         and the continuation so the restarted transfer still reports
         completion to the orchestrator *)
      t.prov_resume <- Some (Some p.p_donor, p.p_pinned, p.p_done)
    | _ -> ());
    t.prov <- None;
    t.tail_wait <- None;
    (match t.wal with Some wal -> Wal.crash wal | None -> ())

let on_recover t =
  if t.lost_state then begin
    t.lost_state <- false;
    t.incarnation <- t.incarnation + 1;
    ocount t "replica.recoveries";
    (match t.wal with
    | Some wal ->
      let n = Wal.replay wal t.store in
      t.wal_records_replayed <- t.wal_records_replayed + n
    | None -> ());
    if t.status = Decommissioned then ()
      (* a decommissioned site stays fenced through crashes *)
    else
      let r = Option.get t.recovery in
      match r.prov_config with
      | Some _ ->
        (* provisioning rejoin: snapshot + tail from a donor, resuming
           after the newest durable chunk mark WAL replay preserved *)
        let donor, pinned, k =
          match t.prov_resume with
          | Some (d, pin, k) -> (d, pin, k)
          | None -> (None, false, None)
        in
        t.prov_resume <- None;
        start_provision t ~pinned ?donor ?on_done:k ()
      | None ->
        if r.catch_up then begin
          t.status <- Recovering;
          let keys =
            match r.keys with Some f -> f () | None -> Store.keys t.store
          in
          catchup_key t ~inc:t.incarnation ~keys ~attempt:0 ~t0:(now t)
        end
        else t.status <- Serving
  end

(* --- message handling ----------------------------------------------------- *)

let nack t ~dst ~op reason =
  send t ~dst (Message.Prepare_nack { op; reason })

let is_peer t src = match t.universe with Some n -> src < n | None -> false

let shed t ~dst ~op =
  t.sheds <- t.sheds + 1;
  ocount t "replica.shed";
  send t ~dst (Message.Busy { op })

(* Watermark admission: once the ingress queue is deeper than the
   watermark, client work gets a fast [Busy] instead of service — the
   queue keeps draining protocol traffic instead of stacking doomed
   requests.  Peer catch-up reads and everything 2PC are exempt: shedding
   those converts overload into unavailability or stuck transactions. *)
let shed_client_work t ~src msg =
  match t.admission with
  | None -> None
  | Some a ->
    if
      a.shed_watermark > 0
      && Network.queue_depth t.net t.site > a.shed_watermark
    then
      match (msg : Message.t) with
      | Read_request { op; _ } when not (is_peer t src) -> Some op
      | Read_batch { op; _ } when not (is_peer t src) -> Some op
      | Prepare { op; _ } | Prepare_batch { op; _ } -> Some op
      | _ -> None
    else None

let handle_serving t ~src msg =
  match (msg : Message.t) with
  | Read_request { op; key } ->
    t.reads_served <- t.reads_served + 1;
    (* Flat serving path: no tuple, no boxed timestamp — only the reply
       message itself is allocated. *)
    let store = t.store in
    send t ~dst:src
      (Message.Read_reply
         {
           op;
           key;
           version = Store.version_of store ~key;
           sid = Store.sid_of store ~key;
           value = Store.value_of store ~key;
           inc = t.incarnation;
         })
  | Prepare { op; key; version; sid; value } ->
    t.prepares_seen <- t.prepares_seen + 1;
    Store.stage_flat t.store ~op ~key ~version ~sid ~value;
    (* The WAL keeps boxed timestamps (cold path); build one only when a
       WAL is actually attached. *)
    (match t.wal with
    | Some wal ->
      Wal.append wal
        (Wal.Stage { op; key; ts = Timestamp.make ~version ~sid; value })
    | None -> ());
    send t ~dst:src (Message.Prepare_ack { op; inc = t.incarnation })
  | Commit { op; inc } ->
    if inc <> t.incarnation then begin
      (* The stage this commit refers to belonged to a previous life; its
         volatile state is gone.  Refuse so the coordinator retries the
         whole write instead of counting a lost write as applied. *)
      t.stale_commits_nacked <- t.stale_commits_nacked + 1;
      ocount t "replica.stale_inc.nacked";
      nack t ~dst:src ~op "stale-incarnation"
    end
    else begin
      (if Store.has_staged t.store ~op then begin
         (match t.wal with
         | Some wal -> (
           match Store.staged t.store ~op with
           | Some (key, ts, value) ->
             Wal.append wal (Wal.Commit { op; key; ts; value })
           | None -> ())
         | None -> ());
         if Store.commit_staged t.store ~op then
           t.writes_applied <- t.writes_applied + 1
       end
       else
         let n = Store.staged_batch_size t.store ~op in
         if n > 0 then begin
           (* A staged batch commits atomically: every write's Commit
              record shares the batch's durability point. *)
           (match t.wal with
           | Some _ -> (
             match Store.staged_many t.store ~op with
             | Some writes ->
               wal_append_many t
                 (List.map
                    (fun (key, ts, value) -> Wal.Commit { op; key; ts; value })
                    (Batch.to_list writes))
             | None -> ())
           | None -> ());
           if Store.commit_staged t.store ~op then
             t.writes_applied <- t.writes_applied + n
         end);
      (* Ack even when nothing was staged: a same-incarnation resend means
         the first commit already applied (nothing can have been lost
         within one incarnation). *)
      send t ~dst:src (Message.Commit_ack { op; inc = t.incarnation })
    end
  | Abort { op } ->
    if Store.has_staged t.store ~op || Store.staged_batch_size t.store ~op > 0
    then wal_append t (Wal.Abort { op });
    Store.abort_staged t.store ~op
  | Repair { key; version; sid; value; _ } ->
    if Store.install_flat t.store ~key ~version ~sid ~value then begin
      (match t.wal with
      | Some wal ->
        Wal.append wal
          (Wal.Install { key; ts = Timestamp.make ~version ~sid; value })
      | None -> ());
      t.repairs_applied <- t.repairs_applied + 1
    end
  | Read_batch { op; n_keys; keys } ->
    (* Coalesced reads: one envelope in, one envelope out, each counted
       as one message by the network but as [n_keys] logical reads here. *)
    t.reads_served <- t.reads_served + n_keys;
    let store = t.store in
    let entries =
      Batch.init n_keys (fun i ->
          let key = keys.(i) in
          ( key,
            Store.version_of store ~key,
            Store.sid_of store ~key,
            Store.value_of store ~key ))
    in
    send t ~dst:src ~units:n_keys
      (Message.Read_batch_reply { op; entries; inc = t.incarnation })
  | Prepare_batch { op; writes } ->
    t.prepares_seen <- t.prepares_seen + Batch.length writes;
    Store.stage_many t.store ~op writes;
    (match t.wal with
    | Some _ ->
      wal_append_many t
        (List.map
           (fun (key, ts, value) -> Wal.Stage { op; key; ts; value })
           (Batch.to_list writes))
    | None -> ());
    send t ~dst:src (Message.Prepare_ack { op; inc = t.incarnation })
  | Ping { seq } -> send t ~dst:src (Message.Pong { seq })
  | Provision_request { op; from_chunk; chunk_size; key_space } ->
    (* donor duty: serve the requested chunk from local committed state *)
    serve_chunk t ~dst:src ~op ~chunk:from_chunk ~chunk_size ~key_space
  | Chunk_ack { op; chunk; chunk_size; key_space } ->
    serve_chunk t ~dst:src ~op ~chunk:(chunk + 1) ~chunk_size ~key_space
  | Tail_request { op; from_index } -> serve_tail t ~dst:src ~op ~from_index
  | Snapshot_chunk _ | Wal_tail _ ->
    (* recipient-side replies are routed before the status dispatch *)
    ()
  | Read_reply _ | Read_batch_reply _ | Prepare_ack _ | Prepare_nack _
  | Commit_ack _ | Busy _ | Pong _ ->
    (* Coordinator-bound messages; a serving replica ignores strays. *)
    ()

(* While recovering the replica is alive but must not serve reads or take
   part in write quorums: it answers with explicit refusals (prompting the
   coordinator to re-assemble elsewhere) and only its own catch-up reads
   and incoming repairs touch the store. *)
let handle_recovering t ~src msg =
  match (msg : Message.t) with
  | Read_request { op; key } ->
    let peer_catchup =
      match t.universe with Some n -> src < n | None -> false
    in
    if peer_catchup then begin
      (* A peer's catch-up read: answer from replayed durable state.  Under
         a commit-durable WAL that state holds every commit this replica
         ever applied, so quorum intersection still guarantees the
         requester sees the newest committed timestamp — and refusing
         would let recovering replicas nack each other's catch-ups into a
         permanent mutual standoff once all have crashed at least once. *)
      let store = t.store in
      send t ~dst:src
        (Message.Read_reply
           {
             op;
             key;
             version = Store.version_of store ~key;
             sid = Store.sid_of store ~key;
             value = Store.value_of store ~key;
             inc = t.incarnation;
           })
    end
    else nack t ~dst:src ~op "recovering"
  | Read_batch { op; _ } ->
    (* Batches are client traffic (catch-up never batches): refuse. *)
    nack t ~dst:src ~op "recovering"
  | Prepare { op; _ } | Prepare_batch { op; _ } ->
    nack t ~dst:src ~op "recovering"
  | Commit { op; _ } ->
    t.stale_commits_nacked <- t.stale_commits_nacked + 1;
    ocount t "replica.stale_inc.nacked";
    nack t ~dst:src ~op "stale-incarnation"
  | Abort { op } -> Store.abort_staged t.store ~op
  | Repair { key; version; sid; value; _ } ->
    if Store.install_flat t.store ~key ~version ~sid ~value then begin
      (match t.wal with
      | Some wal ->
        Wal.append wal
          (Wal.Install { key; ts = Timestamp.make ~version ~sid; value })
      | None -> ());
      t.repairs_applied <- t.repairs_applied + 1
    end
  | Ping { seq } -> send t ~dst:src (Message.Pong { seq })
  | Read_reply { version; sid; value; _ } -> (
    match t.gather with
    | Some g when g.g_op = Message.op_id msg ->
      catchup_gather_reply t g ~src ~ts:(Timestamp.make ~version ~sid) ~value
    | _ -> ())
  | Prepare_nack _ -> (
    match t.gather with
    | Some g when g.g_op = Message.op_id msg -> catchup_gather_failed t g
    | _ -> ())
  | Provision_request { op; from_chunk; chunk_size; key_space } ->
    (* Donor duty is served even while recovering, from replayed durable
       state — the same argument as peer catch-up reads above: under a
       commit-durable WAL that state holds every commit this replica
       acked, which is all the recipient needs from {e this} donor.
       Refusing would wedge a full blackout forever (every rejoiner
       nacking every other rejoiner). *)
    serve_chunk t ~dst:src ~op ~chunk:from_chunk ~chunk_size ~key_space
  | Chunk_ack { op; chunk; chunk_size; key_space } ->
    serve_chunk t ~dst:src ~op ~chunk:(chunk + 1) ~chunk_size ~key_space
  | Tail_request { op; from_index } -> serve_tail t ~dst:src ~op ~from_index
  | Snapshot_chunk _ | Wal_tail _ ->
    (* recipient-side replies are routed before the status dispatch *)
    ()
  | Prepare_ack _ | Commit_ack _ | Busy _ | Pong _ | Read_batch_reply _ -> ()

(* A decommissioned site is fenced for good: it refuses reads, 2PC
   participation and donor duty so no quorum and no transfer can count on
   it, and it never rejoins on recovery.  Only heartbeats are answered —
   the failure detector may truthfully observe it as up, just useless. *)
let handle_decommissioned t ~src msg =
  match (msg : Message.t) with
  | Read_request { op; _ }
  | Read_batch { op; _ }
  | Prepare { op; _ }
  | Prepare_batch { op; _ }
  | Provision_request { op; _ }
  | Chunk_ack { op; _ }
  | Tail_request { op; _ } ->
    nack t ~dst:src ~op "decommissioned"
  | Commit { op; _ } ->
    t.stale_commits_nacked <- t.stale_commits_nacked + 1;
    ocount t "replica.stale_inc.nacked";
    nack t ~dst:src ~op "stale-incarnation"
  | Abort { op } -> Store.abort_staged t.store ~op
  | Ping { seq } -> send t ~dst:src (Message.Pong { seq })
  | Repair _ | Snapshot_chunk _ | Wal_tail _ | Read_reply _
  | Read_batch_reply _ | Prepare_ack _ | Prepare_nack _ | Commit_ack _
  | Busy _ | Pong _ ->
    ()

(* Recipient-side provisioning replies bypass the status dispatch: a
   fenced recipient is [Recovering], an unfenced one (the negative
   control) keeps [Serving] while the transfer runs, and the promotion
   delta tail arrives at a serving spare. *)
let is_prov_reply t msg =
  match (msg : Message.t) with
  | Message.Snapshot_chunk _ | Message.Wal_tail _ -> true
  | Message.Prepare_nack { op; _ } -> (
    match t.prov with Some p -> p.p_op = op | None -> false)
  | _ -> false

let handle_prov_reply t ~src msg =
  match (msg : Message.t) with
  | Message.Snapshot_chunk { op; chunk; n_chunks; wal_index; dinc; entries }
    -> (
    match t.prov with
    | Some p when p.p_op = op ->
      prov_chunk t p ~src ~chunk ~n_chunks ~wal_index ~dinc ~entries
    | _ -> prov_stale t)
  | Message.Wal_tail { op; dinc; next_index; entries } -> (
    match t.prov with
    | Some p when p.p_op = op -> prov_tail t p ~src ~dinc ~next_index ~entries
    | _ -> (
      match t.tail_wait with
      | Some tw when tw.tw_op = op && tw.tw_donor = src ->
        t.tail_wait <- None;
        apply_tail_entries t entries;
        t.last_tail_index <- next_index;
        tw.tw_k ()
      | _ -> prov_stale t))
  | Message.Prepare_nack _ -> (
    (* the donor refused (recovering or decommissioned): same move as a
       stall — fail over, or retry a pinned donor *)
    match t.prov with Some p -> prov_stalled t p | None -> ())
  | _ -> ()

let handle t ~src msg =
  if is_prov_reply t msg then handle_prov_reply t ~src msg
  else
    match shed_client_work t ~src msg with
    | Some op -> shed t ~dst:src ~op
    | None -> (
      match t.status with
      | Serving -> handle_serving t ~src msg
      | Recovering | Failed_rejoin -> handle_recovering t ~src msg
      | Decommissioned -> handle_decommissioned t ~src msg)

(* Which arrivals may bypass the bounded ingress queue's capacity check.
   Replies and heartbeats are tiny and keep the control plane honest; 2PC
   completion traffic (Commit/Abort) must land or prepared writes wedge;
   Repair and peer catch-up reads are the recovery lane — shedding them
   would let overload block the very mechanism that drains it. *)
let priority_lane t ~src msg =
  match (msg : Message.t) with
  | Commit _ | Abort _ | Repair _ | Ping _ | Pong _ | Read_reply _
  | Read_batch_reply _ | Prepare_ack _ | Prepare_nack _ | Commit_ack _
  | Busy _ ->
    true
  | Read_request _ -> is_peer t src
  | Prepare _ | Prepare_batch _ -> false
  | Read_batch _ -> is_peer t src
  | Provision_request _ | Snapshot_chunk _ | Chunk_ack _ | Tail_request _
  | Wal_tail _ ->
    (* provisioning rides the recovery lane: a transfer that overload can
       starve would keep the recipient out of service indefinitely *)
    true

(* A message the bounded queue turned away: answer with an explicit
   [Busy] so the coordinator learns about the pushback now instead of at
   its timeout. *)
let on_overflow t ~src msg =
  match (msg : Message.t) with
  | Read_request { op; _ }
  | Prepare { op; _ }
  | Read_batch { op; _ }
  | Prepare_batch { op; _ } ->
    shed t ~dst:src ~op
  | _ -> ()

let create ~site ~net ?recovery ?admission ?(group_commit = false) ?obs () =
  let proto, rng =
    match recovery with
    | Some r when r.catch_up ->
      (* Fork so catch-up quorum sampling never shares scratch state with
         the coordinators' instance; split an own RNG stream so enabling
         recovery reshapes no other component's draws. *)
      ( Option.map Protocol.fork r.proto,
        Some (Rng.split (Engine.rng (Network.engine net))) )
    | _ -> (None, None)
  in
  let wal =
    match recovery with
    | None -> None
    | Some r ->
      Some
        (Wal.create ~policy:r.wal_policy
           ~now:(fun () -> Engine.now (Network.engine net))
           ())
  in
  let universe =
    match admission with
    | Some { a_universe = Some n; _ } -> Some n
    | _ -> (
      match recovery with
      | Some { proto = Some p; _ } -> Some (Protocol.universe_size p)
      | _ -> None)
  in
  let t =
    {
      site;
      net;
      store = Store.create ();
      recovery;
      wal;
      universe;
      admission;
      group_commit;
      proto;
      rng;
      obs;
      status = Serving;
      incarnation = 0;
      lost_state = false;
      gather = None;
      next_seq = 0;
      reads_served = 0;
      sheds = 0;
      writes_applied = 0;
      prepares_seen = 0;
      repairs_applied = 0;
      catchup_runs = 0;
      catchup_keys_installed = 0;
      catchup_abandoned = 0;
      stale_commits_nacked = 0;
      wal_records_replayed = 0;
      prov = None;
      prov_resume = None;
      tail_wait = None;
      last_tail_index = 0;
      catchup_rounds = 0;
      failed_rejoins = 0;
      provision_runs = 0;
      provision_chunks = 0;
      provision_resumes = 0;
      provision_failovers = 0;
      provision_stale = 0;
      provision_rounds = 0;
    }
  in
  Network.set_handler net ~site (fun ~src msg -> handle t ~src msg);
  (* Admission control plugs into the network's service model: the
     priority lane exempts protocol traffic from the capacity bound, and
     the overflow hook turns silent queue-full drops into Busy nacks.
     Without [admission] neither is installed and the site keeps the
     instant-delivery path. *)
  (match admission with
  | None -> ()
  | Some _ ->
    Network.set_priority net ~site (fun ~src msg -> priority_lane t ~src msg);
    Network.set_overflow net ~site (fun ~src msg -> on_overflow t ~src msg));
  (* Only recovery-enabled replicas care about their own failures; legacy
     fail-stop replicas keep the hook-free network behavior. *)
  if recovery <> None then
    Network.set_crash_hooks net ~site
      ~on_crash:(fun mode -> on_crash t mode)
      ~on_recover:(fun () -> on_recover t)
      ();
  t

(* --- membership operations ------------------------------------------------ *)

let provision_now t ?(pinned = false) ?donor ?on_done () =
  start_provision t ~pinned ?donor ?on_done ()

(* One-shot fenced delta: fetch the committed tail since the newest cut
   this replica holds, then run [k].  The promotion flow calls this while
   every key is locked, so the answer is the donor's final word. *)
let request_tail t ~donor k =
  let tw = { tw_op = fresh_op t; tw_donor = donor; tw_k = k } in
  t.tail_wait <- Some tw;
  let delay = match prov_config t with Some pv -> pv.pv_timeout | None -> 25.0 in
  let rec go () =
    match t.tail_wait with
    | Some tw' when tw' == tw ->
      t.provision_rounds <- t.provision_rounds + 1;
      send t ~dst:donor
        (Message.Tail_request { op = tw.tw_op; from_index = t.last_tail_index });
      Engine.schedule (engine t) ~delay go
    | _ -> ()
  in
  go ()

let decommission t =
  t.status <- Decommissioned;
  t.prov <- None;
  t.gather <- None;
  t.tail_wait <- None;
  ocount t "replica.decommissioned"

let site t = t.site
let store t = t.store
let reads_served t = t.reads_served
let sheds t = t.sheds
let writes_applied t = t.writes_applied
let prepares_seen t = t.prepares_seen
let repairs_applied t = t.repairs_applied
let incarnation t = t.incarnation
let is_serving t = t.status = Serving
let is_decommissioned t = t.status = Decommissioned
let is_failed_rejoin t = t.status = Failed_rejoin
let provisioning_active t = t.prov <> None

let status_label t =
  match t.status with
  | Serving -> "serving"
  | Recovering -> "recovering"
  | Failed_rejoin -> "failed-rejoin"
  | Decommissioned -> "decommissioned"

let catchup_runs t = t.catchup_runs
let catchup_keys_installed t = t.catchup_keys_installed
let catchup_abandoned t = t.catchup_abandoned
let stale_commits_nacked t = t.stale_commits_nacked
let wal_records_replayed t = t.wal_records_replayed
let wal_records_lost t = match t.wal with None -> 0 | Some w -> Wal.lost_total w
let wal_syncs t = match t.wal with None -> 0 | Some w -> Wal.syncs w
let catchup_rounds t = t.catchup_rounds
let failed_rejoins t = t.failed_rejoins
let provision_runs t = t.provision_runs
let provision_chunks t = t.provision_chunks
let provision_resumes t = t.provision_resumes
let provision_donor_failovers t = t.provision_failovers
let provision_stale t = t.provision_stale
let provision_rounds t = t.provision_rounds
let last_tail_index t = t.last_tail_index
