module Network = Dsim.Network

type t = {
  site : int;
  net : Message.t Network.t;
  store : Store.t;
  mutable reads_served : int;
  mutable writes_applied : int;
  mutable prepares_seen : int;
  mutable repairs_applied : int;
}

let handle t ~src msg =
  match (msg : Message.t) with
  | Read_request { op; key } ->
    t.reads_served <- t.reads_served + 1;
    let ts, value = Store.read t.store ~key in
    Network.send t.net ~src:t.site ~dst:src (Message.Read_reply { op; key; ts; value })
  | Prepare { op; key; ts; value } ->
    t.prepares_seen <- t.prepares_seen + 1;
    Store.stage t.store ~op ~key ~ts ~value;
    Network.send t.net ~src:t.site ~dst:src (Message.Prepare_ack { op })
  | Commit { op } ->
    if Store.commit_staged t.store ~op then
      t.writes_applied <- t.writes_applied + 1;
    Network.send t.net ~src:t.site ~dst:src (Message.Commit_ack { op })
  | Abort { op } -> Store.abort_staged t.store ~op
  | Repair { key; ts; value; _ } ->
    if Store.install t.store ~key ~ts ~value then
      t.repairs_applied <- t.repairs_applied + 1
  | Ping { seq } ->
    Network.send t.net ~src:t.site ~dst:src (Message.Pong { seq })
  | Read_reply _ | Prepare_ack _ | Prepare_nack _ | Commit_ack _ | Pong _ ->
    (* Coordinator-bound messages; a replica ignores strays. *)
    ()

let create ~site ~net =
  let t =
    {
      site;
      net;
      store = Store.create ();
      reads_served = 0;
      writes_applied = 0;
      prepares_seen = 0;
      repairs_applied = 0;
    }
  in
  Network.set_handler net ~site (fun ~src msg -> handle t ~src msg);
  t

let site t = t.site
let store t = t.store
let reads_served t = t.reads_served
let writes_applied t = t.writes_applied
let prepares_seen t = t.prepares_seen
let repairs_applied t = t.repairs_applied
