module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Engine = Dsim.Engine
module Network = Dsim.Network
module Protocol = Quorum.Protocol

type recovery = {
  wal_policy : Wal.policy;
  catch_up : bool;
  keys : (unit -> int list) option;
  proto : Protocol.t option;
  catchup_timeout : float;
  catchup_max_attempts : int;
  backoff : Detect.Backoff.policy;
}

let recovery ?(wal_policy = Wal.Sync_on_commit) ?(catch_up = true) ?keys ?proto
    ?(catchup_timeout = 25.0) ?(catchup_max_attempts = 20)
    ?(backoff = Detect.Backoff.default) () =
  if catch_up && proto = None then
    invalid_arg "Replica.recovery: catch_up requires a protocol";
  { wal_policy; catch_up; keys; proto; catchup_timeout; catchup_max_attempts;
    backoff }

(* Overload admission policy.  [shed_watermark] is in queue-depth units of
   the site's network service queue: above it, client work is answered
   with [Busy] instead of being served.  0 disables watermark shedding
   (the hard capacity bound of the network queue still applies). *)
type admission = { shed_watermark : int; a_universe : int option }

let admission ?(shed_watermark = 0) ?universe () =
  if shed_watermark < 0 then
    invalid_arg "Replica.admission: negative shed watermark";
  { shed_watermark; a_universe = universe }

type status = Serving | Recovering

(* One outstanding catch-up read-quorum gather: the replica reads the
   newest (timestamp, value) of one key through a read quorum of the
   current tree, installs it, then moves to the next key. *)
type gather = {
  g_op : int;
  g_key : int;
  g_rest : int list;  (** keys still to catch up after this one *)
  g_attempt : int;
  g_t0 : float;  (** when this catch-up (all keys) began *)
  mutable g_waiting : int list;
  mutable g_max_ts : Timestamp.t;
  mutable g_max_value : string;
}

type t = {
  site : int;
  net : Message.t Network.t;
  mutable store : Store.t;
  recovery : recovery option;
  wal : Wal.t option;
  universe : int option;  (* replica count, to tell peers from clients *)
  admission : admission option;
  group_commit : bool;  (* one WAL durability point per batch *)
  proto : Protocol.t option;  (* private fork, for catch-up quorums *)
  rng : Rng.t option;  (* split from the engine only when catch-up is on *)
  obs : Obs.t option;
  mutable status : status;
  mutable incarnation : int;
  mutable lost_state : bool;  (* amnesia crash happened; recovery pending *)
  mutable gather : gather option;
  mutable next_seq : int;
  mutable reads_served : int;
  mutable sheds : int;
  mutable writes_applied : int;
  mutable prepares_seen : int;
  mutable repairs_applied : int;
  mutable catchup_runs : int;
  mutable catchup_keys_installed : int;
  mutable catchup_abandoned : int;
  mutable stale_commits_nacked : int;
  mutable wal_records_replayed : int;
}

let engine t = Network.engine t.net
let now t = Engine.now (engine t)

let ocount t name =
  match t.obs with
  | None -> ()
  | Some obs -> Obs.Metrics.incr (Obs.Metrics.counter (Obs.metrics obs) name)

let ohist t name v =
  match t.obs with
  | None -> ()
  | Some obs -> Obs.Metrics.observe (Obs.Metrics.histogram (Obs.metrics obs) name) v

let wal_append t record =
  match t.wal with None -> () | Some wal -> Wal.append wal record

(* A batch's log records share one durability point under group commit;
   without it they are appended (and synced) one by one, exactly as if
   the operations had arrived unbatched. *)
let wal_append_many t records =
  match t.wal with
  | None -> ()
  | Some wal ->
    if t.group_commit then Wal.append_batch wal records
    else List.iter (Wal.append wal) records

let send t ?units ~dst msg = Network.send t.net ?units ~src:t.site ~dst msg

let fresh_op t =
  let id = (t.next_seq * Network.size t.net) + t.site in
  t.next_seq <- t.next_seq + 1;
  id

(* Believed-alive peers for catch-up quorum assembly: the ground-truth
   oracle minus ourselves (our own copy is exactly what we distrust). *)
let catchup_view t proto =
  let n = Protocol.universe_size proto in
  let view = Bitset.create n in
  for i = 0 to n - 1 do
    if i <> t.site && Network.is_up t.net i && Network.reachable t.net t.site i
    then Bitset.add view i
  done;
  view

(* --- rejoin state machine ----------------------------------------------- *)

let finish_catchup t ~t0 =
  t.status <- Serving;
  t.catchup_runs <- t.catchup_runs + 1;
  ocount t "replica.catchup.runs";
  ohist t "replica.catchup.duration" (now t -. t0)

let rec catchup_key t ~inc ~keys ~attempt ~t0 =
  if t.incarnation = inc && t.status = Recovering then begin
    match keys with
    | [] -> finish_catchup t ~t0
    | key :: rest -> (
      let proto = Option.get t.proto and rng = Option.get t.rng in
      match Protocol.read_quorum proto ~alive:(catchup_view t proto) ~rng with
      | None ->
        (* No quorum among the peers right now; this consumes an attempt
           too, so a long outage drains the budget instead of looping. *)
        catchup_retry t ~inc ~keys ~attempt:(attempt + 1) ~t0
      | Some quorum ->
        let members = Bitset.elements quorum in
        let g =
          {
            g_op = fresh_op t;
            g_key = key;
            g_rest = rest;
            g_attempt = attempt;
            g_t0 = t0;
            g_waiting = members;
            g_max_ts = Timestamp.zero;
            g_max_value = "";
          }
        in
        t.gather <- Some g;
        let r = Option.get t.recovery in
        Engine.schedule (engine t) ~delay:r.catchup_timeout (fun () ->
            match t.gather with
            | Some g' when g' == g ->
              t.gather <- None;
              catchup_retry t ~inc ~keys ~attempt:(attempt + 1) ~t0
            | _ -> ());
        List.iter
          (fun m -> send t ~dst:m (Message.Read_request { op = g.g_op; key }))
          members)
  end

and catchup_retry t ~inc ~keys ~attempt ~t0 =
  let r = Option.get t.recovery in
  if attempt >= r.catchup_max_attempts then begin
    (* Peers never assembled into a willing quorum (e.g. everyone else is
       recovering too).  Stay in Recovering — serving would risk stale
       reads — until the next crash/recover cycle tries again. *)
    t.catchup_abandoned <- t.catchup_abandoned + 1;
    ocount t "replica.catchup.abandoned"
  end
  else begin
    let delay =
      match t.rng with
      | Some rng -> Detect.Backoff.delay r.backoff ~rng ~attempt
      | None -> 1.0
    in
    Engine.schedule (engine t) ~delay (fun () ->
        if t.gather = None then catchup_key t ~inc ~keys ~attempt ~t0)
  end

let catchup_gather_reply t g ~src ~ts ~value =
  if List.mem src g.g_waiting then begin
    if Timestamp.newer_than ts g.g_max_ts then begin
      g.g_max_ts <- ts;
      g.g_max_value <- value
    end;
    g.g_waiting <- List.filter (fun m -> m <> src) g.g_waiting;
    if g.g_waiting = [] then begin
      t.gather <- None;
      if
        not (Timestamp.equal g.g_max_ts Timestamp.zero)
        && Store.install t.store ~key:g.g_key ~ts:g.g_max_ts ~value:g.g_max_value
      then begin
        wal_append t (Wal.Install { key = g.g_key; ts = g.g_max_ts; value = g.g_max_value });
        t.catchup_keys_installed <- t.catchup_keys_installed + 1;
        ocount t "replica.catchup.keys_installed"
      end;
      catchup_key t ~inc:t.incarnation ~keys:g.g_rest ~attempt:0 ~t0:g.g_t0
    end
  end

(* A peer refused our catch-up read (it is recovering itself, most
   likely): drop the whole gather and retry with a freshly assembled
   quorum after a backoff pause. *)
let catchup_gather_failed t g =
  t.gather <- None;
  catchup_retry t ~inc:t.incarnation ~keys:(g.g_key :: g.g_rest)
    ~attempt:(g.g_attempt + 1) ~t0:g.g_t0

let on_crash t mode =
  match (mode : Network.crash_mode) with
  | Network.Fail_stop -> ()
  | Network.Amnesia ->
    (* Volatile memory is gone the instant the site dies; the WAL drops
       whatever the policy had not yet made durable. *)
    t.lost_state <- true;
    t.store <- Store.create ();
    t.gather <- None;
    (match t.wal with Some wal -> Wal.crash wal | None -> ())

let on_recover t =
  if t.lost_state then begin
    t.lost_state <- false;
    t.incarnation <- t.incarnation + 1;
    ocount t "replica.recoveries";
    (match t.wal with
    | Some wal ->
      let n = Wal.replay wal t.store in
      t.wal_records_replayed <- t.wal_records_replayed + n
    | None -> ());
    let r = Option.get t.recovery in
    if r.catch_up then begin
      t.status <- Recovering;
      let keys =
        match r.keys with Some f -> f () | None -> Store.keys t.store
      in
      catchup_key t ~inc:t.incarnation ~keys ~attempt:0 ~t0:(now t)
    end
    else t.status <- Serving
  end

(* --- message handling ----------------------------------------------------- *)

let nack t ~dst ~op reason =
  send t ~dst (Message.Prepare_nack { op; reason })

let is_peer t src = match t.universe with Some n -> src < n | None -> false

let shed t ~dst ~op =
  t.sheds <- t.sheds + 1;
  ocount t "replica.shed";
  send t ~dst (Message.Busy { op })

(* Watermark admission: once the ingress queue is deeper than the
   watermark, client work gets a fast [Busy] instead of service — the
   queue keeps draining protocol traffic instead of stacking doomed
   requests.  Peer catch-up reads and everything 2PC are exempt: shedding
   those converts overload into unavailability or stuck transactions. *)
let shed_client_work t ~src msg =
  match t.admission with
  | None -> None
  | Some a ->
    if
      a.shed_watermark > 0
      && Network.queue_depth t.net t.site > a.shed_watermark
    then
      match (msg : Message.t) with
      | Read_request { op; _ } when not (is_peer t src) -> Some op
      | Read_batch { op; _ } when not (is_peer t src) -> Some op
      | Prepare { op; _ } | Prepare_batch { op; _ } -> Some op
      | _ -> None
    else None

let handle_serving t ~src msg =
  match (msg : Message.t) with
  | Read_request { op; key } ->
    t.reads_served <- t.reads_served + 1;
    (* Flat serving path: no tuple, no boxed timestamp — only the reply
       message itself is allocated. *)
    let store = t.store in
    send t ~dst:src
      (Message.Read_reply
         {
           op;
           key;
           version = Store.version_of store ~key;
           sid = Store.sid_of store ~key;
           value = Store.value_of store ~key;
           inc = t.incarnation;
         })
  | Prepare { op; key; version; sid; value } ->
    t.prepares_seen <- t.prepares_seen + 1;
    Store.stage_flat t.store ~op ~key ~version ~sid ~value;
    (* The WAL keeps boxed timestamps (cold path); build one only when a
       WAL is actually attached. *)
    (match t.wal with
    | Some wal ->
      Wal.append wal
        (Wal.Stage { op; key; ts = Timestamp.make ~version ~sid; value })
    | None -> ());
    send t ~dst:src (Message.Prepare_ack { op; inc = t.incarnation })
  | Commit { op; inc } ->
    if inc <> t.incarnation then begin
      (* The stage this commit refers to belonged to a previous life; its
         volatile state is gone.  Refuse so the coordinator retries the
         whole write instead of counting a lost write as applied. *)
      t.stale_commits_nacked <- t.stale_commits_nacked + 1;
      ocount t "replica.stale_inc.nacked";
      nack t ~dst:src ~op "stale-incarnation"
    end
    else begin
      (if Store.has_staged t.store ~op then begin
         (match t.wal with
         | Some wal -> (
           match Store.staged t.store ~op with
           | Some (key, ts, value) ->
             Wal.append wal (Wal.Commit { op; key; ts; value })
           | None -> ())
         | None -> ());
         if Store.commit_staged t.store ~op then
           t.writes_applied <- t.writes_applied + 1
       end
       else
         let n = Store.staged_batch_size t.store ~op in
         if n > 0 then begin
           (* A staged batch commits atomically: every write's Commit
              record shares the batch's durability point. *)
           (match t.wal with
           | Some _ -> (
             match Store.staged_many t.store ~op with
             | Some writes ->
               wal_append_many t
                 (List.map
                    (fun (key, ts, value) -> Wal.Commit { op; key; ts; value })
                    (Batch.to_list writes))
             | None -> ())
           | None -> ());
           if Store.commit_staged t.store ~op then
             t.writes_applied <- t.writes_applied + n
         end);
      (* Ack even when nothing was staged: a same-incarnation resend means
         the first commit already applied (nothing can have been lost
         within one incarnation). *)
      send t ~dst:src (Message.Commit_ack { op; inc = t.incarnation })
    end
  | Abort { op } ->
    if Store.has_staged t.store ~op || Store.staged_batch_size t.store ~op > 0
    then wal_append t (Wal.Abort { op });
    Store.abort_staged t.store ~op
  | Repair { key; version; sid; value; _ } ->
    if Store.install_flat t.store ~key ~version ~sid ~value then begin
      (match t.wal with
      | Some wal ->
        Wal.append wal
          (Wal.Install { key; ts = Timestamp.make ~version ~sid; value })
      | None -> ());
      t.repairs_applied <- t.repairs_applied + 1
    end
  | Read_batch { op; n_keys; keys } ->
    (* Coalesced reads: one envelope in, one envelope out, each counted
       as one message by the network but as [n_keys] logical reads here. *)
    t.reads_served <- t.reads_served + n_keys;
    let store = t.store in
    let entries =
      Batch.init n_keys (fun i ->
          let key = keys.(i) in
          ( key,
            Store.version_of store ~key,
            Store.sid_of store ~key,
            Store.value_of store ~key ))
    in
    send t ~dst:src ~units:n_keys
      (Message.Read_batch_reply { op; entries; inc = t.incarnation })
  | Prepare_batch { op; writes } ->
    t.prepares_seen <- t.prepares_seen + Batch.length writes;
    Store.stage_many t.store ~op writes;
    (match t.wal with
    | Some _ ->
      wal_append_many t
        (List.map
           (fun (key, ts, value) -> Wal.Stage { op; key; ts; value })
           (Batch.to_list writes))
    | None -> ());
    send t ~dst:src (Message.Prepare_ack { op; inc = t.incarnation })
  | Ping { seq } -> send t ~dst:src (Message.Pong { seq })
  | Read_reply _ | Read_batch_reply _ | Prepare_ack _ | Prepare_nack _
  | Commit_ack _ | Busy _ | Pong _ ->
    (* Coordinator-bound messages; a serving replica ignores strays. *)
    ()

(* While recovering the replica is alive but must not serve reads or take
   part in write quorums: it answers with explicit refusals (prompting the
   coordinator to re-assemble elsewhere) and only its own catch-up reads
   and incoming repairs touch the store. *)
let handle_recovering t ~src msg =
  match (msg : Message.t) with
  | Read_request { op; key } ->
    let peer_catchup =
      match t.universe with Some n -> src < n | None -> false
    in
    if peer_catchup then begin
      (* A peer's catch-up read: answer from replayed durable state.  Under
         a commit-durable WAL that state holds every commit this replica
         ever applied, so quorum intersection still guarantees the
         requester sees the newest committed timestamp — and refusing
         would let recovering replicas nack each other's catch-ups into a
         permanent mutual standoff once all have crashed at least once. *)
      let store = t.store in
      send t ~dst:src
        (Message.Read_reply
           {
             op;
             key;
             version = Store.version_of store ~key;
             sid = Store.sid_of store ~key;
             value = Store.value_of store ~key;
             inc = t.incarnation;
           })
    end
    else nack t ~dst:src ~op "recovering"
  | Read_batch { op; _ } ->
    (* Batches are client traffic (catch-up never batches): refuse. *)
    nack t ~dst:src ~op "recovering"
  | Prepare { op; _ } | Prepare_batch { op; _ } ->
    nack t ~dst:src ~op "recovering"
  | Commit { op; _ } ->
    t.stale_commits_nacked <- t.stale_commits_nacked + 1;
    ocount t "replica.stale_inc.nacked";
    nack t ~dst:src ~op "stale-incarnation"
  | Abort { op } -> Store.abort_staged t.store ~op
  | Repair { key; version; sid; value; _ } ->
    if Store.install_flat t.store ~key ~version ~sid ~value then begin
      (match t.wal with
      | Some wal ->
        Wal.append wal
          (Wal.Install { key; ts = Timestamp.make ~version ~sid; value })
      | None -> ());
      t.repairs_applied <- t.repairs_applied + 1
    end
  | Ping { seq } -> send t ~dst:src (Message.Pong { seq })
  | Read_reply { version; sid; value; _ } -> (
    match t.gather with
    | Some g when g.g_op = Message.op_id msg ->
      catchup_gather_reply t g ~src ~ts:(Timestamp.make ~version ~sid) ~value
    | _ -> ())
  | Prepare_nack _ -> (
    match t.gather with
    | Some g when g.g_op = Message.op_id msg -> catchup_gather_failed t g
    | _ -> ())
  | Prepare_ack _ | Commit_ack _ | Busy _ | Pong _ | Read_batch_reply _ -> ()

let handle t ~src msg =
  match shed_client_work t ~src msg with
  | Some op -> shed t ~dst:src ~op
  | None -> (
    match t.status with
    | Serving -> handle_serving t ~src msg
    | Recovering -> handle_recovering t ~src msg)

(* Which arrivals may bypass the bounded ingress queue's capacity check.
   Replies and heartbeats are tiny and keep the control plane honest; 2PC
   completion traffic (Commit/Abort) must land or prepared writes wedge;
   Repair and peer catch-up reads are the recovery lane — shedding them
   would let overload block the very mechanism that drains it. *)
let priority_lane t ~src msg =
  match (msg : Message.t) with
  | Commit _ | Abort _ | Repair _ | Ping _ | Pong _ | Read_reply _
  | Read_batch_reply _ | Prepare_ack _ | Prepare_nack _ | Commit_ack _
  | Busy _ ->
    true
  | Read_request _ -> is_peer t src
  | Prepare _ | Prepare_batch _ -> false
  | Read_batch _ -> is_peer t src

(* A message the bounded queue turned away: answer with an explicit
   [Busy] so the coordinator learns about the pushback now instead of at
   its timeout. *)
let on_overflow t ~src msg =
  match (msg : Message.t) with
  | Read_request { op; _ }
  | Prepare { op; _ }
  | Read_batch { op; _ }
  | Prepare_batch { op; _ } ->
    shed t ~dst:src ~op
  | _ -> ()

let create ~site ~net ?recovery ?admission ?(group_commit = false) ?obs () =
  let proto, rng =
    match recovery with
    | Some r when r.catch_up ->
      (* Fork so catch-up quorum sampling never shares scratch state with
         the coordinators' instance; split an own RNG stream so enabling
         recovery reshapes no other component's draws. *)
      ( Option.map Protocol.fork r.proto,
        Some (Rng.split (Engine.rng (Network.engine net))) )
    | _ -> (None, None)
  in
  let wal =
    match recovery with
    | None -> None
    | Some r ->
      Some
        (Wal.create ~policy:r.wal_policy
           ~now:(fun () -> Engine.now (Network.engine net))
           ())
  in
  let universe =
    match admission with
    | Some { a_universe = Some n; _ } -> Some n
    | _ -> (
      match recovery with
      | Some { proto = Some p; _ } -> Some (Protocol.universe_size p)
      | _ -> None)
  in
  let t =
    {
      site;
      net;
      store = Store.create ();
      recovery;
      wal;
      universe;
      admission;
      group_commit;
      proto;
      rng;
      obs;
      status = Serving;
      incarnation = 0;
      lost_state = false;
      gather = None;
      next_seq = 0;
      reads_served = 0;
      sheds = 0;
      writes_applied = 0;
      prepares_seen = 0;
      repairs_applied = 0;
      catchup_runs = 0;
      catchup_keys_installed = 0;
      catchup_abandoned = 0;
      stale_commits_nacked = 0;
      wal_records_replayed = 0;
    }
  in
  Network.set_handler net ~site (fun ~src msg -> handle t ~src msg);
  (* Admission control plugs into the network's service model: the
     priority lane exempts protocol traffic from the capacity bound, and
     the overflow hook turns silent queue-full drops into Busy nacks.
     Without [admission] neither is installed and the site keeps the
     instant-delivery path. *)
  (match admission with
  | None -> ()
  | Some _ ->
    Network.set_priority net ~site (fun ~src msg -> priority_lane t ~src msg);
    Network.set_overflow net ~site (fun ~src msg -> on_overflow t ~src msg));
  (* Only recovery-enabled replicas care about their own failures; legacy
     fail-stop replicas keep the hook-free network behavior. *)
  if recovery <> None then
    Network.set_crash_hooks net ~site
      ~on_crash:(fun mode -> on_crash t mode)
      ~on_recover:(fun () -> on_recover t)
      ();
  t

let site t = t.site
let store t = t.store
let reads_served t = t.reads_served
let sheds t = t.sheds
let writes_applied t = t.writes_applied
let prepares_seen t = t.prepares_seen
let repairs_applied t = t.repairs_applied
let incarnation t = t.incarnation
let is_serving t = t.status = Serving
let catchup_runs t = t.catchup_runs
let catchup_keys_installed t = t.catchup_keys_installed
let catchup_abandoned t = t.catchup_abandoned
let stale_commits_nacked t = t.stale_commits_nacked
let wal_records_replayed t = t.wal_records_replayed
let wal_records_lost t = match t.wal with None -> 0 | Some w -> Wal.lost_total w
let wal_syncs t = match t.wal with None -> 0 | Some w -> Wal.syncs w
