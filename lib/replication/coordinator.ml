module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Stats = Dsutil.Stats
module Engine = Dsim.Engine
module Network = Dsim.Network
module Protocol = Quorum.Protocol

type config = {
  timeout : float;
  max_retries : int;
  oracle_view : bool;
  read_repair : bool;
  adaptive_timeout : bool;
  deadline : float;
  backoff : Detect.Backoff.policy;
  rto : Detect.Rto.config;
  pipeline_levels : bool;
}

let default_config =
  {
    timeout = 25.0;
    max_retries = 4;
    oracle_view = true;
    read_repair = false;
    adaptive_timeout = false;
    deadline = Float.infinity;
    backoff = Detect.Backoff.default;
    rto = Detect.Rto.default_config;
    pipeline_levels = false;
  }

type read_result = { value : string; ts : Timestamp.t; attempts : int }

type metrics = {
  reads_ok : int;
  reads_failed : int;
  writes_ok : int;
  writes_failed : int;
  retries : int;
  repairs_sent : int;
  deadline_exceeded : int;
  stale_incarnation_rejections : int;
  busy_received : int;
  retries_suppressed : int;
  batches : int;
  read_latency : Stats.t;
  write_latency : Stats.t;
}

type kind =
  | Read_op of (read_result option -> unit)
  | Write_op of string * (Timestamp.t option -> unit)

type phase =
  | Querying  (** collecting Read_replies (a read, or a write's version
                  phase) *)
  | Preparing
  | Committing

(* Pooled per-operation quorum scratch.  [q] holds the members of the
   current phase, with replied members overwritten by -1 (so "waiting" is
   the >= 0 entries, in original send order, and a reply is matched by a
   linear scan — no list filtering, no allocation).  [w]/[winc] hold the
   2PC member set and the incarnation each member acked its prepare under.
   A scratch is taken from the coordinator's pool at attempt start and
   returned when the attempt ends, so a steady stream of operations
   allocates none of this. *)
type op_scratch = {
  q : int array;
  mutable n_q : int;  (** members in the current phase *)
  mutable waiting_n : int;  (** of which, still to reply *)
  w : int array;
  mutable n_w : int;
  winc : int array;
}

let make_scratch n =
  {
    q = Array.make (max n 1) (-1);
    n_q = 0;
    waiting_n = 0;
    w = Array.make (max n 1) 0;
    n_w = 0;
    winc = Array.make (max n 1) 0;
  }

(* Placeholder installed in place of a released scratch; doubles as the
   double-release guard ([release_scratch] is a no-op once it is in). *)
let dummy_scratch = make_scratch 0

(* Every field is mutable so a finished operation's record can go back to
   a pool and be re-initialized in place: a steady stream of operations
   allocates no op_state at all (the record is ~18 words, paid per
   attempt otherwise). *)
type op_state = {
  mutable op : int;  (** the id of the {e current attempt} *)
  mutable key : int;
  mutable kind : kind;
  mutable attempts : int;  (** mutated in place by commit resends *)
  mutable started : float;
  mutable span : Obs.Span.t option;
      (** one span per logical op, across attempts *)
  mutable sc : op_scratch;
  mutable phase : phase;
  mutable phase_started : float;  (** when this phase's requests went out *)
  mutable max_version : int;  (** newest (version, sid, value) seen while *)
  mutable max_sid : int;  (** querying — flat, boxed only at finish *)
  mutable max_value : string;
  mutable write_version : int;  (** chosen write timestamp, flat *)
  mutable write_sid : int;
  mutable replies : (int * int * int) list;
      (** (member, version, sid) gathered while querying; only populated
          when read repair is on *)
}

(* A batched operation: one quorum round (and, for writes, one 2PC
   exchange) carries many keys.  Parallel to [op_state]; single-key
   batches never build one — the public entries delegate to the plain
   operations, keeping unbatched behavior byte-identical. *)
type batch_kind =
  | Batch_read of ((int * read_result option) list -> unit)
  | Batch_write of ((int * Timestamp.t option) list -> unit)

type batch_state = {
  b_op : int;
  b_keys : int list;  (** requested keys, in request order *)
  b_values : (int * string) list;  (** writes only: key -> value *)
  b_kind : batch_kind;
  mutable b_attempts : int;
  b_started : float;
  b_spans : (int * Obs.Span.t option) list;  (** one span per key *)
  mutable b_phase : phase;
  mutable b_phase_started : float;
  mutable b_waiting : int list;
  b_max : (int, int * int * string) Hashtbl.t;
      (** per-key newest (version, sid, value) *)
  mutable b_quorum : int list;
  mutable b_writes : Batch.t;
  mutable b_member_inc : (int * int) list;
}

type t = {
  site : int;
  net : Message.t Network.t;
  mutable proto : Protocol.t;
  mutable levels : Protocol.level_plan option;
      (* cached [read_levels] of the current protocol; [None] unless
         [pipeline_levels] is set and the protocol supports it *)
  locks : Lock_manager.t option;
  config : config;
  obs : Obs.t option;
  mutable view : Detect.View.t;
  budget : Detect.Budget.t option;  (* shared across a process's coordinators *)
  breaker : Detect.Breaker.t option;  (* likewise shared *)
  rto : Detect.Rto.t;
  rng : Rng.t;
  n_replicas : int;
  mutable next_seq : int;
  mutable timeout_h : Engine.handler;
      (* preallocated phase-timeout handler: (op, phase) packed in the
         event's int slot, so arming a timeout allocates no closure *)
  pending : (int, op_state) Hashtbl.t;
  pending_batches : (int, batch_state) Hashtbl.t;
  mutable pool : op_scratch array;  (* free scratches, filled [0, pool_n) *)
  mutable pool_n : int;
  mutable op_pool : op_state array;  (* free op records, filled [0, op_pool_n) *)
  mutable op_pool_n : int;
  suspects : (int, float) Hashtbl.t;  (** site -> suspicion expiry time
                                          (timeout-suspicion ablation) *)
  incs : (int, int) Hashtbl.t;  (** site -> newest incarnation seen *)
  mutable stale_inc_rejections : int;
  mutable reads_ok : int;
  mutable reads_failed : int;
  mutable writes_ok : int;
  mutable writes_failed : int;
  mutable retries : int;
  mutable repairs_sent : int;
  mutable deadline_exceeded : int;
  mutable busy_received : int;
  mutable retries_suppressed : int;
  mutable batches : int;
  read_latency : Stats.t;
  write_latency : Stats.t;
}

let engine t = Network.engine t.net

(* Sentinel installed by [create]; the first armed timeout swaps in the
   real handler (built inside the operation-lifecycle recursion). *)
let uninit_timeout_h = Engine.handler (fun _ _ -> ())

let phase_code = function Querying -> 0 | Preparing -> 1 | Committing -> 2

let fresh_op t =
  let id = (t.next_seq * Network.size t.net) + t.site in
  t.next_seq <- t.next_seq + 1;
  id

let alloc_scratch t =
  if t.pool_n > 0 then begin
    t.pool_n <- t.pool_n - 1;
    let sc = t.pool.(t.pool_n) in
    t.pool.(t.pool_n) <- dummy_scratch;
    sc.n_q <- 0;
    sc.waiting_n <- 0;
    sc.n_w <- 0;
    sc
  end
  else make_scratch t.n_replicas

let release_scratch t st =
  let sc = st.sc in
  if sc != dummy_scratch then begin
    st.sc <- dummy_scratch;
    let cap = Array.length t.pool in
    if t.pool_n = cap then begin
      let grown = Array.make (max 4 (2 * cap)) dummy_scratch in
      Array.blit t.pool 0 grown 0 cap;
      t.pool <- grown
    end;
    t.pool.(t.pool_n) <- sc;
    t.pool_n <- t.pool_n + 1
  end

let dummy_kind = Read_op (fun _ -> ())

(* op id of a pooled (released) record; doubles as the double-release
   guard in [release_op]. *)
let released = min_int

let make_op () =
  {
    op = released;
    key = 0;
    kind = dummy_kind;
    attempts = 0;
    started = 0.0;
    span = None;
    sc = dummy_scratch;
    phase = Querying;
    phase_started = 0.0;
    max_version = 0;
    max_sid = 0;
    max_value = "";
    write_version = 0;
    write_sid = 0;
    replies = [];
  }

(* Placeholder filling vacated pool slots so released records are not
   retained twice. *)
let dummy_op = make_op ()

let alloc_op t ~op ~key ~kind ~attempts ~started ~span =
  let st =
    if t.op_pool_n > 0 then begin
      t.op_pool_n <- t.op_pool_n - 1;
      let st = t.op_pool.(t.op_pool_n) in
      t.op_pool.(t.op_pool_n) <- dummy_op;
      st
    end
    else make_op ()
  in
  st.op <- op;
  st.key <- key;
  st.kind <- kind;
  st.attempts <- attempts;
  st.started <- started;
  st.span <- span;
  st.sc <- alloc_scratch t;
  st.phase <- Querying;
  st.phase_started <- Engine.now (engine t);
  st.max_version <- 0;
  st.max_sid <- 0;
  st.max_value <- "";
  st.write_version <- 0;
  st.write_sid <- 0;
  st.replies <- [];
  st

(* Only safe once nothing can reach [st] again: it must already be out of
   [t.pending] (stale timeout events look ops up there and drop misses),
   and the caller must not touch it after this returns. *)
let release_op t st =
  if st.op <> released then begin
    st.op <- released;
    st.kind <- dummy_kind;
    st.span <- None;
    st.max_value <- "";
    st.replies <- [];
    let cap = Array.length t.op_pool in
    if t.op_pool_n = cap then begin
      let grown = Array.make (max 4 (2 * cap)) dummy_op in
      Array.blit t.op_pool 0 grown 0 cap;
      t.op_pool <- grown
    end;
    t.op_pool.(t.op_pool_n) <- st;
    t.op_pool_n <- t.op_pool_n + 1
  end

(* The members of the current phase yet to reply, as a list (allocating:
   only for observability and detector bookkeeping on cold paths). *)
let live_members sc =
  let rec go i acc =
    if i < 0 then acc
    else
      let m = sc.q.(i) in
      go (i - 1) (if m >= 0 then m :: acc else acc)
  in
  go (sc.n_q - 1) []

(* The believed-alive replica view comes from the pluggable detector:
   ground truth by default (the paper assumes detectable failures), a
   timeout-suspicion ablation with [oracle_view = false], or any
   caller-supplied view (e.g. Detect.Heartbeat).  The circuit breaker
   filters it: an Open site is alive but drowning, and quorum assembly
   must route around it. *)
let current_view t =
  let view = t.view.Detect.View.alive () in
  match t.breaker with
  | None -> view
  | Some b -> Detect.Breaker.filter b view

let view t = t.view

(* Legacy timeout-based suspicion, packaged as a detector view: sites are
   suspected for a fixed window after missing a deadline and — the crucial
   rehabilitation rule — cleared the moment they are heard from again. *)
let suspicion_view t =
  let alive () =
    let now = Engine.now (engine t) in
    let view = Bitset.create t.n_replicas in
    for i = 0 to t.n_replicas - 1 do
      let believed_up =
        match Hashtbl.find_opt t.suspects i with
        | Some expiry when expiry > now -> false
        | _ -> true
      in
      if believed_up && Network.reachable t.net t.site i then Bitset.add view i
    done;
    view
  in
  Detect.View.make ~alive
    ~observe:(fun site -> Hashtbl.remove t.suspects site)
    ~suspect:(fun site ->
      let expiry = Engine.now (engine t) +. (4.0 *. t.config.timeout) in
      Hashtbl.replace t.suspects site expiry)
    ()

let phase_timeout t =
  if t.config.adaptive_timeout then Detect.Rto.timeout t.rto
  else t.config.timeout

let observed_timeout t = phase_timeout t

let send t ~dst msg = Network.send t.net ~src:t.site ~dst msg

(* --- observability hooks (single match, no work, when [obs = None]) ----- *)

let ospan t ~op ~key =
  match t.obs with
  | None -> None
  | Some obs -> Some (Obs.span obs ~op ~site:t.site ~key ())

let ophase t st ~kind =
  match (t.obs, st.span) with
  | Some obs, Some sp -> Obs.phase obs sp ~kind ~quorum:(live_members st.sc) ()
  | _ -> ()

let oend_phase t st ~timed_out =
  match (t.obs, st.span) with
  | Some obs, Some sp -> Obs.end_phase obs sp ~timed_out ()
  | _ -> ()

let oretry t st ~backoff =
  match (t.obs, st.span) with
  | Some obs, Some sp -> Obs.retry obs sp ~backoff ()
  | _ -> ()

let ofinish t st outcome =
  match (t.obs, st.span) with
  | Some obs, Some sp -> Obs.finish obs sp ~outcome
  | _ -> ()

let ocount t name =
  match t.obs with
  | None -> ()
  | Some obs -> Obs.Metrics.incr (Obs.Metrics.counter (Obs.metrics obs) name)

(* Overload evidence is charged to the breaker separately from the
   liveness view: a Busy nack rehabilitates the site in the detector
   (it answered — it is alive) while still counting against it here. *)
let breaker_failure t site =
  match t.breaker with
  | None -> ()
  | Some b ->
    if Detect.Breaker.record_failure b site then ocount t "coord.breaker.trips"

let breaker_ok t site =
  match t.breaker with None -> () | Some b -> Detect.Breaker.record_ok b site

let oresult_ts t st ~version ~sid =
  match (t.obs, st.span) with
  | Some obs, Some sp -> Obs.set_result_ts obs sp ~version ~sid
  | _ -> ()

let with_lock t ~key ~mode body =
  match t.locks with
  | None -> body (fun k -> k ())
  | Some lm ->
    Lock_manager.acquire lm ~key ~mode ~owner:t.site (fun () ->
        body (fun k ->
            Lock_manager.release lm ~key ~owner:t.site;
            k ()))

(* --- operation lifecycle ------------------------------------------------ *)

(* Incarnation this member acked the prepare under (0 when it has never
   crashed with amnesia — i.e. always, under fail-stop). *)
let member_inc sc m =
  let rec go i =
    if i = sc.n_w then 0 else if sc.w.(i) = m then sc.winc.(i) else go (i + 1)
  in
  go 0

(* Suspect (and optionally charge the breaker for) every member still
   waiting in the current phase. *)
let blame_waiting t st ~charge_breaker =
  let sc = st.sc in
  for i = 0 to sc.n_q - 1 do
    let m = sc.q.(i) in
    if m >= 0 then begin
      t.view.Detect.View.suspect m;
      if charge_breaker then breaker_failure t m
    end
  done

let finish t st outcome =
  Hashtbl.remove t.pending st.op;
  release_scratch t st;
  let elapsed = Engine.now (engine t) -. st.started in
  (match outcome with
  | `Read_ok r ->
    oresult_ts t st ~version:r.ts.Timestamp.version ~sid:r.ts.Timestamp.sid
  | `Write_ok (ts : Timestamp.t) ->
    oresult_ts t st ~version:ts.Timestamp.version ~sid:ts.Timestamp.sid
  | `Failed -> ());
  (match outcome with
  | `Read_ok _ | `Write_ok _ -> ofinish t st Obs.Span.Ok
  | `Failed -> ofinish t st (Obs.Span.Failed "gave_up"));
  (match (st.kind, outcome) with
  | Read_op k, `Read_ok result ->
    t.reads_ok <- t.reads_ok + 1;
    Stats.add t.read_latency elapsed;
    k (Some result)
  | Read_op k, `Failed ->
    t.reads_failed <- t.reads_failed + 1;
    k None
  | Write_op (_, k), `Write_ok ts ->
    t.writes_ok <- t.writes_ok + 1;
    Stats.add t.write_latency elapsed;
    k (Some ts)
  | Write_op (_, k), `Failed ->
    t.writes_failed <- t.writes_failed + 1;
    k None
  | Read_op _, `Write_ok _ | Write_op _, `Read_ok _ -> assert false);
  (* Pool the record only after the completion callback has run: anything
     it started took a different record, and nothing reaches this one
     anymore. *)
  release_op t st

let rec start_attempt t ~key ~kind ~attempts ~started ~span =
  let op = fresh_op t in
  let st = alloc_op t ~op ~key ~kind ~attempts ~started ~span in
  Hashtbl.replace t.pending op st;
  let view = current_view t in
  let pipelined =
    match (st.kind, t.levels) with
    | Read_op _, Some lp -> start_pipelined t st ~view lp
    | _ -> false
  in
  if not pipelined then begin
    match Protocol.read_quorum t.proto ~alive:view ~rng:t.rng with
    | None -> retry t st
    | Some quorum ->
      let sc = st.sc in
      let n = Bitset.fill_elements quorum sc.q in
      sc.n_q <- n;
      sc.waiting_n <- n;
      ophase t st ~kind:Obs.Span.Query;
      arm_timeout t st;
      let msg = Message.Read_request { op; key } in
      for i = 0 to n - 1 do
        send t ~dst:sc.q.(i) msg
      done
  end

(* Tree-level pipelined read (opt-in): stream the quorum instead of
   materializing it — each level's request leaves the moment that level's
   member resolves from the plan cache, rather than after every level has
   been walked and the whole quorum bitset built.  Selection consumes the
   RNG exactly as whole-quorum assembly would (see
   {!Quorum.Protocol.level_plan}); what changes is dispatch order (level
   order rather than ascending site id) and the absence of the quorum
   bitset/member-list materialization.  Returns false (caller falls back)
   only when called with no level plan; a level with no alive candidate
   behaves like failed quorum assembly — the attempt retries, and replies
   to the already-issued requests are dropped as stale. *)
and start_pipelined t st ~view (lp : Protocol.level_plan) =
  let sc = st.sc in
  arm_timeout t st;
  let msg = Message.Read_request { op = st.op; key = st.key } in
  let rec issue level =
    if level = lp.n_levels then true
    else begin
      let m = lp.level_site ~alive:view ~rng:t.rng ~level in
      if m < 0 then false
      else begin
        sc.q.(sc.n_q) <- m;
        sc.n_q <- sc.n_q + 1;
        sc.waiting_n <- sc.waiting_n + 1;
        send t ~dst:m msg;
        issue (level + 1)
      end
    end
  in
  if issue 0 then ophase t st ~kind:Obs.Span.Query
  else begin
    (* Assembly failed mid-stream: the members already contacted are not
       at fault — drop them from the phase before the retry machinery
       assigns blame. *)
    sc.n_q <- 0;
    sc.waiting_n <- 0;
    retry t st
  end;
  true

and retry ?(timed_out = false) t st =
  Hashtbl.remove t.pending st.op;
  let sc = st.sc in
  (* Roll back any prepared members of this attempt. *)
  if st.phase = Preparing then begin
    let abort = Message.Abort { op = st.op } in
    for i = 0 to sc.n_w - 1 do
      send t ~dst:sc.w.(i) abort
    done
  end;
  oend_phase t st ~timed_out;
  (* The members that never answered are negative evidence for the
     detector (the oracle view ignores it).  A timeout is also overload
     evidence: every still-waiting member sat on the request past the
     deadline. *)
  blame_waiting t st ~charge_breaker:timed_out;
  if st.attempts >= t.config.max_retries then finish t st `Failed
  else begin
    (* Exponential backoff with jitter before re-assembling: an instant
       retry against the same failed view (e.g. during a partition) would
       burn the whole budget in one instant of virtual time, and a fixed
       pause keeps hammering a dead quorum in lockstep. *)
    let delay =
      Detect.Backoff.delay t.config.backoff ~rng:t.rng ~attempt:st.attempts
    in
    if Engine.now (engine t) +. delay >= st.started +. t.config.deadline then begin
      t.deadline_exceeded <- t.deadline_exceeded + 1;
      ocount t "coord.deadline_exceeded";
      finish t st `Failed
    end
    else if
      not
        (match t.budget with
        | None -> true
        | Some b -> Detect.Budget.try_retry b)
    then begin
      (* The global retry budget is drained: retrying now would feed the
         storm that drained it.  Fail fast. *)
      t.retries_suppressed <- t.retries_suppressed + 1;
      ocount t "coord.retries_suppressed";
      finish t st `Failed
    end
    else begin
      t.retries <- t.retries + 1;
      oretry t st ~backoff:delay;
      release_scratch t st;
      (* Snapshot before pooling: the closure fires after the record may
         have been re-initialized for another operation. *)
      let key = st.key and kind = st.kind and attempts = st.attempts + 1 in
      let started = st.started and span = st.span in
      release_op t st;
      Engine.schedule (engine t) ~delay (fun () ->
          start_attempt t ~key ~kind ~attempts ~started ~span)
    end
  end

and arm_timeout t st =
  (* The handler captures only [t]; the op id and armed phase travel in
     the event's int slot, and the fire-time check drops events whose op
     finished or moved on.  One-time lazy install: the handler body needs
     [retry]/[commit_timeout] from this recursion. *)
  if t.timeout_h == uninit_timeout_h then
    t.timeout_h <-
      Engine.handler (fun meta _ ->
          let op = meta lsr 2 and pc = meta land 3 in
          match Hashtbl.find t.pending op with
          | exception Not_found -> ()
          | st' ->
            if phase_code st'.phase = pc && st'.sc.waiting_n > 0 then
              if pc = 2 then commit_timeout t st'
              else retry ~timed_out:true t st');
  Engine.schedule_packed (engine t) ~delay:(phase_timeout t) t.timeout_h
    ~meta:((st.op lsl 2) lor phase_code st.phase) ~payload:(Obj.repr 0)

and commit_timeout t st =
  (* The decision is already commit; resend to the laggards instead of
     aborting.  Give up (uncertain outcome, counted failed) after the retry
     budget.  Commit resends are exempt from the global retry budget: they
     are narrow (laggards only), bounded by [max_retries], and giving up
     early here turns overload into stuck prepared writes. *)
  blame_waiting t st ~charge_breaker:true;
  if st.attempts >= t.config.max_retries then begin
    Hashtbl.remove t.pending st.op;
    oend_phase t st ~timed_out:true;
    finish t st `Failed
  end
  else begin
    t.retries <- t.retries + 1;
    oretry t st ~backoff:0.0;
    st.attempts <- st.attempts + 1;
    ophase t st ~kind:Obs.Span.Commit;
    arm_timeout t st;
    let sc = st.sc in
    for i = 0 to sc.n_q - 1 do
      let m = sc.q.(i) in
      if m >= 0 then
        send t ~dst:m (Message.Commit { op = st.op; inc = member_inc sc m })
    done
  end

let reply_received t st ~src =
  let sc = st.sc in
  let rec mark i =
    if i = sc.n_q then false
    else if sc.q.(i) = src then begin
      sc.q.(i) <- -1;
      sc.waiting_n <- sc.waiting_n - 1;
      true
    end
    else mark (i + 1)
  in
  if mark 0 then begin
    Detect.Rto.observe t.rto (Engine.now (engine t) -. st.phase_started);
    breaker_ok t src
  end

(* Push the newest value back to quorum members that replied with an older
   timestamp (§2.2's transient failures: a recovered replica catches up on
   first contact). *)
let send_repairs t st =
  if t.config.read_repair && not (st.max_version = 0 && st.max_sid = 0) then
    List.iter
      (fun (site, version, sid) ->
        if Timestamp.newer_flat st.max_version st.max_sid version sid then begin
          t.repairs_sent <- t.repairs_sent + 1;
          ocount t "coord.repairs_sent";
          send t ~dst:site
            (Message.Repair
               {
                 op = st.op;
                 key = st.key;
                 version = st.max_version;
                 sid = st.max_sid;
                 value = st.max_value;
               })
        end)
      st.replies

let query_complete t st =
  oend_phase t st ~timed_out:false;
  send_repairs t st;
  match st.kind with
  | Read_op _ ->
    finish t st
      (`Read_ok
        {
          value = st.max_value;
          ts = Timestamp.make ~version:st.max_version ~sid:st.max_sid;
          attempts = st.attempts + 1;
        })
  | Write_op (value, _) -> begin
    (* Version obtained; move to 2PC over a write quorum. *)
    let view = current_view t in
    match Protocol.write_quorum t.proto ~alive:view ~rng:t.rng with
    | None -> retry t st
    | Some quorum ->
      let sc = st.sc in
      let n = Bitset.fill_elements quorum sc.w in
      sc.n_w <- n;
      Array.blit sc.w 0 sc.q 0 n;
      Array.fill sc.winc 0 n 0;
      sc.n_q <- n;
      sc.waiting_n <- n;
      let version = st.max_version + 1 in
      st.phase <- Preparing;
      st.phase_started <- Engine.now (engine t);
      st.write_version <- version;
      st.write_sid <- t.site;
      ophase t st ~kind:Obs.Span.Prepare;
      arm_timeout t st;
      let msg =
        Message.Prepare { op = st.op; key = st.key; version; sid = t.site; value }
      in
      for i = 0 to n - 1 do
        send t ~dst:sc.w.(i) msg
      done
  end

let prepare_complete t st =
  let sc = st.sc in
  st.phase <- Committing;
  st.phase_started <- Engine.now (engine t);
  Array.blit sc.w 0 sc.q 0 sc.n_w;
  sc.n_q <- sc.n_w;
  sc.waiting_n <- sc.n_w;
  ophase t st ~kind:Obs.Span.Commit;
  arm_timeout t st;
  for i = 0 to sc.n_w - 1 do
    let m = sc.w.(i) in
    send t ~dst:m (Message.Commit { op = st.op; inc = sc.winc.(i) })
  done

(* --- batched operations ------------------------------------------------- *)

let b_member_inc bst m =
  match List.assoc_opt m bst.b_member_inc with Some i -> i | None -> 0

let ofinish_sp t span outcome =
  match (t.obs, span) with
  | Some obs, Some sp -> Obs.finish obs sp ~outcome
  | _ -> ()

let oresult_ts_sp t span ~version ~sid =
  match (t.obs, span) with
  | Some obs, Some sp -> Obs.set_result_ts obs sp ~version ~sid
  | _ -> ()

let span_of bst key =
  match List.assoc_opt key bst.b_spans with Some s -> s | None -> None

let finish_batch_failed t bst =
  Hashtbl.remove t.pending_batches bst.b_op;
  List.iter
    (fun (_, sp) -> ofinish_sp t sp (Obs.Span.Failed "gave_up"))
    bst.b_spans;
  match bst.b_kind with
  | Batch_read k ->
    t.reads_failed <- t.reads_failed + List.length bst.b_keys;
    k (List.map (fun key -> (key, None)) bst.b_keys)
  | Batch_write k ->
    t.writes_failed <- t.writes_failed + List.length bst.b_values;
    k (List.map (fun (key, _) -> (key, None)) bst.b_values)

let finish_batch_reads t bst =
  Hashtbl.remove t.pending_batches bst.b_op;
  let elapsed = Engine.now (engine t) -. bst.b_started in
  let results =
    List.map
      (fun key ->
        let version, sid, value =
          match Hashtbl.find_opt bst.b_max key with
          | Some vsv -> vsv
          | None -> (0, 0, "")
        in
        let sp = span_of bst key in
        oresult_ts_sp t sp ~version ~sid;
        ofinish_sp t sp Obs.Span.Ok;
        t.reads_ok <- t.reads_ok + 1;
        Stats.add t.read_latency elapsed;
        ( key,
          Some
            {
              value;
              ts = Timestamp.make ~version ~sid;
              attempts = bst.b_attempts + 1;
            } ))
      bst.b_keys
  in
  match bst.b_kind with
  | Batch_read k -> k results
  | Batch_write _ -> assert false

let finish_batch_writes t bst =
  Hashtbl.remove t.pending_batches bst.b_op;
  let elapsed = Engine.now (engine t) -. bst.b_started in
  let writes = bst.b_writes in
  let results = ref [] in
  for i = Batch.length writes - 1 downto 0 do
    let key = Batch.key writes i in
    let version = Batch.version writes i and sid = Batch.sid writes i in
    let sp = span_of bst key in
    oresult_ts_sp t sp ~version ~sid;
    ofinish_sp t sp Obs.Span.Ok;
    t.writes_ok <- t.writes_ok + 1;
    Stats.add t.write_latency elapsed;
    results := (key, Some (Timestamp.make ~version ~sid)) :: !results
  done;
  match bst.b_kind with
  | Batch_write k -> k !results
  | Batch_read _ -> assert false

let batch_reply_received t bst ~src =
  if List.mem src bst.b_waiting then begin
    Detect.Rto.observe t.rto (Engine.now (engine t) -. bst.b_phase_started);
    breaker_ok t src
  end;
  bst.b_waiting <- List.filter (fun m -> m <> src) bst.b_waiting

(* The batch lifecycle mirrors the single-op one: assemble a read quorum
   and fan out ONE multi-key envelope per member (counted as one message,
   one service slot); writes continue into a 2PC whose prepare is likewise
   one envelope.  Retries re-run the whole batch — per-key partial retry
   would need per-key quorum state for no observable gain, since a batch
   either assembled its quorum or did not. *)
let rec start_batch t ~keys ~values ~kind ~attempts ~started ~spans =
  let op = fresh_op t in
  let bst =
    {
      b_op = op;
      b_keys = keys;
      b_values = values;
      b_kind = kind;
      b_attempts = attempts;
      b_started = started;
      b_spans = spans;
      b_phase = Querying;
      b_phase_started = Engine.now (engine t);
      b_waiting = [];
      b_max = Hashtbl.create (List.length keys);
      b_quorum = [];
      b_writes = Batch.empty;
      b_member_inc = [];
    }
  in
  Hashtbl.replace t.pending_batches op bst;
  let view = current_view t in
  match Protocol.read_quorum t.proto ~alive:view ~rng:t.rng with
  | None -> batch_retry t bst
  | Some quorum ->
    let members = Bitset.elements quorum in
    bst.b_waiting <- members;
    arm_batch_timeout t bst;
    let keys_arr = Array.of_list keys in
    let units = Array.length keys_arr in
    let msg = Message.Read_batch { op; n_keys = units; keys = keys_arr } in
    List.iter
      (fun m -> Network.send t.net ~units ~src:t.site ~dst:m msg)
      members

and batch_retry ?(timed_out = false) t bst =
  Hashtbl.remove t.pending_batches bst.b_op;
  if bst.b_phase = Preparing then
    List.iter
      (fun m -> send t ~dst:m (Message.Abort { op = bst.b_op }))
      bst.b_quorum;
  List.iter t.view.Detect.View.suspect bst.b_waiting;
  if timed_out then List.iter (breaker_failure t) bst.b_waiting;
  if bst.b_attempts >= t.config.max_retries then finish_batch_failed t bst
  else begin
    let delay =
      Detect.Backoff.delay t.config.backoff ~rng:t.rng ~attempt:bst.b_attempts
    in
    if Engine.now (engine t) +. delay >= bst.b_started +. t.config.deadline
    then begin
      t.deadline_exceeded <- t.deadline_exceeded + 1;
      ocount t "coord.deadline_exceeded";
      finish_batch_failed t bst
    end
    else if
      not
        (match t.budget with
        | None -> true
        | Some b -> Detect.Budget.try_retry b)
    then begin
      t.retries_suppressed <- t.retries_suppressed + 1;
      ocount t "coord.retries_suppressed";
      finish_batch_failed t bst
    end
    else begin
      t.retries <- t.retries + 1;
      Engine.schedule (engine t) ~delay (fun () ->
          start_batch t ~keys:bst.b_keys ~values:bst.b_values ~kind:bst.b_kind
            ~attempts:(bst.b_attempts + 1) ~started:bst.b_started
            ~spans:bst.b_spans)
    end
  end

and arm_batch_timeout t bst =
  let op = bst.b_op and phase = bst.b_phase in
  Engine.schedule (engine t) ~delay:(phase_timeout t) (fun () ->
      match Hashtbl.find_opt t.pending_batches op with
      | Some b' when b'.b_phase = phase && b'.b_waiting <> [] ->
        if phase = Committing then batch_commit_timeout t b'
        else batch_retry ~timed_out:true t b'
      | _ -> ())

and batch_commit_timeout t bst =
  (* The decision is commit: resend to the laggards, as in the single-op
     path; commit resends stay exempt from the global retry budget. *)
  List.iter t.view.Detect.View.suspect bst.b_waiting;
  List.iter (breaker_failure t) bst.b_waiting;
  if bst.b_attempts >= t.config.max_retries then begin
    Hashtbl.remove t.pending_batches bst.b_op;
    finish_batch_failed t bst
  end
  else begin
    t.retries <- t.retries + 1;
    bst.b_attempts <- bst.b_attempts + 1;
    arm_batch_timeout t bst;
    List.iter
      (fun m ->
        send t ~dst:m (Message.Commit { op = bst.b_op; inc = b_member_inc bst m }))
      bst.b_waiting
  end

and batch_query_complete t bst =
  match bst.b_kind with
  | Batch_read _ -> finish_batch_reads t bst
  | Batch_write _ -> (
    let view = current_view t in
    match Protocol.write_quorum t.proto ~alive:view ~rng:t.rng with
    | None -> batch_retry t bst
    | Some quorum ->
      let members = Bitset.elements quorum in
      (* Per-key version bump from the per-key newest seen in the query
         round — keys in one batch are at unrelated versions.  A key
         written twice in one batch gets strictly increasing versions, so
         the later value wins at install time. *)
      let n = List.length bst.b_values in
      let builder = Batch.Builder.create ~capacity:n () in
      let bumped = Hashtbl.create 8 in
      List.iter
        (fun (key, value) ->
          let version =
            match Hashtbl.find_opt bumped key with
            | Some v -> v
            | None -> (
              match Hashtbl.find_opt bst.b_max key with
              | Some (v, _, _) -> v
              | None -> 0)
          in
          Hashtbl.replace bumped key (version + 1);
          Batch.Builder.push builder ~key ~version:(version + 1) ~sid:t.site
            ~value)
        bst.b_values;
      let writes = Batch.Builder.snapshot builder in
      bst.b_phase <- Preparing;
      bst.b_phase_started <- Engine.now (engine t);
      bst.b_waiting <- members;
      bst.b_quorum <- members;
      bst.b_writes <- writes;
      arm_batch_timeout t bst;
      let units = Batch.length writes in
      let msg = Message.Prepare_batch { op = bst.b_op; writes } in
      List.iter
        (fun m -> Network.send t.net ~units ~src:t.site ~dst:m msg)
        members)

let batch_prepare_complete t bst =
  bst.b_phase <- Committing;
  bst.b_phase_started <- Engine.now (engine t);
  bst.b_waiting <- bst.b_quorum;
  arm_batch_timeout t bst;
  List.iter
    (fun m ->
      send t ~dst:m (Message.Commit { op = bst.b_op; inc = b_member_inc bst m }))
    bst.b_quorum

let handle_batch t ~src bst msg =
  match (msg : Message.t) with
  | Read_batch_reply { entries; _ } when bst.b_phase = Querying ->
    batch_reply_received t bst ~src;
    for i = 0 to Batch.length entries - 1 do
      let key = Batch.key entries i in
      let version = Batch.version entries i and sid = Batch.sid entries i in
      let newer =
        match Hashtbl.find_opt bst.b_max key with
        | Some (cv, cs, _) -> Timestamp.newer_flat version sid cv cs
        | None -> Timestamp.newer_flat version sid 0 0
      in
      if newer then
        Hashtbl.replace bst.b_max key (version, sid, Batch.value entries i)
    done;
    if bst.b_waiting = [] then batch_query_complete t bst
  | Prepare_ack { inc; _ } when bst.b_phase = Preparing ->
    batch_reply_received t bst ~src;
    bst.b_member_inc <- (src, inc) :: bst.b_member_inc;
    if bst.b_waiting = [] then batch_prepare_complete t bst
  | Prepare_nack _ when bst.b_phase = Querying || bst.b_phase = Preparing ->
    batch_retry t bst
  | Busy _ when bst.b_phase = Querying || bst.b_phase = Preparing ->
    t.busy_received <- t.busy_received + 1;
    ocount t "coord.busy_received";
    breaker_failure t src;
    batch_retry t bst
  | Prepare_nack _ when bst.b_phase = Committing ->
    (* A member lost its staged batch to a crash mid-commit: uncertain
       outcome, counted failed — same contract as the single-op path. *)
    finish_batch_failed t bst
  | Commit_ack { inc; _ }
    when bst.b_phase = Committing && inc = b_member_inc bst src ->
    batch_reply_received t bst ~src;
    if bst.b_waiting = [] then finish_batch_writes t bst
  | _ -> ()  (* out-of-phase or replica-bound: ignore *)

(* A reply stamped with an incarnation older than the newest one seen from
   its sender is evidence from a pre-crash life: the state it vouches for
   was (possibly) lost, so it must not complete a quorum.  Returns whether
   the message should be dropped. *)
let stale_incarnation t ~src msg =
  match Message.incarnation msg with
  | None -> false
  | Some inc ->
    let newest =
      match Hashtbl.find t.incs src with i -> i | exception Not_found -> 0
    in
    if inc > newest then Hashtbl.replace t.incs src inc;
    if inc < newest then begin
      t.stale_inc_rejections <- t.stale_inc_rejections + 1;
      ocount t "coord.stale_inc.rejected";
      true
    end
    else false

let handle_single t ~src st msg =
  match (msg : Message.t) with
  | Read_reply { version; sid; value; _ } when st.phase = Querying ->
    reply_received t st ~src;
    if t.config.read_repair then
      st.replies <- (src, version, sid) :: st.replies;
    if Timestamp.newer_flat version sid st.max_version st.max_sid then begin
      st.max_version <- version;
      st.max_sid <- sid;
      st.max_value <- value
    end;
    if st.sc.waiting_n = 0 then query_complete t st
  | Prepare_ack { inc; _ } when st.phase = Preparing ->
    reply_received t st ~src;
    let sc = st.sc in
    let rec note i =
      if i < sc.n_w then
        if sc.w.(i) = src then sc.winc.(i) <- inc else note (i + 1)
    in
    note 0;
    if sc.waiting_n = 0 then prepare_complete t st
  | Prepare_nack _ when st.phase = Querying || st.phase = Preparing ->
    (* Refusal: a queried or prepared member cannot take part (it is
       recovering, or our commit raced its crash).  Re-assemble. *)
    retry t st
  | Busy _ when st.phase = Querying || st.phase = Preparing ->
    (* The replica shed us: alive (the nack itself rehabilitated it in
       the detector) but drowning.  Charge the breaker and re-assemble
       elsewhere — the retry path's backoff and budget apply. *)
    t.busy_received <- t.busy_received + 1;
    ocount t "coord.busy_received";
    breaker_failure t src;
    retry t st
  | Prepare_nack _ when st.phase = Committing ->
    (* The decision was commit but this member lost its stage to a
       crash; the outcome is uncertain (other members did commit), so
       count the operation failed rather than resend forever. *)
    oend_phase t st ~timed_out:false;
    finish t st `Failed
  | Commit_ack { inc; _ }
    when st.phase = Committing && inc = member_inc st.sc src ->
    reply_received t st ~src;
    if st.sc.waiting_n = 0 then
      finish t st
        (`Write_ok (Timestamp.make ~version:st.write_version ~sid:st.write_sid))
  | Read_reply _ | Prepare_ack _ | Prepare_nack _ | Commit_ack _ | Busy _
  | Read_request _ | Prepare _ | Commit _ | Abort _ | Repair _
  | Read_batch _ | Read_batch_reply _ | Prepare_batch _ | Ping _
  | Pong _ | Provision_request _ | Snapshot_chunk _ | Chunk_ack _
  | Tail_request _ | Wal_tail _ ->
    (* Out-of-phase or replica-bound: ignore.  A committing op ignores
       [Busy] in particular — commits ride the priority lane, so a
       stray Busy must not fail a decided transaction. *)
    ()

let handle t ~src msg =
  (* Any message is proof of life: rehabilitate its sender (clears both
     the ablation suspect list and any pluggable detector's suspicion). *)
  if src >= 0 && src < t.n_replicas then t.view.Detect.View.observe src;
  if not (stale_incarnation t ~src msg) then begin
    let op = Message.op_id msg in
    match Hashtbl.find t.pending op with
    | st -> handle_single t ~src st msg
    | exception Not_found -> (
      (* Not a single-key op: maybe a batch (stale otherwise). *)
      match Hashtbl.find t.pending_batches op with
      | bst -> handle_batch t ~src bst msg
      | exception Not_found -> ())
  end

let level_plan_of t proto =
  if t.config.pipeline_levels then Protocol.read_levels proto else None

let create ~site ~net ~proto ?locks ?view ?budget ?breaker ?obs
    ?(config = default_config) () =
  let n_replicas = Protocol.universe_size proto in
  let t =
    {
      site;
      net;
      proto;
      levels = None;  (* set below, once the config is in the record *)
      locks;
      config;
      obs;
      view = Detect.View.always_up ~n:1;  (* placeholder, set below *)
      budget;
      breaker;
      rto = Detect.Rto.create ~config:config.rto ();
      rng = Rng.split (Engine.rng (Network.engine net));
      n_replicas;
      next_seq = 0;
      timeout_h = uninit_timeout_h;
      pending = Hashtbl.create 16;
      pending_batches = Hashtbl.create 8;
      pool = Array.make 4 dummy_scratch;
      pool_n = 0;
      op_pool = Array.make 4 dummy_op;
      op_pool_n = 0;
      suspects = Hashtbl.create 16;
      incs = Hashtbl.create 16;
      stale_inc_rejections = 0;
      reads_ok = 0;
      reads_failed = 0;
      writes_ok = 0;
      writes_failed = 0;
      retries = 0;
      repairs_sent = 0;
      deadline_exceeded = 0;
      busy_received = 0;
      retries_suppressed = 0;
      batches = 0;
      read_latency = Stats.create ();
      write_latency = Stats.create ();
    }
  in
  t.levels <- level_plan_of t proto;
  (t.view <-
     (match view with
     | Some v -> v
     | None ->
       if config.oracle_view then
         Detect.View.oracle ~net ~self:site ~n:n_replicas
       else suspicion_view t));
  Network.set_handler net ~site (fun ~src msg -> handle t ~src msg);
  t

(* A span opens at operation entry — before any local lock wait — so its
   duration covers what the caller experiences.  With locks in play the
   wait shows up as an explicit [Lock] phase, auto-closed when the first
   quorum phase opens. *)
let open_span t ~op ~key =
  let span = ospan t ~op ~key in
  (match (t.obs, span, t.locks) with
  | Some obs, Some sp, Some _ -> Obs.phase obs sp ~kind:Obs.Span.Lock ()
  | _ -> ());
  span

(* Every *first-attempt* operation entry deposits into the shared retry
   budget: the more first-attempt traffic flows, the more retries the
   budget affords.  Caller-level re-issues pass [~retry:true] and must
   not deposit — otherwise a retry storm refills its own bucket. *)
let budget_attempt t =
  match t.budget with None -> () | Some b -> Detect.Budget.on_attempt b

let read t ?(retry = false) ~key k =
  if not retry then budget_attempt t;
  let span = open_span t ~op:"read" ~key in
  with_lock t ~key ~mode:Lock_manager.Shared (fun unlock ->
      start_attempt t ~key
        ~kind:(Read_op (fun r -> unlock (fun () -> k r)))
        ~attempts:0
        ~started:(Engine.now (engine t))
        ~span)

let write t ?(retry = false) ~key ~value k =
  if not retry then budget_attempt t;
  let span = open_span t ~op:"write" ~key in
  with_lock t ~key ~mode:Lock_manager.Exclusive (fun unlock ->
      start_attempt t ~key
        ~kind:(Write_op (value, fun r -> unlock (fun () -> k r)))
        ~attempts:0
        ~started:(Engine.now (engine t))
        ~span)

(* Batched entries.  Size <= 1 delegates to the plain single-key path —
   locks, spans, RNG draws and all — so a batch size of 1 is byte-identical
   to unbatched operation.  True batches (>= 2 keys) skip the per-key lock
   manager: monotone installs plus quorum intersection make concurrent
   multi-key writes safe without it (timestamps totally order by (version,
   sid)), and one lock per batch would serialize exactly the parallelism
   batching exists to create. *)
let read_batch t ?(retry = false) ~keys k =
  match keys with
  | [] -> k []
  | [ key ] -> read t ~retry ~key (fun r -> k [ (key, r) ])
  | _ ->
    if not retry then budget_attempt t;
    t.batches <- t.batches + 1;
    ocount t "coord.batches";
    let spans = List.map (fun key -> (key, ospan t ~op:"read" ~key)) keys in
    start_batch t ~keys ~values:[] ~kind:(Batch_read k) ~attempts:0
      ~started:(Engine.now (engine t))
      ~spans

let write_batch t ?(retry = false) ~writes k =
  match writes with
  | [] -> k []
  | [ (key, value) ] -> write t ~retry ~key ~value (fun r -> k [ (key, r) ])
  | _ ->
    if not retry then budget_attempt t;
    t.batches <- t.batches + 1;
    ocount t "coord.batches";
    let keys = List.map fst writes in
    let spans = List.map (fun key -> (key, ospan t ~op:"write" ~key)) keys in
    start_batch t ~keys ~values:writes ~kind:(Batch_write k) ~attempts:0
      ~started:(Engine.now (engine t))
      ~spans

let set_protocol t proto =
  if Protocol.universe_size proto <> t.n_replicas then
    invalid_arg "Coordinator.set_protocol: replica universe changed";
  t.proto <- proto;
  t.levels <- level_plan_of t proto

let metrics t =
  {
    reads_ok = t.reads_ok;
    reads_failed = t.reads_failed;
    writes_ok = t.writes_ok;
    writes_failed = t.writes_failed;
    retries = t.retries;
    repairs_sent = t.repairs_sent;
    deadline_exceeded = t.deadline_exceeded;
    stale_incarnation_rejections = t.stale_inc_rejections;
    busy_received = t.busy_received;
    retries_suppressed = t.retries_suppressed;
    batches = t.batches;
    read_latency = t.read_latency;
    write_latency = t.write_latency;
  }
