type entry = { ts : Timestamp.t; value : string }

type t = {
  committed : (int, entry) Hashtbl.t;
  pending : (int, int * Timestamp.t * string) Hashtbl.t;  (* op -> staged *)
  pending_batch : (int, (int * Timestamp.t * string) list) Hashtbl.t;
      (* op -> staged batch, write order *)
}

let create () =
  {
    committed = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    pending_batch = Hashtbl.create 4;
  }

let read t ~key =
  match Hashtbl.find_opt t.committed key with
  | None -> (Timestamp.zero, "")
  | Some { ts; value } -> (ts, value)

let install t ~key ~ts ~value =
  let current, _ = read t ~key in
  if Timestamp.newer_than ts current then begin
    Hashtbl.replace t.committed key { ts; value };
    true
  end
  else false

let stage t ~op ~key ~ts ~value =
  Hashtbl.remove t.pending_batch op;
  Hashtbl.replace t.pending op (key, ts, value)

let staged t ~op = Hashtbl.find_opt t.pending op

let stage_many t ~op writes =
  Hashtbl.remove t.pending op;
  Hashtbl.replace t.pending_batch op writes

let staged_many t ~op = Hashtbl.find_opt t.pending_batch op

(* WAL replay path: successive Stage records of one op accumulate into a
   batch instead of clobbering each other (plain [stage] keeps last-write-
   wins semantics for re-prepared single writes). *)
let stage_accum t ~op ~key ~ts ~value =
  match Hashtbl.find_opt t.pending_batch op with
  | Some writes -> Hashtbl.replace t.pending_batch op (writes @ [ (key, ts, value) ])
  | None -> (
    match Hashtbl.find_opt t.pending op with
    | None -> Hashtbl.replace t.pending op (key, ts, value)
    | Some first ->
      Hashtbl.remove t.pending op;
      Hashtbl.replace t.pending_batch op [ first; (key, ts, value) ])

let commit_staged t ~op =
  match Hashtbl.find_opt t.pending op with
  | Some (key, ts, value) ->
    Hashtbl.remove t.pending op;
    ignore (install t ~key ~ts ~value);
    true
  | None -> (
    match Hashtbl.find_opt t.pending_batch op with
    | None -> false
    | Some writes ->
      Hashtbl.remove t.pending_batch op;
      List.iter (fun (key, ts, value) -> ignore (install t ~key ~ts ~value)) writes;
      true)

let abort_staged t ~op =
  Hashtbl.remove t.pending op;
  Hashtbl.remove t.pending_batch op

let staged_count t = Hashtbl.length t.pending + Hashtbl.length t.pending_batch

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.committed []
  |> List.sort_uniq compare
