(* Committed state lives in dense parallel arrays indexed by key id:
   unboxed version/sid columns and a string value column.  A key is
   absent exactly when its triple is (0, 0, "") — the same observable
   state [read] reports for never-written keys, and unreachable for a
   present key because [install] only ever stores a triple that won a
   [newer] race against (0, 0) (so a stored (0, 0, v) is impossible, and
   (0, s<0, "") is distinguishable).  Sparse and out-of-range keys spill
   to a hashtable. *)

let dense_limit = 1 lsl 16

type t = {
  mutable versions : int array;
  mutable sids : int array;
  mutable values : string array;
  spill : (int, int * int * string) Hashtbl.t;
      (* key -> (version, sid, value), for key < 0 or >= dense_limit *)
  pending : (int, int * int * int * string) Hashtbl.t;
      (* op -> (key, version, sid, value) staged *)
  pending_batch : (int, Batch.Builder.t) Hashtbl.t;
      (* op -> staged batch, write order *)
}

let create () =
  {
    versions = [||];
    sids = [||];
    values = [||];
    spill = Hashtbl.create 4;
    pending = Hashtbl.create 8;
    pending_batch = Hashtbl.create 4;
  }

let is_dense key = key >= 0 && key < dense_limit

(* ts_a newer than ts_b, unboxed (see Timestamp.newer_than). *)
let newer av asid bv bsid = av > bv || (av = bv && asid < bsid)

let version_of t ~key =
  if is_dense key then
    if key < Array.length t.versions then Array.unsafe_get t.versions key else 0
  else
    match Hashtbl.find t.spill key with
    | v, _, _ -> v
    | exception Not_found -> 0

let sid_of t ~key =
  if is_dense key then
    if key < Array.length t.sids then Array.unsafe_get t.sids key else 0
  else
    match Hashtbl.find t.spill key with
    | _, s, _ -> s
    | exception Not_found -> 0

let value_of t ~key =
  if is_dense key then
    if key < Array.length t.values then Array.unsafe_get t.values key else ""
  else
    match Hashtbl.find t.spill key with
    | _, _, v -> v
    | exception Not_found -> ""

let read t ~key =
  (Timestamp.make ~version:(version_of t ~key) ~sid:(sid_of t ~key),
   value_of t ~key)

let rec pow2_above n c = if c > n then c else pow2_above n (c * 2)

let grow_dense t key =
  let cap = min dense_limit (pow2_above key (max 1024 (Array.length t.versions))) in
  let versions = Array.make cap 0
  and sids = Array.make cap 0
  and values = Array.make cap "" in
  Array.blit t.versions 0 versions 0 (Array.length t.versions);
  Array.blit t.sids 0 sids 0 (Array.length t.sids);
  Array.blit t.values 0 values 0 (Array.length t.values);
  t.versions <- versions;
  t.sids <- sids;
  t.values <- values

let install_flat t ~key ~version ~sid ~value =
  if is_dense key then begin
    let within = key < Array.length t.versions in
    let cv = if within then Array.unsafe_get t.versions key else 0
    and cs = if within then Array.unsafe_get t.sids key else 0 in
    if newer version sid cv cs then begin
      if not within then grow_dense t key;
      Array.unsafe_set t.versions key version;
      Array.unsafe_set t.sids key sid;
      Array.unsafe_set t.values key value;
      true
    end
    else false
  end
  else begin
    let cv, cs =
      match Hashtbl.find t.spill key with
      | v, s, _ -> (v, s)
      | exception Not_found -> (0, 0)
    in
    if newer version sid cv cs then begin
      Hashtbl.replace t.spill key (version, sid, value);
      true
    end
    else false
  end

let install t ~key ~(ts : Timestamp.t) ~value =
  install_flat t ~key ~version:ts.Timestamp.version ~sid:ts.Timestamp.sid ~value

let stage_flat t ~op ~key ~version ~sid ~value =
  Hashtbl.remove t.pending_batch op;
  Hashtbl.replace t.pending op (key, version, sid, value)

let stage t ~op ~key ~(ts : Timestamp.t) ~value =
  stage_flat t ~op ~key ~version:ts.Timestamp.version ~sid:ts.Timestamp.sid
    ~value

let has_staged t ~op = Hashtbl.mem t.pending op

let staged t ~op =
  match Hashtbl.find t.pending op with
  | key, version, sid, value ->
    Some (key, Timestamp.make ~version ~sid, value)
  | exception Not_found -> None

let stage_many t ~op (writes : Batch.t) =
  Hashtbl.remove t.pending op;
  Hashtbl.replace t.pending_batch op (Batch.Builder.of_batch writes)

let staged_many t ~op =
  match Hashtbl.find t.pending_batch op with
  | b -> Some (Batch.Builder.snapshot b)
  | exception Not_found -> None

let staged_batch_size t ~op =
  match Hashtbl.find t.pending_batch op with
  | b -> Batch.Builder.length b
  | exception Not_found -> 0

(* WAL replay path: successive Stage records of one op accumulate into a
   batch instead of clobbering each other (plain [stage] keeps last-write-
   wins semantics for re-prepared single writes).  The builder appends in
   amortized O(1); replaying a k-write batch is O(k), not the O(k²) the
   old list-append accumulation cost. *)
let stage_accum t ~op ~key ~(ts : Timestamp.t) ~value =
  let version = ts.Timestamp.version and sid = ts.Timestamp.sid in
  match Hashtbl.find t.pending_batch op with
  | b -> Batch.Builder.push b ~key ~version ~sid ~value
  | exception Not_found -> (
    match Hashtbl.find t.pending op with
    | k0, v0, s0, val0 ->
      Hashtbl.remove t.pending op;
      let b = Batch.Builder.create ~capacity:4 () in
      Batch.Builder.push b ~key:k0 ~version:v0 ~sid:s0 ~value:val0;
      Batch.Builder.push b ~key ~version ~sid ~value;
      Hashtbl.replace t.pending_batch op b
    | exception Not_found ->
      Hashtbl.replace t.pending op (key, version, sid, value))

let commit_staged t ~op =
  match Hashtbl.find t.pending op with
  | key, version, sid, value ->
    Hashtbl.remove t.pending op;
    ignore (install_flat t ~key ~version ~sid ~value);
    true
  | exception Not_found -> (
    match Hashtbl.find t.pending_batch op with
    | b ->
      Hashtbl.remove t.pending_batch op;
      for i = 0 to Batch.Builder.length b - 1 do
        ignore
          (install_flat t ~key:(Batch.Builder.key b i)
             ~version:(Batch.Builder.version b i) ~sid:(Batch.Builder.sid b i)
             ~value:(Batch.Builder.value b i))
      done;
      true
    | exception Not_found -> false)

let abort_staged t ~op =
  Hashtbl.remove t.pending op;
  Hashtbl.remove t.pending_batch op

let staged_count t = Hashtbl.length t.pending + Hashtbl.length t.pending_batch

(* Snapshot export: the committed entries with lo <= key < hi, ascending.
   The store is mutated only between engine events, so any single-event
   caller sees a consistent cut by construction; chunking a key range per
   call keeps each transfer message bounded.  Dense keys are a straight
   column scan; spill keys (outside the dense range) are collected and
   sorted only when the range can contain them. *)
let snapshot_chunk t ~lo ~hi =
  if lo > hi then invalid_arg "Store.snapshot_chunk: lo > hi";
  let b = Batch.Builder.create ~capacity:64 () in
  let dense_hi = min hi (Array.length t.versions) in
  for key = max lo 0 to dense_hi - 1 do
    let v = Array.unsafe_get t.versions key
    and s = Array.unsafe_get t.sids key in
    let value = Array.unsafe_get t.values key in
    if not (v = 0 && s = 0 && String.length value = 0) then
      Batch.Builder.push b ~key ~version:v ~sid:s ~value
  done;
  if lo < 0 || hi > dense_limit then begin
    let spilled =
      Hashtbl.fold
        (fun key (v, s, value) acc ->
          if key >= lo && key < hi then (key, v, s, value) :: acc else acc)
        t.spill []
    in
    List.iter
      (fun (key, version, sid, value) ->
        Batch.Builder.push b ~key ~version ~sid ~value)
      (List.sort compare spilled)
  end;
  Batch.Builder.snapshot b

(* Snapshot import: a monotone merge, never an overwrite — an entry older
   than what the recipient already holds (own WAL replay, an earlier
   chunk, concurrent repairs) loses the [newer] race and changes
   nothing.  Returns how many entries advanced local state. *)
let import_chunk t chunk =
  let changed = ref 0 in
  for i = 0 to Batch.length chunk - 1 do
    if
      install_flat t ~key:(Batch.key chunk i) ~version:(Batch.version chunk i)
        ~sid:(Batch.sid chunk i) ~value:(Batch.value chunk i)
    then incr changed
  done;
  !changed

let keys t =
  let dense = ref [] in
  for key = Array.length t.versions - 1 downto 0 do
    if
      not
        (t.versions.(key) = 0 && t.sids.(key) = 0
        && String.length t.values.(key) = 0)
    then dense := key :: !dense
  done;
  let all = Hashtbl.fold (fun k _ acc -> k :: acc) t.spill !dense in
  List.sort_uniq Int.compare all
