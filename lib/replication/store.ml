type entry = { ts : Timestamp.t; value : string }

type t = {
  committed : (int, entry) Hashtbl.t;
  pending : (int, int * Timestamp.t * string) Hashtbl.t;  (* op -> staged *)
}

let create () = { committed = Hashtbl.create 16; pending = Hashtbl.create 8 }

let read t ~key =
  match Hashtbl.find_opt t.committed key with
  | None -> (Timestamp.zero, "")
  | Some { ts; value } -> (ts, value)

let install t ~key ~ts ~value =
  let current, _ = read t ~key in
  if Timestamp.newer_than ts current then begin
    Hashtbl.replace t.committed key { ts; value };
    true
  end
  else false

let stage t ~op ~key ~ts ~value = Hashtbl.replace t.pending op (key, ts, value)

let staged t ~op = Hashtbl.find_opt t.pending op

let commit_staged t ~op =
  match Hashtbl.find_opt t.pending op with
  | None -> false
  | Some (key, ts, value) ->
    Hashtbl.remove t.pending op;
    ignore (install t ~key ~ts ~value);
    true

let abort_staged t ~op = Hashtbl.remove t.pending op

let staged_count t = Hashtbl.length t.pending

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.committed []
  |> List.sort_uniq compare
