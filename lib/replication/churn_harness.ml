module Engine = Dsim.Engine
module Network = Dsim.Network
module Latency = Dsim.Latency
module Failure = Dsim.Failure
module Rng = Dsutil.Rng
module Protocol = Quorum.Protocol
module Relabel = Quorum.Relabel

(* One scripted membership change: promote [spare] into [position] at
   virtual time [at]; with [fence] the displaced occupant is
   decommissioned (drain-fence-remove), without it the occupant becomes a
   re-promotable spare (a rolling restart step). *)
type membership_op = { at : float; position : int; spare : int; fence : bool }

type scenario = {
  proto : Protocol.t;  (** the tree, over positions *)
  spares : int;  (** extra sites beyond the tree universe *)
  n_clients : int;
  ops_per_client : int;
  read_fraction : float;
  key_space : int;
  latency : Latency.t;
  loss_rate : float;
  think_time : float;
  failures : Failure.entry list;
  membership : membership_op list;
  seed : int;
  coordinator : Coordinator.config;
  horizon : float;
  wal : Wal.policy;
  chunk_size : int;
  fence_provisioning : bool;
      (** [false] = the negative control: serve while provisioning *)
  provision_timeout : float;
}

let default_scenario ~proto =
  {
    proto;
    spares = 1;
    n_clients = 3;
    ops_per_client = 40;
    read_fraction = 0.5;
    key_space = 8;
    latency = Latency.Exponential 1.0;
    loss_rate = 0.0;
    think_time = 3.0;
    failures = [];
    membership = [];
    seed = 42;
    coordinator = Coordinator.default_config;
    horizon = 3000.0;
    wal = Wal.Sync_on_commit;
    chunk_size = 4;
    fence_provisioning = true;
    provision_timeout = 30.0;
  }

type report = {
  duration : float;
  reads_ok : int;
  reads_failed : int;
  writes_ok : int;
  writes_failed : int;
  retries : int;
  safety_violations : int;
  promotions_started : int;
  promotions_done : int;
  decommissions_done : int;
  provision_runs : int;
  provision_chunks : int;
  provision_resumes : int;
  provision_donor_failovers : int;
  provision_rounds : int;
  provision_stale : int;
  failed_rejoins : int;
  wal_records_replayed : int;
  wal_records_lost : int;
  replica_incarnations : int array;
  replica_status : string array;
  messages_delivered : int;
}

(* Per-key newest successfully committed timestamp — the same freshness
   oracle the main harness uses: a read that returns something older than
   a commit the clients already saw acknowledged is a violation. *)
type checker = {
  latest : (int, Timestamp.t) Hashtbl.t;
  mutable violations : int;
}

let run scenario =
  if scenario.n_clients < 1 then invalid_arg "Churn_harness.run: need a client";
  if scenario.spares < 0 then invalid_arg "Churn_harness.run: negative spares";
  let inner = Protocol.fork scenario.proto in
  let n = Protocol.universe_size inner in
  let universe = n + scenario.spares in
  let relabel = Relabel.make ~universe inner in
  let proto = Relabel.pack relabel in
  let engine = Engine.create ~seed:scenario.seed () in
  let net =
    Network.create ~engine ~n:(universe + scenario.n_clients)
      ~latency:scenario.latency ~loss_rate:scenario.loss_rate ()
  in
  Network.set_crash_mode net Network.Amnesia;
  (* Donor candidates are the sites currently holding tree positions:
     spares may be arbitrarily stale, occupants answer for their
     positions' commits.  The closure reads the live relabel map, so
     failover always aims at the membership of the moment. *)
  let donors () =
    List.init (Relabel.positions relabel) (fun p ->
        Relabel.site_of relabel ~position:p)
  in
  let recovery =
    Replica.recovery ~wal_policy:scenario.wal ~catch_up:false
      ~provision:
        (Replica.provision ~key_space:scenario.key_space
           ~chunk_size:scenario.chunk_size ~fence:scenario.fence_provisioning
           ~timeout:scenario.provision_timeout ~donors ())
      ()
  in
  let replicas =
    Array.init universe (fun site -> Replica.create ~site ~net ~recovery ())
  in
  let locks = Lock_manager.create ~engine in
  let checker = { latest = Hashtbl.create 16; violations = 0 } in
  let promotions_started = ref 0 in
  let promotions_done = ref 0 in
  let decommissions_done = ref 0 in
  (* Scripted membership changes ride the engine like failures do. *)
  List.iter
    (fun m ->
      if m.position < 0 || m.position >= n then
        invalid_arg "Churn_harness.run: membership position out of range";
      if m.spare < 0 || m.spare >= universe then
        invalid_arg "Churn_harness.run: membership spare out of range";
      Engine.schedule engine ~delay:m.at (fun () ->
          incr promotions_started;
          let outgoing =
            if m.fence then
              Some replicas.(Relabel.site_of relabel ~position:m.position)
            else None
          in
          Reconfig.promote ~locks ~relabel ~position:m.position
            ~spare:replicas.(m.spare) ?outgoing ~key_space:scenario.key_space
            (fun () ->
              incr promotions_done;
              if m.fence then incr decommissions_done)))
    scenario.membership;
  let run_client ~site =
    let coord =
      Coordinator.create ~site ~net ~proto ~locks
        ~config:scenario.coordinator ()
    in
    let gen =
      Workload.Generator.create
        ~rng:(Rng.split (Engine.rng engine))
        ~read_fraction:scenario.read_fraction ~key_space:scenario.key_space
        ~zipf_theta:0.0 ()
    in
    let expected_now key =
      match Hashtbl.find checker.latest key with
      | exception Not_found -> Timestamp.zero
      | ts -> ts
    in
    let remaining = ref scenario.ops_per_client in
    let cur_key = ref 0 in
    let cur_expected = ref Timestamp.zero in
    let rec dispatch () =
      if !remaining > 0 then begin
        match Workload.Generator.next gen with
        | Workload.Generator.Read key ->
          cur_key := key;
          cur_expected := expected_now key;
          Coordinator.read coord ~key on_read
        | Workload.Generator.Write (key, value) ->
          cur_key := key;
          Coordinator.write coord ~key ~value on_write
      end
    and on_read result =
      (match result with
      | Some { Coordinator.ts; _ } ->
        if Timestamp.newer_than !cur_expected ts then
          checker.violations <- checker.violations + 1
      | None -> ());
      continue ()
    and on_write result =
      (match result with
      | Some ts ->
        Hashtbl.replace checker.latest !cur_key
          (Timestamp.max (expected_now !cur_key) ts)
      | None -> ());
      continue ()
    and continue () =
      remaining := !remaining - 1;
      Engine.schedule engine
        ~delay:(Workload.Generator.think_time gen ~mean:scenario.think_time)
        dispatch
    in
    dispatch ();
    coord
  in
  let coords =
    List.init scenario.n_clients (fun idx -> run_client ~site:(universe + idx))
  in
  Failure.apply net scenario.failures;
  Engine.run ~until:scenario.horizon engine;
  let metrics = List.map Coordinator.metrics coords in
  let sum f = List.fold_left (fun acc m -> acc + f m) 0 metrics in
  let sum_replicas f = Array.fold_left (fun acc r -> acc + f r) 0 replicas in
  let counters = Network.counters net in
  {
    duration = Engine.now engine;
    reads_ok = sum (fun m -> m.Coordinator.reads_ok);
    reads_failed = sum (fun m -> m.Coordinator.reads_failed);
    writes_ok = sum (fun m -> m.Coordinator.writes_ok);
    writes_failed = sum (fun m -> m.Coordinator.writes_failed);
    retries = sum (fun m -> m.Coordinator.retries);
    safety_violations = checker.violations;
    promotions_started = !promotions_started;
    promotions_done = !promotions_done;
    decommissions_done = !decommissions_done;
    provision_runs = sum_replicas Replica.provision_runs;
    provision_chunks = sum_replicas Replica.provision_chunks;
    provision_resumes = sum_replicas Replica.provision_resumes;
    provision_donor_failovers = sum_replicas Replica.provision_donor_failovers;
    provision_rounds = sum_replicas Replica.provision_rounds;
    provision_stale = sum_replicas Replica.provision_stale;
    failed_rejoins = sum_replicas Replica.failed_rejoins;
    wal_records_replayed = sum_replicas Replica.wal_records_replayed;
    wal_records_lost = sum_replicas Replica.wal_records_lost;
    replica_incarnations = Array.map Replica.incarnation replicas;
    replica_status = Array.map Replica.status_label replicas;
    messages_delivered = counters.Network.delivered;
  }

let completed r = r.reads_ok + r.writes_ok
