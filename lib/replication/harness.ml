module Engine = Dsim.Engine
module Network = Dsim.Network
module Latency = Dsim.Latency
module Failure = Dsim.Failure
module Rng = Dsutil.Rng
module Stats = Dsutil.Stats
module Protocol = Quorum.Protocol

type detector_mode = Oracle | Heartbeat of Detect.Heartbeat.config

(* A flash crowd: extra short-lived clients that pile in at [burst_at]. *)
type burst = {
  burst_at : float;
  burst_clients : int;
  burst_ops : int;
  burst_think : float;
}

type overload = {
  queue_capacity : int;  (** per-replica ingress bound; 0 = unbounded *)
  service_time : float;  (** per-message processing cost at each replica *)
  slow_sites : (int * float) list;  (** per-site service-time overrides *)
  shed_watermark : int;  (** replica admission watermark; 0 = off *)
  retry_budget : Detect.Budget.config option;
  breaker : Detect.Breaker.config option;
  burst : burst option;
}

type batching = {
  batch_size : int;  (** client ops per batch window (>= 1) *)
  group_commit : bool;  (** one WAL sync per batch at the replicas *)
  pipeline : int;  (** outstanding windows per client (>= 1) *)
}

type scenario = {
  proto : Protocol.t;
  n_clients : int;
  ops_per_client : int;
  read_fraction : float;
  key_space : int;
  zipf_theta : float;
  latency : Latency.t;
  loss_rate : float;
  think_time : float;
  failures : Failure.entry list;
  seed : int;
  use_locks : bool;
  coordinator : Coordinator.config;
  detector : detector_mode;
  horizon : float;
  warmup : float;
  crash_mode : Network.crash_mode;
  wal : Wal.policy;
  catch_up : bool;
  check_consistency : bool;
  overload : overload option;
  batching : batching option;
}

let overload_defaults =
  {
    queue_capacity = 0;
    service_time = 0.0;
    slow_sites = [];
    shed_watermark = 0;
    retry_budget = None;
    breaker = None;
    burst = None;
  }

let default_scenario ~proto =
  {
    proto;
    n_clients = 4;
    ops_per_client = 50;
    read_fraction = 0.5;
    key_space = 8;
    zipf_theta = 0.0;
    latency = Latency.Exponential 1.0;
    loss_rate = 0.0;
    think_time = 1.0;
    failures = [];
    seed = 42;
    use_locks = true;
    coordinator = Coordinator.default_config;
    detector = Oracle;
    horizon = 100_000.0;
    warmup = 0.0;
    crash_mode = Network.Fail_stop;
    wal = Wal.Sync_on_commit;
    catch_up = true;
    check_consistency = false;
    overload = None;
    batching = None;
  }

type report = {
  duration : float;
  reads_ok : int;
  reads_failed : int;
  writes_ok : int;
  writes_failed : int;
  retries : int;
  deadline_exceeded : int;
  safety_violations : int;
  read_latency : Stats.t;
  write_latency : Stats.t;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  heartbeat_pings : int;
  replica_reads_served : int array;
  replica_prepares_seen : int array;
  replica_writes_applied : int array;
  stale_incarnation_rejections : int;
  replica_incarnations : int array;
  catchup_runs : int;
  catchup_keys_installed : int;
  catchup_abandoned : int;
  stale_commits_nacked : int;
  wal_records_replayed : int;
  wal_records_lost : int;
  replicas_recovering : int;
  spans : Obs.Span.t list;
  replica_sheds : int;
  busy_received : int;
  retries_suppressed : int;
  overload_drops : int;
  breaker_trips : int;
  queue_peak : int;
  completions : float array;
      (** virtual completion time of every successful operation, in
          completion order — the raw material for goodput-over-time
          windows *)
  batches : int;
  coalesced_ops : int;
  wal_syncs : int;
}

(* Per-key newest successfully committed timestamp, for the freshness
   check. *)
type checker = { latest : (int, Timestamp.t) Hashtbl.t; mutable violations : int }

let run ?obs ?read_probe scenario =
  (* Private protocol instance: quorum plans carry scratch buffers, and the
     parallel evaluation driver may run many harnesses over one scenario
     template concurrently. *)
  let proto = Protocol.fork scenario.proto in
  let n = Protocol.universe_size proto in
  if scenario.n_clients < 1 then invalid_arg "Harness.run: need a client";
  let engine = Engine.create ~seed:scenario.seed () in
  let n_burst =
    match scenario.overload with
    | Some { burst = Some b; _ } -> b.burst_clients
    | _ -> 0
  in
  let net =
    Network.create ~engine ~n:(n + scenario.n_clients + n_burst)
      ~latency:scenario.latency ~loss_rate:scenario.loss_rate ()
  in
  Network.set_crash_mode net scenario.crash_mode;
  (* Overload model: per-replica bounded service queues, a shared retry
     budget and a shared circuit breaker.  All absent (and the network
     untouched) unless the scenario opts in. *)
  (match scenario.overload with
  | None -> ()
  | Some o ->
    for site = 0 to n - 1 do
      let service_time =
        match List.assoc_opt site o.slow_sites with
        | Some s -> s
        | None -> o.service_time
      in
      Network.set_service net ~site ~capacity:o.queue_capacity ~service_time
        ()
    done);
  let budget =
    match scenario.overload with
    | Some { retry_budget = Some c; _ } ->
      Some (Detect.Budget.create ~config:c ())
    | _ -> None
  in
  let breaker =
    match scenario.overload with
    | Some { breaker = Some c; _ } ->
      Some
        (Detect.Breaker.create ~config:c ~n
           ~now:(fun () -> Engine.now engine)
           ())
    | _ -> None
  in
  let admission =
    match scenario.overload with
    | None -> None
    | Some o ->
      Some (Replica.admission ~shed_watermark:o.shed_watermark ~universe:n ())
  in
  (* When consistency checking is requested, spans must be collected even
     if the caller brought no [obs] of their own: attach a memory sink to
     theirs, or to a private handle.  Attaching obs never perturbs the
     simulation (no randomness, no events), so checked and unchecked runs
     see the same schedule. *)
  let span_store =
    if scenario.check_consistency then Some (Obs.Sink.memory ()) else None
  in
  let obs =
    match (obs, span_store) with
    | _, None -> obs
    | Some o, Some m ->
      Obs.add_sink o (Obs.Sink.memory_sink m);
      Some o
    | None, Some m ->
      let o = Obs.create () in
      Obs.add_sink o (Obs.Sink.memory_sink m);
      Some o
  in
  (match obs with
  | None -> ()
  | Some o ->
    Obs.set_clock o (fun () -> Engine.now engine);
    Network.attach_obs net o);
  let recovery =
    match scenario.crash_mode with
    | Network.Fail_stop -> None
    | Network.Amnesia ->
      (* Catch up over the whole key space: WAL replay alone cannot know
         about keys whose records were lost. *)
      Some
        (Replica.recovery ~wal_policy:scenario.wal ~catch_up:scenario.catch_up
           ~keys:(fun () -> List.init scenario.key_space Fun.id)
           ~proto ())
  in
  let batching = scenario.batching in
  (match batching with
  | Some b when b.batch_size < 1 || b.pipeline < 1 ->
    invalid_arg "Harness.run: batch_size and pipeline must be >= 1"
  | _ -> ());
  let group_commit =
    match batching with Some b -> b.group_commit | None -> false
  in
  let replicas =
    Array.init n (fun site ->
        Replica.create ~site ~net ?recovery ?admission ~group_commit ?obs ())
  in
  let locks =
    if scenario.use_locks then Some (Lock_manager.create ~engine) else None
  in
  let checker = { latest = Hashtbl.create 16; violations = 0 } in
  let clients_done = ref 0 in
  let monitors = ref [] in
  (* Completion times go into a growable floatarray (flat stores): the
     list formulation costs five words per completed op. *)
  let completions = ref (Float.Array.create 64) in
  let n_completions = ref 0 in
  let record_completion () =
    (if !n_completions = Float.Array.length !completions then begin
       let grown = Float.Array.create (2 * !n_completions) in
       Float.Array.blit !completions 0 grown 0 !n_completions;
       completions := grown
     end);
    Float.Array.set !completions !n_completions (Engine.now engine);
    incr n_completions
  in
  (* All clients finished: stop the heartbeat loops so the engine drains
     instead of pinging until the horizon. *)
  let total_clients = scenario.n_clients + n_burst in
  let client_finished () =
    incr clients_done;
    if !clients_done = total_clients then
      List.iter Detect.Heartbeat.stop !monitors
  in
  let run_client ~site ~ops ~think ~start_delay =
    let view =
      match scenario.detector with
      | Oracle -> None
      | Heartbeat config ->
        let seq = ref 0 in
        let hb =
          Detect.Heartbeat.create ~engine ~n ~config
            ~send_ping:(fun dst ->
              incr seq;
              Network.send net ~src:site ~dst (Message.Ping { seq = !seq }))
            ()
        in
        monitors := hb :: !monitors;
        Some (Detect.Heartbeat.view hb)
    in
    let coord =
      Coordinator.create ~site ~net ~proto ?locks ?view ?budget ?breaker ?obs
        ~config:scenario.coordinator ()
    in
    let gen =
      Workload.Generator.create
        ~rng:(Rng.split (Engine.rng engine))
        ~read_fraction:scenario.read_fraction ~key_space:scenario.key_space
        ~zipf_theta:scenario.zipf_theta ()
    in
    let expected_now key =
      match Hashtbl.find checker.latest key with
      | exception Not_found -> Timestamp.zero
      | ts -> ts
    in
    let process_read expected result =
      match result with
      | Some { Coordinator.ts; _ } ->
        record_completion ();
        if Timestamp.newer_than expected ts then
          checker.violations <- checker.violations + 1
      | None -> ()
    in
    let process_write key result =
      match result with
      | Some ts ->
        record_completion ();
        Hashtbl.replace checker.latest key (Timestamp.max (expected_now key) ts)
      | None -> ()
    in
    (* Unbatched loop with preallocated per-client closures: the current
       op's key and expected timestamp ride in mutable slots instead of
       fresh closures, so issuing an operation allocates nothing on the
       client side.  Dispatch order, RNG draws and event scheduling are
       exactly those of the closure-per-op formulation, so seeded runs
       are byte-identical. *)
    let remaining = ref 0 in
    let cur_key = ref 0 in
    let cur_expected = ref Timestamp.zero in
    let rec dispatch () =
      if !remaining = 0 then client_finished ()
      else begin
        match Workload.Generator.next gen with
        | Workload.Generator.Read key ->
          cur_key := key;
          cur_expected := expected_now key;
          Coordinator.read coord ~key on_read
        | Workload.Generator.Write (key, value) ->
          cur_key := key;
          Coordinator.write coord ~key ~value on_write
      end
    and on_read result =
      (match (read_probe, result) with
      | Some f, Some r -> f ~key:!cur_key r
      | _ -> ());
      process_read !cur_expected result;
      continue ()
    and on_write result =
      process_write !cur_key result;
      continue ()
    and continue () =
      Engine.schedule engine
        ~delay:(Workload.Generator.think_time gen ~mean:think)
        advance
    and advance () =
      remaining := !remaining - 1;
      dispatch ()
    in
    let step ops =
      remaining := ops;
      dispatch ()
    in
    (* Batched client: ops are issued in windows of [batch_size] (one
       read-batch plus one write-batch per window) with up to [pipeline]
       windows outstanding.  Think time is drawn after a window completes,
       so [batch_size = 1, pipeline = 1] draws the RNG in exactly the
       unbatched order and every run is byte-identical to [step]. *)
    let run_batched b =
      let remaining = ref ops in
      let slots = ref b.pipeline in
      let retire () =
        decr slots;
        if !slots = 0 then client_finished ()
      in
      let rec slot_step () =
        if !remaining = 0 then retire ()
        else begin
          let wsize = min b.batch_size !remaining in
          remaining := !remaining - wsize;
          (* Draw the whole window up front, in issue order. *)
          let window = ref [] in
          for _ = 1 to wsize do
            window := Workload.Generator.next gen :: !window
          done;
          let window = List.rev !window in
          let reads =
            List.filter_map
              (function
                | Workload.Generator.Read key -> Some (key, expected_now key)
                | Workload.Generator.Write _ -> None)
              window
          in
          let writes =
            List.filter_map
              (function
                | Workload.Generator.Write (key, value) -> Some (key, value)
                | Workload.Generator.Read _ -> None)
              window
          in
          let parts =
            ref ((if reads = [] then 0 else 1) + (if writes = [] then 0 else 1))
          in
          let part_done () =
            decr parts;
            if !parts = 0 then
              Engine.schedule engine
                ~delay:(Workload.Generator.think_time gen ~mean:think)
                slot_step
          in
          if reads <> [] then
            Coordinator.read_batch coord ~keys:(List.map fst reads)
              (fun results ->
                List.iter2
                  (fun (_, expected) (_, result) -> process_read expected result)
                  reads results;
                part_done ());
          if writes <> [] then
            Coordinator.write_batch coord ~writes (fun results ->
                List.iter
                  (fun (key, result) -> process_write key result)
                  results;
                part_done ())
        end
      in
      for _ = 1 to b.pipeline do
        slot_step ()
      done
    in
    let start () =
      match batching with None -> step ops | Some b -> run_batched b
    in
    if start_delay > 0.0 then Engine.schedule engine ~delay:start_delay start
    else start ();
    coord
  in
  let coords =
    List.init scenario.n_clients (fun idx ->
        run_client ~site:(n + idx) ~ops:scenario.ops_per_client
          ~think:scenario.think_time ~start_delay:scenario.warmup)
  in
  (* The flash crowd joins at [burst_at] on its own network addresses, so
     steady-state clients keep theirs (and their RNG streams). *)
  let burst_coords =
    match scenario.overload with
    | Some { burst = Some b; _ } ->
      List.init b.burst_clients (fun idx ->
          run_client
            ~site:(n + scenario.n_clients + idx)
            ~ops:b.burst_ops ~think:b.burst_think
            ~start_delay:(scenario.warmup +. b.burst_at))
    | _ -> []
  in
  let coords = coords @ burst_coords in
  Failure.apply net scenario.failures;
  Engine.run ~until:scenario.horizon engine;
  let metrics = List.map Coordinator.metrics coords in
  let sum f = List.fold_left (fun acc m -> acc + f m) 0 metrics in
  let sum_replicas f = Array.fold_left (fun acc r -> acc + f r) 0 replicas in
  let counters = Network.counters net in
  {
    duration = Engine.now engine;
    reads_ok = sum (fun m -> m.Coordinator.reads_ok);
    reads_failed = sum (fun m -> m.Coordinator.reads_failed);
    writes_ok = sum (fun m -> m.Coordinator.writes_ok);
    writes_failed = sum (fun m -> m.Coordinator.writes_failed);
    retries = sum (fun m -> m.Coordinator.retries);
    deadline_exceeded = sum (fun m -> m.Coordinator.deadline_exceeded);
    safety_violations = checker.violations;
    read_latency =
      List.fold_left
        (fun acc m -> Stats.merge acc m.Coordinator.read_latency)
        (Stats.create ()) metrics;
    write_latency =
      List.fold_left
        (fun acc m -> Stats.merge acc m.Coordinator.write_latency)
        (Stats.create ()) metrics;
    messages_sent = counters.Network.sent;
    messages_delivered = counters.Network.delivered;
    messages_dropped =
      counters.Network.dropped_loss + counters.Network.dropped_crash
      + counters.Network.dropped_partition
      + counters.Network.dropped_no_handler
      + counters.Network.dropped_overload;
    heartbeat_pings =
      List.fold_left (fun acc hb -> acc + Detect.Heartbeat.pings_sent hb) 0
        !monitors;
    replica_reads_served = Array.map Replica.reads_served replicas;
    replica_prepares_seen = Array.map Replica.prepares_seen replicas;
    replica_writes_applied = Array.map Replica.writes_applied replicas;
    stale_incarnation_rejections =
      sum (fun m -> m.Coordinator.stale_incarnation_rejections);
    replica_incarnations = Array.map Replica.incarnation replicas;
    catchup_runs = sum_replicas Replica.catchup_runs;
    catchup_keys_installed = sum_replicas Replica.catchup_keys_installed;
    catchup_abandoned = sum_replicas Replica.catchup_abandoned;
    stale_commits_nacked = sum_replicas Replica.stale_commits_nacked;
    wal_records_replayed = sum_replicas Replica.wal_records_replayed;
    wal_records_lost = sum_replicas Replica.wal_records_lost;
    replicas_recovering =
      sum_replicas (fun r -> if Replica.is_serving r then 0 else 1);
    spans =
      (match span_store with
      | None -> []
      | Some m -> Obs.Sink.memory_spans m);
    replica_sheds = sum_replicas Replica.sheds;
    busy_received = sum (fun m -> m.Coordinator.busy_received);
    retries_suppressed = sum (fun m -> m.Coordinator.retries_suppressed);
    overload_drops = counters.Network.dropped_overload;
    breaker_trips =
      (match breaker with None -> 0 | Some b -> Detect.Breaker.trips b);
    queue_peak =
      (let peak = ref 0 in
       for site = 0 to n - 1 do
         peak := max !peak (Network.queue_peak net site)
       done;
       !peak);
    completions = Array.init !n_completions (Float.Array.get !completions);
    batches = sum (fun m -> m.Coordinator.batches);
    coalesced_ops = counters.Network.coalesced;
    wal_syncs = sum_replicas Replica.wal_syncs;
  }

let completed r = r.reads_ok + r.writes_ok

let messages_per_op r =
  if completed r = 0 then 0.0
  else float_of_int r.messages_delivered /. float_of_int (completed r)

let max_over_total counts total =
  if total = 0 then 0.0
  else begin
    let m = Array.fold_left max 0 counts in
    float_of_int m /. float_of_int total
  end

let measured_read_load r = max_over_total r.replica_reads_served r.reads_ok
let measured_write_load r = max_over_total r.replica_prepares_seen r.writes_ok

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>duration=%.1f@,\
     reads: ok=%d failed=%d  writes: ok=%d failed=%d  retries=%d@,\
     safety violations=%d@,\
     read latency: mean=%.2f p99=%.2f   write latency: mean=%.2f p99=%.2f@,\
     messages: sent=%d delivered=%d dropped=%d (%.1f per op)@]"
    r.duration r.reads_ok r.reads_failed r.writes_ok r.writes_failed r.retries
    r.safety_violations
    (Stats.mean r.read_latency)
    (if Stats.count r.read_latency = 0 then 0.0
     else Stats.percentile r.read_latency 0.99)
    (Stats.mean r.write_latency)
    (if Stats.count r.write_latency = 0 then 0.0
     else Stats.percentile r.write_latency 0.99)
    r.messages_sent r.messages_delivered r.messages_dropped (messages_per_op r)
