(** Online reconfiguration: "our protocol enables the shifting from one
    configuration into another by just modifying the structure of the
    tree" (§1, §3.3) — made executable.

    A quorum of the old geometry need not intersect a quorum of the new
    one, so switching requires a state transfer.  The engine:

    + takes the exclusive lock of every key in the key space (so no client
      operation is in flight anywhere during the switch),
    + for every key, reads the newest value through an {e old-tree} read
      quorum and re-installs it — under its {e original} timestamp — on a
      {e new-tree} write quorum,
    + invokes [on_switch] (where callers swap the protocol of their
      coordinators / RPC endpoints) and releases the locks.

    After the switch, every new-tree read quorum intersects the new-tree
    write quorum that received the transfer, so no committed write is
    lost.  Keys whose transfer failed (no quorum within the retry budget)
    are reported; the migration still completes for the others. *)

type result = {
  migrated : int;  (** keys successfully transferred (or empty) *)
  failed : int list;  (** keys whose transfer could not complete *)
}

val migrate :
  rpc:Quorum_rpc.t ->
  locks:Lock_manager.t ->
  new_proto:Quorum.Protocol.t ->
  key_space:int ->
  ?on_switch:(unit -> unit) ->
  (result -> unit) ->
  unit
(** [rpc] must currently carry the {e old} protocol; on completion it has
    been switched to [new_proto].  Clients must confine their keys to
    [0 .. key_space-1].  The lock owner id used is the RPC site, so the
    caller must not run transactions from the same site concurrently. *)

(** {2 Membership: promotion and decommission}

    Unlike {!migrate}, these flows never change the tree — only the
    {!Quorum.Relabel} position→site assignment.  Every quorum
    intersection argument is therefore untouched; what must be preserved
    is that the incoming site holds every commit its position ever
    acked.  Since a write quorum is all members of one physical level,
    any committed write either never involved the position or is acked
    by its current occupant — so the occupant is the one safe donor, and
    the flow is:

    + {e provision}: bulk snapshot + WAL tail from the outgoing occupant
      into the spare, online (clients keep committing);
    + {e drain}: take every key's exclusive lock, quiescing writes;
    + {e delta}: fetch the committed WAL tail since the bulk transfer's
      cut — under the locks, this is the occupant's final word;
    + {e flip}: optionally fence the occupant ({!Replica.decommission}),
      remap the position, release the locks. *)

val promote :
  locks:Lock_manager.t ->
  relabel:Quorum.Relabel.t ->
  position:int ->
  spare:Replica.t ->
  ?outgoing:Replica.t ->
  key_space:int ->
  ?on_switch:(unit -> unit) ->
  (unit -> unit) ->
  unit
(** Promotes [spare] (an empty or stale site outside every quorum) into
    [position], displacing the current occupant.  When [outgoing] is
    given (it must be the occupant's replica) it is fenced permanently
    during the flip; without it the displaced occupant simply becomes a
    spare again — it still holds the position's history, so it can later
    be re-promoted, which is what a rolling restart does.  [spare] needs
    a {!Replica.provision} config; the lock owner used is the spare's
    site id.  [on_switch] runs after the remap, before the locks
    release.  The continuation fires once clients are readmitted.

    The transfer survives donor and recipient crashes: the bulk phase
    retries/resumes ({!Replica.provision_now} with a pinned donor), and
    the delta retries until the occupant answers.  A promotion whose
    outgoing occupant is {e permanently} dead cannot complete (nobody
    else is guaranteed to hold the position's acked writes — that is the
    quorum-intersection argument itself); replace dead occupants by
    provisioning from surviving same-level members via
    {!Replica.provision} [~donors] instead. *)

val decommission :
  locks:Lock_manager.t ->
  relabel:Quorum.Relabel.t ->
  position:int ->
  outgoing:Replica.t ->
  spare:Replica.t ->
  key_space:int ->
  ?on_switch:(unit -> unit) ->
  (unit -> unit) ->
  unit
(** Drain-fence-remove of [position]'s occupant: {!promote} with the
    fence made mandatory.  The outgoing site ends {e decommissioned}
    (refusing every quorum role for good) and [spare] holds the
    position.  Removing a position outright would change the tree; use
    {!migrate} to a smaller tree for that. *)
