(** Online reconfiguration: "our protocol enables the shifting from one
    configuration into another by just modifying the structure of the
    tree" (§1, §3.3) — made executable.

    A quorum of the old geometry need not intersect a quorum of the new
    one, so switching requires a state transfer.  The engine:

    + takes the exclusive lock of every key in the key space (so no client
      operation is in flight anywhere during the switch),
    + for every key, reads the newest value through an {e old-tree} read
      quorum and re-installs it — under its {e original} timestamp — on a
      {e new-tree} write quorum,
    + invokes [on_switch] (where callers swap the protocol of their
      coordinators / RPC endpoints) and releases the locks.

    After the switch, every new-tree read quorum intersects the new-tree
    write quorum that received the transfer, so no committed write is
    lost.  Keys whose transfer failed (no quorum within the retry budget)
    are reported; the migration still completes for the others. *)

type result = {
  migrated : int;  (** keys successfully transferred (or empty) *)
  failed : int list;  (** keys whose transfer could not complete *)
}

val migrate :
  rpc:Quorum_rpc.t ->
  locks:Lock_manager.t ->
  new_proto:Quorum.Protocol.t ->
  key_space:int ->
  ?on_switch:(unit -> unit) ->
  (result -> unit) ->
  unit
(** [rpc] must currently carry the {e old} protocol; on completion it has
    been switched to [new_proto].  Clients must confine their keys to
    [0 .. key_space-1].  The lock owner id used is the RPC site, so the
    caller must not run transactions from the same site concurrently. *)
