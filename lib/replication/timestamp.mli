(** Timestamps: a version number paired with the writing site's identifier
    (§2.2).  Between two timestamps the newer one has the higher version;
    on equal versions the {e lower} site identifier wins (§3.2.1). *)

type t = { version : int; sid : int }

val zero : t
(** The timestamp of a never-written datum; older than every write. *)

val make : version:int -> sid:int -> t

val newer_than : t -> t -> bool
(** [newer_than a b] — is [a] strictly newer than [b]? *)

val newer_flat : int -> int -> int -> int -> bool
(** [newer_flat av asid bv bsid] = [newer_than {av; asid} {bv; bsid}]
    without boxing either side — for the flat hot paths that keep
    timestamps as unboxed (version, sid) int pairs. *)

val compare : t -> t -> int
(** Total order with [compare a b > 0] iff [newer_than a b]. *)

val max : t -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
