module Engine = Dsim.Engine

type mode = Shared | Exclusive

type waiter = { mode : mode; owner : int; grant : unit -> unit }

type lock = {
  mutable held_mode : mode;
  mutable holders : int list;
  waiters : waiter Queue.t;
  mutable upgrade : waiter option;
      (* a shared holder waiting to become exclusive; takes priority over
         the queue *)
}

type t = { engine : Engine.t; locks : (int, lock) Hashtbl.t }

let create ~engine = { engine; locks = Hashtbl.create 16 }

let involves lock owner =
  List.mem owner lock.holders
  || Queue.fold (fun acc w -> acc || w.owner = owner) false lock.waiters
  || (match lock.upgrade with Some u -> u.owner = owner | None -> false)

let grant t lock w =
  lock.held_mode <- w.mode;
  lock.holders <- w.owner :: lock.holders;
  Engine.schedule t.engine ~delay:0.0 w.grant

let acquire t ~key ~mode ~owner k =
  match Hashtbl.find t.locks key with
  | exception Not_found ->
    let lock =
      { held_mode = mode; holders = []; waiters = Queue.create (); upgrade = None }
    in
    Hashtbl.replace t.locks key lock;
    lock.holders <- [ owner ];
    Engine.schedule t.engine ~delay:0.0 k
  | lock ->
    if
      lock.holders = [] && lock.upgrade = None && Queue.is_empty lock.waiters
    then begin
      (* Free cached lock (release keeps records around for reuse): grant
         without building a waiter — nothing is held or queued, so the
         [involves] check is trivially false. *)
      lock.held_mode <- mode;
      lock.holders <- [ owner ];
      Engine.schedule t.engine ~delay:0.0 k
    end
    else begin
      if involves lock owner then
        invalid_arg "Lock_manager.acquire: owner already holds or waits";
      if
        Queue.is_empty lock.waiters && lock.upgrade = None
        && mode = Shared && lock.held_mode = Shared
      then grant t lock { mode; owner; grant = k }
      else Queue.add { mode; owner; grant = k } lock.waiters
    end

let rec drain t lock =
  (* A pending upgrade outranks the queue: it can only proceed once its
     owner is the sole holder. *)
  match lock.upgrade with
  | Some u ->
    if lock.holders = [ u.owner ] then begin
      lock.upgrade <- None;
      lock.held_mode <- Exclusive;
      Engine.schedule t.engine ~delay:0.0 u.grant
    end
  | None -> begin
    match Queue.peek_opt lock.waiters with
    | None -> ()
    | Some w ->
      if lock.holders = [] then begin
        ignore (Queue.pop lock.waiters);
        grant t lock w;
        if w.mode = Shared then begin
          match Queue.peek_opt lock.waiters with
          | Some w' when w'.mode = Shared -> drain_shared t lock
          | _ -> ()
        end
      end
      else if lock.held_mode = Shared && w.mode = Shared then drain_shared t lock
  end

and drain_shared t lock =
  match Queue.peek_opt lock.waiters with
  | Some w when w.mode = Shared ->
    ignore (Queue.pop lock.waiters);
    grant t lock w;
    drain_shared t lock
  | _ -> ()

let release t ~key ~owner =
  match Hashtbl.find t.locks key with
  | exception Not_found -> invalid_arg "Lock_manager.release: key not locked"
  | lock ->
    (match lock.holders with
    | [ o ] when o = owner -> lock.holders <- []
    | holders ->
      if not (List.mem owner holders) then
        invalid_arg "Lock_manager.release: lock not held by owner";
      lock.holders <- List.filter (fun o -> o <> owner) holders);
    (* The record stays cached in the table when it falls idle, so the
       next acquire of this key allocates neither a lock nor a queue. *)
    if
      not
        (lock.holders = [] && Queue.is_empty lock.waiters
       && lock.upgrade = None)
    then drain t lock

let try_upgrade t ~key ~owner k =
  match Hashtbl.find_opt t.locks key with
  | None -> invalid_arg "Lock_manager.try_upgrade: key not locked"
  | Some lock ->
    if not (List.mem owner lock.holders && lock.held_mode = Shared) then
      invalid_arg "Lock_manager.try_upgrade: shared lock not held by owner";
    if lock.upgrade <> None then false
    else if lock.holders = [ owner ] then begin
      lock.held_mode <- Exclusive;
      Engine.schedule t.engine ~delay:0.0 k;
      true
    end
    else begin
      lock.upgrade <- Some { mode = Exclusive; owner; grant = k };
      true
    end

let cancel t ~key ~owner =
  match Hashtbl.find_opt t.locks key with
  | None -> false
  | Some lock -> begin
    match lock.upgrade with
    | Some u when u.owner = owner ->
      lock.upgrade <- None;
      drain t lock;
      true
    | _ ->
      let before = Queue.length lock.waiters in
      let kept = Queue.create () in
      Queue.iter (fun w -> if w.owner <> owner then Queue.add w kept) lock.waiters;
      Queue.clear lock.waiters;
      Queue.transfer kept lock.waiters;
      if Queue.length lock.waiters < before then begin
        drain t lock;
        true
      end
      else false
  end

let holders t ~key =
  match Hashtbl.find_opt t.locks key with
  | None -> None
  | Some lock ->
    if lock.holders = [] then None else Some (lock.held_mode, lock.holders)

let waiting t ~key =
  match Hashtbl.find_opt t.locks key with
  | None -> 0
  | Some lock ->
    Queue.length lock.waiters
    + match lock.upgrade with Some _ -> 1 | None -> 0
