(** Cross-shard transaction scenarios: increment transactions whose keys
    deliberately span several shard instances, driven through a sharded
    {!Txn} manager (one quorum-RPC endpoint per shard, one global lock
    manager).

    The conservation invariant of {!Txn_harness} carries over unchanged —

    {v  Σ committed increments ≤ Σ final counter values
                                ≤ Σ committed + Σ uncertain increments  v}

    — but now it is an {e atomicity} check: with 2PC's cross-shard
    all-prepared barrier intact ([atomic = true]) the invariant holds
    through per-shard crash schedules, while the negative control
    ([atomic = false]: every shard's leg commits independently) leaves
    partially-applied transactions whose phantom increments push the
    observed total above the bound. *)

type scenario = {
  proto : Quorum.Protocol.t;  (** per-shard tree *)
  shards : int;
  strategy : Arbitrary.Shard_map.strategy;
  atomic : bool;
      (** [false] disables the cross-shard prepare barrier (negative
          control) *)
  n_clients : int;
  txns_per_client : int;
  keys_per_txn : int;
      (** keys per transaction, drawn from distinct shards round-robin *)
  key_space : int;
  latency : Dsim.Latency.t;
  loss_rate : float;
  think_time : float;
  shard_failures : (int * Dsim.Failure.entry list) list;
  shard_loss : (int * float) list;
      (** per-shard message-loss override (negative-control fuel: a lossy
          shard's legs fail while its reads sometimes still succeed) *)
  seed : int;
  config : Txn.config;
  horizon : float;
}

val default_scenario : proto:Quorum.Protocol.t -> shards:int -> scenario
(** 3 clients × 30 transactions, 2 keys/txn over 16 keys, hash
    partitioning, atomic, no failures. *)

type report = {
  committed : int;
  aborted : int;
  uncertain : int;  (** aborted with in-doubt commit acks *)
  partial_commits : int;
      (** non-atomic aborts where ≥1 shard leg applied and ≥1 did not —
          always 0 when [atomic] *)
  committed_increments : int;
  uncertain_increments : int;
  observed_total : int;  (** Σ final counter values across all shards *)
  conservation_ok : bool;
  cross_shard_txns : int;  (** transactions whose keys spanned ≥2 shards *)
  duration : float;
}

val run : ?obs:Obs.t -> scenario -> report

val pp_report : Format.formatter -> report -> unit
