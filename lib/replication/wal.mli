(** Simulated write-ahead log: the replica's stable storage.

    The paper assumes fail-stop replicas whose memory survives crashes
    (§2.2); this module makes the durability assumption explicit and
    tunable so crash-{e recovery} with amnesia can be simulated honestly.
    A replica appends staged writes, committed installs and aborts; on an
    amnesia crash the log is truncated according to the persistence policy
    in force, and on recovery {!replay} rebuilds the store from whatever
    survived.

    Policies:
    - {!Sync_on_commit}: committed installs are durable the moment they
      are logged; staged (prepared-but-undecided) writes are volatile and
      lost on a crash.  A recovered replica answers a 2PC [Commit] for a
      lost stage with a nack, which the coordinator turns into a retry.
    - {!Sync_on_prepare}: staged writes are durable too — the classic 2PC
      participant contract.  Replay restores both committed state and the
      undecided stage set.
    - {!Async lag}: every record becomes durable only [lag] units of
      virtual time after it was appended (a background flusher with that
      much dirty data in flight).  A crash loses the un-flushed suffix —
      {e including writes the replica already acknowledged}.  This policy
      deliberately violates the stable-storage contract; the consistency
      checker exists to catch exactly the anomalies it introduces.

    {b Async durability boundary (pinned).}  A record appended at time
    [t] under [Async lag] is durable from [t +. lag] {e inclusive}: a
    crash at exactly [t +. lag] keeps the record, a crash any earlier
    loses it.  The flush is modelled as happening {e at} the deadline,
    before any crash processed at the same instant — the tie breaks in
    favour of durability.  This is a contract, not an accident of
    floating-point comparison; tests pin both sides of the boundary. *)

type policy =
  | Sync_on_commit
  | Sync_on_prepare
  | Async of float  (** flush lag in virtual time; must be positive *)

val policy_to_string : policy -> string
(** ["commit"], ["prepare"], ["async(<lag>)"]. *)

type record =
  | Stage of { op : int; key : int; ts : Timestamp.t; value : string }
  | Commit of { op : int; key : int; ts : Timestamp.t; value : string }
      (** a 2PC commit: clears the stage of [op] and installs the write.
          Carries the full write so it is self-contained even when the
          matching {!Stage} record was volatile (Sync_on_commit) *)
  | Install of { key : int; ts : Timestamp.t; value : string }
      (** a committed write learned outside 2PC (read repair, catch-up,
          or a provisioning snapshot chunk) *)
  | Abort of { op : int }
  | Mark of { chunk : int; wal_index : int }
      (** provisioning progress: snapshot chunks [0..chunk] of a transfer
          stamped at donor index [wal_index] have been applied {e and}
          logged — an amnesia crash mid-transfer resumes after the newest
          durable mark instead of from chunk 0.  [chunk = -1] is the
          completion mark: it retires earlier marks so a later rejoin
          starts a fresh transfer.  Durable like {!Install}; no store
          effect on replay. *)

type t

val create : ?policy:policy -> now:(unit -> float) -> unit -> t
(** [now] is the virtual clock (the engine's) used to stamp appends and
    decide durability at crash time.  Default policy {!Sync_on_commit}.
    Raises [Invalid_argument] on [Async lag] with [lag <= 0]. *)

val policy : t -> policy

val append : t -> record -> unit
(** Appends one record, stamped durable per the policy.  Counts one
    {!syncs} when the policy forces it to stable storage immediately
    (Sync_on_prepare always; Sync_on_commit for [Commit]/[Install]). *)

val append_batch : t -> record list -> unit
(** Group commit: appends the records in order with the same per-record
    durability stamps {!append} would give them (all at the same virtual
    instant), but charges {e at most one} {!syncs} for the whole batch —
    one durability point amortized over every record the policy would
    otherwise force individually.  Crash truncation and {!replay} see
    the records exactly as if appended one by one. *)

val crash : t -> unit
(** An amnesia crash at the current time: truncates every record that was
    not yet durable under the policy.  The comparison is inclusive — a
    record whose durability deadline is exactly now survives (see the
    Async boundary note above).  Fail-stop crashes never call this —
    the replica's memory survives, so the log is irrelevant. *)

val replay : t -> Store.t -> int
(** Rebuild [store] from the log in append order: installs are applied
    monotonically, stages re-staged, aborts clear their stage.  Returns the
    number of records applied. *)

(** {2 Indices, snapshot cuts and tails}

    Every record carries an absolute append index, assigned at {!append}
    time and monotone for the replica's whole lifetime: a {!crash}
    discards truncated records' indices but never rewinds the counter.
    A snapshot cut is stamped with the donor's {!next_index} at cut
    time; the tail that completes the snapshot is then every committed
    record {e at or after} that stamp.  The boundary is pinned: the
    record appended exactly at the stamp IS in the tail (the stamp names
    the next index to be assigned, so nothing at or above it can predate
    the cut), and the record at [stamp - 1] is NOT. *)

val next_index : t -> int
(** The index the next appended record will receive — equivalently, the
    number of records ever appended.  Monotone across crashes. *)

val replay_from : t -> Store.t -> index:int -> int
(** {!replay} restricted to records with index [>= index] (inclusive);
    returns the number applied.  [replay_from ~index:0] = {!replay}.
    @raise Invalid_argument on a negative index. *)

val committed_since : t -> index:int -> Batch.t
(** The committed-state tail since a cut: (key, version, sid, value) of
    every surviving [Commit]/[Install] record with index [>= index], in
    append order.  Stages, aborts and marks are skipped.  Installing the
    result monotonically on top of a snapshot stamped [index] yields a
    state that covers every commit this replica logged since the cut.
    @raise Invalid_argument on a negative index. *)

val resume_state : t -> (int * int) option
(** Where an interrupted provisioning transfer should resume, from the
    newest surviving {!record.Mark}: [Some (next_chunk, wal_index)] when
    a transfer was cut short after durably applying chunks
    [0..next_chunk-1] of the cut stamped [wal_index]; [None] when no
    transfer was in flight (no marks, or the newest is a completion
    mark). *)

val length : t -> int
(** Records currently in the log (durable or not). *)

val lost_total : t -> int
(** Records discarded across all {!crash} calls so far — the measurable
    gap between the stable-storage claim and this policy's reality. *)

val syncs : t -> int
(** Synchronous stable-storage forces charged so far: one per forcing
    {!append}, at most one per {!append_batch}.  The batched-over-unbatched
    ratio of this counter is the group-commit amortization. *)

val pp_policy : Format.formatter -> policy -> unit
