(** A replica's versioned key-value store with two-phase-commit staging.

    Committed state maps keys to the newest (timestamp, value) pair seen;
    installs are monotone in timestamp order, so re-delivered or re-ordered
    commits are harmless.  Prepared-but-undecided writes are staged per
    operation id.

    The store itself is plain volatile memory.  What survives a crash is
    decided one layer up: under the paper's fail-stop model (§2.2) the
    whole store persists untouched, while under amnesia crashes the replica
    rebuilds it by replaying its {!Wal} — so staged writes survive exactly
    when the WAL policy in force persists them ([Sync_on_prepare]; see
    {!Wal.policy}).  A key whose committed write was lost to amnesia (and
    not recovered by WAL replay or catch-up) reads as a never-written key
    again: [Timestamp.zero] and the empty string — which is precisely the
    stale state the consistency checker hunts for. *)

type t

val create : unit -> t

val read : t -> key:int -> Timestamp.t * string
(** [Timestamp.zero] and the empty string for never-written keys. *)

val install : t -> key:int -> ts:Timestamp.t -> value:string -> bool
(** Applies the write if [ts] is newer than the committed timestamp;
    returns whether the state changed. *)

val stage : t -> op:int -> key:int -> ts:Timestamp.t -> value:string -> unit
val staged : t -> op:int -> (int * Timestamp.t * string) option
val commit_staged : t -> op:int -> bool
(** Installs the staged write (if any) and clears it; returns whether a
    staged write existed. *)

val abort_staged : t -> op:int -> unit
val staged_count : t -> int
val keys : t -> int list
