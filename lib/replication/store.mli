(** A replica's versioned key-value store with two-phase-commit staging.

    Committed state maps keys to the newest (timestamp, value) pair seen;
    installs are monotone in timestamp order, so re-delivered or re-ordered
    commits are harmless.  Prepared-but-undecided writes are staged per
    operation id.

    {b Representation.}  Committed state is a dense array-backed map:
    key-id-indexed parallel arrays with unboxed [version]/[sid] columns
    and a string value column, plus a hashtable spill for negative or
    very large key ids.  The flat accessors ({!version_of}, {!sid_of},
    {!value_of}) read it without boxing a timestamp or a tuple — the
    replica's serving path goes through them.  Staged batches are flat
    {!Batch} arrays, and WAL replay accumulates them in amortized O(1)
    per record.

    The store itself is plain volatile memory.  What survives a crash is
    decided one layer up: under the paper's fail-stop model (§2.2) the
    whole store persists untouched, while under amnesia crashes the replica
    rebuilds it by replaying its {!Wal} — so staged writes survive exactly
    when the WAL policy in force persists them ([Sync_on_prepare]; see
    {!Wal.policy}).  A key whose committed write was lost to amnesia (and
    not recovered by WAL replay or catch-up) reads as a never-written key
    again: [Timestamp.zero] and the empty string — which is precisely the
    stale state the consistency checker hunts for. *)

type t

val create : unit -> t

val read : t -> key:int -> Timestamp.t * string
(** [Timestamp.zero] and the empty string for never-written keys. *)

val version_of : t -> key:int -> int
(** Committed version of [key]; 0 for never-written keys.  Allocation-free. *)

val sid_of : t -> key:int -> int
(** Committed writer sid of [key]; 0 for never-written keys. *)

val value_of : t -> key:int -> string
(** Committed value of [key]; [""] for never-written keys. *)

val install : t -> key:int -> ts:Timestamp.t -> value:string -> bool
(** Applies the write if [ts] is newer than the committed timestamp;
    returns whether the state changed. *)

val install_flat :
  t -> key:int -> version:int -> sid:int -> value:string -> bool
(** {!install} without the boxed timestamp. *)

val stage : t -> op:int -> key:int -> ts:Timestamp.t -> value:string -> unit
(** Stages a single write under [op] (last-write-wins per op id); clears
    any staged batch under the same id. *)

val stage_flat :
  t -> op:int -> key:int -> version:int -> sid:int -> value:string -> unit
(** {!stage} without the boxed timestamp. *)

val staged : t -> op:int -> (int * Timestamp.t * string) option

val has_staged : t -> op:int -> bool
(** Whether a single write is staged under [op], without allocating the
    option {!staged} returns. *)

val stage_many : t -> op:int -> Batch.t -> unit
(** Stages a whole batch of writes under one op id (a batched prepare);
    clears any single stage under the same id.  Committed or aborted
    atomically by {!commit_staged} / {!abort_staged}.  The store takes
    ownership of the batch's arrays (sharing, not copying). *)

val staged_many : t -> op:int -> Batch.t option

val staged_batch_size : t -> op:int -> int
(** Number of writes in the batch staged under [op]; 0 when none is. *)

val stage_accum :
  t -> op:int -> key:int -> ts:Timestamp.t -> value:string -> unit
(** WAL-replay staging: a second stage under an op id {e accumulates}
    into a batch instead of clobbering, so replaying the per-record
    Stage entries of a batched prepare rebuilds the full staged batch.
    Amortized O(1) per record. *)

val commit_staged : t -> op:int -> bool
(** Installs the staged write or batch (if any) and clears it; returns
    whether anything was staged.  Batch installs apply in write order,
    each monotone per key. *)

val abort_staged : t -> op:int -> unit
(** Clears both the single stage and the staged batch of [op]. *)

val staged_count : t -> int
(** Staged entries: single stages plus staged batches (a batch counts
    once, however many writes it carries). *)

val keys : t -> int list
(** Committed keys, ascending. *)

val snapshot_chunk : t -> lo:int -> hi:int -> Batch.t
(** Snapshot export: the committed entries with [lo <= key < hi], in
    ascending key order (absent keys are skipped).  The simulator mutates
    stores only between events, so a caller inside one event reads a
    consistent cut; provisioning carves the key space into fixed ranges
    so chunk numbers stay meaningful across donors and restarts.
    @raise Invalid_argument when [lo > hi]. *)

val import_chunk : t -> Batch.t -> int
(** Snapshot import: installs every entry {e monotonically} (an entry
    older than local committed state changes nothing — safe on top of
    WAL replay, duplicated chunks, or concurrent repairs).  Returns the
    number of entries that advanced local state. *)
