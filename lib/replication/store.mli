(** A replica's versioned key-value store with two-phase-commit staging.

    Committed state maps keys to the newest (timestamp, value) pair seen;
    installs are monotone in timestamp order, so re-delivered or re-ordered
    commits are harmless.  Prepared-but-undecided writes are staged per
    operation id, surviving crashes (fail-stop with stable storage). *)

type t

val create : unit -> t

val read : t -> key:int -> Timestamp.t * string
(** [Timestamp.zero] and the empty string for never-written keys. *)

val install : t -> key:int -> ts:Timestamp.t -> value:string -> bool
(** Applies the write if [ts] is newer than the committed timestamp;
    returns whether the state changed. *)

val stage : t -> op:int -> key:int -> ts:Timestamp.t -> value:string -> unit
val staged : t -> op:int -> (int * Timestamp.t * string) option
val commit_staged : t -> op:int -> bool
(** Installs the staged write (if any) and clears it; returns whether a
    staged write existed. *)

val abort_staged : t -> op:int -> unit
val staged_count : t -> int
val keys : t -> int list
