(** Centralized concurrency control (§2.2: "each client uses a centralized
    concurrency control scheme to synchronize accesses").

    Per-key shared/exclusive locks with FIFO queuing: reads take shared
    locks, writes exclusive ones.  Grant callbacks fire as simulation
    events so lock handoff costs a scheduling step, never reentrancy. *)

type t

type mode = Shared | Exclusive

val create : engine:Dsim.Engine.t -> t

val acquire : t -> key:int -> mode:mode -> owner:int -> (unit -> unit) -> unit
(** Queues the request; the callback runs when the lock is granted.  An
    owner must not request a lock it already holds or waits for (checked,
    raises [Invalid_argument]). *)

val release : t -> key:int -> owner:int -> unit
(** Releases the owner's hold; grants to waiters as compatibility allows.
    Releasing a lock not held raises [Invalid_argument]. *)

val try_upgrade : t -> key:int -> owner:int -> (unit -> unit) -> bool
(** Shared→exclusive upgrade.  Returns [false] immediately when another
    upgrade is already pending on the key (the classic upgrade deadlock —
    the caller should abort).  Otherwise returns [true] and the callback
    fires once the owner is the sole holder; upgrades take priority over
    queued waiters.  Raises [Invalid_argument] if the owner does not hold
    the lock in shared mode. *)

val cancel : t -> key:int -> owner:int -> bool
(** Withdraws the owner's {e queued} request (a waiter or a pending
    upgrade) without granting it; [true] if something was cancelled.
    Granted locks are unaffected — use {!release}. *)

val holders : t -> key:int -> (mode * int list) option
(** Current mode and holders, [None] when the key is unlocked. *)

val waiting : t -> key:int -> int
(** Queue length behind the key. *)
