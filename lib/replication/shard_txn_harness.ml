module Engine = Dsim.Engine
module Network = Dsim.Network
module Latency = Dsim.Latency
module Failure = Dsim.Failure
module Rng = Dsutil.Rng
module Protocol = Quorum.Protocol
module Shard_map = Arbitrary.Shard_map

type scenario = {
  proto : Protocol.t;
  shards : int;
  strategy : Shard_map.strategy;
  atomic : bool;
  n_clients : int;
  txns_per_client : int;
  keys_per_txn : int;
  key_space : int;
  latency : Latency.t;
  loss_rate : float;
  think_time : float;
  shard_failures : (int * Failure.entry list) list;
  shard_loss : (int * float) list;
  seed : int;
  config : Txn.config;
  horizon : float;
}

let default_scenario ~proto ~shards =
  {
    proto;
    shards;
    strategy = Shard_map.Hash;
    atomic = true;
    n_clients = 3;
    txns_per_client = 30;
    keys_per_txn = 2;
    key_space = 16;
    latency = Latency.Exponential 1.0;
    loss_rate = 0.0;
    think_time = 2.0;
    shard_failures = [];
    shard_loss = [];
    seed = 42;
    config = Txn.default_config;
    horizon = 100_000.0;
  }

type report = {
  committed : int;
  aborted : int;
  uncertain : int;
  partial_commits : int;
  committed_increments : int;
  uncertain_increments : int;
  observed_total : int;
  conservation_ok : bool;
  cross_shard_txns : int;
  duration : float;
}

let value_of v = if v = "" then 0 else int_of_string v

(* Pick [count] distinct keys spreading over as many distinct shards as
   the map allows: shuffle the active shards, then draw one random key
   from each in round-robin, rejecting duplicates. *)
let pick_keys ~rng ~smap ~count =
  let shards = Array.of_list (Shard_map.active smap) in
  Rng.shuffle rng shards;
  let n_sh = Array.length shards in
  let chosen = ref [] in
  for i = 0 to count - 1 do
    let keys = Array.of_list (Shard_map.keys_of smap shards.(i mod n_sh)) in
    if Array.length keys > 0 then begin
      let attempts = ref 0 in
      let key = ref (Rng.pick rng keys) in
      while List.mem !key !chosen && !attempts < 50 do
        key := Rng.pick rng keys;
        incr attempts
      done;
      if not (List.mem !key !chosen) then chosen := !key :: !chosen
    end
  done;
  List.rev !chosen

let spans_shards smap keys =
  match keys with
  | [] -> false
  | first :: rest ->
    let s0 = Shard_map.route smap first in
    List.exists (fun k -> Shard_map.route smap k <> s0) rest

(* Read every chosen counter, write each back + 1, commit. *)
let increment_txn mgr ~keys k =
  let txn = Txn.begin_txn mgr in
  let rec step = function
    | [] -> Txn.commit txn k
    | key :: rest ->
      Txn.read txn ~key (function
        | None -> k (Txn.Aborted "read failed")
        | Some v ->
          Txn.write txn ~key ~value:(string_of_int (value_of v + 1));
          step rest)
  in
  step keys

let is_partial reason =
  String.length reason >= 10 && String.sub reason 0 10 = "non-atomic"

let run ?obs scenario =
  if scenario.shards < 1 then
    invalid_arg "Shard_txn_harness.run: shards must be >= 1";
  if scenario.keys_per_txn > scenario.key_space then
    invalid_arg "Shard_txn_harness.run: keys_per_txn exceeds key_space";
  let smap =
    Shard_map.create ~strategy:scenario.strategy ~shards:scenario.shards
      ~key_space:scenario.key_space ~seed:scenario.seed ()
  in
  let engine = Engine.create ~seed:scenario.seed () in
  (match obs with
  | None -> ()
  | Some o -> Obs.set_clock o (fun () -> Engine.now engine));
  let n = Protocol.universe_size scenario.proto in
  let create_shard s =
    let proto = Protocol.fork scenario.proto in
    let loss_rate =
      match List.assoc_opt s scenario.shard_loss with
      | Some r -> r
      | None -> scenario.loss_rate
    in
    let net =
      Network.create ~engine
        ~n:(n + scenario.n_clients + 1)
        ~latency:scenario.latency ~loss_rate ()
    in
    (match obs with None -> () | Some o -> Network.attach_obs net o);
    let _replicas = Array.init n (fun site -> Replica.create ~site ~net ()) in
    (net, proto)
  in
  let endpoints =
    Array.of_list (List.init scenario.shards create_shard)
  in
  let locks = Lock_manager.create ~engine in
  let committed = ref 0 and aborted = ref 0 and uncertain = ref 0 in
  let partial_commits = ref 0 in
  let committed_increments = ref 0 and uncertain_increments = ref 0 in
  let cross_shard_txns = ref 0 in
  let route key = Shard_map.route smap key in
  let run_client idx =
    let mgr =
      Txn.create_sharded_manager ~site:(n + idx) ~endpoints ~route ~locks
        ~atomic:scenario.atomic ?obs ~config:scenario.config ()
    in
    let rng = Rng.split (Engine.rng engine) in
    let rec go remaining =
      if remaining > 0 then begin
        let keys = pick_keys ~rng ~smap ~count:scenario.keys_per_txn in
        if spans_shards smap keys then incr cross_shard_txns;
        increment_txn mgr ~keys (fun outcome ->
            (match outcome with
            | Txn.Committed ->
              incr committed;
              committed_increments :=
                !committed_increments + List.length keys
            | Txn.Aborted reason ->
              incr aborted;
              if reason = "commit acks incomplete (outcome uncertain)" then begin
                incr uncertain;
                uncertain_increments :=
                  !uncertain_increments + List.length keys
              end
              else if is_partial reason then begin
                (* Negative control: some shard legs applied, some did
                   not.  Deliberately NOT counted toward the uncertain
                   bound — the conservation check must catch the
                   phantoms these leave behind. *)
                incr partial_commits
              end);
            Engine.schedule engine
              ~delay:(Rng.exponential rng scenario.think_time)
              (fun () -> go (remaining - 1)))
      end
    in
    go scenario.txns_per_client
  in
  for idx = 0 to scenario.n_clients - 1 do
    run_client idx
  done;
  List.iter
    (fun (s, entries) ->
      if s < 0 || s >= scenario.shards then
        invalid_arg "Shard_txn_harness.run: shard_failures index out of range";
      Failure.apply (fst endpoints.(s)) entries)
    scenario.shard_failures;
  Engine.run ~until:scenario.horizon engine;
  (* Heal every shard and tally the counters through quorum reads on
     fresh, uninstrumented endpoints. *)
  Array.iter
    (fun (net, _) ->
      for site = 0 to n - 1 do
        Network.recover net site
      done;
      Network.heal net;
      Network.set_loss_rate net 0.0)
    endpoints;
  let readers =
    Array.map
      (fun (net, proto) ->
        Quorum_rpc.create ~site:(n + scenario.n_clients) ~net ~proto ())
      endpoints
  in
  let observed = ref 0 in
  let pending = ref scenario.key_space in
  for key = 0 to scenario.key_space - 1 do
    Quorum_rpc.query readers.(route key) ~key (fun r ->
        (match r with
        | Some (_, v) -> observed := !observed + value_of v
        | None -> ());
        decr pending)
  done;
  Engine.run engine;
  assert (!pending = 0);
  let conservation_ok =
    !observed >= !committed_increments
    && !observed <= !committed_increments + !uncertain_increments
  in
  {
    committed = !committed;
    aborted = !aborted;
    uncertain = !uncertain;
    partial_commits = !partial_commits;
    committed_increments = !committed_increments;
    uncertain_increments = !uncertain_increments;
    observed_total = !observed;
    conservation_ok;
    cross_shard_txns = !cross_shard_txns;
    duration = Engine.now engine;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>transactions: %d committed, %d aborted (%d in-doubt, %d partial)@,\
     cross-shard: %d@,\
     increments: %d committed + %d uncertain; observed total %d@,\
     conservation: %s@]"
    r.committed r.aborted r.uncertain r.partial_commits r.cross_shard_txns
    r.committed_increments r.uncertain_increments r.observed_total
    (if r.conservation_ok then "OK" else "VIOLATED")
