(** Low-level quorum RPC endpoint: the phase primitives shared by the
    transaction layer and the reconfiguration engine.

    One endpoint per client site; it owns the site's message handler.  All
    operations assemble quorums from a pluggable failure-detector view
    ({!Detect.View}) — by default the simulator's ground-truth oracle
    (failures are detectable, §2.2), but any detector (e.g. the
    {!Detect.Heartbeat} accrual monitor) can be substituted.  Phases retry
    with fresh quorums on per-phase timeouts, pausing with jittered
    exponential backoff ({!Detect.Backoff}) and bounded by an optional
    per-operation deadline budget; with [adaptive_timeout] the phase
    deadline tracks observed RTT quantiles ({!Detect.Rto}) instead of the
    fixed [timeout].  Results are delivered through callbacks on the
    simulation thread. *)

type t

type config = {
  timeout : float;  (** fixed per-phase response deadline *)
  max_retries : int;  (** quorum re-assembly attempts per operation *)
  adaptive_timeout : bool;
      (** derive the phase deadline from observed RTT quantiles instead of
          [timeout] (off by default: the seed's fixed-timeout behavior) *)
  deadline : float;
      (** per-operation time budget: a retry that cannot start before
          [op start + deadline] fails the operation instead.  [infinity]
          (the default) disables the budget. *)
  backoff : Detect.Backoff.policy;  (** retry pause policy *)
  rto : Detect.Rto.config;  (** adaptive-timeout estimator parameters *)
}

val default_config : config

val create :
  site:int ->
  net:Message.t Dsim.Network.t ->
  proto:Quorum.Protocol.t ->
  ?view:Detect.View.t ->
  ?budget:Detect.Budget.t ->
  ?breaker:Detect.Breaker.t ->
  ?obs:Obs.t ->
  ?config:config ->
  unit ->
  t
(** [view] defaults to the ground-truth oracle over the replica universe.
    The endpoint reports evidence into the view: every received message
    [observe]s its sender, every phase timeout [suspect]s the members
    still waiting.  With [obs], {!query} and {!write} are traced as
    [rpc.read] / [rpc.write] spans (one span per operation, covering a
    write's version query, prepare and commit phases) and the counter
    [rpc.deadline_exceeded] is maintained; without it the endpoint does no
    instrumentation work.

    [budget] (a shared {!Detect.Budget}) gates every backoff retry —
    commit-phase resends excepted — failing the operation fast when the
    global retry budget is drained.  [breaker] (a shared {!Detect.Breaker})
    collects per-site [Busy]/timeout evidence and removes tripped sites
    from quorum assembly.  Omitting both leaves behavior byte-identical. *)

val site : t -> int
val protocol : t -> Quorum.Protocol.t

val view : t -> Detect.View.t
(** The failure-detector view quorums are assembled from. *)

val current_view : t -> Dsutil.Bitset.t
(** The believed-alive replica set right now ([view].alive ()). *)

val observed_timeout : t -> float
(** The per-phase deadline currently in force (adaptive or fixed). *)

val stale_incarnation_rejections : t -> int
(** Replica replies dropped for carrying a pre-crash incarnation (always 0
    under fail-stop; see {!Coordinator}). *)

val busy_received : t -> int
(** [Busy] sheds received from admission-controlled replicas. *)

val retries_suppressed : t -> int
(** Retries refused by the shared {!Detect.Budget}. *)

val set_protocol : t -> Quorum.Protocol.t -> unit
(** Swap the quorum geometry (used by reconfiguration).  The replica
    universe must keep the same size. *)

val query :
  t -> ?retry:bool -> key:int -> ((Timestamp.t * string) option -> unit) -> unit
(** Read quorum: newest (timestamp, value) among all members, [None] when
    no quorum could be assembled within the retry/deadline budget.

    [~retry:true] marks a caller-level re-issue of an operation that
    already entered once: it skips the retry-budget deposit, so a storm
    of re-issues cannot refill its own token bucket (the budget only
    earns tokens from genuine first attempts).  Default [false]. *)

val prepare :
  t ->
  key:int ->
  ts:Timestamp.t ->
  value:string ->
  ((int * int list) option -> unit) ->
  unit
(** Stage the write on every member of a write quorum.  On success yields
    [(op, members)]: the staging handle to later {!commit_staged} or
    {!abort_staged}. *)

val commit_staged :
  t -> op:int -> members:int list -> (bool -> unit) -> unit
(** Commit a staged write everywhere, resending on timeout; [false] when
    some member never acknowledged (outcome uncertain). *)

val abort_staged : t -> op:int -> members:int list -> unit
(** Fire-and-forget rollback. *)

val write :
  t ->
  ?retry:bool ->
  key:int ->
  ?ts:Timestamp.t ->
  value:string ->
  (Timestamp.t option -> unit) ->
  unit
(** Full write: version-phase read (skipped when [ts] is forced), then
    prepare + commit on a write quorum.  A forced [ts] is used by state
    transfer, which must re-install values {e without} minting new
    versions.  [~retry:true] as in {!query}: a caller-level re-issue
    that must not deposit into the retry budget. *)
