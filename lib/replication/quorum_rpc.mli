(** Low-level quorum RPC endpoint: the phase primitives shared by the
    transaction layer and the reconfiguration engine.

    One endpoint per client site; it owns the site's message handler.  All
    operations assemble quorums from the current ground-truth view
    (failures are detectable, §2.2), retry with fresh quorums on per-phase
    timeouts, and deliver their results through callbacks on the
    simulation thread. *)

type t

type config = { timeout : float; max_retries : int }

val default_config : config

val create :
  site:int ->
  net:Message.t Dsim.Network.t ->
  proto:Quorum.Protocol.t ->
  ?config:config ->
  unit ->
  t

val site : t -> int
val protocol : t -> Quorum.Protocol.t

val set_protocol : t -> Quorum.Protocol.t -> unit
(** Swap the quorum geometry (used by reconfiguration).  The replica
    universe must keep the same size. *)

val query :
  t -> key:int -> ((Timestamp.t * string) option -> unit) -> unit
(** Read quorum: newest (timestamp, value) among all members, [None] when
    no quorum could be assembled within the retry budget. *)

val prepare :
  t ->
  key:int ->
  ts:Timestamp.t ->
  value:string ->
  ((int * int list) option -> unit) ->
  unit
(** Stage the write on every member of a write quorum.  On success yields
    [(op, members)]: the staging handle to later {!commit_staged} or
    {!abort_staged}. *)

val commit_staged :
  t -> op:int -> members:int list -> (bool -> unit) -> unit
(** Commit a staged write everywhere, resending on timeout; [false] when
    some member never acknowledged (outcome uncertain). *)

val abort_staged : t -> op:int -> members:int list -> unit
(** Fire-and-forget rollback. *)

val write :
  t ->
  key:int ->
  ?ts:Timestamp.t ->
  value:string ->
  (Timestamp.t option -> unit) ->
  unit
(** Full write: version-phase read (skipped when [ts] is forced), then
    prepare + commit on a write quorum.  A forced [ts] is used by state
    transfer, which must re-install values {e without} minting new
    versions. *)
