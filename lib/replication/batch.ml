type t = {
  keys : int array;
  versions : int array;
  sids : int array;
  values : string array;
}

let empty = { keys = [||]; versions = [||]; sids = [||]; values = [||] }

let length b = Array.length b.keys

let make ~keys ~versions ~sids ~values =
  let n = Array.length keys in
  if
    Array.length versions <> n
    || Array.length sids <> n
    || Array.length values <> n
  then invalid_arg "Batch.make: column lengths differ";
  { keys; versions; sids; values }

let key b i = b.keys.(i)
let version b i = b.versions.(i)
let sid b i = b.sids.(i)
let value b i = b.values.(i)
let ts b i = Timestamp.make ~version:b.versions.(i) ~sid:b.sids.(i)

let init n f =
  if n = 0 then empty
  else begin
    let keys = Array.make n 0
    and versions = Array.make n 0
    and sids = Array.make n 0
    and values = Array.make n "" in
    for i = 0 to n - 1 do
      let k, v, s, value = f i in
      keys.(i) <- k;
      versions.(i) <- v;
      sids.(i) <- s;
      values.(i) <- value
    done;
    { keys; versions; sids; values }
  end

let of_list writes =
  let n = List.length writes in
  if n = 0 then empty
  else begin
    let keys = Array.make n 0
    and versions = Array.make n 0
    and sids = Array.make n 0
    and values = Array.make n "" in
    List.iteri
      (fun i (k, (ts : Timestamp.t), value) ->
        keys.(i) <- k;
        versions.(i) <- ts.Timestamp.version;
        sids.(i) <- ts.Timestamp.sid;
        values.(i) <- value)
      writes;
    { keys; versions; sids; values }
  end

let to_list b =
  List.init (length b) (fun i -> (key b i, ts b i, value b i))

let iter f b =
  for i = 0 to length b - 1 do
    f ~key:b.keys.(i) ~version:b.versions.(i) ~sid:b.sids.(i)
      ~value:b.values.(i)
  done

module Builder = struct
  type batch = t

  type t = {
    mutable b_keys : int array;
    mutable b_versions : int array;
    mutable b_sids : int array;
    mutable b_values : string array;
    mutable len : int;
  }

  let create ?(capacity = 0) () =
    let capacity = max capacity 0 in
    {
      b_keys = Array.make capacity 0;
      b_versions = Array.make capacity 0;
      b_sids = Array.make capacity 0;
      b_values = Array.make capacity "";
      len = 0;
    }

  let length b = b.len

  (* Wrap an immutable batch without copying: the builder's arrays alias
     the batch's, but [len = capacity] means the first [push] grows (and
     therefore copies) before writing, so the original stays intact. *)
  let of_batch (src : batch) =
    {
      b_keys = src.keys;
      b_versions = src.versions;
      b_sids = src.sids;
      b_values = src.values;
      len = Array.length src.keys;
    }

  let grow b needed =
    let cap = max 4 (max needed (2 * Array.length b.b_keys)) in
    let keys = Array.make cap 0
    and versions = Array.make cap 0
    and sids = Array.make cap 0
    and values = Array.make cap "" in
    Array.blit b.b_keys 0 keys 0 b.len;
    Array.blit b.b_versions 0 versions 0 b.len;
    Array.blit b.b_sids 0 sids 0 b.len;
    Array.blit b.b_values 0 values 0 b.len;
    b.b_keys <- keys;
    b.b_versions <- versions;
    b.b_sids <- sids;
    b.b_values <- values

  let push b ~key ~version ~sid ~value =
    if b.len = Array.length b.b_keys then grow b (b.len + 1);
    b.b_keys.(b.len) <- key;
    b.b_versions.(b.len) <- version;
    b.b_sids.(b.len) <- sid;
    b.b_values.(b.len) <- value;
    b.len <- b.len + 1

  let key b i = b.b_keys.(i)
  let version b i = b.b_versions.(i)
  let sid b i = b.b_sids.(i)
  let value b i = b.b_values.(i)

  (* A trimmed immutable snapshot.  When the builder is exactly full —
     the [of_batch] round trip, or a lucky exact fill — the arrays are
     shared rather than copied; the builder is then in the same aliased
     state [of_batch] produces, which stays safe for the same reason. *)
  let snapshot b : batch =
    if b.len = Array.length b.b_keys then
      {
        keys = b.b_keys;
        versions = b.b_versions;
        sids = b.b_sids;
        values = b.b_values;
      }
    else
      {
        keys = Array.sub b.b_keys 0 b.len;
        versions = Array.sub b.b_versions 0 b.len;
        sids = Array.sub b.b_sids 0 b.len;
        values = Array.sub b.b_values 0 b.len;
      }
end
