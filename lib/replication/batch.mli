(** Flat, length-carrying batch payloads: parallel arrays of
    (key, version, sid, value), one slot per write or read entry.

    The coalesced message envelopes ({!Message.Read_batch_reply},
    {!Message.Prepare_batch}) and the store's staged batches carry one of
    these instead of a [(int * Timestamp.t * string) list]: no per-entry
    cons cells or boxed timestamps, and the length is an array length
    rather than a list walk.  A [t] is immutable by convention — never
    mutate the arrays of a batch you did not just build. *)

type t = {
  keys : int array;
  versions : int array;
  sids : int array;
  values : string array;
}

val empty : t
val length : t -> int

val make :
  keys:int array ->
  versions:int array ->
  sids:int array ->
  values:string array ->
  t
(** Validates that all four columns have the same length. *)

val key : t -> int -> int
val version : t -> int -> int
val sid : t -> int -> int
val value : t -> int -> string

val ts : t -> int -> Timestamp.t
(** Boxes the timestamp of entry [i] — convenience for cold paths. *)

val init : int -> (int -> int * int * int * string) -> t
(** [init n f] builds a batch from [f i = (key, version, sid, value)]. *)

val of_list : (int * Timestamp.t * string) list -> t
val to_list : t -> (int * Timestamp.t * string) list

val iter :
  (key:int -> version:int -> sid:int -> value:string -> unit) -> t -> unit

(** Amortized-doubling accumulator, the efficient replacement for the
    [writes @ [w]] quadratic append that WAL replay used to do per staged
    record. *)
module Builder : sig
  type batch = t
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int

  val of_batch : batch -> t
  (** Wraps an immutable batch as a full builder {e without copying}; a
      subsequent [push] copies on growth, leaving the original intact. *)

  val push : t -> key:int -> version:int -> sid:int -> value:string -> unit

  val key : t -> int -> int
  val version : t -> int -> int
  val sid : t -> int -> int
  val value : t -> int -> string

  val snapshot : t -> batch
  (** Trimmed immutable view; shares the arrays when the builder is
      exactly full, copies otherwise. *)
end
