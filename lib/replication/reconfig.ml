type result = { migrated : int; failed : int list }

(* Membership flows over a relabeled tree: the tree (and with it every
   quorum-intersection argument) never changes shape; only the
   position→site assignment moves.  Safety of the flip rests on the
   write-quorum structure: a write quorum is all members of one level, so
   every commit the outgoing occupant acked is either on the outgoing
   occupant itself or on a quorum that does not contain its position at
   all.  Provisioning the incoming site from the outgoing occupant —
   bulk snapshot first, then a final WAL delta fetched while every key is
   write-locked — therefore hands over the entire set of commits the
   position is answerable for. *)

let promote ~locks ~relabel ~position ~spare ?outgoing ~key_space
    ?(on_switch = fun () -> ()) k =
  if key_space < 1 then invalid_arg "Reconfig.promote: empty key space";
  let donor = Quorum.Relabel.site_of relabel ~position in
  let owner = Replica.site spare in
  let release_all () =
    for key = 0 to key_space - 1 do
      Lock_manager.release locks ~key ~owner
    done
  in
  let flip () =
    (* The spare now holds every commit the position ever acked; fence
       the outgoing occupant (when asked to) before the remap so no
       window exists in which both sites could serve the position. *)
    (match outgoing with Some o -> Replica.decommission o | None -> ());
    Quorum.Relabel.remap relabel ~position ~site:(Replica.site spare);
    on_switch ();
    release_all ();
    k ()
  in
  let locked () =
    (* Clients are quiesced; one final fenced delta closes the gap
       between the bulk snapshot's cut and the last acked commit. *)
    Replica.request_tail spare ~donor flip
  in
  let rec lock key =
    if key = key_space then locked ()
    else
      Lock_manager.acquire locks ~key ~mode:Lock_manager.Exclusive ~owner
        (fun () -> lock (key + 1))
  in
  (* Bulk provisioning runs before any lock is taken: clients keep
     committing while the snapshot streams; the locked delta is small. *)
  Replica.provision_now spare ~pinned:true ~donor ~on_done:(fun () -> lock 0) ()

let decommission ~locks ~relabel ~position ~outgoing ~spare ~key_space
    ?on_switch k =
  promote ~locks ~relabel ~position ~spare ~outgoing ~key_space ?on_switch k

let migrate ~rpc ~locks ~new_proto ~key_space ?(on_switch = fun () -> ()) k =
  if key_space < 1 then invalid_arg "Reconfig.migrate: empty key space";
  let owner = Quorum_rpc.site rpc in
  let migrated = ref 0 in
  let failed = ref [] in
  let release_all () =
    for key = 0 to key_space - 1 do
      Lock_manager.release locks ~key ~owner
    done
  in
  let finish () =
    (* Every key has been carried over: flip the geometry (the caller swaps
       its coordinators' protocols in [on_switch]) and let clients back in. *)
    Quorum_rpc.set_protocol rpc new_proto;
    on_switch ();
    release_all ();
    k { migrated = !migrated; failed = List.rev !failed }
  in
  (* Transfer one key: read newest under the old tree, re-install under the
     new tree with the original timestamp (no version minting: the transfer
     is not a logical write). *)
  let rec transfer key =
    if key = key_space then finish ()
    else
      Quorum_rpc.query rpc ~key (function
        | None ->
          failed := key :: !failed;
          transfer (key + 1)
        | Some (ts, value) ->
          if Timestamp.equal ts Timestamp.zero then begin
            (* Never written: nothing to carry over. *)
            incr migrated;
            transfer (key + 1)
          end
          else begin
            (* Address the new tree for the install, then return to the old
               geometry for the remaining reads. *)
            let old_proto = Quorum_rpc.protocol rpc in
            Quorum_rpc.set_protocol rpc new_proto;
            Quorum_rpc.write rpc ~key ~ts ~value (fun r ->
                Quorum_rpc.set_protocol rpc old_proto;
                (match r with
                | Some _ -> incr migrated
                | None -> failed := key :: !failed);
                transfer (key + 1))
          end)
  in
  (* Lock phase: take every key's exclusive lock, in order, quiescing all
     clients before any data moves. *)
  let rec lock key =
    if key = key_space then transfer 0
    else
      Lock_manager.acquire locks ~key ~mode:Lock_manager.Exclusive ~owner
        (fun () -> lock (key + 1))
  in
  lock 0
