module Engine = Dsim.Engine
module Network = Dsim.Network

type config = { rpc : Quorum_rpc.config; lock_timeout : float }

let default_config = { rpc = Quorum_rpc.default_config; lock_timeout = 200.0 }

type manager = {
  rpcs : Quorum_rpc.t array;  (* one endpoint per shard *)
  route : int -> int;  (* key -> index into rpcs *)
  atomic : bool;  (* false = per-shard legs commit independently *)
  locks : Lock_manager.t;
  lock_timeout : float;
  engine : Engine.t;
  obs : Obs.t option;
  mutable committed : int;
  mutable aborted : int;
}

(* The primary endpoint: site identity, span site and version sid.  All
   endpoints of a manager share one client site, so any of them serves. *)
let primary mgr = mgr.rpcs.(0)
let rpc_for mgr key = mgr.rpcs.(mgr.route key)

let create_sharded_manager ~site ~endpoints ~route ~locks ?(atomic = true)
    ?view ?obs ?(config = default_config) () =
  if Array.length endpoints = 0 then
    invalid_arg "Txn.create_sharded_manager: need at least one endpoint";
  let rpcs =
    Array.map
      (fun (net, proto) ->
        Quorum_rpc.create ~site ~net ~proto ?view ?obs ~config:config.rpc ())
      endpoints
  in
  {
    rpcs;
    route;
    atomic;
    locks;
    lock_timeout = config.lock_timeout;
    engine = Network.engine (fst endpoints.(0));
    obs;
    committed = 0;
    aborted = 0;
  }

let create_manager ~site ~net ~proto ~locks ?view ?obs ?config () =
  create_sharded_manager ~site ~endpoints:[| (net, proto) |]
    ~route:(fun _ -> 0)
    ~locks ?view ?obs ?config ()

let committed mgr = mgr.committed
let aborted mgr = mgr.aborted

(* --- transactions -------------------------------------------------------- *)

type outcome = Committed | Aborted of string

type state = Active | Committing | Done of outcome

type t = {
  mgr : manager;
  owner : int;
  span : Obs.Span.t option;
  mutable state : state;
  read_cache : (int, string) Hashtbl.t;
  write_buf : (int, string) Hashtbl.t;
  mutable held : (int * Lock_manager.mode) list;
}

let txn_counter = ref 0

let begin_txn mgr =
  incr txn_counter;
  {
    mgr;
    owner = (!txn_counter * 1_000_003) + Quorum_rpc.site (primary mgr);
    span =
      (match mgr.obs with
      | None -> None
      | Some obs ->
        Some (Obs.span obs ~op:"txn" ~site:(Quorum_rpc.site (primary mgr)) ()));
    state = Active;
    read_cache = Hashtbl.create 8;
    write_buf = Hashtbl.create 8;
    held = [];
  }

(* Phase markers on the transaction's own span: the quorum list carries the
   write-key set (commit is a cross-key barrier, not a single quorum). *)
let ophase t ~kind ~quorum =
  match (t.mgr.obs, t.span) with
  | Some obs, Some sp -> Obs.phase obs sp ~kind ~quorum ()
  | _ -> ()

let is_finished t = match t.state with Done _ -> true | _ -> false

let held_mode t key = List.assoc_opt key t.held

let release_all t =
  List.iter
    (fun (key, _) -> Lock_manager.release t.mgr.locks ~key ~owner:t.owner)
    t.held;
  t.held <- []

let finish t outcome =
  release_all t;
  t.state <- Done outcome;
  (match (t.mgr.obs, t.span) with
  | Some obs, Some sp ->
    Obs.finish obs sp
      ~outcome:
        (match outcome with
        | Committed -> Obs.Span.Ok
        | Aborted reason -> Obs.Span.Failed reason)
  | _ -> ());
  match outcome with
  | Committed -> t.mgr.committed <- t.mgr.committed + 1
  | Aborted _ -> t.mgr.aborted <- t.mgr.aborted + 1

let abort t =
  match t.state with
  | Done _ -> ()
  | Active | Committing -> finish t (Aborted "aborted by user")

let read t ~key k =
  match t.state with
  | Done _ | Committing -> invalid_arg "Txn.read: transaction finished"
  | Active -> (
    match Hashtbl.find_opt t.write_buf key with
    | Some v -> k (Some v)  (* read-your-writes *)
    | None -> (
      match Hashtbl.find_opt t.read_cache key with
      | Some v -> k (Some v)  (* repeatable read *)
      | None ->
        let proceed () =
          Quorum_rpc.query (rpc_for t.mgr key) ~key (fun result ->
              match (t.state, result) with
              | Active, Some (_, value) ->
                Hashtbl.replace t.read_cache key value;
                k (Some value)
              | Active, None ->
                finish t (Aborted "read quorum unavailable");
                k None
              | (Done _ | Committing), _ -> k None)
        in
        if held_mode t key = None then
          Lock_manager.acquire t.mgr.locks ~key ~mode:Lock_manager.Shared
            ~owner:t.owner (fun () ->
              if t.state = Active then begin
                t.held <- (key, Lock_manager.Shared) :: t.held;
                proceed ()
              end
              else
                (* Granted after the transaction finished: give it back. *)
                Lock_manager.release t.mgr.locks ~key ~owner:t.owner)
        else proceed ()))

let write t ~key ~value =
  match t.state with
  | Done _ | Committing -> invalid_arg "Txn.write: transaction finished"
  | Active -> Hashtbl.replace t.write_buf key value

(* Commit-time exclusive lock acquisition over the sorted write keys, with
   a global deadline resolving deadlocks by abort. *)
let acquire_write_locks t keys k =
  let deadline_hit = ref false in
  let current_wait = ref None in
  Engine.schedule t.mgr.engine ~delay:t.mgr.lock_timeout (fun () ->
      if t.state = Committing && !current_wait <> None then begin
        deadline_hit := true;
        (match !current_wait with
        | Some key -> ignore (Lock_manager.cancel t.mgr.locks ~key ~owner:t.owner)
        | None -> ());
        k (Error "lock timeout (possible deadlock)")
      end);
  let rec next = function
    | [] ->
      current_wait := None;
      if not !deadline_hit then k (Ok ())
    | key :: rest -> (
      if !deadline_hit then ()
      else begin
        match held_mode t key with
        | Some Lock_manager.Exclusive -> next rest
        | Some Lock_manager.Shared ->
          current_wait := Some key;
          let accepted =
            Lock_manager.try_upgrade t.mgr.locks ~key ~owner:t.owner (fun () ->
                if not !deadline_hit then begin
                  t.held <-
                    (key, Lock_manager.Exclusive) :: List.remove_assoc key t.held;
                  current_wait := None;
                  next rest
                end)
          in
          if not accepted then begin
            current_wait := None;
            k (Error "upgrade conflict")
          end
        | None ->
          current_wait := Some key;
          Lock_manager.acquire t.mgr.locks ~key ~mode:Lock_manager.Exclusive
            ~owner:t.owner (fun () ->
              if not !deadline_hit then begin
                t.held <- (key, Lock_manager.Exclusive) :: t.held;
                current_wait := None;
                next rest
              end
              else
                (* Granted in the same instant the deadline fired: the
                   cancel missed, so release to avoid a leak. *)
                Lock_manager.release t.mgr.locks ~key ~owner:t.owner)
      end)
  in
  next keys

(* Gather bumped version timestamps for every written key (in parallel). *)
let version_all t keys k =
  let results = Hashtbl.create 8 in
  let remaining = ref (List.length keys) in
  let failed = ref false in
  let site = Quorum_rpc.site (primary t.mgr) in
  List.iter
    (fun key ->
      Quorum_rpc.query (rpc_for t.mgr key) ~key (fun r ->
          (match r with
          | Some (ts, _) ->
            Hashtbl.replace results key
              (Timestamp.make ~version:(ts.Timestamp.version + 1) ~sid:site)
          | None -> failed := true);
          decr remaining;
          if !remaining = 0 then if !failed then k None else k (Some results)))
    keys

(* Prepare every key on its own write quorum (in parallel); on any failure
   roll back whatever was staged. *)
let prepare_all t keys versions k =
  let staged = Hashtbl.create 8 in
  let remaining = ref (List.length keys) in
  let failed = ref false in
  List.iter
    (fun key ->
      let ts = Hashtbl.find versions key in
      let value = Hashtbl.find t.write_buf key in
      Quorum_rpc.prepare (rpc_for t.mgr key) ~key ~ts ~value (fun r ->
          (match r with
          | Some (op, members) -> Hashtbl.replace staged key (op, members)
          | None -> failed := true);
          decr remaining;
          if !remaining = 0 then
            if !failed then begin
              Hashtbl.iter
                (fun key (op, members) ->
                  Quorum_rpc.abort_staged (rpc_for t.mgr key) ~op ~members)
                staged;
              k None
            end
            else k (Some staged)))
    keys

(* Commit every staged key; all keys are already decided, so failures here
   only mean uncertain delivery. *)
let commit_all t staged k =
  let entries = Hashtbl.fold (fun key v acc -> (key, v) :: acc) staged [] in
  let remaining = ref (List.length entries) in
  let failed = ref false in
  List.iter
    (fun (key, (op, members)) ->
      Quorum_rpc.commit_staged (rpc_for t.mgr key) ~op ~members (fun ok ->
          if not ok then failed := true;
          decr remaining;
          if !remaining = 0 then k (not !failed)))
    entries

let commit t k =
  match t.state with
  | Done _ | Committing -> invalid_arg "Txn.commit: transaction finished"
  | Active ->
    let keys =
      List.sort Int.compare
        (Hashtbl.fold (fun key _ acc -> key :: acc) t.write_buf [])
    in
    if keys = [] then begin
      finish t Committed;
      k Committed
    end
    else begin
      t.state <- Committing;
      ophase t ~kind:Obs.Span.Lock ~quorum:keys;
      acquire_write_locks t keys (function
        | Error reason ->
          finish t (Aborted reason);
          k (Aborted reason)
        | Ok () ->
          ophase t ~kind:Obs.Span.Query ~quorum:keys;
          version_all t keys (function
            | None ->
              finish t (Aborted "version phase failed");
              k (Aborted "version phase failed")
            | Some versions ->
              ophase t ~kind:Obs.Span.Prepare ~quorum:keys;
              if t.mgr.atomic then
                prepare_all t keys versions (function
                  | None ->
                    finish t (Aborted "prepare phase failed");
                    k (Aborted "prepare phase failed")
                  | Some staged ->
                    ophase t ~kind:Obs.Span.Commit ~quorum:keys;
                    commit_all t staged (fun ok ->
                        if ok then begin
                          finish t Committed;
                          k Committed
                        end
                        else begin
                          let reason = "commit acks incomplete (outcome uncertain)" in
                          finish t (Aborted reason);
                          k (Aborted reason)
                        end))
              else begin
                (* Negative control: every shard's leg prepares and
                   commits independently — the cross-shard all-prepared
                   barrier is gone.  A shard that cannot assemble a
                   quorum aborts only its own leg, so a transaction
                   spanning a crashed shard and a healthy one applies
                   partially: exactly the phantom the conservation
                   checker must catch. *)
                ophase t ~kind:Obs.Span.Commit ~quorum:keys;
                let groups = Hashtbl.create 4 in
                List.iter
                  (fun key ->
                    let s = t.mgr.route key in
                    let prev =
                      try Hashtbl.find groups s with Not_found -> []
                    in
                    Hashtbl.replace groups s (key :: prev))
                  keys;
                let legs =
                  List.sort
                    (fun (a, _) (b, _) -> Int.compare a b)
                    (Hashtbl.fold
                       (fun s ks acc -> (s, List.rev ks) :: acc)
                       groups [])
                in
                let total = List.length legs in
                let done_legs = ref 0 in
                let applied = ref 0 in
                let uncertain = ref false in
                let leg_finished ~applied_leg ~unc =
                  if applied_leg then incr applied;
                  if unc then uncertain := true;
                  incr done_legs;
                  if !done_legs = total then
                    if !applied = total && not !uncertain then begin
                      finish t Committed;
                      k Committed
                    end
                    else begin
                      let reason =
                        if !uncertain then
                          "commit acks incomplete (outcome uncertain)"
                        else
                          Printf.sprintf
                            "non-atomic commit: %d/%d shard legs applied"
                            !applied total
                      in
                      finish t (Aborted reason);
                      k (Aborted reason)
                    end
                in
                List.iter
                  (fun (_shard, gkeys) ->
                    prepare_all t gkeys versions (function
                      | None -> leg_finished ~applied_leg:false ~unc:false
                      | Some staged ->
                        commit_all t staged (fun ok ->
                            leg_finished ~applied_leg:true ~unc:(not ok))))
                  legs
              end))
    end
