(** Scenario runner for the transaction layer: closed-loop clients execute
    read-modify-write {e increment transactions} over a small key space,
    with crash/recovery and message-loss injection.

    Every transaction reads [keys_per_txn] distinct counters and writes
    each back incremented by one.  Strict 2PL makes a committed increment
    add exactly one, so the scenario carries a checkable invariant:

    {v  Σ committed increments ≤ Σ final counter values
                                ≤ Σ committed + Σ uncertain increments  v}

    where {e uncertain} counts transactions whose commit acks never all
    arrived (the classic 2PC in-doubt window: their effects may or may not
    be visible).  [run] evaluates the invariant by reading every counter
    through a read quorum after healing all replicas. *)

type scenario = {
  proto : Quorum.Protocol.t;
  n_clients : int;
  txns_per_client : int;
  keys_per_txn : int;
  key_space : int;
  latency : Dsim.Latency.t;
  loss_rate : float;
  think_time : float;
  failures : Dsim.Failure.entry list;
  seed : int;
  config : Txn.config;
  horizon : float;
}

val default_scenario : proto:Quorum.Protocol.t -> scenario
(** 3 clients × 30 transactions, 2 keys/txn over 6 keys, no failures. *)

type report = {
  committed : int;
  aborted : int;
  uncertain : int;  (** aborted with in-doubt commit acks *)
  committed_increments : int;
  uncertain_increments : int;
  observed_total : int;  (** Σ final counter values *)
  conservation_ok : bool;
  duration : float;
}

val run : ?obs:Obs.t -> scenario -> report
(** With [obs], the harness points its clock at the engine, mirrors the
    network counters, and traces every transaction ([txn] spans) and the
    RPC operations underneath ([rpc.read] / [rpc.write]).  The final
    tallying quorum reads run on an uninstrumented endpoint so span
    accounting covers exactly the workload's operations. *)

val pp_report : Format.formatter -> report -> unit
