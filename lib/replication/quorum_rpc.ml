module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Engine = Dsim.Engine
module Network = Dsim.Network
module Protocol = Quorum.Protocol

type config = {
  timeout : float;
  max_retries : int;
  adaptive_timeout : bool;
  deadline : float;
  backoff : Detect.Backoff.policy;
  rto : Detect.Rto.config;
}

let default_config =
  {
    timeout = 25.0;
    max_retries = 4;
    adaptive_timeout = false;
    deadline = Float.infinity;
    backoff = Detect.Backoff.default;
    rto = Detect.Rto.default_config;
  }

type phase = Query | Prepare_phase | Commit_phase

type gather = {
  phase : phase;
  started : float;  (** phase start, for RTT samples *)
  members : int array;  (** phase members; replied entries marked -1 *)
  mutable waiting_n : int;
  mutable max_ts : Timestamp.t;
  mutable max_value : string;
  complete : unit -> unit;
  failed : unit -> unit;
      (** a member refused ([Prepare_nack]): fail the phase now instead of
          waiting out the timeout *)
}

(* The members of [g] still waiting, as a list (cold paths only: blame
   assignment after a timeout, commit resends). *)
let gather_waiting g =
  let rec go i acc =
    if i < 0 then acc
    else
      let m = g.members.(i) in
      go (i - 1) (if m >= 0 then m :: acc else acc)
  in
  go (Array.length g.members - 1) []

type t = {
  site : int;
  net : Message.t Network.t;
  mutable proto : Protocol.t;
  config : config;
  obs : Obs.t option;
  view : Detect.View.t;
  budget : Detect.Budget.t option;
  breaker : Detect.Breaker.t option;
  rto : Detect.Rto.t;
  rng : Rng.t;
  mutable next_seq : int;
  pending : (int, gather) Hashtbl.t;
  incs : (int, int) Hashtbl.t;  (** site -> newest incarnation seen *)
  prep_incs : (int, (int * int) list) Hashtbl.t;
      (** op -> (member, incarnation it acked the prepare under) *)
  mutable stale_inc_rejections : int;
  mutable busy_received : int;
  mutable retries_suppressed : int;
}

let engine t = Network.engine t.net
let site t = t.site
let protocol t = t.proto
let view t = t.view

let set_protocol t proto =
  if Protocol.universe_size proto <> Protocol.universe_size t.proto then
    invalid_arg "Quorum_rpc.set_protocol: replica universe changed";
  t.proto <- proto

let fresh_op t =
  let id = (t.next_seq * Network.size t.net) + t.site in
  t.next_seq <- t.next_seq + 1;
  id

(* The breaker removes overloaded-but-alive sites from quorum assembly. *)
let current_view t =
  let view = t.view.Detect.View.alive () in
  match t.breaker with
  | None -> view
  | Some b -> Detect.Breaker.filter b view

(* Per-phase response deadline: fixed, or derived from the observed RTT
   quantile once enough samples exist. *)
let phase_timeout t =
  if t.config.adaptive_timeout then Detect.Rto.timeout t.rto
  else t.config.timeout

let observed_timeout t = phase_timeout t
let stale_incarnation_rejections t = t.stale_inc_rejections
let busy_received t = t.busy_received
let retries_suppressed t = t.retries_suppressed

(* --- observability hooks (single match, no work, when [obs = None]).
   Spans are threaded explicitly: [write] owns one span whose phases cover
   its version query, prepare and commit; the public phase primitives run
   span-less unless a caller supplies one. *)

let obs_kind = function
  | Query -> Obs.Span.Query
  | Prepare_phase -> Obs.Span.Prepare
  | Commit_phase -> Obs.Span.Commit

let ospan t ~op ~key =
  match t.obs with
  | None -> None
  | Some obs -> Some (Obs.span obs ~op ~site:t.site ~key ())

let ophase t span ~kind ~quorum =
  match (t.obs, span) with
  | Some obs, Some sp -> Obs.phase obs sp ~kind ~quorum ()
  | _ -> ()

let oend t span ~timed_out =
  match (t.obs, span) with
  | Some obs, Some sp -> Obs.end_phase obs sp ~timed_out ()
  | _ -> ()

let oretry t span ~backoff =
  match (t.obs, span) with
  | Some obs, Some sp -> Obs.retry obs sp ~backoff ()
  | _ -> ()

let ofinish t span result =
  match (t.obs, span) with
  | Some obs, Some sp ->
    let outcome =
      if result then Obs.Span.Ok else Obs.Span.Failed "gave_up"
    in
    Obs.finish obs sp ~outcome
  | _ -> ()

let ocount t name =
  match t.obs with
  | None -> ()
  | Some obs -> Obs.Metrics.incr (Obs.Metrics.counter (Obs.metrics obs) name)

let breaker_failure t site =
  match t.breaker with
  | None -> ()
  | Some b ->
    if Detect.Breaker.record_failure b site then ocount t "rpc.breaker.trips"

let breaker_ok t site =
  match t.breaker with None -> () | Some b -> Detect.Breaker.record_ok b site

let budget_attempt t =
  match t.budget with None -> () | Some b -> Detect.Budget.on_attempt b

let member_inc t ~op m =
  match Hashtbl.find_opt t.prep_incs op with
  | None -> 0
  | Some l -> ( match List.assoc_opt m l with Some i -> i | None -> 0)

(* Drop replies stamped with an incarnation older than the newest seen from
   their sender: pre-crash evidence must not complete a post-crash quorum. *)
let stale_incarnation t ~src msg =
  match Message.incarnation msg with
  | None -> false
  | Some inc ->
    let newest =
      match Hashtbl.find_opt t.incs src with Some i -> i | None -> 0
    in
    if inc > newest then Hashtbl.replace t.incs src inc;
    if inc < newest then begin
      t.stale_inc_rejections <- t.stale_inc_rejections + 1;
      ocount t "rpc.stale_inc.rejected";
      true
    end
    else false

let handle t ~src msg =
  (* Any message is proof of life for its sender (replicas only: detector
     views cover the replica universe, not client sites). *)
  if src >= 0 && src < Protocol.universe_size t.proto then
    t.view.Detect.View.observe src;
  if not (stale_incarnation t ~src msg) then begin
    let op = Message.op_id msg in
    match Hashtbl.find_opt t.pending op with
    | None -> ()
    | Some g -> begin
      match (msg : Message.t) with
      | Prepare_nack _ ->
        (* A member refuses (recovering, or the commit's incarnation went
           stale): the phase cannot complete — fail it immediately. *)
        Hashtbl.remove t.pending op;
        g.failed ()
      | Busy _ when g.phase <> Commit_phase ->
        (* An overloaded member shed us: same fast failure as a refusal,
           plus breaker evidence.  Commit gathers ignore Busy — commits
           ride the replica's priority lane. *)
        t.busy_received <- t.busy_received + 1;
        ocount t "rpc.busy_received";
        breaker_failure t src;
        Hashtbl.remove t.pending op;
        g.failed ()
      | _ ->
        let expected =
          match (msg : Message.t) with
          | Read_reply { version; sid; value; _ } ->
            if g.phase = Query then begin
              if
                Timestamp.newer_flat version sid g.max_ts.Timestamp.version
                  g.max_ts.Timestamp.sid
              then begin
                g.max_ts <- Timestamp.make ~version ~sid;
                g.max_value <- value
              end;
              true
            end
            else false
          | Prepare_ack { inc; _ } ->
            if g.phase = Prepare_phase then begin
              let l =
                match Hashtbl.find_opt t.prep_incs op with
                | Some l -> l
                | None -> []
              in
              Hashtbl.replace t.prep_incs op ((src, inc) :: l);
              true
            end
            else false
          | Commit_ack { inc; _ } ->
            g.phase = Commit_phase && inc = member_inc t ~op src
          | Read_request _ | Prepare _ | Prepare_nack _ | Busy _ | Commit _
          | Abort _ | Repair _ | Read_batch _ | Read_batch_reply _
          | Prepare_batch _ | Ping _ | Pong _ | Provision_request _
          | Snapshot_chunk _ | Chunk_ack _ | Tail_request _ | Wal_tail _ ->
            false
        in
        if expected then begin
          let rec mark i =
            if i = Array.length g.members then false
            else if g.members.(i) = src then begin
              g.members.(i) <- -1;
              g.waiting_n <- g.waiting_n - 1;
              true
            end
            else mark (i + 1)
          in
          if mark 0 then begin
            Detect.Rto.observe t.rto (Engine.now (engine t) -. g.started);
            breaker_ok t src
          end;
          if g.waiting_n = 0 then begin
            Hashtbl.remove t.pending op;
            g.complete ()
          end
        end
    end
  end

let create ~site ~net ~proto ?view ?budget ?breaker ?obs
    ?(config = default_config) () =
  let view =
    match view with
    | Some v -> v
    | None ->
      Detect.View.oracle ~net ~self:site ~n:(Protocol.universe_size proto)
  in
  let t =
    {
      site;
      net;
      proto;
      config;
      obs;
      view;
      budget;
      breaker;
      rto = Detect.Rto.create ~config:config.rto ();
      rng = Rng.split (Engine.rng (Network.engine net));
      next_seq = 0;
      pending = Hashtbl.create 16;
      incs = Hashtbl.create 16;
      prep_incs = Hashtbl.create 16;
      stale_inc_rejections = 0;
      busy_received = 0;
      retries_suppressed = 0;
    }
  in
  Network.set_handler net ~site (fun ~src msg -> handle t ~src msg);
  t

(* One gather phase over [members]: send [mk_msg op] to each, then either
   [on_success op gather] once every member answered or [on_timeout] after
   the deadline. *)
let run_phase t ~span ~phase ~members ~mk_msg ~on_success ~on_timeout =
  let op = fresh_op t in
  let marr = Array.of_list members in
  let rec g =
    {
      phase;
      started = Engine.now (engine t);
      members = marr;
      waiting_n = Array.length marr;
      max_ts = Timestamp.zero;
      max_value = "";
      complete = (fun () -> on_success op g);
      failed = (fun () -> on_timeout ());
    }
  in
  ophase t span ~kind:(obs_kind phase) ~quorum:members;
  Hashtbl.replace t.pending op g;
  Engine.schedule (engine t) ~delay:(phase_timeout t) (fun () ->
      (* Only kill our own gather: a successful prepare hands its op id on
         to the commit phase, which re-registers the same id. *)
      match Hashtbl.find_opt t.pending op with
      | Some g' when g' == g ->
        Hashtbl.remove t.pending op;
        (* The laggards missed the deadline: negative evidence for both
           the liveness view and the overload breaker. *)
        List.iter
          (fun m ->
            t.view.Detect.View.suspect m;
            breaker_failure t m)
          (gather_waiting g);
        on_timeout ()
      | _ -> ());
  let msg = mk_msg op in
  List.iter (fun m -> Network.send t.net ~src:t.site ~dst:m msg) members

(* Retry scheduling: exponential backoff with jitter, bounded by the
   per-operation deadline budget — once a retry could not even be issued
   before the deadline, fail fast instead of hammering a dead quorum. *)
let backoff t ~op_started ~attempt ?(on_retry = fun _ -> ()) retry give_up =
  let delay = Detect.Backoff.delay t.config.backoff ~rng:t.rng ~attempt in
  if Engine.now (engine t) +. delay >= op_started +. t.config.deadline then begin
    ocount t "rpc.deadline_exceeded";
    give_up ()
  end
  else if
    not (match t.budget with None -> true | Some b -> Detect.Budget.try_retry b)
  then begin
    (* Global retry budget drained: this retry would feed the storm. *)
    t.retries_suppressed <- t.retries_suppressed + 1;
    ocount t "rpc.retries_suppressed";
    give_up ()
  end
  else begin
    on_retry delay;
    Engine.schedule (engine t) ~delay retry
  end

let query_sp t ~span ~key k =
  let op_started = Engine.now (engine t) in
  let rec attempt tries =
    let attempt_no = t.config.max_retries - tries in
    let again ~timed_out () =
      oend t span ~timed_out;
      if tries > 0 then
        backoff t ~op_started ~attempt:attempt_no
          ~on_retry:(fun d -> oretry t span ~backoff:d)
          (fun () -> attempt (tries - 1))
          (fun () -> k None)
      else k None
    in
    match Protocol.read_quorum t.proto ~alive:(current_view t) ~rng:t.rng with
    | None -> again ~timed_out:false ()
    | Some quorum ->
      run_phase t ~span ~phase:Query ~members:(Bitset.elements quorum)
        ~mk_msg:(fun op -> Message.Read_request { op; key })
        ~on_success:(fun _op g ->
          oend t span ~timed_out:false;
          k (Some (g.max_ts, g.max_value)))
        ~on_timeout:(again ~timed_out:true)
  in
  attempt t.config.max_retries

let oresult_ts t span (ts : Timestamp.t) =
  match (t.obs, span) with
  | Some obs, Some sp ->
    Obs.set_result_ts obs sp ~version:ts.Timestamp.version ~sid:ts.Timestamp.sid
  | _ -> ()

let query t ?(retry = false) ~key k =
  if not retry then budget_attempt t;
  let span = ospan t ~op:"rpc.read" ~key in
  query_sp t ~span ~key (fun r ->
      (match r with Some (ts, _) -> oresult_ts t span ts | None -> ());
      ofinish t span (r <> None);
      k r)

let prepare_sp t ~span ~key ~ts ~value k =
  let op_started = Engine.now (engine t) in
  let rec attempt tries =
    let attempt_no = t.config.max_retries - tries in
    let again ~timed_out () =
      oend t span ~timed_out;
      if tries > 0 then
        backoff t ~op_started ~attempt:attempt_no
          ~on_retry:(fun d -> oretry t span ~backoff:d)
          (fun () -> attempt (tries - 1))
          (fun () -> k None)
      else k None
    in
    match Protocol.write_quorum t.proto ~alive:(current_view t) ~rng:t.rng with
    | None -> again ~timed_out:false ()
    | Some quorum ->
      let members = Bitset.elements quorum in
      run_phase t ~span ~phase:Prepare_phase ~members
        ~mk_msg:(fun op ->
          Message.Prepare
            {
              op;
              key;
              version = ts.Timestamp.version;
              sid = ts.Timestamp.sid;
              value;
            })
        ~on_success:(fun op _g ->
          oend t span ~timed_out:false;
          k (Some (op, members)))
        ~on_timeout:(again ~timed_out:true)
  in
  attempt t.config.max_retries

let prepare t ~key ~ts ~value k = prepare_sp t ~span:None ~key ~ts ~value k

let commit_staged_sp t ~span ~op ~members k =
  let done_ ok =
    Hashtbl.remove t.prep_incs op;
    oend t span ~timed_out:(not ok);
    k ok
  in
  let rec send tries ms =
    let g =
      {
        phase = Commit_phase;
        started = Engine.now (engine t);
        members = Array.of_list ms;
        waiting_n = List.length ms;
        max_ts = Timestamp.zero;
        max_value = "";
        complete = (fun () -> done_ true);
        failed =
          (fun () ->
            (* A member lost its stage to a crash: the outcome is uncertain
               (other members did commit) — report failure. *)
            Hashtbl.remove t.prep_incs op;
            oend t span ~timed_out:false;
            k false);
      }
    in
    ophase t span ~kind:Obs.Span.Commit ~quorum:ms;
    Hashtbl.replace t.pending op g;
    Engine.schedule (engine t) ~delay:(phase_timeout t) (fun () ->
        match Hashtbl.find_opt t.pending op with
        | Some g' when g' == g ->
          Hashtbl.remove t.pending op;
          let waiting = gather_waiting g in
          List.iter
            (fun m ->
              t.view.Detect.View.suspect m;
              breaker_failure t m)
            waiting;
          if tries > 0 then begin
            oretry t span ~backoff:0.0;
            send (tries - 1) waiting
          end
          else done_ false
        | _ -> ());
    List.iter
      (fun m ->
        Network.send t.net ~src:t.site ~dst:m
          (Message.Commit { op; inc = member_inc t ~op m }))
      ms
  in
  send t.config.max_retries members

let commit_staged t ~op ~members k = commit_staged_sp t ~span:None ~op ~members k

let abort_staged t ~op ~members =
  Hashtbl.remove t.prep_incs op;
  List.iter
    (fun m -> Network.send t.net ~src:t.site ~dst:m (Message.Abort { op }))
    members

let write t ?(retry = false) ~key ?ts ~value k =
  if not retry then budget_attempt t;
  let span = ospan t ~op:"rpc.write" ~key in
  let finishk r =
    (match r with Some ts -> oresult_ts t span ts | None -> ());
    ofinish t span (r <> None);
    k r
  in
  let do_write ts =
    prepare_sp t ~span ~key ~ts ~value (function
      | None -> finishk None
      | Some (op, members) ->
        commit_staged_sp t ~span ~op ~members (fun ok ->
            if ok then finishk (Some ts) else finishk None))
  in
  match ts with
  | Some ts -> do_write ts
  | None ->
    query_sp t ~span ~key (function
      | None -> finishk None
      | Some (current, _) ->
        do_write
          (Timestamp.make ~version:(current.Timestamp.version + 1) ~sid:t.site))
