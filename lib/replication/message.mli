(** Protocol messages exchanged between transaction coordinators and
    replica servers.

    A read queries every member of a read quorum and keeps the
    newest-timestamped reply.  A write first queries a read quorum for the
    highest version (piggybacked on the same read machinery), increments
    it, then runs a two-phase commit over a write quorum (§2.2: writes end
    with 2PC among participants).

    {b Flat representations.}  The hot-path messages carry timestamps as
    two unboxed [int] fields ([version], [sid]) rather than a boxed
    {!Timestamp.t}, and the coalesced envelopes carry {!Batch.t} parallel
    arrays (or a length-carrying key array) rather than lists — the
    failure-free paths construct millions of these per campaign, and the
    flat layout keeps each one to a single small block.  Use
    [Timestamp.make ~version ~sid] at the edges that need a boxed
    timestamp (WAL records, results).

    {b Incarnations.}  Replica replies carry the replica's incarnation
    number — the count of amnesia recoveries it has been through (always 0
    under the paper's fail-stop model, where nothing is ever lost).  A
    [Commit] echoes the incarnation observed in that member's
    [Prepare_ack]: the replica nacks a commit from a previous incarnation,
    because its staged write — if it ever had one — belonged to a life
    whose volatile state is gone.  Coordinators likewise drop replies from
    pre-crash incarnations.  See docs/PROTOCOL.md §10. *)

type t =
  | Read_request of { op : int; key : int }
  | Read_reply of {
      op : int;
      key : int;
      version : int;
      sid : int;
      value : string;
      inc : int;
    }
  | Prepare of { op : int; key : int; version : int; sid : int; value : string }
  | Prepare_ack of { op : int; inc : int }
  | Prepare_nack of { op : int; reason : string }
      (** refusal: the replica cannot take part right now (e.g. it is
          recovering, or the commit's incarnation is stale); the
          coordinator retries the whole attempt *)
  | Commit of { op : int; inc : int }
      (** [inc] is the incarnation this member acked the prepare under *)
  | Commit_ack of { op : int; inc : int }
  | Abort of { op : int }
  | Repair of { op : int; key : int; version : int; sid : int; value : string }
      (** read-repair: install this committed (timestamp, value) directly —
          monotone installs make it always safe *)
  | Busy of { op : int }
      (** overload nack: an admission-controlled replica shed the request
          rather than letting it rot in a saturated queue.  Distinct from
          [Prepare_nack]: the replica is healthy, just loaded — useful
          both to the retry logic (fail fast, back off) and to the circuit
          breaker (count as pushback, do not count as death) *)
  | Read_batch of { op : int; n_keys : int; keys : int array }
      (** coalesced read envelope: many keys ride one message, which the
          service-queue model counts as ONE unit of per-site work — the
          whole point of coalescing.  Only the first [n_keys] entries of
          [keys] are live (the array may be a pooled oversized buffer).
          Answered by [Read_batch_reply] with one entry per requested key
          (in key order), or refused via [Busy] when shed *)
  | Read_batch_reply of { op : int; entries : Batch.t; inc : int }
  | Prepare_batch of { op : int; writes : Batch.t }
      (** coalesced 2PC stage: the writes are staged atomically under one
          op id and later committed or aborted together by the ordinary
          [Commit]/[Abort] for that op.  Acked with [Prepare_ack], so the
          rest of the 2PC machinery (incarnation echo included) is
          unchanged *)
  | Provision_request of {
      op : int;
      from_chunk : int;
      chunk_size : int;
      key_space : int;
    }
      (** recipient → donor: start (or resume, at [from_chunk]) a chunked
          snapshot transfer.  Chunk [i] always covers keys
          [i*chunk_size, (i+1)*chunk_size) of [key_space], so chunk
          numbers keep their meaning across donor failover and recipient
          restarts — monotone installs make re-fetching a range from a
          different donor harmless.  Refused with
          [Prepare_nack "recovering"] by a donor that cannot serve *)
  | Snapshot_chunk of {
      op : int;
      chunk : int;
      n_chunks : int;
      wal_index : int;
      dinc : int;
      entries : Batch.t;
    }
      (** donor → recipient: one snapshot chunk.  [wal_index] is the
          donor's {!Wal.next_index} when the chunk was served — the cut
          stamp; the recipient keeps the {e minimum} stamp it has seen so
          the eventual tail covers every commit since the earliest cut.
          [dinc] is the donor's incarnation: a chunk whose [dinc]
          disagrees with the transfer's established one is from a broken
          (pre-restart) transfer and is fenced off *)
  | Chunk_ack of { op : int; chunk : int; chunk_size : int; key_space : int }
      (** recipient → donor: [chunk] applied and logged durably; send
          [chunk + 1].  Echoes the geometry so the donor holds no
          per-transfer state (and therefore cannot corrupt a transfer by
          crashing — the recipient's acks are the only cursor) *)
  | Tail_request of { op : int; from_index : int }
      (** recipient → donor: bulk transfer done; ship every committed WAL
          record at or after [from_index] ({!Wal.committed_since},
          boundary inclusive) *)
  | Wal_tail of { op : int; dinc : int; next_index : int; entries : Batch.t }
      (** donor → recipient: the committed tail, plus the donor's current
          [next_index] — the new cut a promotion's final fenced delta
          request starts from *)
  | Ping of { seq : int }
      (** heartbeat probe from a failure-detecting coordinator *)
  | Pong of { seq : int }  (** heartbeat answer *)

val op_id : t -> int
(** Operation id the message belongs to; −1 for [Ping]/[Pong], which
    belong to no operation. *)

val incarnation : t -> int option
(** The sender incarnation stamped on replica replies ([Read_reply],
    [Prepare_ack], [Commit_ack], [Read_batch_reply]); [None] on every
    other message. *)

val batch_size : t -> int
(** Logical operations the message carries: the batch length for the
    coalesced envelopes (an O(1) field read, not a list walk), 1 for
    everything else.  Feeds the network's [?units] accounting. *)

val pp : Format.formatter -> t -> unit
