(** Protocol messages exchanged between transaction coordinators and
    replica servers.

    A read queries every member of a read quorum and keeps the
    newest-timestamped reply.  A write first queries a read quorum for the
    highest version (piggybacked on the same read machinery), increments
    it, then runs a two-phase commit over a write quorum (§2.2: writes end
    with 2PC among participants). *)

type t =
  | Read_request of { op : int; key : int }
  | Read_reply of { op : int; key : int; ts : Timestamp.t; value : string }
  | Prepare of { op : int; key : int; ts : Timestamp.t; value : string }
  | Prepare_ack of { op : int }
  | Prepare_nack of { op : int; reason : string }
  | Commit of { op : int }
  | Commit_ack of { op : int }
  | Abort of { op : int }
  | Repair of { op : int; key : int; ts : Timestamp.t; value : string }
      (** read-repair: install this committed (timestamp, value) directly —
          monotone installs make it always safe *)
  | Ping of { seq : int }
      (** heartbeat probe from a failure-detecting coordinator *)
  | Pong of { seq : int }  (** heartbeat answer *)

val op_id : t -> int
(** Operation id the message belongs to; −1 for [Ping]/[Pong], which
    belong to no operation. *)

val pp : Format.formatter -> t -> unit
