(** Multi-key transactions (§2.2): "users interact with sites by means of
    transactions which are partially ordered sets of read and write
    operations … if a transaction contains write operations, a
    2-phase-commit protocol at the end of the transaction is executed".

    Concurrency control is strict two-phase locking against the
    centralized {!Lock_manager}: reads take shared locks as they execute,
    writes are buffered and take exclusive locks (sorted by key, with
    shared→exclusive upgrades) when {!commit} starts; all locks are held
    to the end.  Commit then runs, per written key, a version-phase read
    quorum and a prepare on a write quorum — and only after {e every} key
    is prepared sends the commits, so the transaction is atomic across
    keys.  Any failure before that point aborts all staged writes.

    Deadlocks (cross-key lock cycles) are resolved by a lock-acquisition
    timeout that aborts the transaction; upgrade-upgrade conflicts abort
    immediately. *)

type manager

type config = {
  rpc : Quorum_rpc.config;
      (** per-phase deadlines, retry budget, backoff and deadline policy
          of the underlying quorum RPC endpoint *)
  lock_timeout : float;  (** deadline for commit-time lock acquisition *)
}

val default_config : config

val create_manager :
  site:int ->
  net:Message.t Dsim.Network.t ->
  proto:Quorum.Protocol.t ->
  locks:Lock_manager.t ->
  ?view:Detect.View.t ->
  ?obs:Obs.t ->
  ?config:config ->
  unit ->
  manager
(** One manager per client site; it installs the site's message handler
    (do not combine with a {!Coordinator} on the same site).  [view] is
    the failure-detector view quorums are assembled from; the ground-truth
    oracle when omitted.  With [obs], every transaction is traced as a
    [txn] span whose lock/query/prepare/commit phases mark the commit
    barriers (their quorum lists carry the write-key set), and the
    underlying RPC endpoint is instrumented too. *)

val create_sharded_manager :
  site:int ->
  endpoints:(Message.t Dsim.Network.t * Quorum.Protocol.t) array ->
  route:(int -> int) ->
  locks:Lock_manager.t ->
  ?atomic:bool ->
  ?view:Detect.View.t ->
  ?obs:Obs.t ->
  ?config:config ->
  unit ->
  manager
(** A manager spanning several shard instances: one quorum-RPC endpoint
    per shard (each [(net, proto)] pair is a shard's network and
    protocol; all endpoints use the same client [site]), with [route]
    mapping a key to its endpoint index.  Commit keeps the cross-key
    all-prepared barrier, so a transaction is atomic {e across shards}:
    no shard's leg commits until every key on every shard is staged.

    [atomic:false] is the negative control: each shard's prepare/commit
    leg runs independently with no cross-shard barrier, so a transaction
    spanning an unavailable shard and a healthy one applies partially
    (the outcome is [Aborted] but some legs persist — phantom
    increments a conservation checker must flag).  Single-endpoint
    managers from {!create_manager} are unaffected: with one shard both
    modes coincide with the unsharded commit. *)

type t
(** An open transaction. *)

type outcome = Committed | Aborted of string

val begin_txn : manager -> t

val read : t -> key:int -> (string option -> unit) -> unit
(** Quorum read under a shared lock.  Reads-your-writes: a key this
    transaction has written returns the buffered value; a key already
    read returns the cached value (repeatable read).  [None] means the
    quorum could not be assembled — the transaction is aborted. *)

val write : t -> key:int -> value:string -> unit
(** Buffers the write; all network work happens at commit. *)

val commit : t -> (outcome -> unit) -> unit
(** Runs 2PL lock acquisition + cross-key two-phase commit.  The callback
    receives [Committed] or [Aborted reason]; locks are released either
    way. *)

val abort : t -> unit
(** Drops buffered writes and releases locks.  No-op if finished. *)

val is_finished : t -> bool

(** {2 Metrics} *)

val committed : manager -> int
val aborted : manager -> int
