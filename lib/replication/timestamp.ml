type t = { version : int; sid : int }

(* Any real write has version >= 1, so [zero] is older than all of them
   regardless of its sid field. *)
let zero = { version = 0; sid = 0 }

let make ~version ~sid =
  if version < 0 then invalid_arg "Timestamp.make: negative version";
  { version; sid }

let newer_than a b =
  a.version > b.version || (a.version = b.version && a.sid < b.sid)

let newer_flat av asid bv bsid = av > bv || (av = bv && asid < bsid)

let compare a b =
  if newer_than a b then 1 else if newer_than b a then -1 else 0

let max a b = if newer_than b a then b else a
let equal a b = a.version = b.version && a.sid = b.sid
let pp ppf t = Format.fprintf ppf "v%d@@%d" t.version t.sid
