(** End-to-end simulation scenarios: clients driving a replica control
    protocol over the simulated network, with failure injection and a
    built-in safety checker.

    The safety property monitored is one-copy read freshness: a read that
    {e starts} after a write to the same key {e completed successfully}
    must return a timestamp at least as new as that write's.  With per-key
    locking and intersecting quorums this must never fire; the counter is
    reported so fault-injection tests can assert it stays zero. *)

type detector_mode =
  | Oracle
      (** the coordinator's config-selected view: ground truth by default,
          or the timeout-suspicion ablation when its [oracle_view] is
          off *)
  | Heartbeat of Detect.Heartbeat.config
      (** one φ-accrual heartbeat monitor per client, pinging every
          replica; quorums are assembled from its believed-alive view and
          the oracle is never consulted *)

type burst = {
  burst_at : float;  (** when the flash crowd arrives (after warmup) *)
  burst_clients : int;
  burst_ops : int;
  burst_think : float;  (** mean think time of burst clients (small =
                            aggressive) *)
}
(** A flash crowd: [burst_clients] extra clients, each issuing
    [burst_ops] operations, joining at [burst_at]. *)

type overload = {
  queue_capacity : int;
      (** bound on every replica's ingress queue (0 = unbounded) *)
  service_time : float;
      (** per-message processing cost at every replica — what makes
          saturation possible *)
  slow_sites : (int * float) list;
      (** per-site service-time overrides (the one-slow-replica cell) *)
  shed_watermark : int;
      (** replica admission watermark ({!Replica.admission}); 0 = off *)
  retry_budget : Detect.Budget.config option;
      (** when set, one shared budget gates every coordinator's retries *)
  breaker : Detect.Breaker.config option;
      (** when set, one shared per-site breaker steers quorum assembly *)
  burst : burst option;
}
(** Overload model for a scenario.  [None] in {!scenario.overload} keeps
    every run byte-identical to the pre-overload harness. *)

val overload_defaults : overload
(** All defenses off, no service cost, no burst — override fields from
    here. *)

type batching = {
  batch_size : int;
      (** client ops per batch window (>= 1); a window becomes one
          {!Coordinator.read_batch} plus one {!Coordinator.write_batch} *)
  group_commit : bool;
      (** replicas WAL one batch under a single durability point
          ({!Replica.create}'s [group_commit]) *)
  pipeline : int;
      (** outstanding windows per client (>= 1) — pipelined tree reads:
          the next window is issued without waiting for the previous one *)
}
(** Client-side batching.  [None] in {!scenario.batching} keeps the
    one-op-at-a-time client loop, byte-identical to before; and
    [batch_size = 1, pipeline = 1] draws the client RNG in exactly the
    unbatched order (think time is drawn after each window completes), so
    it too is byte-identical — the determinism control for the batching
    layer. *)

type scenario = {
  proto : Quorum.Protocol.t;
  n_clients : int;
  ops_per_client : int;
  read_fraction : float;
  key_space : int;
  zipf_theta : float;
  latency : Dsim.Latency.t;
  loss_rate : float;
  think_time : float;  (** mean exponential delay between a client's ops *)
  failures : Dsim.Failure.entry list;
  seed : int;
  use_locks : bool;
  coordinator : Coordinator.config;
  detector : detector_mode;
  horizon : float;  (** hard stop for the simulation clock *)
  warmup : float;
      (** virtual time before clients issue their first operation — lets
          failure schedules at t=0 settle first *)
  crash_mode : Dsim.Network.crash_mode;
      (** what a site crash destroys: [Fail_stop] (default, the paper's
          model — memory survives) or [Amnesia] (volatile state is lost;
          replicas get a {!Wal} and a rejoin state machine) *)
  wal : Wal.policy;
      (** stable-storage policy for amnesia replicas (default
          [Sync_on_commit]); ignored under [Fail_stop] *)
  catch_up : bool;
      (** run quorum catch-up after WAL replay before serving again
          (default [true]); disabling it is the negative control that
          makes amnesia observably unsafe *)
  check_consistency : bool;
      (** collect every operation span in memory and report them for the
          trace-driven consistency checker (default [false]) *)
  overload : overload option;
      (** bounded replica queues, load shedding, retry budget, breaker and
          flash-crowd injection (default [None]: none of it exists) *)
  batching : batching option;
      (** windowed batched clients, WAL group commit and pipelining
          (default [None]: the classic one-op loop) *)
}

val default_scenario : proto:Quorum.Protocol.t -> scenario
(** 4 clients × 50 ops, 50% reads, 8 keys, uniform keys, exponential(1)
    latency, no loss, no failures, locks on, oracle detector, horizon
    100000. *)

type report = {
  duration : float;  (** virtual time at completion *)
  reads_ok : int;
  reads_failed : int;
  writes_ok : int;
  writes_failed : int;
  retries : int;
  deadline_exceeded : int;  (** operations that ran out of deadline budget *)
  safety_violations : int;
  read_latency : Dsutil.Stats.t;
  write_latency : Dsutil.Stats.t;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  heartbeat_pings : int;  (** probes sent by heartbeat monitors (0 under
                              the oracle detector) *)
  replica_reads_served : int array;
  replica_prepares_seen : int array;
  replica_writes_applied : int array;
  stale_incarnation_rejections : int;
      (** replies coordinators dropped for carrying a pre-crash
          incarnation *)
  replica_incarnations : int array;  (** amnesia recoveries per replica *)
  catchup_runs : int;  (** completed rejoin catch-ups, summed *)
  catchup_keys_installed : int;  (** keys freshened by catch-up reads *)
  catchup_abandoned : int;  (** catch-ups that ran out of retries *)
  stale_commits_nacked : int;  (** commits replicas refused as stale *)
  wal_records_replayed : int;
  wal_records_lost : int;  (** records destroyed by amnesia crashes *)
  replicas_recovering : int;  (** replicas still not serving at the end *)
  spans : Obs.Span.t list;
      (** every operation span, in close order — only collected when
          [check_consistency] is set (else empty); feed to
          [Eval.Consistency.check] *)
  replica_sheds : int;  (** client requests answered [Busy], summed *)
  busy_received : int;  (** [Busy] nacks coordinators acted on *)
  retries_suppressed : int;  (** retries refused by the shared budget *)
  overload_drops : int;  (** messages turned away by full replica queues *)
  breaker_trips : int;  (** shared circuit-breaker trips (0 without one) *)
  queue_peak : int;  (** deepest replica ingress queue seen in the run *)
  completions : float array;
      (** virtual completion time of every successful operation, in
          completion order — the raw material for goodput-over-time
          windows *)
  batches : int;
      (** multi-key batches coordinators executed (0 when batching is off
          or every window degenerated to one op) *)
  coalesced_ops : int;
      (** per-op messages saved by multi-op envelopes
          ({!Dsim.Network.counters.coalesced}) *)
  wal_syncs : int;
      (** synchronous WAL forces across all replicas; under group commit a
          whole batch counts one *)
}

val run :
  ?obs:Obs.t ->
  ?read_probe:(key:int -> Coordinator.read_result -> unit) ->
  scenario ->
  report
(** With [obs], the harness points its clock at the engine's virtual time,
    mirrors the network counters into its registry, and hands it to every
    client coordinator, so spans and phase-latency histograms cover the
    whole run.  Attaching [obs] never perturbs the simulation: it draws no
    randomness and schedules no events.

    [read_probe] is invoked on every {e successful} unbatched read with
    the key and the returned value/timestamp, in completion order — the
    raw material for result-equivalence checks (e.g. level-pipelined vs
    level-barrier reads).  Batched clients do not invoke it.  Like [obs],
    it never perturbs the simulation. *)

val completed : report -> int
(** Successful operations: [reads_ok + writes_ok]. *)

val messages_per_op : report -> float
(** Delivered messages divided by completed operations — the measured
    communication cost (counting both request and reply legs). *)

val measured_read_load : report -> float
(** max over replicas of reads served / total successful reads: the
    empirical counterpart of the paper's system load, exact for read-only
    workloads. *)

val measured_write_load : report -> float
(** max over replicas of prepares seen / total successful writes. *)

val pp_report : Format.formatter -> report -> unit
