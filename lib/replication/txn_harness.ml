module Engine = Dsim.Engine
module Network = Dsim.Network
module Latency = Dsim.Latency
module Failure = Dsim.Failure
module Rng = Dsutil.Rng
module Protocol = Quorum.Protocol

type scenario = {
  proto : Protocol.t;
  n_clients : int;
  txns_per_client : int;
  keys_per_txn : int;
  key_space : int;
  latency : Latency.t;
  loss_rate : float;
  think_time : float;
  failures : Failure.entry list;
  seed : int;
  config : Txn.config;
  horizon : float;
}

let default_scenario ~proto =
  {
    proto;
    n_clients = 3;
    txns_per_client = 30;
    keys_per_txn = 2;
    key_space = 6;
    latency = Latency.Exponential 1.0;
    loss_rate = 0.0;
    think_time = 2.0;
    failures = [];
    seed = 42;
    config = Txn.default_config;
    horizon = 100_000.0;
  }

type report = {
  committed : int;
  aborted : int;
  uncertain : int;
  committed_increments : int;
  uncertain_increments : int;
  observed_total : int;
  conservation_ok : bool;
  duration : float;
}

let value_of v = if v = "" then 0 else int_of_string v

(* Read [count] distinct counters, then write each back + 1 and commit. *)
let increment_txn mgr ~rng ~key_space ~count k =
  let txn = Txn.begin_txn mgr in
  let keys = Array.init key_space Fun.id in
  Rng.shuffle rng keys;
  let chosen = Array.to_list (Array.sub keys 0 count) in
  let rec step = function
    | [] -> Txn.commit txn k
    | key :: rest ->
      Txn.read txn ~key (function
        | None -> k (Txn.Aborted "read failed")
        | Some v ->
          Txn.write txn ~key ~value:(string_of_int (value_of v + 1));
          step rest)
  in
  step chosen

let run ?obs scenario =
  if scenario.keys_per_txn > scenario.key_space then
    invalid_arg "Txn_harness.run: keys_per_txn exceeds key_space";
  (* Same reasoning as Harness.run: fork so concurrent runs over one
     scenario template never share quorum-plan scratch state. *)
  let proto = Protocol.fork scenario.proto in
  let n = Protocol.universe_size proto in
  let engine = Engine.create ~seed:scenario.seed () in
  let net =
    Network.create ~engine ~n:(n + scenario.n_clients + 1)
      ~latency:scenario.latency ~loss_rate:scenario.loss_rate ()
  in
  (match obs with
  | None -> ()
  | Some o ->
    Obs.set_clock o (fun () -> Engine.now engine);
    Network.attach_obs net o);
  let _replicas = Array.init n (fun site -> Replica.create ~site ~net ()) in
  let locks = Lock_manager.create ~engine in
  let committed = ref 0 and aborted = ref 0 and uncertain = ref 0 in
  let committed_increments = ref 0 and uncertain_increments = ref 0 in
  let run_client idx =
    let mgr =
      Txn.create_manager ~site:(n + idx) ~net ~proto ~locks ?obs
        ~config:scenario.config ()
    in
    let rng = Rng.split (Engine.rng engine) in
    let rec go remaining =
      if remaining > 0 then
        increment_txn mgr ~rng ~key_space:scenario.key_space
          ~count:scenario.keys_per_txn (fun outcome ->
            (match outcome with
            | Txn.Committed ->
              incr committed;
              committed_increments := !committed_increments + scenario.keys_per_txn
            | Txn.Aborted reason ->
              incr aborted;
              (* The in-doubt window: the decision was commit but not every
                 ack arrived; effects may be visible. *)
              if reason = "commit acks incomplete (outcome uncertain)" then begin
                incr uncertain;
                uncertain_increments :=
                  !uncertain_increments + scenario.keys_per_txn
              end);
            Engine.schedule engine
              ~delay:(Rng.exponential rng scenario.think_time)
              (fun () -> go (remaining - 1)))
    in
    go scenario.txns_per_client
  in
  for idx = 0 to scenario.n_clients - 1 do
    run_client idx
  done;
  Failure.apply net scenario.failures;
  Engine.run ~until:scenario.horizon engine;
  (* Heal everything and tally the counters through quorum reads. *)
  for site = 0 to n - 1 do
    Network.recover net site
  done;
  Network.heal net;
  let rpc =
    Quorum_rpc.create ~site:(n + scenario.n_clients) ~net ~proto ()
  in
  let observed = ref 0 in
  let pending = ref scenario.key_space in
  for key = 0 to scenario.key_space - 1 do
    Quorum_rpc.query rpc ~key (fun r ->
        (match r with
        | Some (_, v) -> observed := !observed + value_of v
        | None -> ());
        decr pending)
  done;
  Engine.run engine;
  assert (!pending = 0);
  let conservation_ok =
    !observed >= !committed_increments
    && !observed <= !committed_increments + !uncertain_increments
  in
  {
    committed = !committed;
    aborted = !aborted;
    uncertain = !uncertain;
    committed_increments = !committed_increments;
    uncertain_increments = !uncertain_increments;
    observed_total = !observed;
    conservation_ok;
    duration = Engine.now engine;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>transactions: %d committed, %d aborted (%d in-doubt)@,\
     increments: %d committed + %d uncertain; observed total %d@,\
     conservation: %s@]"
    r.committed r.aborted r.uncertain r.committed_increments
    r.uncertain_increments r.observed_total
    (if r.conservation_ok then "OK" else "VIOLATED")
