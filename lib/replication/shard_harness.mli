(** Sharded end-to-end scenarios: a multi-tree control plane.

    The keyspace is partitioned by a deterministic {!Arbitrary.Shard_map}
    into S independent tree instances — each with its own forked protocol
    (private plan-cache scratch), its own network (latency stream, crash
    schedule, optional per-replica service queues), its own replicas,
    stores and WALs — all multiplexed over one shared {!Dsim.Engine}.
    Clients keep one coordinator per shard and route every operation
    through the shard map at issue time; a single global lock manager and
    safety checker span all shards (keys are globally unique).

    {b S=1 is byte-identical to {!Harness.run}}: the construction order
    (network, recovery config, replicas, then per client
    coordinator + generator) reproduces the unsharded harness's RNG-split
    sequence and event schedule exactly, so every field of the aggregate
    report — and therefore its {!Eval.Batching.fingerprint} — matches the
    unsharded run.  That identity is the control gated in CI.

    {b Online resharding}: {!scenario.reconfig} schedules shard splits
    and merges as virtual-time events.  A reconfiguration fences the
    moving keys (exclusive locks, taken while routing still points at the
    source shard), copies them to the target instance by forced-timestamp
    state transfer ({!Quorum_rpc.write} with [~ts] — no new versions
    minted), atomically flips the shard map, and releases the fences.
    In-flight operations queue behind the fence; reads that started
    before the flip stay regular because the source retains its copy. *)

type reconfig_action =
  | Split of int  (** split this shard; the new id is allocated at fire time *)
  | Merge of { into : int; from_ : int }

type reconfig = { at : float; action : reconfig_action }

type scenario = {
  base : Harness.scenario;
      (** per-shard tree ([proto]) and the client workload.  [failures]
          must be empty (use [shard_failures]) and [overload] must be
          [None] (use [service_time]); [batching], [crash_mode], [wal],
          [catch_up], [check_consistency] and the detector all apply. *)
  shards : int;  (** initial shard count S (>= 1) *)
  strategy : Arbitrary.Shard_map.strategy;
  service_time : float;
      (** per-message processing cost at every replica of every shard
          (0.0 = none).  This is what makes single-tree throughput
          saturate, so shard-count scaling is measurable in virtual
          time. *)
  shard_failures : (int * Dsim.Failure.entry list) list;
      (** per-shard failure schedules, applied in list order *)
  reconfig : reconfig list;  (** online splits/merges; requires [use_locks] *)
}

val default : proto:Quorum.Protocol.t -> shards:int -> scenario
(** {!Harness.default_scenario} under hash partitioning, no service
    model, no failures, no resharding. *)

type report = {
  agg : Harness.report;
      (** the whole-system aggregate, field-compatible with the unsharded
          report (byte-identical at S=1): latencies merged, counters and
          per-replica arrays concatenated shard-major *)
  shards : int;  (** shard ids allocated (including split targets) *)
  active_shards : int list;
  per_shard_ops : int array;  (** successful ops routed to each shard *)
  per_shard_keys : int array;  (** final keys owned per shard *)
  migrated_keys : int;  (** keys copied by split/merge state transfer *)
  migration_failures : int;  (** keys whose copy exhausted its retries *)
  splits : int;
  merges : int;
  map_well_formed : bool;  (** final map invariant ({!Arbitrary.Shard_map.well_formed}) *)
  routing : int array;  (** final owner table: index = key, value = shard *)
}

val run : ?obs:Obs.t -> scenario -> report

val imbalance : report -> float * float
(** (max, mean) successful ops per active shard — the skew report.  Both
    0 when nothing completed. *)

val imbalance_ratio : report -> float
(** max/mean (1.0 when degenerate): 1.0 = perfectly balanced. *)

val throughput : report -> float
(** Completed operations per unit virtual time. *)
