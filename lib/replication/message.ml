type t =
  | Read_request of { op : int; key : int }
  | Read_reply of {
      op : int;
      key : int;
      version : int;
      sid : int;
      value : string;
      inc : int;
    }
  | Prepare of { op : int; key : int; version : int; sid : int; value : string }
  | Prepare_ack of { op : int; inc : int }
  | Prepare_nack of { op : int; reason : string }
  | Commit of { op : int; inc : int }
  | Commit_ack of { op : int; inc : int }
  | Abort of { op : int }
  | Repair of { op : int; key : int; version : int; sid : int; value : string }
      (** read-repair: install this committed (timestamp, value) directly —
          monotone installs make it always safe *)
  | Busy of { op : int }
      (** overload nack: the replica shed the request instead of queueing
          it; the coordinator should back off, not wait for a timeout *)
  | Read_batch of { op : int; n_keys : int; keys : int array }
      (** coalesced read envelope: one message, one service-queue slot,
          many keys.  The first [n_keys] entries of [keys] are live, so a
          pooled oversized buffer can ride as-is. *)
  | Read_batch_reply of { op : int; entries : Batch.t; inc : int }
  | Prepare_batch of { op : int; writes : Batch.t }
      (** coalesced 2PC stage: the batch is staged (and later committed or
          aborted) atomically under one op id; acked with [Prepare_ack] *)
  | Provision_request of {
      op : int;
      from_chunk : int;
      chunk_size : int;
      key_space : int;
    }
      (** recipient → donor: start (or resume, at [from_chunk]) a chunked
          snapshot transfer.  Chunk [i] covers keys
          [i*chunk_size .. (i+1)*chunk_size), so chunk numbers stay
          meaningful across donor failover and recipient restarts *)
  | Snapshot_chunk of {
      op : int;
      chunk : int;
      n_chunks : int;
      wal_index : int;
      dinc : int;
      entries : Batch.t;
    }
      (** donor → recipient: one snapshot chunk.  [wal_index] is the
          donor's {!Wal.next_index} when it served the chunk (the cut
          stamp; the recipient keeps the minimum it has seen), [dinc]
          the donor's incarnation — a mid-transfer donor restart changes
          it, fencing the chunks of the broken transfer *)
  | Chunk_ack of { op : int; chunk : int; chunk_size : int; key_space : int }
      (** recipient → donor: chunk applied durably, send the next one.
          Carries the geometry so the donor stays stateless *)
  | Tail_request of { op : int; from_index : int }
      (** recipient → donor: all chunks applied; ship every committed WAL
          record at or after [from_index] (boundary inclusive) *)
  | Wal_tail of { op : int; dinc : int; next_index : int; entries : Batch.t }
      (** donor → recipient: the committed tail since the requested
          index, plus the donor's current [next_index] (the new cut, for
          a later delta request) *)
  | Ping of { seq : int }
  | Pong of { seq : int }

let op_id = function
  | Read_request { op; _ }
  | Read_reply { op; _ }
  | Prepare { op; _ }
  | Prepare_ack { op; _ }
  | Prepare_nack { op; _ }
  | Commit { op; _ }
  | Commit_ack { op; _ }
  | Abort { op }
  | Repair { op; _ }
  | Busy { op }
  | Read_batch { op; _ }
  | Read_batch_reply { op; _ }
  | Prepare_batch { op; _ }
  | Provision_request { op; _ }
  | Snapshot_chunk { op; _ }
  | Chunk_ack { op; _ }
  | Tail_request { op; _ }
  | Wal_tail { op; _ } ->
    op
  | Ping _ | Pong _ -> -1  (* never matches a pending operation *)

let incarnation = function
  | Read_reply { inc; _ }
  | Prepare_ack { inc; _ }
  | Commit_ack { inc; _ }
  | Read_batch_reply { inc; _ } ->
    Some inc
  | Read_request _ | Prepare _ | Prepare_nack _ | Commit _ | Abort _
  | Repair _ | Busy _ | Read_batch _ | Prepare_batch _ | Ping _ | Pong _
  (* provisioning fences on the donor incarnation itself (the replica
     checks [dinc] against its transfer state), not via the
     coordinator's reply-fencing path *)
  | Provision_request _ | Snapshot_chunk _ | Chunk_ack _ | Tail_request _
  | Wal_tail _ ->
    None

let batch_size = function
  | Read_batch { n_keys; _ } -> n_keys
  | Read_batch_reply { entries; _ } -> Batch.length entries
  | Prepare_batch { writes; _ } -> Batch.length writes
  | Snapshot_chunk { entries; _ } | Wal_tail { entries; _ } ->
    max 1 (Batch.length entries)
  | _ -> 1

let pp ppf = function
  | Read_request { op; key } -> Format.fprintf ppf "read-req(op=%d key=%d)" op key
  | Read_reply { op; key; version; sid; _ } ->
    Format.fprintf ppf "read-reply(op=%d key=%d ts=v%d@@%d)" op key version sid
  | Prepare { op; key; version; sid; _ } ->
    Format.fprintf ppf "prepare(op=%d key=%d ts=v%d@@%d)" op key version sid
  | Prepare_ack { op; _ } -> Format.fprintf ppf "prepare-ack(op=%d)" op
  | Prepare_nack { op; reason } ->
    Format.fprintf ppf "prepare-nack(op=%d %s)" op reason
  | Commit { op; _ } -> Format.fprintf ppf "commit(op=%d)" op
  | Commit_ack { op; _ } -> Format.fprintf ppf "commit-ack(op=%d)" op
  | Abort { op } -> Format.fprintf ppf "abort(op=%d)" op
  | Repair { op; key; version; sid; _ } ->
    Format.fprintf ppf "repair(op=%d key=%d ts=v%d@@%d)" op key version sid
  | Busy { op } -> Format.fprintf ppf "busy(op=%d)" op
  | Read_batch { op; n_keys; _ } ->
    Format.fprintf ppf "read-batch(op=%d |keys|=%d)" op n_keys
  | Read_batch_reply { op; entries; _ } ->
    Format.fprintf ppf "read-batch-reply(op=%d |entries|=%d)" op
      (Batch.length entries)
  | Prepare_batch { op; writes } ->
    Format.fprintf ppf "prepare-batch(op=%d |writes|=%d)" op (Batch.length writes)
  | Provision_request { op; from_chunk; chunk_size; key_space } ->
    Format.fprintf ppf "provision-req(op=%d from=%d cs=%d ks=%d)" op from_chunk
      chunk_size key_space
  | Snapshot_chunk { op; chunk; n_chunks; wal_index; dinc; entries } ->
    Format.fprintf ppf
      "snapshot-chunk(op=%d %d/%d wal@@%d dinc=%d |entries|=%d)" op chunk
      n_chunks wal_index dinc (Batch.length entries)
  | Chunk_ack { op; chunk; _ } ->
    Format.fprintf ppf "chunk-ack(op=%d chunk=%d)" op chunk
  | Tail_request { op; from_index } ->
    Format.fprintf ppf "tail-req(op=%d from=%d)" op from_index
  | Wal_tail { op; dinc; next_index; entries } ->
    Format.fprintf ppf "wal-tail(op=%d dinc=%d next=%d |entries|=%d)" op dinc
      next_index (Batch.length entries)
  | Ping { seq } -> Format.fprintf ppf "ping(seq=%d)" seq
  | Pong { seq } -> Format.fprintf ppf "pong(seq=%d)" seq
