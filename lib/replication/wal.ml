type policy = Sync_on_commit | Sync_on_prepare | Async of float

let policy_to_string = function
  | Sync_on_commit -> "commit"
  | Sync_on_prepare -> "prepare"
  | Async lag -> Printf.sprintf "async(%g)" lag

type record =
  | Stage of { op : int; key : int; ts : Timestamp.t; value : string }
  | Commit of { op : int; key : int; ts : Timestamp.t; value : string }
  | Install of { key : int; ts : Timestamp.t; value : string }
  | Abort of { op : int }
  | Mark of { chunk : int; wal_index : int }

(* [durable_at]: virtual time from which the record survives a crash.
   [infinity] marks a record the policy never persists (a volatile stage
   under Sync_on_commit).  [index]: the record's absolute append index —
   assigned once, never reused, monotone across crashes (truncation
   discards records but never rewinds the counter), so a snapshot cut
   stamped with [next_index] names a stable point in this replica's
   history. *)
type entry = { record : record; durable_at : float; index : int }

type t = {
  policy : policy;
  now : unit -> float;
  mutable rev_log : entry list;  (* newest first *)
  mutable n : int;
  mutable lost : int;
  mutable syncs : int;
  mutable next_index : int;
}

let create ?(policy = Sync_on_commit) ~now () =
  (match policy with
  | Async lag when lag <= 0.0 ->
    invalid_arg "Wal.create: Async flush lag must be positive"
  | _ -> ());
  { policy; now; rev_log = []; n = 0; lost = 0; syncs = 0; next_index = 0 }

let policy t = t.policy
let next_index t = t.next_index

let durable_at t record =
  let now = t.now () in
  match (t.policy, record) with
  | Sync_on_commit, (Commit _ | Install _ | Mark _) -> now
  | Sync_on_commit, (Stage _ | Abort _) -> Float.infinity
  | Sync_on_prepare, _ -> now
  | Async lag, _ -> now +. lag

(* A record is synchronously forced exactly when the policy makes it
   durable the instant it is appended. *)
let forces t record =
  match (t.policy, record) with
  | Sync_on_commit, (Commit _ | Install _ | Mark _) -> true
  | Sync_on_commit, (Stage _ | Abort _) -> false
  | Sync_on_prepare, _ -> true
  | Async _, _ -> false

let push t record =
  t.rev_log <-
    { record; durable_at = durable_at t record; index = t.next_index }
    :: t.rev_log;
  t.next_index <- t.next_index + 1;
  t.n <- t.n + 1

let append t record =
  if forces t record then t.syncs <- t.syncs + 1;
  push t record

(* Group commit: the whole batch shares one durability point.  Each
   record keeps its per-policy [durable_at] (they are all stamped at the
   same virtual instant anyway), but however many of them the policy
   would force, at most ONE sync is charged — that amortization is the
   point of batching the log writes. *)
let append_batch t records =
  let any_force = List.exists (forces t) records in
  if any_force then t.syncs <- t.syncs + 1;
  List.iter (push t) records

let crash t =
  let now = t.now () in
  (* Append times are monotone, so the non-durable records form a prefix of
     the newest-first list; still filter the whole log so the volatile
     (never-durable) stages of Sync_on_commit go too.  The boundary is
     INCLUSIVE: a record whose [durable_at] equals the crash time has
     reached stable storage and survives (see wal.mli).  [next_index] is
     deliberately NOT rewound: indices of lost records are retired, never
     reissued. *)
  let survivors = List.filter (fun e -> e.durable_at <= now) t.rev_log in
  let kept = List.length survivors in
  t.lost <- t.lost + (t.n - kept);
  t.rev_log <- survivors;
  t.n <- kept

let apply_record store = function
  | Stage { op; key; ts; value } -> Store.stage_accum store ~op ~key ~ts ~value
  | Commit { op; key; ts; value } ->
    Store.abort_staged store ~op;
    ignore (Store.install store ~key ~ts ~value)
  | Install { key; ts; value } -> ignore (Store.install store ~key ~ts ~value)
  | Abort { op } -> Store.abort_staged store ~op
  | Mark _ -> ()  (* provisioning progress only; no store effect *)

let replay_from t store ~index =
  if index < 0 then invalid_arg "Wal.replay_from: negative index";
  let applied = ref 0 in
  List.iter
    (fun e ->
      if e.index >= index then begin
        apply_record store e.record;
        incr applied
      end)
    (List.rev t.rev_log);
  !applied

let replay t store = replay_from t store ~index:0

(* The committed-state tail since a snapshot cut: every Commit/Install at
   or after [index] (the record whose index equals the cut is IN the tail
   — the cut names the next index to be appended at stamp time, so
   everything from it onward post-dates the snapshot), flattened to
   (key, version, sid, value) in append order.  Stages, aborts and marks
   carry no committed state and are skipped. *)
let committed_since t ~index =
  if index < 0 then invalid_arg "Wal.committed_since: negative index";
  let b = Batch.Builder.create ~capacity:16 () in
  List.iter
    (fun e ->
      if e.index >= index then
        match e.record with
        | Commit { key; ts; value; _ } | Install { key; ts; value } ->
          Batch.Builder.push b ~key ~version:ts.Timestamp.version
            ~sid:ts.Timestamp.sid ~value
        | Stage _ | Abort _ | Mark _ -> ())
    (List.rev t.rev_log);
  Batch.Builder.snapshot b

(* Resume point of an interrupted provisioning transfer: the newest Mark
   decides.  A completion mark (chunk = -1) resets progress — marks from
   a finished transfer must not make a later rejoin skip its bulk phase. *)
let resume_state t =
  let rec scan = function
    | [] -> None
    | { record = Mark { chunk; wal_index }; _ } :: _ ->
      if chunk < 0 then None else Some (chunk + 1, wal_index)
    | _ :: rest -> scan rest
  in
  scan t.rev_log

let length t = t.n
let lost_total t = t.lost
let syncs t = t.syncs

let pp_policy ppf p = Format.pp_print_string ppf (policy_to_string p)
