type policy = Sync_on_commit | Sync_on_prepare | Async of float

let policy_to_string = function
  | Sync_on_commit -> "commit"
  | Sync_on_prepare -> "prepare"
  | Async lag -> Printf.sprintf "async(%g)" lag

type record =
  | Stage of { op : int; key : int; ts : Timestamp.t; value : string }
  | Commit of { op : int; key : int; ts : Timestamp.t; value : string }
  | Install of { key : int; ts : Timestamp.t; value : string }
  | Abort of { op : int }

(* [durable_at]: virtual time from which the record survives a crash.
   [infinity] marks a record the policy never persists (a volatile stage
   under Sync_on_commit). *)
type entry = { record : record; durable_at : float }

type t = {
  policy : policy;
  now : unit -> float;
  mutable rev_log : entry list;  (* newest first *)
  mutable n : int;
  mutable lost : int;
  mutable syncs : int;
}

let create ?(policy = Sync_on_commit) ~now () =
  (match policy with
  | Async lag when lag <= 0.0 ->
    invalid_arg "Wal.create: Async flush lag must be positive"
  | _ -> ());
  { policy; now; rev_log = []; n = 0; lost = 0; syncs = 0 }

let policy t = t.policy

let durable_at t record =
  let now = t.now () in
  match (t.policy, record) with
  | Sync_on_commit, (Commit _ | Install _) -> now
  | Sync_on_commit, (Stage _ | Abort _) -> Float.infinity
  | Sync_on_prepare, _ -> now
  | Async lag, _ -> now +. lag

(* A record is synchronously forced exactly when the policy makes it
   durable the instant it is appended. *)
let forces t record =
  match (t.policy, record) with
  | Sync_on_commit, (Commit _ | Install _) -> true
  | Sync_on_commit, (Stage _ | Abort _) -> false
  | Sync_on_prepare, _ -> true
  | Async _, _ -> false

let append t record =
  if forces t record then t.syncs <- t.syncs + 1;
  t.rev_log <- { record; durable_at = durable_at t record } :: t.rev_log;
  t.n <- t.n + 1

(* Group commit: the whole batch shares one durability point.  Each
   record keeps its per-policy [durable_at] (they are all stamped at the
   same virtual instant anyway), but however many of them the policy
   would force, at most ONE sync is charged — that amortization is the
   point of batching the log writes. *)
let append_batch t records =
  let any_force = List.exists (forces t) records in
  if any_force then t.syncs <- t.syncs + 1;
  List.iter
    (fun record ->
      t.rev_log <- { record; durable_at = durable_at t record } :: t.rev_log;
      t.n <- t.n + 1)
    records

let crash t =
  let now = t.now () in
  (* Append times are monotone, so the non-durable records form a prefix of
     the newest-first list; still filter the whole log so the volatile
     (never-durable) stages of Sync_on_commit go too.  The boundary is
     INCLUSIVE: a record whose [durable_at] equals the crash time has
     reached stable storage and survives (see wal.mli). *)
  let survivors = List.filter (fun e -> e.durable_at <= now) t.rev_log in
  let kept = List.length survivors in
  t.lost <- t.lost + (t.n - kept);
  t.rev_log <- survivors;
  t.n <- kept

let replay t store =
  let apply = function
    | Stage { op; key; ts; value } -> Store.stage_accum store ~op ~key ~ts ~value
    | Commit { op; key; ts; value } ->
      Store.abort_staged store ~op;
      ignore (Store.install store ~key ~ts ~value)
    | Install { key; ts; value } -> ignore (Store.install store ~key ~ts ~value)
    | Abort { op } -> Store.abort_staged store ~op
  in
  List.iter (fun e -> apply e.record) (List.rev t.rev_log);
  t.n

let length t = t.n
let lost_total t = t.lost
let syncs t = t.syncs

let pp_policy ppf p = Format.pp_print_string ppf (policy_to_string p)
