(** Membership-churn scenarios: provisioning, promotion and decommission
    under fault injection.

    A churn run builds a {!Quorum.Relabel}-wrapped tree over a universe
    of [n + spares] sites (the spares start outside every quorum), runs
    an ordinary client workload against it, and overlays two scripted
    event streams: a {!Dsim.Failure} schedule (amnesia crashes,
    partitions) and a membership schedule of {!Reconfig.promote} /
    decommission flows.  Every replica carries a
    {!Replica.provision} config, so crashed sites rejoin by snapshot +
    WAL-tail provisioning — the donor-crash, recipient-crash and
    partition cases the campaign injects all exercise the transfer's
    resume and failover machinery.

    Safety is judged by the same client-side freshness oracle the main
    {!Harness} uses: a read observing a timestamp older than a commit
    some client already saw acknowledged counts one violation.  With
    fencing on and a commit-durable WAL the count must be zero; the
    [fence_provisioning = false] negative control must leak. *)

type membership_op = {
  at : float;  (** virtual time of the flow's start *)
  position : int;  (** tree position whose occupant is replaced *)
  spare : int;  (** site id promoted into the position *)
  fence : bool;
      (** decommission the displaced occupant (drain-fence-remove);
          without it the occupant becomes a re-promotable spare *)
}

type scenario = {
  proto : Quorum.Protocol.t;  (** the tree, over positions *)
  spares : int;  (** extra sites beyond the tree universe *)
  n_clients : int;
  ops_per_client : int;
  read_fraction : float;
  key_space : int;
  latency : Dsim.Latency.t;
  loss_rate : float;
  think_time : float;
  failures : Dsim.Failure.entry list;
  membership : membership_op list;
  seed : int;
  coordinator : Coordinator.config;
  horizon : float;
  wal : Wal.policy;
  chunk_size : int;
  fence_provisioning : bool;
      (** [false] = the negative control: serve while provisioning *)
  provision_timeout : float;
}

val default_scenario : proto:Quorum.Protocol.t -> scenario
(** One spare, three clients, fenced provisioning, commit-durable WAL,
    no failures, no membership changes. *)

type report = {
  duration : float;
  reads_ok : int;
  reads_failed : int;
  writes_ok : int;
  writes_failed : int;
  retries : int;
  safety_violations : int;
  promotions_started : int;
  promotions_done : int;
  decommissions_done : int;
  provision_runs : int;
  provision_chunks : int;
  provision_resumes : int;
  provision_donor_failovers : int;
  provision_rounds : int;
  provision_stale : int;
  failed_rejoins : int;
  wal_records_replayed : int;
  wal_records_lost : int;
  replica_incarnations : int array;
  replica_status : string array;  (** per-site {!Replica.status_label} *)
  messages_delivered : int;
}

val run : scenario -> report
val completed : report -> int
