(** Transaction coordinator: drives read and write operations against the
    replicas using the quorums of a pluggable replica control protocol.

    - {b read}: assemble a read quorum, query every member, return the
      value with the newest timestamp (§3.2.1).
    - {b write}: obtain the highest version through a read quorum,
      increment it, then two-phase-commit the new (timestamp, value) on
      every member of a write quorum (§3.2.2, §2.2).

    Failures are handled by per-phase timeouts: a timed-out attempt is
    aborted and the operation retried with freshly assembled quorums from
    the current failure-detector view, up to [max_retries], pausing with
    jittered exponential backoff and bounded by an optional per-operation
    deadline budget.

    The failure-detector view is pluggable ({!Detect.View}).  Per §2.2
    failures are detectable, so the default is the simulator's
    ground-truth oracle; [oracle_view = false] selects a purely
    timeout-driven suspect list (suspicion expires after a fixed window
    {e and} is cleared the moment the site is heard from again), and a
    caller-supplied [view] — e.g. a {!Detect.Heartbeat} monitor — replaces
    both.  Every received message rehabilitates its sender in the view;
    every missed deadline reports the laggards as suspects.

    Under amnesia crash-recovery ({!Dsim.Network.crash_mode}) the
    coordinator additionally tracks each replica's newest incarnation
    number and drops replies stamped with an older one (a pre-crash
    life's evidence must not complete a post-crash quorum); each member's
    [Commit] echoes the incarnation from that member's [Prepare_ack], so
    a replica that lost its staged write to a crash refuses the commit
    and the write retries instead of being silently lost.  Under pure
    fail-stop all incarnations stay 0 and behavior is unchanged.

    {b Overload defenses} (both optional, both usually shared across
    every coordinator of a process): a {!Detect.Budget} caps the global
    retry/first-attempt ratio — each operation entry deposits, each retry
    withdraws, and a drained bucket fails the operation fast instead of
    feeding a retry storm (commit-phase resends are exempt: they are
    narrow and abandoning them wedges prepared writes).  A
    {!Detect.Breaker} accumulates per-site [Busy] nacks and phase
    timeouts, and quorum assembly skips sites whose breaker is open.
    Without these arguments behavior is byte-identical to before. *)

type config = {
  timeout : float;  (** fixed per-phase response deadline *)
  max_retries : int;  (** quorum re-assembly attempts per operation *)
  oracle_view : bool;  (** ground-truth failure detector (default) vs.
                           timeout-based suspicion; ignored when an
                           explicit [view] is supplied *)
  read_repair : bool;
      (** after a successful query, push the newest value back to quorum
          members that answered with an older timestamp (off by
          default) *)
  adaptive_timeout : bool;
      (** derive the phase deadline from observed RTT quantiles
          ({!Detect.Rto}) instead of the fixed [timeout] *)
  deadline : float;
      (** per-operation time budget; a retry that cannot start before
          [op start + deadline] fails the operation.  [infinity] (default)
          disables the budget. *)
  backoff : Detect.Backoff.policy;  (** retry pause policy *)
  rto : Detect.Rto.config;  (** adaptive-timeout estimator parameters *)
  pipeline_levels : bool;
      (** tree-level pipelined reads (off by default): when the protocol
          exposes a per-level quorum plan ({!Quorum.Protocol.read_levels} —
          the arbitrary tree protocol does), a read streams its quorum,
          sending each level's request the moment that level's member is
          chosen instead of materializing the full quorum first.  Quorum
          membership and RNG consumption are unchanged (see
          {!Quorum.Protocol.level_plan}); dispatch happens in tree-level
          order rather than ascending site order, so seeded simulations
          are equivalent (same values, same timestamps on every read) but
          not byte-identical.  Protocols without a level plan fall back to
          whole-quorum assembly. *)
}

val default_config : config

type t

val create :
  site:int ->
  net:Message.t Dsim.Network.t ->
  proto:Quorum.Protocol.t ->
  ?locks:Lock_manager.t ->
  ?view:Detect.View.t ->
  ?budget:Detect.Budget.t ->
  ?breaker:Detect.Breaker.t ->
  ?obs:Obs.t ->
  ?config:config ->
  unit ->
  t
(** [site] is the coordinator's own network address (distinct from every
    replica's).  When [locks] is given, reads take shared and writes
    exclusive per-key locks around the quorum protocol.  [view] overrides
    the config-selected failure detector.  With [obs], every operation is
    traced as a span ([ops.read.*] / [ops.write.*], phases query/prepare/
    commit, plus a lock phase when [locks] is in force) and the counters
    [coord.deadline_exceeded] and [coord.repairs_sent] are maintained;
    without it no instrumentation work is done. *)

type read_result = { value : string; ts : Timestamp.t; attempts : int }

val read : t -> ?retry:bool -> key:int -> (read_result option -> unit) -> unit
(** [None] when no read quorum could be assembled within the retry
    budget.

    [~retry:true] marks a caller-level re-issue of a failed operation:
    it skips the retry-budget deposit so a storm of re-issues cannot
    refill its own token bucket (tokens are only earned by genuine first
    attempts).  Default [false]. *)

val write :
  t -> ?retry:bool -> key:int -> value:string -> (Timestamp.t option -> unit) -> unit
(** On success, the timestamp under which the value was committed.
    [~retry:true] as in {!read}. *)

val read_batch :
  t -> ?retry:bool -> keys:int list -> ((int * read_result option) list -> unit) -> unit
(** Batched read: ONE quorum round answers every key.  Each quorum member
    receives a single {!Message.t.Read_batch} envelope (one message, one
    service-queue slot) and answers all keys at once; the callback gets a
    per-key result in request order — per-key success/failure reporting,
    though with whole-batch retry a round either answers every key or
    (after the retry budget) fails every key.

    A batch of one key delegates to {!read} (locks included), so batch
    size 1 is byte-identical to unbatched operation.  Larger batches skip
    the per-key lock manager: monotone installs and quorum intersection
    make them safe without it.  [~retry] as in {!read}; a batch deposits
    once into the retry budget, whatever its size (it consumes one quorum
    round of capacity). *)

val write_batch :
  t ->
  ?retry:bool ->
  writes:(int * string) list ->
  ((int * Timestamp.t option) list -> unit) ->
  unit
(** Batched write: one version-query round (a {!Message.t.Read_batch}
    over a read quorum) obtains every key's newest version, then ONE
    two-phase-commit exchange carries all keys — a single
    {!Message.t.Prepare_batch} envelope per write-quorum member, staged
    and committed atomically under one op id, one [Commit]/[Commit_ack]
    pair per member.  The callback gets each key's commit timestamp (or
    [None] for the whole batch on failure), in request order.

    Singleton delegation, locking and budget semantics as in
    {!read_batch}. *)

val view : t -> Detect.View.t
(** The failure-detector view in force. *)

val current_view : t -> Dsutil.Bitset.t
(** The believed-alive replica set right now. *)

val observed_timeout : t -> float
(** The per-phase deadline currently in force (adaptive or fixed). *)

val set_protocol : t -> Quorum.Protocol.t -> unit
(** Swap the quorum geometry (reconfiguration, §3.3).  Only safe while the
    coordinator has no operation in flight — the reconfiguration engine
    guarantees this by holding every key's exclusive lock.  Raises
    [Invalid_argument] if the replica universe size changes. *)

(** {2 Metrics} *)

type metrics = {
  reads_ok : int;
  reads_failed : int;
  writes_ok : int;
  writes_failed : int;
  retries : int;
  repairs_sent : int;
  deadline_exceeded : int;
      (** operations failed because the deadline budget ran out before the
          retry budget *)
  stale_incarnation_rejections : int;
      (** replica replies dropped because they carried an incarnation older
          than the newest one seen from that site — evidence from a
          pre-crash life (always 0 under fail-stop) *)
  busy_received : int;
      (** [Busy] sheds received from admission-controlled replicas *)
  retries_suppressed : int;
      (** retries refused by the shared {!Detect.Budget} (operation failed
          fast instead) *)
  batches : int;
      (** multi-key batches executed ({!read_batch}/{!write_batch} with
          >= 2 keys; singleton delegations are not counted).  Mirrored as
          the [coord.batches] metric. *)
  read_latency : Dsutil.Stats.t;
  write_latency : Dsutil.Stats.t;
}

val metrics : t -> metrics
