(** Transaction coordinator: drives read and write operations against the
    replicas using the quorums of a pluggable replica control protocol.

    - {b read}: assemble a read quorum, query every member, return the
      value with the newest timestamp (§3.2.1).
    - {b write}: obtain the highest version through a read quorum,
      increment it, then two-phase-commit the new (timestamp, value) on
      every member of a write quorum (§3.2.2, §2.2).

    Failures are handled by per-phase timeouts: a timed-out attempt is
    aborted and the operation retried with freshly assembled quorums from
    the current failure-detector view, up to [max_retries].  Per §2.2
    failures are detectable, so the default detector is the simulator's
    ground-truth oracle; a purely timeout-driven suspect list is available
    for ablation. *)

type config = {
  timeout : float;  (** per-phase response deadline *)
  max_retries : int;  (** quorum re-assembly attempts per operation *)
  oracle_view : bool;  (** ground-truth failure detector (default) vs.
                           timeout-based suspicion *)
  read_repair : bool;
      (** after a successful query, push the newest value back to quorum
          members that answered with an older timestamp (off by
          default) *)
}

val default_config : config

type t

val create :
  site:int ->
  net:Message.t Dsim.Network.t ->
  proto:Quorum.Protocol.t ->
  ?locks:Lock_manager.t ->
  ?config:config ->
  unit ->
  t
(** [site] is the coordinator's own network address (distinct from every
    replica's).  When [locks] is given, reads take shared and writes
    exclusive per-key locks around the quorum protocol. *)

type read_result = { value : string; ts : Timestamp.t; attempts : int }

val read : t -> key:int -> (read_result option -> unit) -> unit
(** [None] when no read quorum could be assembled within the retry
    budget. *)

val write : t -> key:int -> value:string -> (Timestamp.t option -> unit) -> unit
(** On success, the timestamp under which the value was committed. *)

val set_protocol : t -> Quorum.Protocol.t -> unit
(** Swap the quorum geometry (reconfiguration, §3.3).  Only safe while the
    coordinator has no operation in flight — the reconfiguration engine
    guarantees this by holding every key's exclusive lock.  Raises
    [Invalid_argument] if the replica universe size changes. *)

(** {2 Metrics} *)

type metrics = {
  reads_ok : int;
  reads_failed : int;
  writes_ok : int;
  writes_failed : int;
  retries : int;
  repairs_sent : int;
  read_latency : Dsutil.Stats.t;
  write_latency : Dsutil.Stats.t;
}

val metrics : t -> metrics
