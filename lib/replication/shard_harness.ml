module Engine = Dsim.Engine
module Network = Dsim.Network
module Failure = Dsim.Failure
module Rng = Dsutil.Rng
module Stats = Dsutil.Stats
module Protocol = Quorum.Protocol
module Shard_map = Arbitrary.Shard_map

type reconfig_action = Split of int | Merge of { into : int; from_ : int }

type reconfig = { at : float; action : reconfig_action }

type scenario = {
  base : Harness.scenario;
  shards : int;
  strategy : Shard_map.strategy;
  service_time : float;
  shard_failures : (int * Failure.entry list) list;
  reconfig : reconfig list;
}

let default ~proto ~shards =
  {
    base = Harness.default_scenario ~proto;
    shards;
    strategy = Shard_map.Hash;
    service_time = 0.0;
    shard_failures = [];
    reconfig = [];
  }

type report = {
  agg : Harness.report;
  shards : int;
  active_shards : int list;
  per_shard_ops : int array;
  per_shard_keys : int array;
  migrated_keys : int;
  migration_failures : int;
  splits : int;
  merges : int;
  map_well_formed : bool;
  routing : int array;
}

let imbalance r =
  let ops = List.map (fun s -> r.per_shard_ops.(s)) r.active_shards in
  match ops with
  | [] -> (0.0, 0.0)
  | _ ->
    let total = List.fold_left ( + ) 0 ops in
    let mx = List.fold_left max 0 ops in
    let mean = float_of_int total /. float_of_int (List.length ops) in
    if mean = 0.0 then (0.0, 0.0) else (float_of_int mx, mean)

let imbalance_ratio r =
  let mx, mean = imbalance r in
  if mean = 0.0 then 1.0 else mx /. mean

(* Per-key newest committed timestamp for the freshness check — one
   checker spanning every shard, since keys are globally unique. *)
type checker = { latest : (int, Timestamp.t) Hashtbl.t; mutable violations : int }

let run ?obs scenario =
  let b = scenario.base in
  if scenario.shards < 1 then invalid_arg "Shard_harness.run: shards must be >= 1";
  if b.Harness.n_clients < 1 then invalid_arg "Shard_harness.run: need a client";
  if b.Harness.overload <> None then
    invalid_arg "Shard_harness.run: overload model unsupported (use service_time)";
  if b.Harness.failures <> [] then
    invalid_arg "Shard_harness.run: use shard_failures, not base.failures";
  if scenario.service_time < 0.0 then
    invalid_arg "Shard_harness.run: negative service_time";
  if scenario.reconfig <> [] && not b.Harness.use_locks then
    invalid_arg "Shard_harness.run: reconfiguration requires use_locks";
  (match b.Harness.batching with
  | Some bt when bt.Harness.batch_size < 1 || bt.Harness.pipeline < 1 ->
    invalid_arg "Shard_harness.run: batch_size and pipeline must be >= 1"
  | _ -> ());
  let n_splits =
    List.length
      (List.filter (function { action = Split _; _ } -> true | _ -> false)
         scenario.reconfig)
  in
  (* Shard instances for split targets exist from the start (their id is
     allocated when the split event fires); until activation they own no
     keys and see no traffic. *)
  let max_shards = scenario.shards + n_splits in
  let smap =
    Shard_map.create ~strategy:scenario.strategy ~shards:scenario.shards
      ~key_space:b.Harness.key_space ~seed:b.Harness.seed ()
  in
  let engine = Engine.create ~seed:b.Harness.seed () in
  let span_store =
    if b.Harness.check_consistency then Some (Obs.Sink.memory ()) else None
  in
  let obs =
    match (obs, span_store) with
    | _, None -> obs
    | Some o, Some m ->
      Obs.add_sink o (Obs.Sink.memory_sink m);
      Some o
    | None, Some m ->
      let o = Obs.create () in
      Obs.add_sink o (Obs.Sink.memory_sink m);
      Some o
  in
  (match obs with
  | None -> ()
  | Some o -> Obs.set_clock o (fun () -> Engine.now engine));
  let group_commit =
    match b.Harness.batching with Some bt -> bt.Harness.group_commit | None -> false
  in
  (* One tree instance per shard: forked protocol (private plan-cache
     scratch), own network (own latency/RNG stream, crash schedule and
     service queues), own replicas with their own stores and WALs — all
     over the one shared engine.  Construction order inside each shard
     mirrors Harness.run exactly, so at S=1 the RNG-split sequence and
     event schedule are those of the unsharded harness. *)
  let n = Protocol.universe_size b.Harness.proto in
  let create_shard s =
    let proto = Protocol.fork b.Harness.proto in
    let net =
      Network.create ~engine
        ~n:(n + b.Harness.n_clients + 1)
        ~latency:b.Harness.latency ~loss_rate:b.Harness.loss_rate ()
    in
    Network.set_crash_mode net b.Harness.crash_mode;
    if scenario.service_time > 0.0 then
      for site = 0 to n - 1 do
        Network.set_service net ~site ~capacity:0
          ~service_time:scenario.service_time ()
      done;
    (match obs with None -> () | Some o -> Network.attach_obs net o);
    let recovery =
      match b.Harness.crash_mode with
      | Network.Fail_stop -> None
      | Network.Amnesia ->
        Some
          (Replica.recovery ~wal_policy:b.Harness.wal
             ~catch_up:b.Harness.catch_up
             ~keys:(fun () -> Shard_map.keys_of smap s)
             ~proto ())
    in
    let reps =
      Array.init n (fun site ->
          Replica.create ~site ~net ?recovery ~group_commit ?obs ())
    in
    (proto, net, reps)
  in
  let p0, net0, reps0 = create_shard 0 in
  let protos = Array.make max_shards p0 in
  let nets = Array.make max_shards net0 in
  let replicas = Array.make max_shards reps0 in
  for s = 1 to max_shards - 1 do
    let proto, net, reps = create_shard s in
    protos.(s) <- proto;
    nets.(s) <- net;
    replicas.(s) <- reps
  done;
  let locks =
    if b.Harness.use_locks then Some (Lock_manager.create ~engine) else None
  in
  let checker = { latest = Hashtbl.create 16; violations = 0 } in
  let clients_done = ref 0 in
  let monitors = ref [] in
  let per_shard_ops = Array.make max_shards 0 in
  let completions = ref (Float.Array.create 64) in
  let n_completions = ref 0 in
  let record_completion () =
    (if !n_completions = Float.Array.length !completions then begin
       let grown = Float.Array.create (2 * !n_completions) in
       Float.Array.blit !completions 0 grown 0 !n_completions;
       completions := grown
     end);
    Float.Array.set !completions !n_completions (Engine.now engine);
    incr n_completions
  in
  let client_finished () =
    incr clients_done;
    if !clients_done = b.Harness.n_clients then
      List.iter Detect.Heartbeat.stop !monitors
  in
  let run_client ~site ~ops ~think ~start_delay =
    (* One coordinator per shard, all at the client's site address on
       that shard's network; dispatch routes each key through the shard
       map at issue time. *)
    let coords =
      Array.of_list
      @@ List.init max_shards (fun s ->
          let view =
            match b.Harness.detector with
            | Harness.Oracle -> None
            | Harness.Heartbeat config ->
              let seq = ref 0 in
              let hb =
                Detect.Heartbeat.create ~engine ~n ~config
                  ~send_ping:(fun dst ->
                    incr seq;
                    Network.send nets.(s) ~src:site ~dst
                      (Message.Ping { seq = !seq }))
                  ()
              in
              monitors := hb :: !monitors;
              Some (Detect.Heartbeat.view hb)
          in
          Coordinator.create ~site ~net:nets.(s) ~proto:protos.(s) ?locks
            ?view ?obs ~config:b.Harness.coordinator ())
    in
    let gen =
      Workload.Generator.create
        ~rng:(Rng.split (Engine.rng engine))
        ~read_fraction:b.Harness.read_fraction ~key_space:b.Harness.key_space
        ~zipf_theta:b.Harness.zipf_theta ()
    in
    let expected_now key =
      match Hashtbl.find checker.latest key with
      | exception Not_found -> Timestamp.zero
      | ts -> ts
    in
    let process_read ~shard expected result =
      match result with
      | Some { Coordinator.ts; _ } ->
        record_completion ();
        per_shard_ops.(shard) <- per_shard_ops.(shard) + 1;
        if Timestamp.newer_than expected ts then
          checker.violations <- checker.violations + 1
      | None -> ()
    in
    let process_write ~shard key result =
      match result with
      | Some ts ->
        record_completion ();
        per_shard_ops.(shard) <- per_shard_ops.(shard) + 1;
        Hashtbl.replace checker.latest key (Timestamp.max (expected_now key) ts)
      | None -> ()
    in
    let remaining = ref 0 in
    let cur_key = ref 0 in
    let cur_shard = ref 0 in
    let cur_expected = ref Timestamp.zero in
    let rec dispatch () =
      if !remaining = 0 then client_finished ()
      else begin
        match Workload.Generator.next gen with
        | Workload.Generator.Read key ->
          cur_key := key;
          cur_shard := Shard_map.route smap key;
          cur_expected := expected_now key;
          Coordinator.read coords.(!cur_shard) ~key on_read
        | Workload.Generator.Write (key, value) ->
          cur_key := key;
          cur_shard := Shard_map.route smap key;
          Coordinator.write coords.(!cur_shard) ~key ~value on_write
      end
    and on_read result =
      process_read ~shard:!cur_shard !cur_expected result;
      continue ()
    and on_write result =
      process_write ~shard:!cur_shard !cur_key result;
      continue ()
    and continue () =
      Engine.schedule engine
        ~delay:(Workload.Generator.think_time gen ~mean:think)
        advance
    and advance () =
      remaining := !remaining - 1;
      dispatch ()
    in
    let step ops =
      remaining := ops;
      dispatch ()
    in
    (* Batched client: a window's ops are grouped per shard, one
       read-batch plus one write-batch per touched shard.  At S=1 the
       grouping is exactly one read-batch + one write-batch in Harness
       order, so seeded runs stay byte-identical. *)
    let run_batched bt =
      let remaining = ref ops in
      let slots = ref bt.Harness.pipeline in
      let retire () =
        decr slots;
        if !slots = 0 then client_finished ()
      in
      let rec slot_step () =
        if !remaining = 0 then retire ()
        else begin
          let wsize = min bt.Harness.batch_size !remaining in
          remaining := !remaining - wsize;
          let window = ref [] in
          for _ = 1 to wsize do
            window := Workload.Generator.next gen :: !window
          done;
          let window = List.rev !window in
          let reads_by = Array.make max_shards [] in
          let writes_by = Array.make max_shards [] in
          List.iter
            (function
              | Workload.Generator.Read key ->
                let s = Shard_map.route smap key in
                reads_by.(s) <- (key, expected_now key) :: reads_by.(s)
              | Workload.Generator.Write (key, value) ->
                let s = Shard_map.route smap key in
                writes_by.(s) <- (key, value) :: writes_by.(s))
            window;
          for s = 0 to max_shards - 1 do
            reads_by.(s) <- List.rev reads_by.(s);
            writes_by.(s) <- List.rev writes_by.(s)
          done;
          let parts = ref 0 in
          Array.iter (fun l -> if l <> [] then incr parts) reads_by;
          Array.iter (fun l -> if l <> [] then incr parts) writes_by;
          let part_done () =
            decr parts;
            if !parts = 0 then
              Engine.schedule engine
                ~delay:(Workload.Generator.think_time gen ~mean:think)
                slot_step
          in
          for s = 0 to max_shards - 1 do
            let reads = reads_by.(s) in
            if reads <> [] then
              Coordinator.read_batch coords.(s) ~keys:(List.map fst reads)
                (fun results ->
                  List.iter2
                    (fun (_, expected) (_, result) ->
                      process_read ~shard:s expected result)
                    reads results;
                  part_done ())
          done;
          for s = 0 to max_shards - 1 do
            let writes = writes_by.(s) in
            if writes <> [] then
              Coordinator.write_batch coords.(s) ~writes (fun results ->
                  List.iter
                    (fun (key, result) -> process_write ~shard:s key result)
                    results;
                  part_done ())
          done
        end
      in
      for _ = 1 to bt.Harness.pipeline do
        slot_step ()
      done
    in
    let start () =
      match b.Harness.batching with None -> step ops | Some bt -> run_batched bt
    in
    if start_delay > 0.0 then Engine.schedule engine ~delay:start_delay start
    else start ();
    coords
  in
  let coords =
    List.init b.Harness.n_clients (fun idx ->
        run_client ~site:(n + idx) ~ops:b.Harness.ops_per_client
          ~think:b.Harness.think_time ~start_delay:b.Harness.warmup)
  in
  (* --- online split/merge -------------------------------------------- *)
  let migrated_keys = ref 0 in
  let migration_failures = ref 0 in
  let splits_done = ref 0 in
  let merges_done = ref 0 in
  (if scenario.reconfig <> [] then begin
     let locks = Option.get locks in
     (* Dedicated migration endpoints at the address past every client,
        created after all clients so S=1 runs without reconfiguration
        never allocate them. *)
     let mig_site = n + b.Harness.n_clients in
     let mig =
       Array.of_list
         (List.init max_shards (fun s ->
              Quorum_rpc.create ~site:mig_site ~net:nets.(s) ~proto:protos.(s)
                ?obs ()))
     in
     List.iteri
       (fun idx rc ->
         let owner = -(1001 + idx) in
         Engine.schedule engine ~delay:rc.at (fun () ->
             let change =
               match rc.action with
               | Split shard -> Shard_map.plan_split smap ~shard
               | Merge { into; from_ } -> Shard_map.plan_merge smap ~into ~from_
             in
             let moved = change.Shard_map.moved in
             let src = mig.(change.Shard_map.source) in
             let dst = mig.(change.Shard_map.target) in
             (* Flip the routing AND enqueue the fence in one virtual
                instant.  Per-key FIFO lock queues then give a clean
                cutover: every operation dispatched before this instant
                routed to the source and sits ahead of the fence, so it
                completes on the source before the copy reads it; every
                operation dispatched after routes to the target and
                blocks behind the fence until its key has been copied.
                The source keeps its (now unreachable) copy, so nothing
                is ever read-before-written. *)
             Shard_map.commit smap change;
             let finish () =
               (match rc.action with
               | Split _ -> incr splits_done
               | Merge _ -> incr merges_done);
               List.iter
                 (fun key -> Lock_manager.release locks ~key ~owner)
                 moved
             in
             let rec copy = function
               | [] -> finish ()
               | key :: rest -> copy_key ~attempts:0 key rest
             and copy_key ~attempts key rest =
               let retry () =
                 if attempts < 40 then
                   Engine.schedule engine ~delay:5.0 (fun () ->
                       copy_key ~attempts:(attempts + 1) key rest)
                 else begin
                   incr migration_failures;
                   copy rest
                 end
               in
               Quorum_rpc.query src ~key (function
                 | Some (ts, value) ->
                   if ts = Timestamp.zero then copy rest
                   else
                     (* Forced-timestamp state transfer: reinstall the
                        value on the target shard without minting a new
                        version. *)
                     Quorum_rpc.write dst ~key ~ts ~value (function
                       | Some _ ->
                         incr migrated_keys;
                         copy rest
                       | None -> retry ())
                 | None -> retry ())
             in
             (* All fence locks are requested in this same instant —
                sequential acquisition would leave later keys unfenced
                while earlier grants wait out in-flight holders. *)
             let granted = ref 0 in
             let total = List.length moved in
             if total = 0 then finish ()
             else
               List.iter
                 (fun key ->
                   Lock_manager.acquire locks ~key
                     ~mode:Lock_manager.Exclusive ~owner (fun () ->
                       incr granted;
                       if !granted = total then copy moved))
                 moved))
       scenario.reconfig
   end);
  List.iter
    (fun (s, entries) ->
      if s < 0 || s >= max_shards then
        invalid_arg "Shard_harness.run: shard_failures index out of range";
      Failure.apply nets.(s) entries)
    scenario.shard_failures;
  Engine.run ~until:b.Harness.horizon engine;
  let metrics =
    List.concat_map
      (fun cs -> Array.to_list (Array.map Coordinator.metrics cs))
      coords
  in
  let sum f = List.fold_left (fun acc m -> acc + f m) 0 metrics in
  let all_replicas = Array.concat (Array.to_list replicas) in
  let sum_replicas f =
    Array.fold_left (fun acc r -> acc + f r) 0 all_replicas
  in
  let counters = Array.map Network.counters nets in
  let sum_net f = Array.fold_left (fun acc c -> acc + f c) 0 counters in
  let agg =
    {
      Harness.duration = Engine.now engine;
      reads_ok = sum (fun m -> m.Coordinator.reads_ok);
      reads_failed = sum (fun m -> m.Coordinator.reads_failed);
      writes_ok = sum (fun m -> m.Coordinator.writes_ok);
      writes_failed = sum (fun m -> m.Coordinator.writes_failed);
      retries = sum (fun m -> m.Coordinator.retries);
      deadline_exceeded = sum (fun m -> m.Coordinator.deadline_exceeded);
      safety_violations = checker.violations;
      read_latency =
        List.fold_left
          (fun acc m -> Stats.merge acc m.Coordinator.read_latency)
          (Stats.create ()) metrics;
      write_latency =
        List.fold_left
          (fun acc m -> Stats.merge acc m.Coordinator.write_latency)
          (Stats.create ()) metrics;
      messages_sent = sum_net (fun c -> c.Network.sent);
      messages_delivered = sum_net (fun c -> c.Network.delivered);
      messages_dropped =
        sum_net (fun c ->
            c.Network.dropped_loss + c.Network.dropped_crash
            + c.Network.dropped_partition + c.Network.dropped_no_handler
            + c.Network.dropped_overload);
      heartbeat_pings =
        List.fold_left (fun acc hb -> acc + Detect.Heartbeat.pings_sent hb) 0
          !monitors;
      replica_reads_served = Array.map Replica.reads_served all_replicas;
      replica_prepares_seen = Array.map Replica.prepares_seen all_replicas;
      replica_writes_applied = Array.map Replica.writes_applied all_replicas;
      stale_incarnation_rejections =
        sum (fun m -> m.Coordinator.stale_incarnation_rejections);
      replica_incarnations = Array.map Replica.incarnation all_replicas;
      catchup_runs = sum_replicas Replica.catchup_runs;
      catchup_keys_installed = sum_replicas Replica.catchup_keys_installed;
      catchup_abandoned = sum_replicas Replica.catchup_abandoned;
      stale_commits_nacked = sum_replicas Replica.stale_commits_nacked;
      wal_records_replayed = sum_replicas Replica.wal_records_replayed;
      wal_records_lost = sum_replicas Replica.wal_records_lost;
      replicas_recovering =
        sum_replicas (fun r -> if Replica.is_serving r then 0 else 1);
      spans =
        (match span_store with
        | None -> []
        | Some m -> Obs.Sink.memory_spans m);
      replica_sheds = sum_replicas Replica.sheds;
      busy_received = sum (fun m -> m.Coordinator.busy_received);
      retries_suppressed = sum (fun m -> m.Coordinator.retries_suppressed);
      overload_drops = sum_net (fun c -> c.Network.dropped_overload);
      breaker_trips = 0;
      queue_peak =
        (let peak = ref 0 in
         Array.iter
           (fun net ->
             for site = 0 to n - 1 do
               peak := max !peak (Network.queue_peak net site)
             done)
           nets;
         !peak);
      completions = Array.init !n_completions (Float.Array.get !completions);
      batches = sum (fun m -> m.Coordinator.batches);
      coalesced_ops = sum_net (fun c -> c.Network.coalesced);
      wal_syncs = sum_replicas Replica.wal_syncs;
    }
  in
  {
    agg;
    shards = Shard_map.shards smap;
    active_shards = Shard_map.active smap;
    per_shard_ops;
    per_shard_keys = Shard_map.counts smap;
    migrated_keys = !migrated_keys;
    migration_failures = !migration_failures;
    splits = !splits_done;
    merges = !merges_done;
    map_well_formed = Shard_map.well_formed smap;
    routing = Shard_map.snapshot smap;
  }

let throughput r =
  if r.agg.Harness.duration <= 0.0 then 0.0
  else float_of_int (Harness.completed r.agg) /. r.agg.Harness.duration
