(** Replica server: the per-site message handler.

    In the paper's fail-stop model the replica is stateless beyond its
    {!Store.t} and all protocol decisions live in the coordinator.  With a
    {!recovery} config attached it additionally survives {e amnesia}
    crashes ({!Dsim.Network.crash_mode}): every store mutation is mirrored
    into a {!Wal}, and on recovery the replica runs a rejoin state
    machine — replay the surviving WAL suffix, then (optionally) catch up
    by reading every key's newest timestamp through a read quorum of its
    peers — before it serves reads or counts toward write quorums again.
    While recovering it answers [Prepare_nack {reason = "recovering"}] to
    reads and prepares, so coordinators re-assemble their quorums around
    it.

    Each amnesia recovery bumps the replica's {e incarnation} number,
    which is stamped on every reply; coordinators use it to reject replies
    and acks that straddle a crash (see {!Message}).  Under pure fail-stop
    the incarnation stays 0 and none of this machinery runs: a replica
    created without [?recovery] is byte-identical in behavior to the
    legacy one (no RNG split, no WAL, no crash hooks). *)

type t

type recovery
(** Crash-recovery configuration. *)

type provision
(** Snapshot-provisioning configuration (see {!provision}). *)

type admission
(** Overload admission-control configuration. *)

val admission : ?shed_watermark:int -> ?universe:int -> unit -> admission
(** [shed_watermark] (default 0 = disabled) is a depth threshold on the
    site's bounded ingress queue ({!Dsim.Network.set_service}): while the
    queue is deeper, client reads and prepares are answered with
    {!Message.t.Busy} instead of being served, so the replica spends its
    scarce service time on traffic that can still finish in time.
    [universe] is the replica count — sources below it are peers whose
    catch-up reads are never shed; it defaults to the recovery protocol's
    universe when available, else every source counts as a client.

    Attaching an admission config also installs a priority lane and an
    overflow hook on the network queue: 2PC commit/abort traffic, read
    repair, heartbeats and peer catch-up reads bypass the queue's
    capacity bound entirely, and requests the full queue turns away get
    an immediate [Busy] instead of a silent drop.

    @raise Invalid_argument on a negative watermark. *)

val provision :
  ?chunk_size:int ->
  ?fence:bool ->
  ?timeout:float ->
  ?donors:(unit -> int list) ->
  key_space:int ->
  unit ->
  provision
(** Snapshot provisioning: on rejoin the replica rebuilds from a donor's
    chunked snapshot plus a WAL tail instead of per-key quorum catch-up.
    Chunk [i] always covers keys [i*chunk_size, (i+1)*chunk_size) of
    [key_space] (default chunk size 256), so chunk numbers keep their
    meaning across donor failover and recipient restarts, and the donor
    holds no per-transfer state.  Every applied chunk is WAL-logged with
    a progress mark, so an amnesia crash mid-transfer resumes after the
    last durable chunk.  A transfer making no progress for [timeout]
    (default 30.0) fails over to the next donor candidate ([donors]
    enumerates candidates in preference order; default: every site of the
    recovery protocol's universe), fenced by donor incarnation against
    chunks of a broken (pre-restart) transfer.

    [fence] (default [true]) keeps the recipient refusing reads and
    prepares until the tail is applied.  With [fence:false] the replica
    serves {e while} provisioning — deliberately unsafe (a client can
    read a key whose chunk has not arrived), kept as the negative control
    that proves the consistency checker would catch the races fencing
    prevents.

    @raise Invalid_argument on a non-positive key space, chunk size or
    timeout. *)

val recovery :
  ?wal_policy:Wal.policy ->
  ?catch_up:bool ->
  ?keys:(unit -> int list) ->
  ?proto:Quorum.Protocol.t ->
  ?catchup_timeout:float ->
  ?catchup_max_attempts:int ->
  ?backoff:Detect.Backoff.policy ->
  ?provision:provision ->
  unit ->
  recovery
(** [wal_policy] defaults to {!Wal.Sync_on_commit}.  [catch_up] (default
    [true]) runs quorum catch-up after WAL replay and requires [proto];
    the instance is {!Quorum.Protocol.fork}ed so the replica never shares
    protocol scratch state with coordinators.  [keys] enumerates the keys
    to catch up on (default: the keys present in the store after replay —
    pass the full key space to also recover keys whose WAL records were
    lost).  Each per-key quorum gather times out after [catchup_timeout]
    (default 25.0) and is retried with [backoff] jitter up to
    [catchup_max_attempts] (default 20) times; on exhaustion the replica
    enters the terminal failed-rejoin state (safe but unavailable; see
    {!failed_rejoins}) until its next crash/recover cycle.

    When [provision] is given it {e replaces} quorum catch-up as the
    rejoin path: recovery replays the WAL, then provisions from a donor
    (resuming an interrupted transfer where its durable marks left off).

    @raise Invalid_argument if [catch_up] is set without [proto]. *)

val create :
  site:int ->
  net:Message.t Dsim.Network.t ->
  ?recovery:recovery ->
  ?admission:admission ->
  ?group_commit:bool ->
  ?obs:Obs.t ->
  unit ->
  t
(** Creates the replica and installs its handler on the network.  When
    [recovery] is given, also registers crash hooks
    ({!Dsim.Network.set_crash_hooks}) so the replica learns about its own
    amnesia crashes, and splits a private RNG stream for catch-up quorum
    sampling (so enabling recovery perturbs no other component's draws).

    [group_commit] (default [false]) makes the WAL records of one batched
    prepare or commit share a single durability point
    ({!Wal.append_batch}): at most one sync is charged per batch instead
    of one per record.  Per-record durability semantics are unchanged —
    the records are stamped exactly as individual appends at the same
    instant would stamp them — so crash truncation and replay behave
    identically; only the {!wal_syncs} cost model differs.  No effect on
    unbatched traffic. *)

val site : t -> int
val store : t -> Store.t

val reads_served : t -> int
val writes_applied : t -> int
val prepares_seen : t -> int

val repairs_applied : t -> int
(** Read-repair installs that actually changed this replica's state. *)

val sheds : t -> int
(** Client requests answered with [Busy] — watermark sheds plus
    queue-full overflows.  Mirrored as the [replica.shed] metric. *)

(** {2 Recovery observables} *)

val incarnation : t -> int
(** Number of amnesia recoveries completed; 0 under fail-stop. *)

val is_serving : t -> bool
(** [false] while the rejoin state machine is still catching up. *)

val is_decommissioned : t -> bool
val is_failed_rejoin : t -> bool

val provisioning_active : t -> bool
(** A snapshot transfer is currently in flight on this replica. *)

val status_label : t -> string
(** ["serving"], ["recovering"], ["failed-rejoin"] or ["decommissioned"]. *)

(** {2 Membership operations}

    Provisioning, promotion support and decommission.  The higher-level
    online flows (promote a spare into a tree position, drain and remove
    an occupant) live in {!Reconfig}; these are the per-replica
    primitives they compose. *)

val provision_now :
  t -> ?pinned:bool -> ?donor:int -> ?on_done:(unit -> unit) -> unit -> unit
(** Starts (or restarts) a snapshot transfer immediately, without waiting
    for a crash/recover cycle.  [donor] overrides donor selection for the
    first attempt; [pinned] disables failover — used by promotion, where
    the outgoing occupant is the only safe donor (its acked writes are
    exactly what quorum intersection makes the incoming occupant
    answerable for).  [on_done] fires when the tail is applied; it
    survives recipient amnesia crashes (the restarted transfer
    re-attaches it).  Requires a {!provision} config.

    @raise Invalid_argument without a provisioning config. *)

val request_tail : t -> donor:int -> (unit -> unit) -> unit
(** One-shot delta: fetch from [donor] the committed WAL tail since the
    newest cut this replica holds ({!last_tail_index}), install it, then
    run the continuation.  Retried until answered.  The promotion flow
    calls this while every key is write-locked, making the reply the
    donor's final committed word. *)

val decommission : t -> unit
(** Fences the replica permanently: reads, prepares and donor duty are
    refused with [Prepare_nack "decommissioned"], commits are nacked, and
    crash/recover cycles do not resurrect it.  Heartbeats still answer —
    a decommissioned site is up, just out of every quorum. *)

val last_tail_index : t -> int
(** The donor-side WAL cut of the newest snapshot tail or delta this
    replica applied; 0 if it never provisioned. *)

val catchup_runs : t -> int
(** Completed catch-ups (back to serving). *)

val catchup_keys_installed : t -> int
(** Keys whose quorum-read value actually changed local state. *)

val catchup_abandoned : t -> int
(** Catch-ups that exhausted their retry budget (the replica lands in
    the terminal failed-rejoin state: safe, not live). *)

val catchup_rounds : t -> int
(** Read-quorum gathers issued by catch-up — one per key per attempt.
    The unit the provisioning speedup is measured in. *)

val failed_rejoins : t -> int
(** Times the rejoin machinery gave up and entered failed-rejoin.
    Mirrored as the [replica.rejoin.failed] metric. *)

val provision_runs : t -> int
(** Completed snapshot provisionings (tail applied, back to serving). *)

val provision_chunks : t -> int
(** Snapshot chunks applied and logged ([provision.chunks] metric). *)

val provision_resumes : t -> int
(** Transfers continued from a non-zero chunk cursor — recipient
    restarts after the last durable mark, plus mid-transfer failovers
    ([provision.resumes] metric). *)

val provision_donor_failovers : t -> int
(** Donor switches after a stall or refusal ([provision.donor_failovers]
    metric). *)

val provision_stale : t -> int
(** Provisioning replies fenced off: wrong op, wrong donor, duplicate
    chunk, or a donor incarnation from a broken transfer. *)

val provision_rounds : t -> int
(** Provisioning protocol rounds issued (requests, acks and tail
    fetches) — directly comparable to {!catchup_rounds}. *)

val stale_commits_nacked : t -> int
(** Commits refused because they carried a pre-crash incarnation. *)

val wal_records_replayed : t -> int
val wal_records_lost : t -> int

val wal_syncs : t -> int
(** Synchronous WAL forces so far ({!Wal.syncs}); 0 without a WAL.  Under
    [group_commit] a whole batch counts one — comparing this across
    batched and unbatched runs measures the group-commit amortization. *)
