(** Replica server: the per-site message handler.

    Stateless beyond its {!Store.t}; all protocol decisions live in the
    coordinator.  Install one per replica site with {!attach}. *)

type t

val create : site:int -> net:Message.t Dsim.Network.t -> t
(** Creates the replica and installs its handler on the network. *)

val site : t -> int
val store : t -> Store.t

val reads_served : t -> int
val writes_applied : t -> int
val prepares_seen : t -> int

val repairs_applied : t -> int
(** Read-repair installs that actually changed this replica's state. *)
