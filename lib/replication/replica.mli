(** Replica server: the per-site message handler.

    In the paper's fail-stop model the replica is stateless beyond its
    {!Store.t} and all protocol decisions live in the coordinator.  With a
    {!recovery} config attached it additionally survives {e amnesia}
    crashes ({!Dsim.Network.crash_mode}): every store mutation is mirrored
    into a {!Wal}, and on recovery the replica runs a rejoin state
    machine — replay the surviving WAL suffix, then (optionally) catch up
    by reading every key's newest timestamp through a read quorum of its
    peers — before it serves reads or counts toward write quorums again.
    While recovering it answers [Prepare_nack {reason = "recovering"}] to
    reads and prepares, so coordinators re-assemble their quorums around
    it.

    Each amnesia recovery bumps the replica's {e incarnation} number,
    which is stamped on every reply; coordinators use it to reject replies
    and acks that straddle a crash (see {!Message}).  Under pure fail-stop
    the incarnation stays 0 and none of this machinery runs: a replica
    created without [?recovery] is byte-identical in behavior to the
    legacy one (no RNG split, no WAL, no crash hooks). *)

type t

type recovery
(** Crash-recovery configuration. *)

type admission
(** Overload admission-control configuration. *)

val admission : ?shed_watermark:int -> ?universe:int -> unit -> admission
(** [shed_watermark] (default 0 = disabled) is a depth threshold on the
    site's bounded ingress queue ({!Dsim.Network.set_service}): while the
    queue is deeper, client reads and prepares are answered with
    {!Message.t.Busy} instead of being served, so the replica spends its
    scarce service time on traffic that can still finish in time.
    [universe] is the replica count — sources below it are peers whose
    catch-up reads are never shed; it defaults to the recovery protocol's
    universe when available, else every source counts as a client.

    Attaching an admission config also installs a priority lane and an
    overflow hook on the network queue: 2PC commit/abort traffic, read
    repair, heartbeats and peer catch-up reads bypass the queue's
    capacity bound entirely, and requests the full queue turns away get
    an immediate [Busy] instead of a silent drop.

    @raise Invalid_argument on a negative watermark. *)

val recovery :
  ?wal_policy:Wal.policy ->
  ?catch_up:bool ->
  ?keys:(unit -> int list) ->
  ?proto:Quorum.Protocol.t ->
  ?catchup_timeout:float ->
  ?catchup_max_attempts:int ->
  ?backoff:Detect.Backoff.policy ->
  unit ->
  recovery
(** [wal_policy] defaults to {!Wal.Sync_on_commit}.  [catch_up] (default
    [true]) runs quorum catch-up after WAL replay and requires [proto];
    the instance is {!Quorum.Protocol.fork}ed so the replica never shares
    protocol scratch state with coordinators.  [keys] enumerates the keys
    to catch up on (default: the keys present in the store after replay —
    pass the full key space to also recover keys whose WAL records were
    lost).  Each per-key quorum gather times out after [catchup_timeout]
    (default 25.0) and is retried with [backoff] jitter up to
    [catchup_max_attempts] (default 20) times; on exhaustion the replica
    stays in the recovering state (safe but unavailable).

    @raise Invalid_argument if [catch_up] is set without [proto]. *)

val create :
  site:int ->
  net:Message.t Dsim.Network.t ->
  ?recovery:recovery ->
  ?admission:admission ->
  ?group_commit:bool ->
  ?obs:Obs.t ->
  unit ->
  t
(** Creates the replica and installs its handler on the network.  When
    [recovery] is given, also registers crash hooks
    ({!Dsim.Network.set_crash_hooks}) so the replica learns about its own
    amnesia crashes, and splits a private RNG stream for catch-up quorum
    sampling (so enabling recovery perturbs no other component's draws).

    [group_commit] (default [false]) makes the WAL records of one batched
    prepare or commit share a single durability point
    ({!Wal.append_batch}): at most one sync is charged per batch instead
    of one per record.  Per-record durability semantics are unchanged —
    the records are stamped exactly as individual appends at the same
    instant would stamp them — so crash truncation and replay behave
    identically; only the {!wal_syncs} cost model differs.  No effect on
    unbatched traffic. *)

val site : t -> int
val store : t -> Store.t

val reads_served : t -> int
val writes_applied : t -> int
val prepares_seen : t -> int

val repairs_applied : t -> int
(** Read-repair installs that actually changed this replica's state. *)

val sheds : t -> int
(** Client requests answered with [Busy] — watermark sheds plus
    queue-full overflows.  Mirrored as the [replica.shed] metric. *)

(** {2 Recovery observables} *)

val incarnation : t -> int
(** Number of amnesia recoveries completed; 0 under fail-stop. *)

val is_serving : t -> bool
(** [false] while the rejoin state machine is still catching up. *)

val catchup_runs : t -> int
(** Completed catch-ups (back to serving). *)

val catchup_keys_installed : t -> int
(** Keys whose quorum-read value actually changed local state. *)

val catchup_abandoned : t -> int
(** Catch-ups that exhausted their retry budget (replica stays
    recovering: safe, not live). *)

val stale_commits_nacked : t -> int
(** Commits refused because they carried a pre-crash incarnation. *)

val wal_records_replayed : t -> int
val wal_records_lost : t -> int

val wal_syncs : t -> int
(** Synchronous WAL forces so far ({!Wal.syncs}); 0 without a WAL.  Under
    [group_commit] a whole batch counts one — comparing this across
    batched and unbatched runs measures the group-commit amortization. *)
