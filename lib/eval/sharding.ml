module Harness = Replication.Harness
module Shard_harness = Replication.Shard_harness
module Shard_txn_harness = Replication.Shard_txn_harness
module Shard_map = Arbitrary.Shard_map
module Config = Arbitrary.Config

let configs =
  [ Config.Unmodified; Config.Mostly_read; Config.Mostly_write;
    Config.Arbitrary ]

let shard_counts = [ 1; 4; 16; 64 ]

let service_time = 8.0
let skew_theta = 0.99

type scale_cell = {
  config : Config.name;
  shards : int;
  n : int;
  completed : int;
  duration : float;
  throughput : float;
  violations : int;
  speedup : float;
  efficiency : float;
}

type skew_cell = {
  sk_config : Config.name;
  sk_shards : int;
  theta : float;
  sk_completed : int;
  sk_violations : int;
  per_shard_ops : int array;
  imbalance_max : float;
  imbalance_mean : float;
  imbalance_ratio : float;
}

type identity_cell = {
  id_config : Config.name;
  fingerprint_sharded : string;
  fingerprint_unsharded : string;
  identical : bool;
}

type atomicity_cell = {
  atomic : bool;
  committed : int;
  aborted : int;
  uncertain : int;
  partial_commits : int;
  phantoms : int;
  lost : int;
  conserved : bool;
  cross_shard : int;
}

type reconfig_cell = {
  rc_completed : int;
  rc_violations : int;
  splits : int;
  merges : int;
  migrated_keys : int;
  migration_failures : int;
  well_formed : bool;
  active_shards : int list;
}

type campaign = {
  scaling : scale_cell list;
  skew : skew_cell list;
  identity : identity_cell;
  atomic_cell : atomicity_cell;
  nonatomic_cell : atomicity_cell;
  reconfig : reconfig_cell;
}

(* The saturating workload: a closed loop of 32 clients and 1024 total
   operations over 1024 keys.  [service_time] makes every replica a
   serial server, so the single-tree run is bottlenecked on its root
   (every read quorum contains it) while the client count caps the
   in-flight ops — queues stay short enough that a long coordinator
   timeout never fires and no retry traffic pollutes the capacity
   measurement. *)
let workload ~name ~seed ~theta () =
  let n = Config_metrics.feasible_n name 9 in
  let proto = Config_metrics.protocol_of name ~n in
  let s = Harness.default_scenario ~proto in
  ( {
      s with
      Harness.n_clients = 128;
      ops_per_client = 32;
      read_fraction = 0.5;
      key_space = 4096;
      zipf_theta = theta;
      think_time = 0.1;
      seed;
      check_consistency = true;
      coordinator =
        {
          s.Harness.coordinator with
          Replication.Coordinator.timeout = 10_000.0;
          max_retries = 1;
        };
    },
    n )

let sharded ~shards ~service_time base =
  {
    Shard_harness.base;
    shards;
    strategy = Shard_map.Hash;
    service_time;
    shard_failures = [];
    reconfig = [];
  }

(* [Harness.report.duration] is the engine clock, which coasts to the
   horizon on trailing timeout events; the workload makespan is the last
   operation completion. *)
let makespan (r : Shard_harness.report) =
  Array.fold_left Float.max 0.0 r.Shard_harness.agg.Harness.completions

let run_workload_cell ~seed (name, shards, theta) =
  let base, n = workload ~name ~seed ~theta () in
  let r = Shard_harness.run (sharded ~shards ~service_time base) in
  (name, shards, n, r)

let run_identity ~seed () =
  let name = Config.Arbitrary in
  let base, _ = workload ~name ~seed ~theta:0.0 () in
  let base = { base with Harness.n_clients = 4; ops_per_client = 50 } in
  let unsharded = Batching.fingerprint (Harness.run base) in
  let r = Shard_harness.run (sharded ~shards:1 ~service_time:0.0 base) in
  let sharded_fp = Batching.fingerprint r.Shard_harness.agg in
  {
    id_config = name;
    fingerprint_sharded = sharded_fp;
    fingerprint_unsharded = unsharded;
    identical = sharded_fp = unsharded;
  }

let run_atomicity ~seed ~atomic () =
  let name = Config.Arbitrary in
  let n = Config_metrics.feasible_n name 9 in
  let proto = Config_metrics.protocol_of name ~n in
  let sc =
    {
      (Shard_txn_harness.default_scenario ~proto ~shards:4) with
      Shard_txn_harness.atomic;
      seed;
      txns_per_client = 25;
      shard_loss = [ (1, 0.3) ];
    }
  in
  let r = Shard_txn_harness.run sc in
  let c =
    Consistency.check_conservation
      ~committed:r.Shard_txn_harness.committed_increments
      ~uncertain:r.Shard_txn_harness.uncertain_increments
      ~observed:r.Shard_txn_harness.observed_total
  in
  {
    atomic;
    committed = r.Shard_txn_harness.committed;
    aborted = r.Shard_txn_harness.aborted;
    uncertain = r.Shard_txn_harness.uncertain;
    partial_commits = r.Shard_txn_harness.partial_commits;
    phantoms = c.Consistency.phantom_increments;
    lost = c.Consistency.lost_increments;
    conserved = Consistency.conserved c;
    cross_shard = r.Shard_txn_harness.cross_shard_txns;
  }

let run_reconfig ~seed () =
  let name = Config.Arbitrary in
  let n = Config_metrics.feasible_n name 9 in
  let proto = Config_metrics.protocol_of name ~n in
  let base =
    {
      (Harness.default_scenario ~proto) with
      Harness.n_clients = 4;
      ops_per_client = 60;
      key_space = 48;
      seed;
      check_consistency = true;
    }
  in
  let sc =
    {
      (sharded ~shards:4 ~service_time:0.0 base) with
      Shard_harness.reconfig =
        [
          { Shard_harness.at = 30.0; action = Shard_harness.Split 1 };
          {
            Shard_harness.at = 90.0;
            action = Shard_harness.Merge { into = 0; from_ = 3 };
          };
        ];
    }
  in
  let r = Shard_harness.run sc in
  let offline = Consistency.check r.Shard_harness.agg.Harness.spans in
  {
    rc_completed = Harness.completed r.Shard_harness.agg;
    rc_violations =
      r.Shard_harness.agg.Harness.safety_violations
      + List.length offline.Consistency.violations;
    splits = r.Shard_harness.splits;
    merges = r.Shard_harness.merges;
    migrated_keys = r.Shard_harness.migrated_keys;
    migration_failures = r.Shard_harness.migration_failures;
    well_formed = r.Shard_harness.map_well_formed;
    active_shards = r.Shard_harness.active_shards;
  }

let run ?(seed = 42) ?domains () =
  (* Every (config, S, θ) workload cell is independent: fan the whole
     grid out at once, then fold the scaling ratios per configuration. *)
  let grid =
    List.concat_map
      (fun name -> List.map (fun s -> (name, s, 0.0)) shard_counts)
      configs
    @ List.map (fun name -> (name, 16, skew_theta)) configs
  in
  let results = Parallel.map ?domains (run_workload_cell ~seed) grid in
  let uniform, skewed =
    List.partition
      (fun ((_, _, theta), _) -> theta = 0.0)
      (List.combine grid results)
  in
  let base_duration name =
    let _, (_, _, _, r) =
      List.find
        (fun ((n, s, _), _) -> n = name && s = 1)
        uniform
    in
    makespan r
  in
  let scaling =
    List.map
      (fun ((_, _, _), (name, shards, n, r)) ->
        let duration = makespan r in
        let completed = Harness.completed r.Shard_harness.agg in
        let speedup =
          if duration <= 0.0 then 0.0 else base_duration name /. duration
        in
        {
          config = name;
          shards;
          n;
          completed;
          duration;
          throughput =
            (if duration <= 0.0 then 0.0
             else float_of_int completed /. duration);
          violations = r.Shard_harness.agg.Harness.safety_violations;
          speedup;
          efficiency = speedup /. float_of_int shards;
        })
      uniform
  in
  let skew =
    List.map
      (fun ((_, _, theta), (name, shards, _, r)) ->
        let imb_max, imb_mean = Shard_harness.imbalance r in
        {
          sk_config = name;
          sk_shards = shards;
          theta;
          sk_completed = Harness.completed r.Shard_harness.agg;
          sk_violations = r.Shard_harness.agg.Harness.safety_violations;
          per_shard_ops = r.Shard_harness.per_shard_ops;
          imbalance_max = imb_max;
          imbalance_mean = imb_mean;
          imbalance_ratio = Shard_harness.imbalance_ratio r;
        })
      skewed
  in
  let controls =
    Parallel.map ?domains
      (fun f -> f ())
      [
        (fun () -> `Identity (run_identity ~seed ()));
        (fun () -> `Atomic (run_atomicity ~seed ~atomic:true ()));
        (fun () -> `Nonatomic (run_atomicity ~seed ~atomic:false ()));
        (fun () -> `Reconfig (run_reconfig ~seed ()));
      ]
  in
  let identity =
    List.find_map (function `Identity c -> Some c | _ -> None) controls
    |> Option.get
  in
  let atomic_cell =
    List.find_map (function `Atomic c -> Some c | _ -> None) controls
    |> Option.get
  in
  let nonatomic_cell =
    List.find_map (function `Nonatomic c -> Some c | _ -> None) controls
    |> Option.get
  in
  let reconfig =
    List.find_map (function `Reconfig c -> Some c | _ -> None) controls
    |> Option.get
  in
  { scaling; skew; identity; atomic_cell; nonatomic_cell; reconfig }

let speedup_at campaign ~shards =
  List.fold_left
    (fun acc c -> if c.shards = shards then Float.max acc c.speedup else acc)
    0.0 campaign.scaling

type verdict = { pass : bool; failures : string list }

let scaling_threshold = 0.7 *. 16.0

let gate campaign =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let s16 = speedup_at campaign ~shards:16 in
  if s16 < scaling_threshold then
    fail "scaling: best S=16 speedup %.2f < %.2f (0.7 x ideal)" s16
      scaling_threshold;
  List.iter
    (fun c ->
      if c.violations > 0 then
        fail "scaling %s S=%d: %d safety violations"
          (Config.name_to_string c.config)
          c.shards c.violations)
    campaign.scaling;
  List.iter
    (fun c ->
      if c.sk_violations > 0 then
        fail "skew %s S=%d: %d safety violations"
          (Config.name_to_string c.sk_config)
          c.sk_shards c.sk_violations)
    campaign.skew;
  if not campaign.identity.identical then
    fail "identity: S=1 fingerprint diverged from the unsharded harness";
  if not campaign.atomic_cell.conserved then
    fail "atomicity: 2PC run violated increment conservation";
  if campaign.atomic_cell.partial_commits > 0 then
    fail "atomicity: 2PC run reported %d partial commits"
      campaign.atomic_cell.partial_commits;
  if campaign.nonatomic_cell.phantoms = 0 then
    fail "atomicity: negative control produced no phantom increments";
  if campaign.reconfig.rc_violations > 0 then
    fail "reconfig: %d consistency violations" campaign.reconfig.rc_violations;
  if not campaign.reconfig.well_formed then
    fail "reconfig: final shard map not well-formed";
  if campaign.reconfig.migration_failures > 0 then
    fail "reconfig: %d keys failed to migrate"
      campaign.reconfig.migration_failures;
  if campaign.reconfig.splits < 1 || campaign.reconfig.merges < 1 then
    fail "reconfig: expected at least one split and one merge";
  { pass = !failures = []; failures = List.rev !failures }

(* --- rendering ----------------------------------------------------------- *)

let ints_json xs =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list xs)) ^ "]"

let scale_cell_json c =
  Printf.sprintf
    "{\"config\":\"%s\",\"shards\":%d,\"n\":%d,\"completed\":%d,\"duration\":%.3f,\"throughput\":%.4f,\"violations\":%d,\"speedup\":%.3f,\"efficiency\":%.3f}"
    (Config.name_to_string c.config)
    c.shards c.n c.completed c.duration c.throughput c.violations c.speedup
    c.efficiency

let skew_cell_json c =
  Printf.sprintf
    "{\"config\":\"%s\",\"shards\":%d,\"theta\":%.2f,\"completed\":%d,\"violations\":%d,\"per_shard_ops\":%s,\"imbalance_max\":%.1f,\"imbalance_mean\":%.2f,\"imbalance_ratio\":%.3f}"
    (Config.name_to_string c.sk_config)
    c.sk_shards c.theta c.sk_completed c.sk_violations
    (ints_json c.per_shard_ops) c.imbalance_max c.imbalance_mean
    c.imbalance_ratio

let atomicity_json c =
  Printf.sprintf
    "{\"atomic\":%b,\"committed\":%d,\"aborted\":%d,\"uncertain\":%d,\"partial_commits\":%d,\"phantoms\":%d,\"lost\":%d,\"conserved\":%b,\"cross_shard\":%d}"
    c.atomic c.committed c.aborted c.uncertain c.partial_commits c.phantoms
    c.lost c.conserved c.cross_shard

let json campaign =
  let v = gate campaign in
  Printf.sprintf
    "{\"schema\":\"bench-shard/1\",\"service_time\":%.1f,\"scaling\":[%s],\"speedup_s16\":%.3f,\"scaling_threshold\":%.1f,\"skew\":[%s],\"identity\":{\"config\":\"%s\",\"sharded\":\"%s\",\"unsharded\":\"%s\",\"identical\":%b},\"atomicity\":{\"atomic\":%s,\"nonatomic\":%s},\"reconfig\":{\"completed\":%d,\"violations\":%d,\"splits\":%d,\"merges\":%d,\"migrated_keys\":%d,\"migration_failures\":%d,\"well_formed\":%b,\"active_shards\":%s},\"pass\":%b}"
    service_time
    (String.concat "," (List.map scale_cell_json campaign.scaling))
    (speedup_at campaign ~shards:16)
    scaling_threshold
    (String.concat "," (List.map skew_cell_json campaign.skew))
    (Config.name_to_string campaign.identity.id_config)
    campaign.identity.fingerprint_sharded
    campaign.identity.fingerprint_unsharded campaign.identity.identical
    (atomicity_json campaign.atomic_cell)
    (atomicity_json campaign.nonatomic_cell)
    campaign.reconfig.rc_completed campaign.reconfig.rc_violations
    campaign.reconfig.splits campaign.reconfig.merges
    campaign.reconfig.migrated_keys campaign.reconfig.migration_failures
    campaign.reconfig.well_formed
    (ints_json (Array.of_list campaign.reconfig.active_shards))
    v.pass

let table campaign =
  let scaling_rows =
    List.map
      (fun c ->
        [
          Config.name_to_string c.config;
          string_of_int c.shards;
          string_of_int c.completed;
          Tablefmt.f2 c.duration;
          Tablefmt.f4 c.throughput;
          Tablefmt.f2 c.speedup;
          Tablefmt.f2 c.efficiency;
          string_of_int c.violations;
        ])
      campaign.scaling
  in
  let skew_rows =
    List.map
      (fun c ->
        [
          Config.name_to_string c.sk_config;
          string_of_int c.sk_shards;
          Tablefmt.f2 c.theta;
          string_of_int c.sk_completed;
          Tablefmt.f2 c.imbalance_max;
          Tablefmt.f2 c.imbalance_mean;
          Tablefmt.f2 c.imbalance_ratio;
          string_of_int c.sk_violations;
        ])
      campaign.skew
  in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Tablefmt.render
       ~header:
         [ "config"; "S"; "ops"; "makespan"; "thpt"; "speedup"; "eff"; "viol" ]
       ~rows:scaling_rows);
  Buffer.add_string b "\nZipfian skew (theta = 0.99):\n";
  Buffer.add_string b
    (Tablefmt.render
       ~header:
         [
           "config"; "S"; "theta"; "ops"; "imb max"; "imb mean"; "max/mean";
           "viol";
         ]
       ~rows:skew_rows);
  Printf.bprintf b "\nS=1 control: %s\n"
    (if campaign.identity.identical then "byte-identical to unsharded harness"
     else "DIVERGED");
  let atom c =
    Printf.sprintf
      "%d committed, %d aborted (%d in-doubt, %d partial), phantoms %d, %s"
      c.committed c.aborted c.uncertain c.partial_commits c.phantoms
      (if c.conserved then "conserved" else "conservation VIOLATED")
  in
  Printf.bprintf b "2PC atomic:      %s\n" (atom campaign.atomic_cell);
  Printf.bprintf b "non-atomic ctrl: %s\n" (atom campaign.nonatomic_cell);
  Printf.bprintf b
    "reconfig: %d split(s) + %d merge(s), %d keys migrated (%d failures), map %s, %d violations\n"
    campaign.reconfig.splits campaign.reconfig.merges
    campaign.reconfig.migrated_keys campaign.reconfig.migration_failures
    (if campaign.reconfig.well_formed then "well-formed" else "MALFORMED")
    campaign.reconfig.rc_violations;
  Buffer.contents b
