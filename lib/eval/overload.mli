(** Overload and metastable-failure campaign.

    Three scenario families, each run {e naive} (aggressive retries, no
    defenses) and {e protected} (bounded queues + load shedding + retry
    budget + circuit breaker, same aggressive client policy):

    - {b flash-crowd}: a moderate burst of extra clients joins mid-run;
    - {b slow-replica}: no burst, but one replica's service time is
      pathological — the breaker must steer quorums around it;
    - {b retry-storm}: a violent burst sized so that, without defenses,
      the timeout→retry feedback loop keeps replica queues full long
      after the burst's offered work is done — the metastable negative
      control.

    Every cell runs with the trace-driven consistency checker on: overload
    may cost goodput, never regularity.

    Goodput is measured over two fixed windows of the shared timeline —
    before the burst arrives and well after it ended — from the
    harness's {!Replication.Harness.report.completions} stream.  The
    {!gate} encodes the acceptance criteria: the naive storm must show
    sustained collapse (post-burst goodput at least 50% below baseline)
    while the protected storm and flash crowd must recover to at least
    90% of baseline. *)

type mode = Naive | Protected

val mode_to_string : mode -> string

type kind = Flash_crowd | Slow_replica | Retry_storm

val kind_to_string : kind -> string

type cell = {
  kind : kind;
  mode : mode;
  report : Replication.Harness.report;
  consistency_violations : int;
      (** offline checker violations + online safety violations *)
  pre_goodput : float;  (** ops/time in the steady window before the burst *)
  post_goodput : float;  (** ops/time well after the burst ended *)
  recovery : float;  (** post/pre — 1.0 means full recovery *)
}

type campaign = { cells : cell list }

val run : ?n:int -> ?seed:int -> ?domains:int -> unit -> campaign
(** Run all six cells (deterministic for a fixed seed; [domains] only
    fans the independent cells out over cores). *)

val find : campaign -> kind -> mode -> cell

type verdict = { pass : bool; failures : string list }

val gate : campaign -> verdict
(** The acceptance predicate described above, plus: the protections must
    actually engage in the storm cell (nonzero sheds and suppressed
    retries), the protected slow-replica cell must complete at least as
    many operations as the naive one, and every cell must be free of
    consistency violations. *)

val table : campaign -> string
(** Per-cell goodput windows, recovery ratios and defense counters. *)
