module Config = Arbitrary.Config
module Analysis = Arbitrary.Analysis
module Tree_quorum = Quorum.Tree_quorum
module Hqc = Quorum.Hqc

type t = {
  config : Config.name;
  n : int;
  rd_cost : float;
  wr_cost : float;
  rd_load : float;
  wr_load : float;
  rd_avail : float;
  wr_avail : float;
  e_rd_load : float;
  e_wr_load : float;
}

let feasible_n name n =
  if n < 1 then invalid_arg "Config_metrics.feasible_n: n must be positive";
  match name with
  | Config.Binary ->
    Tree_quorum.n_of_height (Tree_quorum.height (Tree_quorum.of_n ~n))
  | Config.Hqc -> Hqc.n_of_depth (Hqc.depth (Hqc.of_n ~n))
  | Config.Mostly_write -> if n mod 2 = 1 then n else n - 1
  | Config.Unmodified ->
    let rec fit h = if (1 lsl (h + 2)) - 1 > n then h else fit (h + 1) in
    (1 lsl (fit 0 + 1)) - 1
  | Config.Arbitrary | Config.Mostly_read -> n

(* Equation 3.2 applied to a protocol whose read and write quorums share a
   single family (BINARY, HQC). *)
let expected_loads ~load ~avail =
  let e_rd = (avail *. (load -. 1.0)) +. 1.0 in
  let e_wr = (avail *. load) +. (1.0 -. avail) in
  (e_rd, e_wr)

(* The paper draws BINARY, UNMODIFIED and HQC as continuous curves of n,
   although their structures only exist at 2^(h+1)−1 resp. 3^L replicas.
   We do the same for costs and loads (their closed forms accept any n) and
   take availability from the nearest feasible structure — availability
   converges within a few levels, so the snap is invisible in the series. *)

let binary_paper_cost ~h =
  if h < 1.0 then 1.0
  else
    ((2.0 ** h) *. ((1.0 +. h) ** h) /. (h *. ((2.0 +. h) ** (h -. 1.0))))
    -. (2.0 /. h)

let log2 x = log x /. log 2.0

let compute name ~n ~p =
  if n < 1 then invalid_arg "Config_metrics.compute: n must be positive";
  match name with
  | Config.Binary ->
    let h = log2 (float_of_int (n + 1)) -. 1.0 in
    let cost = binary_paper_cost ~h in
    let load = 2.0 /. (h +. 2.0) in
    let avail = Tree_quorum.availability (Tree_quorum.of_n ~n) ~p in
    let e_rd, e_wr = expected_loads ~load ~avail in
    {
      config = name;
      n;
      rd_cost = cost;
      wr_cost = cost;
      rd_load = load;
      wr_load = load;
      rd_avail = avail;
      wr_avail = avail;
      e_rd_load = e_rd;
      e_wr_load = e_wr;
    }
  | Config.Hqc ->
    let nf = float_of_int n in
    let cost = nf ** 0.63 in
    let load = nf ** -0.37 in
    let avail = Hqc.availability (Hqc.of_n ~n) ~p in
    let e_rd, e_wr = expected_loads ~load ~avail in
    {
      config = name;
      n;
      rd_cost = cost;
      wr_cost = cost;
      rd_load = load;
      wr_load = load;
      rd_avail = avail;
      wr_avail = avail;
      e_rd_load = e_rd;
      e_wr_load = e_wr;
    }
  | Config.Unmodified ->
    let lg = log2 (float_of_int (n + 1)) in
    let tree = Config.build name ~n in
    let rd_avail = Analysis.read_availability tree ~p in
    let wr_avail = Analysis.write_availability tree ~p in
    let rd_load = 1.0 and wr_load = 1.0 /. lg in
    {
      config = name;
      n;
      rd_cost = lg;
      wr_cost = float_of_int n /. lg;
      rd_load;
      wr_load;
      rd_avail;
      wr_avail;
      e_rd_load = (rd_avail *. (rd_load -. 1.0)) +. 1.0;
      e_wr_load = (wr_avail *. wr_load) +. (1.0 -. wr_avail);
    }
  | Config.Arbitrary | Config.Mostly_read | Config.Mostly_write ->
    let tree = Config.build name ~n:(feasible_n name n) in
    let s = Analysis.summarize tree ~p in
    {
      config = name;
      n = Arbitrary.Tree.n tree;
      rd_cost = float_of_int s.Analysis.rd_cost;
      wr_cost = s.Analysis.wr_cost_avg;
      rd_load = s.Analysis.rd_load;
      wr_load = s.Analysis.wr_load;
      rd_avail = s.Analysis.rd_availability;
      wr_avail = s.Analysis.wr_availability;
      e_rd_load = s.Analysis.expected_rd_load;
      e_wr_load = s.Analysis.expected_wr_load;
    }

let protocol_of name ~n =
  let n = feasible_n name n in
  match name with
  | Config.Binary -> Tree_quorum.protocol (Tree_quorum.of_n ~n)
  | Config.Hqc -> Hqc.protocol (Hqc.of_n ~n)
  | Config.Unmodified | Config.Arbitrary | Config.Mostly_read
  | Config.Mostly_write ->
    Arbitrary.Quorums.protocol (Config.build name ~n)
