module Config = Arbitrary.Config
module Harness = Replication.Harness
module Coordinator = Replication.Coordinator

type mode = Naive | Protected

let mode_to_string = function Naive -> "naive" | Protected -> "protected"

type kind = Flash_crowd | Slow_replica | Retry_storm

let kind_to_string = function
  | Flash_crowd -> "flash-crowd"
  | Slow_replica -> "slow-replica"
  | Retry_storm -> "retry-storm"

type cell = {
  kind : kind;
  mode : mode;
  report : Harness.report;
  consistency_violations : int;
  pre_goodput : float;  (** ops/time in the steady window before the burst *)
  post_goodput : float;  (** ops/time well after the burst ended *)
  recovery : float;  (** post/pre — 1.0 means full recovery *)
}

type campaign = { cells : cell list }

(* --- campaign geometry ---------------------------------------------------

   One fixed timeline for every cell, so goodput windows line up:

     warmup(1) .. [pre window] .. burst .. settle .. [post window] .. horizon

   The pre window ends when the flash crowd arrives; the post window starts
   long after the burst clients' {e offered work} is done (with healthy
   shedding they finish — succeed or fail fast — within a couple hundred
   time units), so whatever load remains there is self-sustained by the
   retry feedback loop, not by the trigger. *)

let horizon = 4000.0
let burst_at = 1000.0
let pre_window = (200.0, 1000.0)
let post_window = (2600.0, 3800.0)

(* Per-message replica service cost.  High enough that a replica is a real
   bottleneck (a quorum op costs a few service times end-to-end), low
   enough that the steady workload below leaves headroom. *)
let service_time = 4.0

(* Metastability needs enough {e independent} retry sources: each client
   is closed-loop (one op in flight), so the sustained retry pressure is
   roughly [clients × fanout / retry interval].  Thirty clients with long
   think times offer the same healthy load four impatient ones would, but
   once they are all stuck retrying they can hold every replica queue
   above saturation on their own. *)
let steady_clients = 30
let steady_think = 200.0

(* Aggressive client retry policy — the naive config's mistake and the
   protected config's stress test: effectively unbounded retries, no
   deadline, and an impatient backoff cap. *)
let overload_coordinator =
  {
    Coordinator.default_config with
    Coordinator.timeout = 30.0;
    max_retries = 50;
    deadline = Float.infinity;
    backoff =
      { Detect.Backoff.base = 2.0; factor = 1.5; max_delay = 10.0; jitter = 0.2 };
  }

let burst =
  {
    Harness.burst_at;
    burst_clients = 24;
    burst_ops = 20;
    burst_think = 1.0;
  }

let protections =
  {
    Harness.overload_defaults with
    Harness.queue_capacity = 24;
    shed_watermark = 6;
    retry_budget = Some { Detect.Budget.ratio = 0.1; burst = 5.0 };
    breaker =
      Some
        {
          Detect.Breaker.threshold = 5;
          cooldown = 150.0;
          cooldown_factor = 2.0;
          max_cooldown = 400.0;
        };
  }

let overload_for kind mode =
  let base =
    match mode with
    | Naive -> { Harness.overload_defaults with Harness.service_time }
    | Protected -> { protections with Harness.service_time }
  in
  match kind with
  | Flash_crowd ->
    (* A moderate crowd: short-lived extra load the protected system must
       absorb and the naive system merely survives or not. *)
    { base with Harness.burst = Some { burst with Harness.burst_clients = 12 } }
  | Retry_storm ->
    (* The metastable cell: a violent crowd whose retries (plus the steady
       clients') can keep the queues full after the crowd's work is done. *)
    { base with Harness.burst = Some burst }
  | Slow_replica ->
    (* No burst; one replica is pathologically slow.  The breaker must
       learn to route around it, the naive system keeps stumbling. *)
    { base with Harness.slow_sites = [ (0, 60.0) ] }

let ok_ops report = report.Harness.reads_ok + report.Harness.writes_ok

let goodput completions ~window:(t0, t1) =
  let hits =
    Array.fold_left
      (fun acc t -> if t >= t0 && t < t1 then acc + 1 else acc)
      0 completions
  in
  float_of_int hits /. (t1 -. t0)

let run_cell ~n ~seed (kind, mode) =
  let n = Config_metrics.feasible_n Config.Arbitrary n in
  let proto = Config_metrics.protocol_of Config.Arbitrary ~n in
  let s = Harness.default_scenario ~proto in
  let scenario =
    {
      s with
      Harness.n_clients = steady_clients;
      (* Enough offered work that steady clients stay active through the
         post window; the horizon, not op exhaustion, ends the run. *)
      ops_per_client = 100;
      (* Read-heavy over a wide key space: per-key write locks must not be
         the bottleneck, the replica service queues must be — lock
         convoying is a different failure mode than the one under test. *)
      read_fraction = 0.8;
      key_space = 64;
      think_time = steady_think;
      seed;
      coordinator = overload_coordinator;
      horizon;
      warmup = 1.0;
      check_consistency = true;
      overload = Some (overload_for kind mode);
    }
  in
  let report = Harness.run scenario in
  let consistency = Consistency.check report.Harness.spans in
  let pre = goodput report.Harness.completions ~window:pre_window in
  let post = goodput report.Harness.completions ~window:post_window in
  {
    kind;
    mode;
    report;
    consistency_violations =
      List.length consistency.Consistency.violations
      + report.Harness.safety_violations;
    pre_goodput = pre;
    post_goodput = post;
    recovery = (if pre > 0.0 then post /. pre else 0.0);
  }

let all_cells =
  [
    (Flash_crowd, Naive);
    (Flash_crowd, Protected);
    (Slow_replica, Naive);
    (Slow_replica, Protected);
    (Retry_storm, Naive);
    (Retry_storm, Protected);
  ]

let run ?(n = 9) ?(seed = 42) ?domains () =
  { cells = Parallel.map ?domains (run_cell ~n ~seed) all_cells }

let find campaign kind mode =
  List.find (fun c -> c.kind = kind && c.mode = mode) campaign.cells

(* --- acceptance gate ---------------------------------------------------- *)

type verdict = { pass : bool; failures : string list }

let gate campaign =
  let failures = ref [] in
  let check cond fmt =
    Printf.ksprintf (fun msg -> if not cond then failures := msg :: !failures) fmt
  in
  let storm_naive = find campaign Retry_storm Naive in
  let storm_prot = find campaign Retry_storm Protected in
  let flash_prot = find campaign Flash_crowd Protected in
  let slow_naive = find campaign Slow_replica Naive in
  let slow_prot = find campaign Slow_replica Protected in
  (* The negative control must actually demonstrate metastability: with no
     defenses, goodput long after the burst stays collapsed (>=50% below
     the pre-burst baseline). *)
  check
    (storm_naive.recovery <= 0.5)
    "retry-storm/naive recovered to %.2f of baseline (want <= 0.5: metastable collapse)"
    storm_naive.recovery;
  (* With budget + breaker + shedding the same storm must not be
     metastable: post-burst goodput recovers to >=90% of baseline. *)
  check
    (storm_prot.recovery >= 0.9)
    "retry-storm/protected recovered only to %.2f of baseline (want >= 0.9)"
    storm_prot.recovery;
  check
    (flash_prot.recovery >= 0.9)
    "flash-crowd/protected recovered only to %.2f of baseline (want >= 0.9)"
    flash_prot.recovery;
  (* Routing around the slow replica must beat stumbling into it. *)
  check
    (ok_ops slow_prot.report >= ok_ops slow_naive.report)
    "slow-replica/protected completed %d ops < naive's %d"
    (ok_ops slow_prot.report) (ok_ops slow_naive.report);
  (* The protections must actually engage in the storm cell. *)
  check
    (storm_prot.report.Harness.replica_sheds > 0)
    "retry-storm/protected shed nothing (admission control never engaged)";
  check
    (storm_prot.report.Harness.retries_suppressed > 0)
    "retry-storm/protected suppressed no retries (budget never engaged)";
  (* Overload may cost goodput, never consistency. *)
  List.iter
    (fun c ->
      check
        (c.consistency_violations = 0)
        "%s/%s: %d consistency violations (want 0)" (kind_to_string c.kind)
        (mode_to_string c.mode) c.consistency_violations)
    campaign.cells;
  { pass = !failures = []; failures = List.rev !failures }

let table campaign =
  let rows =
    List.map
      (fun c ->
        [
          kind_to_string c.kind;
          mode_to_string c.mode;
          Tablefmt.f2 c.pre_goodput;
          Tablefmt.f2 c.post_goodput;
          Tablefmt.f2 c.recovery;
          string_of_int (ok_ops c.report);
          string_of_int c.report.Harness.replica_sheds;
          string_of_int c.report.Harness.overload_drops;
          string_of_int c.report.Harness.retries_suppressed;
          string_of_int c.report.Harness.breaker_trips;
          string_of_int c.report.Harness.queue_peak;
          string_of_int c.consistency_violations;
        ])
      campaign.cells
  in
  Tablefmt.render
    ~header:
      [
        "scenario"; "mode"; "pre gp"; "post gp"; "recovery"; "ops ok";
        "sheds"; "drops"; "supp"; "trips"; "peakq"; "viol";
      ]
    ~rows
