(** Batched-vs-unbatched evaluation cells for the throughput architecture.

    Builds matched scenario pairs — identical workload, seed and protocol,
    differing only in the {!Replication.Harness.scenario.batching} knob —
    and fingerprints reports so byte-identity claims (batch size 1 ==
    unbatched; same seed == same run) are one string comparison. *)

type knobs = {
  batch_size : int;
  group_commit : bool;
  pipeline : int;
}
(** Mirror of {!Replication.Harness.batching} so callers can talk about
    batch shapes without opening the harness. *)

val default_knobs : knobs
(** The shape the benchmark gate runs: batch 32, group commit on,
    pipeline 8. *)

val identity_knobs : knobs
(** The determinism control: batch 1, pipeline 1 — must reproduce the
    unbatched run byte-for-byte. *)

val to_batching : knobs -> Replication.Harness.batching

val scenario :
  ?batching:Replication.Harness.batching ->
  name:Arbitrary.Config.name ->
  n:int ->
  ops:int ->
  seed:int ->
  unit ->
  Replication.Harness.scenario
(** The benchmark workload on a §4 configuration: one client, [ops]
    operations, 50/50 read mix, short think time.  [n] is adjusted with
    {!Config_metrics.feasible_n}. *)

val pair :
  ?knobs:knobs ->
  name:Arbitrary.Config.name ->
  n:int ->
  ops:int ->
  seed:int ->
  unit ->
  Replication.Harness.scenario * Replication.Harness.scenario
(** [(unbatched, batched)] over the identical workload. *)

val fingerprint : Replication.Harness.report -> string
(** Digest (hex) of every deterministic observable in the report: op and
    failure counts, latency statistics, message counters, per-replica
    tallies, the full completion-time series, and the batching counters.
    Two runs with equal fingerprints behaved identically as far as the
    harness can see — the equality backing the batch-size-1 and
    same-seed determinism claims. *)
