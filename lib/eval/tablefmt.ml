let render ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let pad i cell = Printf.sprintf "%-*s" widths.(i) cell in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "  "
      (List.init (min cols (List.length header)) (fun i ->
           String.make widths.(i) '-'))
  in
  String.concat "\n" (line header :: rule :: List.map line rows) ^ "\n"

let f2 x = Printf.sprintf "%.2f" x
let f4 x = Printf.sprintf "%.4f" x
