(** Closed-form metrics of the six §4 configurations at a given system
    size, shared by every figure. *)

type t = {
  config : Arbitrary.Config.name;
  n : int;  (** the feasible size actually used (e.g. 2^(h+1)−1 for
                BINARY); the nearest one at or below the request *)
  rd_cost : float;
  wr_cost : float;  (** average write cost under the uniform strategy *)
  rd_load : float;
  wr_load : float;
  rd_avail : float;
  wr_avail : float;
  e_rd_load : float;  (** expected read load, Equation 3.2 *)
  e_wr_load : float;
}

val feasible_n : Arbitrary.Config.name -> int -> int
(** Largest size ≤ the request at which the configuration is defined
    (odd for MOSTLY-WRITE, 2^(h+1)−1 for BINARY, 3^L for HQC, …). *)

val compute : Arbitrary.Config.name -> n:int -> p:float -> t
(** Metrics at [feasible_n name n].  BINARY uses the Tree-Quorum formulas
    (its quorums serve both operations), HQC Kumar's, and the remaining
    four the arbitrary protocol's closed forms on their §4 trees. *)

val protocol_of : Arbitrary.Config.name -> n:int -> Quorum.Protocol.t
(** An executable protocol instance for the configuration at
    [feasible_n name n] — used by the simulation-vs-analytic ablation. *)
