module Config = Arbitrary.Config
module Harness = Replication.Harness
module Coordinator = Replication.Coordinator
module Availability = Quorum.Availability
module Protocol = Quorum.Protocol
module Rng = Dsutil.Rng

type row = {
  config : Config.name;
  n : int;
  analytic_rd_cost : float;
  measured_rd_cost : float;
  analytic_wr_cost : float;
  measured_wr_cost : float;
  analytic_rd_load : float;
  measured_rd_load : float;
  analytic_wr_load : float;
  measured_wr_load : float;
}

let scenario_for proto ~read_fraction ~ops ~seed =
  let s = Harness.default_scenario ~proto in
  {
    s with
    Harness.n_clients = 1;
    ops_per_client = ops;
    read_fraction;
    think_time = 0.1;
    seed;
  }

let sum = Array.fold_left ( + ) 0

let per_op counts ops =
  if ops = 0 then 0.0 else float_of_int (sum counts) /. float_of_int ops

let measure name ~n ~ops ~seed =
  (* Compare at the size the protocol instance actually has (HQC and BINARY
     snap to 3^L resp. 2^(h+1)−1 replicas). *)
  let n = Config_metrics.feasible_n name n in
  let metrics = Config_metrics.compute name ~n ~p:Figures.default_p in
  let proto = Config_metrics.protocol_of name ~n in
  let reads =
    Harness.run (scenario_for proto ~read_fraction:1.0 ~ops ~seed)
  in
  let writes =
    Harness.run (scenario_for proto ~read_fraction:0.0 ~ops ~seed:(seed + 1))
  in
  {
    config = name;
    n = Protocol.universe_size proto;
    analytic_rd_cost = metrics.Config_metrics.rd_cost;
    measured_rd_cost = per_op reads.Harness.replica_reads_served reads.Harness.reads_ok;
    analytic_wr_cost = metrics.Config_metrics.wr_cost;
    measured_wr_cost =
      per_op writes.Harness.replica_prepares_seen writes.Harness.writes_ok;
    analytic_rd_load = metrics.Config_metrics.rd_load;
    measured_rd_load = Harness.measured_read_load reads;
    analytic_wr_load = metrics.Config_metrics.wr_load;
    measured_wr_load = Harness.measured_write_load writes;
  }

let cost_load_table ?(n = 65) ?(ops = 400) ?(seed = 42) () =
  let rows =
    List.map
      (fun name ->
        let r = measure name ~n ~ops ~seed in
        [
          Config.name_to_string name;
          string_of_int r.n;
          Tablefmt.f2 r.analytic_rd_cost;
          Tablefmt.f2 r.measured_rd_cost;
          Tablefmt.f2 r.analytic_wr_cost;
          Tablefmt.f2 r.measured_wr_cost;
          Tablefmt.f4 r.analytic_rd_load;
          Tablefmt.f4 r.measured_rd_load;
          Tablefmt.f4 r.analytic_wr_load;
          Tablefmt.f4 r.measured_wr_load;
        ])
      Config.all_names
  in
  Printf.sprintf
    "== Ablation: simulated vs analytic, n=%d (%d ops each way) ==\n%s\n" n ops
    (Tablefmt.render
       ~header:
         [
           "config"; "n"; "rdC ana"; "rdC sim"; "wrC ana"; "wrC sim";
           "rdL ana"; "rdL sim"; "wrL ana"; "wrL sim";
         ]
       ~rows)

let cost_sweep ?(sizes = [ 9; 17; 33; 65 ]) ?(ops = 200) ?(seed = 42) () =
  let header =
    "n" :: List.map Config.name_to_string Config.all_names
  in
  let table pick =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun name ->
               let r = measure name ~n ~ops ~seed in
               Printf.sprintf "%s (n=%d)" (Tablefmt.f2 (pick r)) r.n)
             Config.all_names)
      sizes
  in
  Printf.sprintf
    "== Figure 2 (measured): replicas contacted per operation (%d ops) ==
%s
%s
"
    ops
    ("-- reads --
" ^ Tablefmt.render ~header ~rows:(table (fun r -> r.measured_rd_cost)))
    ("-- writes --
" ^ Tablefmt.render ~header ~rows:(table (fun r -> r.measured_wr_cost)))

let latency_table ?(n = 65) ?(ops = 300) ?(seed = 42) () =
  let rows =
    List.map
      (fun name ->
        let n = Config_metrics.feasible_n name n in
        let proto = Config_metrics.protocol_of name ~n in
        let r =
          Harness.run (scenario_for proto ~read_fraction:0.5 ~ops ~seed)
        in
        let cell stats =
          if Dsutil.Stats.count stats = 0 then "-"
          else
            Printf.sprintf "%.2f / %.2f" (Dsutil.Stats.mean stats)
              (Dsutil.Stats.percentile stats 0.99)
        in
        [
          Config.name_to_string name;
          string_of_int n;
          cell r.Harness.read_latency;
          cell r.Harness.write_latency;
          Tablefmt.f2 (Harness.messages_per_op r);
        ])
      Config.all_names
  in
  Printf.sprintf
    "== Measured latency, mixed 50/50 workload (n~%d, %d ops; mean / p99) ==
%s
"
    n ops
    (Tablefmt.render
       ~header:[ "config"; "n"; "read latency"; "write latency"; "msgs/op" ]
       ~rows)

let availability_table ?(n = 65) ?(p = Figures.default_p) ?(trials = 4000)
    ?(seed = 42) ?domains () =
  if trials <= 0 then invalid_arg "Simulate.availability_table: trials";
  (* Trials split into a fixed number of independently seeded chunks —
     one task per (config, direction, chunk) — so the estimate is the
     same for any domain count; hit counts (integers) sum exactly. *)
  let chunks = min 16 trials in
  let chunk_trials c =
    (trials / chunks) + if c < trials mod chunks then 1 else 0
  in
  let configs = List.mapi (fun ki name -> (ki, name)) Config.all_names in
  let tasks =
    List.concat_map
      (fun (ki, name) ->
        List.concat_map
          (fun dir -> List.init chunks (fun c -> (ki, name, dir, c)))
          [ `Read; `Write ])
      configs
  in
  let run_chunk (ki, name, dir, c) =
    (* Per-task protocol instance: tasks share nothing. *)
    let proto = Config_metrics.protocol_of name ~n in
    let dir_tag = match dir with `Read -> 0 | `Write -> 1 in
    let rng = Rng.create (seed + (10_000 * ki) + (1_000 * dir_tag) + c) in
    let trials = chunk_trials c in
    let hits =
      match dir with
      | `Read -> Availability.read_availability_hits ~trials ~rng ~p proto
      | `Write -> Availability.write_availability_hits ~trials ~rng ~p proto
    in
    (ki, dir_tag, hits)
  in
  let totals = Array.make_matrix (List.length configs) 2 0 in
  List.iter
    (fun (ki, d, h) -> totals.(ki).(d) <- totals.(ki).(d) + h)
    (Parallel.map ?domains run_chunk tasks);
  let mc ki d = float_of_int totals.(ki).(d) /. float_of_int trials in
  let rows =
    List.map
      (fun (ki, name) ->
        let metrics = Config_metrics.compute name ~n ~p in
        let proto = Config_metrics.protocol_of name ~n in
        [
          Config.name_to_string name;
          string_of_int (Protocol.universe_size proto);
          Tablefmt.f4 metrics.Config_metrics.rd_avail;
          Tablefmt.f4 (mc ki 0);
          Tablefmt.f4 metrics.Config_metrics.wr_avail;
          Tablefmt.f4 (mc ki 1);
        ])
      configs
  in
  Printf.sprintf
    "== Availability: closed form vs Monte-Carlo quorum assembly (n=%d, p=%.2f, %d trials) ==\n%s\n"
    n p trials
    (Tablefmt.render
       ~header:[ "config"; "n"; "rdA ana"; "rdA mc"; "wrA ana"; "wrA mc" ]
       ~rows)

let failure_injection_run name ~n ~p ~ops ~seed =
  let proto = Config_metrics.protocol_of name ~n in
  let n_replicas = Protocol.universe_size proto in
  let rng = Rng.create seed in
  let failures =
    List.filter_map
      (fun site ->
        if Rng.bernoulli rng p then None
        else Some { Dsim.Failure.time = 0.0; event = Dsim.Failure.Crash site })
      (List.init n_replicas Fun.id)
  in
  let s = Harness.default_scenario ~proto in
  Harness.run
    {
      s with
      Harness.n_clients = 1;
      ops_per_client = ops;
      read_fraction = 0.5;
      failures;
      seed;
      warmup = 1.0;
      coordinator = { Coordinator.default_config with max_retries = 0 };
    }

let failure_availability_table ?(n = 33) ?(p = Figures.default_p)
    ?(patterns = 60) ?(seed = 42) ?domains () =
  (* Every crash pattern is a self-contained seeded simulation; fan them
     all out at once and fold counters back per configuration in task
     order, so the table is identical for any domain count. *)
  let tasks =
    List.concat_map
      (fun name -> List.init patterns (fun i -> (name, i)))
      Config.all_names
  in
  let run_pattern (name, i) =
    let r = failure_injection_run name ~n ~p ~ops:10 ~seed:(seed + i) in
    ( name,
      r.Harness.reads_ok,
      r.Harness.reads_ok + r.Harness.reads_failed,
      r.Harness.writes_ok,
      r.Harness.writes_ok + r.Harness.writes_failed )
  in
  let results = Parallel.map ?domains run_pattern tasks in
  let rows =
    List.map
      (fun name ->
        let metrics = Config_metrics.compute name ~n:(Config_metrics.feasible_n name n) ~p in
        (* A full write operation also needs the version-phase read quorum;
           for the arbitrary-tree configurations use the combined closed
           form, for BINARY/HQC read and write quorums coincide. *)
        let wr_op_avail =
          match name with
          | Config.Binary | Config.Hqc -> metrics.Config_metrics.wr_avail
          | Config.Unmodified | Config.Arbitrary | Config.Mostly_read
          | Config.Mostly_write ->
            let tree =
              Config.build name ~n:(Config_metrics.feasible_n name n)
            in
            Arbitrary.Analysis.write_operation_availability tree ~p
        in
        let reads_ok = ref 0 and reads_all = ref 0 in
        let writes_ok = ref 0 and writes_all = ref 0 in
        List.iter
          (fun (name', rok, rall, wok, wall) ->
            if name' = name then begin
              reads_ok := !reads_ok + rok;
              reads_all := !reads_all + rall;
              writes_ok := !writes_ok + wok;
              writes_all := !writes_all + wall
            end)
          results;
        let rate ok all = if all = 0 then 0.0 else float_of_int ok /. float_of_int all in
        [
          Config.name_to_string name;
          Tablefmt.f4 metrics.Config_metrics.rd_avail;
          Tablefmt.f4 (rate !reads_ok !reads_all);
          Tablefmt.f4 wr_op_avail;
          Tablefmt.f4 (rate !writes_ok !writes_all);
        ])
      Config.all_names
  in
  Printf.sprintf
    "== End-to-end availability under crash injection (n=%d, p=%.2f, %d patterns) ==\n\
     (write analytic = combined read+write quorum availability: a full\n\
     write also runs a version-phase read, see Analysis.write_operation_availability)\n%s\n"
    n p patterns
    (Tablefmt.render
       ~header:[ "config"; "rdA ana"; "rdA e2e"; "wrOpA ana"; "wrA e2e" ]
       ~rows)
