module Config = Arbitrary.Config
module Churn_harness = Replication.Churn_harness
module Coordinator = Replication.Coordinator
module Replica = Replication.Replica
module Store = Replication.Store
module Failure = Dsim.Failure
module Engine = Dsim.Engine
module Network = Dsim.Network

(* The four fault-injection shapes of the membership campaign.  Donor and
   recipient crashes hit a plain provisioning rejoin mid-transfer; the
   partition isolates a spare in the middle of its promotion; rolling
   chains unfenced promote / re-promote steps and one real decommission
   while a background crash keeps the rejoin path busy. *)
type kind = Donor_crash | Recipient_crash | Partition_promotion | Rolling

let kind_to_string = function
  | Donor_crash -> "donor-crash"
  | Recipient_crash -> "recipient-crash"
  | Partition_promotion -> "partition-promotion"
  | Rolling -> "rolling"

let default_kinds =
  [ Donor_crash; Recipient_crash; Partition_promotion; Rolling ]

let default_configs =
  [ Config.Mostly_read; Config.Mostly_write; Config.Arbitrary; Config.Unmodified ]

(* Same degradation-tolerant coordinator the chaos campaign uses. *)
let churn_coordinator =
  {
    Coordinator.default_config with
    Coordinator.max_retries = 8;
    adaptive_timeout = true;
    deadline = 600.0;
  }

(* Failure scripts are phrased against the identity assignment the run
   starts with: site p holds position p, sites n.. are spares.  The
   rejoining replica is the last occupant (site n-1); its first donor
   pick is the lowest live occupant, i.e. site 0 — which is exactly who
   the donor-crash script kills mid-transfer. *)
let failures_of kind ~n =
  match kind with
  | Donor_crash ->
    [
      { Failure.time = 60.0; event = Failure.Crash (n - 1) };
      { Failure.time = 100.0; event = Failure.Recover (n - 1) };
      { Failure.time = 103.0; event = Failure.Crash 0 };
      { Failure.time = 220.0; event = Failure.Recover 0 };
    ]
  | Recipient_crash ->
    [
      { Failure.time = 60.0; event = Failure.Crash (n - 1) };
      { Failure.time = 100.0; event = Failure.Recover (n - 1) };
      { Failure.time = 104.0; event = Failure.Crash (n - 1) };
      { Failure.time = 160.0; event = Failure.Recover (n - 1) };
    ]
  | Partition_promotion ->
    (* isolate the spare (site n) shortly after its promotion starts *)
    [
      { Failure.time = 103.0; event = Failure.Partition [ [ n ] ] };
      { Failure.time = 200.0; event = Failure.Heal };
    ]
  | Rolling ->
    (* background rejoin churn while memberships roll *)
    [
      { Failure.time = 300.0; event = Failure.Crash (n - 1) };
      { Failure.time = 330.0; event = Failure.Recover (n - 1) };
    ]

let membership_of kind ~n =
  match kind with
  | Donor_crash | Recipient_crash -> []
  | Partition_promotion ->
    [ { Churn_harness.at = 100.0; position = min 1 (n - 1); spare = n;
        fence = false } ]
  | Rolling ->
    (* roll position 0 out to the spare and back (unfenced: the displaced
       occupant keeps its history and is re-promoted), then properly
       decommission position 1's occupant onto the second spare *)
    [
      { Churn_harness.at = 80.0; position = 0; spare = n; fence = false };
      { Churn_harness.at = 500.0; position = 0; spare = 0; fence = false };
      { Churn_harness.at = 900.0; position = min 1 (n - 1); spare = n + 1;
        fence = true };
    ]

type cell = {
  c_config : Config.name;
  c_kind : string;
  c_n : int;
  c_report : Churn_harness.report;
}

let make_scenario ~proto ~n ~kind ~clients ~ops ~seed ~horizon ~fence ~wal =
  let s = Churn_harness.default_scenario ~proto in
  {
    s with
    Churn_harness.spares = 2;
    n_clients = clients;
    ops_per_client = ops;
    key_space = 8;
    think_time = 3.0;
    failures = failures_of kind ~n;
    membership = membership_of kind ~n;
    seed;
    coordinator = churn_coordinator;
    horizon;
    wal;
    (* one key per chunk: transfers span enough virtual time that the
       scripted mid-transfer crashes actually land mid-transfer *)
    chunk_size = 1;
    fence_provisioning = fence;
  }

let run ?(n = 45) ?(clients = 3) ?(ops = 25) ?(seed = 42) ?(horizon = 3000.0)
    ?(configs = default_configs) ?(kinds = default_kinds)
    ?(fence = true) ?(wal = Replication.Wal.Sync_on_commit) ?domains () =
  let specs =
    List.concat
      (List.mapi
         (fun ci name -> List.mapi (fun si kind -> (ci, name, si, kind)) kinds)
         configs)
  in
  let run_cell (ci, name, si, kind) =
    let n = Config_metrics.feasible_n name n in
    let proto = Config_metrics.protocol_of name ~n in
    let cell_seed = seed + (1000 * ci) + (100 * si) in
    let scenario =
      make_scenario ~proto ~n ~kind ~clients ~ops ~seed:cell_seed ~horizon
        ~fence ~wal
    in
    {
      c_config = name;
      c_kind = kind_to_string kind;
      c_n = n;
      c_report = Churn_harness.run scenario;
    }
  in
  Parallel.map ?domains run_cell specs

(* The control that must leak: every occupant blacks out at once under a
   volatile-suffix WAL, and provisioning fencing is OFF — each replica
   serves from its gutted store the moment it recovers, while (and even
   after) provisioning from donors that lost the same suffix. *)
let blackout_failures ~n =
  List.concat
    (List.init n (fun i ->
         [
           { Failure.time = 100.0; event = Failure.Crash i };
           { Failure.time = 140.0; event = Failure.Recover i };
         ]))

let run_negative ?(n = 45) ?(clients = 3) ?(ops = 40) ?(seed = 42)
    ?(horizon = 3000.0) ?(configs = default_configs) ?domains () =
  let run_cell (ci, name) =
    let n = Config_metrics.feasible_n name n in
    let proto = Config_metrics.protocol_of name ~n in
    let cell_seed = seed + (1000 * ci) in
    let s = Churn_harness.default_scenario ~proto in
    let scenario =
      {
        s with
        Churn_harness.spares = 0;
        n_clients = clients;
        ops_per_client = ops;
        key_space = 4;
        think_time = 3.0;
        failures = blackout_failures ~n;
        seed = cell_seed;
        coordinator = churn_coordinator;
        horizon;
        wal = Replication.Wal.Async 60.0;
        chunk_size = 1;
        fence_provisioning = false;
      }
    in
    {
      c_config = name;
      c_kind = "blackout-unfenced";
      c_n = n;
      c_report = Churn_harness.run scenario;
    }
  in
  Parallel.map ?domains run_cell (List.mapi (fun ci name -> (ci, name)) configs)

(* A sharded control plane churning: S independent tree instances (one
   per key shard), each under its own donor-crash rejoin plus a rolling
   membership script, seeded per shard.  Shards share nothing, so the
   campaign runs them as separate cells and the gate sums them. *)
let run_sharded ?(shards = 3) ?(n = 45) ?(clients = 3) ?(ops = 25)
    ?(seed = 42) ?(horizon = 3000.0) ?(config = Config.Unmodified) ?domains ()
    =
  let run_cell shard =
    let n = Config_metrics.feasible_n config n in
    let proto = Config_metrics.protocol_of config ~n in
    let cell_seed = seed + (17 * shard) in
    let scenario =
      make_scenario ~proto ~n ~kind:Rolling ~clients ~ops ~seed:cell_seed
        ~horizon ~fence:true ~wal:Replication.Wal.Sync_on_commit
    in
    let scenario =
      { scenario with Churn_harness.failures = failures_of Donor_crash ~n }
    in
    {
      c_config = config;
      c_kind = Printf.sprintf "shard-%d" shard;
      c_n = n;
      c_report = Churn_harness.run scenario;
    }
  in
  Parallel.map ?domains run_cell (List.init shards Fun.id)

let violations cells =
  List.fold_left
    (fun acc c -> acc + c.c_report.Churn_harness.safety_violations)
    0 cells

let rate ok failed =
  let total = ok + failed in
  if total = 0 then 1.0 else float_of_int ok /. float_of_int total

let table cells =
  let rows =
    List.map
      (fun c ->
        let r = c.c_report in
        [
          Config.name_to_string c.c_config;
          string_of_int c.c_n;
          c.c_kind;
          Tablefmt.f4 (rate r.Churn_harness.reads_ok r.Churn_harness.reads_failed);
          Tablefmt.f4
            (rate r.Churn_harness.writes_ok r.Churn_harness.writes_failed);
          Printf.sprintf "%d/%d" r.Churn_harness.promotions_done
            r.Churn_harness.promotions_started;
          string_of_int r.Churn_harness.decommissions_done;
          string_of_int r.Churn_harness.provision_runs;
          string_of_int r.Churn_harness.provision_chunks;
          string_of_int r.Churn_harness.provision_resumes;
          string_of_int r.Churn_harness.provision_donor_failovers;
          string_of_int r.Churn_harness.failed_rejoins;
          string_of_int r.Churn_harness.safety_violations;
        ])
      cells
  in
  Tablefmt.render
    ~header:
      [
        "config"; "n"; "scenario"; "rd rate"; "wr rate"; "promo"; "decomm";
        "prov"; "chunks"; "resumes"; "failover"; "stuck"; "viol";
      ]
    ~rows

(* --- cold-rejoin cost: provisioning vs per-key catch-up ------------------- *)

type rejoin_comparison = {
  rj_keys : int;
  rj_n : int;
  rj_catchup_rounds : int;
  rj_provision_rounds : int;
  rj_provision_chunks : int;
  rj_catchup_serving : bool;
  rj_provision_serving : bool;
  rj_speedup : float;
}

(* Identical worlds: [n] replicas whose committed stores hold [keys]
   keys, the last replica amnesia-crashes cold (nothing in its WAL) and
   rejoins — through per-key quorum catch-up in one world, through
   chunked snapshot provisioning in the other.  The comparison counts
   protocol rounds, the unit both rejoin paths share. *)
let cold_rejoin ~n ~keys ~chunk_size ~seed ~provisioned =
  let name = Config.Unmodified in
  let n = Config_metrics.feasible_n name n in
  let proto = Config_metrics.protocol_of name ~n in
  let engine = Engine.create ~seed () in
  let net = Network.create ~engine ~n () in
  Network.set_crash_mode net Network.Amnesia;
  let recovery =
    if provisioned then
      Replica.recovery ~catch_up:false
        ~provision:
          (Replica.provision ~key_space:keys ~chunk_size
             ~donors:(fun () -> List.init n Fun.id)
             ())
        ()
    else
      Replica.recovery ~catch_up:true
        ~keys:(fun () -> List.init keys Fun.id)
        ~proto ()
  in
  let replicas =
    Array.init n (fun site -> Replica.create ~site ~net ~recovery ())
  in
  (* Populate committed state directly: the comparison measures rejoin
     transfer cost, not workload generation.  The WALs stay empty, so the
     crash leaves the rejoiner genuinely cold. *)
  Array.iter
    (fun r ->
      let store = Replica.store r in
      for key = 0 to keys - 1 do
        ignore (Store.install_flat store ~key ~version:1 ~sid:0 ~value:"v")
      done)
    replicas;
  let target = n - 1 in
  Failure.apply net
    [
      { Failure.time = 10.0; event = Failure.Crash target };
      { Failure.time = 20.0; event = Failure.Recover target };
    ];
  Engine.run ~until:2_000_000.0 engine;
  let r = replicas.(target) in
  ( n,
    Replica.catchup_rounds r,
    Replica.provision_rounds r,
    Replica.provision_chunks r,
    Replica.is_serving r )

let cold_rejoin_comparison ?(n = 7) ?(keys = 10_000) ?(chunk_size = 512)
    ?(seed = 42) () =
  let rj_n, rj_catchup_rounds, _, _, rj_catchup_serving =
    cold_rejoin ~n ~keys ~chunk_size ~seed ~provisioned:false
  in
  let _, _, rj_provision_rounds, rj_provision_chunks, rj_provision_serving =
    cold_rejoin ~n ~keys ~chunk_size ~seed ~provisioned:true
  in
  {
    rj_keys = keys;
    rj_n;
    rj_catchup_rounds;
    rj_provision_rounds;
    rj_provision_chunks;
    rj_catchup_serving;
    rj_provision_serving;
    rj_speedup =
      (if rj_provision_rounds = 0 then 0.0
       else float_of_int rj_catchup_rounds /. float_of_int rj_provision_rounds);
  }
