(** Measured counterparts of the analytic figures: the same quantities
    observed from full protocol executions on the simulated network
    (ablation A1 of DESIGN.md).

    Costs and loads are measured from replica-side counters of read-only
    and write-only runs; availability is measured by driving the
    protocols' own quorum assembly over Monte-Carlo up/down patterns and,
    for the full stack, by crash-injected simulation runs. *)

type row = {
  config : Arbitrary.Config.name;
  n : int;
  analytic_rd_cost : float;
  measured_rd_cost : float;
  analytic_wr_cost : float;
  measured_wr_cost : float;
  analytic_rd_load : float;
  measured_rd_load : float;
  analytic_wr_load : float;
  measured_wr_load : float;
}

val measure : Arbitrary.Config.name -> n:int -> ops:int -> seed:int -> row
(** Runs one read-only and one write-only scenario (single client, no
    failures) and extracts measured cost (replicas contacted per
    operation) and measured load (most-loaded replica's share of
    operations). *)

val cost_load_table : ?n:int -> ?ops:int -> ?seed:int -> unit -> string
(** All six configurations at [n] (default 65, 400 ops). *)

val cost_sweep : ?sizes:int list -> ?ops:int -> ?seed:int -> unit -> string
(** The measured counterpart of Figure 2: replicas contacted per read and
    per write, observed from real executions, across system sizes. *)

val latency_table : ?n:int -> ?ops:int -> ?seed:int -> unit -> string
(** Measured operation latencies (mean and p99, in simulated time units)
    per configuration under a mixed workload — latency follows the number
    of sequential phases, not just the contact count. *)

val availability_table :
  ?n:int -> ?p:float -> ?trials:int -> ?seed:int -> ?domains:int -> unit -> string
(** Closed-form availability vs Monte-Carlo assembly success rate.
    Trials are split into independently seeded chunks fanned across
    [domains] cores ({!Parallel}); hit counts are summed as integers, so
    the table is byte-identical for any domain count. *)

val failure_injection_run :
  Arbitrary.Config.name ->
  n:int ->
  p:float ->
  ops:int ->
  seed:int ->
  Replication.Harness.report
(** Full-stack run in which each replica is crashed independently with
    probability 1−p at time 0 and coordinators get no retries — the
    success rate estimates operation availability end-to-end. *)

val failure_availability_table :
  ?n:int -> ?p:float -> ?patterns:int -> ?seed:int -> ?domains:int -> unit -> string
(** End-to-end availability from [failure_injection_run] repeated over
    many random crash patterns.  Patterns are per-seed independent and
    fan across [domains] cores; output is byte-identical for any domain
    count. *)
