(** First benchmark baseline: instrumented end-to-end runs of the §4
    workload configurations, checked against the closed forms.

    Each case runs the {!Replication.Harness} twice — a read-only and a
    write-only pass, mirroring {!Simulate.measure} so the measured
    per-site load is the empirical counterpart of the paper's system load
    L (Equation 3.2) — with an {!Obs} handle attached.  The op counts are
    calibrated per configuration so the max-over-sites load estimator
    converges to within 10% of the analytic prediction at the default
    seed; everything is deterministic (virtual time, seeded Rng).

    The result feeds [bench/main.exe], which renders the table, asserts
    span accounting and load deviations, and writes
    [BENCH_baseline.json]. *)

type side = {
  ops : int;  (** operations issued *)
  ok : int;
  failed : int;
  duration : float;  (** virtual time at quiescence *)
  throughput : float;  (** ok / duration, ops per unit virtual time *)
  lat_mean : float;
  lat_p50 : float;
  lat_p95 : float;
  lat_p99 : float;
  measured_load : float;  (** max over sites of per-site ops / total ops *)
  analytic_load : float;  (** Equation 3.2 closed form at this size *)
  spans_started : int;
  spans_closed : int;
  spans_open : int;  (** must be 0 after quiescence *)
  retries : int;
}

type row = { case_name : string; n : int; reads : side; writes : side }

val default_seed : int
val default_n : int

val default_cases : (Arbitrary.Config.name * int * int) list
(** [(config, read_ops, write_ops)] with calibrated op counts for
    UNMODIFIED, MOSTLY-READ, MOSTLY-WRITE and ARBITRARY. *)

val measure :
  ?seed:int -> ?n:int -> Arbitrary.Config.name -> reads:int -> writes:int -> row

val measure_all :
  ?seed:int ->
  ?n:int ->
  ?cases:(Arbitrary.Config.name * int * int) list ->
  ?domains:int ->
  unit ->
  row list
(** Measures every case, fanning cases across [domains] cores
    ({!Parallel}); rows come back in case order, so the report is
    byte-identical for any domain count. *)

val load_error : side -> float
(** Relative deviation |measured − analytic| / analytic. *)

val max_load_error : row list -> float

val span_leaks : row list -> int
(** Σ over rows of spans still open, plus any started/closed mismatch —
    0 iff accounting is exact. *)

val table : row list -> string
(** Human-readable summary table. *)

val to_json : seed:int -> n:int -> row list -> string
(** The [BENCH_baseline.json] payload (schema [bench-baseline/1]). *)
