(** Machine-readable exports of the figure data: CSV series (one column
    per configuration) and a ready-to-run gnuplot script, so the paper's
    plots can be redrawn from the reproduction. *)

type figure = Fig2_read | Fig2_write | Fig3_load | Fig3_expected
            | Fig4_load | Fig4_expected

val figure_name : figure -> string
val all_figures : figure list

val csv : ?sizes:int list -> ?p:float -> figure -> string
(** Header row [n,BINARY,UNMODIFIED,...] then one row per system size. *)

val gnuplot_script : ?figures:figure list -> unit -> string
(** A gnuplot script that reads the CSV files written by {!write_all} and
    renders one PNG per figure. *)

val write_all : ?sizes:int list -> ?p:float -> dir:string -> unit -> string list
(** Writes [<figure>.csv] for every figure plus [plot.gp] into [dir]
    (created if missing); returns the paths written. *)

(** {2 Observability exports} *)

val spans_jsonl : Obs.Span.t list -> string
(** One {!Obs.Span.to_json} line per span. *)

val write_spans_jsonl : path:string -> Obs.Span.t list -> unit

val file_sink : path:string -> Obs.Sink.t * (unit -> unit)
(** A sink that streams each closed span to [path] as JSONL, plus the
    close function (call it after {!Obs.flush} when the run ends). *)

val metrics_json : Obs.t -> string
(** Snapshot of the whole registry:
    [{"counters":{..},"gauges":{..},
      "histograms":{name:{count,mean,min,max,p50,p95,p99},..},
      "spans":{started,closed,open}}].
    Metric names are sorted, so output is deterministic. *)

val write_metrics_json : path:string -> Obs.t -> unit
