module Timestamp = Replication.Timestamp
module Span = Obs.Span

type violation = {
  read_id : int;
  write_id : int;
  key : int;
  observed : Timestamp.t;
  required : Timestamp.t;
  read_started : float;
  write_ended : float;
}

type report = {
  reads_checked : int;
  writes_indexed : int;
  unstamped : int;
  violations : violation list;
}

let result_ts (sp : Span.t) =
  match sp.Span.result_ts with
  | None -> None
  | Some (version, sid) -> Some (Timestamp.make ~version ~sid)

let completed_ok (sp : Span.t) =
  sp.Span.outcome = Some Span.Ok && sp.Span.ended <> None

(* Newest write to [key] that completed strictly before [t] — strict, so a
   write finishing at the same virtual instant the read starts does not
   constrain it (the ordering of simultaneous events is ambiguous).
   Linear in the key's write count: no index structure needed at
   simulation scale. *)
let newest_before writes ~key ~t =
  List.fold_left
    (fun best (w_id, w_ended, ts) ->
      if w_ended < t then
        match best with
        | Some (_, _, best_ts) when Timestamp.newer_than best_ts ts -> best
        | _ -> Some (w_id, w_ended, ts)
      else best)
    None
    (match Hashtbl.find_opt writes key with Some l -> l | None -> [])

let check ?(read_op = "read") ?(write_op = "write") spans =
  (* key -> (span id, ended, committed ts) list *)
  let writes : (int, (int * float * Timestamp.t) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let reads_checked = ref 0 in
  let writes_indexed = ref 0 in
  let unstamped = ref 0 in
  let violations = ref [] in
  List.iter
    (fun (sp : Span.t) ->
      if completed_ok sp then
        if sp.Span.op = write_op then begin
          match (result_ts sp, sp.Span.key, sp.Span.ended) with
          | Some ts, Some key, Some ended ->
            incr writes_indexed;
            let l =
              match Hashtbl.find_opt writes key with Some l -> l | None -> []
            in
            Hashtbl.replace writes key ((sp.Span.id, ended, ts) :: l)
          | _ -> incr unstamped
        end
        else if sp.Span.op = read_op then begin
          match (result_ts sp, sp.Span.key) with
          | Some observed, Some key -> begin
            incr reads_checked;
            match newest_before writes ~key ~t:sp.Span.started with
            | Some (write_id, write_ended, required)
              when Timestamp.newer_than required observed ->
              violations :=
                {
                  read_id = sp.Span.id;
                  write_id;
                  key;
                  observed;
                  required;
                  read_started = sp.Span.started;
                  write_ended;
                }
                :: !violations
            | _ -> ()
          end
          | _ -> incr unstamped
        end)
    spans;
  {
    reads_checked = !reads_checked;
    writes_indexed = !writes_indexed;
    unstamped = !unstamped;
    violations = List.rev !violations;
  }

let ok r = r.violations = []

let pp_violation ppf v =
  Format.fprintf ppf
    "read #%d (key %d, started %.1f) returned %a but write #%d (ended %.1f) \
     committed %a"
    v.read_id v.key v.read_started Timestamp.pp v.observed v.write_id
    v.write_ended Timestamp.pp v.required

let pp ppf r =
  Format.fprintf ppf "@[<v>reads=%d writes=%d unstamped=%d violations=%d"
    r.reads_checked r.writes_indexed r.unstamped (List.length r.violations);
  List.iter (fun v -> Format.fprintf ppf "@,  %a" pp_violation v) r.violations;
  Format.fprintf ppf "@]"

(* --- increment conservation (cross-shard atomicity) --------------------- *)

type conservation = {
  committed_increments : int;
  uncertain_increments : int;
  observed_increments : int;
  phantom_increments : int;
  lost_increments : int;
}

let check_conservation ~committed ~uncertain ~observed =
  {
    committed_increments = committed;
    uncertain_increments = uncertain;
    observed_increments = observed;
    phantom_increments = max 0 (observed - committed - uncertain);
    lost_increments = max 0 (committed - observed);
  }

let conserved c = c.phantom_increments = 0 && c.lost_increments = 0

let pp_conservation ppf c =
  Format.fprintf ppf
    "committed=%d uncertain=%d observed=%d phantom=%d lost=%d (%s)"
    c.committed_increments c.uncertain_increments c.observed_increments
    c.phantom_increments c.lost_increments
    (if conserved c then "conserved" else "VIOLATED")
