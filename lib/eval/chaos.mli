(** Chaos campaign: sweep failure schedules × tree configurations ×
    failure-detector modes, assert safety everywhere, measure degradation.

    Each cell of the campaign runs the full replication stack
    ({!Replication.Harness}) under an adversarial schedule — crash/recovery
    churn, recurring minority partitions, message loss, or all three at
    once — twice: once with the ground-truth oracle detector (the paper's
    §2.2 assumption) and once with the realistic heartbeat/φ-accrual
    detector ({!Detect.Heartbeat}).  Within a (configuration, schedule)
    pair both detector modes see the {e same} failure entries and the same
    workload seed, so their success rates are directly comparable.

    The invariant asserted everywhere is one-copy read freshness
    ([safety_violations = 0]): bad failure knowledge may cost availability
    and latency, never consistency. *)

type schedule = {
  label : string;
  loss_rate : float;
  entries :
    rng:Dsutil.Rng.t -> n:int -> horizon:float -> Dsim.Failure.entry list;
}

val crashes_schedule : schedule
(** Continuous per-site crash/recovery churn (steady-state availability
    ~0.8), no partitions, no loss. *)

val partitions_schedule : schedule
(** Recurring partitions isolating a random ~n/3 minority of replicas,
    healed after a window; clients always stay with the majority. *)

val loss_schedule : schedule
(** 5% i.i.d. message loss, sites never fail. *)

val combined_schedule : schedule
(** Crash churn + recurring partitions + 3% loss together. *)

val blackout_schedule : schedule
(** Every replica crashes at t=100 and recovers at t=140 — under amnesia
    with an async WAL this loses the un-flushed suffix on {e all} copies
    at once (the negative-control schedule). *)

val default_schedules : schedule list
(** The four original schedules (the blackout is amnesia-only). *)

type detector = Oracle | Heartbeat

val detector_to_string : detector -> string

val chaos_coordinator : Replication.Coordinator.config
(** The degradation-tolerant coordinator every campaign cell uses: 8
    retries, adaptive timeouts, 600-unit operation deadline. *)

type cell = {
  config : Arbitrary.Config.name;
  schedule : string;
  detector : detector;
  n : int;  (** replica count the configuration snapped to *)
  report : Replication.Harness.report;
  read_rate : float;  (** successful / attempted reads (1.0 when none) *)
  write_rate : float;
}

type campaign = {
  cells : cell list;
  safety_violations : int;  (** summed over every cell — must be 0 *)
}

val run :
  ?n:int ->
  ?clients:int ->
  ?ops:int ->
  ?seed:int ->
  ?horizon:float ->
  ?configs:Arbitrary.Config.name list ->
  ?schedules:schedule list ->
  ?detectors:detector list ->
  ?domains:int ->
  unit ->
  campaign
(** Defaults: n = 45 (snapped per configuration), 3 clients × 25 ops,
    seed 42, horizon 3000, the four paper tree configurations
    (MOSTLY-READ, MOSTLY-WRITE, ARBITRARY, UNMODIFIED), all four
    schedules, both detectors — 32 cells.  Deterministic for a fixed
    argument set.  Cells are independent seeded simulations and fan out
    across [domains] cores ({!Parallel}); the campaign (cell order
    included) is byte-identical for any domain count. *)

val table : campaign -> string
(** One row per cell: success rates, p99 latencies, retries, messages,
    safety violations. *)

val parity_table : campaign -> string
(** Oracle vs heartbeat success-rate deltas per (configuration,
    schedule). *)

val crash_parity_gap : ?floor:float -> campaign -> float
(** Largest |oracle − heartbeat| success-rate gap (reads or writes, in
    rate points) across the crash-only schedule cells — the acceptance
    bound is 0.10.  Components whose oracle-mode rate is below [floor]
    (default 0.5) are skipped: where ground-truth detection cannot
    assemble a quorum either (e.g. write-all under churn), the gap
    between two near-zero rates measures sampling luck, not the
    detector. *)

(** {2 Amnesia crash-recovery campaign}

    Same harness, but crashes destroy volatile state
    ({!Dsim.Network.crash_mode} [Amnesia]): replicas keep a {!Replication.Wal}
    and rejoin through replay + quorum catch-up.  Every cell runs with
    [check_consistency] on and is verified offline by the trace-driven
    {!Consistency} checker on top of the online safety counter. *)

type amnesia_cell = {
  a_config : Arbitrary.Config.name;
  a_n : int;
  a_wal : Replication.Wal.policy;
  a_catch_up : bool;
  a_schedule : string;
  a_report : Replication.Harness.report;
  a_consistency : Consistency.report;
}

val run_amnesia :
  ?n:int ->
  ?clients:int ->
  ?ops:int ->
  ?seed:int ->
  ?horizon:float ->
  ?configs:Arbitrary.Config.name list ->
  ?wal:Replication.Wal.policy ->
  ?catch_up:bool ->
  ?schedule:schedule ->
  ?domains:int ->
  unit ->
  amnesia_cell list
(** One cell per configuration (defaults mirror {!run}; oracle detector).
    Default [wal] is [Sync_on_commit] and [catch_up] is on, under the
    churn schedule — the configuration whose acceptance gate is
    {e zero} consistency violations on every tree configuration. *)

val run_amnesia_negative :
  ?n:int ->
  ?clients:int ->
  ?ops:int ->
  ?seed:int ->
  ?horizon:float ->
  ?configs:Arbitrary.Config.name list ->
  ?domains:int ->
  unit ->
  amnesia_cell list
(** Negative control: [Async 60.0] WAL, catch-up disabled, blackout
    schedule — the checker {e must} report at least one violation, proving
    the detection machinery actually detects. *)

val amnesia_violations : amnesia_cell list -> int
(** Offline (checker) plus online (harness counter) violations, summed. *)

val amnesia_table : amnesia_cell list -> string
(** One row per cell: success rates, rejoin/catch-up counters, WAL losses,
    stale-incarnation rejections, violations. *)
