(** §4-style membership-churn campaign: fault-injected provisioning,
    promotion and decommission over the four paper configurations.

    Each cell is one {!Replication.Churn_harness} run: a client workload
    over a {!Quorum.Relabel}-wrapped tree while a scripted fault and
    membership schedule churns the sites.  Four scenario shapes:

    - {e donor-crash} — a replica amnesia-crashes and rejoins by
      provisioning; its donor is crashed mid-transfer, forcing a donor
      failover with resume;
    - {e recipient-crash} — the rejoiner itself crashes again
      mid-transfer and must resume from its last durable chunk mark;
    - {e partition-promotion} — a spare is promoted into a position and
      partitioned away mid-bulk-transfer; the flow stalls and completes
      after the heal;
    - {e rolling} — position 0 is rolled out to a spare and back
      (unfenced re-promotion), then another position's occupant is
      properly decommissioned, with background crash churn.

    The campaign gate: with fencing on and a commit-durable WAL,
    {!violations} over every fenced cell must be zero, while the
    {!run_negative} blackout control (fencing off, volatile-suffix WAL)
    must leak at least one stale read. *)

type kind = Donor_crash | Recipient_crash | Partition_promotion | Rolling

val kind_to_string : kind -> string
val default_kinds : kind list
val default_configs : Arbitrary.Config.name list

type cell = {
  c_config : Arbitrary.Config.name;
  c_kind : string;
  c_n : int;
  c_report : Replication.Churn_harness.report;
}

val run :
  ?n:int ->
  ?clients:int ->
  ?ops:int ->
  ?seed:int ->
  ?horizon:float ->
  ?configs:Arbitrary.Config.name list ->
  ?kinds:kind list ->
  ?fence:bool ->
  ?wal:Replication.Wal.policy ->
  ?domains:int ->
  unit ->
  cell list
(** The positive campaign: every [configs] × [kinds] cell, fenced
    provisioning over a commit-durable WAL by default. *)

val run_negative :
  ?n:int ->
  ?clients:int ->
  ?ops:int ->
  ?seed:int ->
  ?horizon:float ->
  ?configs:Arbitrary.Config.name list ->
  ?domains:int ->
  unit ->
  cell list
(** The control that must leak: every occupant blacks out at once under
    [Wal.Async] while [fence_provisioning = false], so recovered
    replicas serve from gutted stores.  A campaign where this control
    shows zero violations is not testing anything. *)

val run_sharded :
  ?shards:int ->
  ?n:int ->
  ?clients:int ->
  ?ops:int ->
  ?seed:int ->
  ?horizon:float ->
  ?config:Arbitrary.Config.name ->
  ?domains:int ->
  unit ->
  cell list
(** Independent churn per key shard: [shards] separate tree instances,
    each running the rolling membership script plus a donor-crash rejoin
    under a distinct seed.  One cell per shard. *)

val violations : cell list -> int
(** Total trace-checker violations across the cells. *)

val table : cell list -> string

(** {2 Cold-rejoin cost: provisioning vs per-key catch-up} *)

type rejoin_comparison = {
  rj_keys : int;
  rj_n : int;
  rj_catchup_rounds : int;  (** per-key quorum rounds the old path needs *)
  rj_provision_rounds : int;  (** chunk/tail rounds the new path needs *)
  rj_provision_chunks : int;
  rj_catchup_serving : bool;  (** did the catch-up rejoin finish *)
  rj_provision_serving : bool;  (** did the provisioned rejoin finish *)
  rj_speedup : float;  (** catchup_rounds / provision_rounds *)
}

val cold_rejoin_comparison :
  ?n:int -> ?keys:int -> ?chunk_size:int -> ?seed:int -> unit ->
  rejoin_comparison
(** Two identical worlds with [keys] committed keys; the last replica
    amnesia-crashes cold and rejoins via catch-up in one and chunked
    provisioning in the other.  Counts protocol rounds — the BENCH gate
    requires [rj_speedup >= 5] at 10k keys. *)
