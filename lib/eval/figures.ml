module Config = Arbitrary.Config

let default_sizes = [ 9; 17; 33; 65; 129; 257; 513 ]
let default_p = 0.7

let configs = Config.all_names

let header_with name = name :: List.map Config.name_to_string configs

(* One table: a row per size, a column per configuration. *)
let sweep ~sizes ~p ~cell =
  List.map
    (fun n ->
      string_of_int n
      :: List.map
           (fun c ->
             let m = Config_metrics.compute c ~n ~p in
             Printf.sprintf "%s (n=%d)" (cell m) m.Config_metrics.n)
           configs)
    sizes

let section title body = Printf.sprintf "== %s ==\n%s\n" title body

let fig2 ?(sizes = default_sizes) () =
  let table cell =
    Tablefmt.render ~header:(header_with "n") ~rows:(sweep ~sizes ~p:default_p ~cell)
  in
  section "Figure 2a: read communication cost"
    (table (fun m -> Tablefmt.f2 m.Config_metrics.rd_cost))
  ^ section "Figure 2b: write communication cost"
      (table (fun m -> Tablefmt.f2 m.Config_metrics.wr_cost))

let fig3 ?(sizes = default_sizes) ?(p = default_p) () =
  let table cell =
    Tablefmt.render ~header:(header_with "n") ~rows:(sweep ~sizes ~p ~cell)
  in
  section "Figure 3a: system load of read operations"
    (table (fun m -> Tablefmt.f4 m.Config_metrics.rd_load))
  ^ section
      (Printf.sprintf "Figure 3b: expected system load of reads (p=%.2f)" p)
      (table (fun m -> Tablefmt.f4 m.Config_metrics.e_rd_load))

let fig4 ?(sizes = default_sizes) ?(p = default_p) () =
  let table cell =
    Tablefmt.render ~header:(header_with "n") ~rows:(sweep ~sizes ~p ~cell)
  in
  section "Figure 4a: system load of write operations"
    (table (fun m -> Tablefmt.f4 m.Config_metrics.wr_load))
  ^ section
      (Printf.sprintf "Figure 4b: expected system load of writes (p=%.2f)" p)
      (table (fun m -> Tablefmt.f4 m.Config_metrics.e_wr_load))

let table1 () =
  let tree = Arbitrary.Tree.figure1 () in
  let rows =
    List.init
      (Arbitrary.Tree.height tree + 1)
      (fun k ->
        let l = Arbitrary.Tree.level tree k in
        [
          string_of_int k;
          string_of_int l.Arbitrary.Tree.total;
          string_of_int l.Arbitrary.Tree.physical;
          string_of_int l.Arbitrary.Tree.logical;
        ])
  in
  let node_table =
    Tablefmt.render ~header:[ "level k"; "m_k"; "m_phy k"; "m_log k" ] ~rows
  in
  let s = Arbitrary.Analysis.summarize tree ~p:0.7 in
  let example =
    Printf.sprintf
      "worked example (p=0.7): m(R)=%.0f m(W)=%d\n\
       RD_cost=%d RD_avail=%.2f L_RD=%.4f E[L_RD]=%.4f\n\
       WR_cost=%.0f WR_avail=%.2f L_WR=%.4f E[L_WR]=%.4f\n\
       paper:  m(R)=15 m(W)=2 | RD: 2, 0.97, 1/3, 0.35 | WR: 4, 0.45, 1/2, 0.775\n"
      (Arbitrary.Analysis.num_read_quorums tree)
      (Arbitrary.Analysis.num_write_quorums tree)
      s.Arbitrary.Analysis.rd_cost s.Arbitrary.Analysis.rd_availability
      s.Arbitrary.Analysis.rd_load s.Arbitrary.Analysis.expected_rd_load
      s.Arbitrary.Analysis.wr_cost_avg s.Arbitrary.Analysis.wr_availability
      s.Arbitrary.Analysis.wr_load s.Arbitrary.Analysis.expected_wr_load
  in
  section "Table 1: node counts of the Figure-1 tree (spec 1-3-5)"
    (node_table ^ example)

let limits ?(ps = [ 0.55; 0.65; 0.7; 0.75; 0.8; 0.85; 0.9; 0.95 ]) () =
  let rows =
    List.map
      (fun p ->
        let tree = Config.algorithm1 ~n:10000 in
        [
          Tablefmt.f2 p;
          Tablefmt.f4 (Arbitrary.Analysis.limit_read_availability ~p);
          Tablefmt.f4 (Arbitrary.Analysis.read_availability tree ~p);
          Tablefmt.f4 (Arbitrary.Analysis.limit_write_availability ~p);
          Tablefmt.f4 (Arbitrary.Analysis.write_availability tree ~p);
        ])
      ps
  in
  section "Limits (§3.3): Algorithm-1 availabilities as n→∞ vs n=10000"
    (Tablefmt.render
       ~header:
         [ "p"; "lim RD_avail"; "RD_avail(10k)"; "lim WR_avail"; "WR_avail(10k)" ]
       ~rows)

let related_work ?(n = 64) ?(p = default_p) () =
  let rng = Dsutil.Rng.create 97 in
  let trials = 3000 in
  let mc_avail proto =
    ( Quorum.Availability.read_availability_mc ~trials ~rng ~p proto,
      Quorum.Availability.write_availability_mc ~trials ~rng ~p proto )
  in
  let row ~name ~n ~rd_cost ~wr_cost ~rd_load ~wr_load ~rd_avail ~wr_avail =
    [
      name;
      string_of_int n;
      Tablefmt.f2 rd_cost;
      Tablefmt.f2 wr_cost;
      Tablefmt.f4 rd_load;
      Tablefmt.f4 wr_load;
      Tablefmt.f4 rd_avail;
      Tablefmt.f4 wr_avail;
    ]
  in
  let rows =
    [
      (let r = Quorum.Rowa.create ~n in
       row ~name:"ROWA" ~n
         ~rd_cost:(float_of_int (Quorum.Rowa.read_cost r))
         ~wr_cost:(float_of_int (Quorum.Rowa.write_cost r))
         ~rd_load:(Quorum.Rowa.read_load r) ~wr_load:(Quorum.Rowa.write_load r)
         ~rd_avail:(Quorum.Rowa.read_availability r ~p)
         ~wr_avail:(Quorum.Rowa.write_availability r ~p));
      (let m = Quorum.Majority.create ~n:(if n mod 2 = 0 then n + 1 else n) in
       let a = Quorum.Majority.availability m ~p in
       row ~name:"Majority" ~n:(Quorum.Majority.universe_size m)
         ~rd_cost:(float_of_int (Quorum.Majority.read_cost m))
         ~wr_cost:(float_of_int (Quorum.Majority.write_cost m))
         ~rd_load:(Quorum.Majority.load m) ~wr_load:(Quorum.Majority.load m)
         ~rd_avail:a ~wr_avail:a);
      (let g = Quorum.Grid.square ~n in
       let rd_avail, wr_avail = mc_avail (Quorum.Grid.protocol g) in
       row ~name:"Grid" ~n:(Quorum.Grid.universe_size g)
         ~rd_cost:(float_of_int (Quorum.Grid.read_cost g))
         ~wr_cost:(float_of_int (Quorum.Grid.write_cost g))
         ~rd_load:(Quorum.Grid.read_load g) ~wr_load:(Quorum.Grid.write_load g)
         ~rd_avail ~wr_avail);
      (let m = Quorum.Maekawa.of_n ~n in
       let rd_avail, wr_avail = mc_avail (Quorum.Maekawa.protocol m) in
       row ~name:"Maekawa sqrt(n)" ~n:(Quorum.Maekawa.universe_size m)
         ~rd_cost:(float_of_int (Quorum.Maekawa.quorum_size m))
         ~wr_cost:(float_of_int (Quorum.Maekawa.quorum_size m))
         ~rd_load:(Quorum.Maekawa.load m) ~wr_load:(Quorum.Maekawa.load m)
         ~rd_avail ~wr_avail);
      (let rec fit h =
         if Quorum.Tqp.n (Quorum.Tqp.create ~d:1 ~height:(h + 1)) > n then h
         else fit (h + 1)
       in
       let t = Quorum.Tqp.create ~d:1 ~height:(fit 0) in
       row ~name:"TreeQuorum VLDB90" ~n:(Quorum.Tqp.n t)
         ~rd_cost:(float_of_int (Quorum.Tqp.min_read_cost t))
         ~wr_cost:(float_of_int (Quorum.Tqp.write_cost t))
         ~rd_load:1.0 ~wr_load:(Quorum.Tqp.write_load t)
         ~rd_avail:(Quorum.Tqp.read_availability t ~p)
         ~wr_avail:(Quorum.Tqp.write_availability t ~p));
      (let m = Config_metrics.compute Config.Binary ~n ~p in
       row ~name:"BINARY (AE91)" ~n:m.Config_metrics.n
         ~rd_cost:m.Config_metrics.rd_cost ~wr_cost:m.Config_metrics.wr_cost
         ~rd_load:m.Config_metrics.rd_load ~wr_load:m.Config_metrics.wr_load
         ~rd_avail:m.Config_metrics.rd_avail ~wr_avail:m.Config_metrics.wr_avail);
      (let m = Config_metrics.compute Config.Hqc ~n ~p in
       row ~name:"HQC (Kumar)" ~n:m.Config_metrics.n
         ~rd_cost:m.Config_metrics.rd_cost ~wr_cost:m.Config_metrics.wr_cost
         ~rd_load:m.Config_metrics.rd_load ~wr_load:m.Config_metrics.wr_load
         ~rd_avail:m.Config_metrics.rd_avail ~wr_avail:m.Config_metrics.wr_avail);
      (let m = Config_metrics.compute Config.Arbitrary ~n ~p in
       row ~name:"ARBITRARY (this paper)" ~n:m.Config_metrics.n
         ~rd_cost:m.Config_metrics.rd_cost ~wr_cost:m.Config_metrics.wr_cost
         ~rd_load:m.Config_metrics.rd_load ~wr_load:m.Config_metrics.wr_load
         ~rd_avail:m.Config_metrics.rd_avail ~wr_avail:m.Config_metrics.wr_avail);
    ]
  in
  section
    (Printf.sprintf "Related work (§1) at n~%d, p=%.2f" n p)
    (Tablefmt.render
       ~header:
         [ "protocol"; "n"; "rd cost"; "wr cost"; "rd load"; "wr load";
           "rd avail"; "wr avail" ]
       ~rows)

let shape_checks () =
  let p = default_p in
  let buf = Buffer.create 1024 in
  let check name ok =
    Buffer.add_string buf (Printf.sprintf "[%s] %s\n" (if ok then "OK " else "FAIL") name)
  in
  let at c n = Config_metrics.compute c ~n ~p in
  let structured = [ Config.Binary; Config.Unmodified; Config.Arbitrary; Config.Hqc ] in
  let sizes = [ 65; 129; 257; 513 ] in
  check "MOSTLY-READ read cost is 1 and write cost is n (all sizes)"
    (List.for_all
       (fun n ->
         let m = at Config.Mostly_read n in
         m.Config_metrics.rd_cost = 1.0
         && m.Config_metrics.wr_cost = float_of_int m.Config_metrics.n)
       sizes);
  check "MOSTLY-WRITE has the highest read cost and ~2 write cost"
    (List.for_all
       (fun n ->
         let mw = at Config.Mostly_write n in
         mw.Config_metrics.wr_cost <= 2.5
         && List.for_all
              (fun c ->
                (at c n).Config_metrics.rd_cost <= mw.Config_metrics.rd_cost)
              structured)
       sizes);
  check "ARBITRARY has the lowest write cost of the four structured configs"
    (List.for_all
       (fun n ->
         let a = (at Config.Arbitrary n).Config_metrics.wr_cost in
         List.for_all
           (fun c -> (at c n).Config_metrics.wr_cost >= a -. 1e-9)
           structured)
       sizes);
  check "UNMODIFIED has the lowest read cost of the four (log n) but read load 1"
    (List.for_all
       (fun n ->
         let u = at Config.Unmodified n in
         u.Config_metrics.rd_load = 1.0
         && List.for_all
              (fun c ->
                (at c n).Config_metrics.rd_cost >= u.Config_metrics.rd_cost -. 1e-9)
              structured)
       sizes);
  check "BINARY has the highest costs of the four structured configs"
    (List.for_all
       (fun n ->
         let b = at Config.Binary n in
         List.for_all
           (fun c ->
             (at c n).Config_metrics.rd_cost <= b.Config_metrics.rd_cost +. 1e-9)
           structured)
       sizes);
  check "ARBITRARY read load is 1/4 for n > 32 and write load 1/sqrt(n)"
    (List.for_all
       (fun n ->
         let a = at Config.Arbitrary n in
         abs_float (a.Config_metrics.rd_load -. 0.25) < 1e-9
         && abs_float
              (a.Config_metrics.wr_load
              -. (1.0 /. float_of_int (Arbitrary.Tree.num_physical_levels
                                         (Config.build Config.Arbitrary ~n))))
            < 1e-9)
       sizes);
  check
    "new lower bound: UNMODIFIED write load 1/log2(n+1) < BINARY's 2/(log2(n+1)+1)"
    (List.for_all
       (fun n ->
         let u = at Config.Unmodified n in
         let b = at Config.Binary u.Config_metrics.n in
         u.Config_metrics.wr_load < b.Config_metrics.wr_load)
       sizes);
  check "HQC has the least read system load of the four for n > 15"
    (List.for_all
       (fun n ->
         let h = at Config.Hqc n in
         List.for_all
           (fun c -> (at c n).Config_metrics.rd_load >= h.Config_metrics.rd_load -. 1e-9)
           structured)
       sizes);
  check "BINARY has the highest write system load of the four"
    (List.for_all
       (fun n ->
         let b = at Config.Binary n in
         List.for_all
           (fun c -> (at c n).Config_metrics.wr_load <= b.Config_metrics.wr_load +. 1e-9)
           structured)
       sizes);
  check "MOSTLY-WRITE write load 2/(n-1) is the lowest of all six"
    (List.for_all
       (fun n ->
         let mw = at Config.Mostly_write n in
         List.for_all
           (fun c -> (at c n).Config_metrics.wr_load >= mw.Config_metrics.wr_load -. 1e-9)
           Config.all_names)
       sizes);
  check "both Algorithm-1 availabilities ~1 when p > 0.8 (p=0.85, n=10000)"
    (let tree = Config.algorithm1 ~n:10000 in
     Arbitrary.Analysis.read_availability tree ~p:0.85 > 0.99
     && Arbitrary.Analysis.write_availability tree ~p:0.85 > 0.99);
  section "Shape checks (qualitative claims of §4)" (Buffer.contents buf)

let all () =
  String.concat "\n"
    [
      table1 (); fig2 (); fig3 (); fig4 (); limits (); related_work ();
      shape_checks ();
    ]
