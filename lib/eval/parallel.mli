(** Deterministic multicore fan-out for independent evaluation cells.

    The §4 campaigns (chaos cells, availability trials, baseline
    configurations) are embarrassingly parallel: every cell seeds its own
    engine and RNG and shares nothing.  This driver fans such cells across
    OCaml 5 domains and reassembles results in {e submission order}, so
    campaign output is byte-identical for any domain count — including
    [domains = 1], which runs inline with no domain spawned at all.

    Requirements on tasks: each must be self-contained (build its own
    protocol instance — see {!Quorum.Protocol.fork} — engine and RNG) and
    must not touch shared mutable state.  Tasks may run in any temporal
    order; only the result order is guaranteed.

    No dependencies beyond the stdlib [Domain]/[Atomic] modules. *)

val default_domains : unit -> int
(** Domain count used when [?domains] is omitted: the
    [REPRO_DOMAINS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()] capped at 4 (evaluation
    cells are memory-light; more domains than that mostly adds GC noise). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] applies [f] to every element, running up to
    [domains] applications concurrently, and returns results in input
    order.  An exception raised by any task is re-raised after all domains
    have joined. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array variant of {!map}. *)
