let default_domains () =
  match Sys.getenv_opt "REPRO_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | _ -> invalid_arg "Parallel: REPRO_DOMAINS must be a positive integer")
  | None -> min 4 (Domain.recommended_domain_count ())

(* Work-stealing-free pool: a shared atomic cursor hands out task indexes;
   every result lands in its submission slot, so assembly order (and hence
   campaign output) is independent of scheduling. *)
let map_array ?domains f tasks =
  let m = Array.length tasks in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let domains = min domains m in
  if domains <= 1 then Array.map f tasks
  else begin
    let results = Array.make m None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < m && Atomic.get failure = None then begin
          (match f tasks.(i) with
          | r -> results.(i) <- Some r
          | exception e ->
            (* First failure wins; siblings drain quickly via the flag. *)
            ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map (function Some r -> r | None -> assert false) results
  end

let map ?domains f xs =
  Array.to_list (map_array ?domains f (Array.of_list xs))
