module Config = Arbitrary.Config

type figure = Fig2_read | Fig2_write | Fig3_load | Fig3_expected
            | Fig4_load | Fig4_expected

let figure_name = function
  | Fig2_read -> "fig2_read_cost"
  | Fig2_write -> "fig2_write_cost"
  | Fig3_load -> "fig3_read_load"
  | Fig3_expected -> "fig3_expected_read_load"
  | Fig4_load -> "fig4_write_load"
  | Fig4_expected -> "fig4_expected_write_load"

let all_figures =
  [ Fig2_read; Fig2_write; Fig3_load; Fig3_expected; Fig4_load; Fig4_expected ]

let value_of figure (m : Config_metrics.t) =
  match figure with
  | Fig2_read -> m.Config_metrics.rd_cost
  | Fig2_write -> m.Config_metrics.wr_cost
  | Fig3_load -> m.Config_metrics.rd_load
  | Fig3_expected -> m.Config_metrics.e_rd_load
  | Fig4_load -> m.Config_metrics.wr_load
  | Fig4_expected -> m.Config_metrics.e_wr_load

let csv ?(sizes = Figures.default_sizes) ?(p = Figures.default_p) figure =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    ("n,"
    ^ String.concat ","
        (List.map Config.name_to_string Config.all_names)
    ^ "\n");
  List.iter
    (fun n ->
      Buffer.add_string buf (string_of_int n);
      List.iter
        (fun c ->
          let m = Config_metrics.compute c ~n ~p in
          Buffer.add_string buf (Printf.sprintf ",%.6f" (value_of figure m)))
        Config.all_names;
      Buffer.add_char buf '\n')
    sizes;
  Buffer.contents buf

let gnuplot_script ?(figures = all_figures) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "# Regenerates the paper's figures from the exported CSV series.\n\
     # Usage: gnuplot plot.gp\n\
     set datafile separator ','\n\
     set key outside\n\
     set xlabel 'replicas (n)'\n\
     set logscale x 2\n\
     set terminal pngcairo size 900,540\n";
  List.iter
    (fun figure ->
      let name = figure_name figure in
      Buffer.add_string buf
        (Printf.sprintf
           "set output '%s.png'\nset title '%s'\nplot for [col=2:7] '%s.csv' \
            using 1:col with linespoints title columnheader\n"
           name name name))
    figures;
  Buffer.contents buf

let write_all ?(sizes = Figures.default_sizes) ?(p = Figures.default_p) ~dir () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write_file name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    path
  in
  let csvs =
    List.map
      (fun figure ->
        write_file (figure_name figure ^ ".csv") (csv ~sizes ~p figure))
      all_figures
  in
  csvs @ [ write_file "plot.gp" (gnuplot_script ()) ]
