module Config = Arbitrary.Config

type figure = Fig2_read | Fig2_write | Fig3_load | Fig3_expected
            | Fig4_load | Fig4_expected

let figure_name = function
  | Fig2_read -> "fig2_read_cost"
  | Fig2_write -> "fig2_write_cost"
  | Fig3_load -> "fig3_read_load"
  | Fig3_expected -> "fig3_expected_read_load"
  | Fig4_load -> "fig4_write_load"
  | Fig4_expected -> "fig4_expected_write_load"

let all_figures =
  [ Fig2_read; Fig2_write; Fig3_load; Fig3_expected; Fig4_load; Fig4_expected ]

let value_of figure (m : Config_metrics.t) =
  match figure with
  | Fig2_read -> m.Config_metrics.rd_cost
  | Fig2_write -> m.Config_metrics.wr_cost
  | Fig3_load -> m.Config_metrics.rd_load
  | Fig3_expected -> m.Config_metrics.e_rd_load
  | Fig4_load -> m.Config_metrics.wr_load
  | Fig4_expected -> m.Config_metrics.e_wr_load

let csv ?(sizes = Figures.default_sizes) ?(p = Figures.default_p) figure =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    ("n,"
    ^ String.concat ","
        (List.map Config.name_to_string Config.all_names)
    ^ "\n");
  List.iter
    (fun n ->
      Buffer.add_string buf (string_of_int n);
      List.iter
        (fun c ->
          let m = Config_metrics.compute c ~n ~p in
          Buffer.add_string buf (Printf.sprintf ",%.6f" (value_of figure m)))
        Config.all_names;
      Buffer.add_char buf '\n')
    sizes;
  Buffer.contents buf

let gnuplot_script ?(figures = all_figures) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "# Regenerates the paper's figures from the exported CSV series.\n\
     # Usage: gnuplot plot.gp\n\
     set datafile separator ','\n\
     set key outside\n\
     set xlabel 'replicas (n)'\n\
     set logscale x 2\n\
     set terminal pngcairo size 900,540\n";
  List.iter
    (fun figure ->
      let name = figure_name figure in
      Buffer.add_string buf
        (Printf.sprintf
           "set output '%s.png'\nset title '%s'\nplot for [col=2:7] '%s.csv' \
            using 1:col with linespoints title columnheader\n"
           name name name))
    figures;
  Buffer.contents buf

let write_all ?(sizes = Figures.default_sizes) ?(p = Figures.default_p) ~dir () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write_file name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    path
  in
  let csvs =
    List.map
      (fun figure ->
        write_file (figure_name figure ^ ".csv") (csv ~sizes ~p figure))
      all_figures
  in
  csvs @ [ write_file "plot.gp" (gnuplot_script ()) ]

(* --- observability exports ---------------------------------------------- *)

let spans_jsonl spans =
  let buf = Buffer.create 1024 in
  List.iter
    (fun sp ->
      Buffer.add_string buf (Obs.Span.to_json sp);
      Buffer.add_char buf '\n')
    spans;
  Buffer.contents buf

let write_spans_jsonl ~path spans =
  let oc = open_out path in
  output_string oc (spans_jsonl spans);
  close_out oc

let file_sink ~path =
  let oc = open_out path in
  let sink =
    Obs.Sink.make
      ~flush:(fun () -> flush oc)
      (fun sp ->
        output_string oc (Obs.Span.to_json sp);
        output_char oc '\n')
  in
  (sink, fun () -> close_out oc)

let metrics_json obs =
  let m = Obs.metrics obs in
  let buf = Buffer.create 1024 in
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  let counters =
    List.map
      (fun (name, v) -> Printf.sprintf "\"%s\":%d" name v)
      (Obs.Metrics.counters m)
  in
  let gauges =
    List.map
      (fun (name, v) -> Printf.sprintf "\"%s\":%.6g" name v)
      (Obs.Metrics.gauges m)
  in
  let histograms =
    List.map
      (fun (name, h) ->
        let s = Obs.Metrics.summary h in
        let count = Dsutil.Stats.count s in
        let body =
          if count = 0 then Printf.sprintf "\"count\":0"
          else
            Printf.sprintf
              "\"count\":%d,\"mean\":%.6g,\"min\":%.6g,\"max\":%.6g,\
               \"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g"
              count (Dsutil.Stats.mean s)
              (Dsutil.Stats.min_value s)
              (Dsutil.Stats.max_value s)
              (Dsutil.Stats.percentile s 0.5)
              (Dsutil.Stats.percentile s 0.95)
              (Dsutil.Stats.percentile s 0.99)
        in
        Printf.sprintf "\"%s\":{%s}" name body)
      (Obs.Metrics.histograms m)
  in
  Buffer.add_string buf
    (obj
       [
         "\"counters\":" ^ obj counters;
         "\"gauges\":" ^ obj gauges;
         "\"histograms\":" ^ obj histograms;
         Printf.sprintf "\"spans\":{\"started\":%d,\"closed\":%d,\"open\":%d}"
           (Obs.spans_started obs) (Obs.spans_closed obs) (Obs.spans_open obs);
       ]);
  Buffer.contents buf

let write_metrics_json ~path obs =
  let oc = open_out path in
  output_string oc (metrics_json obs);
  output_char oc '\n';
  close_out oc
