module Config = Arbitrary.Config
module Harness = Replication.Harness
module Stats = Dsutil.Stats

type side = {
  ops : int;
  ok : int;
  failed : int;
  duration : float;
  throughput : float;
  lat_mean : float;
  lat_p50 : float;
  lat_p95 : float;
  lat_p99 : float;
  measured_load : float;
  analytic_load : float;
  spans_started : int;
  spans_closed : int;
  spans_open : int;
  retries : int;
}

type row = { case_name : string; n : int; reads : side; writes : side }

let default_seed = 42
let default_n = 33

(* Op counts calibrated so the max-over-sites load estimator (biased
   upward as the max of binomials) lands within 10% of the closed form at
   the default seed.  Low-load directions need more samples. *)
let default_cases =
  [
    (Config.Unmodified, 4_000, 8_000);
    (Config.Mostly_read, 50_000, 2_000);
    (Config.Mostly_write, 8_000, 40_000);
    (Config.Arbitrary, 8_000, 8_000);
  ]

let scenario_for proto ~read_fraction ~ops ~seed =
  let s = Harness.default_scenario ~proto in
  {
    s with
    Harness.n_clients = 1;
    ops_per_client = ops;
    read_fraction;
    think_time = 0.1;
    seed;
    (* Long runs: the default 100k horizon would truncate mid-workload
       and leave spans open. *)
    horizon = 10_000_000.0;
  }

let pct stats q =
  if Stats.count stats = 0 then 0.0 else Stats.percentile stats q

let side_of ~ops ~ok ~failed ~duration ~stats ~measured_load ~analytic_load
    ~obs ~retries =
  {
    ops;
    ok;
    failed;
    duration;
    throughput = (if duration <= 0.0 then 0.0 else float_of_int ok /. duration);
    lat_mean = (if Stats.count stats = 0 then 0.0 else Stats.mean stats);
    lat_p50 = pct stats 0.5;
    lat_p95 = pct stats 0.95;
    lat_p99 = pct stats 0.99;
    measured_load;
    analytic_load;
    spans_started = Obs.spans_started obs;
    spans_closed = Obs.spans_closed obs;
    spans_open = Obs.spans_open obs;
    retries;
  }

(* The harness fast-forwards the engine clock to the horizon once the
   event queue drains, so the report's [duration] overstates the run.
   Take the wall of the workload from the spans instead: the latest span
   close time. *)
let with_span_clock obs =
  let last_end = ref 0.0 in
  Obs.add_sink obs
    (Obs.Sink.make (fun sp ->
         match sp.Obs.Span.ended with
         | Some e -> if e > !last_end then last_end := e
         | None -> ()));
  last_end

let measure ?(seed = default_seed) ?(n = default_n) name ~reads ~writes =
  let n = Config_metrics.feasible_n name n in
  let metrics = Config_metrics.compute name ~n ~p:Figures.default_p in
  let proto = Config_metrics.protocol_of name ~n in
  let obs_r = Obs.create () in
  let end_r = with_span_clock obs_r in
  let r =
    Harness.run ~obs:obs_r
      (scenario_for proto ~read_fraction:1.0 ~ops:reads ~seed)
  in
  let obs_w = Obs.create () in
  let end_w = with_span_clock obs_w in
  let w =
    Harness.run ~obs:obs_w
      (scenario_for proto ~read_fraction:0.0 ~ops:writes ~seed:(seed + 1))
  in
  {
    case_name = Config.name_to_string name;
    n;
    reads =
      side_of ~ops:reads ~ok:r.Harness.reads_ok ~failed:r.Harness.reads_failed
        ~duration:!end_r ~stats:r.Harness.read_latency
        ~measured_load:(Harness.measured_read_load r)
        ~analytic_load:metrics.Config_metrics.rd_load ~obs:obs_r
        ~retries:r.Harness.retries;
    writes =
      side_of ~ops:writes ~ok:w.Harness.writes_ok
        ~failed:w.Harness.writes_failed ~duration:!end_w
        ~stats:w.Harness.write_latency
        ~measured_load:(Harness.measured_write_load w)
        ~analytic_load:metrics.Config_metrics.wr_load ~obs:obs_w
        ~retries:w.Harness.retries;
  }

let measure_all ?(seed = default_seed) ?(n = default_n)
    ?(cases = default_cases) ?domains () =
  (* Each case builds its own protocol, engine and observability handle,
     so the four §4 configurations can run on separate domains; results
     come back in case order regardless of scheduling. *)
  Parallel.map ?domains
    (fun (name, reads, writes) -> measure ~seed ~n name ~reads ~writes)
    cases

let load_error side =
  if side.analytic_load = 0.0 then 0.0
  else Float.abs (side.measured_load -. side.analytic_load) /. side.analytic_load

let max_load_error rows =
  List.fold_left
    (fun acc r -> Float.max acc (Float.max (load_error r.reads) (load_error r.writes)))
    0.0 rows

let span_leaks rows =
  let leak s = s.spans_open + abs (s.spans_started - s.spans_closed) in
  List.fold_left (fun acc r -> acc + leak r.reads + leak r.writes) 0 rows

let table rows =
  let cells =
    List.map
      (fun r ->
        [
          r.case_name;
          string_of_int r.n;
          Tablefmt.f2 r.reads.throughput;
          Printf.sprintf "%.2f/%.2f/%.2f" r.reads.lat_p50 r.reads.lat_p95
            r.reads.lat_p99;
          Printf.sprintf "%.4f (%.4f)" r.reads.measured_load
            r.reads.analytic_load;
          Tablefmt.f2 r.writes.throughput;
          Printf.sprintf "%.2f/%.2f/%.2f" r.writes.lat_p50 r.writes.lat_p95
            r.writes.lat_p99;
          Printf.sprintf "%.4f (%.4f)" r.writes.measured_load
            r.writes.analytic_load;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "config"; "n"; "rd ops/t"; "rd p50/p95/p99"; "rdL sim (ana)";
        "wr ops/t"; "wr p50/p95/p99"; "wrL sim (ana)";
      ]
    ~rows:cells

let side_json s =
  Printf.sprintf
    "{\"ops\":%d,\"ok\":%d,\"failed\":%d,\"duration\":%.6f,\
     \"throughput\":%.6f,\
     \"latency\":{\"mean\":%.6f,\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f},\
     \"measured_load\":%.6f,\"analytic_load\":%.6f,\"load_error\":%.6f,\
     \"spans\":{\"started\":%d,\"closed\":%d,\"open\":%d},\"retries\":%d}"
    s.ops s.ok s.failed s.duration s.throughput s.lat_mean s.lat_p50 s.lat_p95
    s.lat_p99 s.measured_load s.analytic_load (load_error s) s.spans_started
    s.spans_closed s.spans_open s.retries

let to_json ~seed ~n rows =
  let case_json r =
    Printf.sprintf "{\"config\":\"%s\",\"n\":%d,\"reads\":%s,\"writes\":%s}"
      r.case_name r.n (side_json r.reads) (side_json r.writes)
  in
  Printf.sprintf
    "{\"schema\":\"bench-baseline/1\",\"seed\":%d,\"n\":%d,\
     \"max_load_error\":%.6f,\"span_leaks\":%d,\"cases\":[%s]}"
    seed n (max_load_error rows) (span_leaks rows)
    (String.concat "," (List.map case_json rows))
