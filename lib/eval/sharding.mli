(** Shard-scaling campaign: the multi-tree control plane under a
    saturating workload.

    Every cell runs the same closed-loop workload (32 clients, 1024
    operations, 50/50 mix over 1024 keys) against {!Replication.Shard_harness}
    with a per-replica service cost, so single-tree throughput saturates
    on the root replica and shard-count scaling is measurable in virtual
    time.  Five cell families:

    - {b scaling}: each §4 arbitrary-protocol configuration at
      S ∈ {1, 4, 16, 64}, uniform keys.  [speedup] is
      duration(S=1)/duration(S) within a configuration; the gate requires
      ≥ 0.7 × ideal at S=16 on at least one configuration.
    - {b skew}: the same workload at S=16 under Zipfian keys (θ = 0.99):
      per-shard operation histograms and the max/mean imbalance report.
    - {b identity}: the S=1 control — the sharded harness must reproduce
      the unsharded {!Replication.Harness} run byte-for-byte
      ({!Batching.fingerprint} equality).
    - {b atomicity}: cross-shard increment transactions through a lossy
      shard, once with the 2PC barrier ([conserved], no partials) and
      once without (the negative control must leave phantom increments).
    - {b reconfig}: an online split plus merge mid-run — zero safety
      violations, a well-formed final map, no migration failures.

    Cells are independent and fan out over {!Parallel.map}; output is
    byte-identical for any domain count. *)

val configs : Arbitrary.Config.name list
(** The four §4 configurations of the arbitrary protocol. *)

val shard_counts : int list
(** [[1; 4; 16; 64]] *)

type scale_cell = {
  config : Arbitrary.Config.name;
  shards : int;
  n : int;  (** replicas per shard tree *)
  completed : int;
  duration : float;  (** virtual makespan *)
  throughput : float;  (** completed ops per unit virtual time *)
  violations : int;  (** online safety-checker hits *)
  speedup : float;  (** duration(S=1) / duration, same configuration *)
  efficiency : float;  (** speedup / shards *)
}

type skew_cell = {
  sk_config : Arbitrary.Config.name;
  sk_shards : int;
  theta : float;
  sk_completed : int;
  sk_violations : int;
  per_shard_ops : int array;
  imbalance_max : float;
  imbalance_mean : float;
  imbalance_ratio : float;  (** max/mean; 1.0 = perfectly balanced *)
}

type identity_cell = {
  id_config : Arbitrary.Config.name;
  fingerprint_sharded : string;
  fingerprint_unsharded : string;
  identical : bool;
}

type atomicity_cell = {
  atomic : bool;
  committed : int;
  aborted : int;
  uncertain : int;
  partial_commits : int;
  phantoms : int;
  lost : int;
  conserved : bool;
  cross_shard : int;
}

type reconfig_cell = {
  rc_completed : int;
  rc_violations : int;
  splits : int;
  merges : int;
  migrated_keys : int;
  migration_failures : int;
  well_formed : bool;
  active_shards : int list;
}

type campaign = {
  scaling : scale_cell list;
  skew : skew_cell list;
  identity : identity_cell;
  atomic_cell : atomicity_cell;
  nonatomic_cell : atomicity_cell;
  reconfig : reconfig_cell;
}

val run : ?seed:int -> ?domains:int -> unit -> campaign
(** Deterministic for a fixed seed; [domains] only fans the independent
    cells over cores. *)

val speedup_at : campaign -> shards:int -> float
(** Best speedup over the configurations at the given shard count. *)

type verdict = { pass : bool; failures : string list }

val gate : campaign -> verdict
(** The acceptance predicate: scaling ≥ 0.7 × ideal at S=16 on some
    configuration; zero safety violations in every scaling, skew and
    reconfig cell; the S=1 fingerprint control identical; the atomic
    transaction cell conserved with no partial commits; the non-atomic
    negative control showing phantom increments; and the reconfiguration
    cell completing its split and merge with a well-formed map and no
    migration failures. *)

val json : campaign -> string
(** The [BENCH_shard.json] payload (schema ["bench-shard/1"]). *)

val table : campaign -> string
(** Scaling and skew tables plus the control one-liners. *)
