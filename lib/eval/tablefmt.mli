(** Minimal fixed-width table rendering for the benchmark reports. *)

val render : header:string list -> rows:string list list -> string
(** Columns are padded to the widest cell; the header is separated by a
    rule. *)

val f2 : float -> string
(** Two-decimal float cell. *)

val f4 : float -> string
(** Four-decimal float cell. *)
