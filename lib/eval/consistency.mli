(** Trace-driven regularity checker.

    Consumes the span stream of a finished run (e.g.
    [Harness.report.spans], collected with [check_consistency]) and
    verifies per-key {e regularity}: every completed read must return a
    timestamp at least as new as the newest write to the same key that
    {e completed successfully before the read began}.  Writes still in
    flight while the read ran may or may not be visible — either is
    legal — so only [started >= write.ended] pairs constrain the read.

    This is the offline, evidence-carrying counterpart of the harness's
    online safety counter: it works purely from the observability stream
    (the same JSONL a real deployment would emit), and each violation
    names the offending operation ids so a failure is debuggable rather
    than a bare counter. *)

type violation = {
  read_id : int;  (** span id of the stale read *)
  write_id : int;  (** span id of the newest prior committed write *)
  key : int;
  observed : Replication.Timestamp.t;  (** what the read returned *)
  required : Replication.Timestamp.t;  (** what it had to be at least *)
  read_started : float;
  write_ended : float;
}

type report = {
  reads_checked : int;
  writes_indexed : int;
  unstamped : int;
      (** completed reads/writes lacking a [result_ts] (not produced by an
          instrumented coordinator) — skipped, not counted as violations *)
  violations : violation list;  (** in read-completion order *)
}

val check :
  ?read_op:string -> ?write_op:string -> Obs.Span.t list -> report
(** [check spans] examines spans whose [op] equals [read_op] (default
    ["read"]) or [write_op] (default ["write"]); only spans that finished
    with outcome [Ok] and carry a [result_ts] take part. *)

val ok : report -> bool
(** No violations. *)

val pp : Format.formatter -> report -> unit

val pp_violation : Format.formatter -> violation -> unit

(** {2 Increment conservation}

    The transaction harnesses run increment transactions whose committed
    effects are exactly countable, giving the atomicity invariant

    {v committed ≤ observed ≤ committed + uncertain v}

    where [uncertain] bounds the 2PC in-doubt window.  {e Phantom}
    increments (observed above the upper bound) are the signature of a
    partially-applied cross-shard transaction — a broken atomicity
    barrier; {e lost} increments (observed below the floor) would mean a
    committed write vanished. *)

type conservation = {
  committed_increments : int;
  uncertain_increments : int;
  observed_increments : int;
  phantom_increments : int;  (** max 0 (observed - committed - uncertain) *)
  lost_increments : int;  (** max 0 (committed - observed) *)
}

val check_conservation :
  committed:int -> uncertain:int -> observed:int -> conservation

val conserved : conservation -> bool
(** No phantoms, nothing lost. *)

val pp_conservation : Format.formatter -> conservation -> unit
