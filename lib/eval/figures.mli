(** Regeneration of every figure and table of the paper's evaluation
    (§3.4 and §4).  Each function renders the same series the paper plots,
    as text tables; the benchmark executable prints them all. *)

val default_sizes : int list
(** System sizes swept on the x-axis: 9, 17, 33, 65, 129, 257, 513 (each
    configuration snaps to its nearest feasible size at or below). *)

val default_p : float
(** Per-replica availability used for expected loads and availabilities:
    0.7, the value of the paper's worked example. *)

val fig2 : ?sizes:int list -> unit -> string
(** Figure 2: read and write communication costs of the six
    configurations. *)

val fig3 : ?sizes:int list -> ?p:float -> unit -> string
(** Figure 3: system loads and expected system loads of read
    operations. *)

val fig4 : ?sizes:int list -> ?p:float -> unit -> string
(** Figure 4: system loads and expected system loads of write
    operations. *)

val table1 : unit -> string
(** Table 1 plus the §3.4 worked example on the Figure-1 tree. *)

val limits : ?ps:float list -> unit -> string
(** §3.3: limit availabilities of Algorithm-1 trees as n→∞, against the
    exact values at n = 10000. *)

val related_work : ?n:int -> ?p:float -> unit -> string
(** The §1 comparison, reconstructed: read/write cost, optimal load and
    availability of ROWA, Majority, Grid, Maekawa √n, the VLDB-90 tree
    quorum protocol, BINARY, HQC and the arbitrary protocol, each at its
    feasible size nearest [n] (default 64).  Availabilities without a
    closed form are Monte-Carlo estimates through the protocols' own
    quorum assembly. *)

val shape_checks : unit -> string
(** The qualitative claims of §4 ("who wins"), each evaluated and marked
    OK/FAIL: e.g. ARBITRARY has the lowest write cost of the four
    structured configurations, UNMODIFIED read load is 1, BINARY write
    load exceeds everyone's, the new lower bound 1/log₂(n+1) <
    2/(log₂(n+1)+1), … *)

val all : unit -> string
(** Every section above, concatenated — the full analytic reproduction. *)
