module Harness = Replication.Harness
module Stats = Dsutil.Stats

type knobs = { batch_size : int; group_commit : bool; pipeline : int }

let default_knobs = { batch_size = 32; group_commit = true; pipeline = 8 }
let identity_knobs = { batch_size = 1; group_commit = true; pipeline = 1 }

let to_batching k =
  {
    Harness.batch_size = k.batch_size;
    group_commit = k.group_commit;
    pipeline = k.pipeline;
  }

let scenario ?batching ~name ~n ~ops ~seed () =
  let n = Config_metrics.feasible_n name n in
  let proto = Config_metrics.protocol_of name ~n in
  let s = Harness.default_scenario ~proto in
  {
    s with
    Harness.n_clients = 1;
    ops_per_client = ops;
    read_fraction = 0.5;
    think_time = 0.1;
    seed;
    batching;
  }

let pair ?(knobs = default_knobs) ~name ~n ~ops ~seed () =
  ( scenario ~name ~n ~ops ~seed (),
    scenario ~batching:(to_batching knobs) ~name ~n ~ops ~seed () )

(* Floats are rendered with %h (exact hexadecimal representation), so the
   digest distinguishes runs that differ in the last ulp. *)
let fingerprint (r : Harness.report) =
  let b = Buffer.create 4096 in
  let ints name xs =
    Buffer.add_string b name;
    Buffer.add_char b '=';
    Array.iter (fun x -> Printf.bprintf b "%d," x) xs;
    Buffer.add_char b ';'
  in
  Printf.bprintf b "dur=%h;" r.Harness.duration;
  Printf.bprintf b "r=%d/%d;w=%d/%d;retries=%d;ddl=%d;sv=%d;"
    r.Harness.reads_ok r.Harness.reads_failed r.Harness.writes_ok
    r.Harness.writes_failed r.Harness.retries r.Harness.deadline_exceeded
    r.Harness.safety_violations;
  Printf.bprintf b "rl=%d:%h;wl=%d:%h;"
    (Stats.count r.Harness.read_latency)
    (Stats.mean r.Harness.read_latency)
    (Stats.count r.Harness.write_latency)
    (Stats.mean r.Harness.write_latency);
  Printf.bprintf b "msg=%d/%d/%d;hb=%d;" r.Harness.messages_sent
    r.Harness.messages_delivered r.Harness.messages_dropped
    r.Harness.heartbeat_pings;
  ints "rs" r.Harness.replica_reads_served;
  ints "ps" r.Harness.replica_prepares_seen;
  ints "wa" r.Harness.replica_writes_applied;
  ints "inc" r.Harness.replica_incarnations;
  Printf.bprintf b "stale=%d;cu=%d/%d/%d;nack=%d;wal=%d/%d;recovering=%d;"
    r.Harness.stale_incarnation_rejections r.Harness.catchup_runs
    r.Harness.catchup_keys_installed r.Harness.catchup_abandoned
    r.Harness.stale_commits_nacked r.Harness.wal_records_replayed
    r.Harness.wal_records_lost r.Harness.replicas_recovering;
  Printf.bprintf b "sheds=%d;busy=%d;supp=%d;odrops=%d;trips=%d;peak=%d;"
    r.Harness.replica_sheds r.Harness.busy_received r.Harness.retries_suppressed
    r.Harness.overload_drops r.Harness.breaker_trips r.Harness.queue_peak;
  Printf.bprintf b "batch=%d;coal=%d;syncs=%d;" r.Harness.batches
    r.Harness.coalesced_ops r.Harness.wal_syncs;
  Buffer.add_string b "done=";
  Array.iter (fun t -> Printf.bprintf b "%h," t) r.Harness.completions;
  Digest.to_hex (Digest.string (Buffer.contents b))
