module Config = Arbitrary.Config
module Harness = Replication.Harness
module Coordinator = Replication.Coordinator
module Failure = Dsim.Failure
module Rng = Dsutil.Rng
module Stats = Dsutil.Stats

type schedule = {
  label : string;
  loss_rate : float;
  entries : rng:Rng.t -> n:int -> horizon:float -> Failure.entry list;
}

(* Steady-state availability mtbf/(mtbf+mttr) = 0.8: harsh enough that a
   detector that never rehabilitates would starve, long enough outages
   that a detector that never suspects would stall every operation. *)
let churn ~rng ~n ~horizon =
  Failure.random_crash_recovery ~rng ~n ~horizon ~mtbf:400.0 ~mttr:100.0

let crashes_schedule = { label = "crashes"; loss_rate = 0.0; entries = churn }

(* Recurring minority partitions: every [period], isolate a random ~n/3
   subset of replicas for [width].  Only replicas are listed, so clients
   and the remaining majority stay mutually reachable (Network.partition
   puts unlisted sites in one implicit group). *)
let partition_entries ~rng ~n ~horizon =
  let period = 600.0 and width = 200.0 and start = 300.0 in
  let sites = Array.init n Fun.id in
  let rec windows t acc =
    if t >= horizon then List.rev acc
    else begin
      Rng.shuffle rng sites;
      let minority = Array.to_list (Array.sub sites 0 (max 1 (n / 3))) in
      let acc =
        { Failure.time = t +. width; event = Failure.Heal }
        :: { Failure.time = t; event = Failure.Partition [ minority ] }
        :: acc
      in
      windows (t +. period) acc
    end
  in
  windows start []

let partitions_schedule =
  { label = "partitions"; loss_rate = 0.0; entries = partition_entries }

let loss_schedule =
  {
    label = "loss";
    loss_rate = 0.05;
    entries = (fun ~rng:_ ~n:_ ~horizon:_ -> []);
  }

let combined_schedule =
  {
    label = "combined";
    loss_rate = 0.03;
    entries =
      (fun ~rng ~n ~horizon ->
        let crashes =
          Failure.random_crash_recovery ~rng ~n ~horizon ~mtbf:500.0
            ~mttr:80.0
        in
        let parts = partition_entries ~rng ~n ~horizon in
        List.sort
          (fun a b -> Float.compare a.Failure.time b.Failure.time)
          (crashes @ parts));
  }

(* Total blackout: every replica crashes at once mid-workload and comes
   back shortly after.  Under amnesia with an async WAL this destroys each
   replica's un-flushed log suffix on {e all} copies simultaneously, so
   with catch-up disabled post-recovery reads are provably stale — the
   negative control the consistency checker must flag. *)
let blackout ~crash_at ~outage ~rng:_ ~n ~horizon:_ =
  List.concat
    (List.init n (fun i ->
         [
           { Failure.time = crash_at; event = Failure.Crash i };
           { Failure.time = crash_at +. outage; event = Failure.Recover i };
         ]))

let blackout_schedule =
  {
    label = "blackout";
    loss_rate = 0.0;
    entries = blackout ~crash_at:100.0 ~outage:40.0;
  }

let default_schedules =
  [ crashes_schedule; partitions_schedule; loss_schedule; combined_schedule ]

type detector = Oracle | Heartbeat

let detector_to_string = function
  | Oracle -> "oracle"
  | Heartbeat -> "heartbeat"

type cell = {
  config : Config.name;
  schedule : string;
  detector : detector;
  n : int;
  report : Harness.report;
  read_rate : float;
  write_rate : float;
}

type campaign = { cells : cell list; safety_violations : int }

let default_configs =
  [ Config.Mostly_read; Config.Mostly_write; Config.Arbitrary; Config.Unmodified ]

(* Degradation-tolerant coordinator: adaptive phase timeouts, jittered
   exponential backoff, a hard per-operation deadline so dead quorums are
   abandoned instead of hammered. *)
let chaos_coordinator =
  {
    Coordinator.default_config with
    Coordinator.max_retries = 8;
    adaptive_timeout = true;
    deadline = 600.0;
  }

(* Campaign detection settings: a short ping period cuts the blind window
   after each crash (detection latency ~ period + threshold·σ) while the
   default φ threshold keeps false suspicions rare — essential because a
   write quorum needs {e every} node of a level, so one false suspect
   fails the whole attempt. *)
let chaos_heartbeat =
  { Detect.Heartbeat.default_config with Detect.Heartbeat.period = 2.5 }

let rate ok failed =
  let total = ok + failed in
  if total = 0 then 1.0 else float_of_int ok /. float_of_int total

let run ?(n = 45) ?(clients = 3) ?(ops = 25) ?(seed = 42) ?(horizon = 3000.0)
    ?(configs = default_configs) ?(schedules = default_schedules)
    ?(detectors = [ Oracle; Heartbeat ]) ?domains () =
  (* Flatten the config × schedule × detector sweep into self-contained
     cell specs so the domain pool can fan them out; submission order is
     the sequential iteration order, so [Parallel.map] returns cells in
     exactly the order the old nested loops produced them. *)
  let specs =
    List.concat
      (List.mapi
         (fun ci name ->
           List.concat
             (List.mapi
                (fun si sched ->
                  List.map (fun detector -> (ci, name, si, sched, detector)) detectors)
                schedules))
         configs)
  in
  let run_cell (ci, name, si, sched, detector) =
    let n = Config_metrics.feasible_n name n in
    (* Per-cell protocol instance: cells may run on different domains. *)
    let proto = Config_metrics.protocol_of name ~n in
    (* One failure trace and one workload seed per (config, schedule):
       detector modes face identical adversity.  [entries] is a pure
       function of the seeded rng, so recomputing it per detector cell
       yields the same trace the shared computation used to. *)
    let cell_seed = seed + (1000 * ci) + (100 * si) in
    let entries = sched.entries ~rng:(Rng.create cell_seed) ~n ~horizon in
    let s = Harness.default_scenario ~proto in
    let scenario =
      {
        s with
        Harness.n_clients = clients;
        ops_per_client = ops;
        read_fraction = 0.5;
        key_space = 8;
        think_time = 3.0;
        loss_rate = sched.loss_rate;
        failures = entries;
        seed = cell_seed;
        coordinator = chaos_coordinator;
        detector =
          (match detector with
          | Oracle -> Harness.Oracle
          | Heartbeat -> Harness.Heartbeat chaos_heartbeat);
        horizon;
        warmup = 1.0;
      }
    in
    let report = Harness.run scenario in
    {
      config = name;
      schedule = sched.label;
      detector;
      n;
      report;
      read_rate = rate report.Harness.reads_ok report.Harness.reads_failed;
      write_rate = rate report.Harness.writes_ok report.Harness.writes_failed;
    }
  in
  let cells = Parallel.map ?domains run_cell specs in
  {
    cells;
    safety_violations =
      List.fold_left
        (fun acc c -> acc + c.report.Harness.safety_violations)
        0 cells;
  }

(* --- amnesia crash-recovery campaign ------------------------------------ *)

type amnesia_cell = {
  a_config : Config.name;
  a_n : int;
  a_wal : Replication.Wal.policy;
  a_catch_up : bool;
  a_schedule : string;
  a_report : Harness.report;
  a_consistency : Consistency.report;
}

let run_amnesia ?(n = 45) ?(clients = 3) ?(ops = 25) ?(seed = 42)
    ?(horizon = 3000.0) ?(configs = default_configs)
    ?(wal = Replication.Wal.Sync_on_commit) ?(catch_up = true)
    ?(schedule = crashes_schedule) ?domains () =
  let run_cell (ci, name) =
    let n = Config_metrics.feasible_n name n in
    let proto = Config_metrics.protocol_of name ~n in
    let cell_seed = seed + (1000 * ci) in
    let entries = schedule.entries ~rng:(Rng.create cell_seed) ~n ~horizon in
    let s = Harness.default_scenario ~proto in
    let scenario =
      {
        s with
        Harness.n_clients = clients;
        ops_per_client = ops;
        read_fraction = 0.5;
        key_space = 8;
        think_time = 3.0;
        loss_rate = schedule.loss_rate;
        failures = entries;
        seed = cell_seed;
        coordinator = chaos_coordinator;
        detector = Harness.Oracle;
        horizon;
        warmup = 1.0;
        crash_mode = Dsim.Network.Amnesia;
        wal;
        catch_up;
        check_consistency = true;
      }
    in
    let report = Harness.run scenario in
    {
      a_config = name;
      a_n = n;
      a_wal = wal;
      a_catch_up = catch_up;
      a_schedule = schedule.label;
      a_report = report;
      a_consistency = Consistency.check report.Harness.spans;
    }
  in
  Parallel.map ?domains run_cell (List.mapi (fun ci name -> (ci, name)) configs)

(* The unsafe configuration that must fail: volatile-suffix WAL, no
   catch-up, and a simultaneous blackout of every replica. *)
let run_amnesia_negative ?n ?(clients = 3) ?(ops = 25) ?seed ?horizon ?configs
    ?domains () =
  run_amnesia ?n ~clients ~ops ?seed ?horizon ?configs
    ~wal:(Replication.Wal.Async 60.0) ~catch_up:false
    ~schedule:blackout_schedule ?domains ()

let amnesia_violations cells =
  List.fold_left
    (fun acc c ->
      acc
      + List.length c.a_consistency.Consistency.violations
      + c.a_report.Harness.safety_violations)
    0 cells

let amnesia_table cells =
  let rows =
    List.map
      (fun c ->
        [
          Config.name_to_string c.a_config;
          string_of_int c.a_n;
          c.a_schedule;
          Replication.Wal.policy_to_string c.a_wal;
          (if c.a_catch_up then "on" else "off");
          Tablefmt.f4
            (rate c.a_report.Harness.reads_ok c.a_report.Harness.reads_failed);
          Tablefmt.f4
            (rate c.a_report.Harness.writes_ok c.a_report.Harness.writes_failed);
          string_of_int c.a_report.Harness.catchup_runs;
          string_of_int c.a_report.Harness.catchup_keys_installed;
          string_of_int c.a_report.Harness.wal_records_lost;
          string_of_int c.a_report.Harness.stale_incarnation_rejections;
          string_of_int c.a_report.Harness.stale_commits_nacked;
          string_of_int (List.length c.a_consistency.Consistency.violations);
        ])
      cells
  in
  Tablefmt.render
    ~header:
      [
        "config"; "n"; "schedule"; "wal"; "catchup"; "rd rate"; "wr rate";
        "rejoins"; "keys"; "wal lost"; "stale rej"; "stale nack"; "viol";
      ]
    ~rows

let p99 stats =
  if Stats.count stats = 0 then "-"
  else Printf.sprintf "%.1f" (Stats.percentile stats 0.99)

let table campaign =
  let rows =
    List.map
      (fun c ->
        [
          Config.name_to_string c.config;
          string_of_int c.n;
          c.schedule;
          detector_to_string c.detector;
          Tablefmt.f4 c.read_rate;
          Tablefmt.f4 c.write_rate;
          p99 c.report.Harness.read_latency;
          p99 c.report.Harness.write_latency;
          string_of_int c.report.Harness.retries;
          string_of_int c.report.Harness.deadline_exceeded;
          string_of_int c.report.Harness.messages_delivered;
          string_of_int c.report.Harness.safety_violations;
        ])
      campaign.cells
  in
  Tablefmt.render
    ~header:
      [
        "config"; "n"; "schedule"; "detector"; "rd rate"; "wr rate";
        "rd p99"; "wr p99"; "retries"; "ddl"; "msgs"; "viol";
      ]
    ~rows

(* Pair up oracle/heartbeat cells of the same (config, schedule). *)
let pairs campaign =
  List.filter_map
    (fun c ->
      if c.detector <> Oracle then None
      else
        List.find_opt
          (fun c' ->
            c'.detector = Heartbeat && c'.config = c.config
            && c'.schedule = c.schedule)
          campaign.cells
        |> Option.map (fun c' -> (c, c')))
    campaign.cells

let parity_table campaign =
  let rows =
    List.map
      (fun (o, h) ->
        [
          Config.name_to_string o.config;
          o.schedule;
          Tablefmt.f4 o.read_rate;
          Tablefmt.f4 h.read_rate;
          Printf.sprintf "%+.4f" (h.read_rate -. o.read_rate);
          Tablefmt.f4 o.write_rate;
          Tablefmt.f4 h.write_rate;
          Printf.sprintf "%+.4f" (h.write_rate -. o.write_rate);
        ])
      (pairs campaign)
  in
  Tablefmt.render
    ~header:
      [
        "config"; "schedule"; "rd oracle"; "rd hb"; "rd delta";
        "wr oracle"; "wr hb"; "wr delta";
      ]
    ~rows

(* Parity is only meaningful where the oracle itself can succeed: a
   write-all quorum under heavy churn fails with ground-truth knowledge
   too (P(all n up) ≈ availability^n), and comparing two near-zero rates
   measures sampling luck, not detector quality.  Components whose oracle
   rate is below [floor] are skipped. *)
let crash_parity_gap ?(floor = 0.5) campaign =
  let component oracle_rate hb_rate =
    if oracle_rate < floor then 0.0 else Float.abs (oracle_rate -. hb_rate)
  in
  List.fold_left
    (fun acc (o, h) ->
      if o.schedule <> crashes_schedule.label then acc
      else
        Float.max acc
          (Float.max
             (component o.read_rate h.read_rate)
             (component o.write_rate h.write_rate)))
    0.0 (pairs campaign)
