(** Operation stream generation: read/write mixes over a skewed key
    space. *)

type op = Read of int | Write of int * string  (** key, payload *)

type t

val create :
  rng:Dsutil.Rng.t ->
  read_fraction:float ->
  key_space:int ->
  ?zipf_theta:float ->
  unit ->
  t
(** [zipf_theta] defaults to 0 (uniform keys). *)

val next : t -> op
(** Draws the next operation; write payloads are unique, so a committed
    value identifies its originating operation in safety checks. *)

val think_time : t -> mean:float -> float
(** Exponential think-time draw for closed-loop clients. *)
