module Rng = Dsutil.Rng

type t = { n : int; cdf : float array }

let create ~n ~theta =
  if n < 1 then invalid_arg "Zipf.create: need at least one key";
  if theta < 0.0 || theta > 2.0 then invalid_arg "Zipf.create: theta out of [0,2]";
  let weights =
    Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta))
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { n; cdf }

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Binary search for the first cdf entry >= u. *)
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then go lo mid else go (mid + 1) hi
    end
  in
  go 0 (t.n - 1)

let pmf t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.pmf: key out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)
