type t = {
  name : string;
  description : string;
  read_fraction : float;
  zipf_theta : float;
}

let update_heavy =
  {
    name = "update-heavy";
    description = "50% reads / 50% writes, skewed keys (YCSB-A)";
    read_fraction = 0.5;
    zipf_theta = 0.99;
  }

let read_mostly =
  {
    name = "read-mostly";
    description = "95% reads / 5% writes, skewed keys (YCSB-B)";
    read_fraction = 0.95;
    zipf_theta = 0.99;
  }

let read_only =
  {
    name = "read-only";
    description = "100% reads, skewed keys (YCSB-C)";
    read_fraction = 1.0;
    zipf_theta = 0.99;
  }

let write_heavy =
  {
    name = "write-heavy";
    description = "5% reads / 95% writes, uniform keys";
    read_fraction = 0.05;
    zipf_theta = 0.0;
  }

let all = [ update_heavy; read_mostly; read_only; write_heavy ]

let by_name name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun p -> p.name = name) all
