(** Zipf-distributed key sampler (popularity skew for realistic
    workloads). *)

type t

val create : n:int -> theta:float -> t
(** Keys 0 .. n−1; [theta = 0] is uniform, [theta ≈ 1] is classic Zipf.
    [theta] must be in [\[0, 2\]] and [n ≥ 1]. *)

val sample : t -> Dsutil.Rng.t -> int

val pmf : t -> int -> float
(** Probability of the given key. *)
