(** Canned workload mixes (YCSB-inspired), so scenarios across the
    examples, CLI and benchmarks agree on what "read-heavy" means. *)

type t = {
  name : string;
  description : string;
  read_fraction : float;
  zipf_theta : float;
}

val update_heavy : t
(** 50% reads / 50% writes, skewed keys (YCSB-A). *)

val read_mostly : t
(** 95% reads (YCSB-B). *)

val read_only : t
(** 100% reads (YCSB-C). *)

val write_heavy : t
(** 5% reads — the regime MOSTLY-WRITE trees are built for. *)

val all : t list

val by_name : string -> t option
(** Case-insensitive lookup. *)
