module Rng = Dsutil.Rng

type op = Read of int | Write of int * string

type t = {
  rng : Rng.t;
  read_fraction : float;
  keys : Zipf.t;
  mutable next_payload : int;
}

let create ~rng ~read_fraction ~key_space ?(zipf_theta = 0.0) () =
  if read_fraction < 0.0 || read_fraction > 1.0 then
    invalid_arg "Generator.create: read_fraction out of [0,1]";
  {
    rng;
    read_fraction;
    keys = Zipf.create ~n:key_space ~theta:zipf_theta;
    next_payload = 0;
  }

let next t =
  let key = Zipf.sample t.keys t.rng in
  if Rng.bernoulli t.rng t.read_fraction then Read key
  else begin
    let payload = Printf.sprintf "v%d" t.next_payload in
    t.next_payload <- t.next_payload + 1;
    Write (key, payload)
  end

let think_time t ~mean = Rng.exponential t.rng mean
