(** The Tree Quorum protocol of Agrawal and El Abbadi (the paper's "BINARY"
    configuration).

    Replicas form a complete binary tree of height [h]
    (n = 2^(h+1) − 1).  A quorum is a root-to-leaf path; any inaccessible
    node is replaced by paths starting from {e all} of its children.  Read
    and write operations use the same quorum family.  Cost ranges from
    log₂(n+1) (a bare path) to (n+1)/2 (all leaves); the optimal system
    load, due to Naor–Wool, is 2/(h+2). *)

type t

val create : height:int -> t
val of_n : n:int -> t
(** Largest complete binary tree with at most [n] nodes. *)

val protocol : t -> Protocol.t
val height : t -> int
val n_of_height : int -> int

val min_cost : t -> int
(** [h + 1 = log₂(n+1)]: a failure-free path. *)

val max_cost : t -> int
(** [(n+1)/2]: all leaves when all internal nodes are down. *)

val paper_cost : t -> float
(** The average communication cost formula the paper plots for "BINARY":
    2^h·(1+h)^h / (h·(2+h)^(h−1)) − 2/h, obtained with
    f = 2/(2+h) as the fraction of quorums through the root. *)

val optimal_load : t -> float
(** 2/(h+2) = 2/(log₂(n+1)+1) (Naor–Wool §6.3). *)

val expected_cost : t -> float
(** Exact failure-free expected quorum size of the load-optimal strategy
    implemented by [read_quorum]/[write_quorum] (the recurrence
    C(l) = f·(1+C(l−1)) + (1−f)·2C(l−1), f = 2/(2+l)).  The paper's
    {!paper_cost} closed form approximates this from above. *)

val availability : t -> p:float -> float
(** Probability a quorum can be formed when every node is independently up
    with probability [p]; computed by the exact recurrence
    R(0) = p, R(h) = p·(1 − (1 − R(h−1))²) + (1−p)·R(h−1)². *)

val quorum_count : t -> int
(** Number of distinct quorums: N(0) = 1, N(h) = 2N(h−1) + N(h−1)². *)

include Protocol.S with type t := t
