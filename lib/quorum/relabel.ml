module Bitset = Dsutil.Bitset

type t = {
  inner : Protocol.t;
  universe : int;
  map : int array;  (* position -> site; deliberately shared across forks *)
  scratch : Bitset.t;  (* position-space alive view, reused per call *)
}

let make ~universe inner =
  let n = Protocol.universe_size inner in
  if universe < n then
    invalid_arg "Relabel.make: universe smaller than the inner protocol";
  {
    inner;
    universe;
    map = Array.init n Fun.id;
    scratch = Bitset.create n;
  }

let positions t = Array.length t.map
let site_of t ~position = t.map.(position)

let position_of t ~site =
  let rec go p =
    if p = Array.length t.map then None
    else if t.map.(p) = site then Some p
    else go (p + 1)
  in
  go 0

let remap t ~position ~site =
  if position < 0 || position >= Array.length t.map then
    invalid_arg "Relabel.remap: no such position";
  if site < 0 || site >= t.universe then
    invalid_arg "Relabel.remap: site outside the universe";
  Array.iter
    (fun s ->
      if s = site && t.map.(position) <> site then
        invalid_arg "Relabel.remap: site already holds a position")
    t.map;
  t.map.(position) <- site

(* Restrict a site-space alive view to the positions whose current
   occupant is alive. *)
let inner_alive t ~alive =
  Bitset.clear t.scratch;
  for p = 0 to Array.length t.map - 1 do
    if Bitset.mem alive t.map.(p) then Bitset.add t.scratch p
  done;
  t.scratch

let to_sites t q =
  let out = Bitset.create t.universe in
  Bitset.iter (fun p -> Bitset.add out t.map.(p)) q;
  out

module Relabeled = struct
  type nonrec t = t

  let name t = "relabel(" ^ Protocol.name t.inner ^ ")"
  let universe_size t = t.universe

  let read_quorum t ~alive ~rng =
    Option.map (to_sites t)
      (Protocol.read_quorum t.inner ~alive:(inner_alive t ~alive) ~rng)

  let write_quorum t ~alive ~rng =
    Option.map (to_sites t)
      (Protocol.write_quorum t.inner ~alive:(inner_alive t ~alive) ~rng)

  let read_levels t =
    match Protocol.read_levels t.inner with
    | None -> None
    | Some plan ->
      Some
        {
          Protocol.n_levels = plan.Protocol.n_levels;
          level_site =
            (fun ~alive ~rng ~level ->
              let p =
                plan.Protocol.level_site ~alive:(inner_alive t ~alive) ~rng
                  ~level
              in
              if p < 0 then -1 else t.map.(p));
        }

  let enumerate_read_quorums t =
    let (Protocol.Dyn ((module P), p)) = t.inner in
    Seq.map (to_sites t) (P.enumerate_read_quorums p)

  let enumerate_write_quorums t =
    let (Protocol.Dyn ((module P), p)) = t.inner in
    Seq.map (to_sites t) (P.enumerate_write_quorums p)

  (* Deliberate deviation from the fork contract: the position map is
     SHARED between a wrapper and its forks, so a promotion's remap is
     one atomic store visible to every coordinator at once — forked maps
     would let two coordinators disagree about who holds a position,
     which is exactly the split quorum the remap must never produce.
     The inner protocol and the alive-view scratch are forked normally.
     Plain [int array] stores are atomic per element in OCaml, and the
     evaluation driver remaps only between events (single-domain) or on
     per-cell instances (multi-domain), so the sharing is benign. *)
  let fork t =
    {
      inner = Protocol.fork t.inner;
      universe = t.universe;
      map = t.map;
      scratch = Bitset.create (Array.length t.map);
    }
end

let pack t = Protocol.pack (module Relabeled) t
