module Bitset = Dsutil.Bitset

type level_plan = {
  n_levels : int;
  level_site : alive:Bitset.t -> rng:Dsutil.Rng.t -> level:int -> int;
}

module type S = sig
  type t

  val name : t -> string
  val universe_size : t -> int

  val read_quorum :
    t -> alive:Bitset.t -> rng:Dsutil.Rng.t -> Bitset.t option

  val write_quorum :
    t -> alive:Bitset.t -> rng:Dsutil.Rng.t -> Bitset.t option

  val read_levels : t -> level_plan option

  val enumerate_read_quorums : t -> Bitset.t Seq.t
  val enumerate_write_quorums : t -> Bitset.t Seq.t

  val fork : t -> t
end

type t = Dyn : (module S with type t = 'a) * 'a -> t

let pack (type a) (m : (module S with type t = a)) (p : a) = Dyn (m, p)

let name (Dyn ((module P), p)) = P.name p
let universe_size (Dyn ((module P), p)) = P.universe_size p
let read_quorum (Dyn ((module P), p)) ~alive ~rng = P.read_quorum p ~alive ~rng
let write_quorum (Dyn ((module P), p)) ~alive ~rng = P.write_quorum p ~alive ~rng

let read_levels (Dyn ((module P), p)) = P.read_levels p

let fork (Dyn ((module P), p)) = Dyn ((module P), P.fork p)

let read_quorum_set (Dyn ((module P), p)) =
  Quorum_set.create ~universe:(P.universe_size p)
    (List.of_seq (P.enumerate_read_quorums p))

let write_quorum_set (Dyn ((module P), p)) =
  Quorum_set.create ~universe:(P.universe_size p)
    (List.of_seq (P.enumerate_write_quorums p))

let all_alive t =
  let n = universe_size t in
  let s = Bitset.create n in
  for i = 0 to n - 1 do
    Bitset.add s i
  done;
  s
