module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type t = { votes : int array; r : int; w : int; total : int }

let create ~votes ~r ~w =
  if Array.length votes = 0 then invalid_arg "Weighted_voting.create: no replicas";
  if Array.exists (fun v -> v < 0) votes then
    invalid_arg "Weighted_voting.create: negative votes";
  let total = Array.fold_left ( + ) 0 votes in
  if total = 0 then invalid_arg "Weighted_voting.create: zero total votes";
  if r < 1 || w < 1 then invalid_arg "Weighted_voting.create: thresholds must be positive";
  if r + w <= total then
    invalid_arg "Weighted_voting.create: need r + w > total votes";
  if 2 * w <= total then
    invalid_arg "Weighted_voting.create: need 2w > total votes";
  { votes; r; w; total }

let uniform ~n ~r ~w = create ~votes:(Array.make n 1) ~r ~w

let majority ~n =
  let q = (n / 2) + 1 in
  uniform ~n ~r:q ~w:q

let rowa ~n = uniform ~n ~r:1 ~w:n

let name _ = "WeightedVoting"
let universe_size t = Array.length t.votes
let total_votes t = t.total
let read_threshold t = t.r
let write_threshold t = t.w

(* Assemble a quorum reaching [threshold] votes from alive replicas,
   preferring a random order so load spreads; greedy by arrival order is
   complete because votes are non-negative. *)
let gather t ~alive ~rng threshold =
  let n = universe_size t in
  let order = Array.init n Fun.id in
  Rng.shuffle rng order;
  let q = Bitset.create n in
  let got = ref 0 in
  Array.iter
    (fun i ->
      if !got < threshold && Bitset.mem alive i && t.votes.(i) > 0 then begin
        Bitset.add q i;
        got := !got + t.votes.(i)
      end)
    order;
  if !got >= threshold then Some q else None

let read_quorum t ~alive ~rng = gather t ~alive ~rng t.r
let write_quorum t ~alive ~rng = gather t ~alive ~rng t.w

(* Enumerate minimal vote-gathering sets: all subsets whose votes reach the
   threshold and stay below it when any member is removed. *)
let enumerate t threshold =
  let n = universe_size t in
  if n > 20 then invalid_arg "Weighted_voting: enumeration only for small systems";
  let subsets = Seq.init (1 lsl n) Fun.id in
  Seq.filter_map
    (fun mask ->
      let votes = ref 0 in
      let minimal = ref true in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then votes := !votes + t.votes.(i)
      done;
      if !votes < threshold then None
      else begin
        for i = 0 to n - 1 do
          if mask land (1 lsl i) <> 0 && !votes - t.votes.(i) >= threshold then
            minimal := false
        done;
        if not !minimal then None
        else begin
          let q = Bitset.create n in
          for i = 0 to n - 1 do
            if mask land (1 lsl i) <> 0 then Bitset.add q i
          done;
          Some q
        end
      end)
    subsets

let enumerate_read_quorums t = enumerate t t.r
let enumerate_write_quorums t = enumerate t t.w

let min_quorum_size t threshold =
  let votes = Array.copy t.votes in
  Array.sort (fun a b -> compare b a) votes;
  let rec go i acc =
    if acc >= threshold then i
    else if i >= Array.length votes then i
    else go (i + 1) (acc + votes.(i))
  in
  go 0 0

let min_read_quorum_size t = min_quorum_size t t.r
let min_write_quorum_size t = min_quorum_size t t.w

let read_levels _ = None
let fork t = t

let protocol t =
  Protocol.pack
    (module struct
      type nonrec t = t

      let name = name
      let universe_size = universe_size
      let read_quorum = read_quorum
      let write_quorum = write_quorum
      let enumerate_read_quorums = enumerate_read_quorums
      let enumerate_write_quorums = enumerate_write_quorums
      let read_levels _ = None
      let fork t = t
    end)
    t
