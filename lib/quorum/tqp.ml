module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type t = { d : int; height : int; fanout : int; n : int }

let pow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let create ~d ~height =
  if d < 1 then invalid_arg "Tqp.create: d must be at least 1";
  if height < 0 then invalid_arg "Tqp.create: negative height";
  let fanout = (2 * d) + 1 in
  let n = (pow fanout (height + 1) - 1) / (fanout - 1) in
  { d; height; fanout; n }

let name _ = "TreeQuorumVLDB90"
let universe_size t = t.n
let height t = t.height
let fanout t = t.fanout
let n t = t.n

let child t v i = (v * t.fanout) + 1 + i
let is_leaf t v = child t v 0 >= t.n

(* Pick subquorums from d+1 children; children tried in random order, and
   assembly is complete: succeeds iff at least d+1 children subtrees can
   produce subquorums. *)
let majority_of_children t ~rng collect v =
  let order = Array.init t.fanout Fun.id in
  Rng.shuffle rng order;
  let needed = t.d + 1 in
  let rec go i acc got =
    if got = needed then Some acc
    else if i = t.fanout then None
    else begin
      match collect (child t v order.(i)) with
      | Some q -> go (i + 1) (Bitset.union acc q) (got + 1)
      | None -> go (i + 1) acc got
    end
  in
  go 0 (Bitset.create t.n) 0

let rec read_collect t ~alive ~rng v =
  if Bitset.mem alive v then Some (Bitset.of_list t.n [ v ])
  else if is_leaf t v then None
  else majority_of_children t ~rng (read_collect t ~alive ~rng) v

let rec write_collect t ~alive ~rng v =
  if not (Bitset.mem alive v) then None
  else if is_leaf t v then Some (Bitset.of_list t.n [ v ])
  else begin
    match majority_of_children t ~rng (write_collect t ~alive ~rng) v with
    | None -> None
    | Some q ->
      Bitset.add q v;
      Some q
  end

let read_quorum t ~alive ~rng = read_collect t ~alive ~rng 0
let write_quorum t ~alive ~rng = write_collect t ~alive ~rng 0

(* Choose d+1 children out of 2d+1 and combine their quorum families. *)
let rec combinations k = function
  | _ when k = 0 -> Seq.return []
  | [] -> Seq.empty
  | x :: rest ->
    Seq.append
      (Seq.map (fun tail -> x :: tail) (combinations (k - 1) rest))
      (combinations k rest)

(* Cartesian combination of the chosen children's quorum families. *)
let product_of_families ~n families =
  List.fold_left
    (fun acc family ->
      Seq.concat_map
        (fun combined -> Seq.map (fun q -> Bitset.union combined q) family)
        acc)
    (Seq.return (Bitset.create n))
    families

let rec enum_read t v =
  let self = Seq.return (Bitset.of_list t.n [ v ]) in
  if is_leaf t v then self
  else begin
    let children = List.init t.fanout (fun i -> child t v i) in
    let replacements =
      Seq.concat_map
        (fun chosen ->
          product_of_families ~n:t.n (List.map (fun c -> enum_read t c) chosen))
        (combinations (t.d + 1) children)
    in
    Seq.append self replacements
  end

let rec enum_write t v =
  if is_leaf t v then Seq.return (Bitset.of_list t.n [ v ])
  else begin
    let children = List.init t.fanout (fun i -> child t v i) in
    Seq.concat_map
      (fun chosen ->
        Seq.map
          (fun q ->
            let q = Bitset.copy q in
            Bitset.add q v;
            q)
          (product_of_families ~n:t.n (List.map (fun c -> enum_write t c) chosen)))
      (combinations (t.d + 1) children)
  end

let enumerate_read_quorums t = enum_read t 0
let enumerate_write_quorums t = enum_write t 0

let min_read_cost _ = 1
let max_read_cost t = pow (t.d + 1) t.height
let write_cost t = (pow (t.d + 1) (t.height + 1) - 1) / t.d

(* P(at least d+1 successes among 2d+1 independent trials of prob q). *)
let majority_prob t q =
  let m = t.fanout in
  let rec choose n k =
    if k = 0 || k = n then 1.0
    else choose (n - 1) (k - 1) *. float_of_int n /. float_of_int k
  in
  let acc = ref 0.0 in
  for k = t.d + 1 to m do
    acc :=
      !acc
      +. choose m k *. (q ** float_of_int k)
         *. ((1.0 -. q) ** float_of_int (m - k))
  done;
  !acc

let read_availability t ~p =
  let rec go l =
    if l = 0 then p else p +. ((1.0 -. p) *. majority_prob t (go (l - 1)))
  in
  go t.height

let write_availability t ~p =
  let rec go l = if l = 0 then p else p *. majority_prob t (go (l - 1)) in
  go t.height

let write_load _ = 1.0

let read_levels _ = None
let fork t = t

let protocol t =
  Protocol.pack
    (module struct
      type nonrec t = t

      let name = name
      let universe_size = universe_size
      let read_quorum = read_quorum
      let write_quorum = write_quorum
      let enumerate_read_quorums = enumerate_read_quorums
      let enumerate_write_quorums = enumerate_write_quorums
      let read_levels _ = None
      let fork t = t
    end)
    t
