module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type t = { k : int }

let create ~k =
  if k < 1 then invalid_arg "Maekawa.create: k must be positive";
  { k }

let of_n ~n =
  if n < 1 then invalid_arg "Maekawa.of_n: need at least one replica";
  create ~k:(max 1 (int_of_float (sqrt (float_of_int n))))

let name _ = "Maekawa"
let universe_size t = t.k * t.k

let quorum_of_site t i =
  let r = i / t.k and c = i mod t.k in
  let q = Bitset.create (universe_size t) in
  for j = 0 to t.k - 1 do
    Bitset.add q ((r * t.k) + j);
    Bitset.add q ((j * t.k) + c)
  done;
  q

let pick_quorum t ~alive ~rng =
  let n = universe_size t in
  let candidates = ref [] in
  for i = n - 1 downto 0 do
    if Bitset.subset (quorum_of_site t i) alive then candidates := i :: !candidates
  done;
  match !candidates with
  | [] -> None
  | l -> Some (quorum_of_site t (Rng.pick rng (Array.of_list l)))

let read_quorum t ~alive ~rng = pick_quorum t ~alive ~rng
let write_quorum t ~alive ~rng = pick_quorum t ~alive ~rng

let enumerate_quorums t =
  Seq.init (universe_size t) (fun i -> quorum_of_site t i)

let enumerate_read_quorums = enumerate_quorums
let enumerate_write_quorums = enumerate_quorums

let quorum_size t = (2 * t.k) - 1

let load t =
  float_of_int (quorum_size t) /. float_of_int (universe_size t)

let read_levels _ = None
let fork t = t

let protocol t =
  Protocol.pack
    (module struct
      type nonrec t = t

      let name = name
      let universe_size = universe_size
      let read_quorum = read_quorum
      let write_quorum = write_quorum
      let enumerate_read_quorums = enumerate_read_quorums
      let enumerate_write_quorums = enumerate_write_quorums
      let read_levels _ = None
      let fork t = t
    end)
    t
