module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type t = { depth : int; s : int; r : int; w : int; n : int }

let pow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let n_of_depth l = pow 3 l

let create_general ~depth ~s ~r ~w =
  if depth < 0 then invalid_arg "Hqc.create: negative depth";
  if s < 1 then invalid_arg "Hqc.create: branching must be positive";
  if r < 1 || r > s || w < 1 || w > s then
    invalid_arg "Hqc.create: thresholds out of [1, s]";
  if r + w <= s then invalid_arg "Hqc.create: need r + w > s";
  if 2 * w <= s then invalid_arg "Hqc.create: need 2w > s";
  { depth; s; r; w; n = pow s depth }

let create ~depth = create_general ~depth ~s:3 ~r:2 ~w:2

let of_n ~n =
  if n < 1 then invalid_arg "Hqc.of_n: need at least one replica";
  let rec fit l = if n_of_depth (l + 1) > n then l else fit (l + 1) in
  create ~depth:(fit 0)

let name _ = "HQC"
let universe_size t = t.n
let universe t = t.n
let depth t = t.depth
let branching t = t.s

(* The subtree at [lo] of size [len] (a power of s) covers the leaves
   lo .. lo+len-1.  A quorum needs subquorums from [threshold] of its s
   children. *)
let rec collect t ~alive ~rng ~threshold lo len =
  if len = 1 then
    if Bitset.mem alive lo then Some (Bitset.of_list t.n [ lo ]) else None
  else begin
    let child = len / t.s in
    let order = Array.init t.s Fun.id in
    Rng.shuffle rng order;
    let sub i = collect t ~alive ~rng ~threshold (lo + (order.(i) * child)) child in
    let rec gather i acc got =
      if got = threshold then Some acc
      else if i = t.s then None
      else begin
        match sub i with
        | Some q -> gather (i + 1) (Bitset.union acc q) (got + 1)
        | None -> gather (i + 1) acc got
      end
    in
    gather 0 (Bitset.create t.n) 0
  end

let read_quorum t ~alive ~rng = collect t ~alive ~rng ~threshold:t.r 0 t.n
let write_quorum t ~alive ~rng = collect t ~alive ~rng ~threshold:t.w 0 t.n

(* All ways of choosing [threshold] of the s children and combining their
   quorum families. *)
let rec combinations k = function
  | _ when k = 0 -> Seq.return []
  | [] -> Seq.empty
  | x :: rest ->
    Seq.append
      (Seq.map (fun tail -> x :: tail) (combinations (k - 1) rest))
      (combinations k rest)

let rec enum t ~threshold lo len =
  if len = 1 then Seq.return (Bitset.of_list t.n [ lo ])
  else begin
    let child = len / t.s in
    let children = List.init t.s (fun i -> lo + (i * child)) in
    Seq.concat_map
      (fun chosen ->
        List.fold_left
          (fun acc c ->
            Seq.concat_map
              (fun combined ->
                Seq.map (fun q -> Bitset.union combined q)
                  (enum t ~threshold c child))
              acc)
          (Seq.return (Bitset.create t.n))
          chosen)
      (combinations threshold children)
  end

let enumerate_read_quorums t = enum t ~threshold:t.r 0 t.n
let enumerate_write_quorums t = enum t ~threshold:t.w 0 t.n

let read_quorum_size t = pow t.r t.depth
let write_quorum_size t = pow t.w t.depth
let quorum_size = read_quorum_size
let cost t = float_of_int (quorum_size t)

let load_of threshold t =
  (float_of_int threshold /. float_of_int t.s) ** float_of_int t.depth

let read_load t = load_of t.r t
let write_load t = load_of t.w t
let optimal_load = read_load

(* P[Binomial(s, q) >= threshold]. *)
let binomial_tail t ~threshold q =
  let rec choose n k =
    if k = 0 || k = n then 1.0
    else choose (n - 1) (k - 1) *. float_of_int n /. float_of_int k
  in
  let acc = ref 0.0 in
  for k = threshold to t.s do
    acc :=
      !acc
      +. choose t.s k *. (q ** float_of_int k)
         *. ((1.0 -. q) ** float_of_int (t.s - k))
  done;
  !acc

let availability_of threshold t ~p =
  let rec go l =
    if l = 0 then p else binomial_tail t ~threshold (go (l - 1))
  in
  go t.depth

let read_availability t ~p = availability_of t.r t ~p
let write_availability t ~p = availability_of t.w t ~p
let availability = read_availability

let read_levels _ = None
let fork t = t

let protocol t =
  Protocol.pack
    (module struct
      type nonrec t = t

      let name = name
      let universe_size = universe_size
      let read_quorum = read_quorum
      let write_quorum = write_quorum
      let enumerate_read_quorums = enumerate_read_quorums
      let enumerate_write_quorums = enumerate_write_quorums
      let read_levels _ = None
      let fork t = t
    end)
    t
