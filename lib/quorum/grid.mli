(** The Grid protocol (Cheung–Ammar–Ahamad).

    Replicas are arranged in a [rows × cols] rectangle.  A read quorum holds
    one replica from every column; a write quorum holds one full column plus
    one replica from every other column.  With a square grid both costs are
    O(√n) and the optimal load is O(1/√n). *)

type t

val create : rows:int -> cols:int -> t
val square : n:int -> t
(** Largest square grid with at most [n] sites; raises if [n < 1]. *)

val protocol : t -> Protocol.t
val rows : t -> int
val cols : t -> int
val site : t -> row:int -> col:int -> int
val read_cost : t -> int
val write_cost : t -> int
val read_load : t -> float
val write_load : t -> float

include Protocol.S with type t := t
