module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type t = { height : int; n : int }

let n_of_height h = (1 lsl (h + 1)) - 1

let create ~height =
  if height < 0 then invalid_arg "Tree_quorum.create: negative height";
  { height; n = n_of_height height }

let of_n ~n =
  if n < 1 then invalid_arg "Tree_quorum.of_n: need at least one replica";
  let rec fit h = if n_of_height (h + 1) > n then h else fit (h + 1) in
  create ~height:(fit 0)

let name _ = "TreeQuorum"
let universe_size t = t.n
let height t = t.height

(* Heap layout: root 0, children of v are 2v+1 and 2v+2. *)
let left v = (2 * v) + 1
let right v = (2 * v) + 2
let is_leaf t v = left v >= t.n

(* Height of the subtree rooted at node [v]. *)
let subtree_height t v =
  let rec go v acc = if is_leaf t v then acc else go (left v) (acc + 1) in
  go v 0

(* Quorum assembly with the failure-replacement rule.  An alive internal
   node is used as "root + one child path" only with probability
   f = 2/(2 + l) (l = subtree height); otherwise the quorums of both
   children are taken as if the node were inaccessible.  This is the
   Naor–Wool strategy that achieves the optimal load 2/(h+2) — always
   routing through the root would put a load of 1 on it.  Either way the
   other shape is tried as a fallback, so assembly succeeds whenever any
   quorum survives. *)
let rec collect t ~alive ~rng v =
  let through_root () =
    if not (Bitset.mem alive v) then None
    else begin
      let first, second =
        if Rng.bool rng then (left v, right v) else (right v, left v)
      in
      let through child =
        match collect t ~alive ~rng child with
        | None -> None
        | Some q ->
          Bitset.add q v;
          Some q
      in
      match through first with Some q -> Some q | None -> through second
    end
  in
  let both_children () =
    match collect t ~alive ~rng (left v) with
    | None -> None
    | Some ql -> (
      match collect t ~alive ~rng (right v) with
      | None -> None
      | Some qr -> Some (Bitset.union ql qr))
  in
  if is_leaf t v then
    if Bitset.mem alive v then Some (Bitset.of_list t.n [ v ]) else None
  else if not (Bitset.mem alive v) then both_children ()
  else begin
    let f = 2.0 /. (2.0 +. float_of_int (subtree_height t v)) in
    if Rng.bernoulli rng f then begin
      match through_root () with Some q -> Some q | None -> both_children ()
    end
    else begin
      match both_children () with Some q -> Some q | None -> through_root ()
    end
  end

let pick_quorum t ~alive ~rng = collect t ~alive ~rng 0

let read_quorum t ~alive ~rng = pick_quorum t ~alive ~rng
let write_quorum t ~alive ~rng = pick_quorum t ~alive ~rng

(* Exhaustive enumeration, for small trees only. *)
let rec enum t v =
  if is_leaf t v then Seq.return (Bitset.of_list t.n [ v ])
  else begin
    let with_root child =
      Seq.map
        (fun q ->
          let q = Bitset.copy q in
          Bitset.add q v;
          q)
        (enum t child)
    in
    let without_root =
      Seq.concat_map
        (fun ql -> Seq.map (fun qr -> Bitset.union ql qr) (enum t (right v)))
        (enum t (left v))
    in
    Seq.append (with_root (left v)) (Seq.append (with_root (right v)) without_root)
  end

let enumerate_read_quorums t = enum t 0
let enumerate_write_quorums t = enum t 0

let min_cost t = t.height + 1
let max_cost t = (t.n + 1) / 2

let paper_cost t =
  let h = float_of_int t.height in
  if t.height = 0 then 1.0
  else
    ((2.0 ** h) *. ((1.0 +. h) ** h) /. (h *. ((2.0 +. h) ** (h -. 1.0))))
    -. (2.0 /. h)

let optimal_load t = 2.0 /. float_of_int (t.height + 2)

let expected_cost t =
  (* Exact expected quorum size of the load-optimal strategy in the
     failure-free case: C(0) = 1 and
     C(l) = f·(1 + C(l−1)) + (1−f)·2·C(l−1) with f = 2/(2+l). *)
  let rec go l =
    if l = 0 then 1.0
    else begin
      let c = go (l - 1) in
      let f = 2.0 /. (2.0 +. float_of_int l) in
      (f *. (1.0 +. c)) +. ((1.0 -. f) *. 2.0 *. c)
    end
  in
  go t.height

let availability t ~p =
  let rec go h = if h = 0 then p else begin
    let r = go (h - 1) in
    (p *. (1.0 -. ((1.0 -. r) ** 2.0))) +. ((1.0 -. p) *. r *. r)
  end in
  go t.height

let quorum_count t =
  let rec go h = if h = 0 then 1 else begin
    let m = go (h - 1) in
    (2 * m) + (m * m)
  end in
  go t.height

let read_levels _ = None
let fork t = t

let protocol t =
  Protocol.pack
    (module struct
      type nonrec t = t

      let name = name
      let universe_size = universe_size
      let read_quorum = read_quorum
      let write_quorum = write_quorum
      let enumerate_read_quorums = enumerate_read_quorums
      let enumerate_write_quorums = enumerate_write_quorums
      let read_levels _ = None
      let fork t = t
    end)
    t
