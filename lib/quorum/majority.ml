module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type t = { n : int; q : int }

let create ~n =
  if n < 1 then invalid_arg "Majority.create: need at least one replica";
  { n; q = (n / 2) + 1 }

let name _ = "Majority"
let universe_size t = t.n
let quorum_size t = t.q

let pick_quorum t ~alive ~rng =
  let up = Array.of_list (Bitset.elements alive) in
  if Array.length up < t.q then None
  else begin
    Rng.shuffle rng up;
    let q = Bitset.create t.n in
    for i = 0 to t.q - 1 do
      Bitset.add q up.(i)
    done;
    Some q
  end

let read_quorum t ~alive ~rng = pick_quorum t ~alive ~rng
let write_quorum t ~alive ~rng = pick_quorum t ~alive ~rng

(* All subsets of size q, in lexicographic order. *)
let enumerate_subsets n k =
  let next comb =
    (* [comb] is a sorted int array of length k; advance to the successor. *)
    let comb = Array.copy comb in
    let rec bump i =
      if i < 0 then None
      else if comb.(i) < n - k + i then begin
        comb.(i) <- comb.(i) + 1;
        for j = i + 1 to k - 1 do
          comb.(j) <- comb.(j - 1) + 1
        done;
        Some comb
      end
      else bump (i - 1)
    in
    bump (k - 1)
  in
  let first = Array.init k (fun i -> i) in
  let rec seq comb () =
    match comb with
    | None -> Seq.Nil
    | Some c -> Seq.Cons (c, seq (next c))
  in
  seq (if k <= n then Some first else None)

let enumerate_quorums t =
  Seq.map
    (fun comb -> Bitset.of_list t.n (Array.to_list comb))
    (enumerate_subsets t.n t.q)

let enumerate_read_quorums = enumerate_quorums
let enumerate_write_quorums = enumerate_quorums

let read_cost t = t.q
let write_cost t = t.q
let load t = float_of_int t.q /. float_of_int t.n

let availability t ~p =
  (* P[Binomial(n,p) >= q] *)
  let n = t.n in
  let rec choose n k =
    if k = 0 || k = n then 1.0
    else choose (n - 1) (k - 1) *. float_of_int n /. float_of_int k
  in
  let acc = ref 0.0 in
  for k = t.q to n do
    acc :=
      !acc
      +. choose n k
         *. (p ** float_of_int k)
         *. ((1.0 -. p) ** float_of_int (n - k))
  done;
  !acc

let read_levels _ = None
let fork t = t

let protocol t =
  Protocol.pack
    (module struct
      type nonrec t = t

      let name = name
      let universe_size = universe_size
      let read_quorum = read_quorum
      let write_quorum = write_quorum
      let enumerate_read_quorums = enumerate_read_quorums
      let enumerate_write_quorums = enumerate_write_quorums
      let read_levels _ = None
      let fork t = t
    end)
    t
