module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type t = { n : int }

let create ~n =
  if n < 1 then invalid_arg "Rowa.create: need at least one replica";
  { n }

let name _ = "ROWA"
let universe_size t = t.n

let read_quorum t ~alive ~rng =
  let up = Bitset.elements alive in
  match up with
  | [] -> None
  | _ ->
    let arr = Array.of_list up in
    let q = Bitset.create t.n in
    Bitset.add q (Rng.pick rng arr);
    Some q

let write_quorum t ~alive ~rng:_ =
  if Bitset.cardinal alive = t.n then Some (Bitset.copy alive) else None

let enumerate_read_quorums t =
  Seq.init t.n (fun i -> Bitset.of_list t.n [ i ])

let enumerate_write_quorums t =
  let all = Bitset.create t.n in
  for i = 0 to t.n - 1 do
    Bitset.add all i
  done;
  Seq.return all

let read_cost _ = 1
let write_cost t = t.n
let read_load t = 1.0 /. float_of_int t.n
let write_load _ = 1.0
let read_availability t ~p = 1.0 -. ((1.0 -. p) ** float_of_int t.n)
let write_availability t ~p = p ** float_of_int t.n

let read_levels _ = None
let fork t = t

let protocol t = Protocol.Dyn ((module struct
  type nonrec t = t

  let name = name
  let universe_size = universe_size
  let read_quorum = read_quorum
  let write_quorum = write_quorum
  let read_levels _ = None
  let enumerate_read_quorums = enumerate_read_quorums
  let enumerate_write_quorums = enumerate_write_quorums
  let fork t = t
end), t)
