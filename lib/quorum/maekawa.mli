(** Maekawa's √n protocol (grid-based finite-projective-plane
    approximation).

    Replicas form a k×k grid; the quorum of replica (r,c) is its full row
    union its full column (size 2k−1).  Quorums pairwise intersect, read and
    write quorums coincide, cost and load are Θ(√n). *)

type t

val create : k:int -> t
(** A k×k grid of n = k² replicas. *)

val of_n : n:int -> t
(** Largest k with k² ≤ n. *)

val protocol : t -> Protocol.t
val quorum_size : t -> int
val load : t -> float
(** Optimal load (2k−1)/k² ≈ 2/√n under the uniform strategy. *)

include Protocol.S with type t := t
