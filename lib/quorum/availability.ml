module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

let random_alive rng ~n ~p =
  let s = Bitset.create n in
  for i = 0 to n - 1 do
    if Rng.bernoulli rng p then Bitset.add s i
  done;
  s

let random_alive_hetero rng ~n ~p =
  let s = Bitset.create n in
  for i = 0 to n - 1 do
    if Rng.bernoulli rng (p i) then Bitset.add s i
  done;
  s

let exact_hetero ~n ~p pred =
  if n > 22 then invalid_arg "Availability.exact_hetero: n too large";
  let total = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let alive = Bitset.create n in
    let prob = ref 1.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        Bitset.add alive i;
        prob := !prob *. p i
      end
      else prob := !prob *. (1.0 -. p i)
    done;
    if pred ~alive then total := !total +. !prob
  done;
  !total

let monte_carlo_hits ~trials ~rng ~n ~p pred =
  if trials <= 0 then invalid_arg "Availability.monte_carlo_hits: trials";
  let hits = ref 0 in
  for _ = 1 to trials do
    if pred ~alive:(random_alive rng ~n ~p) then incr hits
  done;
  !hits

let monte_carlo ~trials ~rng ~n ~p pred =
  float_of_int (monte_carlo_hits ~trials ~rng ~n ~p pred)
  /. float_of_int trials

let exact ~n ~p pred =
  if n > 22 then invalid_arg "Availability.exact: n too large";
  let total = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let alive = Bitset.create n in
    let prob = ref 1.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        Bitset.add alive i;
        prob := !prob *. p
      end
      else prob := !prob *. (1.0 -. p)
    done;
    if pred ~alive then total := !total +. !prob
  done;
  !total

let read_availability_mc ~trials ~rng ~p proto =
  let n = Protocol.universe_size proto in
  monte_carlo ~trials ~rng ~n ~p (fun ~alive ->
      Protocol.read_quorum proto ~alive ~rng <> None)

let write_availability_mc ~trials ~rng ~p proto =
  let n = Protocol.universe_size proto in
  monte_carlo ~trials ~rng ~n ~p (fun ~alive ->
      Protocol.write_quorum proto ~alive ~rng <> None)

let read_availability_hits ~trials ~rng ~p proto =
  let n = Protocol.universe_size proto in
  monte_carlo_hits ~trials ~rng ~n ~p (fun ~alive ->
      Protocol.read_quorum proto ~alive ~rng <> None)

let write_availability_hits ~trials ~rng ~p proto =
  let n = Protocol.universe_size proto in
  monte_carlo_hits ~trials ~rng ~n ~p (fun ~alive ->
      Protocol.write_quorum proto ~alive ~rng <> None)
