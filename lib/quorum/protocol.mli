(** The common interface every replica control protocol implements.

    A protocol, given the set of currently reachable ("alive") replicas,
    either assembles a read/write quorum from alive replicas or reports that
    none exists.  Implementations must be {e complete}: they return [Some]
    whenever any quorum is contained in the alive set, so that availability
    can be measured by sampling alive patterns. *)

type level_plan = {
  n_levels : int;
  level_site : alive:Dsutil.Bitset.t -> rng:Dsutil.Rng.t -> level:int -> int;
}
(** Per-level read-quorum assembly, for protocols whose read quorums are
    built one member per structural level (the tree protocol's §3.2
    physical levels).  [level_site ~alive ~rng ~level] returns the member
    chosen for [level], or -1 when that level has no alive candidate;
    walking levels in ascending order and stopping at the first -1 must
    consume the RNG exactly as one [read_quorum] call would, so a
    level-pipelined read sees the same quorum a level-barrier read
    would.  Coordinators use this to issue level k+1's request as soon as
    level k's member resolves instead of materializing the whole quorum
    first. *)

module type S = sig
  type t

  val name : t -> string

  val universe_size : t -> int
  (** Number of replicas [n]. *)

  val read_quorum :
    t -> alive:Dsutil.Bitset.t -> rng:Dsutil.Rng.t -> Dsutil.Bitset.t option
  (** A read quorum drawn according to the protocol's strategy, restricted
      to alive replicas; [None] if no read quorum survives. *)

  val write_quorum :
    t -> alive:Dsutil.Bitset.t -> rng:Dsutil.Rng.t -> Dsutil.Bitset.t option

  val read_levels : t -> level_plan option
  (** The per-level assembly hook, for protocols that support it; [None]
      (the common case) makes level-pipelined reads fall back to whole-
      quorum assembly. *)

  val enumerate_read_quorums : t -> Dsutil.Bitset.t Seq.t
  (** All (minimal) read quorums.  Only call on small instances: the count
      can be exponential. *)

  val enumerate_write_quorums : t -> Dsutil.Bitset.t Seq.t

  val fork : t -> t
  (** A functionally identical instance that shares no mutable state with
      the original.  Protocol instances may carry internal caches and
      scratch buffers for the quorum-assembly hot path (e.g. the arbitrary
      protocol's precomputed quorum plans); those make an instance unsafe
      to share across domains.  Stateless protocols return [t] itself.
      [fork] must not consume randomness and must not change the quorum
      distribution. *)
end

type t = Dyn : (module S with type t = 'a) * 'a -> t
(** A protocol instance packaged with its operations, so heterogeneous
    protocols can be compared by the evaluation harness. *)

val pack : (module S with type t = 'a) -> 'a -> t

val name : t -> string
val universe_size : t -> int

val read_quorum :
  t -> alive:Dsutil.Bitset.t -> rng:Dsutil.Rng.t -> Dsutil.Bitset.t option

val write_quorum :
  t -> alive:Dsutil.Bitset.t -> rng:Dsutil.Rng.t -> Dsutil.Bitset.t option

val read_levels : t -> level_plan option
(** See {!S.read_levels}. *)

val fork : t -> t
(** A private copy for use in another domain; see {!S.fork}.  The parallel
    evaluation driver forks the protocol once per work item so concurrent
    simulation cells never share quorum-plan scratch state. *)

val read_quorum_set : t -> Quorum_set.t
(** Materializes [enumerate_read_quorums] into an explicit system. *)

val write_quorum_set : t -> Quorum_set.t

val all_alive : t -> Dsutil.Bitset.t
(** Convenience: the full universe as an alive view. *)
