(** Strategies over explicit quorum systems and their induced loads
    (Definitions 2.4 and 2.5 of the paper, after Naor–Wool). *)

type t = private float array
(** [t.(j)] is the probability of picking quorum [j].  Indices follow the
    quorum order of the associated {!Quorum_set.t}. *)

val uniform : Quorum_set.t -> t
val of_weights : float array -> t
(** Normalizes; raises [Invalid_argument] on a non-positive total or any
    negative weight. *)

val is_distribution : t -> bool

val induced_site_loads : Quorum_set.t -> t -> float array
(** [l_w(i)] for every site [i]: the sum of the probabilities of the quorums
    containing [i]. *)

val system_load : Quorum_set.t -> t -> float
(** [max_i l_w(i)] — the load induced by the strategy (Definition 2.5). *)

val expected_quorum_size : Quorum_set.t -> t -> float
(** Average communication cost under the strategy. *)
