(** Availability estimation for quorum systems.

    The availability of an operation at per-replica up-probability [p] is
    the probability that at least one quorum consists entirely of up
    replicas (Peleg–Wool).  Small systems are computed exactly by
    enumerating all up/down patterns; larger systems by Monte-Carlo. *)

val random_alive : Dsutil.Rng.t -> n:int -> p:float -> Dsutil.Bitset.t
(** Each of the [n] sites is up independently with probability [p]. *)

val random_alive_hetero :
  Dsutil.Rng.t -> n:int -> p:(int -> float) -> Dsutil.Bitset.t
(** Heterogeneous variant: site [i] is up with probability [p i]. *)

val exact_hetero :
  n:int -> p:(int -> float) -> (alive:Dsutil.Bitset.t -> bool) -> float
(** Exact availability with per-site probabilities (n ≤ 22). *)

val monte_carlo :
  trials:int ->
  rng:Dsutil.Rng.t ->
  n:int ->
  p:float ->
  (alive:Dsutil.Bitset.t -> bool) ->
  float
(** Fraction of sampled alive patterns in which the predicate holds. *)

val monte_carlo_hits :
  trials:int ->
  rng:Dsutil.Rng.t ->
  n:int ->
  p:float ->
  (alive:Dsutil.Bitset.t -> bool) ->
  int
(** Number of sampled alive patterns in which the predicate holds —
    the integer counterpart of {!monte_carlo}, so trial batches can be
    split into independently seeded chunks and their hit counts summed
    without floating-point accumulation order mattering. *)

val exact :
  n:int -> p:float -> (alive:Dsutil.Bitset.t -> bool) -> float
(** Sum of pattern probabilities over all 2^n patterns satisfying the
    predicate.  Raises [Invalid_argument] when [n > 22]. *)

val read_availability_mc :
  trials:int -> rng:Dsutil.Rng.t -> p:float -> Protocol.t -> float
(** Monte-Carlo read availability of a protocol instance, using the
    protocol's own quorum-assembly routine as the existence oracle. *)

val write_availability_mc :
  trials:int -> rng:Dsutil.Rng.t -> p:float -> Protocol.t -> float

val read_availability_hits :
  trials:int -> rng:Dsutil.Rng.t -> p:float -> Protocol.t -> int
(** Hit-count variants of the two estimators above, for chunked
    (possibly parallel) trial batches. *)

val write_availability_hits :
  trials:int -> rng:Dsutil.Rng.t -> p:float -> Protocol.t -> int
