(** Position→site relabeling: membership changes without touching the
    tree.

    The tree protocol's quorums are defined over {e positions} in a fixed
    structure (§3: the logical tree does not change shape online).  To
    promote a freshly provisioned spare into the structure, or to retire
    an occupant, the {e assignment} of physical sites to tree positions
    must change while the tree itself — and therefore every quorum
    intersection argument — stays put.

    A relabel wrapper holds an inner protocol over positions
    [0 .. n-1] and a mutable map from positions to site ids drawn from a
    {e larger} universe [0 .. universe-1] (the extra ids are spares:
    sites that exist on the network but hold no position and belong to no
    quorum).  Quorums are assembled by the inner protocol in position
    space and translated through the map; {!remap} switches one
    position's occupant in a single atomic store.

    {b Sharing.}  {!Protocol.fork} of a packed wrapper forks the inner
    protocol and scratch state but {e shares the position map} — a
    deliberate deviation from the fork contract, documented at the fork
    implementation: a promotion's remap must be visible to every
    coordinator's fork at once, or two coordinators could assemble
    quorums under different memberships that no longer intersect. *)

type t

val make : universe:int -> Protocol.t -> t
(** [make ~universe inner] wraps [inner] (over positions
    [0 .. universe_size inner - 1]) with the identity assignment;
    site ids [universe_size inner .. universe - 1] start as spares.
    @raise Invalid_argument if [universe] is smaller than the inner
    universe. *)

val pack : t -> Protocol.t
(** The wrapper as a {!Protocol.t} ([universe_size] = the full site
    universe, spares included).  The handle and the packed protocol share
    the map: {!remap} on the handle is visible through the packed
    protocol and all its forks. *)

val positions : t -> int
(** Number of tree positions (the inner universe size). *)

val site_of : t -> position:int -> int
(** Current occupant of [position]. *)

val position_of : t -> site:int -> int option
(** The position [site] currently holds; [None] for spares. *)

val remap : t -> position:int -> site:int -> unit
(** Atomically installs [site] as the occupant of [position].  The
    displaced occupant becomes a spare.  Must only be called when [site]
    holds the displaced occupant's acked state (the promotion flow in
    [Reconfig] provisions and drains before remapping).
    @raise Invalid_argument when the position or site is out of range, or
    [site] already holds a different position. *)
