(** Hierarchical Quorum Consensus (Kumar) — the paper's "HQC"
    configuration.

    The n = s^L replicas are the {e leaves} of a complete s-ary tree of
    depth [L] (internal nodes are logical).  A read quorum recursively
    takes subquorums from [r] of the [s] children at every level and a
    write quorum from [w] of [s], subject to Kumar's conditions
    r + w > s and 2·w > s.  Read quorums then intersect write quorums and
    write quorums intersect each other.

    The paper's instance is s = 3 with r = w = 2: quorum size
    2^L = n^0.63, optimal load (2/3)^L = n^−0.37 (Naor–Wool §6.4). *)

type t

val create : depth:int -> t
(** The paper's ternary majority instance (s = 3, r = w = 2). *)

val create_general : depth:int -> s:int -> r:int -> w:int -> t
(** Any branching factor and thresholds; raises [Invalid_argument] unless
    1 ≤ r,w ≤ s, r + w > s and 2w > s. *)

val of_n : n:int -> t
(** Largest ternary-majority instance with 3^depth ≤ n. *)

val protocol : t -> Protocol.t
val depth : t -> int
val branching : t -> int
val n_of_depth : int -> int
(** Ternary: 3^depth (for {!create}/{!of_n} instances). *)

val universe : t -> int
(** s^depth replicas. *)

val read_quorum_size : t -> int
(** r^depth. *)

val write_quorum_size : t -> int
(** w^depth. *)

val quorum_size : t -> int
(** = {!read_quorum_size}; kept for the symmetric default where both
    coincide (2^depth = n^0.63). *)

val cost : t -> float
(** {!quorum_size} as a float. *)

val read_load : t -> float
(** (r/s)^depth under the uniform strategy. *)

val write_load : t -> float
(** (w/s)^depth. *)

val optimal_load : t -> float
(** = {!read_load}; (2/3)^depth = n^−0.37 for the default instance. *)

val read_availability : t -> p:float -> float
(** Exact recurrence: A(0) = p, A(l) = P[Binomial(s, A(l−1)) ≥ r]. *)

val write_availability : t -> p:float -> float

val availability : t -> p:float -> float
(** = {!read_availability}; for the symmetric default both coincide. *)

include Protocol.S with type t := t
