(** The original tree quorum protocol of Agrawal and El Abbadi (VLDB 1990)
    — reference [1] of the paper, which §1 uses to motivate the arbitrary
    protocol's design.

    Replicas form a complete tree of height [h] in which every node has
    2d+1 children.  A {e read} quorum for a subtree is its root if it is
    up, otherwise read quorums of any d+1 (a majority) of its children; a
    {e write} quorum is the root {e plus} write quorums of d+1 children,
    recursively to the leaves.

    Consequences reproduced here (all stated in §1 of the ICDCS paper):
    read cost ranges from 1 (just the root) to (d+1)^h; write cost is
    ((d+1)^{h+1} − 1)/d; a best-case read strategy loads the root with 1;
    the root belongs to every write quorum, so write load is 1 and a root
    crash blocks all writes. *)

type t

val create : d:int -> height:int -> t
(** Every node has 2d+1 children ([d ≥ 1]); [height ≥ 0]. *)

val protocol : t -> Protocol.t
val height : t -> int
val fanout : t -> int
(** 2d+1. *)

val n : t -> int
(** ((2d+1)^{h+1} − 1) / (2d). *)

val min_read_cost : t -> int
(** 1: the root alone. *)

val max_read_cost : t -> int
(** (d+1)^h: one leaf under every majority path. *)

val write_cost : t -> int
(** ((d+1)^{h+1} − 1)/d — the unique write-quorum size. *)

val read_availability : t -> p:float -> float
(** R(0) = p, R(l) = p + (1−p)·B(R(l−1)) with B the probability that at
    least d+1 of 2d+1 independent children succeed. *)

val write_availability : t -> p:float -> float
(** W(0) = p, W(l) = p·B(W(l−1)): always at most [p], §1's point. *)

val write_load : t -> float
(** 1: the root is in every write quorum. *)

include Protocol.S with type t := t
