module Bitset = Dsutil.Bitset

type t = { universe : int; quorums : Bitset.t array }

let create ~universe sets =
  if sets = [] then invalid_arg "Quorum_set.create: empty quorum list";
  List.iter
    (fun s ->
      if Bitset.capacity s <> universe then
        invalid_arg "Quorum_set.create: set capacity differs from universe";
      if Bitset.is_empty s then
        invalid_arg "Quorum_set.create: empty quorum")
    sets;
  { universe; quorums = Array.of_list sets }

let of_lists ~universe lists =
  create ~universe (List.map (Bitset.of_list universe) lists)

let size t = Array.length t.quorums

let is_quorum_system t =
  let n = Array.length t.quorums in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Bitset.intersects t.quorums.(i) t.quorums.(j)) then ok := false
    done
  done;
  !ok

let has_proper_subset_pair t =
  let n = Array.length t.quorums in
  let found = ref false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j
         && Bitset.subset t.quorums.(i) t.quorums.(j)
         && not (Bitset.equal t.quorums.(i) t.quorums.(j))
      then found := true
    done
  done;
  !found

let is_coterie t = is_quorum_system t && not (has_proper_subset_pair t)

let is_bicoterie ~read ~write =
  if read.universe <> write.universe then
    invalid_arg "Quorum_set.is_bicoterie: universe mismatch";
  Array.for_all
    (fun r -> Array.for_all (fun w -> Bitset.intersects r w) write.quorums)
    read.quorums

let minimize t =
  let keep =
    Array.to_list t.quorums
    |> List.filteri (fun i q ->
           not
             (Array.exists
                (fun q' ->
                  q' != t.quorums.(i)
                  && Bitset.subset q' q
                  && not (Bitset.equal q' q))
                t.quorums))
  in
  (* Deduplicate identical quorums while we are at it. *)
  let dedup =
    List.fold_left
      (fun acc q -> if List.exists (Bitset.equal q) acc then acc else q :: acc)
      [] keep
    |> List.rev
  in
  create ~universe:t.universe dedup

let mem_site t i = Array.exists (fun q -> Bitset.mem q i) t.quorums

let smallest_quorum_size t =
  Array.fold_left (fun acc q -> min acc (Bitset.cardinal q)) max_int t.quorums

let can_form_within t ~alive =
  Array.exists (fun q -> Bitset.subset q alive) t.quorums

let dominates d ~over =
  if d.universe <> over.universe then
    invalid_arg "Quorum_set.dominates: universe mismatch";
  let equal_systems =
    Array.length d.quorums = Array.length over.quorums
    && Array.for_all
         (fun q -> Array.exists (Bitset.equal q) over.quorums)
         d.quorums
  in
  (not equal_systems)
  && Array.for_all
       (fun c -> Array.exists (fun q -> Bitset.subset q c) d.quorums)
       over.quorums

let find_dominating t =
  if t.universe > 16 then
    invalid_arg "Quorum_set.find_dominating: universe too large";
  (* A coterie C is dominated iff some set S intersects every quorum of C
     but contains none of them (then minimize C ∪ {S}).  Search all S. *)
  let n = t.universe in
  let found = ref None in
  (try
     for mask = 1 to (1 lsl n) - 1 do
       let s = Bitset.create n in
       for i = 0 to n - 1 do
         if mask land (1 lsl i) <> 0 then Bitset.add s i
       done;
       let intersects_all =
         Array.for_all (fun q -> Bitset.intersects s q) t.quorums
       in
       let contains_none =
         not (Array.exists (fun q -> Bitset.subset q s) t.quorums)
       in
       if intersects_all && contains_none then begin
         let candidate =
           minimize (create ~universe:n (s :: Array.to_list t.quorums))
         in
         if dominates candidate ~over:t then begin
           found := Some candidate;
           raise Exit
         end
       end
     done
   with Exit -> ());
  !found

let pp ppf t =
  Format.fprintf ppf "@[<v>universe=%d@,%a@]" t.universe
    (Format.pp_print_list Bitset.pp)
    (Array.to_list t.quorums)
