module Bitset = Dsutil.Bitset

type t = float array

let uniform (qs : Quorum_set.t) =
  let m = Quorum_set.size qs in
  Array.make m (1.0 /. float_of_int m)

let of_weights weights =
  if Array.exists (fun w -> w < 0.0) weights then
    invalid_arg "Strategy.of_weights: negative weight";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Strategy.of_weights: zero total";
  Array.map (fun w -> w /. total) weights

let is_distribution t =
  Array.for_all (fun w -> w >= 0.0) t
  && abs_float (Array.fold_left ( +. ) 0.0 t -. 1.0) < 1e-9

let induced_site_loads (qs : Quorum_set.t) t =
  if Array.length t <> Quorum_set.size qs then
    invalid_arg "Strategy.induced_site_loads: arity mismatch";
  let loads = Array.make qs.universe 0.0 in
  Array.iteri
    (fun j q -> Bitset.iter (fun i -> loads.(i) <- loads.(i) +. t.(j)) q)
    qs.quorums;
  loads

let system_load qs t =
  Array.fold_left max 0.0 (induced_site_loads qs t)

let expected_quorum_size (qs : Quorum_set.t) t =
  let acc = ref 0.0 in
  Array.iteri
    (fun j q -> acc := !acc +. (t.(j) *. float_of_int (Bitset.cardinal q)))
    qs.quorums;
  !acc
