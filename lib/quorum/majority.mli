(** Majority quorum consensus (Thomas).

    Every set of ⌈(n+1)/2⌉ replicas is both a read and a write quorum.
    Cost (n+1)/2 for odd [n]; system load ≥ 1/2. *)

type t

val create : n:int -> t
val protocol : t -> Protocol.t

val quorum_size : t -> int
val read_cost : t -> int
val write_cost : t -> int
val load : t -> float
(** Optimal system load: [quorum_size / n]. *)

val availability : t -> p:float -> float
(** Probability that at least ⌈(n+1)/2⌉ replicas are up (exact binomial
    tail). *)

include Protocol.S with type t := t
