module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

type t = { rows : int; cols : int }

let create ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Grid.create: empty grid";
  { rows; cols }

let square ~n =
  if n < 1 then invalid_arg "Grid.square: need at least one replica";
  let k = int_of_float (sqrt (float_of_int n)) in
  create ~rows:(max 1 k) ~cols:(max 1 k)

let rows t = t.rows
let cols t = t.cols
let name _ = "Grid"
let universe_size t = t.rows * t.cols
let site t ~row ~col = (row * t.cols) + col

let alive_in_col t ~alive col =
  let out = ref [] in
  for r = t.rows - 1 downto 0 do
    let s = site t ~row:r ~col in
    if Bitset.mem alive s then out := s :: !out
  done;
  !out

let col_fully_alive t ~alive col =
  List.length (alive_in_col t ~alive col) = t.rows

(* One alive representative per column, or None. *)
let column_cover t ~alive ~rng ~skip =
  let q = Bitset.create (universe_size t) in
  let ok = ref true in
  for c = 0 to t.cols - 1 do
    if c <> skip then begin
      match alive_in_col t ~alive c with
      | [] -> ok := false
      | l -> Bitset.add q (Rng.pick rng (Array.of_list l))
    end
  done;
  if !ok then Some q else None

let read_quorum t ~alive ~rng = column_cover t ~alive ~rng ~skip:(-1)

let write_quorum t ~alive ~rng =
  (* Pick a fully-alive column uniformly among candidates, then cover the
     remaining columns. *)
  let candidates = ref [] in
  for c = t.cols - 1 downto 0 do
    if col_fully_alive t ~alive c then candidates := c :: !candidates
  done;
  match !candidates with
  | [] -> None
  | l -> (
    let c = Rng.pick rng (Array.of_list l) in
    match column_cover t ~alive ~rng ~skip:c with
    | None -> None
    | Some q ->
      for r = 0 to t.rows - 1 do
        Bitset.add q (site t ~row:r ~col:c)
      done;
      Some q)

(* Cartesian product of per-column choices. *)
let rec product = function
  | [] -> Seq.return []
  | choices :: rest ->
    Seq.concat_map
      (fun pick -> Seq.map (fun tail -> pick :: tail) (product rest))
      (List.to_seq choices)

let enumerate_read_quorums t =
  let per_col =
    List.init t.cols (fun c -> List.init t.rows (fun r -> site t ~row:r ~col:c))
  in
  Seq.map (Bitset.of_list (universe_size t)) (product per_col)

let enumerate_write_quorums t =
  Seq.concat_map
    (fun c ->
      let full_col = List.init t.rows (fun r -> site t ~row:r ~col:c) in
      let others =
        List.filteri (fun c' _ -> c' <> c) (List.init t.cols Fun.id)
        |> List.map (fun c' -> List.init t.rows (fun r -> site t ~row:r ~col:c'))
      in
      Seq.map
        (fun cover -> Bitset.of_list (universe_size t) (full_col @ cover))
        (product others))
    (Seq.init t.cols Fun.id)

let read_cost t = t.cols
let write_cost t = t.rows + t.cols - 1
let read_load t = 1.0 /. float_of_int t.rows

let write_load t =
  (* Uniform strategy: a site is in the chosen quorum if its column is the
     full column (prob 1/cols) or it is picked as its column's
     representative (prob (cols-1)/cols * 1/rows). *)
  let c = float_of_int t.cols and r = float_of_int t.rows in
  (1.0 /. c) +. ((c -. 1.0) /. c /. r)

let read_levels _ = None
let fork t = t

let protocol t =
  Protocol.pack
    (module struct
      type nonrec t = t

      let name = name
      let universe_size = universe_size
      let read_quorum = read_quorum
      let write_quorum = write_quorum
      let enumerate_read_quorums = enumerate_read_quorums
      let enumerate_write_quorums = enumerate_write_quorums
      let read_levels _ = None
      let fork t = t
    end)
    t
