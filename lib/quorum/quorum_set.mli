(** Explicit quorum systems over a finite universe of sites.

    A quorum system is represented extensionally as an array of site sets.
    This representation is only viable for small systems (it is used by the
    tests and the LP-based load computations); the protocol modules generate
    quorums lazily for large universes. *)

type t = private {
  universe : int;  (** sites are 0 .. universe-1 *)
  quorums : Dsutil.Bitset.t array;
}

val create : universe:int -> Dsutil.Bitset.t list -> t
(** Raises [Invalid_argument] if any set exceeds the universe or the list is
    empty. *)

val of_lists : universe:int -> int list list -> t

val size : t -> int
(** Number of quorums. *)

val is_quorum_system : t -> bool
(** Pairwise non-empty intersection (Definition 2.1). *)

val is_coterie : t -> bool
(** Quorum system + minimality: no quorum contains another
    (Definition 2.2). *)

val is_bicoterie : read:t -> write:t -> bool
(** Every read quorum intersects every write quorum (Definition 2.3).
    The two systems must share a universe. *)

val minimize : t -> t
(** Drop quorums that are supersets of another quorum. *)

val mem_site : t -> int -> bool
(** Does any quorum contain the given site? *)

val smallest_quorum_size : t -> int

val can_form_within : t -> alive:Dsutil.Bitset.t -> bool
(** Is some quorum fully contained in the alive set? *)

val dominates : t -> over:t -> bool
(** [dominates d ~over:c] — coterie domination (Garcia-Molina & Barbara):
    [d ≠ c] and every quorum of [c] contains some quorum of [d].  A
    dominated coterie is strictly worse: the dominating one is available
    whenever it is, and more.  Both arguments must share a universe. *)

val find_dominating : t -> t option
(** Searches for a coterie dominating the argument by brute force over
    candidate extra quorums (universe ≤ 16 only).  [None] means the
    coterie is {e non-dominated} — e.g. majorities over an odd universe.
    Raises [Invalid_argument] on larger universes. *)

val pp : Format.formatter -> t -> unit
