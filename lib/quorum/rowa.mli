(** Read-One-Write-All (Bernstein–Goodman).

    Read quorums are singletons; the only write quorum is the full universe.
    Read cost 1, write cost [n]; read load 1/n, write load 1; a single crash
    blocks all writes. *)

type t

val create : n:int -> t
val protocol : t -> Protocol.t

val read_cost : t -> int
val write_cost : t -> int
val read_load : t -> float
val write_load : t -> float
val read_availability : t -> p:float -> float
(** [1 - (1-p)^n]. *)

val write_availability : t -> p:float -> float
(** [p^n]. *)

include Protocol.S with type t := t
