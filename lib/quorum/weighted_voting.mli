(** Weighted voting (Gifford), with vote assignment in the spirit of
    Garcia-Molina & Barbara's "How to assign votes in a distributed
    system".

    Each replica holds an integral number of votes; a read quorum is any
    set gathering at least [r] votes and a write quorum any set with at
    least [w] votes, where r + w > total and 2·w > total.  Majority and
    ROWA are the two classic corner cases. *)

type t

val create : votes:int array -> r:int -> w:int -> t
(** Raises [Invalid_argument] unless votes are non-negative, some vote is
    positive, r + w > total votes and 2·w > total votes (the one-copy
    intersection conditions). *)

val uniform : n:int -> r:int -> w:int -> t
(** One vote per replica. *)

val majority : n:int -> t
(** Uniform votes with r = w = ⌊total/2⌋ + 1. *)

val rowa : n:int -> t
(** Uniform votes with r = 1, w = n. *)

val protocol : t -> Protocol.t
val total_votes : t -> int
val read_threshold : t -> int
val write_threshold : t -> int

val min_read_quorum_size : t -> int
(** Fewest replicas that can gather [r] votes (heaviest voters first). *)

val min_write_quorum_size : t -> int

include Protocol.S with type t := t
