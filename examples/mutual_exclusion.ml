(* Distributed mutual exclusion over the arbitrary tree's quorums — the
   original application of the tree-quorum lineage ([2] and Maekawa [9]).

   Five clients contend for one critical section arbitrated by the eight
   Figure-1 replicas.  An invariant monitor asserts at most one client is
   ever inside; the run prints the entry order and the inquire/yield
   traffic that resolved the quorum deadlocks.

   dune exec examples/mutual_exclusion.exe *)

module Engine = Dsim.Engine
module Network = Dsim.Network

let () =
  let tree = Arbitrary.Tree.figure1 () in
  let proto = Arbitrary.Quorums.protocol tree in
  let n = Arbitrary.Tree.n tree in
  let n_clients = 5 in
  let engine = Engine.create ~seed:11 () in
  (* Maekawa's algorithm needs FIFO links. *)
  let net = Network.create ~engine ~n:(n + n_clients) ~fifo:true () in
  let _arbiters = Array.init n (fun site -> Qmutex.create_arbiter ~site ~net) in
  let clients =
    Array.init n_clients (fun i -> Qmutex.create_client ~site:(n + i) ~net ~proto ())
  in

  let in_cs = ref None in
  let entries = ref [] in
  Array.iteri
    (fun idx c ->
      let rec cycle round =
        if round < 4 then
          Qmutex.acquire c (fun () ->
              (match !in_cs with
              | Some other ->
                Format.printf "VIOLATION: client %d entered while %d inside!@."
                  idx other
              | None -> ());
              in_cs := Some idx;
              entries := (Engine.now engine, idx) :: !entries;
              Engine.schedule engine ~delay:3.0 (fun () ->
                  in_cs := None;
                  Qmutex.release c;
                  Engine.schedule engine ~delay:2.0 (fun () -> cycle (round + 1))))
      in
      cycle 0)
    clients;
  Engine.run engine;

  Format.printf "critical-section entries (time, client):@.";
  List.iter
    (fun (t, idx) -> Format.printf "  %7.2f  client %d@." t idx)
    (List.rev !entries);
  Format.printf "@.%d entries total, " (List.length !entries);
  Format.printf "yields (deadlock-avoidance handoffs): %d@."
    (Array.fold_left (fun acc c -> acc + Qmutex.yields c) 0 clients);
  Format.printf
    "No violations: every pair of mutex quorums (read ∪ write unions)@.\
     intersects, and the intersection arbiter serializes the entries.@."
