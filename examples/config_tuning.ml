(* The "spectrum" property (§3.3): the same protocol serves read-heavy and
   write-heavy systems by just re-shaping the tree — no protocol change.

   This example tunes a 100-replica system for several read/write mixes,
   prints the chosen shapes, and verifies the choice by simulating the two
   extreme mixes on both their own tree and the opposite one.

   dune exec examples/config_tuning.exe *)

let simulate tree ~read_fraction =
  let proto = Arbitrary.Quorums.protocol tree in
  let s = Replication.Harness.default_scenario ~proto in
  Replication.Harness.run
    { s with Replication.Harness.n_clients = 4; ops_per_client = 100; read_fraction }

let () =
  let n = 100 and p = 0.8 in
  Format.printf "Planning trees for n = %d replicas, replica availability %.1f@.@." n p;
  Format.printf "%-10s %-9s %-8s %-8s %-9s %-9s %s@." "read mix" "|K_phy|"
    "rd cost" "wr cost" "E[L_RD]" "E[L_WR]" "spec (truncated)";
  List.iter
    (fun read_fraction ->
      let tree = Arbitrary.Planner.plan ~n ~p ~read_fraction () in
      let s = Arbitrary.Analysis.summarize tree ~p in
      let spec = Arbitrary.Tree.to_spec tree in
      let spec =
        if String.length spec > 28 then String.sub spec 0 28 ^ "..." else spec
      in
      Format.printf "%-10.2f %-9d %-8d %-8.2f %-9.4f %-9.4f %s@." read_fraction
        (Arbitrary.Tree.num_physical_levels tree)
        s.Arbitrary.Analysis.rd_cost s.Arbitrary.Analysis.wr_cost_avg
        s.Arbitrary.Analysis.expected_rd_load s.Arbitrary.Analysis.expected_wr_load
        spec)
    [ 0.05; 0.25; 0.5; 0.75; 0.95 ];

  (* Cross-validation: run each extreme workload on both extreme trees. *)
  Format.printf "@.Cross check (simulated mean latency, 400 ops):@.";
  let read_tree = Arbitrary.Planner.plan ~n ~p ~read_fraction:0.95 () in
  let write_tree = Arbitrary.Planner.plan ~n ~p ~read_fraction:0.05 () in
  List.iter
    (fun (mix_name, read_fraction) ->
      List.iter
        (fun (tree_name, tree) ->
          let r = simulate tree ~read_fraction in
          let msgs = Replication.Harness.messages_per_op r in
          Format.printf "  %-14s on %-12s: %6.1f msgs/op@." mix_name tree_name msgs)
        [ ("read-tuned", read_tree); ("write-tuned", write_tree) ])
    [ ("95%-read mix", 0.95); ("95%-write mix", 0.05) ];
  Format.printf
    "@.The matching tree needs fewer messages per operation on its own mix:@.\
     shifting configuration = rebuilding the tree, not the protocol.@."
