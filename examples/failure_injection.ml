(* Failure injection: replicas crash and recover while clients keep
   operating.  Shows (a) zero safety violations throughout, and (b) the
   measured operation success rate tracking the analytic availability as
   the steady-state replica availability p varies.

   dune exec examples/failure_injection.exe *)

module Harness = Replication.Harness
module Failure = Dsim.Failure

let run_with_availability ~p ~seed =
  let tree = Arbitrary.Config.build Arbitrary.Config.Arbitrary ~n:48 in
  let proto = Arbitrary.Quorums.protocol tree in
  (* Pick mtbf/mttr with mtbf/(mtbf+mttr) = p so sites are up a fraction p
     of the time in steady state. *)
  let mtbf = 100.0 in
  let mttr = mtbf *. (1.0 -. p) /. p in
  let rng = Dsutil.Rng.create seed in
  let failures =
    Failure.random_crash_recovery ~rng ~n:48 ~horizon:4000.0 ~mtbf ~mttr
  in
  let s = Harness.default_scenario ~proto in
  let report =
    Harness.run
      {
        s with
        Harness.n_clients = 4;
        ops_per_client = 150;
        read_fraction = 0.5;
        failures;
        seed;
        think_time = 5.0;
      }
  in
  (tree, report)

let rate ok failed =
  let total = ok + failed in
  if total = 0 then 1.0 else float_of_int ok /. float_of_int total

let () =
  Format.printf
    "48 replicas under continuous crash/recovery churn (with retries):@.@.";
  Format.printf "%-6s %-12s %-12s %-12s %-12s %s@." "p" "rd measured"
    "rd analytic" "wr measured" "wr analytic" "safety violations";
  List.iter
    (fun p ->
      let tree, r = run_with_availability ~p ~seed:11 in
      Format.printf "%-6.2f %-12.3f %-12.3f %-12.3f %-12.3f %d@." p
        (rate r.Harness.reads_ok r.Harness.reads_failed)
        (Arbitrary.Analysis.read_availability tree ~p)
        (rate r.Harness.writes_ok r.Harness.writes_failed)
        (Arbitrary.Analysis.write_operation_availability tree ~p)
        r.Harness.safety_violations)
    [ 0.95; 0.9; 0.85; 0.8; 0.7; 0.6 ];
  Format.printf
    "@.Writes track the combined (version-read + write-quorum) availability;@.\
     reads track the product over physical levels.  Safety violations stay 0:@.\
     every read still sees the newest committed write despite the churn.@."
