(* Failure injection: replicas crash and recover while clients keep
   operating.  Shows (a) zero safety violations throughout, (b) the
   measured operation success rate tracking the analytic availability as
   the steady-state replica availability p varies, and (c) how much of
   that availability survives when the ground-truth failure oracle is
   replaced by a realistic heartbeat/φ-accrual detector.

   dune exec examples/failure_injection.exe *)

module Harness = Replication.Harness
module Coordinator = Replication.Coordinator
module Failure = Dsim.Failure

let run_with_availability ?coordinator ~p ~seed ~detector () =
  let tree = Arbitrary.Config.build Arbitrary.Config.Arbitrary ~n:48 in
  let proto = Arbitrary.Quorums.protocol tree in
  (* Pick mtbf/mttr with mtbf/(mtbf+mttr) = p so sites are up a fraction p
     of the time in steady state. *)
  let mtbf = 100.0 in
  let mttr = mtbf *. (1.0 -. p) /. p in
  let rng = Dsutil.Rng.create seed in
  (* The schedule must outlive the slowest client: entry generation stops
     at its horizon and a site that is down then stays down, which would
     turn the tail of a slow run into a permanent mass outage. *)
  let failures =
    Failure.random_crash_recovery ~rng ~n:48 ~horizon:20_000.0 ~mtbf ~mttr
  in
  let s = Harness.default_scenario ~proto in
  let report =
    Harness.run
      {
        s with
        Harness.n_clients = 4;
        ops_per_client = 150;
        read_fraction = 0.5;
        failures;
        seed;
        think_time = 5.0;
        detector;
        coordinator =
          Option.value coordinator ~default:s.Harness.coordinator;
      }
  in
  (tree, report)

let rate ok failed =
  let total = ok + failed in
  if total = 0 then 1.0 else float_of_int ok /. float_of_int total

let ps = [ 0.95; 0.9; 0.85; 0.8; 0.7; 0.6 ]

let () =
  Format.printf
    "48 replicas under continuous crash/recovery churn (with retries):@.@.";
  Format.printf "%-6s %-12s %-12s %-12s %-12s %s@." "p" "rd measured"
    "rd analytic" "wr measured" "wr analytic" "safety violations";
  List.iter
    (fun p ->
      let tree, r =
        run_with_availability ~p ~seed:11 ~detector:Harness.Oracle ()
      in
      Format.printf "%-6.2f %-12.3f %-12.3f %-12.3f %-12.3f %d@." p
        (rate r.Harness.reads_ok r.Harness.reads_failed)
        (Arbitrary.Analysis.read_availability tree ~p)
        (rate r.Harness.writes_ok r.Harness.writes_failed)
        (Arbitrary.Analysis.write_operation_availability tree ~p)
        r.Harness.safety_violations)
    ps;
  Format.printf
    "@.Writes track the combined (version-read + write-quorum) availability;@.\
     reads track the product over physical levels.  Safety violations stay 0:@.\
     every read still sees the newest committed write despite the churn.@.";

  (* Same churn, but the coordinator no longer gets ground-truth failure
     knowledge: quorums are assembled from a per-client heartbeat monitor
     (φ-accrual, explicit suspicion on missed phase deadlines).  The delta
     against the oracle is the price of realistic detection. *)
  let hb =
    Harness.Heartbeat
      { Detect.Heartbeat.default_config with Detect.Heartbeat.period = 2.5 }
  in
  (* Both columns get the degradation-tolerant retry policy: per-phase
     timeouts from observed RTT quantiles, jittered exponential backoff,
     and a hard per-operation deadline so an op abandons a dead quorum
     instead of hammering it with its locks held. *)
  let coordinator =
    {
      Coordinator.default_config with
      Coordinator.max_retries = 8;
      adaptive_timeout = true;
      deadline = 600.0;
    }
  in
  Format.printf
    "@.Oracle vs heartbeat failure detection (same churn, same seeds):@.@.";
  Format.printf "%-6s %-10s %-10s %-10s %-10s %-10s %-10s %s@." "p"
    "rd oracle" "rd hb" "rd delta" "wr oracle" "wr hb" "wr delta"
    "safety violations";
  List.iter
    (fun p ->
      let _, o =
        run_with_availability ~coordinator ~p ~seed:11
          ~detector:Harness.Oracle ()
      in
      let _, h = run_with_availability ~coordinator ~p ~seed:11 ~detector:hb () in
      let rd_o = rate o.Harness.reads_ok o.Harness.reads_failed
      and rd_h = rate h.Harness.reads_ok h.Harness.reads_failed
      and wr_o = rate o.Harness.writes_ok o.Harness.writes_failed
      and wr_h = rate h.Harness.writes_ok h.Harness.writes_failed in
      Format.printf "%-6.2f %-10.3f %-10.3f %-+10.3f %-10.3f %-10.3f %-+10.3f %d@."
        p rd_o rd_h (rd_h -. rd_o) wr_o wr_h (wr_h -. wr_o)
        (o.Harness.safety_violations + h.Harness.safety_violations))
    ps;
  Format.printf
    "@.The heartbeat detector pays a detection-latency tax on each fresh@.\
     crash (one phase timeout before the site is suspected): a few points@.\
     at moderate churn, growing as outages dominate.  Safety never depends@.\
     on detection quality — violations are 0 in both columns.@."
