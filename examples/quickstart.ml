(* Quickstart: the paper's §3.4 worked example, then the same tree driven
   end-to-end through the simulator.

   dune exec examples/quickstart.exe *)

let () =
  (* 1. Build the tree of Figure 1: a logical root, a physical level of 3
     replicas and a physical level of 5 (spec "1-3-5"). *)
  let tree = Arbitrary.Tree.of_spec "1-3-5" in
  Format.printf "The Figure-1 tree:@.%a@.@." Arbitrary.Tree.pp tree;

  (* 2. Reproduce every number of the worked example. *)
  let s = Arbitrary.Analysis.summarize tree ~p:0.7 in
  Format.printf "Analytic model at p = 0.7:@.%a@.@." Arbitrary.Analysis.pp_summary s;
  Format.printf "m(R) = %.0f read quorums, m(W) = %d write quorums@.@."
    (Arbitrary.Analysis.num_read_quorums tree)
    (Arbitrary.Analysis.num_write_quorums tree);

  (* 3. Look at actual quorums. *)
  let proto = Arbitrary.Quorums.protocol tree in
  let rng = Dsutil.Rng.create 1 in
  let alive = Quorum.Protocol.all_alive proto in
  (match Arbitrary.Quorums.read_quorum tree ~alive ~rng with
  | Some q -> Format.printf "a read quorum:  %a@." Dsutil.Bitset.pp q
  | None -> assert false);
  (match Arbitrary.Quorums.write_quorum tree ~alive ~rng with
  | Some q -> Format.printf "a write quorum: %a@.@." Dsutil.Bitset.pp q
  | None -> assert false);

  (* 4. Run the protocol for real on the simulated network: 2 clients,
     100 operations, 60% reads — with the observability layer attached so
     every operation leaves a span. *)
  let obs = Obs.create () in
  let mem = Obs.Sink.memory () in
  Obs.add_sink obs (Obs.Sink.memory_sink mem);
  let scenario = Replication.Harness.default_scenario ~proto in
  let report =
    Replication.Harness.run ~obs
      { scenario with Replication.Harness.n_clients = 2; ops_per_client = 50;
        read_fraction = 0.6 }
  in
  Format.printf "Simulated run:@.%a@.@." Replication.Harness.pp_report report;
  Format.printf "messages per operation: %.1f (read quorum = 2 contacts,@."
    (Replication.Harness.messages_per_op report);
  Format.printf "write = version read + 2PC over a full level)@.@.";

  (* 5. What the spans saw: every operation closed, and the write-phase
     latency percentiles come straight out of the metrics registry. *)
  Format.printf "spans: %d issued, %d closed, %d open@."
    (Obs.spans_started obs) (Obs.spans_closed obs) (Obs.spans_open obs);
  let m = Obs.metrics obs in
  List.iter
    (fun name ->
      match List.assoc_opt name (Obs.Metrics.histograms m) with
      | None -> ()
      | Some h ->
        let s = Obs.Metrics.summary h in
        if Dsutil.Stats.count s > 0 then
          Format.printf "%-20s p50=%.2f p95=%.2f@." name
            (Dsutil.Stats.percentile s 0.5)
            (Dsutil.Stats.percentile s 0.95))
    [ "phase.query.latency"; "phase.prepare.latency"; "phase.commit.latency" ];
  match Obs.Sink.memory_spans mem with
  | sp :: _ -> Format.printf "first span as JSONL:@.%s@." (Obs.Span.to_json sp)
  | [] -> ()
