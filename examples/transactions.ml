(* Multi-key transactions (§2.2): atomic transfers between "accounts" on a
   replicated store, with strict two-phase locking and a cross-key 2PC.

   Two clients concurrently move money between three accounts; an invariant
   checker verifies the total balance is conserved by every committed
   transaction, even under replica crashes and lock conflicts.

   dune exec examples/transactions.exe *)

module Engine = Dsim.Engine
module Network = Dsim.Network
module Txn = Replication.Txn
module Replica = Replication.Replica

let accounts = [ 0; 1; 2 ]
let initial = 100

let balance_of v = if v = "" then initial else int_of_string v

(* Transfer [amount] from account [src] to [dst] in one transaction. *)
let transfer mgr ~src ~dst ~amount k =
  let txn = Txn.begin_txn mgr in
  Txn.read txn ~key:src (function
    | None -> k (Txn.Aborted "read failed")
    | Some src_v ->
      Txn.read txn ~key:dst (function
        | None -> k (Txn.Aborted "read failed")
        | Some dst_v ->
          let src_bal = balance_of src_v and dst_bal = balance_of dst_v in
          if src_bal < amount then begin
            Txn.abort txn;
            k (Txn.Aborted "insufficient funds")
          end
          else begin
            Txn.write txn ~key:src ~value:(string_of_int (src_bal - amount));
            Txn.write txn ~key:dst ~value:(string_of_int (dst_bal + amount));
            Txn.commit txn k
          end))

let () =
  let tree = Arbitrary.Tree.of_spec "1-3-5" in
  let proto = Arbitrary.Quorums.protocol tree in
  let engine = Engine.create ~seed:21 () in
  let net = Network.create ~engine ~n:10 () in
  let _replicas = Array.init 8 (fun site -> Replica.create ~site ~net ()) in
  let locks = Replication.Lock_manager.create ~engine in
  let m1 = Txn.create_manager ~site:8 ~net ~proto ~locks () in
  let m2 = Txn.create_manager ~site:9 ~net ~proto ~locks () in

  (* Two clients fire transfers, including conflicting ones on the same
     accounts; a replica crashes and recovers along the way. *)
  let rng = Dsutil.Rng.create 4 in
  let run_client mgr count =
    let rec go i =
      if i < count then begin
        let src = Dsutil.Rng.pick rng (Array.of_list accounts) in
        let dst = (src + 1 + Dsutil.Rng.int rng 2) mod 3 in
        let amount = 1 + Dsutil.Rng.int rng 30 in
        transfer mgr ~src ~dst ~amount (fun _ ->
            Engine.schedule engine ~delay:2.0 (fun () -> go (i + 1)))
      end
    in
    go 0
  in
  run_client m1 25;
  run_client m2 25;
  Engine.schedule engine ~delay:40.0 (fun () -> Network.crash net 7);
  Engine.schedule engine ~delay:120.0 (fun () -> Network.recover net 7);
  Engine.run engine;

  Format.printf "transactions: %d committed, %d aborted (both clients)@."
    (Txn.committed m1 + Txn.committed m2)
    (Txn.aborted m1 + Txn.aborted m2);

  (* Invariant: committed transfers conserve the total balance. *)
  let reader = Txn.begin_txn m1 in
  let balances = ref [] in
  let rec read_all = function
    | [] ->
      let total = List.fold_left ( + ) 0 !balances in
      Format.printf "balances: %s (total %d, expected %d) -> %s@."
        (String.concat ", " (List.map string_of_int (List.rev !balances)))
        total (3 * initial)
        (if total = 3 * initial then "CONSERVED" else "VIOLATED");
      Txn.abort reader
    | key :: rest ->
      Txn.read reader ~key (fun v ->
          balances := balance_of (Option.value ~default:"" v) :: !balances;
          read_all rest)
  in
  read_all accounts;
  Engine.run engine
