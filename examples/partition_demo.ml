(* Network partitions (§2.2 considers partitions explicitly): only sites in
   the same partition can communicate.  This example splits the Figure-1
   system, shows which operations each side can still serve, and heals.

   dune exec examples/partition_demo.exe *)

module Engine = Dsim.Engine
module Network = Dsim.Network
module Coordinator = Replication.Coordinator
module Replica = Replication.Replica

let run_op engine label op =
  let outcome = ref "pending" in
  op (fun ok -> outcome := if ok then "OK" else "FAILED");
  Engine.run engine;
  Format.printf "  %-42s %s@." label !outcome

let () =
  let tree = Arbitrary.Tree.figure1 () in
  let proto = Arbitrary.Quorums.protocol tree in
  let engine = Engine.create ~seed:5 () in
  (* Replicas 0..7, two client coordinators at sites 8 and 9. *)
  let net = Network.create ~engine ~n:10 () in
  let _replicas = Array.init 8 (fun site -> Replica.create ~site ~net ()) in
  let c1 = Coordinator.create ~site:8 ~net ~proto () in
  let c2 = Coordinator.create ~site:9 ~net ~proto () in

  Format.printf "Figure-1 tree (%s): level 1 = sites 0-2, level 2 = sites 3-7@.@."
    (Arbitrary.Tree.to_spec tree);

  Format.printf "Before the partition:@.";
  run_op engine "client A writes k=1" (fun k ->
      Coordinator.write c1 ~key:1 ~value:"pre-partition" (fun r -> k (r <> None)));

  (* Partition: client A with all of level 1 | client B with all of
     level 2.  Side A can write (full level 1) but cannot read (no level-2
     survivor); side B is the mirror image — it holds a full level too, but
     a write also needs the version-phase read quorum, so both writes and
     reads fail on... side B as well?  No: side B has level 2 complete but
     no level-1 replica, so reads fail there too.  Neither side can read;
     both sides still have one full level. *)
  Network.partition net [ [ 8; 0; 1; 2 ]; [ 9; 3; 4; 5; 6; 7 ] ];
  Format.printf "@.Partitioned: A={client A, level 1}, B={client B, level 2}:@.";
  run_op engine "client A reads k=1 (needs both levels)" (fun k ->
      Coordinator.read c1 ~key:1 (fun r -> k (r <> None)));
  run_op engine "client B reads k=1 (needs both levels)" (fun k ->
      Coordinator.read c2 ~key:1 (fun r -> k (r <> None)));
  run_op engine "client A writes k=2 (version read fails)" (fun k ->
      Coordinator.write c1 ~key:2 ~value:"split" (fun r -> k (r <> None)));

  (* A friendlier split: client B gets level 1 AND one level-2 replica:
     it can read (one node per level) but not write to level 2; it can
     still write by updating all of level 1. *)
  Network.heal net;
  Network.partition net [ [ 8; 4; 5; 6; 7 ]; [ 9; 0; 1; 2; 3 ] ];
  Format.printf
    "@.Re-partitioned: B={client B, level 1 + site 3}, A={client A, rest}:@.";
  run_op engine "client B reads k=1" (fun k ->
      Coordinator.read c2 ~key:1 (fun r -> k (r <> None)));
  run_op engine "client B writes k=1 via level 1" (fun k ->
      Coordinator.write c2 ~key:1 ~value:"minority-safe" (fun r -> k (r <> None)));
  run_op engine "client A reads k=1 (missing level 1)" (fun k ->
      Coordinator.read c1 ~key:1 (fun r -> k (r <> None)));

  Network.heal net;
  Format.printf "@.Healed:@.";
  run_op engine "client A reads k=1 (sees B's partition write)" (fun k ->
      Coordinator.read c1 ~key:1 (fun r ->
          (match r with
          | Some { Coordinator.value; _ } ->
            Format.printf "  value read back: %S@." value
          | None -> ());
          k (r <> None)));
  Format.printf
    "@.Quorum intersection means no split-brain: at most one side of any@.\
     partition can write a given level, and reads must cross all levels.@."
