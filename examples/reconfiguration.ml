(* Live reconfiguration (§1, §3.3): "shifting from one configuration into
   another by just modifying the structure of the tree" — executed online.

   A 45-replica system starts read-tuned (few physical levels).  The
   workload then turns write-heavy, the planner picks a write-tuned tree,
   and the reconfiguration engine migrates the system while a client keeps
   operating: its in-flight operations block on the global locks during
   the switch and resume — on the new tree — afterwards.

   dune exec examples/reconfiguration.exe *)

module Engine = Dsim.Engine
module Network = Dsim.Network
module Coordinator = Replication.Coordinator
module Replica = Replication.Replica

let n = 45
let key_space = 6

let measure_writes engine coord ~ops =
  let ok = ref 0 in
  let rec go i =
    if i < ops then
      Coordinator.write coord ~key:(i mod key_space)
        ~value:(Printf.sprintf "w%d" i) (fun r ->
          if r <> None then incr ok;
          go (i + 1))
  in
  go 0;
  Engine.run engine;
  !ok

let () =
  let p = 0.9 in
  let read_tree = Arbitrary.Planner.plan ~n ~p ~read_fraction:0.9 () in
  let write_tree = Arbitrary.Planner.plan ~n ~p ~read_fraction:0.1 () in
  Format.printf "read-tuned tree : %s (|K_phy|=%d)@."
    (Arbitrary.Tree.to_spec read_tree)
    (Arbitrary.Tree.num_physical_levels read_tree);
  Format.printf "write-tuned tree: %s (|K_phy|=%d)@.@."
    (Arbitrary.Tree.to_spec write_tree)
    (Arbitrary.Tree.num_physical_levels write_tree);

  let engine = Engine.create ~seed:9 () in
  let net = Network.create ~engine ~n:(n + 2) () in
  let _replicas = Array.init n (fun site -> Replica.create ~site ~net ()) in
  let locks = Replication.Lock_manager.create ~engine in
  let coord =
    Coordinator.create ~site:n ~net
      ~proto:(Arbitrary.Quorums.protocol read_tree)
      ~locks ()
  in
  let rpc =
    Replication.Quorum_rpc.create ~site:(n + 1) ~net
      ~proto:(Arbitrary.Quorums.protocol read_tree) ()
  in

  (* Phase 1: writes on the read-tuned tree are expensive. *)
  let before = (Network.counters net).Network.delivered in
  let ok = measure_writes engine coord ~ops:40 in
  let phase1 = (Network.counters net).Network.delivered - before in
  Format.printf "phase 1 (read-tuned): %d/40 writes ok, %.1f msgs/write@." ok
    (float_of_int phase1 /. 40.0);

  (* Seed some state so the migration has data to carry. *)
  Format.printf "@.reconfiguring online...@.";
  let migrated = ref None in
  Replication.Reconfig.migrate ~rpc ~locks
    ~new_proto:(Arbitrary.Quorums.protocol write_tree) ~key_space
    ~on_switch:(fun () ->
      Coordinator.set_protocol coord (Arbitrary.Quorums.protocol write_tree))
    (fun r -> migrated := Some r);
  (* A client write issued mid-migration: it waits, then lands on the new
     tree. *)
  let inflight = ref None in
  Coordinator.write coord ~key:0 ~value:"in-flight" (fun r -> inflight := r);
  Engine.run engine;
  (match !migrated with
  | Some r ->
    Format.printf "migrated %d keys (%d failures); in-flight write %s@."
      r.Replication.Reconfig.migrated
      (List.length r.Replication.Reconfig.failed)
      (if !inflight <> None then "completed on the new tree" else "failed")
  | None -> assert false);

  (* Phase 2: the same write workload is now much cheaper. *)
  let before = (Network.counters net).Network.delivered in
  let ok = measure_writes engine coord ~ops:40 in
  let phase2 = (Network.counters net).Network.delivered - before in
  Format.printf "@.phase 2 (write-tuned): %d/40 writes ok, %.1f msgs/write@." ok
    (float_of_int phase2 /. 40.0);
  Format.printf
    "@.The protocol never changed — only the tree did (and a read of key 0@.\
     still returns the newest committed value):@.";
  let final = ref None in
  Coordinator.read coord ~key:0 (fun r -> final := r);
  Engine.run engine;
  match !final with
  | Some { Coordinator.value; _ } -> Format.printf "  key 0 = %S@." value
  | None -> Format.printf "  read failed?!@."
