(* replica-ctl: command-line front end to the arbitrary tree-structured
   replica control protocol library.

     replica-ctl tree --spec 1-3-5
     replica-ctl analyze --config arbitrary -n 100 -p 0.8
     replica-ctl quorums --spec 1-3-5
     replica-ctl plan -n 100 -p 0.8 --read-fraction 0.7
     replica-ctl figures --section fig2
     replica-ctl simulate --config arbitrary -n 65 --ops 200 --mtbf 200
     replica-ctl chaos --crash-mode amnesia --wal commit --check-consistency
*)

open Cmdliner

(* --- shared arguments ---------------------------------------------------- *)

let config_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "binary" -> Ok Arbitrary.Config.Binary
    | "unmodified" -> Ok Arbitrary.Config.Unmodified
    | "arbitrary" -> Ok Arbitrary.Config.Arbitrary
    | "hqc" -> Ok Arbitrary.Config.Hqc
    | "mostly-read" -> Ok Arbitrary.Config.Mostly_read
    | "mostly-write" -> Ok Arbitrary.Config.Mostly_write
    | _ ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown configuration %S (binary|unmodified|arbitrary|hqc|mostly-read|mostly-write)"
             s))
  in
  let print ppf c = Format.pp_print_string ppf (Arbitrary.Config.name_to_string c) in
  Arg.conv (parse, print)

let spec_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spec" ] ~docv:"SPEC"
        ~doc:
          "Tree specification in the paper's notation, e.g. $(b,1-3-5): a \
           leading 1 is a logical root, the other numbers are physical \
           level sizes.")

let config_arg =
  Arg.(
    value
    & opt (some config_conv) None
    & info [ "config" ] ~docv:"NAME"
        ~doc:"One of the six §4 configurations to build the tree from.")

let n_arg =
  Arg.(
    value & opt int 65
    & info [ "n" ] ~docv:"N" ~doc:"Number of replicas.")

let p_arg =
  Arg.(
    value & opt float 0.7
    & info [ "p" ] ~docv:"P" ~doc:"Per-replica availability probability.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"S"
        ~doc:
          "Partition the keyspace over S independent tree instances \
           (multi-tree control plane).  $(b,--shards 1) runs the sharded \
           harness in its byte-identical-to-unsharded configuration.")

let shard_strategy_conv =
  let parse s =
    match Arbitrary.Shard_map.strategy_of_string (String.lowercase_ascii s) with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown strategy %S (hash|range)" s))
  in
  let print ppf st =
    Format.pp_print_string ppf (Arbitrary.Shard_map.strategy_to_string st)
  in
  Arg.conv (parse, print)

let shard_strategy_arg =
  Arg.(
    value
    & opt shard_strategy_conv Arbitrary.Shard_map.Hash
    & info [ "shard-strategy" ] ~docv:"STRATEGY"
        ~doc:"Key partitioning: $(b,hash) (default) or $(b,range).")

(* The sharding trailer printed by simulate/chaos when S > 1: routing and
   balance, so skew is visible from the CLI. *)
let pp_shard_summary ppf (strategy, r) =
  let module Sh = Replication.Shard_harness in
  Format.fprintf ppf "sharding: shards=%d strategy=%s active=[%s]@,"
    r.Sh.shards
    (Arbitrary.Shard_map.strategy_to_string strategy)
    (String.concat ";" (List.map string_of_int r.Sh.active_shards));
  Format.fprintf ppf "per-shard ops=[%s] keys=[%s] imbalance=%.2f"
    (String.concat ";"
       (List.map string_of_int (Array.to_list r.Sh.per_shard_ops)))
    (String.concat ";"
       (List.map string_of_int (Array.to_list r.Sh.per_shard_keys)))
    (Sh.imbalance_ratio r)

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"PATH"
        ~doc:
          "Attach the observability layer to the run and write a snapshot \
           of every counter, gauge and histogram (plus span accounting) to \
           PATH as JSON.")

let spans_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans-jsonl" ] ~docv:"PATH"
        ~doc:
          "Stream every completed operation span to PATH as JSON lines \
           (one object per operation: phases, quorums, retries, outcome).")

(* Build the optional observability context for a simulation command.
   Returns the obs handle to thread into the harness and a finalizer that
   writes the requested artifacts once the run completes. *)
let obs_setup ~metrics_json ~spans_jsonl =
  match (metrics_json, spans_jsonl) with
  | None, None -> (None, fun () -> ())
  | _ ->
    let obs = Obs.create () in
    let close_spans =
      match spans_jsonl with
      | None -> fun () -> ()
      | Some path ->
        let sink, close = Eval.Export.file_sink ~path in
        Obs.add_sink obs sink;
        fun () ->
          Obs.flush obs;
          close ();
          Format.printf "wrote %s@." path
    in
    let finish () =
      close_spans ();
      match metrics_json with
      | None -> ()
      | Some path ->
        Eval.Export.write_metrics_json ~path obs;
        Format.printf "wrote %s@." path
    in
    (Some obs, finish)

let tree_of ~spec ~config ~n =
  match (spec, config) with
  | Some s, _ -> Arbitrary.Tree.of_spec s
  | None, Some c -> Arbitrary.Config.build c ~n
  | None, None -> Arbitrary.Config.build Arbitrary.Config.Arbitrary ~n

(* User mistakes (bad specs, n out of range, BINARY/HQC where an arbitrary
   tree is required) surface as [Invalid_argument]; report and fail
   cleanly instead of crashing with a backtrace. *)
let or_fail f =
  try f () with Invalid_argument msg ->
    Format.eprintf "replica-ctl: %s@." msg;
    exit 1

(* --- tree ----------------------------------------------------------------- *)

let tree_cmd =
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of text.")
  in
  let run spec config n dot =
    or_fail @@ fun () ->
    let tree = tree_of ~spec ~config ~n in
    if dot then print_string (Arbitrary.Tree_dot.to_dot tree)
    else begin
      Format.printf "%a@." Arbitrary.Tree.pp tree;
      Format.printf "spec: %s@." (Arbitrary.Tree.to_spec tree);
      Format.printf "satisfies assumption 3.1: %b@."
        (Arbitrary.Tree.satisfies_assumption tree)
    end
  in
  Cmd.v
    (Cmd.info "tree" ~doc:"Build a tree and print its level structure.")
    Term.(const run $ spec_arg $ config_arg $ n_arg $ dot_arg)

(* --- analyze -------------------------------------------------------------- *)

let analyze_cmd =
  let run spec config n p =
    or_fail @@ fun () ->
    let tree = tree_of ~spec ~config ~n in
    Format.printf "%a@." Arbitrary.Analysis.pp_summary
      (Arbitrary.Analysis.summarize tree ~p);
    Format.printf
      "write operation availability (incl. version-phase read): %.4f@."
      (Arbitrary.Analysis.write_operation_availability tree ~p)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Closed-form costs, availability and loads of a tree (§3.2).")
    Term.(const run $ spec_arg $ config_arg $ n_arg $ p_arg)

(* --- quorums -------------------------------------------------------------- *)

let quorums_cmd =
  let run spec config n =
    or_fail @@ fun () ->
    let tree = tree_of ~spec ~config ~n in
    if Arbitrary.Tree.n tree > 16 then
      Format.printf "(tree has %d replicas; enumeration is only for small trees)@."
        (Arbitrary.Tree.n tree)
    else begin
      Format.printf "read quorums (m(R) = %.0f):@."
        (Arbitrary.Analysis.num_read_quorums tree);
      Seq.iter
        (fun q -> Format.printf "  %a@." Dsutil.Bitset.pp q)
        (Arbitrary.Quorums.enumerate_read_quorums tree);
      Format.printf "write quorums (m(W) = %d):@."
        (Arbitrary.Analysis.num_write_quorums tree);
      Seq.iter
        (fun q -> Format.printf "  %a@." Dsutil.Bitset.pp q)
        (Arbitrary.Quorums.enumerate_write_quorums tree)
    end
  in
  Cmd.v
    (Cmd.info "quorums" ~doc:"Enumerate the read and write quorums of a tree.")
    Term.(const run $ spec_arg $ config_arg $ n_arg)

(* --- plan ----------------------------------------------------------------- *)

let plan_cmd =
  let read_fraction_arg =
    Arg.(
      value & opt float 0.5
      & info [ "read-fraction" ] ~docv:"F"
          ~doc:"Fraction of operations that are reads.")
  in
  let run n p read_fraction =
    or_fail @@ fun () ->
    let spectrum = Arbitrary.Planner.spectrum ~n ~p ~read_fraction () in
    Format.printf "best trees for n=%d, p=%.2f, %.0f%% reads:@." n p
      (100.0 *. read_fraction);
    List.iteri
      (fun i (tree, score) ->
        if i < 5 then
          Format.printf "  %d. score %.4f  |K_phy|=%-3d  %s@." (i + 1) score
            (Arbitrary.Tree.num_physical_levels tree)
            (Arbitrary.Tree.to_spec tree))
      spectrum
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Pick the tree configuration for a read/write mix (§3.3).")
    Term.(const run $ n_arg $ p_arg $ read_fraction_arg)

(* --- figures -------------------------------------------------------------- *)

let figures_cmd =
  let export_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"DIR"
          ~doc:"Write the figure series as CSV plus a gnuplot script into DIR.")
  in
  let section_arg =
    Arg.(
      value & opt string "all"
      & info [ "section" ] ~docv:"SECTION"
          ~doc:"One of: all, table1, fig2, fig3, fig4, limits, related, shapes.")
  in
  let run section export =
    (match export with
    | Some dir ->
      let files = Eval.Export.write_all ~dir () in
      List.iter (Format.printf "wrote %s@.") files
    | None -> ());
    match String.lowercase_ascii section with
    | "all" -> print_string (Eval.Figures.all ())
    | "table1" -> print_string (Eval.Figures.table1 ())
    | "fig2" -> print_string (Eval.Figures.fig2 ())
    | "fig3" -> print_string (Eval.Figures.fig3 ())
    | "fig4" -> print_string (Eval.Figures.fig4 ())
    | "limits" -> print_string (Eval.Figures.limits ())
    | "related" -> print_string (Eval.Figures.related_work ())
    | "shapes" -> print_string (Eval.Figures.shape_checks ())
    | s -> Format.eprintf "unknown section %S@." s
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const run $ section_arg $ export_arg)

(* --- txn ------------------------------------------------------------------ *)

let txn_cmd =
  let clients_arg =
    Arg.(value & opt int 3 & info [ "clients" ] ~docv:"C" ~doc:"Client count.")
  in
  let txns_arg =
    Arg.(
      value & opt int 30
      & info [ "txns" ] ~docv:"T" ~doc:"Transactions per client.")
  in
  let keys_arg =
    Arg.(
      value & opt int 2
      & info [ "keys-per-txn" ] ~docv:"K" ~doc:"Keys read+written per transaction.")
  in
  let loss_arg =
    Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"L" ~doc:"Message loss rate.")
  in
  let mtbf_arg =
    Arg.(
      value & opt (some float) None
      & info [ "mtbf" ] ~docv:"T" ~doc:"Mean time between failures (enables churn).")
  in
  let run config n clients txns keys loss mtbf seed metrics_json spans_jsonl =
    let name = Option.value config ~default:Arbitrary.Config.Arbitrary in
    or_fail @@ fun () ->
    let proto = Eval.Config_metrics.protocol_of name ~n in
    let n_replicas = Quorum.Protocol.universe_size proto in
    let failures =
      match mtbf with
      | None -> []
      | Some mtbf ->
        Dsim.Failure.random_crash_recovery
          ~rng:(Dsutil.Rng.create (seed + 1))
          ~n:n_replicas ~horizon:2000.0 ~mtbf ~mttr:(mtbf /. 4.0)
    in
    let s = Replication.Txn_harness.default_scenario ~proto in
    let obs, obs_finish = obs_setup ~metrics_json ~spans_jsonl in
    let report =
      Replication.Txn_harness.run ?obs
        {
          s with
          Replication.Txn_harness.n_clients = clients;
          txns_per_client = txns;
          keys_per_txn = keys;
          loss_rate = loss;
          failures;
          seed;
        }
    in
    Format.printf "%s over %d replicas:@.%a@."
      (Arbitrary.Config.name_to_string name)
      n_replicas Replication.Txn_harness.pp_report report;
    obs_finish ()
  in
  Cmd.v
    (Cmd.info "txn"
       ~doc:
         "Run multi-key increment transactions (2PL + cross-key 2PC) and \
          check the conservation invariant.")
    Term.(
      const run $ config_arg $ n_arg $ clients_arg $ txns_arg $ keys_arg
      $ loss_arg $ mtbf_arg $ seed_arg $ metrics_json_arg $ spans_jsonl_arg)

(* --- trace ------------------------------------------------------------------ *)

let trace_cmd =
  let ops_arg =
    Arg.(value & opt int 3 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations to trace.")
  in
  let max_arg =
    Arg.(
      value & opt int 60
      & info [ "max" ] ~docv:"LINES" ~doc:"Trace lines to print (from the end).")
  in
  let run spec config n ops max_lines seed =
    or_fail @@ fun () ->
    let tree = tree_of ~spec ~config ~n in
    let proto = Arbitrary.Quorums.protocol tree in
    let n_replicas = Arbitrary.Tree.n tree in
    let engine = Dsim.Engine.create ~seed () in
    let net = Dsim.Network.create ~engine ~n:(n_replicas + 1) () in
    let trace = Dsim.Trace.create () in
    Dsim.Network.attach_trace net
      ~describe:(Format.asprintf "%a" Replication.Message.pp)
      trace;
    let _replicas =
      Array.init n_replicas (fun site -> Replication.Replica.create ~site ~net ())
    in
    let coord = Replication.Coordinator.create ~site:n_replicas ~net ~proto () in
    let rec go i =
      if i < ops then begin
        if i mod 2 = 0 then
          Replication.Coordinator.write coord ~key:(i / 2)
            ~value:(Printf.sprintf "v%d" i) (fun _ -> go (i + 1))
        else Replication.Coordinator.read coord ~key:(i / 2) (fun _ -> go (i + 1))
      end
    in
    go 0;
    Dsim.Engine.run engine;
    print_endline (Dsim.Trace.dump trace ~max:max_lines)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a few operations and dump the message-level trace.")
    Term.(const run $ spec_arg $ config_arg $ n_arg $ ops_arg $ max_arg $ seed_arg)

(* --- simulate ------------------------------------------------------------- *)

let simulate_cmd =
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"C" ~doc:"Client count.")
  in
  let ops_arg =
    Arg.(value & opt int 100 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per client.")
  in
  let read_fraction_arg =
    Arg.(
      value & opt float 0.5
      & info [ "read-fraction" ] ~docv:"F" ~doc:"Fraction of reads.")
  in
  let loss_arg =
    Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"L" ~doc:"Message loss rate.")
  in
  let mtbf_arg =
    Arg.(
      value & opt (some float) None
      & info [ "mtbf" ] ~docv:"T"
          ~doc:"Mean time between per-replica failures (enables churn).")
  in
  let mttr_arg =
    Arg.(
      value & opt float 30.0
      & info [ "mttr" ] ~docv:"T" ~doc:"Mean time to repair (with --mtbf).")
  in
  let preset_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "preset" ] ~docv:"NAME"
          ~doc:
            "Workload preset: update-heavy, read-mostly, read-only or \
             write-heavy (overrides --read-fraction).")
  in
  let batch_arg =
    Arg.(
      value & opt int 0
      & info [ "batch" ] ~docv:"B"
          ~doc:
            "Client ops per batch window (0 = classic one-op loop; 1 is \
             byte-identical to 0 by construction).")
  in
  let pipeline_arg =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ] ~docv:"P"
          ~doc:"Outstanding batch windows per client (with --batch).")
  in
  let group_commit_arg =
    Arg.(
      value & flag
      & info [ "group-commit" ]
          ~doc:
            "One WAL durability point per batch at the replicas (with \
             --batch).")
  in
  let pipeline_levels_arg =
    Arg.(
      value & flag
      & info [ "pipeline-levels" ]
          ~doc:
            "Dispatch tree-level read probes for all levels at once instead \
             of level by level (same results, fewer latency round trips).")
  in
  let run config n clients ops read_fraction loss mtbf mttr seed preset batch
      pipeline group_commit pipeline_levels shards strategy metrics_json
      spans_jsonl =
    let read_fraction, zipf_theta =
      match preset with
      | None -> (read_fraction, 0.0)
      | Some name -> (
        match Workload.Presets.by_name name with
        | Some p ->
          (p.Workload.Presets.read_fraction, p.Workload.Presets.zipf_theta)
        | None ->
          Format.eprintf "unknown preset %S; available: %s@." name
            (String.concat ", "
               (List.map (fun p -> p.Workload.Presets.name) Workload.Presets.all));
          exit 1)
    in
    let name = Option.value config ~default:Arbitrary.Config.Arbitrary in
    or_fail @@ fun () ->
    let proto = Eval.Config_metrics.protocol_of name ~n in
    let n_replicas = Quorum.Protocol.universe_size proto in
    (* Per-shard failure schedules draw from seed+1+shard, so shard 0 of a
       sharded run churns exactly like the unsharded run (seed+1) — the
       S=1 byte-identity carries through --mtbf. *)
    let failures_for shard =
      match mtbf with
      | None -> []
      | Some mtbf ->
        Dsim.Failure.random_crash_recovery
          ~rng:(Dsutil.Rng.create (seed + 1 + shard))
          ~n:n_replicas ~horizon:10_000.0 ~mtbf ~mttr
    in
    let s = Replication.Harness.default_scenario ~proto in
    let batching =
      if batch < 1 then None
      else
        Some
          {
            Replication.Harness.batch_size = batch;
            group_commit;
            pipeline = max 1 pipeline;
          }
    in
    let base =
      {
        s with
        Replication.Harness.n_clients = clients;
        ops_per_client = ops;
        read_fraction;
        zipf_theta;
        loss_rate = loss;
        seed;
        batching;
        coordinator =
          {
            s.Replication.Harness.coordinator with
            Replication.Coordinator.pipeline_levels;
          };
      }
    in
    let obs, obs_finish = obs_setup ~metrics_json ~spans_jsonl in
    let report, shard_summary =
      match shards with
      | None ->
        ( Replication.Harness.run ?obs
            { base with Replication.Harness.failures = failures_for 0 },
          None )
      | Some shards ->
        let sc =
          {
            (Replication.Shard_harness.default ~proto ~shards) with
            Replication.Shard_harness.base;
            strategy;
            shard_failures =
              (if mtbf = None then []
               else List.init shards (fun i -> (i, failures_for i)));
          }
        in
        let r = Replication.Shard_harness.run ?obs sc in
        (r.Replication.Shard_harness.agg, Some r)
    in
    Format.printf "%s over %d replicas:@.%a@."
      (Arbitrary.Config.name_to_string name)
      n_replicas Replication.Harness.pp_report report;
    if batch >= 1 then
      Format.printf "batching: batch=%d pipeline=%d batches=%d coalesced=%d wal syncs=%d@."
        batch (max 1 pipeline) report.Replication.Harness.batches
        report.Replication.Harness.coalesced_ops
        report.Replication.Harness.wal_syncs;
    (match shard_summary with
    | Some r when r.Replication.Shard_harness.shards > 1 ->
      Format.printf "@[<v>%a@]@." pp_shard_summary (strategy, r)
    | _ -> ());
    obs_finish ()
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run clients against the protocol on the simulated network.")
    Term.(
      const run $ config_arg $ n_arg $ clients_arg $ ops_arg $ read_fraction_arg
      $ loss_arg $ mtbf_arg $ mttr_arg $ seed_arg $ preset_arg $ batch_arg
      $ pipeline_arg $ group_commit_arg $ pipeline_levels_arg $ shards_arg
      $ shard_strategy_arg $ metrics_json_arg $ spans_jsonl_arg)

(* --- chaos ---------------------------------------------------------------- *)

let chaos_cmd =
  let clients_arg =
    Arg.(value & opt int 3 & info [ "clients" ] ~docv:"C" ~doc:"Client count.")
  in
  let ops_arg =
    Arg.(
      value & opt int 25
      & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per client.")
  in
  let horizon_arg =
    Arg.(
      value & opt float 3000.0
      & info [ "horizon" ] ~docv:"T" ~doc:"Simulation horizon (virtual time).")
  in
  let all_schedules =
    [
      Eval.Chaos.crashes_schedule; Eval.Chaos.partitions_schedule;
      Eval.Chaos.loss_schedule; Eval.Chaos.combined_schedule;
      Eval.Chaos.blackout_schedule;
    ]
  in
  let schedule_conv =
    let parse s =
      match
        List.find_opt
          (fun sc -> sc.Eval.Chaos.label = String.lowercase_ascii s)
          all_schedules
      with
      | Some sc -> Ok sc
      | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown schedule %S (crashes|partitions|loss|combined|blackout)"
               s))
    in
    let print ppf sc = Format.pp_print_string ppf sc.Eval.Chaos.label in
    Arg.conv (parse, print)
  in
  let schedule_arg =
    Arg.(
      value
      & opt schedule_conv Eval.Chaos.crashes_schedule
      & info [ "schedule" ] ~docv:"NAME"
          ~doc:
            "Failure schedule: $(b,crashes), $(b,partitions), $(b,loss), \
             $(b,combined) or $(b,blackout) (all replicas down at once).")
  in
  let crash_mode_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "failstop" -> Ok Dsim.Network.Fail_stop
      | "amnesia" -> Ok Dsim.Network.Amnesia
      | _ ->
        Error (`Msg (Printf.sprintf "unknown crash mode %S (failstop|amnesia)" s))
    in
    let print ppf m =
      Format.pp_print_string ppf
        (match m with
        | Dsim.Network.Fail_stop -> "failstop"
        | Dsim.Network.Amnesia -> "amnesia")
    in
    Arg.conv (parse, print)
  in
  let crash_mode_arg =
    Arg.(
      value
      & opt crash_mode_conv Dsim.Network.Fail_stop
      & info [ "crash-mode" ] ~docv:"MODE"
          ~doc:
            "What a crash destroys: $(b,failstop) (memory survives, the \
             paper's model) or $(b,amnesia) (volatile state lost; replicas \
             recover via WAL replay and quorum catch-up).")
  in
  let wal_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "commit" -> Ok `Commit
      | "prepare" -> Ok `Prepare
      | "async" -> Ok `Async
      | _ ->
        Error (`Msg (Printf.sprintf "unknown WAL policy %S (commit|prepare|async)" s))
    in
    let print ppf p =
      Format.pp_print_string ppf
        (match p with `Commit -> "commit" | `Prepare -> "prepare" | `Async -> "async")
    in
    Arg.conv (parse, print)
  in
  let wal_arg =
    Arg.(
      value & opt wal_conv `Commit
      & info [ "wal" ] ~docv:"POLICY"
          ~doc:
            "Stable-storage policy under amnesia: $(b,commit) (fsync on \
             commit), $(b,prepare) (fsync on prepare too) or $(b,async) \
             (background flush; a crash loses the un-flushed suffix).")
  in
  let wal_lag_arg =
    Arg.(
      value & opt float 60.0
      & info [ "wal-lag" ] ~docv:"T"
          ~doc:"Flush lag of the $(b,async) WAL policy (virtual time).")
  in
  let no_catch_up_arg =
    Arg.(
      value & flag
      & info [ "no-catch-up" ]
          ~doc:
            "Serve immediately after WAL replay without quorum catch-up \
             (the unsafe negative-control configuration).")
  in
  let check_consistency_arg =
    Arg.(
      value & flag
      & info [ "check-consistency" ]
          ~doc:
            "Collect every operation span and verify per-key regularity \
             offline; exit non-zero on any violation.")
  in
  let run config n clients ops seed horizon schedule crash_mode wal wal_lag
      no_catch_up check_consistency shards strategy =
    or_fail @@ fun () ->
    let name = Option.value config ~default:Arbitrary.Config.Arbitrary in
    let n = Eval.Config_metrics.feasible_n name n in
    let proto = Eval.Config_metrics.protocol_of name ~n in
    (* Shard s draws its schedule from seed+s: shard 0 of a sharded run
       fails exactly like the unsharded run. *)
    let entries_for shard =
      schedule.Eval.Chaos.entries ~rng:(Dsutil.Rng.create (seed + shard)) ~n
        ~horizon
    in
    let wal_policy =
      match wal with
      | `Commit -> Replication.Wal.Sync_on_commit
      | `Prepare -> Replication.Wal.Sync_on_prepare
      | `Async -> Replication.Wal.Async wal_lag
    in
    let catch_up = not no_catch_up in
    let s = Replication.Harness.default_scenario ~proto in
    let base =
      {
        s with
        Replication.Harness.n_clients = clients;
        ops_per_client = ops;
        read_fraction = 0.5;
        key_space = 8;
        think_time = 3.0;
        loss_rate = schedule.Eval.Chaos.loss_rate;
        seed;
        coordinator = Eval.Chaos.chaos_coordinator;
        horizon;
        warmup = 1.0;
        crash_mode;
        wal = wal_policy;
        catch_up;
        check_consistency;
      }
    in
    let report, shard_summary =
      match shards with
      | None ->
        ( Replication.Harness.run
            { base with Replication.Harness.failures = entries_for 0 },
          None )
      | Some shards ->
        let sc =
          {
            (Replication.Shard_harness.default ~proto ~shards) with
            Replication.Shard_harness.base;
            strategy;
            shard_failures = List.init shards (fun i -> (i, entries_for i));
          }
        in
        let r = Replication.Shard_harness.run sc in
        (r.Replication.Shard_harness.agg, Some r)
    in
    Format.printf "%s over %d replicas: schedule=%s crash-mode=%a wal=%a \
                   catch-up=%s@."
      (Arbitrary.Config.name_to_string name)
      n schedule.Eval.Chaos.label
      (Arg.conv_printer crash_mode_conv)
      crash_mode Replication.Wal.pp_policy wal_policy
      (if catch_up then "on" else "off");
    Format.printf "%a@." Replication.Harness.pp_report report;
    (match shard_summary with
    | Some r when r.Replication.Shard_harness.shards > 1 ->
      Format.printf "@[<v>%a@]@." pp_shard_summary (strategy, r)
    | _ -> ());
    if crash_mode = Dsim.Network.Amnesia then
      Format.printf
        "recovery: rejoins=%d keys-caught-up=%d abandoned=%d wal-replayed=%d \
         wal-lost=%d stale-rejected=%d stale-nacked=%d still-recovering=%d@."
        report.Replication.Harness.catchup_runs
        report.Replication.Harness.catchup_keys_installed
        report.Replication.Harness.catchup_abandoned
        report.Replication.Harness.wal_records_replayed
        report.Replication.Harness.wal_records_lost
        report.Replication.Harness.stale_incarnation_rejections
        report.Replication.Harness.stale_commits_nacked
        report.Replication.Harness.replicas_recovering;
    if check_consistency then begin
      let c = Eval.Consistency.check report.Replication.Harness.spans in
      Format.printf "consistency: %a@." Eval.Consistency.pp c;
      if not (Eval.Consistency.ok c) then begin
        Format.eprintf "replica-ctl: consistency violated@.";
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run one chaos cell: a failure schedule against the replication \
          stack, optionally with amnesia crash-recovery and offline \
          consistency checking.")
    Term.(
      const run $ config_arg $ n_arg $ clients_arg $ ops_arg $ seed_arg
      $ horizon_arg $ schedule_arg $ crash_mode_arg $ wal_arg $ wal_lag_arg
      $ no_catch_up_arg $ check_consistency_arg $ shards_arg
      $ shard_strategy_arg)

(* --- overload ------------------------------------------------------------- *)

let overload_cmd =
  let clients_arg =
    Arg.(
      value & opt int 12
      & info [ "clients" ] ~docv:"C" ~doc:"Steady client count.")
  in
  let ops_arg =
    Arg.(
      value & opt int 100
      & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per steady client.")
  in
  let horizon_arg =
    Arg.(
      value & opt float 4000.0
      & info [ "horizon" ] ~docv:"T" ~doc:"Simulation horizon (virtual time).")
  in
  let queue_capacity_arg =
    Arg.(
      value & opt int 0
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Bound on every replica's ingress queue (0 = unbounded).")
  in
  let service_time_arg =
    Arg.(
      value & opt float 4.0
      & info [ "service-time" ] ~docv:"S"
          ~doc:"Per-message replica service cost (what makes overload possible).")
  in
  let shed_watermark_arg =
    Arg.(
      value & opt int 0
      & info [ "shed-watermark" ] ~docv:"N"
          ~doc:
            "Queue depth above which replicas shed client work with a Busy \
             nack (0 = no shedding).")
  in
  let retry_budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "retry-budget" ] ~docv:"RATIO"
          ~doc:
            "Enable the global retry budget: tokens deposited per first \
             attempt (e.g. 0.1 caps retries at 10% of attempts).")
  in
  let breaker_arg =
    Arg.(
      value & flag
      & info [ "breaker" ]
          ~doc:
            "Enable the shared per-site circuit breaker that steers quorum \
             assembly away from overloaded replicas.")
  in
  let burst_clients_arg =
    Arg.(
      value & opt int 24
      & info [ "burst-clients" ] ~docv:"C"
          ~doc:"Flash-crowd size joining at a quarter of the horizon (0 = none).")
  in
  let burst_ops_arg =
    Arg.(
      value & opt int 20
      & info [ "burst-ops" ] ~docv:"OPS" ~doc:"Operations per burst client.")
  in
  let max_retries_arg =
    Arg.(
      value & opt int 10
      & info [ "max-retries" ] ~docv:"K" ~doc:"Client retry budget per operation.")
  in
  let run config n clients ops seed horizon queue_capacity service_time
      shed_watermark retry_budget breaker burst_clients burst_ops max_retries =
    or_fail @@ fun () ->
    let name = Option.value config ~default:Arbitrary.Config.Arbitrary in
    let n = Eval.Config_metrics.feasible_n name n in
    let proto = Eval.Config_metrics.protocol_of name ~n in
    let burst_at = horizon /. 4.0 in
    let overload =
      {
        Replication.Harness.queue_capacity;
        service_time;
        slow_sites = [];
        shed_watermark;
        retry_budget =
          Option.map
            (fun ratio -> { Detect.Budget.ratio; burst = 5.0 })
            retry_budget;
        breaker = (if breaker then Some Detect.Breaker.default_config else None);
        burst =
          (if burst_clients = 0 then None
           else
             Some
               {
                 Replication.Harness.burst_at;
                 burst_clients;
                 burst_ops;
                 burst_think = 1.0;
               });
      }
    in
    let s = Replication.Harness.default_scenario ~proto in
    let report =
      Replication.Harness.run
        {
          s with
          Replication.Harness.n_clients = clients;
          ops_per_client = ops;
          read_fraction = 0.8;
          key_space = 64;
          think_time = 50.0;
          seed;
          coordinator =
            {
              Replication.Coordinator.default_config with
              Replication.Coordinator.timeout = 30.0;
              max_retries;
              deadline = Float.infinity;
            };
          horizon;
          warmup = 1.0;
          overload = Some overload;
        }
    in
    Format.printf "%s over %d replicas: capacity=%d service=%.1f watermark=%d \
                   budget=%s breaker=%s burst=%d@."
      (Arbitrary.Config.name_to_string name)
      n queue_capacity service_time shed_watermark
      (match retry_budget with
      | None -> "off"
      | Some r -> Printf.sprintf "%.2f" r)
      (if breaker then "on" else "off")
      burst_clients;
    Format.printf "%a@." Replication.Harness.pp_report report;
    let goodput (t0, t1) =
      let hits =
        Array.fold_left
          (fun acc t -> if t >= t0 && t < t1 then acc + 1 else acc)
          0 report.Replication.Harness.completions
      in
      float_of_int hits /. (t1 -. t0)
    in
    let pre = goodput (horizon *. 0.05, burst_at)
    and post = goodput (horizon *. 0.65, horizon *. 0.95) in
    Format.printf
      "overload: sheds=%d busy=%d suppressed=%d drops=%d trips=%d peak-queue=%d@."
      report.Replication.Harness.replica_sheds
      report.Replication.Harness.busy_received
      report.Replication.Harness.retries_suppressed
      report.Replication.Harness.overload_drops
      report.Replication.Harness.breaker_trips
      report.Replication.Harness.queue_peak;
    Format.printf "goodput: pre-burst=%.3f post-burst=%.3f recovery=%.2f@." pre
      post
      (if pre > 0.0 then post /. pre else 0.0)
  in
  Cmd.v
    (Cmd.info "overload"
       ~doc:
         "Drive a flash crowd into the replication stack with a configurable \
          overload model: bounded replica queues, load shedding, a global \
          retry budget and a per-site circuit breaker.")
    Term.(
      const run $ config_arg $ n_arg $ clients_arg $ ops_arg $ seed_arg
      $ horizon_arg $ queue_capacity_arg $ service_time_arg
      $ shed_watermark_arg $ retry_budget_arg $ breaker_arg
      $ burst_clients_arg $ burst_ops_arg $ max_retries_arg)

(* --- membership: provision / promote / decommission ----------------------- *)

(* Shared driver: a Churn_harness run over config × n with a failure and
   membership script, printing the provisioning / membership counters and
   failing the process on any freshness violation. *)
let run_churn_cell ~name ~n ~clients ~ops ~seed ~horizon ~chunk_size ~fence
    ~failures ~membership =
  let n = Eval.Config_metrics.feasible_n name n in
  let proto = Eval.Config_metrics.protocol_of name ~n in
  let s = Replication.Churn_harness.default_scenario ~proto in
  let scenario =
    {
      s with
      Replication.Churn_harness.spares = 2;
      n_clients = clients;
      ops_per_client = ops;
      key_space = 8;
      think_time = 3.0;
      failures = failures ~n;
      membership = membership ~n;
      seed;
      coordinator = Eval.Chaos.chaos_coordinator;
      horizon;
      chunk_size;
      fence_provisioning = fence;
    }
  in
  (n, Replication.Churn_harness.run scenario)

let print_churn_report ~name ~n ~fence (r : Replication.Churn_harness.report) =
  let module Ch = Replication.Churn_harness in
  Format.printf "%s over %d replicas (+2 spares): fence=%s@."
    (Arbitrary.Config.name_to_string name)
    n
    (if fence then "on" else "off");
  Format.printf "clients: reads ok=%d failed=%d writes ok=%d failed=%d@."
    r.Ch.reads_ok r.Ch.reads_failed r.Ch.writes_ok r.Ch.writes_failed;
  Format.printf
    "provisioning: runs=%d chunks=%d resumes=%d donor-failovers=%d rounds=%d \
     stale=%d failed-rejoins=%d@."
    r.Ch.provision_runs r.Ch.provision_chunks r.Ch.provision_resumes
    r.Ch.provision_donor_failovers r.Ch.provision_rounds r.Ch.provision_stale
    r.Ch.failed_rejoins;
  Format.printf "membership: promotions=%d/%d decommissions=%d@."
    r.Ch.promotions_done r.Ch.promotions_started r.Ch.decommissions_done;
  Format.printf "status: [%s]@."
    (String.concat ";" (Array.to_list r.Ch.replica_status));
  Format.printf "violations: %d@." r.Ch.safety_violations;
  if r.Ch.safety_violations > 0 then begin
    Format.eprintf "replica-ctl: freshness violated under churn@.";
    exit 1
  end

let churn_clients_arg =
  Arg.(value & opt int 3 & info [ "clients" ] ~docv:"C" ~doc:"Client count.")

let churn_ops_arg =
  Arg.(
    value & opt int 25
    & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per client.")

let churn_horizon_arg =
  Arg.(
    value & opt float 3000.0
    & info [ "horizon" ] ~docv:"T" ~doc:"Simulation horizon (virtual time).")

let chunk_size_arg =
  Arg.(
    value & opt int 1
    & info [ "chunk-size" ] ~docv:"K"
        ~doc:"Keys per snapshot chunk of the provisioning transfer.")

let no_fence_arg =
  Arg.(
    value & flag
    & info [ "no-fence" ]
        ~doc:
          "Serve while provisioning instead of fencing until the WAL tail \
           lands (the unsafe negative-control configuration).")

let provision_cmd =
  let crash_donor_arg =
    Arg.(
      value & flag
      & info [ "crash-donor" ]
          ~doc:
            "Crash the rejoiner's donor mid-transfer, forcing a donor \
             failover with a resume from the last durable chunk mark.")
  in
  let crash_recipient_arg =
    Arg.(
      value & flag
      & info [ "crash-recipient" ]
          ~doc:
            "Crash the rejoiner again mid-transfer; it must resume from its \
             last durable chunk mark rather than refetch from chunk 0.")
  in
  let run config n clients ops seed horizon chunk_size no_fence crash_donor
      crash_recipient =
    or_fail @@ fun () ->
    let name = Option.value config ~default:Arbitrary.Config.Arbitrary in
    (* The rejoiner is the last occupant; its first donor pick is the
       lowest live occupant (site 0) — whom --crash-donor kills. *)
    let failures ~n =
      [
        { Dsim.Failure.time = 60.0; event = Dsim.Failure.Crash (n - 1) };
        { Dsim.Failure.time = 100.0; event = Dsim.Failure.Recover (n - 1) };
      ]
      @ (if crash_donor then
           [
             { Dsim.Failure.time = 103.0; event = Dsim.Failure.Crash 0 };
             { Dsim.Failure.time = 220.0; event = Dsim.Failure.Recover 0 };
           ]
         else [])
      @
      if crash_recipient then
        [
          { Dsim.Failure.time = 104.0; event = Dsim.Failure.Crash (n - 1) };
          { Dsim.Failure.time = 160.0; event = Dsim.Failure.Recover (n - 1) };
        ]
      else []
    in
    let n, report =
      run_churn_cell ~name ~n ~clients ~ops ~seed ~horizon ~chunk_size
        ~fence:(not no_fence) ~failures
        ~membership:(fun ~n:_ -> [])
    in
    print_churn_report ~name ~n ~fence:(not no_fence) report
  in
  Cmd.v
    (Cmd.info "provision"
       ~doc:
         "Crash a replica and rejoin it through chunked snapshot + WAL-tail \
          provisioning, optionally killing the donor or the recipient \
          mid-transfer to exercise failover and resume.")
    Term.(
      const run $ config_arg $ n_arg $ churn_clients_arg $ churn_ops_arg
      $ seed_arg $ churn_horizon_arg $ chunk_size_arg $ no_fence_arg
      $ crash_donor_arg $ crash_recipient_arg)

let position_arg =
  Arg.(
    value & opt int 1
    & info [ "position" ] ~docv:"P"
        ~doc:"Tree position whose occupant is replaced.")

let at_arg =
  Arg.(
    value & opt float 100.0
    & info [ "at" ] ~docv:"T" ~doc:"Virtual time the membership flow starts.")

let promote_cmd =
  let partition_arg =
    Arg.(
      value & flag
      & info [ "partition" ]
          ~doc:
            "Partition the spare away mid-bulk-transfer; the promotion \
             stalls and completes after the heal.")
  in
  let run config n clients ops seed horizon chunk_size position at partition =
    or_fail @@ fun () ->
    let name = Option.value config ~default:Arbitrary.Config.Arbitrary in
    let failures ~n =
      if partition then
        [
          { Dsim.Failure.time = at +. 3.0; event = Dsim.Failure.Partition [ [ n ] ] };
          { Dsim.Failure.time = at +. 100.0; event = Dsim.Failure.Heal };
        ]
      else []
    in
    let membership ~n =
      if position < 0 || position >= n then
        invalid_arg "promote: --position out of range";
      [ { Replication.Churn_harness.at; position; spare = n; fence = false } ]
    in
    let n, report =
      run_churn_cell ~name ~n ~clients ~ops ~seed ~horizon ~chunk_size
        ~fence:true ~failures ~membership
    in
    print_churn_report ~name ~n ~fence:true report
  in
  Cmd.v
    (Cmd.info "promote"
       ~doc:
         "Promote a spare site into a tree position while clients run: bulk \
          snapshot provisioning from the outgoing occupant, a locked fenced \
          delta, then the position flip.  The displaced occupant becomes a \
          re-promotable spare.")
    Term.(
      const run $ config_arg $ n_arg $ churn_clients_arg $ churn_ops_arg
      $ seed_arg $ churn_horizon_arg $ chunk_size_arg $ position_arg $ at_arg
      $ partition_arg)

let decommission_cmd =
  let run config n clients ops seed horizon chunk_size position at =
    or_fail @@ fun () ->
    let name = Option.value config ~default:Arbitrary.Config.Arbitrary in
    let membership ~n =
      if position < 0 || position >= n then
        invalid_arg "decommission: --position out of range";
      [ { Replication.Churn_harness.at; position; spare = n; fence = true } ]
    in
    let n, report =
      run_churn_cell ~name ~n ~clients ~ops ~seed ~horizon ~chunk_size
        ~fence:true ~failures:(fun ~n:_ -> []) ~membership
    in
    print_churn_report ~name ~n ~fence:true report
  in
  Cmd.v
    (Cmd.info "decommission"
       ~doc:
         "Drain-fence-remove a position's occupant: promote a spare into the \
          position and permanently fence the outgoing site (it nacks every \
          quorum role afterwards).")
    Term.(
      const run $ config_arg $ n_arg $ churn_clients_arg $ churn_ops_arg
      $ seed_arg $ churn_horizon_arg $ chunk_size_arg $ position_arg $ at_arg)

let () =
  let info =
    Cmd.info "replica-ctl" ~version:"1.0.0"
      ~doc:
        "Arbitrary tree-structured replica control: build trees, analyze \
         them, plan configurations, regenerate the paper's figures, and run \
         simulations."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            tree_cmd; analyze_cmd; quorums_cmd; plan_cmd; figures_cmd;
            simulate_cmd; txn_cmd; trace_cmd; chaos_cmd; overload_cmd;
            provision_cmd; promote_cmd; decommission_cmd;
          ]))
