(* Cross-module property tests: the paper's analytic claims checked against
   independent machinery (LP solver, exhaustive enumeration, Monte-Carlo,
   full protocol execution) over randomly generated trees. *)

module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Tree = Arbitrary.Tree
module Quorums = Arbitrary.Quorums
module Quorum_set = Quorum.Quorum_set

(* Small random trees: 1-3 physical levels of 1-4 replicas, optional
   logical root; m(R) stays small enough to enumerate and feed the LP. *)
let tree_gen =
  QCheck.Gen.(
    let* n_levels = int_range 1 3 in
    let* sizes = list_repeat n_levels (int_range 1 4) in
    let* logical_root = bool in
    return
      (Tree.create
         ((if logical_root then [ (0, 1) ] else [])
         @ List.map (fun s -> (s, 0)) sizes)))

let arb_tree = QCheck.make tree_gen ~print:Tree.to_spec

let read_set tree =
  Quorum_set.create ~universe:(Tree.n tree)
    (List.of_seq (Quorums.enumerate_read_quorums tree))

let write_set tree =
  Quorum_set.create ~universe:(Tree.n tree)
    (List.of_seq (Quorums.enumerate_write_quorums tree))

let prop_lp_load_matches_appendix =
  QCheck.Test.make
    ~name:"LP optimum = appendix closed forms (1/d reads, 1/|K_phy| writes)"
    ~count:40 arb_tree (fun tree ->
      let lp_read = Analysis.Load_lp.optimal_load (read_set tree) in
      let lp_write = Analysis.Load_lp.optimal_load (write_set tree) in
      abs_float (lp_read -. Arbitrary.Analysis.read_load tree) < 1e-6
      && abs_float (lp_write -. Arbitrary.Analysis.write_load tree) < 1e-6)

let prop_availability_matches_enumeration =
  QCheck.Test.make
    ~name:"closed-form availabilities = exhaustive pattern enumeration"
    ~count:25
    (QCheck.pair arb_tree (QCheck.int_range 50 90))
    (fun (tree, p100) ->
      let p = float_of_int p100 /. 100.0 in
      let n = Tree.n tree in
      QCheck.assume (n <= 10);
      let rng = Rng.create 7 in
      let exact_rd =
        Quorum.Availability.exact ~n ~p (fun ~alive ->
            Quorums.read_quorum tree ~alive ~rng <> None)
      in
      let exact_wr =
        Quorum.Availability.exact ~n ~p (fun ~alive ->
            Quorums.write_quorum tree ~alive ~rng <> None)
      in
      abs_float (exact_rd -. Arbitrary.Analysis.read_availability tree ~p) < 1e-9
      && abs_float (exact_wr -. Arbitrary.Analysis.write_availability tree ~p)
         < 1e-9)

let prop_witnesses_certify_loads =
  QCheck.Test.make
    ~name:"appendix lower-bound witnesses validate on random trees" ~count:40
    arb_tree (fun tree ->
      let n = Tree.n tree in
      (* Read witness: 1/d on each replica of a smallest physical level. *)
      let d = Tree.min_level_size tree in
      let smallest =
        List.find
          (fun k -> (Tree.level tree k).Tree.physical = d)
          (Tree.physical_levels tree)
      in
      let y_read = Array.make n 0.0 in
      Array.iter
        (fun i -> y_read.(i) <- 1.0 /. float_of_int d)
        (Tree.replicas_at tree smallest);
      (* Write witness: 1/|K_phy| on one replica per physical level. *)
      let k_phy = Tree.num_physical_levels tree in
      let y_write = Array.make n 0.0 in
      List.iter
        (fun k -> y_write.((Tree.replicas_at tree k).(0)) <- 1.0 /. float_of_int k_phy)
        (Tree.physical_levels tree);
      Analysis.Load_lp.check_witness (read_set tree) ~y:y_read
        ~load:(Arbitrary.Analysis.read_load tree)
      && Analysis.Load_lp.check_witness (write_set tree) ~y:y_write
           ~load:(Arbitrary.Analysis.write_load tree))

let prop_uniform_strategy_achieves_read_load =
  QCheck.Test.make
    ~name:"uniform read strategy induces load 1/d (upper-bound proof §6.1.1)"
    ~count:40 arb_tree (fun tree ->
      let qs = read_set tree in
      let w = Quorum.Strategy.uniform qs in
      abs_float
        (Quorum.Strategy.system_load qs w -. Arbitrary.Analysis.read_load tree)
      < 1e-9)

let prop_end_to_end_write_read =
  QCheck.Test.make
    ~name:"write then read returns the value on any random tree" ~count:20
    (QCheck.pair arb_tree (QCheck.int_bound 1000))
    (fun (tree, seed) ->
      let proto = Quorums.protocol tree in
      let n = Tree.n tree in
      let engine = Dsim.Engine.create ~seed () in
      let net = Dsim.Network.create ~engine ~n:(n + 1) () in
      let _replicas =
        Array.init n (fun site -> Replication.Replica.create ~site ~net ())
      in
      let coord = Replication.Coordinator.create ~site:n ~net ~proto () in
      let result = ref None in
      Replication.Coordinator.write coord ~key:0 ~value:"prop" (fun _ ->
          Replication.Coordinator.read coord ~key:0 (fun r -> result := r));
      Dsim.Engine.run engine;
      match !result with
      | Some { Replication.Coordinator.value; _ } -> value = "prop"
      | None -> false)

let prop_reconfig_preserves_values =
  QCheck.Test.make ~name:"migration between random shapes preserves values"
    ~count:15
    (QCheck.triple arb_tree arb_tree (QCheck.int_bound 1000))
    (fun (tree_a, tree_b, seed) ->
      QCheck.assume (Tree.n tree_a = Tree.n tree_b);
      let n = Tree.n tree_a in
      let engine = Dsim.Engine.create ~seed () in
      let net = Dsim.Network.create ~engine ~n:(n + 2) () in
      let _replicas =
        Array.init n (fun site -> Replication.Replica.create ~site ~net ())
      in
      let locks = Replication.Lock_manager.create ~engine in
      let coord =
        Replication.Coordinator.create ~site:n ~net
          ~proto:(Quorums.protocol tree_a) ~locks ()
      in
      let rpc =
        Replication.Quorum_rpc.create ~site:(n + 1) ~net
          ~proto:(Quorums.protocol tree_a) ()
      in
      let ok = ref true in
      Replication.Coordinator.write coord ~key:0 ~value:"before" (fun r ->
          if r = None then ok := false
          else
            Replication.Reconfig.migrate ~rpc ~locks
              ~new_proto:(Quorums.protocol tree_b) ~key_space:2
              ~on_switch:(fun () ->
                Replication.Coordinator.set_protocol coord (Quorums.protocol tree_b))
              (fun result ->
                if result.Replication.Reconfig.failed <> [] then ok := false
                else
                  Replication.Coordinator.read coord ~key:0 (fun r ->
                      match r with
                      | Some { Replication.Coordinator.value; _ } ->
                        if value <> "before" then ok := false
                      | None -> ok := false)));
      Dsim.Engine.run engine;
      !ok)

let prop_num_quorums_formulas =
  QCheck.Test.make ~name:"m(R), m(W) formulas vs enumeration (larger trees)"
    ~count:40
    (QCheck.make
       QCheck.Gen.(
         let* n_levels = int_range 1 4 in
         let* sizes = list_repeat n_levels (int_range 1 5) in
         return (Tree.create ((0, 1) :: List.map (fun s -> (s, 0)) sizes)))
       ~print:Tree.to_spec)
    (fun tree ->
      let m_r = Seq.length (Quorums.enumerate_read_quorums tree) in
      let m_w = Seq.length (Quorums.enumerate_write_quorums tree) in
      float_of_int m_r = Arbitrary.Analysis.num_read_quorums tree
      && m_w = Arbitrary.Analysis.num_write_quorums tree)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_lp_load_matches_appendix;
    QCheck_alcotest.to_alcotest prop_availability_matches_enumeration;
    QCheck_alcotest.to_alcotest prop_witnesses_certify_loads;
    QCheck_alcotest.to_alcotest prop_uniform_strategy_achieves_read_load;
    QCheck_alcotest.to_alcotest prop_end_to_end_write_read;
    QCheck_alcotest.to_alcotest prop_reconfig_preserves_values;
    QCheck_alcotest.to_alcotest prop_num_quorums_formulas;
  ]
