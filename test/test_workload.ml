module Zipf = Workload.Zipf
module Generator = Workload.Generator
module Rng = Dsutil.Rng

let test_zipf_uniform () =
  let z = Zipf.create ~n:4 ~theta:0.0 in
  for i = 0 to 3 do
    Alcotest.(check bool) "uniform pmf" true (abs_float (Zipf.pmf z i -. 0.25) < 1e-9)
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:100 ~theta:1.0 in
  Alcotest.(check bool) "head heavier than tail" true
    (Zipf.pmf z 0 > 10.0 *. Zipf.pmf z 99);
  let total = ref 0.0 in
  for i = 0 to 99 do
    total := !total +. Zipf.pmf z i
  done;
  Alcotest.(check bool) "pmf sums to 1" true (abs_float (!total -. 1.0) < 1e-9)

let test_zipf_sampling_matches_pmf () =
  let z = Zipf.create ~n:10 ~theta:0.9 in
  let rng = Rng.create 61 in
  let counts = Array.make 10 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  for i = 0 to 9 do
    let observed = float_of_int counts.(i) /. float_of_int trials in
    Alcotest.(check bool)
      (Printf.sprintf "key %d frequency" i)
      true
      (abs_float (observed -. Zipf.pmf z i) < 0.01)
  done

let test_zipf_validation () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: need at least one key")
    (fun () -> ignore (Zipf.create ~n:0 ~theta:1.0));
  Alcotest.check_raises "theta" (Invalid_argument "Zipf.create: theta out of [0,2]")
    (fun () -> ignore (Zipf.create ~n:5 ~theta:3.0))

let test_generator_mix () =
  let gen =
    Generator.create ~rng:(Rng.create 67) ~read_fraction:0.7 ~key_space:4 ()
  in
  let reads = ref 0 and writes = ref 0 in
  for _ = 1 to 50_000 do
    match Generator.next gen with
    | Generator.Read _ -> incr reads
    | Generator.Write _ -> incr writes
  done;
  let frac = float_of_int !reads /. 50_000.0 in
  Alcotest.(check bool) "read fraction respected" true (abs_float (frac -. 0.7) < 0.01)

let test_generator_payload_unique () =
  let gen =
    Generator.create ~rng:(Rng.create 71) ~read_fraction:0.0 ~key_space:2 ()
  in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 1000 do
    match Generator.next gen with
    | Generator.Write (_, payload) ->
      Alcotest.(check bool) "unique payload" false (Hashtbl.mem seen payload);
      Hashtbl.replace seen payload ()
    | Generator.Read _ -> Alcotest.fail "read_fraction 0 yields writes only"
  done

let test_generator_keys_in_range () =
  let gen =
    Generator.create ~rng:(Rng.create 73) ~read_fraction:0.5 ~key_space:3 ()
  in
  for _ = 1 to 1000 do
    let key =
      match Generator.next gen with
      | Generator.Read k | Generator.Write (k, _) -> k
    in
    Alcotest.(check bool) "in range" true (key >= 0 && key < 3)
  done

let test_generator_validation () =
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Generator.create: read_fraction out of [0,1]") (fun () ->
      ignore (Generator.create ~rng:(Rng.create 1) ~read_fraction:1.5 ~key_space:2 ()))

let suite =
  [
    Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf sampling matches pmf" `Quick
      test_zipf_sampling_matches_pmf;
    Alcotest.test_case "zipf validation" `Quick test_zipf_validation;
    Alcotest.test_case "generator mix" `Quick test_generator_mix;
    Alcotest.test_case "generator payload uniqueness" `Quick
      test_generator_payload_unique;
    Alcotest.test_case "generator keys in range" `Quick test_generator_keys_in_range;
    Alcotest.test_case "generator validation" `Quick test_generator_validation;
  ]
