module Tree = Arbitrary.Tree
module Load_lp = Analysis.Load_lp
module Analysis = Arbitrary.Analysis
module Quorums = Arbitrary.Quorums
module Availability = Quorum.Availability
module Protocol = Quorum.Protocol
module Rng = Dsutil.Rng

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps
let fig1 = Tree.figure1 ()

let test_costs () =
  Alcotest.(check int) "RD_cost = |K_phy|" 2 (Analysis.read_cost fig1);
  Alcotest.(check int) "min write cost d" 3 (Analysis.write_cost_min fig1);
  Alcotest.(check int) "max write cost e" 5 (Analysis.write_cost_max fig1);
  Alcotest.(check bool) "avg write cost n/|K_phy|" true
    (feq (Analysis.write_cost_avg fig1) 4.0)

let test_quorum_counts () =
  Alcotest.(check bool) "m(R)=15" true (feq (Analysis.num_read_quorums fig1) 15.0);
  Alcotest.(check int) "m(W)=2" 2 (Analysis.num_write_quorums fig1)

let test_availability_formulas () =
  let p = 0.7 in
  (* RD: (1-0.3^3)(1-0.3^5); WR_fail: (1-0.7^3)(1-0.7^5) *)
  Alcotest.(check bool) "read availability" true
    (feq (Analysis.read_availability fig1 ~p)
       ((1.0 -. (0.3 ** 3.0)) *. (1.0 -. (0.3 ** 5.0))));
  Alcotest.(check bool) "write fail" true
    (feq (Analysis.write_fail fig1 ~p)
       ((1.0 -. (0.7 ** 3.0)) *. (1.0 -. (0.7 ** 5.0))));
  Alcotest.(check bool) "complement" true
    (feq (Analysis.write_availability fig1 ~p) (1.0 -. Analysis.write_fail fig1 ~p))

let test_availability_vs_exact_enumeration () =
  let rng = Rng.create 3 in
  List.iter
    (fun p ->
      let exact_rd =
        Availability.exact ~n:8 ~p (fun ~alive ->
            Quorums.read_quorum fig1 ~alive ~rng <> None)
      in
      let exact_wr =
        Availability.exact ~n:8 ~p (fun ~alive ->
            Quorums.write_quorum fig1 ~alive ~rng <> None)
      in
      Alcotest.(check bool) "read closed form = enumeration" true
        (feq ~eps:1e-9 exact_rd (Analysis.read_availability fig1 ~p));
      Alcotest.(check bool) "write closed form = enumeration" true
        (feq ~eps:1e-9 exact_wr (Analysis.write_availability fig1 ~p)))
    [ 0.5; 0.7; 0.9 ]

let test_write_operation_availability_vs_exact () =
  let rng = Rng.create 5 in
  List.iter
    (fun p ->
      let exact =
        Availability.exact ~n:8 ~p (fun ~alive ->
            Quorums.read_quorum fig1 ~alive ~rng <> None
            && Quorums.write_quorum fig1 ~alive ~rng <> None)
      in
      Alcotest.(check bool)
        (Printf.sprintf "combined availability p=%.1f" p)
        true
        (feq ~eps:1e-9 exact (Analysis.write_operation_availability fig1 ~p)))
    [ 0.5; 0.7; 0.9 ]

let test_per_site_availability () =
  (* Constant p must reduce to the uniform formulas. *)
  let p = 0.7 in
  Alcotest.(check bool) "reduces to uniform (read)" true
    (feq
       (Analysis.read_availability_per_site fig1 ~p:(fun _ -> p))
       (Analysis.read_availability fig1 ~p));
  Alcotest.(check bool) "reduces to uniform (write)" true
    (feq
       (Analysis.write_availability_per_site fig1 ~p:(fun _ -> p))
       (Analysis.write_availability fig1 ~p));
  (* Heterogeneous case against exact enumeration. *)
  let p_of i = 0.5 +. (0.05 *. float_of_int i) in
  let rng = Rng.create 13 in
  let exact_rd =
    Availability.exact_hetero ~n:8 ~p:p_of (fun ~alive ->
        Quorums.read_quorum fig1 ~alive ~rng <> None)
  in
  let exact_wr =
    Availability.exact_hetero ~n:8 ~p:p_of (fun ~alive ->
        Quorums.write_quorum fig1 ~alive ~rng <> None)
  in
  Alcotest.(check bool) "hetero read matches enumeration" true
    (feq ~eps:1e-9 exact_rd (Analysis.read_availability_per_site fig1 ~p:p_of));
  Alcotest.(check bool) "hetero write matches enumeration" true
    (feq ~eps:1e-9 exact_wr (Analysis.write_availability_per_site fig1 ~p:p_of));
  (* Placement matters: reliable replicas on the small level beat the
     reverse placement for reads (the small level is the read
     bottleneck). *)
  let good i = if Tree.level_of_replica fig1 i = 1 then 0.95 else 0.6 in
  let bad i = if Tree.level_of_replica fig1 i = 1 then 0.6 else 0.95 in
  Alcotest.(check bool) "reliable small level helps reads" true
    (Analysis.read_availability_per_site fig1 ~p:good
    > Analysis.read_availability_per_site fig1 ~p:bad)

let test_resilience () =
  Alcotest.(check int) "read resilience = d" 3 (Analysis.read_resilience fig1);
  Alcotest.(check int) "write resilience = |K_phy|" 2
    (Analysis.write_resilience fig1);
  (* Witness: killing d replicas of the smallest level blocks reads. *)
  let rng = Rng.create 17 in
  let alive = Dsutil.Bitset.of_list 8 [ 3; 4; 5; 6; 7 ] in
  Alcotest.(check bool) "d crashes block reads" true
    (Quorums.read_quorum fig1 ~alive ~rng = None);
  (* And one crash per level blocks writes. *)
  let alive2 = Dsutil.Bitset.of_list 8 [ 1; 2; 4; 5; 6; 7 ] in
  Alcotest.(check bool) "|K_phy| crashes block writes" true
    (Quorums.write_quorum fig1 ~alive:alive2 ~rng = None)

let test_loads () =
  Alcotest.(check bool) "L_RD = 1/d" true (feq (Analysis.read_load fig1) (1.0 /. 3.0));
  Alcotest.(check bool) "L_WR = 1/|K_phy|" true (feq (Analysis.write_load fig1) 0.5)

let test_section_3_4_example () =
  (* Every number of the worked example, to the paper's printed
     precision. *)
  let s = Analysis.summarize fig1 ~p:0.7 in
  Alcotest.(check int) "RD_cost" 2 s.Analysis.rd_cost;
  Alcotest.(check bool) "RD_avail ~ 0.97" true
    (abs_float (s.Analysis.rd_availability -. 0.97) < 0.005);
  Alcotest.(check bool) "L_RD = 1/3" true (feq s.Analysis.rd_load (1.0 /. 3.0));
  Alcotest.(check bool) "WR_cost = 4" true (feq s.Analysis.wr_cost_avg 4.0);
  Alcotest.(check bool) "WR_avail ~ 0.45" true
    (abs_float (s.Analysis.wr_availability -. 0.45) < 0.005);
  Alcotest.(check bool) "L_WR = 1/2" true (feq s.Analysis.wr_load 0.5);
  Alcotest.(check bool) "E[L_RD] ~ 0.35" true
    (abs_float (s.Analysis.expected_rd_load -. 0.35) < 0.005);
  Alcotest.(check bool) "E[L_WR] ~ 0.775" true
    (abs_float (s.Analysis.expected_wr_load -. 0.775) < 0.005)

let test_load_optimality_via_lp () =
  (* Appendix §6: the analytic loads are optimal.  Verify against the LP
     optimum on several trees. *)
  List.iter
    (fun spec ->
      let tree = Tree.of_spec spec in
      let reads =
        Quorum.Quorum_set.create ~universe:(Tree.n tree)
          (List.of_seq (Quorums.enumerate_read_quorums tree))
      in
      let writes =
        Quorum.Quorum_set.create ~universe:(Tree.n tree)
          (List.of_seq (Quorums.enumerate_write_quorums tree))
      in
      Alcotest.(check bool)
        (spec ^ ": LP read load = 1/d")
        true
        (feq ~eps:1e-6 (Load_lp.optimal_load reads)
           (Arbitrary.Analysis.read_load tree));
      Alcotest.(check bool)
        (spec ^ ": LP write load = 1/|K_phy|")
        true
        (feq ~eps:1e-6 (Load_lp.optimal_load writes)
           (Arbitrary.Analysis.write_load tree)))
    [ "1-3-5"; "2-3-4"; "1-2-2-3"; "4"; "1-4-4-4" ]

let test_lower_bound_witnesses () =
  (* The appendix's Proposition-2.1 certificates, verified mechanically:
     reads put weight 1/d on the smallest level, writes 1/|K_phy| on one
     replica per level. *)
  let tree = fig1 in
  let n = Tree.n tree in
  let reads =
    Quorum.Quorum_set.create ~universe:n
      (List.of_seq (Quorums.enumerate_read_quorums tree))
  in
  let writes =
    Quorum.Quorum_set.create ~universe:n
      (List.of_seq (Quorums.enumerate_write_quorums tree))
  in
  (* Read witness: level 1 has d = 3 replicas (sites 0,1,2). *)
  let y_read = Array.make n 0.0 in
  Array.iter (fun i -> y_read.(i) <- 1.0 /. 3.0) (Tree.replicas_at tree 1);
  Alcotest.(check bool) "read witness validates" true
    (Load_lp.check_witness reads ~y:y_read ~load:(1.0 /. 3.0));
  (* Write witness: one replica from each physical level. *)
  let y_write = Array.make n 0.0 in
  y_write.(0) <- 0.5;
  y_write.(3) <- 0.5;
  Alcotest.(check bool) "write witness validates" true
    (Load_lp.check_witness writes ~y:y_write ~load:0.5)

let test_limits () =
  (* §3.3 limit formulas at p=0.7 against a very large Algorithm-1 tree. *)
  let big = Arbitrary.Config.algorithm1 ~n:100_000 in
  List.iter
    (fun p ->
      Alcotest.(check bool) "read limit" true
        (abs_float
           (Analysis.limit_read_availability ~p
           -. Analysis.read_availability big ~p)
        < 1e-6);
      Alcotest.(check bool) "write limit" true
        (abs_float
           (Analysis.limit_write_availability ~p
           -. Analysis.write_availability big ~p)
        < 1e-6))
    [ 0.55; 0.7; 0.85 ]

let test_monotonicity_in_levels () =
  (* §3.3 trade-off: more physical levels -> lower write load/cost, higher
     read cost. *)
  let n = 60 in
  let prev_wr = ref infinity and prev_rd = ref 0.0 in
  List.iter
    (fun levels ->
      let t = Arbitrary.Config.even_levels ~n ~levels in
      let wr = Analysis.write_load t in
      let rd = float_of_int (Analysis.read_cost t) in
      Alcotest.(check bool) "write load decreases" true (wr <= !prev_wr);
      Alcotest.(check bool) "read cost increases" true (rd >= !prev_rd);
      prev_wr := wr;
      prev_rd := rd)
    [ 1; 2; 3; 5; 6; 10; 15; 30 ]

let suite =
  [
    Alcotest.test_case "costs" `Quick test_costs;
    Alcotest.test_case "quorum counts" `Quick test_quorum_counts;
    Alcotest.test_case "availability formulas" `Quick test_availability_formulas;
    Alcotest.test_case "availability vs exact enumeration" `Quick
      test_availability_vs_exact_enumeration;
    Alcotest.test_case "write operation availability vs exact" `Quick
      test_write_operation_availability_vs_exact;
    Alcotest.test_case "per-site availability" `Quick test_per_site_availability;
    Alcotest.test_case "resilience" `Quick test_resilience;
    Alcotest.test_case "loads" `Quick test_loads;
    Alcotest.test_case "§3.4 worked example" `Quick test_section_3_4_example;
    Alcotest.test_case "load optimality via LP (appendix §6)" `Quick
      test_load_optimality_via_lp;
    Alcotest.test_case "lower-bound witnesses (Prop 2.1)" `Quick
      test_lower_bound_witnesses;
    Alcotest.test_case "limit availabilities (§3.3)" `Quick test_limits;
    Alcotest.test_case "trade-off monotonicity (§3.3)" `Quick
      test_monotonicity_in_levels;
  ]
