(* The observability layer: registry semantics, span lifecycle (including
   retries and timed-out phases), sink plumbing, and end-to-end accounting
   when attached to a harness run. *)

module Metrics = Obs.Metrics
module Span = Obs.Span
module Sink = Obs.Sink

(* --- metrics registry ----------------------------------------------------- *)

let test_counter_get_or_create () =
  let m = Metrics.create () in
  let a = Metrics.counter m "net.sent" in
  let b = Metrics.counter m "net.sent" in
  Metrics.incr a;
  Metrics.add b 4;
  Alcotest.(check int) "shared state" 5 (Metrics.counter_value a);
  Alcotest.(check int) "by name" 5 (Metrics.counter_of m "net.sent");
  Alcotest.(check int) "absent reads 0" 0 (Metrics.counter_of m "no.such")

let test_gauge_and_histogram () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "queue.depth" in
  Metrics.set g 3.0;
  Metrics.set g 7.0;
  Alcotest.(check (float 1e-9)) "gauge keeps last" 7.0 (Metrics.gauge_value g);
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  let s = Metrics.summary h in
  Alcotest.(check int) "summary count" 4 (Dsutil.Stats.count s);
  Alcotest.(check (float 1e-9)) "summary mean" 2.5 (Dsutil.Stats.mean s);
  Alcotest.(check int) "bucketed too" 4 (Dsutil.Histogram.count (Metrics.buckets h))

let test_enumeration_sorted () =
  let m = Metrics.create () in
  List.iter (fun n -> ignore (Metrics.counter m n)) [ "z"; "a"; "m" ];
  let names = List.map fst (Metrics.counters m) in
  Alcotest.(check (list string)) "sorted" [ "a"; "m"; "z" ] names

(* --- span lifecycle -------------------------------------------------------- *)

(* A hand-cranked clock so phase times are exact. *)
let manual_obs () =
  let now = ref 0.0 in
  let obs = Obs.create ~clock:(fun () -> !now) () in
  (obs, now)

let test_span_happy_path () =
  let obs, now = manual_obs () in
  let mem = Sink.memory () in
  Obs.add_sink obs (Sink.memory_sink mem);
  let sp = Obs.span obs ~op:"read" ~site:7 ~key:3 () in
  Obs.phase obs sp ~kind:Span.Query ~quorum:[ 1; 2; 3 ] ();
  now := 2.0;
  Obs.end_phase obs sp ();
  now := 2.5;
  Obs.finish obs sp ~outcome:Span.Ok;
  let m = Obs.metrics obs in
  Alcotest.(check int) "started" 1 (Metrics.counter_of m "ops.read.started");
  Alcotest.(check int) "ok" 1 (Metrics.counter_of m "ops.read.ok");
  Alcotest.(check int) "no failures" 0 (Metrics.counter_of m "ops.read.failed");
  Alcotest.(check bool) "closed" true (Span.closed sp);
  Alcotest.(check (option (float 1e-9))) "duration" (Some 2.5) (Span.duration sp);
  (match Span.phases sp with
  | [ ph ] ->
    Alcotest.(check (list int)) "quorum" [ 1; 2; 3 ] ph.Span.quorum;
    Alcotest.(check (option (float 1e-9))) "phase latency" (Some 2.0)
      (Span.phase_duration ph);
    Alcotest.(check bool) "not timed out" false ph.Span.timed_out
  | phs -> Alcotest.failf "expected 1 phase, got %d" (List.length phs));
  Alcotest.(check int) "sink got it" 1 (Sink.memory_count mem)

let test_retry_closes_phase_timed_out () =
  let obs, now = manual_obs () in
  let sp = Obs.span obs ~op:"write" ~site:0 () in
  Obs.phase obs sp ~kind:Span.Prepare ~quorum:[ 0; 1 ] ();
  now := 5.0;
  (* The attempt times out: the retry must close the open phase as timed
     out even though no explicit end_phase ran. *)
  Obs.retry obs sp ~backoff:1.5 ();
  Obs.phase obs sp ~kind:Span.Prepare ~quorum:[ 0; 2 ] ();
  now := 8.0;
  Obs.finish obs sp ~outcome:Span.Ok;
  Alcotest.(check int) "attempts" 2 sp.Span.attempts;
  Alcotest.(check int) "retries" 1 (Span.retries sp);
  Alcotest.(check (float 1e-9)) "backoff" 1.5 sp.Span.backoff_total;
  (match Span.phases sp with
  | [ p1; p2 ] ->
    Alcotest.(check bool) "first timed out" true p1.Span.timed_out;
    Alcotest.(check (option (float 1e-9))) "first still closed" (Some 5.0)
      (Span.phase_duration p1);
    Alcotest.(check bool) "second clean" false p2.Span.timed_out;
    Alcotest.(check bool) "second closed by finish" true
      (p2.Span.p_ended <> None)
  | phs -> Alcotest.failf "expected 2 phases, got %d" (List.length phs));
  let m = Obs.metrics obs in
  Alcotest.(check int) "retry counter" 1 (Metrics.counter_of m "ops.write.retries");
  Alcotest.(check int) "phase timeout counter" 1
    (Metrics.counter_of m "phase.prepare.timeout")

let test_explicit_timeout_and_auto_close () =
  let obs, _now = manual_obs () in
  let sp = Obs.span obs ~op:"read" ~site:1 () in
  Obs.phase obs sp ~kind:Span.Query ();
  Obs.set_quorum obs sp [ 4; 5 ];
  Obs.end_phase obs sp ~timed_out:true ();
  (* end_phase with nothing open is a no-op, not an error. *)
  Obs.end_phase obs sp ();
  (* Opening a phase atop an open one closes the old one cleanly. *)
  Obs.phase obs sp ~kind:Span.Query ();
  Obs.phase obs sp ~kind:Span.Commit ();
  Obs.finish obs sp ~outcome:(Span.Failed "gave_up");
  (match Span.phases sp with
  | [ p1; p2; p3 ] ->
    Alcotest.(check bool) "timed out recorded" true p1.Span.timed_out;
    Alcotest.(check (list int)) "set_quorum landed" [ 4; 5 ] p1.Span.quorum;
    Alcotest.(check bool) "auto-closed" true (p2.Span.p_ended <> None);
    Alcotest.(check bool) "auto-close is not a timeout" false p2.Span.timed_out;
    Alcotest.(check bool) "last closed by finish" true (p3.Span.p_ended <> None)
  | phs -> Alcotest.failf "expected 3 phases, got %d" (List.length phs));
  let m = Obs.metrics obs in
  Alcotest.(check int) "failed counter" 1 (Metrics.counter_of m "ops.read.failed")

let test_finish_idempotent_and_accounting () =
  let obs, _ = manual_obs () in
  let mem = Sink.memory () in
  Obs.add_sink obs (Sink.memory_sink mem);
  let a = Obs.span obs ~op:"read" ~site:0 () in
  let b = Obs.span obs ~op:"read" ~site:1 () in
  Alcotest.(check int) "two started" 2 (Obs.spans_started obs);
  Alcotest.(check int) "two open" 2 (Obs.spans_open obs);
  Obs.finish obs a ~outcome:Span.Ok;
  Obs.finish obs a ~outcome:(Span.Failed "again");
  Alcotest.(check int) "double finish emits once" 1 (Sink.memory_count mem);
  Alcotest.(check (option (of_pp Fmt.nop))) "outcome unchanged"
    (Some Span.Ok) a.Span.outcome;
  Alcotest.(check int) "ok counted once" 1
    (Metrics.counter_of (Obs.metrics obs) "ops.read.ok");
  Obs.finish obs b ~outcome:Span.Ok;
  Alcotest.(check int) "all closed" 2 (Obs.spans_closed obs);
  Alcotest.(check int) "none open" 0 (Obs.spans_open obs)

(* --- JSON / sinks ---------------------------------------------------------- *)

let test_span_json () =
  let obs, now = manual_obs () in
  let sp = Obs.span obs ~op:"write" ~site:2 ~key:9 () in
  Obs.phase obs sp ~kind:Span.Prepare ~quorum:[ 0; 3 ] ();
  let open_json = Span.to_json sp in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "open span has null ended" true
    (contains open_json "\"ended\":null");
  now := 3.0;
  Obs.finish obs sp ~outcome:Span.Ok;
  let j = Span.to_json sp in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "has %s" frag) true (contains j frag))
    [
      "\"op\":\"write\""; "\"site\":2"; "\"key\":9"; "\"outcome\":\"ok\"";
      "\"phase\":\"prepare\""; "\"quorum\":[0,3]"; "\"ended\":3";
    ];
  let no_key = Obs.span obs ~op:"read" ~site:0 () in
  Obs.finish obs no_key ~outcome:(Span.Failed "boom");
  let j2 = Span.to_json no_key in
  Alcotest.(check bool) "key omitted" false (contains j2 "\"key\"");
  Alcotest.(check bool) "reason present" true (contains j2 "\"reason\":\"boom\"")

let test_jsonl_sink_round_trip () =
  let obs, _ = manual_obs () in
  let buf = Buffer.create 256 in
  Obs.add_sink obs (Sink.jsonl (Buffer.add_string buf));
  let spans =
    List.map
      (fun i ->
        let sp = Obs.span obs ~op:"read" ~site:i () in
        Obs.finish obs sp ~outcome:Span.Ok;
        sp)
      [ 0; 1; 2 ]
  in
  let expected =
    String.concat "" (List.map (fun sp -> Span.to_json sp ^ "\n") spans)
  in
  Alcotest.(check string) "jsonl = one to_json line per span" expected
    (Buffer.contents buf);
  Alcotest.(check int) "three lines" 3
    (String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0
       (Buffer.contents buf))

(* --- harness integration --------------------------------------------------- *)

let scenario () =
  let proto =
    Eval.Config_metrics.protocol_of Arbitrary.Config.Arbitrary ~n:15
  in
  let s = Replication.Harness.default_scenario ~proto in
  { s with Replication.Harness.n_clients = 2; ops_per_client = 20; seed = 11 }

let test_harness_accounting () =
  let obs = Obs.create () in
  let report = Replication.Harness.run ~obs (scenario ()) in
  let m = Obs.metrics obs in
  Alcotest.(check int) "no span leaks" 0 (Obs.spans_open obs);
  Alcotest.(check int) "closed = started" (Obs.spans_started obs)
    (Obs.spans_closed obs);
  let ops =
    report.Replication.Harness.reads_ok + report.Replication.Harness.reads_failed
    + report.Replication.Harness.writes_ok
    + report.Replication.Harness.writes_failed
  in
  Alcotest.(check int) "one span per client op" ops (Obs.spans_started obs);
  Alcotest.(check int) "ok reads mirrored" report.Replication.Harness.reads_ok
    (Metrics.counter_of m "ops.read.ok");
  Alcotest.(check int) "ok writes mirrored" report.Replication.Harness.writes_ok
    (Metrics.counter_of m "ops.write.ok");
  Alcotest.(check int) "net.sent mirrors report"
    report.Replication.Harness.messages_sent
    (Metrics.counter_of m "net.sent");
  Alcotest.(check int) "net.delivered mirrors report"
    report.Replication.Harness.messages_delivered
    (Metrics.counter_of m "net.delivered")

let test_attach_does_not_perturb () =
  let plain = Replication.Harness.run (scenario ()) in
  let obs = Obs.create () in
  let observed = Replication.Harness.run ~obs (scenario ()) in
  let open Replication.Harness in
  Alcotest.(check int) "reads_ok" plain.reads_ok observed.reads_ok;
  Alcotest.(check int) "writes_ok" plain.writes_ok observed.writes_ok;
  Alcotest.(check int) "retries" plain.retries observed.retries;
  Alcotest.(check int) "messages" plain.messages_sent observed.messages_sent;
  Alcotest.(check (float 1e-9)) "duration" plain.duration observed.duration

let test_metrics_json_export () =
  let obs = Obs.create () in
  let _report = Replication.Harness.run ~obs (scenario ()) in
  let j = Eval.Export.metrics_json obs in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "has %s" frag) true (contains j frag))
    [
      "\"counters\":"; "\"histograms\":"; "\"spans\":"; "\"net.sent\":";
      "\"ops.read.latency\":"; "\"open\":0";
    ]

let suite =
  [
    Alcotest.test_case "counter get-or-create" `Quick test_counter_get_or_create;
    Alcotest.test_case "gauge and histogram" `Quick test_gauge_and_histogram;
    Alcotest.test_case "enumeration sorted" `Quick test_enumeration_sorted;
    Alcotest.test_case "span happy path" `Quick test_span_happy_path;
    Alcotest.test_case "retry closes phase timed-out" `Quick
      test_retry_closes_phase_timed_out;
    Alcotest.test_case "explicit timeout + auto-close" `Quick
      test_explicit_timeout_and_auto_close;
    Alcotest.test_case "finish idempotent, accounting" `Quick
      test_finish_idempotent_and_accounting;
    Alcotest.test_case "span json" `Quick test_span_json;
    Alcotest.test_case "jsonl sink round trip" `Quick test_jsonl_sink_round_trip;
    Alcotest.test_case "harness accounting" `Quick test_harness_accounting;
    Alcotest.test_case "attach does not perturb" `Quick
      test_attach_does_not_perturb;
    Alcotest.test_case "metrics json export" `Quick test_metrics_json_export;
  ]
