module Engine = Dsim.Engine
module Network = Dsim.Network
module Trace = Dsim.Trace

let is_send = function Trace.Send _ -> true | _ -> false
let is_deliver = function Trace.Deliver _ -> true | _ -> false
let is_drop = function Trace.Drop _ -> true | _ -> false

let test_record_and_read () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 (Trace.Crash 3);
  Trace.record t ~time:2.0 (Trace.Recover 3);
  Alcotest.(check int) "two entries" 2 (Trace.length t);
  match Trace.entries t with
  | [ a; b ] ->
    Alcotest.(check (float 1e-9)) "chronological" 1.0 a.Trace.time;
    Alcotest.(check bool) "second is recover" true (b.Trace.event = Trace.Recover 3)
  | _ -> Alcotest.fail "expected two entries"

let test_capacity_bound () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 10 do
    Trace.record t ~time:(float_of_int i) (Trace.Crash i)
  done;
  Alcotest.(check int) "bounded" 3 (Trace.length t);
  Alcotest.(check int) "dropped count" 7 (Trace.dropped t);
  match Trace.entries t with
  | first :: _ -> Alcotest.(check (float 1e-9)) "oldest kept is 8" 8.0 first.Trace.time
  | [] -> Alcotest.fail "empty"

let test_capacity_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let test_filter_and_find () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 (Trace.Crash 1);
  Trace.record t ~time:2.0 (Trace.Custom { tag = "x"; info = "y" });
  Trace.record t ~time:3.0 (Trace.Crash 2);
  Alcotest.(check int) "two crashes" 2
    (Trace.count_matching t (function Trace.Crash _ -> true | _ -> false));
  match Trace.find_first t (function Trace.Crash _ -> true | _ -> false) with
  | Some e -> Alcotest.(check (float 1e-9)) "first crash at 1" 1.0 e.Trace.time
  | None -> Alcotest.fail "no crash found"

let test_network_emission () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~n:3 () in
  let trace = Trace.create () in
  Network.attach_trace net ~describe:(fun s -> s) trace;
  Network.set_handler net ~site:1 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:1 "hello";
  Engine.run engine;
  Alcotest.(check int) "one send" 1 (Trace.count_matching trace is_send);
  Alcotest.(check int) "one deliver" 1 (Trace.count_matching trace is_deliver);
  (* Payload description captured. *)
  (match Trace.find_first trace is_send with
  | Some { Trace.event = Trace.Send { info; _ }; _ } ->
    Alcotest.(check string) "describe used" "hello" info
  | _ -> Alcotest.fail "send entry missing");
  (* Drops recorded with their reason. *)
  Network.crash net 2;
  Network.send net ~src:0 ~dst:2 "lost";
  Engine.run engine;
  Alcotest.(check int) "crash event" 1
    (Trace.count_matching trace (function Trace.Crash 2 -> true | _ -> false));
  Alcotest.(check int) "drop recorded" 1 (Trace.count_matching trace is_drop)

let test_network_partition_events () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~n:4 () in
  let trace = Trace.create () in
  Network.attach_trace net trace;
  Network.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Network.heal net;
  let parts =
    Trace.filter trace (function Trace.Partition_change _ -> true | _ -> false)
  in
  Alcotest.(check int) "two partition events" 2 (List.length parts)

let test_crash_dedup () =
  (* Crashing an already-down site does not spam the trace. *)
  let engine = Engine.create () in
  let net = Network.create ~engine ~n:2 () in
  let trace = Trace.create () in
  Network.attach_trace net trace;
  Network.crash net 0;
  Network.crash net 0;
  Network.recover net 0;
  Network.recover net 0;
  Alcotest.(check int) "one crash + one recover" 2 (Trace.length trace)

let test_dump () =
  let t = Trace.create () in
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) (Trace.Crash i)
  done;
  let s = Trace.dump t ~max:2 in
  Alcotest.(check int) "two lines" 2
    (List.length (String.split_on_char '\n' s));
  Alcotest.(check bool) "latest included" true
    (String.length s > 0
    && Trace.length t = 5
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> String.length l > 0) lines)

let test_clear () =
  let t = Trace.create ~capacity:2 () in
  Trace.record t ~time:1.0 (Trace.Crash 1);
  Trace.record t ~time:2.0 (Trace.Crash 2);
  Trace.record t ~time:3.0 (Trace.Crash 3);
  Trace.clear t;
  Alcotest.(check int) "empty" 0 (Trace.length t);
  Alcotest.(check int) "dropped reset" 0 (Trace.dropped t)

let test_end_to_end_protocol_trace () =
  (* Full protocol run with tracing: the trace must show the write's
     prepare/commit message flow. *)
  let proto = Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ()) in
  let engine = Engine.create () in
  let net = Network.create ~engine ~n:9 () in
  let trace = Trace.create () in
  Network.attach_trace net
    ~describe:(Format.asprintf "%a" Replication.Message.pp)
    trace;
  let _replicas = Array.init 8 (fun site -> Replication.Replica.create ~site ~net ()) in
  let coord = Replication.Coordinator.create ~site:8 ~net ~proto () in
  let done_ = ref false in
  Replication.Coordinator.write coord ~key:1 ~value:"x" (fun _ -> done_ := true);
  Engine.run engine;
  Alcotest.(check bool) "write completed" true !done_;
  let contains needle (e : Trace.event) =
    match e with
    | Trace.Send { info; _ } | Trace.Deliver { info; _ } ->
      let nl = String.length needle and il = String.length info in
      let rec go i = i + nl <= il && (String.sub info i nl = needle || go (i + 1)) in
      go 0
    | _ -> false
  in
  Alcotest.(check bool) "prepare messages traced" true
    (Trace.count_matching trace (contains "prepare(") > 0);
  Alcotest.(check bool) "commit messages traced" true
    (Trace.count_matching trace (contains "commit(") > 0)

let suite =
  [
    Alcotest.test_case "record and read" `Quick test_record_and_read;
    Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
    Alcotest.test_case "capacity validation" `Quick test_capacity_validation;
    Alcotest.test_case "filter and find" `Quick test_filter_and_find;
    Alcotest.test_case "network emission" `Quick test_network_emission;
    Alcotest.test_case "partition events" `Quick test_network_partition_events;
    Alcotest.test_case "crash dedup" `Quick test_crash_dedup;
    Alcotest.test_case "dump" `Quick test_dump;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "end-to-end protocol trace" `Quick
      test_end_to_end_protocol_trace;
  ]
