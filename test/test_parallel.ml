module Parallel = Eval.Parallel
module Chaos = Eval.Chaos
module Config = Arbitrary.Config
module Rng = Dsutil.Rng

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in submission order"
    (List.map (fun i -> i * i) xs)
    (Parallel.map ~domains:3 (fun i -> i * i) xs)

let test_map_array () =
  let xs = Array.init 33 Fun.id in
  Alcotest.(check (array int))
    "array variant"
    (Array.map succ xs)
    (Parallel.map_array ~domains:4 succ xs)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~domains:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Parallel.map ~domains:4 succ [ 1 ])

(* Tasks seeded from their index: any scheduling of domains must yield
   the same result list. *)
let test_determinism_across_domain_counts () =
  let task i =
    let rng = Rng.create (1000 + i) in
    let acc = ref 0 in
    for _ = 1 to 500 do
      acc := !acc + Rng.int rng 1_000_000
    done;
    !acc
  in
  let xs = List.init 64 Fun.id in
  let sequential = Parallel.map ~domains:1 task xs in
  Alcotest.(check (list int)) "2 domains" sequential (Parallel.map ~domains:2 task xs);
  Alcotest.(check (list int)) "5 domains" sequential (Parallel.map ~domains:5 task xs)

let test_exception_propagates () =
  Alcotest.check_raises "task failure re-raised" (Failure "boom") (fun () ->
      ignore
        (Parallel.map ~domains:3
           (fun i -> if i = 7 then failwith "boom" else i)
           (List.init 20 Fun.id)))

(* The real consumer: a small chaos campaign must render byte-identically
   whether it ran on one domain or several. *)
let test_chaos_byte_identical () =
  let campaign domains =
    Chaos.run ~n:9 ~clients:1 ~ops:4 ~horizon:400.0
      ~configs:[ Config.Unmodified ]
      ~schedules:[ Chaos.crashes_schedule; Chaos.loss_schedule ]
      ~domains ()
  in
  let one = campaign 1 and many = campaign 3 in
  Alcotest.(check string) "table" (Chaos.table one) (Chaos.table many);
  Alcotest.(check string) "parity table" (Chaos.parity_table one)
    (Chaos.parity_table many)

let suite =
  [
    Alcotest.test_case "submission order preserved" `Quick test_order_preserved;
    Alcotest.test_case "map_array" `Quick test_map_array;
    Alcotest.test_case "empty and singleton inputs" `Quick
      test_empty_and_singleton;
    Alcotest.test_case "independent of domain count" `Quick
      test_determinism_across_domain_counts;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "chaos campaign byte-identical" `Slow
      test_chaos_byte_identical;
  ]
