module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Tree = Arbitrary.Tree
module Gen = Arbitrary.Generalized
module Quorum_set = Quorum.Quorum_set

let fig1 = Tree.figure1 ()

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let quorum_set_of seq n = Quorum_set.create ~universe:n (List.of_seq seq)

let test_classic_equals_paper_protocol () =
  (* r=1, w=m must generate exactly the paper's quorum families. *)
  let g = Gen.classic fig1 in
  let paper_reads =
    quorum_set_of (Arbitrary.Quorums.enumerate_read_quorums fig1) 8
  in
  let gen_reads = quorum_set_of (Gen.enumerate_read_quorums g) 8 in
  Alcotest.(check int) "same read count" (Quorum_set.size paper_reads)
    (Quorum_set.size gen_reads);
  Alcotest.(check bool) "same read sets" true
    (List.for_all
       (fun q ->
         Array.exists (Bitset.equal q) gen_reads.Quorum_set.quorums)
       (Array.to_list paper_reads.Quorum_set.quorums));
  let paper_writes =
    quorum_set_of (Arbitrary.Quorums.enumerate_write_quorums fig1) 8
  in
  let gen_writes = quorum_set_of (Gen.enumerate_write_quorums g) 8 in
  Alcotest.(check int) "same write count" (Quorum_set.size paper_writes)
    (Quorum_set.size gen_writes);
  (* And the closed forms agree. *)
  Alcotest.(check int) "read cost" (Arbitrary.Analysis.read_cost fig1)
    (Gen.read_cost g);
  Alcotest.(check bool) "write cost" true
    (feq (Arbitrary.Analysis.write_cost_avg fig1) (Gen.write_cost_avg g));
  Alcotest.(check bool) "read availability" true
    (feq
       (Arbitrary.Analysis.read_availability fig1 ~p:0.7)
       (Gen.read_availability g ~p:0.7));
  Alcotest.(check bool) "write availability" true
    (feq
       (Arbitrary.Analysis.write_availability fig1 ~p:0.7)
       (Gen.write_availability g ~p:0.7));
  Alcotest.(check bool) "read load" true
    (feq (Arbitrary.Analysis.read_load fig1) (Gen.read_load g));
  Alcotest.(check bool) "write load" true
    (feq (Arbitrary.Analysis.write_load fig1) (Gen.write_load g))

let test_validation () =
  List.iter
    (fun (r, w, why) ->
      Alcotest.(check bool) why true
        (try
           ignore (Gen.create fig1 ~read_thresholds:r ~write_thresholds:w);
           false
         with Invalid_argument _ -> true))
    [
      ([ 1 ], [ 3 ], "wrong arity");
      ([ 1; 1 ], [ 2; 5 ], "r + w <= m");
      ([ 0; 1 ], [ 3; 5 ], "r < 1");
      ([ 1; 6 ], [ 3; 5 ], "r > m");
    ]

let test_majority_levels_bicoterie () =
  let g = Gen.level_majority fig1 in
  (* r = w = 2 on the 3-level, 3 on the 5-level. *)
  Alcotest.(check (list int)) "read thresholds" [ 2; 3 ] (Gen.read_thresholds g);
  let reads = quorum_set_of (Gen.enumerate_read_quorums g) 8 in
  let writes = quorum_set_of (Gen.enumerate_write_quorums g) 8 in
  Alcotest.(check bool) "bicoterie" true (Quorum_set.is_bicoterie ~read:reads ~write:writes);
  (* m(R) = C(3,2)*C(5,3) = 30; m(W) = C(3,2)+C(5,3) = 13. *)
  Alcotest.(check int) "m(R)" 30 (Quorum_set.size reads);
  Alcotest.(check int) "m(W)" 13 (Quorum_set.size writes)

let test_majority_trades_write_cost () =
  let classic = Gen.classic fig1 in
  let maj = Gen.level_majority fig1 in
  Alcotest.(check bool) "cheaper writes" true
    (Gen.write_cost_avg maj < Gen.write_cost_avg classic);
  Alcotest.(check bool) "dearer reads" true (Gen.read_cost maj > Gen.read_cost classic)

let test_availability_vs_exact () =
  let g = Gen.level_majority fig1 in
  let rng = Rng.create 3 in
  List.iter
    (fun p ->
      let exact_rd =
        Quorum.Availability.exact ~n:8 ~p (fun ~alive ->
            Gen.read_quorum g ~alive ~rng <> None)
      in
      let exact_wr =
        Quorum.Availability.exact ~n:8 ~p (fun ~alive ->
            Gen.write_quorum g ~alive ~rng <> None)
      in
      Alcotest.(check bool)
        (Printf.sprintf "read p=%.1f" p)
        true
        (feq exact_rd (Gen.read_availability g ~p));
      Alcotest.(check bool)
        (Printf.sprintf "write p=%.1f" p)
        true
        (feq exact_wr (Gen.write_availability g ~p)))
    [ 0.5; 0.7; 0.9 ]

let test_loads_via_lp () =
  List.iter
    (fun (r, w) ->
      let g = Gen.create fig1 ~read_thresholds:r ~write_thresholds:w in
      let reads = quorum_set_of (Gen.enumerate_read_quorums g) 8 in
      let writes = quorum_set_of (Gen.enumerate_write_quorums g) 8 in
      Alcotest.(check bool) "read load formula = LP optimum" true
        (feq ~eps:1e-6 (Analysis.Load_lp.optimal_load reads) (Gen.read_load g));
      Alcotest.(check bool) "write load formula = LP optimum" true
        (feq ~eps:1e-6 (Analysis.Load_lp.optimal_load writes) (Gen.write_load g)))
    [ ([ 1; 1 ], [ 3; 5 ]); ([ 2; 3 ], [ 2; 3 ]); ([ 1; 2 ], [ 3; 4 ]); ([ 3; 3 ], [ 1; 3 ]) ]

let prop_random_thresholds_bicoterie =
  QCheck.Test.make ~name:"random thresholds keep the bicoterie property"
    ~count:60
    (QCheck.make
       QCheck.Gen.(
         let* sizes = list_repeat 2 (int_range 2 4) in
         let* pairs =
           flatten_l
             (List.map
                (fun m ->
                  let* r = int_range 1 m in
                  let* w = int_range (m - r + 1) m in
                  return (r, w))
                sizes)
         in
         return (sizes, pairs))
       ~print:(fun (sizes, pairs) ->
         Printf.sprintf "sizes=%s thresholds=%s"
           (String.concat "-" (List.map string_of_int sizes))
           (String.concat ","
              (List.map (fun (r, w) -> Printf.sprintf "%d/%d" r w) pairs))))
    (fun (sizes, pairs) ->
      let tree = Tree.create ((0, 1) :: List.map (fun m -> (m, 0)) sizes) in
      let g =
        Gen.create tree ~read_thresholds:(List.map fst pairs)
          ~write_thresholds:(List.map snd pairs)
      in
      let n = Tree.n tree in
      let reads = quorum_set_of (Gen.enumerate_read_quorums g) n in
      let writes = quorum_set_of (Gen.enumerate_write_quorums g) n in
      Quorum_set.is_bicoterie ~read:reads ~write:writes)

let prop_load_formulas_match_lp =
  QCheck.Test.make ~name:"load formulas = LP optimum on random thresholds"
    ~count:30
    (QCheck.make
       QCheck.Gen.(
         let* sizes = list_repeat 2 (int_range 2 4) in
         let* pairs =
           flatten_l
             (List.map
                (fun m ->
                  let* r = int_range 1 m in
                  let* w = int_range (m - r + 1) m in
                  return (r, w))
                sizes)
         in
         return (sizes, pairs))
       ~print:(fun (sizes, pairs) ->
         Printf.sprintf "sizes=%s thresholds=%s"
           (String.concat "-" (List.map string_of_int sizes))
           (String.concat ","
              (List.map (fun (r, w) -> Printf.sprintf "%d/%d" r w) pairs))))
    (fun (sizes, pairs) ->
      let tree = Tree.create ((0, 1) :: List.map (fun m -> (m, 0)) sizes) in
      let g =
        Gen.create tree ~read_thresholds:(List.map fst pairs)
          ~write_thresholds:(List.map snd pairs)
      in
      let n = Tree.n tree in
      let reads = quorum_set_of (Gen.enumerate_read_quorums g) n in
      let writes = quorum_set_of (Gen.enumerate_write_quorums g) n in
      feq ~eps:1e-6 (Analysis.Load_lp.optimal_load reads) (Gen.read_load g)
      && feq ~eps:1e-6 (Analysis.Load_lp.optimal_load writes) (Gen.write_load g))

let test_runs_in_replication_stack () =
  (* The generalized protocol plugs into the full stack unchanged. *)
  let g = Gen.level_majority fig1 in
  let s = Replication.Harness.default_scenario ~proto:(Gen.protocol g) in
  let r =
    Replication.Harness.run
      { s with Replication.Harness.n_clients = 2; ops_per_client = 40 }
  in
  Alcotest.(check int) "no safety violations" 0 r.Replication.Harness.safety_violations;
  Alcotest.(check int) "all ops ok" 80
    (r.Replication.Harness.reads_ok + r.Replication.Harness.writes_ok)

let suite =
  [
    Alcotest.test_case "classic = the paper's protocol" `Quick
      test_classic_equals_paper_protocol;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "level-majority bicoterie" `Quick
      test_majority_levels_bicoterie;
    Alcotest.test_case "majority trades write cost for read cost" `Quick
      test_majority_trades_write_cost;
    Alcotest.test_case "availability vs exact" `Quick test_availability_vs_exact;
    Alcotest.test_case "load formulas = LP optimum" `Quick test_loads_via_lp;
    QCheck_alcotest.to_alcotest prop_random_thresholds_bicoterie;
    QCheck_alcotest.to_alcotest prop_load_formulas_match_lp;
    Alcotest.test_case "runs in the replication stack" `Quick
      test_runs_in_replication_stack;
  ]
