module Wal = Replication.Wal
module Store = Replication.Store
module Timestamp = Replication.Timestamp

(* A hand-cranked virtual clock: the WAL only ever samples [now ()]. *)
let clock () =
  let t = ref 0.0 in
  ((fun () -> !t), fun v -> t := v)

let ts v = Timestamp.make ~version:v ~sid:0

let stage ~op ~key ~v value = Wal.Stage { op; key; ts = ts v; value }
let commit ~op ~key ~v value = Wal.Commit { op; key; ts = ts v; value }
let install ~key ~v value = Wal.Install { key; ts = ts v; value }

let test_policy_strings () =
  Alcotest.(check string) "commit" "commit" (Wal.policy_to_string Wal.Sync_on_commit);
  Alcotest.(check string) "prepare" "prepare" (Wal.policy_to_string Wal.Sync_on_prepare);
  Alcotest.(check string) "async" "async(60)" (Wal.policy_to_string (Wal.Async 60.0))

let test_invalid_lag () =
  let now, _ = clock () in
  Alcotest.check_raises "zero lag"
    (Invalid_argument "Wal.create: Async flush lag must be positive")
    (fun () -> ignore (Wal.create ~policy:(Wal.Async 0.0) ~now ()))

(* Sync_on_commit: commits and installs survive any crash, stages never do.
   A replica that loses a stage nacks the eventual 2PC Commit, so nothing
   is silently dropped — the write just fails visibly at the coordinator. *)
let test_sync_on_commit_crash () =
  let now, _ = clock () in
  let wal = Wal.create ~now () in
  Wal.append wal (stage ~op:1 ~key:0 ~v:1 "a");
  Wal.append wal (commit ~op:1 ~key:0 ~v:1 "a");
  Wal.append wal (stage ~op:2 ~key:1 ~v:1 "b");
  Alcotest.(check int) "three records" 3 (Wal.length wal);
  Wal.crash wal;
  Alcotest.(check int) "stages dropped" 1 (Wal.length wal);
  Alcotest.(check int) "two lost" 2 (Wal.lost_total wal);
  let store = Store.create () in
  Alcotest.(check int) "replayed" 1 (Wal.replay wal store);
  Alcotest.(check bool) "commit restored" true
    (Store.read store ~key:0 = (ts 1, "a"));
  Alcotest.(check bool) "stage gone" true (Store.staged store ~op:2 = None);
  Alcotest.(check bool) "staged key unwritten" true
    (Store.read store ~key:1 = (Timestamp.zero, ""))

(* Sync_on_prepare: the classic 2PC participant contract — the undecided
   stage set survives too, so replay rebuilds it for the coordinator's
   eventual decision. *)
let test_sync_on_prepare_crash () =
  let now, _ = clock () in
  let wal = Wal.create ~policy:Wal.Sync_on_prepare ~now () in
  Wal.append wal (stage ~op:1 ~key:0 ~v:1 "a");
  Wal.append wal (commit ~op:1 ~key:0 ~v:1 "a");
  Wal.append wal (stage ~op:2 ~key:1 ~v:1 "b");
  Wal.crash wal;
  Alcotest.(check int) "nothing lost" 0 (Wal.lost_total wal);
  let store = Store.create () in
  Alcotest.(check int) "all replayed" 3 (Wal.replay wal store);
  Alcotest.(check bool) "stage restored" true
    (Store.staged store ~op:2 = Some (1, ts 1, "b"));
  Alcotest.(check bool) "commit restored" true
    (Store.read store ~key:0 = (ts 1, "a"))

(* Async lag: a record is durable only once [lag] time has passed since the
   append — a crash inside the window loses acknowledged writes, which is
   exactly the anomaly the negative-control campaign manufactures. *)
let test_async_lag () =
  let now, set = clock () in
  let wal = Wal.create ~policy:(Wal.Async 10.0) ~now () in
  Wal.append wal (commit ~op:1 ~key:0 ~v:1 "a");
  set 5.0;
  Wal.append wal (commit ~op:2 ~key:0 ~v:2 "b");
  (* At t=12 the first append (durable from t=10) survives, the second
     (durable from t=15) does not. *)
  set 12.0;
  Wal.crash wal;
  Alcotest.(check int) "suffix lost" 1 (Wal.lost_total wal);
  let store = Store.create () in
  ignore (Wal.replay wal store);
  Alcotest.(check bool) "only the flushed prefix" true
    (Store.read store ~key:0 = (ts 1, "a"));
  (* The durability horizon is measured from each append. *)
  Wal.append wal (commit ~op:3 ~key:0 ~v:3 "c");
  set 30.0;
  Wal.crash wal;
  let store = Store.create () in
  ignore (Wal.replay wal store);
  Alcotest.(check bool) "flushed after the lag" true
    (Store.read store ~key:0 = (ts 3, "c"))

(* Regression: the Async durability boundary is pinned INCLUSIVE.  A
   record appended at t under [Async lag] is durable from exactly
   [t +. lag]; a crash at that very instant keeps it (the tie breaks in
   favour of durability — wal.mli documents the contract this test
   anchors).  One ulp earlier and the same record is gone. *)
let test_async_boundary_inclusive () =
  let now, set = clock () in
  let wal = Wal.create ~policy:(Wal.Async 10.0) ~now () in
  Wal.append wal (commit ~op:1 ~key:0 ~v:1 "a");
  set 10.0;
  (* crash at exactly t + lag *)
  Wal.crash wal;
  Alcotest.(check int) "boundary record survives" 0 (Wal.lost_total wal);
  let store = Store.create () in
  ignore (Wal.replay wal store);
  Alcotest.(check bool) "boundary record replayed" true
    (Store.read store ~key:0 = (ts 1, "a"));
  let now2, set2 = clock () in
  let wal2 = Wal.create ~policy:(Wal.Async 10.0) ~now:now2 () in
  Wal.append wal2 (commit ~op:1 ~key:0 ~v:1 "a");
  set2 (Float.pred 10.0);
  (* one ulp before the boundary *)
  Wal.crash wal2;
  Alcotest.(check int) "one ulp earlier loses it" 1 (Wal.lost_total wal2);
  let store2 = Store.create () in
  ignore (Wal.replay wal2 store2);
  Alcotest.(check bool) "nothing replayed" true
    (Store.read store2 ~key:0 = (Timestamp.zero, ""))

(* Group commit: a batch of records shares ONE durability point.  The
   sync counter is the only observable difference — per-record stamps,
   crash truncation and replay are identical to individual appends. *)
let test_group_commit_one_sync_per_batch () =
  let now, _ = clock () in
  let plain = Wal.create ~policy:Wal.Sync_on_prepare ~now () in
  Wal.append plain (stage ~op:1 ~key:0 ~v:1 "a");
  Wal.append plain (stage ~op:2 ~key:1 ~v:1 "b");
  Alcotest.(check int) "one sync per forcing append" 2 (Wal.syncs plain);
  let now2, _ = clock () in
  let grouped = Wal.create ~policy:Wal.Sync_on_prepare ~now:now2 () in
  Wal.append_batch grouped
    [ stage ~op:1 ~key:0 ~v:1 "a"; stage ~op:2 ~key:1 ~v:1 "b" ];
  Alcotest.(check int) "whole batch: one sync" 1 (Wal.syncs grouped);
  Alcotest.(check int) "same records" (Wal.length plain) (Wal.length grouped);
  Wal.crash plain;
  Wal.crash grouped;
  let s1 = Store.create () and s2 = Store.create () in
  let r1 = Wal.replay plain s1 and r2 = Wal.replay grouped s2 in
  Alcotest.(check int) "crash + replay parity" r1 r2;
  Alcotest.(check bool) "both stages rebuilt" true
    (Store.staged s2 ~op:1 = Some (0, ts 1, "a")
    && Store.staged s2 ~op:2 = Some (1, ts 1, "b"))

let test_group_commit_force_detection () =
  (* Sync_on_commit: a stage-only batch is lazy; a batch containing any
     forcing record costs exactly one sync.  Async never syncs. *)
  let now, _ = clock () in
  let wal = Wal.create ~now () in
  Wal.append_batch wal
    [ stage ~op:1 ~key:0 ~v:1 "a"; stage ~op:2 ~key:1 ~v:1 "b" ];
  Alcotest.(check int) "stage-only batch is lazy" 0 (Wal.syncs wal);
  Wal.append_batch wal
    [ commit ~op:1 ~key:0 ~v:1 "a"; commit ~op:2 ~key:1 ~v:1 "b" ];
  Alcotest.(check int) "commit batch forces once" 1 (Wal.syncs wal);
  let now2, _ = clock () in
  let async = Wal.create ~policy:(Wal.Async 5.0) ~now:now2 () in
  Wal.append_batch async
    [ commit ~op:1 ~key:0 ~v:1 "a"; commit ~op:2 ~key:1 ~v:1 "b" ];
  Alcotest.(check int) "async batch never syncs" 0 (Wal.syncs async)

(* Replaying the per-record Stage entries of one batched prepare must
   rebuild the whole staged batch — a second Stage under the same op id
   accumulates instead of clobbering. *)
let test_replay_rebuilds_batch_stage () =
  let now, _ = clock () in
  let wal = Wal.create ~policy:Wal.Sync_on_prepare ~now () in
  Wal.append_batch wal
    [
      stage ~op:9 ~key:0 ~v:1 "a";
      stage ~op:9 ~key:1 ~v:1 "b";
      stage ~op:9 ~key:2 ~v:1 "c";
    ];
  Wal.crash wal;
  let store = Store.create () in
  Alcotest.(check int) "all replayed" 3 (Wal.replay wal store);
  Alcotest.(check bool) "staged batch rebuilt in order" true
    (match Store.staged_many store ~op:9 with
    | Some b ->
      Replication.Batch.to_list b
      = [ (0, ts 1, "a"); (1, ts 1, "b"); (2, ts 1, "c") ]
    | None -> false);
  Alcotest.(check bool) "commit installs every key" true
    (Store.commit_staged store ~op:9);
  Alcotest.(check bool) "all keys installed" true
    (Store.read store ~key:0 = (ts 1, "a")
    && Store.read store ~key:1 = (ts 1, "b")
    && Store.read store ~key:2 = (ts 1, "c"))

(* Replay preserves install monotonicity and abort semantics. *)
let test_replay_order () =
  let now, _ = clock () in
  let wal = Wal.create ~now () in
  Wal.append wal (install ~key:0 ~v:3 "new");
  Wal.append wal (install ~key:0 ~v:1 "old");
  (* re-delivered, must not regress *)
  let store = Store.create () in
  ignore (Wal.replay wal store);
  Alcotest.(check bool) "monotone installs" true
    (Store.read store ~key:0 = (ts 3, "new"))

let test_replay_abort_clears_stage () =
  let now, _ = clock () in
  let wal = Wal.create ~policy:Wal.Sync_on_prepare ~now () in
  Wal.append wal (stage ~op:7 ~key:2 ~v:4 "x");
  Wal.append wal (Wal.Abort { op = 7 });
  let store = Store.create () in
  ignore (Wal.replay wal store);
  Alcotest.(check bool) "aborted stage not rebuilt" true
    (Store.staged store ~op:7 = None);
  Alcotest.(check int) "no staged writes" 0 (Store.staged_count store)

(* A Commit record is self-contained: it installs even when the matching
   Stage was volatile (the Sync_on_commit steady state). *)
let test_commit_record_self_contained () =
  let now, _ = clock () in
  let wal = Wal.create ~now () in
  Wal.append wal (stage ~op:1 ~key:0 ~v:2 "v");
  Wal.crash wal;
  (* stage lost *)
  Wal.append wal (commit ~op:1 ~key:0 ~v:2 "v");
  let store = Store.create () in
  ignore (Wal.replay wal store);
  Alcotest.(check bool) "installed from the commit alone" true
    (Store.read store ~key:0 = (ts 2, "v"))

(* --- snapshot-cut boundary ------------------------------------------------ *)

(* The tail boundary is inclusive at the stamp: a cut taken at
   [next_index] = s must yield a tail containing the record appended AT
   index s and nothing appended before it.  An off-by-one in either
   direction silently loses the first post-cut commit or re-ships the
   last pre-cut one. *)
let test_tail_boundary_at_stamp () =
  let now, _ = clock () in
  let wal = Wal.create ~now () in
  Wal.append wal (install ~key:0 ~v:1 "pre");
  let stamp = Wal.next_index wal in
  Alcotest.(check int) "stamp names the next index" 1 stamp;
  Wal.append wal (install ~key:1 ~v:1 "at-stamp");
  Wal.append wal (install ~key:2 ~v:1 "post");
  let tail = Wal.committed_since wal ~index:stamp in
  Alcotest.(check int) "tail holds exactly the records >= stamp" 2
    (Replication.Batch.length tail);
  Alcotest.(check int) "first tail record is the one AT the stamp" 1
    (Replication.Batch.key tail 0);
  Alcotest.(check string) "its value" "at-stamp"
    (Replication.Batch.value tail 0);
  (* stamp - 1 is NOT in the tail *)
  let from_before = Wal.committed_since wal ~index:(stamp - 1) in
  Alcotest.(check int) "one index earlier adds the pre-cut record" 3
    (Replication.Batch.length from_before)

let test_replay_from_boundary () =
  let now, _ = clock () in
  let wal = Wal.create ~now () in
  Wal.append wal (install ~key:0 ~v:5 "old");
  let stamp = Wal.next_index wal in
  Wal.append wal (install ~key:1 ~v:1 "new");
  let store = Store.create () in
  let applied = Wal.replay_from wal store ~index:stamp in
  Alcotest.(check int) "only the record at the stamp replays" 1 applied;
  Alcotest.(check bool) "pre-stamp key untouched" true
    (Store.read store ~key:0 = (Timestamp.zero, ""));
  Alcotest.(check bool) "at-stamp key installed" true
    (Store.read store ~key:1 = (ts 1, "new"));
  Alcotest.(check int) "replay_from 0 = full replay" 2
    (Wal.replay_from wal (Store.create ()) ~index:0)

(* Indices never rewind: a crash truncates records but the next append
   still gets a fresh index, so a donor's stamp from before the crash can
   never alias a post-crash record. *)
let test_indices_monotone_across_crash () =
  let now, set = clock () in
  let wal = Wal.create ~now () in
  Wal.append wal (stage ~op:1 ~key:0 ~v:1 "volatile");
  Wal.append wal (install ~key:1 ~v:1 "durable");
  Alcotest.(check int) "two appended" 2 (Wal.next_index wal);
  set 10.0;
  Wal.crash wal;
  Alcotest.(check int) "stage truncated" 1 (Wal.length wal);
  Alcotest.(check int) "counter did not rewind" 2 (Wal.next_index wal);
  Wal.append wal (install ~key:2 ~v:1 "after");
  Alcotest.(check int) "fresh index" 3 (Wal.next_index wal);
  (* the truncated record's index is simply absent from any tail *)
  Alcotest.(check int) "tail since 0 holds the two survivors" 2
    (Replication.Batch.length (Wal.committed_since wal ~index:0))

(* An amnesia crash immediately after a snapshot chunk was installed and
   marked: the mark is durable (Sync_on_commit batches the chunk installs
   and the mark at one durability point), so resume_state reports the
   chunk — the rejoin resumes after it instead of refetching chunk 0. *)
let test_resume_after_install_crash () =
  let now, set = clock () in
  let wal = Wal.create ~now () in
  Wal.append_batch wal
    [
      install ~key:0 ~v:1 "c0a";
      install ~key:1 ~v:1 "c0b";
      Wal.Mark { chunk = 0; wal_index = 7 };
    ];
  set 0.000001;
  (* crash "immediately": no later flush point, Sync_on_commit already
     made the batch durable at append time *)
  Wal.crash wal;
  (match Wal.resume_state wal with
  | Some (next_chunk, wal_index) ->
    Alcotest.(check int) "resume after chunk 0" 1 next_chunk;
    Alcotest.(check int) "stamp preserved" 7 wal_index
  | None -> Alcotest.fail "durable mark lost by the crash");
  (* the installs the mark covers replay into the store *)
  let store = Store.create () in
  ignore (Wal.replay wal store);
  Alcotest.(check bool) "chunk contents survived" true
    (Store.read store ~key:1 = (ts 1, "c0b"));
  (* a completion mark retires the resume state entirely *)
  Wal.append wal (Wal.Mark { chunk = -1; wal_index = 9 });
  Alcotest.(check bool) "completion mark means fresh transfer" true
    (Wal.resume_state wal = None)

let suite =
  [
    Alcotest.test_case "policy strings" `Quick test_policy_strings;
    Alcotest.test_case "invalid async lag" `Quick test_invalid_lag;
    Alcotest.test_case "sync-on-commit crash semantics" `Quick
      test_sync_on_commit_crash;
    Alcotest.test_case "sync-on-prepare crash semantics" `Quick
      test_sync_on_prepare_crash;
    Alcotest.test_case "async flush lag" `Quick test_async_lag;
    Alcotest.test_case "async boundary is inclusive" `Quick
      test_async_boundary_inclusive;
    Alcotest.test_case "group commit: one sync per batch" `Quick
      test_group_commit_one_sync_per_batch;
    Alcotest.test_case "group commit: force detection per policy" `Quick
      test_group_commit_force_detection;
    Alcotest.test_case "replay rebuilds a batched stage" `Quick
      test_replay_rebuilds_batch_stage;
    Alcotest.test_case "replay keeps installs monotone" `Quick
      test_replay_order;
    Alcotest.test_case "replay honors aborts" `Quick
      test_replay_abort_clears_stage;
    Alcotest.test_case "commit records are self-contained" `Quick
      test_commit_record_self_contained;
    Alcotest.test_case "tail boundary is inclusive at the stamp" `Quick
      test_tail_boundary_at_stamp;
    Alcotest.test_case "replay_from honors the stamp boundary" `Quick
      test_replay_from_boundary;
    Alcotest.test_case "indices monotone across crashes" `Quick
      test_indices_monotone_across_crash;
    Alcotest.test_case "crash right after a marked chunk resumes" `Quick
      test_resume_after_install_crash;
  ]
