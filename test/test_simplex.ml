module Simplex = Analysis.Simplex

let feq ?(eps = 1e-6) a b = abs_float (a -. b) < eps

let solve_exn p =
  match Simplex.solve p with
  | Ok s -> s
  | Error e -> Alcotest.failf "unexpected: %a" Simplex.pp_error e

let test_basic_le () =
  (* min -x - y  s.t. x + y <= 4, x <= 2  (x,y >= 0): optimum -4 at (2,2) *)
  let p =
    {
      Simplex.objective = [| -1.0; -1.0 |];
      constraints =
        [ ([| 1.0; 1.0 |], Simplex.Le, 4.0); ([| 1.0; 0.0 |], Simplex.Le, 2.0) ];
    }
  in
  let s = solve_exn p in
  Alcotest.(check bool) "value" true (feq s.Simplex.value (-4.0));
  Alcotest.(check bool) "x" true (feq s.Simplex.x.(0) 2.0);
  Alcotest.(check bool) "y" true (feq s.Simplex.x.(1) 2.0)

let test_equality () =
  (* min x + y  s.t. x + y = 3: optimum 3. *)
  let p =
    {
      Simplex.objective = [| 1.0; 1.0 |];
      constraints = [ ([| 1.0; 1.0 |], Simplex.Eq, 3.0) ];
    }
  in
  Alcotest.(check bool) "value 3" true (feq (solve_exn p).Simplex.value 3.0)

let test_ge () =
  (* min 2x + 3y  s.t. x + y >= 4, x - y >= -2: optimum at (4,0)? 2*4=8;
     or (1,3): 2+9=11; y=0,x=4 satisfies x-y=4 >= -2 -> 8. *)
  let p =
    {
      Simplex.objective = [| 2.0; 3.0 |];
      constraints =
        [ ([| 1.0; 1.0 |], Simplex.Ge, 4.0); ([| 1.0; -1.0 |], Simplex.Ge, -2.0) ];
    }
  in
  Alcotest.(check bool) "value 8" true (feq (solve_exn p).Simplex.value 8.0)

let test_infeasible () =
  let p =
    {
      Simplex.objective = [| 1.0 |];
      constraints =
        [ ([| 1.0 |], Simplex.Le, 1.0); ([| 1.0 |], Simplex.Ge, 2.0) ];
    }
  in
  Alcotest.(check bool) "infeasible" true (Simplex.solve p = Error Simplex.Infeasible)

let test_unbounded () =
  let p =
    { Simplex.objective = [| -1.0 |]; constraints = [ ([| 0.0 |], Simplex.Le, 1.0) ] }
  in
  Alcotest.(check bool) "unbounded" true (Simplex.solve p = Error Simplex.Unbounded)

let test_malformed () =
  Alcotest.(check bool) "no variables" true
    (match Simplex.solve { Simplex.objective = [||]; constraints = [] } with
    | Error (Simplex.Malformed _) -> true
    | _ -> false);
  Alcotest.(check bool) "arity mismatch" true
    (match
       Simplex.solve
         {
           Simplex.objective = [| 1.0 |];
           constraints = [ ([| 1.0; 2.0 |], Simplex.Le, 1.0) ];
         }
     with
    | Error (Simplex.Malformed _) -> true
    | _ -> false)

let test_negative_rhs_normalization () =
  (* min x s.t. -x <= -2  (i.e. x >= 2): optimum 2. *)
  let p =
    {
      Simplex.objective = [| 1.0 |];
      constraints = [ ([| -1.0 |], Simplex.Le, -2.0) ];
    }
  in
  Alcotest.(check bool) "value 2" true (feq (solve_exn p).Simplex.value 2.0)

let test_maximize () =
  (* max x + 2y s.t. x + y <= 3, y <= 2: optimum 5 at (1,2). *)
  let p =
    {
      Simplex.objective = [| 1.0; 2.0 |];
      constraints =
        [ ([| 1.0; 1.0 |], Simplex.Le, 3.0); ([| 0.0; 1.0 |], Simplex.Le, 2.0) ];
    }
  in
  match Simplex.maximize p with
  | Ok s -> Alcotest.(check bool) "value 5" true (feq s.Simplex.value 5.0)
  | Error e -> Alcotest.failf "unexpected: %a" Simplex.pp_error e

let test_degenerate () =
  (* Degenerate vertex: redundant constraints through the optimum. *)
  let p =
    {
      Simplex.objective = [| -1.0 |];
      constraints =
        [
          ([| 1.0 |], Simplex.Le, 1.0);
          ([| 2.0 |], Simplex.Le, 2.0);
          ([| 1.0 |], Simplex.Le, 2.0);
        ];
    }
  in
  Alcotest.(check bool) "value -1" true (feq (solve_exn p).Simplex.value (-1.0))

let test_redundant_equalities () =
  (* x + y = 2 stated twice: still feasible, optimum 2 at any split. *)
  let p =
    {
      Simplex.objective = [| 1.0; 1.0 |];
      constraints =
        [ ([| 1.0; 1.0 |], Simplex.Eq, 2.0); ([| 1.0; 1.0 |], Simplex.Eq, 2.0) ];
    }
  in
  Alcotest.(check bool) "value 2" true (feq (solve_exn p).Simplex.value 2.0)

let test_random_lps_feasibility () =
  (* Random bounded LPs: solver value must match brute-force grid search
     within tolerance. *)
  let rng = Dsutil.Rng.create 97 in
  for _ = 1 to 20 do
    let c = Array.init 2 (fun _ -> Dsutil.Rng.uniform_in rng (-3.0) 3.0) in
    let a1 = Array.init 2 (fun _ -> Dsutil.Rng.uniform_in rng 0.2 2.0) in
    let b1 = Dsutil.Rng.uniform_in rng 1.0 5.0 in
    let p =
      {
        Simplex.objective = c;
        constraints =
          [
            (a1, Simplex.Le, b1);
            ([| 1.0; 0.0 |], Simplex.Le, 4.0);
            ([| 0.0; 1.0 |], Simplex.Le, 4.0);
          ];
      }
    in
    let s = solve_exn p in
    (* Brute force over a fine grid. *)
    let best = ref infinity in
    let steps = 200 in
    for i = 0 to steps do
      for j = 0 to steps do
        let x = 4.0 *. float_of_int i /. float_of_int steps in
        let y = 4.0 *. float_of_int j /. float_of_int steps in
        if (a1.(0) *. x) +. (a1.(1) *. y) <= b1 +. 1e-12 then begin
          let v = (c.(0) *. x) +. (c.(1) *. y) in
          if v < !best then best := v
        end
      done
    done;
    Alcotest.(check bool) "within grid tolerance" true
      (s.Simplex.value <= !best +. 1e-6 && s.Simplex.value >= !best -. 0.1)
  done

let suite =
  [
    Alcotest.test_case "basic <= program" `Quick test_basic_le;
    Alcotest.test_case "equality constraint" `Quick test_equality;
    Alcotest.test_case ">= constraints" `Quick test_ge;
    Alcotest.test_case "infeasible detection" `Quick test_infeasible;
    Alcotest.test_case "unbounded detection" `Quick test_unbounded;
    Alcotest.test_case "malformed input" `Quick test_malformed;
    Alcotest.test_case "negative rhs normalization" `Quick
      test_negative_rhs_normalization;
    Alcotest.test_case "maximize wrapper" `Quick test_maximize;
    Alcotest.test_case "degenerate vertex" `Quick test_degenerate;
    Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
    Alcotest.test_case "random LPs vs grid search" `Quick
      test_random_lps_feasibility;
  ]
