module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Hqc = Quorum.Hqc
module Availability = Quorum.Availability
module Protocol = Quorum.Protocol

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_sizes () =
  List.iter
    (fun (d, n) ->
      Alcotest.(check int) (Printf.sprintf "n for depth %d" d) n (Hqc.n_of_depth d))
    [ (0, 1); (1, 3); (2, 9); (3, 27) ];
  Alcotest.(check int) "of_n snaps down" 2 (Hqc.depth (Hqc.of_n ~n:20))

let test_quorum_size_n063 () =
  let h = Hqc.create ~depth:3 in
  Alcotest.(check int) "2^depth" 8 (Hqc.quorum_size h);
  (* 27^0.63 ≈ 7.97 ≈ 8 = n^log3(2) *)
  Alcotest.(check bool) "matches n^0.63" true
    (abs_float (Hqc.cost h -. (27.0 ** 0.63)) < 0.1)

let test_assembled_quorum_size () =
  let h = Hqc.create ~depth:2 in
  let rng = Rng.create 7 in
  let alive = Protocol.all_alive (Hqc.protocol h) in
  for _ = 1 to 50 do
    match Hqc.read_quorum h ~alive ~rng with
    | None -> Alcotest.fail "assembly failed"
    | Some q -> Alcotest.(check int) "size 4" 4 (Bitset.cardinal q)
  done

let test_enumeration_count () =
  (* Q(l) = 3 Q(l-1)^2, Q(0) = 1 -> 3, 27. *)
  Alcotest.(check int) "depth 1" 3
    (List.length (List.of_seq (Hqc.enumerate_read_quorums (Hqc.create ~depth:1))));
  Alcotest.(check int) "depth 2" 27
    (List.length (List.of_seq (Hqc.enumerate_read_quorums (Hqc.create ~depth:2))))

let test_coterie () =
  let qs = Protocol.read_quorum_set (Hqc.protocol (Hqc.create ~depth:2)) in
  Alcotest.(check bool) "quorum system" true (Quorum.Quorum_set.is_quorum_system qs)

let test_availability_recurrence_vs_exact () =
  let h = Hqc.create ~depth:2 in
  let proto = Hqc.protocol h in
  let rng = Rng.create 11 in
  List.iter
    (fun p ->
      let exact =
        Availability.exact ~n:9 ~p (fun ~alive ->
            Protocol.read_quorum proto ~alive ~rng <> None)
      in
      Alcotest.(check bool)
        (Printf.sprintf "p=%.2f" p)
        true
        (feq ~eps:1e-9 exact (Hqc.availability h ~p)))
    [ 0.5; 0.7; 0.9 ]

let test_availability_amplification () =
  (* HQC amplifies availability above p for p > 1/2 and degrades it below. *)
  let h = Hqc.create ~depth:4 in
  Alcotest.(check bool) "amplifies above 1/2" true
    (Hqc.availability h ~p:0.7 > 0.7);
  Alcotest.(check bool) "degrades below 1/2" true
    (Hqc.availability h ~p:0.3 < 0.3);
  Alcotest.(check bool) "fixed point at 1/2" true
    (feq ~eps:1e-9 (Hqc.availability h ~p:0.5) 0.5)

let test_load_optimality_via_lp () =
  let h = Hqc.create ~depth:2 in
  let qs = Protocol.read_quorum_set (Hqc.protocol h) in
  Alcotest.(check bool) "LP load = (2/3)^depth" true
    (feq ~eps:1e-6 (Analysis.Load_lp.optimal_load qs) (Hqc.optimal_load h))

let test_tolerates_third_of_each_group () =
  let h = Hqc.create ~depth:2 in
  let rng = Rng.create 13 in
  (* Kill leaves 0, 3, 6: one per ternary group; quorums of the other two
     leaves per group survive. *)
  let alive = Bitset.of_list 9 [ 1; 2; 4; 5; 7; 8 ] in
  Alcotest.(check bool) "survives" true (Hqc.read_quorum h ~alive ~rng <> None);
  (* Kill two whole groups: no 2-of-3 at the top. *)
  let alive2 = Bitset.of_list 9 [ 0; 1; 2 ] in
  Alcotest.(check bool) "two dead groups block" true
    (Hqc.read_quorum h ~alive:alive2 ~rng = None)

let test_general_thresholds () =
  (* Asymmetric instance: s=5, r=2, w=4 (r+w=6>5, 2w=8>5). *)
  let h = Hqc.create_general ~depth:2 ~s:5 ~r:2 ~w:4 in
  Alcotest.(check int) "universe 25" 25 (Hqc.universe h);
  Alcotest.(check int) "read size 4" 4 (Hqc.read_quorum_size h);
  Alcotest.(check int) "write size 16" 16 (Hqc.write_quorum_size h);
  Alcotest.(check bool) "read load (2/5)^2" true
    (abs_float (Hqc.read_load h -. 0.16) < 1e-9);
  Alcotest.(check bool) "write load (4/5)^2" true
    (abs_float (Hqc.write_load h -. 0.64) < 1e-9);
  (* Bicoterie across asymmetric thresholds. *)
  let reads = List.of_seq (Hqc.enumerate_read_quorums h) in
  let writes = List.of_seq (Hqc.enumerate_write_quorums h) in
  Alcotest.(check bool) "reads intersect writes" true
    (List.for_all
       (fun r -> List.for_all (fun w -> Bitset.intersects r w) writes)
       reads);
  (* Writes must intersect each other (one-copy). *)
  Alcotest.(check bool) "writes intersect writes" true
    (List.for_all
       (fun a -> List.for_all (fun b -> Bitset.intersects a b) writes)
       writes)

let test_general_validation () =
  List.iter
    (fun (s, r, w, why) ->
      Alcotest.(check bool) why true
        (try
           ignore (Hqc.create_general ~depth:1 ~s ~r ~w);
           false
         with Invalid_argument _ -> true))
    [
      (3, 1, 2, "r + w <= s rejected");
      (4, 3, 2, "2w <= s rejected");
      (3, 0, 3, "r < 1 rejected");
      (3, 2, 4, "w > s rejected");
    ]

let test_general_availability_vs_exact () =
  let h = Hqc.create_general ~depth:1 ~s:5 ~r:2 ~w:4 in
  let proto = Hqc.protocol h in
  let rng = Rng.create 23 in
  let p = 0.7 in
  let exact_rd =
    Availability.exact ~n:5 ~p (fun ~alive ->
        Protocol.read_quorum proto ~alive ~rng <> None)
  in
  let exact_wr =
    Availability.exact ~n:5 ~p (fun ~alive ->
        Protocol.write_quorum proto ~alive ~rng <> None)
  in
  Alcotest.(check bool) "read tail formula" true
    (feq ~eps:1e-9 exact_rd (Hqc.read_availability h ~p));
  Alcotest.(check bool) "write tail formula" true
    (feq ~eps:1e-9 exact_wr (Hqc.write_availability h ~p))

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "quorum size is n^0.63" `Quick test_quorum_size_n063;
    Alcotest.test_case "assembled quorum size" `Quick test_assembled_quorum_size;
    Alcotest.test_case "enumeration count" `Quick test_enumeration_count;
    Alcotest.test_case "quorum system" `Quick test_coterie;
    Alcotest.test_case "availability recurrence vs exact" `Quick
      test_availability_recurrence_vs_exact;
    Alcotest.test_case "availability amplification" `Quick
      test_availability_amplification;
    Alcotest.test_case "load optimality via LP" `Quick test_load_optimality_via_lp;
    Alcotest.test_case "tolerates one dead leaf per group" `Quick
      test_tolerates_third_of_each_group;
    Alcotest.test_case "general (r,w) thresholds" `Quick test_general_thresholds;
    Alcotest.test_case "general threshold validation" `Quick
      test_general_validation;
    Alcotest.test_case "general availability vs exact" `Quick
      test_general_availability_vs_exact;
  ]
