module Engine = Dsim.Engine

let test_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "timestamp order" [ "a"; "b"; "c" ] (List.rev !log)

let test_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter
    (fun tag -> Engine.schedule e ~delay:1.0 (fun () -> log := tag :: !log))
    [ "x"; "y"; "z" ];
  Engine.run e;
  Alcotest.(check (list string)) "FIFO" [ "x"; "y"; "z" ] (List.rev !log)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~delay:5.0 (fun () -> seen := Engine.now e :: !seen);
  Engine.schedule e ~delay:2.5 (fun () -> seen := Engine.now e :: !seen);
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "times" [ 2.5; 5.0 ] (List.rev !seen)

let test_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0.0 in
  Engine.schedule e ~delay:1.0 (fun () ->
      Engine.schedule e ~delay:1.0 (fun () -> fired := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 1e-9)) "relative to handler time" 2.0 !fired

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> incr count))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Engine.run ~until:2.5 e;
  Alcotest.(check int) "two fired" 2 !count;
  Alcotest.(check int) "two pending" 2 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "rest fired" 4 !count

let test_until_inclusive () =
  let e = Engine.create () in
  let hit = ref false in
  Engine.schedule e ~delay:2.0 (fun () -> hit := true);
  Engine.run ~until:2.0 e;
  Alcotest.(check bool) "event at horizon fires" true !hit

let test_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) (fun () -> ()));
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      Engine.schedule e ~delay:1.0 (fun () -> ());
      Engine.run e;
      Engine.schedule_at e ~time:0.5 (fun () -> ()))

let test_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  Engine.schedule e ~delay:1.0 (fun () -> ());
  Alcotest.(check bool) "one step" true (Engine.step e);
  Alcotest.(check bool) "drained" false (Engine.step e)

let test_determinism () =
  let run_once () =
    let e = Engine.create ~seed:7 () in
    let rng = Engine.rng e in
    let log = ref [] in
    for _ = 1 to 10 do
      let d = Dsutil.Rng.float rng 10.0 in
      Engine.schedule e ~delay:d (fun () -> log := Engine.now e :: !log)
    done;
    Engine.run e;
    !log
  in
  Alcotest.(check (list (float 1e-12))) "same seed, same trace" (run_once ())
    (run_once ())

let suite =
  [
    Alcotest.test_case "timestamp ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO among equal times" `Quick test_fifo_same_time;
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "until is inclusive" `Quick test_until_inclusive;
    Alcotest.test_case "negative delay rejected" `Quick test_negative_delay;
    Alcotest.test_case "step" `Quick test_step;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
