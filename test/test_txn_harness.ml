module Txn_harness = Replication.Txn_harness

let proto_of n = Arbitrary.Quorums.protocol (Arbitrary.Config.build Arbitrary.Config.Arbitrary ~n)

let test_happy_path () =
  let s = Txn_harness.default_scenario ~proto:(proto_of 24) in
  let r = Txn_harness.run s in
  Alcotest.(check bool) "conservation" true r.Txn_harness.conservation_ok;
  Alcotest.(check bool) "most transactions commit" true (r.Txn_harness.committed > 0);
  Alcotest.(check int) "every txn accounted" 90
    (r.Txn_harness.committed + r.Txn_harness.aborted);
  (* Failure-free: nothing in doubt and the observed total is exact. *)
  Alcotest.(check int) "no in-doubt" 0 r.Txn_harness.uncertain;
  Alcotest.(check int) "totals exact" r.Txn_harness.committed_increments
    r.Txn_harness.observed_total

let test_determinism () =
  let s = Txn_harness.default_scenario ~proto:(proto_of 24) in
  let r1 = Txn_harness.run s and r2 = Txn_harness.run s in
  Alcotest.(check int) "same commits" r1.Txn_harness.committed r2.Txn_harness.committed;
  Alcotest.(check int) "same observed" r1.Txn_harness.observed_total
    r2.Txn_harness.observed_total

let test_conservation_under_churn () =
  let s = Txn_harness.default_scenario ~proto:(proto_of 24) in
  List.iter
    (fun seed ->
      let rng = Dsutil.Rng.create seed in
      let failures =
        Dsim.Failure.random_crash_recovery ~rng ~n:24 ~horizon:400.0 ~mtbf:150.0
          ~mttr:40.0
      in
      let r =
        Txn_harness.run
          { s with Txn_harness.failures; loss_rate = 0.02; n_clients = 4; seed }
      in
      Alcotest.(check bool)
        (Printf.sprintf "conservation under churn (seed %d)" seed)
        true r.Txn_harness.conservation_ok;
      Alcotest.(check int) "all terminate" 120
        (r.Txn_harness.committed + r.Txn_harness.aborted))
    [ 1; 2; 3; 4; 5 ]

let test_single_key_txns () =
  let s = Txn_harness.default_scenario ~proto:(proto_of 24) in
  let r = Txn_harness.run { s with Txn_harness.keys_per_txn = 1 } in
  Alcotest.(check bool) "conservation" true r.Txn_harness.conservation_ok

let test_wide_txns () =
  let s = Txn_harness.default_scenario ~proto:(proto_of 24) in
  let r =
    Txn_harness.run { s with Txn_harness.keys_per_txn = 4; n_clients = 2 }
  in
  Alcotest.(check bool) "conservation" true r.Txn_harness.conservation_ok

let test_validation () =
  let s = Txn_harness.default_scenario ~proto:(proto_of 24) in
  Alcotest.check_raises "keys_per_txn too large"
    (Invalid_argument "Txn_harness.run: keys_per_txn exceeds key_space")
    (fun () -> ignore (Txn_harness.run { s with Txn_harness.keys_per_txn = 99 }))

let suite =
  [
    Alcotest.test_case "happy path conservation" `Quick test_happy_path;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "conservation under churn" `Slow
      test_conservation_under_churn;
    Alcotest.test_case "single-key transactions" `Quick test_single_key_txns;
    Alcotest.test_case "wide transactions" `Quick test_wide_txns;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
