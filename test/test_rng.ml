let test_determinism () =
  let a = Dsutil.Rng.create 123 and b = Dsutil.Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Dsutil.Rng.int64 a) (Dsutil.Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Dsutil.Rng.create 1 and b = Dsutil.Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Dsutil.Rng.int64 a <> Dsutil.Rng.int64 b)

let test_split_independence () =
  let parent = Dsutil.Rng.create 7 in
  let child = Dsutil.Rng.split parent in
  let c1 = Dsutil.Rng.int64 child in
  (* Drawing more from the parent must not affect the child's past. *)
  let parent2 = Dsutil.Rng.create 7 in
  let child2 = Dsutil.Rng.split parent2 in
  Alcotest.(check int64) "split streams reproducible" c1 (Dsutil.Rng.int64 child2)

let test_int_bounds () =
  let rng = Dsutil.Rng.create 99 in
  for _ = 1 to 10_000 do
    let v = Dsutil.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let rng = Dsutil.Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Dsutil.Rng.int rng 0))

let test_float_bounds () =
  let rng = Dsutil.Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Dsutil.Rng.float rng 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_int_mean () =
  let rng = Dsutil.Rng.create 11 in
  let n = 100_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Dsutil.Rng.int rng 100
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean near 49.5" true (abs_float (mean -. 49.5) < 1.0)

let test_bernoulli_rate () =
  let rng = Dsutil.Rng.create 13 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Dsutil.Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (abs_float (rate -. 0.3) < 0.01)

let test_exponential_mean () =
  let rng = Dsutil.Rng.create 17 in
  let n = 100_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Dsutil.Rng.exponential rng 4.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (abs_float (mean -. 4.0) < 0.1)

let test_shuffle_permutation () =
  let rng = Dsutil.Rng.create 23 in
  let a = Array.init 50 Fun.id in
  Dsutil.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_pick_uniform () =
  let rng = Dsutil.Rng.create 29 in
  let counts = Array.make 4 0 in
  for _ = 1 to 40_000 do
    let v = Dsutil.Rng.pick rng [| 0; 1; 2; 3 |] in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (abs (c - 10_000) < 500))
    counts

(* The production generator computes SplitMix64 on 32-bit limbs held in
   native ints (no [Int64] boxes on the draw path).  This reference is
   the textbook [Int64] formulation; every public draw — raw 64-bit
   output, [int], [float], [bool], and draws from split children — must
   be bit-identical to it. *)
module Ref64 = struct
  type t = { mutable state : int64; mutable gamma : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let mix64 z =
    let z =
      Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L)
    in
    let z =
      Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL)
    in
    Int64.(logxor z (shift_right_logical z 31))

  let mix_gamma z =
    let z =
      Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL)
    in
    let z =
      Int64.(mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L)
    in
    Int64.(logor (logxor z (shift_right_logical z 33)) 1L)

  let create seed = { state = mix64 (Int64.of_int seed); gamma = golden }

  let next t =
    t.state <- Int64.add t.state t.gamma;
    mix64 t.state

  let int t bound =
    Int64.to_int (Int64.shift_right_logical (next t) 2) mod bound

  let float t bound =
    Int64.to_float (Int64.shift_right_logical (next t) 11)
    /. 9007199254740992.0 *. bound

  let bool t = Int64.logand (next t) 1L = 1L

  let split t =
    t.state <- Int64.add t.state t.gamma;
    let state = mix64 t.state in
    t.state <- Int64.add t.state t.gamma;
    { state; gamma = mix_gamma t.state }
end

let test_matches_int64_reference () =
  List.iter
    (fun seed ->
      let rng = Dsutil.Rng.create seed and r = Ref64.create seed in
      for _ = 1 to 2000 do
        Alcotest.(check int64) "raw draw" (Ref64.next r) (Dsutil.Rng.int64 rng)
      done;
      for _ = 1 to 2000 do
        Alcotest.(check int) "int draw" (Ref64.int r 1000)
          (Dsutil.Rng.int rng 1000)
      done;
      for _ = 1 to 2000 do
        Alcotest.(check (float 0.0)) "float draw" (Ref64.float r 3.5)
          (Dsutil.Rng.float rng 3.5)
      done;
      for _ = 1 to 2000 do
        Alcotest.(check bool) "bool draw" (Ref64.bool r) (Dsutil.Rng.bool rng)
      done)
    [ 0; 1; 42; -1; 123456789; min_int; max_int ]

let test_split_matches_int64_reference () =
  let rng = Dsutil.Rng.create 7 and r = Ref64.create 7 in
  let child = Dsutil.Rng.split rng and rchild = Ref64.split r in
  for _ = 1 to 500 do
    Alcotest.(check int64) "child stream" (Ref64.next rchild)
      (Dsutil.Rng.int64 child);
    Alcotest.(check int64) "parent stream after split" (Ref64.next r)
      (Dsutil.Rng.int64 rng)
  done;
  (* grandchild: split of a split *)
  let gchild = Dsutil.Rng.split child and rgchild = Ref64.split rchild in
  for _ = 1 to 500 do
    Alcotest.(check int64) "grandchild stream" (Ref64.next rgchild)
      (Dsutil.Rng.int64 gchild)
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects non-positive bound" `Quick
      test_int_rejects_nonpositive;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "int mean" `Quick test_int_mean;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "pick is uniform" `Quick test_pick_uniform;
    Alcotest.test_case "matches Int64 reference" `Quick
      test_matches_int64_reference;
    Alcotest.test_case "split matches Int64 reference" `Quick
      test_split_matches_int64_reference;
  ]
