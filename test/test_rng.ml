let test_determinism () =
  let a = Dsutil.Rng.create 123 and b = Dsutil.Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Dsutil.Rng.int64 a) (Dsutil.Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Dsutil.Rng.create 1 and b = Dsutil.Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Dsutil.Rng.int64 a <> Dsutil.Rng.int64 b)

let test_split_independence () =
  let parent = Dsutil.Rng.create 7 in
  let child = Dsutil.Rng.split parent in
  let c1 = Dsutil.Rng.int64 child in
  (* Drawing more from the parent must not affect the child's past. *)
  let parent2 = Dsutil.Rng.create 7 in
  let child2 = Dsutil.Rng.split parent2 in
  Alcotest.(check int64) "split streams reproducible" c1 (Dsutil.Rng.int64 child2)

let test_int_bounds () =
  let rng = Dsutil.Rng.create 99 in
  for _ = 1 to 10_000 do
    let v = Dsutil.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let rng = Dsutil.Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Dsutil.Rng.int rng 0))

let test_float_bounds () =
  let rng = Dsutil.Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Dsutil.Rng.float rng 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_int_mean () =
  let rng = Dsutil.Rng.create 11 in
  let n = 100_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Dsutil.Rng.int rng 100
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean near 49.5" true (abs_float (mean -. 49.5) < 1.0)

let test_bernoulli_rate () =
  let rng = Dsutil.Rng.create 13 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Dsutil.Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (abs_float (rate -. 0.3) < 0.01)

let test_exponential_mean () =
  let rng = Dsutil.Rng.create 17 in
  let n = 100_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Dsutil.Rng.exponential rng 4.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (abs_float (mean -. 4.0) < 0.1)

let test_shuffle_permutation () =
  let rng = Dsutil.Rng.create 23 in
  let a = Array.init 50 Fun.id in
  Dsutil.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_pick_uniform () =
  let rng = Dsutil.Rng.create 29 in
  let counts = Array.make 4 0 in
  for _ = 1 to 40_000 do
    let v = Dsutil.Rng.pick rng [| 0; 1; 2; 3 |] in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (abs (c - 10_000) < 500))
    counts

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects non-positive bound" `Quick
      test_int_rejects_nonpositive;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "int mean" `Quick test_int_mean;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "pick is uniform" `Quick test_pick_uniform;
  ]
