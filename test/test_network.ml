module Engine = Dsim.Engine
module Network = Dsim.Network
module Latency = Dsim.Latency
module Failure = Dsim.Failure

let make ?(n = 4) ?latency ?loss_rate () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~n ?latency ?loss_rate () in
  (engine, net)

let test_delivery () =
  let engine, net = make () in
  let received = ref [] in
  Network.set_handler net ~site:1 (fun ~src msg -> received := (src, msg) :: !received);
  Network.send net ~src:0 ~dst:1 "hello";
  Engine.run engine;
  Alcotest.(check bool) "delivered" true (!received = [ (0, "hello") ]);
  let c = Network.counters net in
  Alcotest.(check int) "sent" 1 c.Network.sent;
  Alcotest.(check int) "delivered count" 1 c.Network.delivered

let test_latency_applied () =
  let engine, net = make ~latency:(Latency.Constant 7.0) () in
  let at = ref 0.0 in
  Network.set_handler net ~site:1 (fun ~src:_ _ -> at := Engine.now engine);
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "constant latency" 7.0 !at

let test_crash_drops () =
  let engine, net = make () in
  let got = ref 0 in
  Network.set_handler net ~site:1 (fun ~src:_ _ -> incr got);
  Network.crash net 1;
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "dropped_crash" 1 (Network.counters net).Network.dropped_crash;
  (* Recovery restores delivery. *)
  Network.recover net 1;
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check int) "delivered after recovery" 1 !got

let test_crashed_sender_drops () =
  let engine, net = make () in
  let got = ref 0 in
  Network.set_handler net ~site:1 (fun ~src:_ _ -> incr got);
  Network.crash net 0;
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check int) "silent sender" 0 !got

let test_crash_at_delivery_time () =
  (* Crash after send but before delivery: message lost. *)
  let engine, net = make ~latency:(Latency.Constant 5.0) () in
  let got = ref 0 in
  Network.set_handler net ~site:1 (fun ~src:_ _ -> incr got);
  Network.send net ~src:0 ~dst:1 ();
  Engine.schedule engine ~delay:1.0 (fun () -> Network.crash net 1);
  Engine.run engine;
  Alcotest.(check int) "lost in flight" 0 !got

let test_partition () =
  let engine, net = make ~n:4 () in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Network.set_handler net ~site:i (fun ~src:_ _ -> got.(i) <- got.(i) + 1)
  done;
  Network.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Alcotest.(check bool) "same side reachable" true (Network.reachable net 0 1);
  Alcotest.(check bool) "other side unreachable" false (Network.reachable net 0 2);
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:0 ~dst:2 ();
  Engine.run engine;
  Alcotest.(check int) "same side delivered" 1 got.(1);
  Alcotest.(check int) "cross partition dropped" 0 got.(2);
  Alcotest.(check int) "dropped_partition" 1
    (Network.counters net).Network.dropped_partition;
  Network.heal net;
  Network.send net ~src:0 ~dst:2 ();
  Engine.run engine;
  Alcotest.(check int) "healed" 1 got.(2)

let test_loss_rate () =
  let engine, net = make ~loss_rate:0.5 () in
  let got = ref 0 in
  Network.set_handler net ~site:1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 2000 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Engine.run engine;
  let rate = float_of_int !got /. 2000.0 in
  Alcotest.(check bool) "about half arrive" true (abs_float (rate -. 0.5) < 0.05)

let test_alive_view () =
  let _, net = make ~n:3 () in
  Network.crash net 1;
  Alcotest.(check (list int)) "view" [ 0; 2 ]
    (Dsutil.Bitset.elements (Network.alive_view net))

(* The alive set is maintained incrementally by crash/recover; check it
   against the ground-truth [is_up] after every mutation, including
   redundant crashes/recoveries, and that returned views are snapshots. *)
let test_alive_view_incremental () =
  let n = 16 in
  let _, net = make ~n () in
  let rng = Dsutil.Rng.create 77 in
  for _ = 1 to 500 do
    let site = Dsutil.Rng.int rng n in
    if Dsutil.Rng.bool rng then Network.crash net site
    else Network.recover net site;
    let expect =
      List.filter (fun i -> Network.is_up net i) (List.init n Fun.id)
    in
    Alcotest.(check (list int))
      "view matches is_up" expect
      (Dsutil.Bitset.elements (Network.alive_view net))
  done;
  let snap = Network.alive_view net in
  let before = Dsutil.Bitset.elements snap in
  Network.crash net 3;
  Network.recover net 3;
  Alcotest.(check (list int))
    "held view is a snapshot" before
    (Dsutil.Bitset.elements snap)

let test_broadcast_and_per_site () =
  let engine, net = make ~n:4 () in
  for i = 0 to 3 do
    Network.set_handler net ~site:i (fun ~src:_ _ -> ())
  done;
  Network.broadcast net ~src:0 ~dst:[ 1; 2; 3 ] ();
  Engine.run engine;
  Alcotest.(check (array int)) "per-site delivered" [| 0; 1; 1; 1 |]
    (Network.per_site_delivered net)

let test_failure_schedule () =
  let engine, net = make ~n:2 () in
  Failure.apply net
    [
      { Failure.time = 1.0; event = Failure.Crash 0 };
      { Failure.time = 2.0; event = Failure.Recover 0 };
    ];
  let up_at = ref [] in
  List.iter
    (fun t ->
      Engine.schedule engine ~delay:t (fun () ->
          up_at := (t, Network.is_up net 0) :: !up_at))
    [ 0.5; 1.5; 2.5 ];
  Engine.run engine;
  Alcotest.(check bool) "schedule respected" true
    (List.sort compare !up_at = [ (0.5, true); (1.5, false); (2.5, true) ])

let test_random_crash_recovery_stats () =
  let rng = Dsutil.Rng.create 53 in
  let entries =
    Failure.random_crash_recovery ~rng ~n:50 ~horizon:1000.0 ~mtbf:100.0
      ~mttr:20.0
  in
  Alcotest.(check bool) "non-empty" true (List.length entries > 0);
  (* Sorted by time. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Failure.time <= b.Failure.time && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted entries);
  Alcotest.(check (float 1e-9)) "steady-state availability" (100.0 /. 120.0)
    (Failure.steady_state_availability ~mtbf:100.0 ~mttr:20.0)

let test_crash_fraction () =
  let rng = Dsutil.Rng.create 59 in
  let entries = Failure.crash_fraction ~rng ~n:10 ~at:5.0 ~fraction:0.3 in
  Alcotest.(check int) "three crashes" 3 (List.length entries);
  let sites =
    List.map
      (fun e -> match e.Failure.event with Failure.Crash i -> i | _ -> -1)
      entries
  in
  Alcotest.(check int) "distinct sites" 3 (List.length (List.sort_uniq compare sites))

(* Crash/recover are transitions, not commands: redundant calls must not
   re-fire hooks (a replica would otherwise wipe its store twice, or
   re-enter catch-up while already serving). *)
let test_crash_hooks_idempotent () =
  let _, net = make ~n:3 () in
  Network.set_crash_mode net Network.Amnesia;
  Alcotest.(check bool) "mode readable" true
    (Network.crash_mode net = Network.Amnesia);
  let crashes = ref [] in
  let recoveries = ref 0 in
  Network.set_crash_hooks net ~site:1
    ~on_crash:(fun mode -> crashes := mode :: !crashes)
    ~on_recover:(fun () -> incr recoveries)
    ();
  Network.crash net 1;
  Network.crash net 1;
  (* already down: no hook, no trace event *)
  Alcotest.(check int) "on_crash fired once" 1 (List.length !crashes);
  Alcotest.(check bool) "hook sees the mode" true
    (!crashes = [ Network.Amnesia ]);
  Alcotest.(check bool) "down after double crash" false (Network.is_up net 1);
  Network.recover net 1;
  Network.recover net 1;
  Alcotest.(check int) "on_recover fired once" 1 !recoveries;
  Alcotest.(check bool) "up after double recover" true (Network.is_up net 1);
  (* Recovering a site that never crashed is equally inert. *)
  Network.recover net 2;
  Alcotest.(check int) "no spurious recovery hook" 1 !recoveries

let test_failure_apply_rejects_past () =
  let engine, net = make ~n:2 () in
  let raised = ref false in
  Engine.schedule engine ~delay:5.0 (fun () ->
      (try
         Failure.apply net
           [
             { Failure.time = 10.0; event = Failure.Crash 0 };
             { Failure.time = 1.0; event = Failure.Crash 1 };
           ]
       with Invalid_argument _ -> raised := true));
  Engine.run engine;
  Alcotest.(check bool) "past entry raises" true !raised;
  (* Validation happens before anything is scheduled: the valid t=10
     entry must not have crashed site 0. *)
  Alcotest.(check bool) "nothing scheduled" true (Network.is_up net 0)

let test_failure_apply_sorts () =
  let engine, net = make ~n:2 () in
  (* Entries arrive out of order; apply sorts them, so the site is down
     in [1, 2) and up again afterwards. *)
  Failure.apply net
    [
      { Failure.time = 2.0; event = Failure.Recover 0 };
      { Failure.time = 1.0; event = Failure.Crash 0 };
    ];
  let up_at = ref [] in
  List.iter
    (fun t ->
      Engine.schedule engine ~delay:t (fun () ->
          up_at := (t, Network.is_up net 0) :: !up_at))
    [ 1.5; 2.5 ];
  Engine.run engine;
  Alcotest.(check bool) "sorted before scheduling" true
    (List.sort compare !up_at = [ (1.5, false); (2.5, true) ])

let test_crash_fraction_edges () =
  let rng = Dsutil.Rng.create 11 in
  Alcotest.(check int) "fraction 0 crashes nobody" 0
    (List.length (Failure.crash_fraction ~rng ~n:10 ~at:1.0 ~fraction:0.0));
  let all = Failure.crash_fraction ~rng ~n:10 ~at:1.0 ~fraction:1.0 in
  let sites =
    List.map
      (fun e -> match e.Failure.event with Failure.Crash i -> i | _ -> -1)
      all
  in
  Alcotest.(check int) "fraction 1 crashes everybody" 10
    (List.length (List.sort_uniq compare sites));
  Alcotest.(check bool) "single site" true
    (match Failure.crash_fraction ~rng ~n:1 ~at:1.0 ~fraction:1.0 with
    | [ { Failure.time = 1.0; event = Failure.Crash 0 } ] -> true
    | _ -> false)

(* Each site's renewal process must strictly alternate crash → recover in
   time order — two consecutive crashes would make a schedule that
   [Failure.apply]'s idempotent transitions silently swallow. *)
let test_random_crash_recovery_alternates () =
  let rng = Dsutil.Rng.create 29 in
  let entries =
    Failure.random_crash_recovery ~rng ~n:10 ~horizon:500.0 ~mtbf:50.0
      ~mttr:10.0
  in
  let down = Hashtbl.create 10 in
  List.iter
    (fun e ->
      match e.Failure.event with
      | Failure.Crash i ->
        Alcotest.(check bool) "crash only from up" false
          (Hashtbl.mem down i);
        Hashtbl.replace down i ()
      | Failure.Recover i ->
        Alcotest.(check bool) "recover only from down" true
          (Hashtbl.mem down i);
        Hashtbl.remove down i
      | _ -> ())
    entries

(* Regression: a message reaching an up, reachable site that never
   installed a handler used to be booked as [dropped_crash], polluting
   failure statistics.  It is a wiring bug and gets its own counter. *)
let test_no_handler_counter () =
  let engine, net = make () in
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  let c = Network.counters net in
  Alcotest.(check int) "no_handler" 1 c.Network.dropped_no_handler;
  Alcotest.(check int) "not a crash" 0 c.Network.dropped_crash;
  (* A genuinely crashed destination still books as a crash drop. *)
  Network.crash net 2;
  Network.send net ~src:0 ~dst:2 ();
  Engine.run engine;
  let c = Network.counters net in
  Alcotest.(check int) "crash unchanged by wiring bugs" 1 c.Network.dropped_crash;
  Alcotest.(check int) "no_handler stays" 1 c.Network.dropped_no_handler

let test_obs_mirrors_counters () =
  let engine, net = make () in
  let obs = Obs.create () in
  Network.attach_obs net obs;
  Network.set_handler net ~site:1 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:0 ~dst:3 ();
  (* no handler at 3 *)
  Engine.run engine;
  let m = Obs.metrics obs in
  Alcotest.(check int) "net.sent" 2 (Obs.Metrics.counter_of m "net.sent");
  Alcotest.(check int) "net.delivered" 1
    (Obs.Metrics.counter_of m "net.delivered");
  Alcotest.(check int) "net.dropped.no_handler" 1
    (Obs.Metrics.counter_of m "net.dropped.no_handler");
  Alcotest.(check int) "per-site sent" 2
    (Obs.Metrics.counter_of m "net.site.0.sent");
  Alcotest.(check int) "per-site delivered" 1
    (Obs.Metrics.counter_of m "net.site.1.delivered")

let test_loss_rate_midrun_counter_consistency () =
  (* The rate starts at zero, rises mid-run, and obs is only attached
     after drops already happened: the obs counter must be seeded from the
     struct counter so the two sources agree (the PR-9 end-of-run healing
     path flips the rate back to zero the same way). *)
  let engine, net = make ~latency:(Latency.Constant 1.0) () in
  Network.set_handler net ~site:1 (fun ~src:_ _ -> ());
  for _ = 1 to 50 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Engine.run engine;
  Alcotest.(check int) "no drops at rate 0" 0
    (Network.counters net).Network.dropped_loss;
  Network.set_loss_rate net 0.9;
  for _ = 1 to 200 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Engine.run engine;
  let before_attach = (Network.counters net).Network.dropped_loss in
  Alcotest.(check bool) "raised rate drops" true (before_attach > 0);
  let obs = Obs.create () in
  Network.attach_obs net obs;
  let m = Obs.metrics obs in
  Alcotest.(check int) "obs seeded from struct counter" before_attach
    (Obs.Metrics.counter_of m "net.dropped.loss");
  (* back to lossless (end-of-run healing): both sources freeze together *)
  Network.set_loss_rate net 0.0;
  for _ = 1 to 50 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Engine.run engine;
  let c = Network.counters net in
  Alcotest.(check int) "no further drops after reset" before_attach
    c.Network.dropped_loss;
  Alcotest.(check int) "sources agree at the end" c.Network.dropped_loss
    (Obs.Metrics.counter_of m "net.dropped.loss");
  Alcotest.(check int) "delivered seed agrees too" c.Network.delivered
    (Obs.Metrics.counter_of m "net.delivered")

(* -- Overload model ------------------------------------------------------ *)

let test_service_serializes () =
  (* A 2.0 service time with zero network latency: three messages sent
     together are delivered at 2, 4, 6 — single server, FIFO. *)
  let engine, net = make ~latency:(Latency.Constant 0.0) () in
  Network.set_service net ~site:1 ~service_time:2.0 ();
  let at = ref [] in
  Network.set_handler net ~site:1 (fun ~src:_ msg ->
      at := (msg, Engine.now engine) :: !at);
  Network.send net ~src:0 ~dst:1 "a";
  Network.send net ~src:0 ~dst:1 "b";
  Network.send net ~src:0 ~dst:1 "c";
  Engine.run engine;
  Alcotest.(check (list (pair string (float 1e-9))))
    "FIFO service completions"
    [ ("a", 2.0); ("b", 4.0); ("c", 6.0) ]
    (List.rev !at)

let test_overload_drop_counter () =
  (* Capacity 2 and a slow server: the bound covers the head in service
     plus one waiting; the rest are turned away into dropped.overload. *)
  let engine, net = make ~latency:(Latency.Constant 0.0) () in
  Network.set_service net ~site:1 ~capacity:2 ~service_time:10.0 ();
  let got = ref 0 in
  Network.set_handler net ~site:1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 6 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Engine.run engine;
  Alcotest.(check int) "peak tracks bound" 2 (Network.queue_peak net 1);
  let c = Network.counters net in
  Alcotest.(check int) "two delivered" 2 !got;
  Alcotest.(check int) "dropped.overload" 4 c.Network.dropped_overload;
  Alcotest.(check int) "not conflated with loss" 0 c.Network.dropped_loss;
  Alcotest.(check int) "drained" 0 (Network.queue_depth net 1)

let test_overflow_callback_and_priority () =
  let engine, net = make ~latency:(Latency.Constant 0.0) () in
  Network.set_service net ~site:1 ~capacity:1 ~service_time:5.0 ();
  let overflowed = ref [] in
  Network.set_overflow net ~site:1 (fun ~src msg ->
      overflowed := (src, msg) :: !overflowed);
  (* "vip" messages bypass the capacity bound but still queue FIFO. *)
  Network.set_priority net ~site:1 (fun ~src:_ msg -> msg = "vip");
  let got = ref [] in
  Network.set_handler net ~site:1 (fun ~src:_ msg -> got := msg :: !got);
  Network.send net ~src:0 ~dst:1 "a";
  Network.send net ~src:2 ~dst:1 "b";
  Network.send net ~src:3 ~dst:1 "c";
  Network.send net ~src:0 ~dst:1 "vip";
  Engine.run engine;
  Alcotest.(check (list string)) "vip admitted over full queue"
    [ "a"; "vip" ] (List.rev !got);
  Alcotest.(check (list (pair int string)))
    "overflow callback saw each shed message"
    [ (2, "b"); (3, "c") ]
    (List.rev !overflowed);
  Alcotest.(check int) "counted" 2
    (Network.counters net).Network.dropped_overload

let test_crash_clears_service_queue () =
  let engine, net = make ~latency:(Latency.Constant 0.0) () in
  Network.set_service net ~site:1 ~service_time:10.0 ();
  let got = ref 0 in
  Network.set_handler net ~site:1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 4 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  (* First delivery at t=10; crash at t=12 wipes the three still queued. *)
  Engine.schedule engine ~delay:12.0 (fun () -> Network.crash net 1);
  Engine.run engine;
  Alcotest.(check int) "only the head was served" 1 !got;
  Alcotest.(check int) "queued messages die with the crash" 3
    (Network.counters net).Network.dropped_crash;
  Alcotest.(check int) "queue empty" 0 (Network.queue_depth net 1);
  (* Recovery serves fresh traffic; no stale completion fires. *)
  Network.recover net 1;
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check int) "post-recovery delivery" 2 !got

let test_no_service_unchanged () =
  (* Sites without a service keep the plain delivery path: a seeded run
     is bit-identical whether or not some *other* site has a service. *)
  let run with_service =
    let engine, net = make ~n:3 () in
    if with_service then
      Network.set_service net ~site:2 ~capacity:4 ~service_time:9.0 ();
    let log = ref [] in
    Network.set_handler net ~site:1 (fun ~src:_ msg ->
        log := (msg, Engine.now engine) :: !log);
    for i = 1 to 20 do
      Network.send net ~src:0 ~dst:1 i
    done;
    Engine.run engine;
    !log
  in
  Alcotest.(check (list (pair int (float 0.0))))
    "same deliveries" (run false) (run true)

let suite =
  [
    Alcotest.test_case "delivery" `Quick test_delivery;
    Alcotest.test_case "latency applied" `Quick test_latency_applied;
    Alcotest.test_case "crashed destination drops" `Quick test_crash_drops;
    Alcotest.test_case "crashed sender drops" `Quick test_crashed_sender_drops;
    Alcotest.test_case "crash while in flight" `Quick test_crash_at_delivery_time;
    Alcotest.test_case "partition" `Quick test_partition;
    Alcotest.test_case "loss rate" `Quick test_loss_rate;
    Alcotest.test_case "alive view" `Quick test_alive_view;
    Alcotest.test_case "alive view incremental consistency" `Quick
      test_alive_view_incremental;
    Alcotest.test_case "broadcast / per-site counts" `Quick
      test_broadcast_and_per_site;
    Alcotest.test_case "failure schedule" `Quick test_failure_schedule;
    Alcotest.test_case "random crash/recovery schedule" `Quick
      test_random_crash_recovery_stats;
    Alcotest.test_case "crash fraction" `Quick test_crash_fraction;
    Alcotest.test_case "crash hooks fire once per transition" `Quick
      test_crash_hooks_idempotent;
    Alcotest.test_case "failure apply rejects past entries" `Quick
      test_failure_apply_rejects_past;
    Alcotest.test_case "failure apply sorts entries" `Quick
      test_failure_apply_sorts;
    Alcotest.test_case "crash fraction edge cases" `Quick
      test_crash_fraction_edges;
    Alcotest.test_case "random crash/recovery alternates per site" `Quick
      test_random_crash_recovery_alternates;
    Alcotest.test_case "no-handler drop counter" `Quick test_no_handler_counter;
    Alcotest.test_case "obs mirrors net counters" `Quick
      test_obs_mirrors_counters;
    Alcotest.test_case "mid-run set_loss_rate keeps counter sources agreeing"
      `Quick test_loss_rate_midrun_counter_consistency;
    Alcotest.test_case "service time serializes delivery" `Quick
      test_service_serializes;
    Alcotest.test_case "bounded queue drops into dropped.overload" `Quick
      test_overload_drop_counter;
    Alcotest.test_case "overflow callback and priority lane" `Quick
      test_overflow_callback_and_priority;
    Alcotest.test_case "crash clears the service queue" `Quick
      test_crash_clears_service_queue;
    Alcotest.test_case "unserviced sites unchanged" `Quick
      test_no_service_unchanged;
  ]
