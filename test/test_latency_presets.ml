module Latency = Dsim.Latency
module Presets = Workload.Presets
module Rng = Dsutil.Rng

let test_constant () =
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check (float 1e-9)) "constant" 3.0
      (Latency.sample (Latency.Constant 3.0) rng)
  done;
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Latency.mean (Latency.Constant 3.0))

let test_uniform_bounds () =
  let rng = Rng.create 2 in
  let model = Latency.Uniform (2.0, 5.0) in
  for _ = 1 to 10_000 do
    let v = Latency.sample model rng in
    Alcotest.(check bool) "in bounds" true (v >= 2.0 && v < 5.0)
  done;
  Alcotest.(check (float 1e-9)) "mean" 3.5 (Latency.mean model)

let test_exponential_positive_mean () =
  let rng = Rng.create 3 in
  let model = Latency.Exponential 2.0 in
  let total = ref 0.0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let v = Latency.sample model rng in
    Alcotest.(check bool) "strictly positive" true (v > 0.0);
    total := !total +. v
  done;
  let mean = !total /. float_of_int trials in
  Alcotest.(check bool) "empirical mean near model mean" true
    (abs_float (mean -. Latency.mean model) < 0.1)

let test_latency_pp () =
  List.iter
    (fun (m, expected) ->
      Alcotest.(check string) "pp" expected (Format.asprintf "%a" Latency.pp m))
    [
      (Latency.Constant 1.0, "constant(1.00)");
      (Latency.Uniform (1.0, 2.0), "uniform(1.00, 2.00)");
      (Latency.Exponential 3.0, "exponential(3.00)");
    ]

let test_presets_lookup () =
  Alcotest.(check int) "four presets" 4 (List.length Presets.all);
  (match Presets.by_name "READ-MOSTLY" with
  | Some p ->
    Alcotest.(check (float 1e-9)) "read fraction" 0.95 p.Presets.read_fraction
  | None -> Alcotest.fail "case-insensitive lookup failed");
  Alcotest.(check bool) "unknown -> None" true (Presets.by_name "nope" = None)

let test_presets_sane () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.Presets.name ^ " fraction in range")
        true
        (p.Presets.read_fraction >= 0.0 && p.Presets.read_fraction <= 1.0);
      Alcotest.(check bool)
        (p.Presets.name ^ " theta in range")
        true
        (p.Presets.zipf_theta >= 0.0 && p.Presets.zipf_theta <= 2.0);
      (* Every preset must be accepted by the generator. *)
      let gen =
        Workload.Generator.create ~rng:(Rng.create 7)
          ~read_fraction:p.Presets.read_fraction ~key_space:4
          ~zipf_theta:p.Presets.zipf_theta ()
      in
      ignore (Workload.Generator.next gen))
    Presets.all

let test_read_only_preset_generates_no_writes () =
  let p = Presets.read_only in
  let gen =
    Workload.Generator.create ~rng:(Rng.create 9)
      ~read_fraction:p.Presets.read_fraction ~key_space:4
      ~zipf_theta:p.Presets.zipf_theta ()
  in
  for _ = 1 to 1000 do
    match Workload.Generator.next gen with
    | Workload.Generator.Read _ -> ()
    | Workload.Generator.Write _ -> Alcotest.fail "read-only preset wrote"
  done

let suite =
  [
    Alcotest.test_case "constant latency" `Quick test_constant;
    Alcotest.test_case "uniform latency bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "exponential latency" `Quick test_exponential_positive_mean;
    Alcotest.test_case "latency pretty-printing" `Quick test_latency_pp;
    Alcotest.test_case "preset lookup" `Quick test_presets_lookup;
    Alcotest.test_case "presets are sane" `Quick test_presets_sane;
    Alcotest.test_case "read-only preset" `Quick
      test_read_only_preset_generates_no_writes;
  ]
