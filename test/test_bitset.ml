module Bitset = Dsutil.Bitset

let test_add_mem_remove () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "initially empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  List.iter
    (fun i -> Alcotest.(check bool) (Printf.sprintf "mem %d" i) true (Bitset.mem s i))
    [ 0; 63; 64; 99 ];
  Alcotest.(check bool) "not mem 50" false (Bitset.mem s 50);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal s)

let test_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add out of range"
    (Invalid_argument "Bitset: index 10 out of [0,10)") (fun () ->
      Bitset.add s 10);
  Alcotest.check_raises "negative"
    (Invalid_argument "Bitset: index -1 out of [0,10)") (fun () ->
      ignore (Bitset.mem s (-1)))

let test_set_ops () =
  let a = Bitset.of_list 20 [ 1; 2; 3 ] in
  let b = Bitset.of_list 20 [ 3; 4; 5 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 5 ]
    (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.elements (Bitset.diff a b));
  Alcotest.(check bool) "intersects" true (Bitset.intersects a b);
  Alcotest.(check bool) "no intersection" false
    (Bitset.intersects a (Bitset.of_list 20 [ 7; 8 ]))

let test_subset () =
  let a = Bitset.of_list 10 [ 1; 2 ] in
  let b = Bitset.of_list 10 [ 1; 2; 3 ] in
  Alcotest.(check bool) "a ⊆ b" true (Bitset.subset a b);
  Alcotest.(check bool) "b ⊄ a" false (Bitset.subset b a);
  Alcotest.(check bool) "a ⊆ a" true (Bitset.subset a a);
  Alcotest.(check bool) "empty ⊆ a" true (Bitset.subset (Bitset.create 10) a)

let test_capacity_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 11 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> ignore (Bitset.intersects a b))

let test_iter_fold_elements () =
  let s = Bitset.of_list 70 [ 5; 68; 33 ] in
  Alcotest.(check (list int)) "elements sorted" [ 5; 33; 68 ] (Bitset.elements s);
  Alcotest.(check int) "fold sum" 106 (Bitset.fold ( + ) s 0);
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) s;
  Alcotest.(check (list int)) "iter ascending" [ 5; 33; 68 ] (List.rev !seen)

let test_copy_independent () =
  let a = Bitset.of_list 10 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  Alcotest.(check bool) "copy isolated" false (Bitset.mem a 2);
  Alcotest.(check bool) "equal to self" true (Bitset.equal a a);
  Alcotest.(check bool) "not equal after change" false (Bitset.equal a b)

let test_clear () =
  let s = Bitset.of_list 10 [ 1; 2; 3 ] in
  Bitset.clear s;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty s)

(* qcheck properties *)
let site_list = QCheck.(small_list (int_bound 63))

let prop_union_cardinal =
  QCheck.Test.make ~name:"cardinal(a ∪ b) = |a| + |b| - |a ∩ b|" ~count:200
    (QCheck.pair site_list site_list)
    (fun (la, lb) ->
      let a = Bitset.of_list 64 la and b = Bitset.of_list 64 lb in
      Bitset.cardinal (Bitset.union a b)
      = Bitset.cardinal a + Bitset.cardinal b - Bitset.cardinal (Bitset.inter a b))

let prop_diff_disjoint =
  QCheck.Test.make ~name:"(a \\ b) ∩ b = ∅" ~count:200
    (QCheck.pair site_list site_list)
    (fun (la, lb) ->
      let a = Bitset.of_list 64 la and b = Bitset.of_list 64 lb in
      Bitset.is_empty (Bitset.inter (Bitset.diff a b) b))

let prop_elements_roundtrip =
  QCheck.Test.make ~name:"of_list/elements roundtrip" ~count:200 site_list
    (fun l ->
      let s = Bitset.of_list 64 l in
      Bitset.elements s = List.sort_uniq compare l)

let suite =
  [
    Alcotest.test_case "add/mem/remove" `Quick test_add_mem_remove;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "subset" `Quick test_subset;
    Alcotest.test_case "capacity mismatch" `Quick test_capacity_mismatch;
    Alcotest.test_case "iter/fold/elements" `Quick test_iter_fold_elements;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_union_cardinal;
    QCheck_alcotest.to_alcotest prop_diff_disjoint;
    QCheck_alcotest.to_alcotest prop_elements_roundtrip;
  ]
