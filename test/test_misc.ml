(* Small-surface coverage: pretty-printers, conversions, and minor API
   corners not exercised elsewhere. *)

module Rng = Dsutil.Rng

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_rng_uniform_in () =
  let rng = Rng.create 3 in
  for _ = 1 to 5000 do
    let v = Rng.uniform_in rng (-2.0) 3.0 in
    Alcotest.(check bool) "in range" true (v >= -2.0 && v < 3.0)
  done

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copies evolve identically" (Rng.int64 a) (Rng.int64 b)

let test_store_restage () =
  let s = Replication.Store.create () in
  let ts v = Replication.Timestamp.make ~version:v ~sid:0 in
  Replication.Store.stage s ~op:1 ~key:0 ~ts:(ts 1) ~value:"first";
  Replication.Store.stage s ~op:1 ~key:0 ~ts:(ts 2) ~value:"second";
  Alcotest.(check int) "re-stage replaces" 1 (Replication.Store.staged_count s);
  Alcotest.(check bool) "commit applies the latest staging" true
    (Replication.Store.commit_staged s ~op:1);
  let _, v = Replication.Store.read s ~key:0 in
  Alcotest.(check string) "second value" "second" v

let test_message_pp_and_op_id () =
  let ts = Replication.Timestamp.make ~version:3 ~sid:1 in
  let cases =
    [
      (Replication.Message.Read_request { op = 1; key = 2 }, 1, "read-req");
      ( Replication.Message.Read_reply
          {
            op = 2;
            key = 0;
            version = ts.Replication.Timestamp.version;
            sid = ts.Replication.Timestamp.sid;
            value = "v";
            inc = 0;
          },
        2, "read-reply" );
      ( Replication.Message.Prepare
          {
            op = 3;
            key = 0;
            version = ts.Replication.Timestamp.version;
            sid = ts.Replication.Timestamp.sid;
            value = "v";
          },
        3, "prepare" );
      (Replication.Message.Prepare_ack { op = 4; inc = 0 }, 4, "prepare-ack");
      ( Replication.Message.Prepare_nack { op = 5; reason = "r" },
        5, "prepare-nack" );
      (Replication.Message.Commit { op = 6; inc = 0 }, 6, "commit");
      (Replication.Message.Commit_ack { op = 7; inc = 0 }, 7, "commit-ack");
      (Replication.Message.Abort { op = 8 }, 8, "abort");
      ( Replication.Message.Repair
          {
            op = 9;
            key = 1;
            version = ts.Replication.Timestamp.version;
            sid = ts.Replication.Timestamp.sid;
            value = "v";
          },
        9, "repair" );
    ]
  in
  List.iter
    (fun (msg, op, tag) ->
      Alcotest.(check int) (tag ^ " op_id") op (Replication.Message.op_id msg);
      Alcotest.(check bool)
        (tag ^ " pp mentions tag")
        true
        (contains ~needle:tag
           (Format.asprintf "%a" Replication.Message.pp msg)))
    cases

let test_failure_pp () =
  let pp e = Format.asprintf "%a" Dsim.Failure.pp_entry e in
  Alcotest.(check bool) "crash" true
    (contains ~needle:"crash 3" (pp { Dsim.Failure.time = 1.0; event = Crash 3 }));
  Alcotest.(check bool) "recover" true
    (contains ~needle:"recover 3"
       (pp { Dsim.Failure.time = 2.0; event = Recover 3 }));
  Alcotest.(check bool) "partition" true
    (contains ~needle:"partition"
       (pp { Dsim.Failure.time = 3.0; event = Partition [ [ 0 ]; [ 1 ] ] }));
  Alcotest.(check bool) "heal" true
    (contains ~needle:"heal" (pp { Dsim.Failure.time = 4.0; event = Heal }))

let test_timestamp_pp () =
  let ts = Replication.Timestamp.make ~version:4 ~sid:2 in
  Alcotest.(check string) "format" "v4@2"
    (Format.asprintf "%a" Replication.Timestamp.pp ts)

let test_tree_pp () =
  let s = Format.asprintf "%a" Arbitrary.Tree.pp (Arbitrary.Tree.figure1 ()) in
  Alcotest.(check bool) "mentions n" true (contains ~needle:"n=8" s);
  Alcotest.(check bool) "mentions levels" true (contains ~needle:"level 2" s)

let test_config_names () =
  Alcotest.(check int) "six configurations" 6
    (List.length Arbitrary.Config.all_names);
  Alcotest.(check (list string)) "names"
    [ "BINARY"; "UNMODIFIED"; "ARBITRARY"; "HQC"; "MOSTLY-READ"; "MOSTLY-WRITE" ]
    (List.map Arbitrary.Config.name_to_string Arbitrary.Config.all_names)

let test_protocol_all_alive () =
  let proto = Quorum.Rowa.protocol (Quorum.Rowa.create ~n:4) in
  let alive = Quorum.Protocol.all_alive proto in
  Alcotest.(check int) "full universe" 4 (Dsutil.Bitset.cardinal alive);
  Alcotest.(check string) "name" "ROWA" (Quorum.Protocol.name proto);
  Alcotest.(check int) "size" 4 (Quorum.Protocol.universe_size proto)

let test_analysis_pp_summary () =
  let s =
    Format.asprintf "%a" Arbitrary.Analysis.pp_summary
      (Arbitrary.Analysis.summarize (Arbitrary.Tree.figure1 ()) ~p:0.7)
  in
  Alcotest.(check bool) "mentions tree spec" true (contains ~needle:"1-3-5" s);
  Alcotest.(check bool) "mentions both ops" true
    (contains ~needle:"read" s && contains ~needle:"write" s)

let test_harness_zero_op_edge () =
  let proto = Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ()) in
  let s = Replication.Harness.default_scenario ~proto in
  let r = Replication.Harness.run { s with Replication.Harness.ops_per_client = 0 } in
  Alcotest.(check (float 1e-9)) "no ops, no cost" 0.0
    (Replication.Harness.messages_per_op r);
  Alcotest.(check (float 1e-9)) "no load" 0.0
    (Replication.Harness.measured_read_load r)

let test_bitset_pp () =
  let s = Format.asprintf "%a" Dsutil.Bitset.pp (Dsutil.Bitset.of_list 8 [ 1; 5 ]) in
  Alcotest.(check string) "set syntax" "{1,5}" s

let test_quorum_set_pp () =
  let qs = Quorum.Quorum_set.of_lists ~universe:3 [ [ 0; 1 ] ] in
  let s = Format.asprintf "%a" Quorum.Quorum_set.pp qs in
  Alcotest.(check bool) "mentions universe" true (contains ~needle:"universe=3" s)

let test_tablefmt_ragged () =
  (* Rows shorter than the header are padded implicitly; longer cells widen
     columns. *)
  let s =
    Eval.Tablefmt.render ~header:[ "col1"; "col2" ]
      ~rows:[ [ "a" ]; [ "bb"; "cc" ] ]
  in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let suite =
  [
    Alcotest.test_case "rng uniform_in" `Quick test_rng_uniform_in;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "store re-stage" `Quick test_store_restage;
    Alcotest.test_case "message pp and op_id" `Quick test_message_pp_and_op_id;
    Alcotest.test_case "failure entry pp" `Quick test_failure_pp;
    Alcotest.test_case "timestamp pp" `Quick test_timestamp_pp;
    Alcotest.test_case "tree pp" `Quick test_tree_pp;
    Alcotest.test_case "config names" `Quick test_config_names;
    Alcotest.test_case "protocol dynamic accessors" `Quick test_protocol_all_alive;
    Alcotest.test_case "analysis summary pp" `Quick test_analysis_pp_summary;
    Alcotest.test_case "harness zero-op edge" `Quick test_harness_zero_op_edge;
    Alcotest.test_case "bitset pp" `Quick test_bitset_pp;
    Alcotest.test_case "quorum_set pp" `Quick test_quorum_set_pp;
    Alcotest.test_case "tablefmt ragged rows" `Quick test_tablefmt_ragged;
  ]
