module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Tree_quorum = Quorum.Tree_quorum
module Availability = Quorum.Availability
module Protocol = Quorum.Protocol

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_sizes () =
  List.iter
    (fun (h, n) ->
      Alcotest.(check int) (Printf.sprintf "n for h=%d" h) n (Tree_quorum.n_of_height h))
    [ (0, 1); (1, 3); (2, 7); (3, 15); (4, 31) ];
  let t = Tree_quorum.of_n ~n:20 in
  Alcotest.(check int) "of_n snaps down" 3 (Tree_quorum.height t)

let test_cost_bounds () =
  let t = Tree_quorum.create ~height:3 in
  Alcotest.(check int) "min cost h+1" 4 (Tree_quorum.min_cost t);
  Alcotest.(check int) "max cost (n+1)/2" 8 (Tree_quorum.max_cost t)

let test_quorum_counts () =
  (* N(h) = 2N(h-1) + N(h-1)^2, N(0)=1 -> 1, 3, 15, 255 *)
  List.iter
    (fun (h, count) ->
      Alcotest.(check int)
        (Printf.sprintf "count h=%d" h)
        count
        (Tree_quorum.quorum_count (Tree_quorum.create ~height:h)))
    [ (0, 1); (1, 3); (2, 15); (3, 255) ];
  (* And enumeration must agree. *)
  let t = Tree_quorum.create ~height:2 in
  Alcotest.(check int) "enumeration matches recurrence" 15
    (List.length (List.of_seq (Tree_quorum.enumerate_read_quorums t)))

let test_enumerated_quorums_intersect () =
  let t = Tree_quorum.create ~height:2 in
  let qs = List.of_seq (Tree_quorum.enumerate_read_quorums t) in
  List.iteri
    (fun i qi ->
      List.iteri
        (fun j qj ->
          if i < j then
            Alcotest.(check bool) "pairwise intersection" true
              (Bitset.intersects qi qj))
        qs)
    qs

let test_paper_cost_values () =
  (* Hand-checked: h=1 -> 2, h=2 -> 3.5. *)
  Alcotest.(check bool) "h=1" true
    (feq (Tree_quorum.paper_cost (Tree_quorum.create ~height:1)) 2.0);
  Alcotest.(check bool) "h=2" true
    (feq (Tree_quorum.paper_cost (Tree_quorum.create ~height:2)) 3.5)

let test_expected_cost_recurrence () =
  (* C(1) = 2, C(2) = 3.5, C(3) = 6 by hand. *)
  List.iter
    (fun (h, c) ->
      Alcotest.(check bool)
        (Printf.sprintf "C(%d)" h)
        true
        (feq (Tree_quorum.expected_cost (Tree_quorum.create ~height:h)) c))
    [ (0, 1.0); (1, 2.0); (2, 3.5); (3, 6.0) ]

let test_measured_cost_matches_recurrence () =
  let t = Tree_quorum.create ~height:4 in
  let rng = Rng.create 19 in
  let alive = Protocol.all_alive (Tree_quorum.protocol t) in
  let trials = 20_000 in
  let total = ref 0 in
  for _ = 1 to trials do
    match Tree_quorum.read_quorum t ~alive ~rng with
    | None -> Alcotest.fail "failure-free assembly cannot fail"
    | Some q -> total := !total + Bitset.cardinal q
  done;
  let mean = float_of_int !total /. float_of_int trials in
  let expected = Tree_quorum.expected_cost t in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f vs expected %.3f" mean expected)
    true
    (abs_float (mean -. expected) /. expected < 0.03)

let test_root_load_is_optimal () =
  (* Under the spread strategy the root should appear in a fraction
     f = 2/(h+2) of assembled quorums: exactly the optimal load. *)
  let t = Tree_quorum.create ~height:3 in
  let rng = Rng.create 23 in
  let alive = Protocol.all_alive (Tree_quorum.protocol t) in
  let trials = 20_000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    match Tree_quorum.read_quorum t ~alive ~rng with
    | None -> Alcotest.fail "assembly failed"
    | Some q -> if Bitset.mem q 0 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "root rate %.3f vs 0.4" rate)
    true
    (abs_float (rate -. Tree_quorum.optimal_load t) < 0.02)

let test_availability_recurrence_vs_exact () =
  let t = Tree_quorum.create ~height:2 in
  let proto = Tree_quorum.protocol t in
  let rng = Rng.create 29 in
  List.iter
    (fun p ->
      let exact =
        Availability.exact ~n:7 ~p (fun ~alive ->
            Protocol.read_quorum proto ~alive ~rng <> None)
      in
      Alcotest.(check bool)
        (Printf.sprintf "p=%.2f" p)
        true
        (feq ~eps:1e-9 exact (Tree_quorum.availability t ~p)))
    [ 0.5; 0.7; 0.9 ]

let test_survives_root_crash () =
  (* The motivating property vs older tree protocols: the root's crash
     does not block operations. *)
  let t = Tree_quorum.create ~height:2 in
  let rng = Rng.create 31 in
  let alive = Bitset.of_list 7 [ 1; 2; 3; 4; 5; 6 ] in
  match Tree_quorum.write_quorum t ~alive ~rng with
  | None -> Alcotest.fail "root crash must not block writes"
  | Some q -> Alcotest.(check bool) "root not in quorum" false (Bitset.mem q 0)

let test_load_optimality_via_lp () =
  List.iter
    (fun h ->
      let t = Tree_quorum.create ~height:h in
      let qs = Protocol.read_quorum_set (Tree_quorum.protocol t) in
      Alcotest.(check bool)
        (Printf.sprintf "LP load = 2/(h+2) for h=%d" h)
        true
        (feq ~eps:1e-6 (Analysis.Load_lp.optimal_load qs) (Tree_quorum.optimal_load t)))
    [ 1; 2 ]

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "cost bounds" `Quick test_cost_bounds;
    Alcotest.test_case "quorum counts" `Quick test_quorum_counts;
    Alcotest.test_case "enumerated quorums intersect" `Quick
      test_enumerated_quorums_intersect;
    Alcotest.test_case "paper cost formula values" `Quick test_paper_cost_values;
    Alcotest.test_case "expected cost recurrence" `Quick
      test_expected_cost_recurrence;
    Alcotest.test_case "measured cost matches recurrence" `Slow
      test_measured_cost_matches_recurrence;
    Alcotest.test_case "root load is optimal" `Slow test_root_load_is_optimal;
    Alcotest.test_case "availability recurrence vs exact" `Quick
      test_availability_recurrence_vs_exact;
    Alcotest.test_case "survives root crash" `Quick test_survives_root_crash;
    Alcotest.test_case "load optimality via LP" `Quick test_load_optimality_via_lp;
  ]
