module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Tree = Arbitrary.Tree
module Quorums = Arbitrary.Quorums
module Plan_cache = Arbitrary.Plan_cache
module Baseline = Eval.Baseline
module Config = Arbitrary.Config

(* The cache promises more than equal quorums: it must consume the rng
   identically to the reference assembly, so that swapping it into the
   protocol leaves every downstream seeded simulation byte-identical.
   Each check therefore compares both the returned quorum and the rng
   state afterwards (via an extra draw). *)

let same_quorum a b =
  match (a, b) with
  | None, None -> true
  | Some qa, Some qb -> Bitset.equal qa qb
  | _ -> false

let same_draw rng_a rng_b = Rng.int rng_a 1_000_000 = Rng.int rng_b 1_000_000

let tree_gen =
  QCheck.Gen.(
    let level = int_range 1 5 in
    let* n_levels = int_range 1 4 in
    let* sizes = list_repeat n_levels level in
    let* logical_root = bool in
    return
      (Tree.create
         ((if logical_root then [ (0, 1) ] else [])
         @ List.map (fun s -> (s, 0)) sizes)))

let arb_tree = QCheck.make tree_gen ~print:(fun t -> Tree.to_spec t)

let full_universe n =
  let s = Bitset.create n in
  for i = 0 to n - 1 do
    Bitset.add s i
  done;
  s

let alive_patterns tree seed =
  let n = Tree.n tree in
  let rng = Rng.create seed in
  [
    full_universe n;
    (* exercises the fast path *)
    Quorum.Availability.random_alive rng ~n ~p:0.6;
    Quorum.Availability.random_alive rng ~n ~p:0.2;
    Bitset.create n;
    (* nothing alive: both must answer None without desync *)
  ]

let equiv_prop ~name ~policy reference cached =
  QCheck.Test.make ~name ~count:200
    (QCheck.pair arb_tree QCheck.(int_bound 10_000))
    (fun (tree, seed) ->
      let plan = Plan_cache.create tree in
      List.for_all
        (fun alive ->
          let rng_a = Rng.create (seed + 1) in
          let rng_b = Rng.create (seed + 1) in
          let a = reference ~policy tree ~alive ~rng:rng_a in
          let b = cached ~policy plan ~alive ~rng:rng_b in
          same_quorum a b && same_draw rng_a rng_b)
        (alive_patterns tree seed))

let prop_read_equiv =
  equiv_prop ~name:"plan cache: read quorums and rng draws match reference"
    ~policy:Quorums.Uniform
    (fun ~policy tree -> Quorums.read_quorum ~policy tree)
    (fun ~policy plan -> Plan_cache.read_quorum ~policy plan)

let prop_write_equiv =
  equiv_prop ~name:"plan cache: write quorums and rng draws match reference"
    ~policy:Quorums.Uniform
    (fun ~policy tree -> Quorums.write_quorum ~policy tree)
    (fun ~policy plan -> Plan_cache.write_quorum ~policy plan)

let prop_read_equiv_first_alive =
  equiv_prop ~name:"plan cache: first-alive read quorums match reference"
    ~policy:Quorums.First_alive
    (fun ~policy tree -> Quorums.read_quorum ~policy tree)
    (fun ~policy plan -> Plan_cache.read_quorum ~policy plan)

let prop_write_equiv_first_alive =
  equiv_prop ~name:"plan cache: first-alive write quorums match reference"
    ~policy:Quorums.First_alive
    (fun ~policy tree -> Quorums.write_quorum ~policy tree)
    (fun ~policy plan -> Plan_cache.write_quorum ~policy plan)

let test_fork_independent () =
  let tree = Tree.figure1 () in
  let plan = Plan_cache.create tree in
  let twin = Plan_cache.fork plan in
  Alcotest.(check bool) "same tree" true (Plan_cache.tree twin == tree);
  (* Degraded assembly uses the scratch buffers; interleaving calls on
     the two instances must not cross-contaminate results. *)
  let n = Tree.n tree in
  let alive = Bitset.of_list n [ 1; 2; 4; 5; 6; 7 ] in
  let rng_a = Rng.create 3 and rng_b = Rng.create 3 in
  let a = Plan_cache.read_quorum plan ~alive ~rng:rng_a in
  let b = Plan_cache.read_quorum twin ~alive ~rng:rng_b in
  Alcotest.(check bool) "identical results" true (same_quorum a b)

(* The cached protocol is what the harness runs: replaying the first
   BENCH_baseline.json case must reproduce the checked-in golden counters
   exactly (seed 42, n snapped to 31), proving the cache changed no
   simulation outcome. *)
let test_baseline_golden_counters () =
  let row = Baseline.measure Config.Unmodified ~reads:4000 ~writes:8000 in
  Alcotest.(check string) "case" "UNMODIFIED" row.Baseline.case_name;
  Alcotest.(check int) "n" 31 row.Baseline.n;
  let r = row.Baseline.reads and w = row.Baseline.writes in
  Alcotest.(check int) "reads ok" 4000 r.Baseline.ok;
  Alcotest.(check int) "reads failed" 0 r.Baseline.failed;
  Alcotest.(check int) "read spans started" 4000 r.Baseline.spans_started;
  Alcotest.(check int) "read spans closed" 4000 r.Baseline.spans_closed;
  Alcotest.(check int) "read spans open" 0 r.Baseline.spans_open;
  Alcotest.(check (float 1e-9)) "read load" 1.0 r.Baseline.measured_load;
  Alcotest.(check int) "writes ok" 8000 w.Baseline.ok;
  Alcotest.(check int) "write retries" 0 w.Baseline.retries;
  Alcotest.(check (float 1e-9)) "write load" 0.203 w.Baseline.measured_load

let suite =
  [
    QCheck_alcotest.to_alcotest prop_read_equiv;
    QCheck_alcotest.to_alcotest prop_write_equiv;
    QCheck_alcotest.to_alcotest prop_read_equiv_first_alive;
    QCheck_alcotest.to_alcotest prop_write_equiv_first_alive;
    Alcotest.test_case "fork isolates scratch state" `Quick
      test_fork_independent;
    Alcotest.test_case "baseline golden counters (BENCH_baseline.json)" `Slow
      test_baseline_golden_counters;
  ]
