module Stats = Dsutil.Stats

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check bool) "mean" true (feq (Stats.mean s) 2.5);
  Alcotest.(check bool) "total" true (feq (Stats.total s) 10.0);
  Alcotest.(check bool) "min" true (feq (Stats.min_value s) 1.0);
  Alcotest.(check bool) "max" true (feq (Stats.max_value s) 4.0);
  (* Unbiased variance of 1..4 is 5/3. *)
  Alcotest.(check bool) "variance" true (feq (Stats.variance s) (5.0 /. 3.0))

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "mean 0" true (feq (Stats.mean s) 0.0);
  Alcotest.(check bool) "variance 0" true (feq (Stats.variance s) 0.0);
  Alcotest.check_raises "percentile raises"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile s 0.5));
  (* Regression: these used to leak the ±infinity init sentinels. *)
  Alcotest.check_raises "min_value raises"
    (Invalid_argument "Stats.min_value: empty") (fun () ->
      ignore (Stats.min_value s));
  Alcotest.check_raises "max_value raises"
    (Invalid_argument "Stats.max_value: empty") (fun () ->
      ignore (Stats.max_value s))

(* Regression: q = 0.0 used to compute nearest-rank index -1 and rely on
   clamping; it must map straight to the minimum, even with one sample. *)
let test_percentile_zero () =
  let s = Stats.create () in
  Stats.add s 42.0;
  Alcotest.(check bool) "singleton p0" true (feq (Stats.percentile s 0.0) 42.0);
  Stats.add s 7.0;
  Alcotest.(check bool) "p0 = min" true
    (feq (Stats.percentile s 0.0) (Stats.min_value s));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.percentile: q out of range") (fun () ->
      ignore (Stats.percentile s (-0.1)))

let test_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check bool) "p50" true (feq (Stats.percentile s 0.5) 50.0);
  Alcotest.(check bool) "p99" true (feq (Stats.percentile s 0.99) 99.0);
  Alcotest.(check bool) "p100" true (feq (Stats.percentile s 1.0) 100.0);
  Alcotest.(check bool) "p0 is min" true (feq (Stats.percentile s 0.0) 1.0)

let test_percentile_after_add () =
  (* The sorted cache must be invalidated by add. *)
  let s = Stats.create () in
  Stats.add s 10.0;
  ignore (Stats.percentile s 0.5);
  Stats.add s 1.0;
  Alcotest.(check bool) "p0 updated" true (feq (Stats.percentile s 0.0) 1.0)

let test_welford_matches_naive () =
  let rng = Dsutil.Rng.create 37 in
  let xs = List.init 1000 (fun _ -> Dsutil.Rng.float rng 100.0) in
  let s = Stats.create () in
  List.iter (Stats.add s) xs;
  Alcotest.(check bool) "mean matches" true
    (feq ~eps:1e-6 (Stats.mean s) (Stats.mean_of xs));
  Alcotest.(check bool) "stddev matches" true
    (feq ~eps:1e-6 (Stats.stddev s) (Stats.stddev_of xs))

let test_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 3.0; 4.0 ];
  let m = Stats.merge a b in
  Alcotest.(check int) "merged count" 4 (Stats.count m);
  Alcotest.(check bool) "merged mean" true (feq (Stats.mean m) 2.5)

let test_ci95_shrinks () =
  let wide = Stats.create () and narrow = Stats.create () in
  let rng = Dsutil.Rng.create 41 in
  for _ = 1 to 50 do
    Stats.add wide (Dsutil.Rng.float rng 10.0)
  done;
  for _ = 1 to 5000 do
    Stats.add narrow (Dsutil.Rng.float rng 10.0)
  done;
  Alcotest.(check bool) "more samples, tighter CI" true
    (Stats.ci95 narrow < Stats.ci95 wide)

let suite =
  [
    Alcotest.test_case "basic moments" `Quick test_basic;
    Alcotest.test_case "empty accumulator" `Quick test_empty;
    Alcotest.test_case "percentile q=0" `Quick test_percentile_zero;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "percentile cache invalidation" `Quick
      test_percentile_after_add;
    Alcotest.test_case "welford matches naive" `Quick test_welford_matches_naive;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "ci95 shrinks with samples" `Quick test_ci95_shrinks;
  ]
