(* The sharded multi-tree control plane: S=1 byte-identity with the
   unsharded harness, per-shard routing and accounting, determinism per
   seed, crash recovery per shard, and online split/merge with fenced
   state-transfer migration. *)

module Harness = Replication.Harness
module Shard_harness = Replication.Shard_harness
module Shard_map = Arbitrary.Shard_map
module Batching = Eval.Batching
module Consistency = Eval.Consistency
module Failure = Dsim.Failure
module Network = Dsim.Network
module Rng = Dsutil.Rng

let proto_of_spec spec =
  Arbitrary.Quorums.protocol (Arbitrary.Tree.of_spec spec)

let base_scenario ?(seed = 42) ?(clients = 3) ?(ops = 40) ?(key_space = 32)
    ?(zipf = 0.0) () =
  let proto = proto_of_spec "1-3-5" in
  {
    (Harness.default_scenario ~proto) with
    n_clients = clients;
    ops_per_client = ops;
    key_space;
    zipf_theta = zipf;
    seed;
    check_consistency = true;
  }

let sharded ?(shards = 4) ?(strategy = Shard_map.Hash) base =
  { (Shard_harness.default ~proto:base.Harness.proto ~shards) with base; strategy }

(* --- S=1 byte-identity --------------------------------------------------- *)

let test_s1_identity () =
  let base = base_scenario () in
  let unsharded = Harness.run base in
  let r = Shard_harness.run (sharded ~shards:1 base) in
  Alcotest.(check string)
    "S=1 fingerprint == unsharded fingerprint"
    (Batching.fingerprint unsharded)
    (Batching.fingerprint r.Shard_harness.agg)

let test_s1_identity_batched () =
  let batching =
    Some { Harness.batch_size = 8; group_commit = true; pipeline = 2 }
  in
  let base = { (base_scenario ~seed:7 ()) with batching } in
  let unsharded = Harness.run base in
  let r = Shard_harness.run (sharded ~shards:1 base) in
  Alcotest.(check string)
    "S=1 batched fingerprint == unsharded"
    (Batching.fingerprint unsharded)
    (Batching.fingerprint r.Shard_harness.agg);
  Alcotest.(check bool) "batches engaged" true (r.Shard_harness.agg.Harness.batches > 0)

let test_s1_identity_amnesia_failures () =
  let entries seed =
    Failure.random_crash_recovery ~rng:(Rng.create seed) ~n:8 ~horizon:300.0
      ~mtbf:80.0 ~mttr:15.0
  in
  let base =
    {
      (base_scenario ~seed:11 ()) with
      crash_mode = Network.Amnesia;
      failures = entries 1234;
    }
  in
  let unsharded = Harness.run base in
  let shard_scenario =
    {
      (sharded ~shards:1 { base with failures = [] }) with
      shard_failures = [ (0, entries 1234) ];
    }
  in
  let r = Shard_harness.run shard_scenario in
  Alcotest.(check string)
    "S=1 amnesia+crashes fingerprint == unsharded"
    (Batching.fingerprint unsharded)
    (Batching.fingerprint r.Shard_harness.agg)

(* --- sharded runs -------------------------------------------------------- *)

let test_sharded_completes_and_routes () =
  let base = base_scenario ~clients:4 ~ops:30 ~key_space:64 () in
  let r = Shard_harness.run (sharded ~shards:4 base) in
  let total = 4 * 30 in
  Alcotest.(check int) "all ops complete" total (Harness.completed r.Shard_harness.agg);
  Alcotest.(check int) "no safety violations" 0
    r.Shard_harness.agg.Harness.safety_violations;
  Alcotest.(check int) "per-shard ops sum to total" total
    (Array.fold_left ( + ) 0 r.Shard_harness.per_shard_ops);
  Alcotest.(check int) "4 shards" 4 r.Shard_harness.shards;
  Alcotest.(check bool) "well formed" true r.Shard_harness.map_well_formed;
  (* Every shard of a 64-key hash map should see some traffic. *)
  Array.iter
    (fun ops -> Alcotest.(check bool) "every shard served ops" true (ops > 0))
    r.Shard_harness.per_shard_ops;
  let violations = Consistency.check r.Shard_harness.agg.Harness.spans in
  Alcotest.(check int) "trace checker clean" 0
    (List.length violations.Consistency.violations)

let test_sharded_deterministic () =
  let run () =
    Batching.fingerprint
      (Shard_harness.run (sharded ~shards:4 (base_scenario ~seed:5 ())))
        .Shard_harness.agg
  in
  Alcotest.(check string) "same seed, same sharded run" (run ()) (run ())

let test_sharded_range_strategy () =
  let base = base_scenario ~clients:3 ~ops:25 ~key_space:40 () in
  let r = Shard_harness.run (sharded ~shards:4 ~strategy:Shard_map.Range base) in
  Alcotest.(check int) "all ops complete" (3 * 25)
    (Harness.completed r.Shard_harness.agg);
  Alcotest.(check bool) "well formed" true r.Shard_harness.map_well_formed;
  Alcotest.(check int) "10 keys per shard" 10 r.Shard_harness.per_shard_keys.(0)

let test_sharded_crash_one_shard () =
  (* Blackout one shard's replicas mid-run: its ops fail or retry, other
     shards are untouched; no freshness violation anywhere. *)
  let base =
    { (base_scenario ~clients:4 ~ops:30 ~key_space:64 ()) with
      crash_mode = Network.Amnesia }
  in
  let down = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let entries =
    List.map (fun s -> { Failure.time = 20.0; event = Failure.Crash s }) down
    @ List.map (fun s -> { Failure.time = 80.0; event = Failure.Recover s }) down
  in
  let sc =
    { (sharded ~shards:4 base) with shard_failures = [ (2, entries) ] }
  in
  let r = Shard_harness.run sc in
  Alcotest.(check int) "no safety violations" 0
    r.Shard_harness.agg.Harness.safety_violations;
  let violations = Consistency.check r.Shard_harness.agg.Harness.spans in
  Alcotest.(check int) "trace checker clean" 0
    (List.length violations.Consistency.violations);
  Alcotest.(check bool) "some ops completed" true
    (Harness.completed r.Shard_harness.agg > 0)

(* --- online split/merge -------------------------------------------------- *)

let test_online_split_and_merge () =
  let base = base_scenario ~clients:4 ~ops:60 ~key_space:48 () in
  let sc =
    {
      (sharded ~shards:4 base) with
      reconfig =
        [
          { Shard_harness.at = 30.0; action = Shard_harness.Split 1 };
          {
            Shard_harness.at = 90.0;
            action = Shard_harness.Merge { into = 0; from_ = 3 };
          };
        ];
    }
  in
  let r = Shard_harness.run sc in
  Alcotest.(check int) "split happened" 1 r.Shard_harness.splits;
  Alcotest.(check int) "merge happened" 1 r.Shard_harness.merges;
  Alcotest.(check int) "5 shard ids allocated" 5 r.Shard_harness.shards;
  Alcotest.(check (list int)) "active shards: 3 merged away, 4 split in"
    [ 0; 1; 2; 4 ] r.Shard_harness.active_shards;
  Alcotest.(check bool) "map stays well-formed" true r.Shard_harness.map_well_formed;
  Alcotest.(check bool) "keys migrated" true (r.Shard_harness.migrated_keys > 0);
  Alcotest.(check int) "no migration failures" 0 r.Shard_harness.migration_failures;
  Alcotest.(check int) "all ops complete" (4 * 60)
    (Harness.completed r.Shard_harness.agg);
  Alcotest.(check int) "no safety violations" 0
    r.Shard_harness.agg.Harness.safety_violations;
  let violations = Consistency.check r.Shard_harness.agg.Harness.spans in
  Alcotest.(check int) "trace checker clean across resharding" 0
    (List.length violations.Consistency.violations);
  (* The split target must end up owning keys and serving traffic. *)
  Alcotest.(check bool) "split target owns keys" true
    (r.Shard_harness.per_shard_keys.(4) > 0);
  Alcotest.(check int) "merged-away shard owns nothing" 0
    r.Shard_harness.per_shard_keys.(3)

let test_reconfig_requires_locks () =
  let base = { (base_scenario ()) with use_locks = false } in
  let sc =
    {
      (sharded ~shards:2 base) with
      reconfig = [ { Shard_harness.at = 10.0; action = Shard_harness.Split 0 } ];
    }
  in
  Alcotest.check_raises "reconfig without locks rejected"
    (Invalid_argument "Shard_harness.run: reconfiguration requires use_locks")
    (fun () -> ignore (Shard_harness.run sc))

let suite =
  [
    Alcotest.test_case "S=1 byte-identical to unsharded" `Quick test_s1_identity;
    Alcotest.test_case "S=1 batched byte-identical" `Quick test_s1_identity_batched;
    Alcotest.test_case "S=1 amnesia+crashes byte-identical" `Quick
      test_s1_identity_amnesia_failures;
    Alcotest.test_case "sharded run completes and routes" `Quick
      test_sharded_completes_and_routes;
    Alcotest.test_case "sharded runs deterministic" `Quick test_sharded_deterministic;
    Alcotest.test_case "range strategy" `Quick test_sharded_range_strategy;
    Alcotest.test_case "one shard crashes, others unaffected" `Quick
      test_sharded_crash_one_shard;
    Alcotest.test_case "online split and merge" `Quick test_online_split_and_merge;
    Alcotest.test_case "reconfig requires locks" `Quick test_reconfig_requires_locks;
  ]
